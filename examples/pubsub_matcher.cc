// The paper's motivating SDI scenario (§1): a publish/subscribe
// notification system for small ads, built on the SubscriptionEngine. An
// example subscription: "Notify me of all new apartments within 30 miles
// from Newark, with a rent price between 400$ and 700$, having between 3
// and 5 rooms, and 2 baths." Events are concrete offers (points in
// attribute space) or range ads ("3 to 5 rooms, 1 or 2 baths, 600$-900$"),
// matched with enclosure / intersection queries over the subscription
// database.
#include <cmath>
#include <cstdio>
#include <vector>

#include "sdi/subscription_engine.h"
#include "util/rng.h"

using namespace accl;

int main() {
  // Schema: the attributes of an apartment ad, in domain units.
  AttributeSchema schema;
  schema.AddAttribute("price", 0, 3000);        // $
  schema.AddAttribute("rooms", 0, 10);
  schema.AddAttribute("baths", 0, 5);
  schema.AddAttribute("surface", 0, 300);       // m^2
  schema.AddAttribute("distance", 0, 100);      // miles from center
  schema.AddAttribute("floor", 0, 30);
  schema.AddAttribute("year_built", 1900, 2030);
  schema.AddAttribute("parking", 0, 4);

  SubscriptionEngine engine(std::move(schema));

  // The paper's example subscription, verbatim.
  const SubscriptionId newark = engine.Subscribe({{"price", 400, 700},
                                                  {"rooms", 3, 5},
                                                  {"baths", 2, 2},
                                                  {"distance", 0, 30}});
  std::printf("registered the paper's example subscription (id %u)\n", newark);

  // Plus 100,000 synthetic subscribers with preference windows.
  Rng rng(2026);
  for (int i = 0; i < 100000; ++i) {
    const double price0 = rng.Uniform(200, 2200);
    const double rooms0 = rng.Uniform(0, 7);
    const double surface0 = rng.Uniform(20, 200);
    const double dist0 = rng.Uniform(0, 60);
    engine.Subscribe({{"price", price0, price0 + rng.Uniform(150, 500)},
                      {"rooms", rooms0, rooms0 + 2},
                      {"surface", surface0, surface0 + 80},
                      {"distance", dist0, dist0 + rng.Uniform(5, 30)}});
  }
  std::printf("subscription database: %zu subscriptions, %u attributes\n",
              engine.subscription_count(), engine.schema().dims());

  // Event stream: concrete offers.
  const size_t kEvents = 5000;
  std::vector<SubscriptionId> notify;
  bool newark_notified = false;
  for (size_t e = 0; e < kEvents; ++e) {
    Event offer;
    const bool ok = engine.MakePointEvent(
        {{"price", rng.Uniform(300, 2500)},
         {"rooms", std::floor(rng.Uniform(1, 7))},
         {"baths", std::floor(rng.Uniform(1, 3))},
         {"surface", rng.Uniform(25, 220)},
         {"distance", rng.Uniform(0, 80)},
         {"floor", std::floor(rng.Uniform(0, 25))},
         {"year_built", std::floor(rng.Uniform(1950, 2026))},
         {"parking", std::floor(rng.Uniform(0, 3))}},
        &offer);
    if (!ok) return 1;
    notify.clear();
    engine.Match(offer, &notify);
    for (SubscriptionId id : notify) newark_notified |= id == newark;
  }

  const EngineStats& st = engine.stats();
  std::printf("processed %llu events\n",
              static_cast<unsigned long long>(st.events_processed));
  std::printf("  avg subscribers notified per event : %.1f\n",
              st.matches_per_event.mean());
  std::printf("  avg subscriptions verified         : %.0f of %zu (%.1f%%)\n",
              st.verified_per_event.mean(), engine.subscription_count(),
              100.0 * st.verified_per_event.mean() /
                  static_cast<double>(engine.subscription_count()));
  std::printf("  avg matching latency               : %.3f ms\n",
              st.match_latency_ms.mean());
  std::printf("  clusters formed by adaptation      : %zu (%llu splits)\n",
              engine.index().cluster_count(),
              static_cast<unsigned long long>(
                  engine.index().reorg_stats().splits));
  std::printf("  paper-example subscription notified at least once: %s\n",
              newark_notified ? "yes" : "no");

  // A range ad matched under both policies.
  Event ad;
  if (!engine.MakeRangeEvent(
          {{"price", 600, 900}, {"rooms", 3, 5}, {"baths", 1, 2}}, &ad)) {
    return 1;
  }
  std::vector<SubscriptionId> loose, strict;
  engine.Match(ad, MatchPolicy::kIntersecting, &loose);
  engine.Match(ad, MatchPolicy::kCovering, &strict);
  std::printf("range ad \"3-5 rooms, 1-2 baths, 600$-900$\": %zu interested "
              "(intersecting), %zu fully covered\n",
              loose.size(), strict.size());
  return 0;
}
