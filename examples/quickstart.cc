// Quickstart: index a collection of multidimensional extended objects with
// the adaptive cost-based clustering index and run the three spatial
// selections the paper supports.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/adaptive_index.h"
#include "workload/generators.h"
#include "workload/query_gen.h"

using namespace accl;

int main() {
  // 1. Configure the index: 8 dimensions, in-memory storage, the paper's
  //    cost parameters, reorganization every 100 queries.
  AdaptiveConfig cfg;
  cfg.nd = 8;
  cfg.scenario = StorageScenario::kMemory;
  AdaptiveIndex index(cfg);

  // 2. Insert 50,000 synthetic hyper-rectangles.
  UniformSpec spec;
  spec.nd = cfg.nd;
  spec.count = 50000;
  spec.seed = 7;
  Dataset ds = GenerateUniform(spec);
  for (size_t i = 0; i < ds.size(); ++i) index.Insert(ds.ids[i], ds.box(i));
  std::printf("indexed %zu objects in %zu cluster(s)\n", index.size(),
              index.cluster_count());

  // 3. Run an intersection query.
  Box window(cfg.nd);
  for (Dim d = 0; d < cfg.nd; ++d) window.set(d, 0.4f, 0.6f);
  std::vector<ObjectId> hits;
  QueryMetrics m;
  index.Execute(Query::Intersection(window), &hits, &m);
  std::printf("intersection window matched %zu objects "
              "(verified %llu of %zu)\n",
              hits.size(), static_cast<unsigned long long>(m.objects_verified),
              index.size());

  // 4. Containment and point-enclosing queries use the same API.
  hits.clear();
  index.Execute(Query::Containment(window), &hits);
  std::printf("objects fully inside the window: %zu\n", hits.size());
  hits.clear();
  index.Execute(Query::PointEnclosing({0.5f, 0.5f, 0.5f, 0.5f, 0.5f, 0.5f,
                                       0.5f, 0.5f}),
                &hits);
  std::printf("objects enclosing the center point: %zu\n", hits.size());

  // 5. Let the index adapt: after enough queries the cost model clusters
  //    the collection and queries get cheaper.
  auto workload =
      GenerateQueriesWithExtent(cfg.nd, Relation::kIntersects, 2000, 0.1, 11);
  for (const Query& q : workload) {
    hits.clear();
    index.Execute(q, &hits);
  }
  std::printf("after %llu queries: %zu clusters, %llu splits, %llu merges\n",
              static_cast<unsigned long long>(index.total_queries()),
              index.cluster_count(),
              static_cast<unsigned long long>(index.reorg_stats().splits),
              static_cast<unsigned long long>(index.reorg_stats().merges));

  QueryMetrics after;
  hits.clear();
  index.Execute(workload.front(), &hits, &after);
  std::printf("same query now verifies %llu objects (was ~%zu)\n",
              static_cast<unsigned long long>(after.objects_verified),
              index.size());
  return 0;
}
