// Disk-based scenario with fail recovery (paper §6): signatures and
// statistics live in memory, cluster members on (simulated) disk; the index
// image — cluster signatures + member objects + a one-block directory — is
// persisted and reloaded, after which fresh statistics are gathered.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/adaptive_index.h"
#include "storage/paged_store.h"
#include "workload/generators.h"
#include "workload/query_gen.h"

using namespace accl;

int main() {
  const Dim nd = 16;
  AdaptiveConfig cfg;
  cfg.nd = nd;
  cfg.scenario = StorageScenario::kDisk;

  // Build a catalog of 80,000 extended objects.
  UniformSpec spec;
  spec.nd = nd;
  spec.count = 80000;
  spec.seed = 31;
  Dataset ds = GenerateUniform(spec);
  AdaptiveIndex catalog(cfg);
  for (size_t i = 0; i < ds.size(); ++i) catalog.Insert(ds.ids[i], ds.box(i));
  std::printf("catalog: %zu objects, %.1f MB (disk scenario)\n",
              catalog.size(),
              static_cast<double>(ds.bytes()) / (1024.0 * 1024.0));

  // Converge the clustering under a selective workload.
  auto queries =
      GenerateQueriesWithExtent(nd, Relation::kIntersects, 2000, 0.3, 33);
  std::vector<ObjectId> out;
  for (const Query& q : queries) {
    out.clear();
    catalog.Execute(q, &out);
  }
  QueryMetrics m;
  out.clear();
  catalog.Execute(queries.front(), &out, &m);
  std::printf("converged: %zu clusters; a query now costs %llu seek(s), "
              "%.2f MB transferred, %.1f ms modeled\n",
              catalog.cluster_count(),
              static_cast<unsigned long long>(m.disk_seeks),
              static_cast<double>(m.disk_bytes) / (1024.0 * 1024.0),
              m.sim_time_ms);
  const double scan_ms =
      catalog.cost_model().ClusterTime(1.0, static_cast<double>(ds.size()));
  std::printf("equivalent Sequential Scan would cost %.1f ms per query\n",
              scan_ms);

  // Persist through the paged cluster store: each cluster in a contiguous
  // run of 16 KB pages with reserve places, plus the one-block directory
  // (paper §6). Then simulate a crash and recover from the file alone.
  const std::string path = "/tmp/accl_disk_catalog.pf";
  {
    auto store = std::make_unique<ClusterFileStore>(
        PagedFile::Create(path, 16384), nd, /*reserve_fraction=*/0.25);
    if (store == nullptr || !store->PutAll(catalog) ||
        !store->SaveDirectory()) {
      std::fprintf(stderr, "failed to save %s\n", path.c_str());
      return 1;
    }
    std::printf("checkpointed to %s: %zu clusters in %llu pages "
                "(utilization %.0f%%)\n",
                path.c_str(), store->cluster_count(),
                static_cast<unsigned long long>(store->file().pages_in_use()),
                100.0 * store->utilization());
  }  // store object destroyed: only the file survives the "crash"

  auto reopened = ClusterFileStore::Load(PagedFile::Open(path));
  if (reopened == nullptr) {
    std::fprintf(stderr, "recovery failed\n");
    return 1;
  }
  std::vector<ClusterImage> images;
  if (!reopened->GetAll(&images)) {
    std::fprintf(stderr, "recovery read failed\n");
    return 1;
  }
  auto recovered = AdaptiveIndex::FromImages(cfg, images);
  recovered->CheckInvariants();
  std::printf("recovered: %zu objects in %zu clusters "
              "(statistics restart empty, as §6 allows)\n",
              recovered->size(), recovered->cluster_count());

  // Answers are identical before/after recovery.
  std::vector<ObjectId> a, b;
  catalog.Execute(queries[1], &a);
  recovered->Execute(queries[1], &b);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::printf("spot check: %s (%zu results)\n",
              a == b ? "identical answers" : "MISMATCH", a.size());
  std::remove(path.c_str());
  return a == b ? 0 : 1;
}
