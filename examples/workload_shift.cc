// Demonstrates adaptivity to query-distribution change (the paper's merging
// operation, §3.2): clusters built for one query pattern are merged away
// and rebuilt when the pattern shifts, because the cost model re-evaluates
// every cluster against fresh access statistics in a sliding window.
#include <cstdio>
#include <vector>

#include "core/adaptive_index.h"
#include "util/rng.h"
#include "workload/generators.h"

using namespace accl;

namespace {

// Queries focused on one corner of the data space.
Query CornerQuery(Rng& rng, Dim nd, float corner_lo, float corner_hi) {
  Box b(nd);
  for (Dim d = 0; d < nd; ++d) {
    const float span = corner_hi - corner_lo;
    const float len = 0.1f * span * rng.NextFloat();
    const float start = corner_lo + (span - len) * rng.NextFloat();
    b.set(d, start, start + len);
  }
  return Query::Intersection(b);
}

void RunPhase(AdaptiveIndex& idx, const char* label, Rng& rng, int n,
              float lo, float hi) {
  std::vector<ObjectId> out;
  for (int i = 0; i < n; ++i) {
    Query q = CornerQuery(rng, idx.dims(), lo, hi);
    out.clear();
    idx.Execute(q, &out);
  }
  const auto& rs = idx.reorg_stats();
  std::printf("%-28s clusters=%-5zu splits=%-6llu merges=%-6llu "
              "modeled ms/q=%.4f\n",
              label, idx.cluster_count(),
              static_cast<unsigned long long>(rs.splits),
              static_cast<unsigned long long>(rs.merges),
              idx.ExpectedQueryTimeMs());
}

}  // namespace

int main() {
  AdaptiveConfig cfg;
  cfg.nd = 8;
  cfg.reorg_period = 100;
  cfg.stats_halving_period = 1000;  // sliding window: adapt to change
  AdaptiveIndex idx(cfg);

  UniformSpec spec;
  spec.nd = cfg.nd;
  spec.count = 60000;
  spec.seed = 5;
  Dataset ds = GenerateUniform(spec);
  for (size_t i = 0; i < ds.size(); ++i) idx.Insert(ds.ids[i], ds.box(i));
  std::printf("indexed %zu objects; watching the structure adapt:\n\n",
              idx.size());

  Rng rng(17);
  RunPhase(idx, "phase 1: lower corner x2000", rng, 2000, 0.0f, 0.5f);
  RunPhase(idx, "phase 1 continued x2000", rng, 2000, 0.0f, 0.5f);
  std::printf("\n-- query focus shifts to the opposite corner --\n\n");
  RunPhase(idx, "phase 2: upper corner x2000", rng, 2000, 0.5f, 1.0f);
  RunPhase(idx, "phase 2 continued x2000", rng, 2000, 0.5f, 1.0f);
  RunPhase(idx, "phase 2 continued x2000", rng, 2000, 0.5f, 1.0f);

  std::printf("\nthe merge counter rising in phase 2 shows phase-1 clusters "
              "being folded back\ninto their parents as their access "
              "probability converges to the parent's.\n");
  idx.CheckInvariants();
  return 0;
}
