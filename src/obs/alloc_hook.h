// Process-wide heap-allocation counter, the observable home of what used
// to be a bench-private global-operator-new counter.
//
// The counter itself always exists (one relaxed atomic); what is optional
// is the *hook* that feeds it: replacing global operator new is a
// whole-binary decision, so the replacement cannot live in the library
// (it would hijack allocation for every test and tool linking it).
// Instead a binary that wants allocation accounting expands
// ACCL_OBS_INSTALL_GLOBAL_ALLOC_HOOK() once at namespace scope — the
// bench does — and every engine's DumpMetrics() then reports live
// allocs via the `accl_process_heap_allocs` gauge. Binaries
// without the hook report 0 and `accl_process_heap_alloc_hook` = 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace accl::obs {

/// The counter the hook feeds. Function-local so the hook can run during
/// static initialization of any TU.
std::atomic<uint64_t>& HeapAllocCount();

/// Current lifetime allocation count (0 when no hook is installed).
uint64_t HeapAllocsNow();

/// True once ACCL_OBS_INSTALL_GLOBAL_ALLOC_HOOK() ran in this binary.
bool HeapAllocHookInstalled();

/// Internal: the macro's static initializer calls this.
void MarkHeapAllocHookInstalled();

}  // namespace accl::obs

/// Expands, exactly once per binary and at namespace scope, to a
/// counting replacement of the global allocation operators.
#define ACCL_OBS_INSTALL_GLOBAL_ALLOC_HOOK()                                 \
  void* operator new(std::size_t size) {                                     \
    ::accl::obs::HeapAllocCount().fetch_add(1, std::memory_order_relaxed);   \
    if (void* p = std::malloc(size ? size : 1)) return p;                    \
    throw std::bad_alloc();                                                  \
  }                                                                          \
  void* operator new[](std::size_t size) { return ::operator new(size); }    \
  void operator delete(void* p) noexcept { std::free(p); }                   \
  void operator delete[](void* p) noexcept { std::free(p); }                 \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }      \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }    \
  namespace accl::obs::internal {                                            \
  struct HeapAllocHookInstaller {                                            \
    HeapAllocHookInstaller() { ::accl::obs::MarkHeapAllocHookInstalled(); }  \
  };                                                                         \
  static const HeapAllocHookInstaller heap_alloc_hook_installer{};           \
  }                                                                          \
  static_assert(true, "require a trailing semicolon")
