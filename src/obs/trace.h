// Flight-recorder tracing: per-thread fixed-capacity ring buffers of
// compact binary span/instant events, drained on demand to Chrome
// trace-event JSON (chrome://tracing, Perfetto).
//
// Hot-path contract:
//   - One process-wide enable flag (relaxed atomic). Every instrumentation
//     macro checks it first, so the *disabled* path is a single predicted
//     branch — no TLS lookup, no clock read, no ring write.
//   - When enabled, Record() is: one thread_local ring lookup (registered
//     on first use), one steady_clock read, one 24-byte slot store, one
//     relaxed+release head bump. No locks, no allocation after the ring
//     exists. The ring wraps: the recorder keeps the newest `capacity`
//     events per thread, which is exactly the flight-recorder semantics —
//     always able to dump the recent past.
//
// Event encoding: {const char* name, uint64 ts_ns, uint32 arg, uint8
// phase} = 24 bytes. `name` MUST be a string literal (or otherwise
// outlive the recorder): events store the pointer, not the bytes.
//
// Draining: DrainChromeJson() snapshots every ring under the registry
// mutex. Call it with tracing disabled and writers quiesced (e.g. after
// MatchBatch returned — the batch's countdown/pool synchronization
// orders every worker's ring writes before the caller's drain). A write
// racing a drain can at worst surface one torn event in a debug dump; it
// cannot corrupt the recorder. Rings persist after their thread exits
// (they are owned by the recorder), so short-lived threads' events
// survive until Clear().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace accl::obs {

class TraceRecorder {
 public:
  enum Phase : uint8_t { kBegin = 0, kEnd = 1, kInstant = 2 };

  /// One recorded event; see the encoding note above.
  struct Event {
    const char* name;
    uint64_t ts_ns;
    uint32_t arg;
    uint8_t phase;
  };
  static_assert(sizeof(Event) <= 24, "events must stay compact");

  /// The process-wide flight recorder.
  static TraceRecorder& Global();

  /// The one relaxed atomic every instrumentation site checks.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed) != 0;
  }
  void SetEnabled(bool on) {
    enabled_.store(on ? 1 : 0, std::memory_order_relaxed);
  }

  /// Per-thread ring capacity in events. Applies to rings created after
  /// the call (a thread's ring is sized at its first Record).
  void SetRingCapacity(size_t events);
  size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's ring. Callers normally go
  /// through the ACCL_TRACE_* macros, which gate on enabled() first.
  void Record(const char* name, Phase phase, uint32_t arg = 0);

  /// Drops every ring's contents (the rings stay registered).
  void Clear();

  /// Total events currently resident across all rings.
  size_t EventCount() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]} with one B/E/i entry
  /// per recorded event, tids = dense per-ring ordinals, ts in
  /// microseconds relative to the recorder's epoch.
  std::string DrainChromeJson() const;

  /// RAII span: records kBegin when constructed with tracing enabled and
  /// the matching kEnd at scope exit. A span that began keeps its end
  /// even if tracing is toggled off mid-scope (unbalanced B events would
  /// confuse the viewer more than one extra E).
  class Span {
   public:
    explicit Span(const char* name, uint32_t arg = 0) {
      if (__builtin_expect(enabled(), 0)) {
        name_ = name;
        Global().Record(name, kBegin, arg);
      }
    }
    ~Span() {
      if (__builtin_expect(name_ != nullptr, 0)) {
        Global().Record(name_, kEnd, 0);
      }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    const char* name_ = nullptr;
  };

 private:
  TraceRecorder();

  struct Ring {
    explicit Ring(size_t capacity, uint32_t tid)
        : slots(capacity), tid(tid) {}
    std::vector<Event> slots;
    /// Monotone write cursor; slot = head % capacity. Written with
    /// release so a quiesced drain's acquire load covers the slots.
    std::atomic<uint64_t> head{0};
    uint32_t tid;
  };

  Ring* RingForThisThread();

  static std::atomic<uint32_t> enabled_;
  std::atomic<size_t> ring_capacity_{8192};
  uint64_t epoch_ns_;  ///< steady-clock origin for exported timestamps

  mutable std::mutex mu_;  ///< ring registry only — never on the record path
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace accl::obs

/// Span over the enclosing scope. `name` must be a string literal.
#define ACCL_TRACE_CONCAT2(a, b) a##b
#define ACCL_TRACE_CONCAT(a, b) ACCL_TRACE_CONCAT2(a, b)
#define ACCL_TRACE_SPAN(name) \
  ::accl::obs::TraceRecorder::Span ACCL_TRACE_CONCAT(accl_trace_span_, \
                                                     __LINE__)(name)
#define ACCL_TRACE_SPAN_ARG(name, arg) \
  ::accl::obs::TraceRecorder::Span ACCL_TRACE_CONCAT(accl_trace_span_, \
                                                     __LINE__)(name, (arg))

/// Single instant event (zero duration).
#define ACCL_TRACE_INSTANT(name, arg)                                  \
  do {                                                                 \
    if (__builtin_expect(::accl::obs::TraceRecorder::enabled(), 0)) {  \
      ::accl::obs::TraceRecorder::Global().Record(                     \
          (name), ::accl::obs::TraceRecorder::kInstant,                \
          static_cast<uint32_t>(arg));                                 \
    }                                                                  \
  } while (0)
