#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace accl::obs {

namespace {

/// Dense process-wide thread ordinal (same probe-seed idiom as the epoch
/// manager's): a counter cell index, never a correctness input.
size_t ThreadOrdinal() {
  static std::atomic<size_t> counter{0};
  thread_local const size_t ordinal =
      counter.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void AppendJsonNumber(std::string* out, double v) {
  // Metric values are counts and quantized quantiles; fixed notation with
  // trailing-zero trim keeps the dump compact and parseable everywhere.
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  out->append(buf);
}

}  // namespace

size_t Counter::CellIndex() { return ThreadOrdinal() % kCells; }

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t n = other.counts_[i].load(std::memory_order_relaxed);
    if (n != 0) counts_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const uint64_t omax = other.max_.load(std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < omax && !max_.compare_exchange_weak(
                            prev, omax, std::memory_order_relaxed)) {
  }
}

double Histogram::Percentile(double q) const {
  const uint64_t n = Count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t cum = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cum += counts_[i].load(std::memory_order_relaxed);
    if (cum >= rank) {
      const double mid = static_cast<double>(BucketLow(i)) +
                         static_cast<double>(BucketWidth(i) - 1) / 2.0;
      // Clamp to the exact recorded max so pXX <= max always holds even
      // when max sits at its bucket's lower edge.
      return std::min(mid, static_cast<double>(Max()));
    }
  }
  return static_cast<double>(Max());  // racy count ahead of bucket adds
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = Count();
  s.sum = Sum();
  s.max = Max();
  s.p50 = Percentile(0.50);
  s.p90 = Percentile(0.90);
  s.p99 = Percentile(0.99);
  return s;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& base) const {
  MetricsSnapshot out = *this;
  for (auto& [name, v] : out.values) {
    const MetricValue* b = base.Find(name);
    if (b == nullptr || b->type != v.type) continue;
    if (v.type == MetricType::kCounter) {
      v.counter -= std::min(v.counter, b->counter);
    } else if (v.type == MetricType::kHistogram) {
      v.hist.count -= std::min(v.hist.count, b->hist.count);
      v.hist.sum -= std::min(v.hist.sum, b->hist.sum);
    }
  }
  return out;
}

const MetricValue* MetricsSnapshot::Find(const std::string& name) const {
  const auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const auto& p, const std::string& n) { return p.first < n; });
  if (it == values.end() || it->first != name) return nullptr;
  return &it->second;
}

std::string PrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(snap.values.size() * 64);
  for (const auto& [name, v] : snap.values) {
    switch (v.type) {
      case MetricType::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " ";
        AppendJsonNumber(&out, static_cast<double>(v.counter));
        out += "\n";
        break;
      case MetricType::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " ";
        AppendJsonNumber(&out, static_cast<double>(v.gauge));
        out += "\n";
        break;
      case MetricType::kHistogram: {
        out += "# TYPE " + name + " summary\n";
        const auto q = [&](const char* label, double val) {
          out += name + "{quantile=\"" + label + "\"} ";
          AppendJsonNumber(&out, val);
          out += "\n";
        };
        q("0.5", v.hist.p50);
        q("0.9", v.hist.p90);
        q("0.99", v.hist.p99);
        out += name + "_sum ";
        AppendJsonNumber(&out, static_cast<double>(v.hist.sum));
        out += "\n" + name + "_count ";
        AppendJsonNumber(&out, static_cast<double>(v.hist.count));
        out += "\n" + name + "_max ";
        AppendJsonNumber(&out, static_cast<double>(v.hist.max));
        out += "\n";
        break;
      }
    }
  }
  return out;
}

std::string JsonDump(const MetricsSnapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : snap.values) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    switch (v.type) {
      case MetricType::kCounter:
        AppendJsonNumber(&out, static_cast<double>(v.counter));
        break;
      case MetricType::kGauge:
        AppendJsonNumber(&out, static_cast<double>(v.gauge));
        break;
      case MetricType::kHistogram:
        out += "{\"count\":";
        AppendJsonNumber(&out, static_cast<double>(v.hist.count));
        out += ",\"sum\":";
        AppendJsonNumber(&out, static_cast<double>(v.hist.sum));
        out += ",\"max\":";
        AppendJsonNumber(&out, static_cast<double>(v.hist.max));
        out += ",\"p50\":";
        AppendJsonNumber(&out, v.hist.p50);
        out += ",\"p90\":";
        AppendJsonNumber(&out, v.hist.p90);
        out += ",\"p99\":";
        AppendJsonNumber(&out, v.hist.p99);
        out += "}";
        break;
    }
  }
  out += "}";
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    ACCL_CHECK(it->second.type == MetricType::kCounter);
    return it->second.c;
  }
  auto owned = std::make_shared<Counter>();
  Entry e;
  e.type = MetricType::kCounter;
  e.help = help;
  e.c = owned.get();
  e.owned = owned;
  entries_.emplace(name, std::move(e));
  return owned.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    ACCL_CHECK(it->second.type == MetricType::kGauge);
    return it->second.g;
  }
  auto owned = std::make_shared<Gauge>();
  Entry e;
  e.type = MetricType::kGauge;
  e.help = help;
  e.g = owned.get();
  e.owned = owned;
  entries_.emplace(name, std::move(e));
  return owned.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    ACCL_CHECK(it->second.type == MetricType::kHistogram);
    return it->second.h;
  }
  auto owned = std::make_shared<Histogram>();
  Entry e;
  e.type = MetricType::kHistogram;
  e.help = help;
  e.h = owned.get();
  e.owned = owned;
  entries_.emplace(name, std::move(e));
  return owned.get();
}

void MetricsRegistry::Attach(const std::string& name, Counter* c,
                             const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry e;
  e.type = MetricType::kCounter;
  e.help = help;
  e.c = c;
  entries_[name] = std::move(e);
}

void MetricsRegistry::Attach(const std::string& name, Gauge* g,
                             const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry e;
  e.type = MetricType::kGauge;
  e.help = help;
  e.g = g;
  entries_[name] = std::move(e);
}

void MetricsRegistry::Attach(const std::string& name, Histogram* h,
                             const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry e;
  e.type = MetricType::kHistogram;
  e.help = help;
  e.h = h;
  entries_[name] = std::move(e);
}

void MetricsRegistry::Detach(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.erase(name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot snap;
  snap.values.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // map iteration = name-sorted
    MetricValue v;
    v.type = e.type;
    switch (e.type) {
      case MetricType::kCounter:
        v.counter = e.c->Value();
        break;
      case MetricType::kGauge:
        v.gauge = e.g->Value();
        break;
      case MetricType::kHistogram:
        v.hist = e.h->Snapshot();
        break;
    }
    snap.values.emplace_back(name, v);
  }
  return snap;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

}  // namespace accl::obs
