#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace accl::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::atomic<uint32_t> TraceRecorder::enabled_{0};

TraceRecorder::TraceRecorder() : epoch_ns_(NowNs()) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* rec = new TraceRecorder();  // never destroyed
  return *rec;
}

void TraceRecorder::SetRingCapacity(size_t events) {
  if (events == 0) events = 1;
  ring_capacity_.store(events, std::memory_order_relaxed);
}

TraceRecorder::Ring* TraceRecorder::RingForThisThread() {
  thread_local Ring* ring = nullptr;
  if (__builtin_expect(ring == nullptr, 0)) {
    std::lock_guard<std::mutex> lk(mu_);
    rings_.push_back(std::make_unique<Ring>(
        ring_capacity_.load(std::memory_order_relaxed),
        static_cast<uint32_t>(rings_.size())));
    ring = rings_.back().get();
  }
  return ring;
}

void TraceRecorder::Record(const char* name, Phase phase, uint32_t arg) {
  Ring* r = RingForThisThread();
  const uint64_t h = r->head.load(std::memory_order_relaxed);
  Event& e = r->slots[h % r->slots.size()];
  e.name = name;
  e.ts_ns = NowNs() - epoch_ns_;
  e.arg = arg;
  e.phase = phase;
  r->head.store(h + 1, std::memory_order_release);
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& r : rings_) {
    // A concurrent writer may interleave; Clear is a quiesced-use tool
    // like the drain. Resetting head alone drops the contents.
    r->head.store(0, std::memory_order_release);
  }
}

size_t TraceRecorder::EventCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& r : rings_) {
    n += static_cast<size_t>(std::min<uint64_t>(
        r->head.load(std::memory_order_acquire), r->slots.size()));
  }
  return n;
}

std::string TraceRecorder::DrainChromeJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const auto& r : rings_) {
    const uint64_t head = r->head.load(std::memory_order_acquire);
    const uint64_t cap = r->slots.size();
    const uint64_t n = std::min(head, cap);
    for (uint64_t i = head - n; i < head; ++i) {
      const Event& e = r->slots[i % cap];
      if (e.name == nullptr) continue;
      const char* ph =
          e.phase == kBegin ? "B" : (e.phase == kEnd ? "E" : "i");
      const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
      int len;
      if (e.phase == kInstant) {
        len = std::snprintf(buf, sizeof buf,
                            "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                            "\"ts\":%.3f,\"pid\":1,\"tid\":%u,"
                            "\"args\":{\"v\":%u}}",
                            e.name, ts_us, r->tid, e.arg);
      } else {
        len = std::snprintf(buf, sizeof buf,
                            "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,"
                            "\"pid\":1,\"tid\":%u,\"args\":{\"v\":%u}}",
                            e.name, ph, ts_us, r->tid, e.arg);
      }
      if (len <= 0) continue;
      if (!first) out += ",";
      first = false;
      out.append(buf, static_cast<size_t>(len));
    }
  }
  out += "]}";
  return out;
}

}  // namespace accl::obs
