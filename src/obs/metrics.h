// Unified metrics plane: process- and engine-scoped named counters,
// gauges, and log-bucketed histograms with cheap hot-path recording and
// two export formats (Prometheus text exposition, JSON).
//
// Design:
//   - Counter: monotone, sharded by thread across cache-line-padded
//     atomic cells — Add() is one relaxed fetch_add on the calling
//     thread's cell, so concurrent writers on different cores never
//     bounce a line. Value() sums the cells (racy-exact: every Add that
//     happened-before the read is included).
//   - Gauge: one atomic int64 (Set/Add); for point-in-time levels.
//   - Histogram: HDR-style log-bucketed — kSubBits sub-buckets per
//     power-of-two octave, so bucket boundaries are exact below
//     2^kSubBits and the relative quantization error is bounded by
//     2^-kSubBits (12.5%) everywhere else. Record() is one relaxed
//     fetch_add on the bucket plus relaxed count/sum/max updates; no
//     locks, no sampling window. Percentiles are derived at snapshot
//     time by a bucket walk and clamped to the exact recorded max, so
//     p50 <= p90 <= p99 <= max always holds.
//   - MetricsRegistry: name -> metric. Metrics are either registry-owned
//     (GetCounter/GetGauge/GetHistogram create on first use) or
//     externally owned and Attach()ed — components (WAL, epoch manager,
//     log shipper) own their metrics as plain members and attach them to
//     an engine's registry when wired in, so the component works
//     standalone and the engine's DumpMetrics() sees everything.
//     Attached metrics must outlive the registry or be Detach()ed.
//   - Snapshot-with-delta: Snapshot() captures every metric's value;
//     MetricsSnapshot::DeltaSince(base) subtracts monotone quantities
//     (counter values, histogram count/sum) so a caller can report
//     per-window rates from two snapshots.
//
// Naming scheme (see README "Observability"): accl_<family>_<what>[_<unit>]
// with counters suffixed _total, histograms suffixed by their unit
// (e.g. _us). Families: pipeline, wal, ckpt, repl, epoch, rebalance,
// adapt, kernel, process.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace accl::obs {

/// Monotone counter, sharded by thread over padded cells.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    cells_[CellIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Number of padded cells Add() shards over.
  static constexpr size_t kCells = 16;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static size_t CellIndex();
  Cell cells_[kCells];
};

/// Point-in-time level. Single atomic; Set wins over concurrent Adds
/// only in the usual last-writer sense.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Derived view of a histogram at one instant.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Log-bucketed histogram of non-negative integer values (callers pick
/// the unit; latency sites record microseconds).
class Histogram {
 public:
  /// Sub-bucket bits per octave: 8 sub-buckets, <= 12.5% quantization.
  static constexpr int kSubBits = 3;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBits;
  /// Values below kSubBuckets get exact singleton buckets; above, one
  /// group of kSubBuckets per octave up to 2^64.
  static constexpr size_t kBuckets = (64 - kSubBits + 1) * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Adds every recorded sample of `other` into this histogram
  /// (concurrent Records on either side are folded racy-exact).
  void MergeFrom(const Histogram& other);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }

  /// Value at quantile `q` in [0,1]: the midpoint of the bucket holding
  /// the rank-`ceil(q*count)` sample, clamped to [0, Max()]. 0 when
  /// empty.
  double Percentile(double q) const;

  HistogramSnapshot Snapshot() const;

  static size_t BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    const int e = 63 - __builtin_clzll(v);  // MSB position, >= kSubBits
    const int shift = e - kSubBits;
    const size_t sub = static_cast<size_t>(v >> shift) & (kSubBuckets - 1);
    return (static_cast<size_t>(e - kSubBits + 1) << kSubBits) + sub;
  }
  /// Inclusive lower bound of bucket `idx`.
  static uint64_t BucketLow(size_t idx) {
    const size_t g = idx >> kSubBits;
    if (g == 0) return idx;
    return (kSubBuckets + (idx & (kSubBuckets - 1))) << (g - 1);
  }
  /// Bucket width (1 for the exact singleton buckets).
  static uint64_t BucketWidth(size_t idx) {
    const size_t g = idx >> kSubBits;
    return g == 0 ? 1 : uint64_t{1} << (g - 1);
  }

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

/// One metric's value at snapshot time.
struct MetricValue {
  MetricType type = MetricType::kCounter;
  uint64_t counter = 0;  ///< kCounter
  int64_t gauge = 0;     ///< kGauge
  HistogramSnapshot hist;  ///< kHistogram
};

/// All metrics of one registry at one instant, name-sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, MetricValue>> values;

  /// Subtracts `base`'s monotone quantities (counters, histogram
  /// count/sum) from this snapshot; gauges and percentiles keep their
  /// current values. Metrics absent from `base` pass through unchanged.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;

  const MetricValue* Find(const std::string& name) const;
};

/// Prometheus text exposition (one # TYPE line per metric; histograms as
/// summaries with quantile labels plus _max).
std::string PrometheusText(const MetricsSnapshot& snap);

/// Compact JSON object keyed by metric name: counters/gauges as numbers,
/// histograms as {"count","sum","max","p50","p90","p99"}.
std::string JsonDump(const MetricsSnapshot& snap);

/// Name -> metric registry; see the file comment for the ownership model.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (heap-alloc gauge, kernel dispatch
  /// counters, anything not scoped to one engine).
  static MetricsRegistry& Default();

  /// Create-or-return a registry-owned metric. Returning an existing
  /// name of a different kind aborts (a naming bug, not a runtime
  /// condition).
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// Registers an externally-owned metric under `name` (replacing any
  /// previous registrant of that name). The metric must stay alive until
  /// detached or the registry is destroyed (the registry never touches
  /// registrants at destruction).
  void Attach(const std::string& name, Counter* c,
              const std::string& help = "");
  void Attach(const std::string& name, Gauge* g, const std::string& help = "");
  void Attach(const std::string& name, Histogram* h,
              const std::string& help = "");
  void Detach(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string PrometheusText() const { return obs::PrometheusText(Snapshot()); }
  std::string JsonDump() const { return obs::JsonDump(Snapshot()); }

  size_t size() const;

 private:
  struct Entry {
    MetricType type;
    std::string help;
    // Exactly one of the raw pointers is set; `owned` keeps storage
    // alive for registry-created metrics.
    Counter* c = nullptr;
    Gauge* g = nullptr;
    Histogram* h = nullptr;
    std::shared_ptr<void> owned;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace accl::obs
