#include "obs/alloc_hook.h"

namespace accl::obs {

namespace {
std::atomic<bool> g_hook_installed{false};
}  // namespace

std::atomic<uint64_t>& HeapAllocCount() {
  // Constant-initialized function-local: safe to touch from the very
  // first allocation a hooked binary performs, even before main.
  static std::atomic<uint64_t> count{0};
  return count;
}

uint64_t HeapAllocsNow() {
  return HeapAllocCount().load(std::memory_order_relaxed);
}

bool HeapAllocHookInstalled() {
  return g_hook_installed.load(std::memory_order_relaxed);
}

void MarkHeapAllocHookInstalled() {
  g_hook_installed.store(true, std::memory_order_relaxed);
}

}  // namespace accl::obs
