#include "core/signature.h"

#include <cstdio>

#include "util/check.h"

namespace accl {

std::string VarInterval::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%g,%g%c", lo, hi, hi_closed ? ']' : ')');
  return buf;
}

Signature::Signature(Dim nd)
    : nd_(nd), v_(2 * static_cast<size_t>(nd), VarInterval{}) {
  ACCL_CHECK(nd > 0);
}

bool Signature::MatchesObject(BoxView o) const {
  ACCL_DCHECK(o.dims() == nd_);
  for (Dim d = 0; d < nd_; ++d) {
    if (!v_[2 * d].Contains(o.lo(d))) return false;
    if (!v_[2 * d + 1].Contains(o.hi(d))) return false;
  }
  return true;
}

bool Signature::AdmitsQuery(const Query& q) const {
  ACCL_DCHECK(q.dims() == nd_);
  const Box& qb = q.box;
  switch (q.rel) {
    case Relation::kIntersects:
      for (Dim d = 0; d < nd_; ++d) {
        if (v_[2 * d].lo > qb.hi(d) || v_[2 * d + 1].hi < qb.lo(d)) {
          return false;
        }
      }
      return true;
    case Relation::kContainedBy:
      for (Dim d = 0; d < nd_; ++d) {
        if (v_[2 * d].hi < qb.lo(d) || v_[2 * d + 1].lo > qb.hi(d)) {
          return false;
        }
      }
      return true;
    case Relation::kEncloses:
      for (Dim d = 0; d < nd_; ++d) {
        if (v_[2 * d].lo > qb.lo(d) || v_[2 * d + 1].hi < qb.hi(d)) {
          return false;
        }
      }
      return true;
  }
  return false;
}

bool Signature::IsRoot() const {
  for (const VarInterval& vi : v_) {
    if (!vi.IsFullDomain()) return false;
  }
  return true;
}

bool Signature::RefinedFrom(const Signature& outer) const {
  if (outer.nd_ != nd_) return false;
  for (size_t i = 0; i < v_.size(); ++i) {
    const VarInterval& in = v_[i];
    const VarInterval& out = outer.v_[i];
    // Every x accepted by `in` must be accepted by `out`.
    if (in.lo < out.lo) return false;
    if (in.hi > out.hi) return false;
    if (in.hi == out.hi && in.hi_closed && !out.hi_closed) return false;
  }
  return true;
}

std::string Signature::ToString() const {
  std::string s = "{";
  for (Dim d = 0; d < nd_; ++d) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%sd%u %s:%s", d ? ", " : "", d,
                  start_var(d).ToString().c_str(),
                  end_var(d).ToString().c_str());
    s += buf;
  }
  s += "}";
  return s;
}

void Signature::Serialize(ByteWriter* w) const {
  w->PutU32(nd_);
  for (const VarInterval& vi : v_) {
    w->PutF32(vi.lo);
    w->PutF32(vi.hi);
    w->PutU8(vi.hi_closed ? 1 : 0);
  }
}

bool Signature::Deserialize(ByteReader* r, Signature* out) {
  uint32_t nd = 0;
  if (!r->GetU32(&nd) || nd == 0 || nd > 65535) return false;
  Signature s(nd);
  for (Dim d = 0; d < nd; ++d) {
    VarInterval sv, ev;
    uint8_t c1 = 0, c2 = 0;
    if (!r->GetF32(&sv.lo) || !r->GetF32(&sv.hi) || !r->GetU8(&c1)) return false;
    sv.hi_closed = c1 != 0;
    if (!r->GetF32(&ev.lo) || !r->GetF32(&ev.hi) || !r->GetU8(&c2)) return false;
    ev.hi_closed = c2 != 0;
    s.set(d, sv, ev);
  }
  *out = std::move(s);
  return true;
}

}  // namespace accl
