#include "core/adaptive_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/predicates.h"
#include "kernels/backend_registry.h"
#include "util/check.h"

namespace accl {

AdaptiveIndex::AdaptiveIndex(const AdaptiveConfig& cfg)
    : cfg_(cfg),
      model_(CostModel::Make(
          cfg.scenario, cfg.nd, cfg.sys,
          // Symmetric-case candidate count per cluster (paper footnote 3).
          static_cast<double>(cfg.nd) * cfg.division_factor *
              (cfg.division_factor + 1) / 2.0)),
      backend_(kernels::BackendRegistry::Instance().Resolve(
          cfg.verify_backend)),
      sig_table_(cfg.nd, backend_) {
  ACCL_CHECK(cfg_.nd > 0);
  // Unknown names should be caught by validation (sdi::ValidateOptions)
  // before an index is ever constructed; here it is a programming error.
  ACCL_CHECK(backend_ != nullptr);
  owner_.reserve(1024);
  ACCL_CHECK(cfg_.division_factor >= 2);
  ACCL_CHECK(cfg_.reserve_fraction >= 0.0 && cfg_.reserve_fraction < 1.0);
  root_ = NewCluster(Signature(cfg_.nd), kNoCluster);
}

AdaptiveIndex::~AdaptiveIndex() = default;

VerifyKernelInfo AdaptiveIndex::verify_kernel() const {
  return {backend_->name(), backend_->vector_width_floats()};
}

ClusterId AdaptiveIndex::NewCluster(Signature sig, ClusterId parent) {
  ClusterId id;
  auto c = std::make_unique<Cluster>(0, std::move(sig), cfg_.nd,
                                     cfg_.reserve_fraction);
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    clusters_[id] = std::move(c);
  } else {
    id = static_cast<ClusterId>(clusters_.size());
    clusters_.push_back(std::move(c));
  }
  Cluster* cl = cluster(id);
  cl->id = id;
  cl->parent = parent;
  cl->w0 = total_weight_;
  cl->candidates = std::make_unique<CandidateSet>(
      cl->sig, cfg_.division_factor, total_weight_);
  cl->sig_slot = sig_table_.Add(id, cl->sig);
  if (parent != kNoCluster) cluster(parent)->children.push_back(id);
  ++live_clusters_;
  return id;
}

void AdaptiveIndex::FreeCluster(ClusterId id) {
  Cluster* c = cluster(id);
  ACCL_CHECK(c != nullptr);
  ACCL_CHECK(c->children.empty());
  ACCL_CHECK(c->size() == 0);
  if (c->parent != kNoCluster) {
    auto& siblings = cluster(c->parent)->children;
    auto it = std::find(siblings.begin(), siblings.end(), id);
    ACCL_CHECK(it != siblings.end());
    siblings.erase(it);
  }
  const ClusterId moved = sig_table_.Remove(c->sig_slot);
  if (moved != kNoCluster) cluster(moved)->sig_slot = c->sig_slot;
  clusters_[id].reset();
  free_ids_.push_back(id);
  --live_clusters_;
}

void AdaptiveIndex::Insert(ObjectId id, BoxView box) {
  ACCL_CHECK(box.dims() == cfg_.nd);
  ACCL_CHECK(owner_.find(id) == owner_.end());
  // Paper Fig. 4: among the clusters whose signature accepts the object,
  // place it in the one with the lowest access probability. Because every
  // child signature refines its parent's, the accepting clusters form an
  // upward-closed subtree: descending from the root and recursing only into
  // accepting children enumerates exactly that set without scanning the
  // whole cluster table. Ties keep the lowest id, as the old full scan did.
  ClusterId best = kNoCluster;
  double best_p = std::numeric_limits<double>::infinity();
  descent_.clear();
  if (cluster(root_)->sig.MatchesObject(box)) descent_.push_back(root_);
  while (!descent_.empty()) {
    const ClusterId cid = descent_.back();
    descent_.pop_back();
    const Cluster* c = cluster(cid);
    const double p = AccessProbOf(*c);
    if (p < best_p || (p == best_p && cid < best)) {
      best_p = p;
      best = cid;
    }
    for (ClusterId ch : c->children) {
      if (cluster(ch)->sig.MatchesObject(box)) descent_.push_back(ch);
    }
  }
  ACCL_CHECK(best != kNoCluster);  // the root accepts everything
  Cluster* b = cluster(best);
  const uint32_t slot = static_cast<uint32_t>(b->objects.size());
  b->objects.Append(id, box);
  b->candidates->AccountObject(box, +1.0);
  owner_.emplace(id, ObjectRef{best, slot});
  ++object_count_;
}

void AdaptiveIndex::BulkInsert(Span<const ObjectId> ids,
                               Span<const float> coords) {
  const size_t stride = 2 * static_cast<size_t>(cfg_.nd);
  ACCL_CHECK(coords.size() == ids.size() * stride);
  owner_.reserve(owner_.size() + ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    Insert(ids[i], BoxView(coords.data() + i * stride, cfg_.nd));
  }
}

size_t AdaptiveIndex::BulkErase(Span<const ObjectId> ids) {
  size_t erased = 0;
  for (const ObjectId id : ids) {
    if (Erase(id)) ++erased;
  }
  return erased;
}

void AdaptiveIndex::ForEachObject(
    const std::function<void(ObjectId, BoxView)>& fn) const {
  for (const auto& up : clusters_) {
    if (!up) continue;
    const size_t n = up->size();
    for (size_t i = 0; i < n; ++i) fn(up->objects.id(i), up->objects.box(i));
  }
}

bool AdaptiveIndex::Erase(ObjectId id) {
  auto it = owner_.find(id);
  if (it == owner_.end()) return false;
  const ObjectRef ref = it->second;
  Cluster* c = cluster(ref.cluster);
  ACCL_CHECK(c != nullptr && ref.slot < c->objects.size());
  ACCL_DCHECK(c->objects.id(ref.slot) == id);
  c->candidates->AccountObject(c->objects.box(ref.slot), -1.0);
  const ObjectId filler = c->objects.RemoveAt(ref.slot);
  owner_.erase(it);
  if (filler != kInvalidObject) {
    // `filler` is the (distinct) object swapped down from the cluster's
    // last slot; when the erased slot *was* the last slot RemoveAt reports
    // kInvalidObject, so a self-swap can never reach this lookup. The
    // checked find turns any owner-map/slot-array disagreement into a
    // diagnosable abort instead of dereferencing end().
    ACCL_DCHECK(filler != id);
    auto fit = owner_.find(filler);
    ACCL_CHECK(fit != owner_.end());
    ACCL_DCHECK(fit->second.cluster == ref.cluster);
    fit->second.slot = ref.slot;
  }
  --object_count_;
  return true;
}

void AdaptiveIndex::Execute(const Query& q, std::vector<ObjectId>* out,
                            QueryMetrics* metrics) {
  ACCL_CHECK(q.dims() == cfg_.nd);
  QueryMetrics local;
  QueryMetrics* m = metrics ? metrics : &local;
  m->Clear();
  m->groups_total = live_clusters_;
  // Every signature is checked (paper Fig. 5 step 2): charge A per cluster.
  m->sim_time_ms += model_.A * static_cast<double>(live_clusters_);

  // Admit filter over the packed signature table, then explore in cluster-id
  // order (the order the old cluster-table walk used, so result sets and the
  // floating-point accounting are bit-identical).
  admitted_.clear();
  admitted_.reserve(live_clusters_);
  sig_table_.CollectAdmitted(q, &admitted_);
  std::sort(admitted_.begin(), admitted_.end());

  // Pre-pass: size the output for the worst case (every verified object
  // matches) and issue the pointer chases for the scattered per-cluster
  // data early, so the explore loop below streams instead of stalling.
  size_t verify_total = 0;
  for (ClusterId cid : admitted_) {
    const Cluster* c = cluster(cid);
    verify_total += c->size();
    __builtin_prefetch(c->objects.coords_data());
    __builtin_prefetch(c->candidates.get());
  }
  // Second stage: the candidate headers are in flight now, so the indicator
  // arrays behind them can be staged too.
  for (ClusterId cid : admitted_) {
    __builtin_prefetch(cluster(cid)->candidates->q_data(), 1);
  }
  out->reserve(out->size() + verify_total);

  bq_.Assign(q.box.view(), q.rel);
  qmasks_.Reset(cfg_.nd);
  for (ClusterId cid : admitted_) {
    Cluster* c = cluster(cid);

    // Explore the cluster: every member is checked individually.
    ++m->groups_explored;
    const size_t n = c->size();
    m->sim_time_ms += model_.B;  // exploration setup (+ seek on disk)
    if (cfg_.scenario == StorageScenario::kDisk) {
      ++m->disk_seeks;
      m->disk_bytes += c->objects.live_bytes();
      m->sim_time_ms += cfg_.sys.disk_ms_per_byte *
                        static_cast<double>(c->objects.live_bytes());
    }
    // Update performance indicators (paper Fig. 5 steps 7-10). Runs before
    // the verification sweep so its scattered indicator-array stores drain
    // in the background while the kernel streams the coordinate block.
    c->q += 1.0;
    c->candidates->AccountQuery(q, &qmasks_);

    uint64_t cluster_dims = 0;
    backend_->NoteDispatch();
    m->result_count += backend_->VerifyBatch(c->objects.coords_data(),
                                             c->objects.ids().data(), n, bq_,
                                             out, &cluster_dims);
    m->dims_checked += cluster_dims;
    m->objects_verified += n;
    m->bytes_verified += c->objects.live_bytes();
    // CPU verification charged for the bytes actually compared (early exit
    // on the first failing dimension), matching the Sequential Scan
    // accounting so the competitors are charged identically per check.
    m->sim_time_ms += cfg_.sys.verify_ms_per_byte *
                      static_cast<double>(4ull * n + 8ull * cluster_dims);
  }

  ++total_queries_;
  total_weight_ += 1.0;
  if (cfg_.stats_halving_period != 0 &&
      total_queries_ % cfg_.stats_halving_period == 0) {
    HalveAllStats();
  }
  if (cfg_.reorg_period != 0 && total_queries_ % cfg_.reorg_period == 0) {
    Reorganize();
  }
}

void AdaptiveIndex::HalveAllStats() {
  total_weight_ *= 0.5;
  for (const auto& up : clusters_) {
    if (!up) continue;
    up->q *= 0.5;
    up->w0 *= 0.5;
    up->candidates->Halve();
  }
}

void AdaptiveIndex::Reorganize() {
  ++reorg_stats_.passes;
  reorg_stats_.last_pass_splits = 0;
  reorg_stats_.last_pass_merges = 0;

  std::vector<ClusterId> snapshot;
  snapshot.reserve(live_clusters_);
  for (const auto& up : clusters_) {
    if (up) snapshot.push_back(up->id);
  }

  // Paper Fig. 1, applied to every materialized cluster: merge if
  // profitable, otherwise try to split.
  for (size_t si = 0; si < snapshot.size(); ++si) {
    const ClusterId id = snapshot[si];
    Cluster* c = cluster(id);
    if (c == nullptr) continue;  // merged away earlier in this pass
    if (si + 1 < snapshot.size()) {
      // Stage the next cluster's split-scan data; the candidate indicator
      // array is behind two pointer hops and otherwise stalls the scan.
      const Cluster* nx = cluster(snapshot[si + 1]);
      if (nx != nullptr) {
        __builtin_prefetch(nx->candidates.get());
        __builtin_prefetch(nx->candidates->n_data());
      }
    }
    if (!c->is_root()) {
      Cluster* a = cluster(c->parent);
      // An emptied cluster costs A + pB for nothing; fold it eagerly.
      const bool empty = c->size() == 0 && c->children.empty();
      const bool observable =
          c->ObservationWindow(total_weight_) >= cfg_.min_observation &&
          a->ObservationWindow(total_weight_) >= cfg_.min_observation;
      if (empty || (observable &&
                    model_.MergeBenefit(AccessProbOf(*c), AccessProbOf(*a),
                                        static_cast<double>(c->size())) > 0)) {
        MergeCluster(id);
        ++reorg_stats_.merges;
        ++reorg_stats_.last_pass_merges;
        continue;
      }
    }
    const size_t created = TryClusterSplit(id);
    reorg_stats_.last_pass_splits += created;
  }
}

void AdaptiveIndex::MergeCluster(ClusterId cid) {
  Cluster* c = cluster(cid);
  ACCL_CHECK(!c->is_root());
  Cluster* a = cluster(c->parent);
  // Paper Fig. 2: move all objects to the parent, updating the parent's
  // candidate indicators; reparent children; drop the cluster.
  const size_t n = c->size();
  for (size_t i = 0; i < n; ++i) {
    const BoxView b = c->objects.box(i);
    const ObjectId oid = c->objects.id(i);
    ACCL_DCHECK(a->sig.MatchesObject(b));
    const uint32_t slot = static_cast<uint32_t>(a->objects.size());
    a->objects.Append(oid, b);
    a->candidates->AccountObject(b, +1.0);
    owner_[oid] = ObjectRef{a->id, slot};
  }
  c->objects.Clear();
  for (ClusterId ch : c->children) {
    cluster(ch)->parent = a->id;
    a->children.push_back(ch);
  }
  c->children.clear();
  FreeCluster(cid);
}

size_t AdaptiveIndex::TryClusterSplit(ClusterId cid) {
  Cluster* c = cluster(cid);
  if (c->ObservationWindow(total_weight_) < cfg_.min_observation) return 0;

  size_t created = 0;
  // Paper Fig. 3: greedily materialize the most profitable candidate, then
  // recompute (moved objects change the indicators of other candidates).
  for (;;) {
    if (live_clusters_ >= cfg_.max_clusters) break;
    const CandidateSet& cs = *c->candidates;
    const double cand_window = total_weight_ - cs.created_weight();
    if (cand_window < cfg_.min_observation) break;
    const double p_c = AccessProbOf(*c);

    double best_beta = 0.0;
    size_t best = static_cast<size_t>(-1);
    // Branch-free scan of the packed indicator arrays: the qualification
    // tests (object count, probability-gap hysteresis — see AdaptiveConfig —
    // and benefit floor) are folded into one predicate so mixed candidate
    // populations cause no mispredictions. Selection is identical to the
    // branchy form: highest benefit, lowest index on ties.
    const double* cn = cs.n_data();
    const double* cq = cs.q_data();
    const double min_n = static_cast<double>(cfg_.min_split_objects);
    const double wdenom = cand_window + 1.0;
    const double p_gap = cfg_.split_probability_ratio * p_c;
    for (size_t i = 0; i < cs.size(); ++i) {
      // The division is kept (not a reciprocal multiply) so the estimate is
      // bit-identical to the scalar formulation and no borderline split
      // decision can flip.
      const double p_s = (cq[i] + 1.0) / wdenom;
      const double beta = model_.MaterializationBenefit(p_c, p_s, cn[i]);
      const bool ok = (cn[i] >= min_n) & (p_s <= p_gap) &
                      (beta > cfg_.min_split_benefit_ms) & (beta > best_beta);
      best_beta = ok ? beta : best_beta;
      best = ok ? i : best;
    }
    if (best == static_cast<size_t>(-1)) break;
    MaterializeCandidate(cid, best);
    c = cluster(cid);
    ++created;
    ++reorg_stats_.splits;
  }
  if (created > 0) c->objects.Compact();
  return created;
}

ClusterId AdaptiveIndex::MaterializeCandidate(ClusterId cid, size_t ci) {
  Cluster* c = cluster(cid);
  const Signature child_sig = c->candidates->MakeSignature(c->sig, ci);
  ACCL_DCHECK(child_sig.RefinedFrom(c->sig));
  // Copy the candidate's indicators before they are superseded.
  const CandidateSet::Candidate cand = c->candidates->at(ci);
  const double cand_w0 = c->candidates->created_weight();

  const ClusterId did = NewCluster(child_sig, cid);
  c = cluster(cid);  // the cluster table may have grown
  Cluster* d = cluster(did);
  // The candidate's query statistics become the new cluster's: they measure
  // exactly the access probability the materialized cluster will have.
  d->q = cand.q;
  d->w0 = cand_w0;

  // Move qualifying objects (paper Fig. 3 steps 5-6 and 9-11). Iterating
  // backwards keeps unvisited slots stable across swap-removals.
  for (size_t i = c->objects.size(); i-- > 0;) {
    const BoxView b = c->objects.box(i);
    if (!d->sig.MatchesObject(b)) continue;
    const ObjectId oid = c->objects.id(i);
    const uint32_t slot = static_cast<uint32_t>(d->objects.size());
    d->objects.Append(oid, b);
    d->candidates->AccountObject(b, +1.0);
    c->candidates->AccountObject(b, -1.0);
    owner_[oid] = ObjectRef{did, slot};
    const ObjectId filler = c->objects.RemoveAt(i);
    if (filler != kInvalidObject) {
      auto fit = owner_.find(filler);
      ACCL_CHECK(fit != owner_.end());
      ACCL_DCHECK(fit->second.cluster == cid);
      fit->second.slot = static_cast<uint32_t>(i);
    }
  }
  d->objects.Compact();
  return did;
}

ClusterId AdaptiveIndex::OwnerOf(ObjectId id) const {
  auto it = owner_.find(id);
  return it == owner_.end() ? kNoCluster : it->second.cluster;
}

double AdaptiveIndex::ExpectedQueryTimeMs() const {
  double t = 0.0;
  for (const auto& up : clusters_) {
    if (!up) continue;
    t += model_.ClusterTime(AccessProbOf(*up),
                            static_cast<double>(up->size()));
  }
  return t;
}

std::vector<AdaptiveIndex::ClusterInfo> AdaptiveIndex::GetClusterInfos()
    const {
  std::vector<ClusterInfo> infos;
  infos.reserve(live_clusters_);
  for (const auto& up : clusters_) {
    if (!up) continue;
    ClusterInfo ci;
    ci.id = up->id;
    ci.parent = up->parent;
    ci.objects = up->size();
    ci.access_prob = AccessProbOf(*up);
    ci.candidates = up->candidates->size();
    ci.utilization = up->objects.utilization();
    ci.depth = 0;
    for (ClusterId p = up->parent; p != kNoCluster;
         p = cluster(p)->parent) {
      ++ci.depth;
    }
    infos.push_back(ci);
  }
  return infos;
}

void AdaptiveIndex::CheckInvariants() const {
  size_t live = 0;
  size_t objects = 0;
  for (const auto& up : clusters_) {
    if (!up) continue;
    ++live;
    const Cluster& c = *up;
    objects += c.size();
    if (c.is_root()) {
      ACCL_CHECK(c.id == root_);
      ACCL_CHECK(c.sig.IsRoot());
    } else {
      const Cluster* a = cluster(c.parent);
      ACCL_CHECK(a != nullptr);
      ACCL_CHECK(std::count(a->children.begin(), a->children.end(), c.id) ==
                 1);
      ACCL_CHECK(c.sig.RefinedFrom(a->sig));
    }
    for (ClusterId ch : c.children) {
      ACCL_CHECK(cluster(ch) != nullptr);
      ACCL_CHECK(cluster(ch)->parent == c.id);
    }
    // The signature table's packed image of this cluster agrees.
    ACCL_CHECK(sig_table_.SlotMatches(c.sig_slot, c.id, c.sig));
    // Every member matches the signature and the ownership map agrees,
    // including the exact slot.
    for (size_t i = 0; i < c.size(); ++i) {
      ACCL_CHECK(c.sig.MatchesObject(c.objects.box(i)));
      auto it = owner_.find(c.objects.id(i));
      ACCL_CHECK(it != owner_.end());
      ACCL_CHECK(it->second.cluster == c.id);
      ACCL_CHECK(it->second.slot == i);
    }
    // Candidate object counts must equal a fresh recount.
    CandidateSet fresh(c.sig, cfg_.division_factor, 0.0);
    for (size_t i = 0; i < c.size(); ++i) {
      fresh.AccountObject(c.objects.box(i), +1.0);
    }
    ACCL_CHECK(fresh.size() == c.candidates->size());
    for (size_t i = 0; i < fresh.size(); ++i) {
      ACCL_CHECK(std::fabs(fresh.at(i).n - c.candidates->at(i).n) < 1e-6);
    }
  }
  ACCL_CHECK(live == live_clusters_);
  ACCL_CHECK(objects == object_count_);
  ACCL_CHECK(owner_.size() == object_count_);
  ACCL_CHECK(sig_table_.size() == live_clusters_);
}

std::vector<ClusterImage> AdaptiveIndex::DumpClusters() const {
  std::vector<ClusterImage> images;
  images.reserve(live_clusters_);
  for (const auto& up : clusters_) {
    if (!up) continue;
    ClusterImage img;
    img.id = up->id;
    img.parent = up->parent;
    img.sig = up->sig;
    const size_t n = up->size();
    img.ids.assign(up->objects.ids().begin(), up->objects.ids().end());
    const size_t stride = 2 * static_cast<size_t>(cfg_.nd);
    img.coords.assign(up->objects.coords_data(),
                      up->objects.coords_data() + n * stride);
    images.push_back(std::move(img));
  }
  return images;
}

std::unique_ptr<AdaptiveIndex> AdaptiveIndex::FromImages(
    const AdaptiveConfig& cfg, const std::vector<ClusterImage>& images) {
  auto idx = std::make_unique<AdaptiveIndex>(cfg);
  // Discard the default root; rebuild the table exactly as imaged.
  idx->clusters_.clear();
  idx->free_ids_.clear();
  idx->live_clusters_ = 0;
  idx->root_ = kNoCluster;
  idx->sig_table_.Clear();
  idx->owner_.clear();
  idx->object_count_ = 0;

  ClusterId max_id = 0;
  for (const ClusterImage& img : images) max_id = std::max(max_id, img.id);
  idx->clusters_.resize(static_cast<size_t>(max_id) + 1);

  for (const ClusterImage& img : images) {
    ACCL_CHECK(img.sig.dims() == cfg.nd);
    ACCL_CHECK(!idx->clusters_[img.id]);
    auto c = std::make_unique<Cluster>(img.id, img.sig, cfg.nd,
                                       cfg.reserve_fraction);
    c->parent = img.parent;
    c->candidates =
        std::make_unique<CandidateSet>(c->sig, cfg.division_factor, 0.0);
    c->sig_slot = idx->sig_table_.Add(img.id, c->sig);
    const size_t stride = 2 * static_cast<size_t>(cfg.nd);
    ACCL_CHECK(img.coords.size() == img.ids.size() * stride);
    for (size_t i = 0; i < img.ids.size(); ++i) {
      const BoxView b(img.coords.data() + i * stride, cfg.nd);
      ACCL_CHECK(c->sig.MatchesObject(b));
      c->objects.Append(img.ids[i], b);
      c->candidates->AccountObject(b, +1.0);
      auto [it, fresh] = idx->owner_.emplace(
          img.ids[i], ObjectRef{img.id, static_cast<uint32_t>(i)});
      ACCL_CHECK(fresh);
      (void)it;
      ++idx->object_count_;
    }
    ++idx->live_clusters_;
    idx->clusters_[img.id] = std::move(c);
  }

  for (ClusterId id = 0; id <= max_id; ++id) {
    if (!idx->clusters_[id]) {
      idx->free_ids_.push_back(id);
      continue;
    }
    Cluster* c = idx->clusters_[id].get();
    if (c->parent == kNoCluster) {
      ACCL_CHECK(idx->root_ == kNoCluster);
      idx->root_ = id;
    } else {
      ACCL_CHECK(idx->clusters_[c->parent] != nullptr);
      idx->clusters_[c->parent]->children.push_back(id);
    }
  }
  ACCL_CHECK(idx->root_ != kNoCluster);
  return idx;
}

}  // namespace accl
