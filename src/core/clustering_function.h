// The clustering function (paper §4.2) and candidate subcluster bookkeeping.
//
// Given a cluster signature, each dimension's pair of variation intervals is
// divided into `f` subintervals (f = division factor). Every feasible
// combination (start-piece ia, end-piece ib) on a single dimension — other
// dimensions unchanged — yields one *candidate subcluster*. A combination is
// feasible iff some object (a <= b) can fall in it, i.e. the start piece
// begins strictly before the end piece ends. When the two variation
// intervals are identical this leaves exactly f(f+1)/2 candidates (paper
// footnote 3); in general up to f^2 per dimension, hence between
// Nd*f(f+1)/2 and Nd*f^2 candidates per cluster — linear in Nd.
//
// Candidates are *virtual*: only their (dim, ia, ib) key and two performance
// indicators are stored — the number of member objects matching them (n,
// maintained incrementally on insert/move) and the number of exploring
// queries matching them (q, counted while the owning cluster is explored).
#pragma once

#include <cstdint>
#include <vector>

#include "core/signature.h"
#include "geometry/query.h"

namespace accl {

/// The j-th of `f` equal pieces of a variation interval. Pieces are
/// half-open except the last, which inherits the parent's closedness.
VarInterval Piece(const VarInterval& v, uint32_t j, uint32_t f);

/// Index of the piece of `v` (divided into `f`) containing `x`, or -1 when x
/// lies outside `v`. Robust to float rounding at piece boundaries: the
/// result always satisfies Piece(v, idx, f).Contains(x).
int PieceIndex(const VarInterval& v, uint32_t f, float x);

/// Per-query scratch shared across the CandidateSets a query explores.
///
/// A full-domain variation interval divides into the same piece boundaries
/// in every cluster, so the per-dimension piece admission masks for such
/// dimensions depend only on the query — computing them once per query and
/// reusing them across clusters removes most of the cold-cache traffic of
/// the statistics update. Reset() per query; filled lazily.
struct QueryPieceMasks {
  std::vector<uint8_t> valid;  ///< per dim: masks below are computed
  std::vector<uint32_t> sm;    ///< admitted start pieces
  std::vector<uint32_t> em;    ///< admitted end pieces

  void Reset(Dim nd) {
    valid.assign(nd, 0);
    sm.resize(nd);
    em.resize(nd);
  }
};

/// The set of candidate subclusters of one cluster, with their performance
/// indicators and fast (dim, piece) lookup.
class CandidateSet {
 public:
  struct Candidate {
    uint16_t dim;
    uint8_t ia;  ///< start-piece index
    uint8_t ib;  ///< end-piece index
    double n = 0.0;  ///< objects of the owning cluster matching the candidate
    double q = 0.0;  ///< (decayed) count of exploring queries matching it
  };

  /// Builds the candidates of `sig` with division factor `f`.
  /// `created_weight` is the global decayed query weight at creation time;
  /// access probabilities are estimated over queries seen since then.
  /// Dimensions whose variation intervals are narrower than `min_width` are
  /// not divided further (they cannot productively discriminate).
  CandidateSet(const Signature& sig, uint32_t f, double created_weight,
               float min_width = 1e-5f);

  uint32_t division_factor() const { return f_; }
  double created_weight() const { return w0_; }
  size_t size() const { return key_.size(); }

  /// Assembled view of candidate `i` (indicators live in parallel arrays).
  Candidate at(size_t i) const {
    const uint32_t k = key_[i];
    Candidate c;
    c.dim = static_cast<uint16_t>(k >> 16);
    c.ia = static_cast<uint8_t>((k >> 8) & 0xFF);
    c.ib = static_cast<uint8_t>(k & 0xFF);
    c.n = n_[i];
    c.q = q_[i];
    return c;
  }

  /// Direct access to the object-count indicator array (the reorganization
  /// scan reads only this; keeping it packed avoids dragging the whole
  /// candidate record through the cache).
  const double* n_data() const { return n_.data(); }
  const double* q_data() const { return q_.data(); }

  /// Adjusts candidate object counts for one object entering (delta=+1) or
  /// leaving (delta=-1) the owning cluster. The object must match the
  /// owning cluster's signature.
  void AccountObject(BoxView o, double delta);

  /// Increments q for every candidate whose signature admits `query`.
  /// Called exactly when the owning cluster is explored. `shared` (optional)
  /// caches the admission masks of full-domain dimensions across the
  /// clusters one query explores.
  void AccountQuery(const Query& query, QueryPieceMasks* shared = nullptr);

  /// Materializes candidate `i`'s signature from the owning signature.
  Signature MakeSignature(const Signature& owner, size_t i) const;

  /// Halves all statistics (sliding-window decay), including the creation
  /// weight so probability denominators stay consistent.
  void Halve();

 private:
  struct DimInfo {
    VarInterval start_var;
    VarInterval end_var;
    int32_t first = -1;  ///< base into lookup_: f*f slots
    bool divided = false;
  };

  /// Hot per-divided-dimension record for the accounting paths. Only
  /// divided dimensions appear; the i-th record's cached piece boundaries
  /// live at piece_bounds_[i * 2 * (f+1)] and its start-piece candidate
  /// offsets at ia_bases_[i * (f+1)]. Keeping these dense (instead of
  /// touching the full DimInfo table) roughly halves the cache lines an
  /// exploration drags in.
  struct QDim {
    uint16_t dim = 0;
    uint8_t start_hi_closed = 0;
    uint8_t end_hi_closed = 0;
    /// Both variation intervals are the full domain: admission masks can be
    /// shared across clusters (QueryPieceMasks) and the symmetric candidate
    /// layout makes slice offsets pure arithmetic — the query-statistics
    /// update then touches no per-cluster metadata beyond q.
    uint8_t is_full_domain = 0;
    float start_lo = 0.0f;
    float end_lo = 0.0f;
    uint32_t cand_begin = 0;   ///< first candidate of this dim
    int32_t lookup_first = 0;  ///< base into lookup_: f*f slots
    /// Reciprocal piece widths (f / interval width), cached so the
    /// per-object accounting pays one multiply instead of two divisions.
    double start_inv_w = 0.0;
    double end_inv_w = 0.0;
  };

  /// Compact per-divided-dim record for the per-query sweep: one cache line
  /// covers eight dimensions. The full QDim is only consulted for refined
  /// (non-full-domain) dimensions.
  struct QHot {
    uint16_t dim;
    uint8_t is_full_domain;
    uint8_t pad = 0;
    uint32_t cand_begin;
  };

  uint32_t f_;
  double w0_;
  // Candidates in structure-of-arrays layout: the per-query sweep touches
  // only q, the reorganization scan only n.
  std::vector<uint32_t> key_;  ///< dim << 16 | ia << 8 | ib
  std::vector<double> n_;      ///< member-object count indicator
  std::vector<double> q_;      ///< (decayed) exploring-query indicator
  std::vector<DimInfo> dims_;
  std::vector<QDim> qdims_;  ///< divided dims, in dimension order
  std::vector<QHot> qhot_;   ///< parallel to qdims_, query-path fields only
  /// lookup_[first + ia*f + ib] = candidate index or -1.
  std::vector<int32_t> lookup_;
  /// Per divided dim: f+1 start offsets of each start-piece candidate group
  /// (the query-accounting fast path increments whole contiguous slices);
  /// entry f is the end of the dimension's candidate range.
  std::vector<uint32_t> ia_bases_;
  /// Flattened piece boundaries per divided dim: f+1 start boundaries then
  /// f+1 end boundaries; piece j spans [bounds[j], bounds[j+1]].
  std::vector<float> piece_bounds_;
};

}  // namespace accl
