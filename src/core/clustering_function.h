// The clustering function (paper §4.2) and candidate subcluster bookkeeping.
//
// Given a cluster signature, each dimension's pair of variation intervals is
// divided into `f` subintervals (f = division factor). Every feasible
// combination (start-piece ia, end-piece ib) on a single dimension — other
// dimensions unchanged — yields one *candidate subcluster*. A combination is
// feasible iff some object (a <= b) can fall in it, i.e. the start piece
// begins strictly before the end piece ends. When the two variation
// intervals are identical this leaves exactly f(f+1)/2 candidates (paper
// footnote 3); in general up to f^2 per dimension, hence between
// Nd*f(f+1)/2 and Nd*f^2 candidates per cluster — linear in Nd.
//
// Candidates are *virtual*: only their (dim, ia, ib) key and two performance
// indicators are stored — the number of member objects matching them (n,
// maintained incrementally on insert/move) and the number of exploring
// queries matching them (q, counted while the owning cluster is explored).
#pragma once

#include <cstdint>
#include <vector>

#include "core/signature.h"
#include "geometry/query.h"

namespace accl {

/// The j-th of `f` equal pieces of a variation interval. Pieces are
/// half-open except the last, which inherits the parent's closedness.
VarInterval Piece(const VarInterval& v, uint32_t j, uint32_t f);

/// Index of the piece of `v` (divided into `f`) containing `x`, or -1 when x
/// lies outside `v`. Robust to float rounding at piece boundaries: the
/// result always satisfies Piece(v, idx, f).Contains(x).
int PieceIndex(const VarInterval& v, uint32_t f, float x);

/// The set of candidate subclusters of one cluster, with their performance
/// indicators and fast (dim, piece) lookup.
class CandidateSet {
 public:
  struct Candidate {
    uint16_t dim;
    uint8_t ia;  ///< start-piece index
    uint8_t ib;  ///< end-piece index
    double n = 0.0;  ///< objects of the owning cluster matching the candidate
    double q = 0.0;  ///< (decayed) count of exploring queries matching it
  };

  /// Builds the candidates of `sig` with division factor `f`.
  /// `created_weight` is the global decayed query weight at creation time;
  /// access probabilities are estimated over queries seen since then.
  /// Dimensions whose variation intervals are narrower than `min_width` are
  /// not divided further (they cannot productively discriminate).
  CandidateSet(const Signature& sig, uint32_t f, double created_weight,
               float min_width = 1e-5f);

  uint32_t division_factor() const { return f_; }
  double created_weight() const { return w0_; }
  size_t size() const { return cands_.size(); }
  const Candidate& at(size_t i) const { return cands_[i]; }
  const std::vector<Candidate>& candidates() const { return cands_; }

  /// Adjusts candidate object counts for one object entering (delta=+1) or
  /// leaving (delta=-1) the owning cluster. The object must match the
  /// owning cluster's signature.
  void AccountObject(BoxView o, double delta);

  /// Increments q for every candidate whose signature admits `query`.
  /// Called exactly when the owning cluster is explored.
  void AccountQuery(const Query& query);

  /// Materializes candidate `i`'s signature from the owning signature.
  Signature MakeSignature(const Signature& owner, size_t i) const;

  /// Halves all statistics (sliding-window decay), including the creation
  /// weight so probability denominators stay consistent.
  void Halve();

  /// Mutable access for the index's split bookkeeping.
  Candidate& at_mutable(size_t i) { return cands_[i]; }

 private:
  struct DimInfo {
    VarInterval start_var;
    VarInterval end_var;
    int32_t first = -1;  ///< base into lookup_: f*f slots
    bool divided = false;
    /// Cached piece boundaries (AccountQuery is on the per-query hot path):
    /// start piece j = [start_lo[j], start_lo[j+1]) etc.; arrays hold f+1
    /// boundaries each, flattened into piece_bounds_ at 2*(f+1) per dim.
    int32_t bounds_first = -1;
  };

  uint32_t f_;
  double w0_;
  std::vector<Candidate> cands_;
  std::vector<DimInfo> dims_;
  /// lookup_[dims_[d].first + ia*f + ib] = candidate index or -1.
  std::vector<int32_t> lookup_;
  /// Flattened piece boundaries per divided dim: f+1 start boundaries then
  /// f+1 end boundaries.
  std::vector<float> piece_bounds_;
};

}  // namespace accl
