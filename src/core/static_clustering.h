// Offline (static) cost-based clustering.
//
// The paper's related work (§2) discusses optimal clustering of a *static*
// collection when data and query distributions are known in advance (Pagel,
// Six & Winter, PODS'95). This module provides that comparison point and a
// practical warm-start: given the full dataset and a representative query
// sample, it runs the same greedy candidate-materialization the adaptive
// index performs online — but with exact measured access frequencies
// instead of incrementally gathered statistics — and emits a cluster layout
// loadable via AdaptiveIndex::FromImages.
//
// Uses: (a) an ablation baseline isolating the cost of *learning* the
// statistics online, (b) bulk-loading a new index so it starts converged.
#pragma once

#include <vector>

#include "core/adaptive_index.h"
#include "geometry/query.h"
#include "workload/dataset.h"

namespace accl {

/// Options for the static clusterer.
struct StaticClusteringOptions {
  StorageScenario scenario = StorageScenario::kMemory;
  SystemParams sys = SystemParams::Paper();
  uint32_t division_factor = 4;
  /// Same safeguards as the adaptive index.
  size_t min_split_objects = 2;
  double split_probability_ratio = 0.75;
  double min_split_benefit_ms = 5e-4;
  /// Recursion bound (a materialized chain refines signatures; depth beyond
  /// this is never profitable in practice).
  uint32_t max_depth = 32;
};

/// Result of static clustering.
struct StaticClustering {
  std::vector<ClusterImage> images;
  /// Modeled average query time of the produced layout, evaluated against
  /// the query sample (same T = A + p(B + nC) aggregation the adaptive
  /// index minimizes).
  double expected_query_ms = 0.0;
  size_t cluster_count = 0;
};

/// Builds the layout. `sample` must be non-empty and drawn from the target
/// query distribution; probabilities are exact frequencies over it.
StaticClustering BuildStaticClustering(const Dataset& data,
                                       const std::vector<Query>& sample,
                                       const StaticClusteringOptions& options);

/// Convenience: builds the layout and loads it into a ready index.
/// `cfg` supplies the runtime configuration (nd must match the dataset).
std::unique_ptr<AdaptiveIndex> BuildStaticIndex(
    const Dataset& data, const std::vector<Query>& sample,
    const StaticClusteringOptions& options, const AdaptiveConfig& cfg);

}  // namespace accl
