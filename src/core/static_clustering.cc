#include "core/static_clustering.h"

#include <deque>

#include "core/clustering_function.h"
#include "util/check.h"

namespace accl {

namespace {

struct WorkItem {
  Signature sig;
  std::vector<uint32_t> members;  // indices into the dataset
  ClusterId parent = kNoCluster;
  uint32_t depth = 0;
};

}  // namespace

StaticClustering BuildStaticClustering(
    const Dataset& data, const std::vector<Query>& sample,
    const StaticClusteringOptions& options) {
  ACCL_CHECK(data.nd > 0);
  ACCL_CHECK(!sample.empty());
  const Dim nd = data.nd;
  const double S = static_cast<double>(sample.size());
  const CostModel model = CostModel::Make(
      options.scenario, nd, options.sys,
      static_cast<double>(nd) * options.division_factor *
          (options.division_factor + 1) / 2.0);

  StaticClustering result;
  std::deque<WorkItem> work;
  {
    WorkItem root;
    root.sig = Signature(nd);
    root.members.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      root.members[i] = static_cast<uint32_t>(i);
    }
    work.push_back(std::move(root));
  }

  while (!work.empty()) {
    WorkItem item = std::move(work.front());
    work.pop_front();

    // Exact access frequency of this cluster over the sample.
    uint64_t q_c = 0;
    for (const Query& q : sample) q_c += item.sig.AdmitsQuery(q);
    const double p_c =
        item.parent == kNoCluster ? 1.0 : static_cast<double>(q_c) / S;

    // Candidate indicators: exact object counts and query frequencies.
    CandidateSet cs(item.sig, options.division_factor, 0.0);
    for (uint32_t mi : item.members) cs.AccountObject(data.box(mi), +1.0);
    if (item.depth < options.max_depth) {
      for (const Query& q : sample) {
        if (item.sig.AdmitsQuery(q)) cs.AccountQuery(q);
      }
    }

    // Greedy materialization, exactly the adaptive TryClusterSplit but with
    // measured probabilities (no priors, no observation windows).
    std::vector<WorkItem> children;
    if (item.depth < options.max_depth) {
      for (;;) {
        double best_beta = 0.0;
        size_t best = static_cast<size_t>(-1);
        for (size_t i = 0; i < cs.size(); ++i) {
          const CandidateSet::Candidate& cd = cs.at(i);
          if (cd.n < static_cast<double>(options.min_split_objects)) continue;
          const double p_s = cd.q / S;
          if (p_s > options.split_probability_ratio * p_c) continue;
          const double beta = model.MaterializationBenefit(p_c, p_s, cd.n);
          if (beta <= options.min_split_benefit_ms) continue;
          if (beta > best_beta) {
            best_beta = beta;
            best = i;
          }
        }
        if (best == static_cast<size_t>(-1)) break;

        WorkItem child;
        child.sig = cs.MakeSignature(item.sig, best);
        child.depth = item.depth + 1;
        // Move matching members to the child; keep the rest.
        std::vector<uint32_t> stay;
        stay.reserve(item.members.size());
        for (uint32_t mi : item.members) {
          if (child.sig.MatchesObject(data.box(mi))) {
            child.members.push_back(mi);
            cs.AccountObject(data.box(mi), -1.0);
          } else {
            stay.push_back(mi);
          }
        }
        item.members.swap(stay);
        children.push_back(std::move(child));
      }
    }

    // Emit this cluster's image; children reference it by id.
    const ClusterId my_id = static_cast<ClusterId>(result.images.size());
    ClusterImage img;
    img.id = my_id;
    img.parent = item.parent;
    img.sig = item.sig;
    img.ids.reserve(item.members.size());
    img.coords.reserve(item.members.size() * 2 * static_cast<size_t>(nd));
    for (uint32_t mi : item.members) {
      img.ids.push_back(data.ids[mi]);
      const BoxView b = data.box(mi);
      img.coords.insert(img.coords.end(), b.data(),
                        b.data() + 2 * static_cast<size_t>(nd));
    }
    result.expected_query_ms +=
        model.ClusterTime(p_c, static_cast<double>(item.members.size()));
    result.images.push_back(std::move(img));

    for (WorkItem& ch : children) {
      ch.parent = my_id;
      work.push_back(std::move(ch));
    }
  }

  result.cluster_count = result.images.size();
  return result;
}

std::unique_ptr<AdaptiveIndex> BuildStaticIndex(
    const Dataset& data, const std::vector<Query>& sample,
    const StaticClusteringOptions& options, const AdaptiveConfig& cfg) {
  ACCL_CHECK(cfg.nd == data.nd);
  StaticClustering sc = BuildStaticClustering(data, sample, options);
  return AdaptiveIndex::FromImages(cfg, sc.images);
}

}  // namespace accl
