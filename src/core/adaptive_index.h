// AdaptiveIndex — the paper's contribution: cost-based adaptive clustering of
// multidimensional extended objects (paper §3).
//
// The collection starts as a single *root cluster* accepting any object.
// Every query explores all materialized clusters whose signatures admit it
// and updates their performance indicators (and those of their virtual
// candidate subclusters). Periodically — every `reorg_period` queries — the
// structure is reorganized: each cluster is either merged back into its
// parent (merging benefit function, eq. 5), kept, or split by greedily
// materializing its most profitable candidate subclusters (materialization
// benefit function, eq. 3). Both decisions come from the cost model
// T = A + p(B + nC) parameterized by the storage scenario, so the structure
// adapts to the data distribution, the query distribution, and the
// hardware — and degrades gracefully to a Sequential-Scan-equivalent single
// cluster when clustering cannot pay off.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/span.h"
#include "api/spatial_index.h"
#include "core/cluster.h"
#include "core/signature_table.h"
#include "cost/cost_model.h"

namespace accl {

namespace kernels {
class VerifyBackend;
}  // namespace kernels

/// Tuning knobs for AdaptiveIndex. Defaults follow the paper (§6, §7.1).
struct AdaptiveConfig {
  Dim nd = 16;
  StorageScenario scenario = StorageScenario::kMemory;
  SystemParams sys = SystemParams::Paper();

  /// Domain division factor f of the clustering function (paper uses 4).
  uint32_t division_factor = 4;
  /// A reorganization pass runs every this many queries (paper: 100).
  /// 0 disables automatic reorganization (call Reorganize() manually).
  uint32_t reorg_period = 100;
  /// Free places reserved at cluster (re)location: 20-30 % in the paper.
  double reserve_fraction = 0.25;
  /// Minimum observation window (queries since creation) before a cluster's
  /// or candidate's statistics may drive a split/merge decision.
  double min_observation = 32.0;
  /// Minimum objects a candidate must hold to be worth materializing.
  size_t min_split_objects = 2;
  /// Hysteresis against estimation noise: a candidate is only materialized
  /// when its estimated access probability is at most this fraction of the
  /// owner's. Without the gap requirement, candidates whose true
  /// probability equals the cluster's get split on upward noise in the
  /// estimate and merged back when it corrects, oscillating forever.
  double split_probability_ratio = 0.75;
  /// Absolute materialization-benefit floor [ms/query]. Benefits within
  /// estimation noise of zero (a few-object candidate saving microseconds)
  /// would otherwise keep materializing and merging at the margin; the
  /// floor makes reorganization reach a true fixed point. Negligible
  /// relative to disk-scenario benefits (seeks are milliseconds).
  double min_split_benefit_ms = 5e-4;
  /// Every this many queries all statistics are halved, giving a sliding
  /// window that tracks query-distribution change. 0 = never decay.
  uint32_t stats_halving_period = 4096;
  /// Hard cap on materialized clusters (safety valve).
  size_t max_clusters = 1u << 20;
  /// Verification-kernel backend by name ("scalar", "sse2", "avx2",
  /// "avx512"); empty selects the widest the host supports. The
  /// ACCL_FORCE_BACKEND environment variable overrides this. Requesting a
  /// backend the build or host lacks aborts at construction — validate
  /// first via kernels::BackendRegistry (ValidateOptions does).
  std::string verify_backend;
};

/// Aggregate reorganization counters for introspection and tests.
struct ReorgStats {
  uint64_t passes = 0;          ///< Reorganize() invocations
  uint64_t splits = 0;          ///< candidate materializations
  uint64_t merges = 0;          ///< cluster-into-parent merges
  uint64_t last_pass_splits = 0;
  uint64_t last_pass_merges = 0;
};

/// Serializable image of one cluster (used by storage/persist).
struct ClusterImage {
  ClusterId id = 0;
  ClusterId parent = kNoCluster;
  Signature sig;
  std::vector<ObjectId> ids;
  std::vector<float> coords;  // stride 2*nd
};

/// The adaptive cost-based clustering index.
///
/// Thread safety: none. Execute is a *logical* read but a *physical* write —
/// it updates per-cluster and per-candidate performance indicators, decays
/// statistics, and may trigger a full reorganization (that adaptivity is the
/// paper's contribution) — and the const members below share mutable
/// per-query scratch through SignatureTable. Concurrent use therefore
/// requires external serialization per index; the sdi sharded engine wraps
/// each instance behind a shard mutex and scales out across instances.
class AdaptiveIndex : public SpatialIndex {
 public:
  explicit AdaptiveIndex(const AdaptiveConfig& cfg);
  ~AdaptiveIndex() override;

  AdaptiveIndex(const AdaptiveIndex&) = delete;
  AdaptiveIndex& operator=(const AdaptiveIndex&) = delete;

  // ---- SpatialIndex interface ----
  const char* name() const override { return "AC"; }
  Dim dims() const override { return cfg_.nd; }
  void Insert(ObjectId id, BoxView box) override;
  bool Erase(ObjectId id) override;

  /// Bulk insert: `ids[i]` with coordinates `coords[2*nd*i .. 2*nd*(i+1))`.
  /// Placement is identical to calling Insert once per object in order —
  /// the entry point exists so shard migration and batched Subscribe can
  /// amortize the owner-map growth over the whole group instead of paying
  /// incremental rehashes per object.
  void BulkInsert(Span<const ObjectId> ids, Span<const float> coords);

  /// Bulk erase-by-id: removes every listed id that is present and returns
  /// how many were. Unknown ids are skipped, not errors — this is the
  /// deferred-cleanup hook for the sharded engine's double-residency
  /// migration, where a concurrent Unsubscribe may legitimately have
  /// removed a source copy between the grace period and the cleanup pass.
  /// Equivalent to calling Erase per id in order.
  size_t BulkErase(Span<const ObjectId> ids);

  /// Visits every live object as (id, box view). Iteration order is
  /// cluster-table order, slot order within a cluster — deterministic for a
  /// deterministic operation history. The views are only valid inside the
  /// callback; callers needing the coordinates must copy them.
  void ForEachObject(
      const std::function<void(ObjectId, BoxView)>& fn) const;

  void Execute(const Query& q, std::vector<ObjectId>* out,
               QueryMetrics* metrics = nullptr) override;
  size_t size() const override { return object_count_; }
  VerifyKernelInfo verify_kernel() const override;

  // ---- Introspection & control ----
  const AdaptiveConfig& config() const { return cfg_; }
  const CostModel& cost_model() const { return model_; }

  /// Number of materialized clusters (including the root).
  size_t cluster_count() const { return live_clusters_; }

  /// Runs one reorganization pass over all materialized clusters
  /// (paper Fig. 1 applied to each cluster).
  void Reorganize();

  /// Total queries executed (drives periodic reorganization).
  uint64_t total_queries() const { return total_queries_; }

  const ReorgStats& reorg_stats() const { return reorg_stats_; }

  /// Expected average query time under the cost model, summing
  /// T_c = A + p_c (B + n_c C) over materialized clusters. This is the
  /// quantity the clustering minimizes; it can never exceed the equivalent
  /// single-cluster (Sequential Scan) figure once reorganization has
  /// converged with fresh statistics.
  double ExpectedQueryTimeMs() const;

  /// Host cluster of a live object, or kNoCluster when the id is unknown.
  ClusterId OwnerOf(ObjectId id) const;

  /// Per-cluster snapshot for diagnostics, tests and examples.
  struct ClusterInfo {
    ClusterId id;
    ClusterId parent;
    size_t objects;
    double access_prob;
    size_t candidates;
    double utilization;
    uint32_t depth;
  };
  std::vector<ClusterInfo> GetClusterInfos() const;

  /// Structural invariants (tree shape, signature refinement, object
  /// residency). Aborts via ACCL_CHECK on violation; cheap enough for tests.
  void CheckInvariants() const;

  /// Dumps all clusters for persistence.
  std::vector<ClusterImage> DumpClusters() const;

  /// Rebuilds an index from persisted images (statistics start fresh, as
  /// the paper's recovery section allows). Object/cluster relationships and
  /// signatures are restored exactly.
  static std::unique_ptr<AdaptiveIndex> FromImages(
      const AdaptiveConfig& cfg, const std::vector<ClusterImage>& images);

 private:
  Cluster* cluster(ClusterId id) { return clusters_[id].get(); }
  const Cluster* cluster(ClusterId id) const { return clusters_[id].get(); }

  ClusterId NewCluster(Signature sig, ClusterId parent);
  void FreeCluster(ClusterId id);

  /// paper Fig. 2. Moves all objects of `c` into its parent, reparents
  /// children, removes `c`.
  void MergeCluster(ClusterId c);

  /// paper Fig. 3. Greedily materializes profitable candidates of `c`.
  /// Returns the number of clusters created.
  size_t TryClusterSplit(ClusterId c);

  /// Materializes candidate `ci` of cluster `c`; returns the new cluster.
  ClusterId MaterializeCandidate(ClusterId c, size_t ci);

  double AccessProbOf(const Cluster& c) const {
    return c.AccessProb(total_weight_);
  }

  void HalveAllStats();

  AdaptiveConfig cfg_;
  CostModel model_;
  /// Resolved verification backend (cfg_.verify_backend / env / widest).
  /// Declared before sig_table_, which borrows it for its filter passes.
  const kernels::VerifyBackend* backend_;

  std::vector<std::unique_ptr<Cluster>> clusters_;
  std::vector<ClusterId> free_ids_;
  size_t live_clusters_ = 0;
  ClusterId root_ = kNoCluster;

  /// Packed SoA image of all live signatures; Execute's admit filter runs
  /// over this instead of walking the cluster table.
  SignatureTable sig_table_;
  /// Scratch for the ids admitted by the current query.
  std::vector<ClusterId> admitted_;
  /// Per-query piece-admission masks shared across explored clusters.
  QueryPieceMasks qmasks_;
  /// Reused per-query verification image (avoids per-query allocation).
  BatchQuery bq_;
  /// Scratch for Insert's root-down descent.
  std::vector<ClusterId> descent_;

  /// Exact location of a live object: host cluster and slot within its
  /// SlotArray. Slots are patched on every swap-removal so Erase never
  /// linear-searches.
  struct ObjectRef {
    ClusterId cluster;
    uint32_t slot;
  };
  std::unordered_map<ObjectId, ObjectRef> owner_;
  size_t object_count_ = 0;

  uint64_t total_queries_ = 0;
  double total_weight_ = 0.0;  ///< decayed query count

  ReorgStats reorg_stats_;
};

}  // namespace accl
