#include "core/cluster.h"

// Cluster is a plain aggregate; logic lives in core/adaptive_index.cc.
