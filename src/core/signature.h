// Cluster signatures (paper §4.1).
//
// A signature describes, per dimension, an *interval of variation* for the
// start of member intervals ([amin, amax]) and one for the end
// ([bmin, bmax]):
//
//   sigma = { d_i  [amin_i, amax_i] : [bmin_i, bmax_i] }_{i=1..Nd}
//
// An object o = { d_i [a_i, b_i] } matches the signature iff every a_i falls
// in the i-th start variation interval and every b_i in the i-th end
// variation interval. Variation intervals produced by domain division are
// half-open [lo, hi) except the last piece, which is closed (Example 3's
// "[0.1875, 0.2500]"); the flag `hi_closed` encodes this.
//
// The signature answers two questions (paper §3.1): can an object become a
// member, and must the cluster be explored for a given query. The latter is
// a *necessary* condition derived per relation, so exploration is
// conservative (never misses a match).
#pragma once

#include <string>
#include <vector>

#include "api/types.h"
#include "geometry/box.h"
#include "geometry/query.h"
#include "util/serialize.h"

namespace accl {

/// One interval of variation: [lo, hi) or [lo, hi] when hi_closed.
struct VarInterval {
  float lo = kDomainMin;
  float hi = kDomainMax;
  bool hi_closed = true;

  bool Contains(float x) const {
    return x >= lo && (x < hi || (hi_closed && x <= hi));
  }

  float width() const { return hi - lo; }

  bool IsFullDomain() const {
    return lo == kDomainMin && hi == kDomainMax && hi_closed;
  }

  bool operator==(const VarInterval& o) const {
    return lo == o.lo && hi == o.hi && hi_closed == o.hi_closed;
  }

  std::string ToString() const;
};

/// Per-dimension pair of variation intervals for starts and ends.
class Signature {
 public:
  Signature() = default;

  /// The root signature: full domain everywhere (accepts any object).
  explicit Signature(Dim nd);

  Dim dims() const { return nd_; }

  /// Variation interval of interval *starts* in dimension d ([amin, amax]).
  const VarInterval& start_var(Dim d) const { return v_[2 * d]; }
  /// Variation interval of interval *ends* in dimension d ([bmin, bmax]).
  const VarInterval& end_var(Dim d) const { return v_[2 * d + 1]; }

  void set(Dim d, VarInterval start, VarInterval end) {
    v_[2 * d] = start;
    v_[2 * d + 1] = end;
  }

  /// Membership test: all starts/ends inside the variation intervals.
  bool MatchesObject(BoxView o) const;

  /// Necessary condition for the cluster to contain an object standing in
  /// relation `q.rel` to the query object; clusters whose signature fails
  /// this are skipped (paper §3.6).
  ///
  /// Derivations (per dimension, object start a in [amin,amax], end b in
  /// [bmin,bmax]):
  ///   intersects:   a <= q.hi and b >= q.lo possible  =>  amin <= q.hi && bmax >= q.lo
  ///   contained-by: a >= q.lo and b <= q.hi possible  =>  amax >= q.lo && bmin <= q.hi
  ///   encloses:     a <= q.lo and b >= q.hi possible  =>  amin <= q.lo && bmax >= q.hi
  bool AdmitsQuery(const Query& q) const;

  /// True iff every variation interval is the full domain (root signature).
  bool IsRoot() const;

  /// True iff every object matching `*this` also matches `outer` — the
  /// "backward compatibility" property the clustering function guarantees
  /// between a candidate subcluster and its parent (paper §3.3).
  bool RefinedFrom(const Signature& outer) const;

  bool operator==(const Signature& o) const {
    return nd_ == o.nd_ && v_ == o.v_;
  }

  std::string ToString() const;

  void Serialize(ByteWriter* w) const;
  static bool Deserialize(ByteReader* r, Signature* out);

 private:
  Dim nd_ = 0;
  std::vector<VarInterval> v_;  // [start0, end0, start1, end1, ...]
};

}  // namespace accl
