#include "core/signature_table.h"

#include <algorithm>

#include "kernels/backend_registry.h"
#include "util/check.h"

namespace accl {

SignatureTable::SignatureTable(Dim nd, const kernels::VerifyBackend* backend)
    : nd_(nd),
      backend_(backend != nullptr
                   ? backend
                   : kernels::BackendRegistry::Instance().Resolve("")),
      refined_(nd) {
  ACCL_CHECK(nd > 0);
  ACCL_CHECK(backend_ != nullptr);
}

void SignatureTable::Grow(size_t need) {
  size_t ncap = std::max<size_t>(16, cap_ * 2);
  while (ncap < need) ncap *= 2;
  const size_t used = cluster_of_.size();
  for (std::vector<float>* arr : {&amin_, &amax_, &bmin_, &bmax_}) {
    std::vector<float> fresh(static_cast<size_t>(nd_) * ncap);
    for (Dim d = 0; d < nd_; ++d) {
      std::copy_n(arr->data() + d * cap_, used, fresh.data() + d * ncap);
    }
    *arr = std::move(fresh);
  }
  cap_ = ncap;
}

uint32_t SignatureTable::Add(ClusterId id, const Signature& sig) {
  ACCL_DCHECK(sig.dims() == nd_);
  const uint32_t slot = static_cast<uint32_t>(cluster_of_.size());
  if (cluster_of_.size() + 1 > cap_) Grow(cluster_of_.size() + 1);
  cluster_of_.push_back(id);
  for (Dim d = 0; d < nd_; ++d) {
    amin_[d * cap_ + slot] = sig.start_var(d).lo;
    amax_[d * cap_ + slot] = sig.start_var(d).hi;
    bmin_[d * cap_ + slot] = sig.end_var(d).lo;
    bmax_[d * cap_ + slot] = sig.end_var(d).hi;
    if (RefinedAt(d, slot)) refined_[d].push_back(slot);
  }
  return slot;
}

ClusterId SignatureTable::Remove(uint32_t slot) {
  ACCL_CHECK(slot < cluster_of_.size());
  const uint32_t last = static_cast<uint32_t>(cluster_of_.size()) - 1;
  // Drop the removed slot from the per-dimension refined lists (its bounds
  // are still intact), then rename `last` to `slot` in the lists of the
  // cluster that fills the hole. Removals only happen on merges, so the
  // linear list scans are off the hot path.
  for (Dim d = 0; d < nd_; ++d) {
    if (!RefinedAt(d, slot)) continue;
    auto& lst = refined_[d];
    auto it = std::find(lst.begin(), lst.end(), slot);
    ACCL_DCHECK(it != lst.end());
    *it = lst.back();
    lst.pop_back();
  }
  ClusterId moved = kNoCluster;
  if (slot != last) {
    for (Dim d = 0; d < nd_; ++d) {
      if (!RefinedAt(d, last)) continue;
      auto& lst = refined_[d];
      auto it = std::find(lst.begin(), lst.end(), last);
      ACCL_DCHECK(it != lst.end());
      *it = slot;
    }
    for (Dim d = 0; d < nd_; ++d) {
      amin_[d * cap_ + slot] = amin_[d * cap_ + last];
      amax_[d * cap_ + slot] = amax_[d * cap_ + last];
      bmin_[d * cap_ + slot] = bmin_[d * cap_ + last];
      bmax_[d * cap_ + slot] = bmax_[d * cap_ + last];
    }
    cluster_of_[slot] = cluster_of_[last];
    moved = cluster_of_[slot];
  }
  cluster_of_.pop_back();
  return moved;
}

void SignatureTable::Clear() {
  cluster_of_.clear();
  for (auto& lst : refined_) lst.clear();
}

void SignatureTable::CollectAdmitted(const Query& q,
                                     std::vector<ClusterId>* out) const {
  ACCL_DCHECK(q.dims() == nd_);
  const size_t nslots = cluster_of_.size();
  if (nslots == 0) return;
  const float* qc = q.box.data();

  // Per dimension, every relation's admit test is two bound comparisons
  // against one of the packed arrays (see Signature::AdmitsQuery):
  //   intersects:    amin <= q.hi  &&  bmax >= q.lo
  //   contained-by:  bmin <= q.hi  &&  amax >= q.lo
  //   encloses:      amin <= q.lo  &&  bmax >= q.hi
  const float* le_arr = nullptr;  // array compared with <=
  const float* ge_arr = nullptr;  // array compared with >=
  bool le_bound_is_hi = true;     // which query coordinate bounds it
  switch (q.rel) {
    case Relation::kIntersects:
      le_arr = amin_.data();
      ge_arr = bmax_.data();
      le_bound_is_hi = true;
      break;
    case Relation::kContainedBy:
      le_arr = bmin_.data();
      ge_arr = amax_.data();
      le_bound_is_hi = true;
      break;
    case Relation::kEncloses:
      le_arr = amin_.data();
      ge_arr = bmax_.data();
      le_bound_is_hi = false;
      break;
  }

  // Fast path for queries inside the domain: a full-domain dimension passes
  // every relation's admit test for such a query, so each slot only needs
  // testing on the dimensions where its signature is refined — the
  // per-dimension refined lists make that Sum(|refined_[d]|) work, roughly
  // one test per live cluster, instead of nslots * nd.
  bool in_domain = true;
  for (Dim d = 0; d < nd_; ++d) {
    in_domain &= (qc[2 * d] >= kDomainMin) & (qc[2 * d + 1] <= kDomainMax);
  }
  if (in_domain) {
    flags_.assign(nslots, 1);
    uint8_t* __restrict__ f = flags_.data();
    for (Dim d = 0; d < nd_; ++d) {
      const std::vector<uint32_t>& lst = refined_[d];
      if (lst.empty()) continue;
      const float qlo = qc[2 * d];
      const float qhi = qc[2 * d + 1];
      const float le_b = le_bound_is_hi ? qhi : qlo;
      const float ge_b = le_bound_is_hi ? qlo : qhi;
      const float* __restrict__ le = le_arr + d * cap_;
      const float* __restrict__ ge = ge_arr + d * cap_;
      for (const uint32_t s : lst) {
        f[s] &= static_cast<uint8_t>((le[s] <= le_b) & (ge[s] >= ge_b));
      }
    }
    for (size_t s = 0; s < nslots; ++s) {
      if (f[s]) out->push_back(cluster_of_[s]);
    }
    return;
  }

  // Out-of-domain fallback: dense first pass over dimension 0, then sparse
  // passes over the shrinking survivor list: total work is nslots + sum of
  // survivor counts, which for selective queries collapses after two or
  // three dimensions.
  survivors_.resize(nslots);
  scratch_.resize(nslots);
  uint32_t* __restrict__ cur = survivors_.data();
  uint32_t* __restrict__ nxt = scratch_.data();
  size_t count = 0;
  {
    const float le_b = le_bound_is_hi ? qc[1] : qc[0];
    const float ge_b = le_bound_is_hi ? qc[0] : qc[1];
    count = backend_->FilterSlotsDense(le_arr, ge_arr, le_b, ge_b, nslots, cur);
  }
  for (Dim d = 1; d < nd_ && count > 0; ++d) {
    const float qlo = qc[2 * d];
    const float qhi = qc[2 * d + 1];
    const float le_b = le_bound_is_hi ? qhi : qlo;
    const float ge_b = le_bound_is_hi ? qlo : qhi;
    count = backend_->FilterSlotsSparse(le_arr + d * cap_, ge_arr + d * cap_,
                                        le_b, ge_b, cur, count, nxt);
    std::swap(cur, nxt);
  }
  for (size_t i = 0; i < count; ++i) out->push_back(cluster_of_[cur[i]]);
}

bool SignatureTable::SlotMatches(uint32_t slot, ClusterId id,
                                 const Signature& sig) const {
  if (slot >= cluster_of_.size() || cluster_of_[slot] != id) return false;
  for (Dim d = 0; d < nd_; ++d) {
    if (amin_[d * cap_ + slot] != sig.start_var(d).lo) return false;
    if (amax_[d * cap_ + slot] != sig.start_var(d).hi) return false;
    if (bmin_[d * cap_ + slot] != sig.end_var(d).lo) return false;
    if (bmax_[d * cap_ + slot] != sig.end_var(d).hi) return false;
  }
  return true;
}

}  // namespace accl
