// A materialized database cluster (paper §3.1): a group of objects accessed
// and checked together during spatial selections, described by a signature
// and carrying performance indicators (exploring-query count, object count)
// plus the statistics of its virtual candidate subclusters.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/clustering_function.h"
#include "core/signature.h"
#include "storage/slot_array.h"

namespace accl {

/// Index of a cluster inside AdaptiveIndex's cluster table.
using ClusterId = uint32_t;
inline constexpr ClusterId kNoCluster = 0xFFFFFFFFu;

/// One materialized cluster.
struct Cluster {
  Cluster(ClusterId id_in, Signature sig_in, Dim nd, double reserve_fraction)
      : id(id_in), sig(std::move(sig_in)), objects(nd, reserve_fraction) {}

  ClusterId id;
  ClusterId parent = kNoCluster;
  std::vector<ClusterId> children;

  /// Slot of this cluster's signature in the index's SignatureTable.
  uint32_t sig_slot = 0xFFFFFFFFu;

  Signature sig;
  SlotArray objects;

  /// Decayed count of queries that explored this cluster.
  double q = 0.0;
  /// Global decayed query weight when the cluster was created; the access
  /// probability is estimated as q / (current_weight - w0).
  double w0 = 0.0;

  /// Virtual candidate subclusters with their performance indicators.
  std::unique_ptr<CandidateSet> candidates;

  bool is_root() const { return parent == kNoCluster; }
  size_t size() const { return objects.size(); }

  /// Estimated access probability over the observation window.
  /// `total_weight` is the current global decayed query weight. Uses a
  /// +1 Laplace prior so fresh clusters do not claim probability zero.
  double AccessProb(double total_weight) const {
    const double denom = total_weight - w0;
    return (q + 1.0) / (denom + 1.0);
  }

  /// Queries observed since creation (the probability denominator).
  double ObservationWindow(double total_weight) const {
    return total_weight - w0;
  }
};

}  // namespace accl
