// Structure-of-arrays image of all live cluster signatures.
//
// AdaptiveIndex::Execute must test every materialized cluster's signature
// against the query (paper Fig. 5 step 2). Walking the cluster table for that
// chases one heap pointer per cluster and re-dispatches on the relation per
// dimension; with hundreds of clusters the admit filter dominates query wall
// time. This table keeps a packed parallel-array copy of the per-dimension
// signature bounds (amin/amax/bmin/bmax) in a dense slot order, maintained
// incrementally as clusters are created and freed, so the filter becomes a
// branch-light sweep over contiguous floats.
//
// Layout: four float arrays, each dimension-major with stride `cap_`
// (entry [d * cap_ + slot]), so the per-dimension filter pass reads each
// array sequentially and auto-vectorizes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cluster.h"
#include "core/signature.h"
#include "geometry/query.h"

namespace accl {

namespace kernels {
class VerifyBackend;
}  // namespace kernels

/// Packed admit-filter index over live cluster signatures.
///
/// Thread safety: CollectAdmitted is const but reuses mutable per-query
/// scratch buffers (flags/survivor lists), so even concurrent *const* use
/// from multiple threads is a data race. Callers must serialize access per
/// table — AdaptiveIndex inherits this contract and documents it.
class SignatureTable {
 public:
  /// `backend` drives the out-of-domain filter passes (FilterSlotsDense /
  /// FilterSlotsSparse); nullptr selects the registry's resolved backend.
  /// The in-domain refined-list path stays scalar regardless: it gathers
  /// scattered slots through an index list, so a contiguous SIMD sweep has
  /// nothing to vectorize over.
  explicit SignatureTable(Dim nd,
                          const kernels::VerifyBackend* backend = nullptr);

  Dim dims() const { return nd_; }
  size_t size() const { return cluster_of_.size(); }

  /// Registers a cluster's signature; returns its (dense) slot.
  uint32_t Add(ClusterId id, const Signature& sig);

  /// Swap-removes `slot`. Returns the cluster id that now occupies `slot`
  /// (kNoCluster when `slot` was the last entry) so the caller can fix that
  /// cluster's stored slot.
  ClusterId Remove(uint32_t slot);

  /// Drops all entries (used when rebuilding an index from images).
  void Clear();

  /// Appends the cluster ids of every signature admitting `q`, in slot
  /// order. Exactly the clusters for which Signature::AdmitsQuery is true.
  void CollectAdmitted(const Query& q, std::vector<ClusterId>* out) const;

  /// Consistency probe for CheckInvariants: slot holds `id` with exactly
  /// `sig`'s bounds.
  bool SlotMatches(uint32_t slot, ClusterId id, const Signature& sig) const;

 private:
  void Grow(size_t need);

  Dim nd_;
  const kernels::VerifyBackend* backend_;  ///< never null after construction
  size_t cap_ = 0;
  std::vector<ClusterId> cluster_of_;  ///< slot -> cluster id
  // Signature bounds, [d * cap_ + slot]:
  std::vector<float> amin_;  ///< start_var(d).lo
  std::vector<float> amax_;  ///< start_var(d).hi
  std::vector<float> bmin_;  ///< end_var(d).lo
  std::vector<float> bmax_;  ///< end_var(d).hi
  /// True iff the stored bounds of (dim, slot) can reject some in-domain
  /// query, i.e. the variation intervals are narrower than the full domain.
  bool RefinedAt(Dim d, uint32_t slot) const {
    return amin_[d * cap_ + slot] != kDomainMin ||
           amax_[d * cap_ + slot] != kDomainMax ||
           bmin_[d * cap_ + slot] != kDomainMin ||
           bmax_[d * cap_ + slot] != kDomainMax;
  }

  /// Slots whose signature is refined (non-full-domain) on each dimension.
  /// A full-domain dimension passes every relation's admit test for any
  /// query inside the domain, so the filter only has to test each slot on
  /// the dimensions listed here — typically one or two per cluster.
  std::vector<std::vector<uint32_t>> refined_;
  mutable std::vector<uint8_t> flags_;  ///< per-query admit flags scratch
  // Per-query survivor-list scratch for the out-of-domain fallback path.
  mutable std::vector<uint32_t> survivors_;
  mutable std::vector<uint32_t> scratch_;
};

}  // namespace accl
