#include "core/clustering_function.h"

#include <cmath>

#include "util/check.h"

namespace accl {

VarInterval Piece(const VarInterval& v, uint32_t j, uint32_t f) {
  ACCL_DCHECK(j < f);
  const double lo = v.lo;
  const double w = (static_cast<double>(v.hi) - lo) / f;
  VarInterval p;
  p.lo = static_cast<float>(lo + w * j);
  if (j + 1 == f) {
    p.hi = v.hi;
    p.hi_closed = v.hi_closed;
  } else {
    p.hi = static_cast<float>(lo + w * (j + 1));
    p.hi_closed = false;
  }
  return p;
}

int PieceIndex(const VarInterval& v, uint32_t f, float x) {
  if (!v.Contains(x)) return -1;
  const double w = (static_cast<double>(v.hi) - v.lo) / f;
  int idx;
  if (w <= 0.0) {
    idx = 0;
  } else {
    idx = static_cast<int>((x - v.lo) / w);
    if (idx >= static_cast<int>(f)) idx = static_cast<int>(f) - 1;
    if (idx < 0) idx = 0;
  }
  // Float rounding can put x just across a boundary; nudge to the piece that
  // actually contains it.
  if (!Piece(v, idx, f).Contains(x)) {
    if (idx + 1 < static_cast<int>(f) && Piece(v, idx + 1, f).Contains(x)) {
      ++idx;
    } else if (idx > 0 && Piece(v, idx - 1, f).Contains(x)) {
      --idx;
    }
  }
  ACCL_DCHECK(Piece(v, idx, f).Contains(x));
  return idx;
}

CandidateSet::CandidateSet(const Signature& sig, uint32_t f,
                           double created_weight, float min_width)
    : f_(f), w0_(created_weight) {
  // AccountQuery uses 32-bit piece masks; the paper uses f = 4.
  ACCL_CHECK(f >= 2 && f <= 32);
  const Dim nd = sig.dims();
  dims_.resize(nd);
  lookup_.assign(static_cast<size_t>(nd) * f * f, -1);
  for (Dim d = 0; d < nd; ++d) {
    DimInfo& di = dims_[d];
    di.start_var = sig.start_var(d);
    di.end_var = sig.end_var(d);
    di.first = static_cast<int32_t>(static_cast<size_t>(d) * f * f);
    // A dimension already narrowed below min_width cannot discriminate
    // further; skip it. Both variation intervals must be divisible, since a
    // zero-width piece could contain no value at all.
    if (di.start_var.width() < min_width || di.end_var.width() < min_width) {
      continue;
    }
    di.divided = true;
    di.bounds_first = static_cast<int32_t>(piece_bounds_.size());
    for (uint32_t j = 0; j <= f; ++j) {
      piece_bounds_.push_back(j == f ? di.start_var.hi
                                     : Piece(di.start_var, j, f).lo);
    }
    for (uint32_t j = 0; j <= f; ++j) {
      piece_bounds_.push_back(j == f ? di.end_var.hi
                                     : Piece(di.end_var, j, f).lo);
    }
    for (uint32_t ia = 0; ia < f; ++ia) {
      const VarInterval pa = Piece(di.start_var, ia, f);
      for (uint32_t ib = 0; ib < f; ++ib) {
        const VarInterval pb = Piece(di.end_var, ib, f);
        // Feasible iff an object with a <= b can have a in pa and b in pb:
        // the start piece must begin strictly before the end piece ends.
        // With identical variation intervals this excludes ia > ib, giving
        // the paper's f(f+1)/2 symmetric count.
        if (!(pa.lo < pb.hi)) continue;
        Candidate c;
        c.dim = static_cast<uint16_t>(d);
        c.ia = static_cast<uint8_t>(ia);
        c.ib = static_cast<uint8_t>(ib);
        lookup_[di.first + ia * f + ib] =
            static_cast<int32_t>(cands_.size());
        cands_.push_back(c);
      }
    }
  }
}

void CandidateSet::AccountObject(BoxView o, double delta) {
  const Dim nd = static_cast<Dim>(dims_.size());
  ACCL_DCHECK(o.dims() == nd);
  for (Dim d = 0; d < nd; ++d) {
    const DimInfo& di = dims_[d];
    if (!di.divided) continue;
    const int ia = PieceIndex(di.start_var, f_, o.lo(d));
    const int ib = PieceIndex(di.end_var, f_, o.hi(d));
    ACCL_DCHECK(ia >= 0 && ib >= 0);
    const int32_t ci = lookup_[di.first + ia * static_cast<int>(f_) + ib];
    if (ci >= 0) {
      cands_[ci].n += delta;
      if (cands_[ci].n < 0) cands_[ci].n = 0;  // float drift guard
    }
  }
}

void CandidateSet::AccountQuery(const Query& query) {
  // Candidates differ from the owner in exactly one dimension, so a
  // candidate is admitted iff its pieces pass the per-dimension admission
  // test for that dimension. Precompute, per divided dimension, which start
  // pieces and end pieces pass; then sweep the candidate list once.
  const Dim nd = static_cast<Dim>(dims_.size());
  ACCL_DCHECK(query.dims() == nd);
  // Bitmask per dim: bit j of start_ok / end_ok. Piece boundaries were
  // cached at construction; piece j spans [bounds[j], bounds[j+1]].
  thread_local std::vector<uint32_t> start_ok, end_ok;
  start_ok.assign(nd, 0);
  end_ok.assign(nd, 0);
  const Box& qb = query.box;
  for (Dim d = 0; d < nd; ++d) {
    const DimInfo& di = dims_[d];
    if (!di.divided) continue;
    const float* sb = piece_bounds_.data() + di.bounds_first;
    const float* eb = sb + (f_ + 1);
    uint32_t sm = 0, em = 0;
    for (uint32_t j = 0; j < f_; ++j) {
      bool s_ok = false, e_ok = false;
      switch (query.rel) {
        case Relation::kIntersects:
          s_ok = sb[j] <= qb.hi(d);      // piece lo vs query hi
          e_ok = eb[j + 1] >= qb.lo(d);  // piece hi vs query lo
          break;
        case Relation::kContainedBy:
          s_ok = sb[j + 1] >= qb.lo(d);
          e_ok = eb[j] <= qb.hi(d);
          break;
        case Relation::kEncloses:
          s_ok = sb[j] <= qb.lo(d);
          e_ok = eb[j + 1] >= qb.hi(d);
          break;
      }
      if (s_ok) sm |= (1u << j);
      if (e_ok) em |= (1u << j);
    }
    start_ok[d] = sm;
    end_ok[d] = em;
  }
  for (Candidate& c : cands_) {
    if ((start_ok[c.dim] >> c.ia) & 1u) {
      if ((end_ok[c.dim] >> c.ib) & 1u) c.q += 1.0;
    }
  }
}

Signature CandidateSet::MakeSignature(const Signature& owner, size_t i) const {
  ACCL_DCHECK(i < cands_.size());
  const Candidate& c = cands_[i];
  const DimInfo& di = dims_[c.dim];
  Signature s = owner;
  s.set(c.dim, Piece(di.start_var, c.ia, f_), Piece(di.end_var, c.ib, f_));
  return s;
}

void CandidateSet::Halve() {
  w0_ *= 0.5;
  for (Candidate& c : cands_) c.q *= 0.5;
}

}  // namespace accl
