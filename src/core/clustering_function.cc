#include "core/clustering_function.h"

#include <cmath>

#include "util/check.h"

namespace accl {

VarInterval Piece(const VarInterval& v, uint32_t j, uint32_t f) {
  ACCL_DCHECK(j < f);
  const double lo = v.lo;
  const double w = (static_cast<double>(v.hi) - lo) / f;
  VarInterval p;
  p.lo = static_cast<float>(lo + w * j);
  if (j + 1 == f) {
    p.hi = v.hi;
    p.hi_closed = v.hi_closed;
  } else {
    p.hi = static_cast<float>(lo + w * (j + 1));
    p.hi_closed = false;
  }
  return p;
}

int PieceIndex(const VarInterval& v, uint32_t f, float x) {
  if (!v.Contains(x)) return -1;
  const double w = (static_cast<double>(v.hi) - v.lo) / f;
  int idx;
  if (w <= 0.0) {
    idx = 0;
  } else {
    idx = static_cast<int>((x - v.lo) / w);
    if (idx >= static_cast<int>(f)) idx = static_cast<int>(f) - 1;
    if (idx < 0) idx = 0;
  }
  // Float rounding can put x just across a boundary; nudge to the piece that
  // actually contains it.
  if (!Piece(v, idx, f).Contains(x)) {
    if (idx + 1 < static_cast<int>(f) && Piece(v, idx + 1, f).Contains(x)) {
      ++idx;
    } else if (idx > 0 && Piece(v, idx - 1, f).Contains(x)) {
      --idx;
    }
  }
  ACCL_DCHECK(Piece(v, idx, f).Contains(x));
  return idx;
}

CandidateSet::CandidateSet(const Signature& sig, uint32_t f,
                           double created_weight, float min_width)
    : f_(f), w0_(created_weight) {
  // AccountQuery uses 32-bit piece masks; the paper uses f = 4.
  ACCL_CHECK(f >= 2 && f <= 32);
  const Dim nd = sig.dims();
  dims_.resize(nd);
  lookup_.assign(static_cast<size_t>(nd) * f * f, -1);
  for (Dim d = 0; d < nd; ++d) {
    DimInfo& di = dims_[d];
    di.start_var = sig.start_var(d);
    di.end_var = sig.end_var(d);
    di.first = static_cast<int32_t>(static_cast<size_t>(d) * f * f);
    // A dimension already narrowed below min_width cannot discriminate
    // further; skip it. Both variation intervals must be divisible, since a
    // zero-width piece could contain no value at all.
    if (di.start_var.width() < min_width || di.end_var.width() < min_width) {
      continue;
    }
    di.divided = true;
    QDim qd;
    qd.dim = static_cast<uint16_t>(d);
    qd.start_hi_closed = di.start_var.hi_closed ? 1 : 0;
    qd.end_hi_closed = di.end_var.hi_closed ? 1 : 0;
    qd.is_full_domain =
        (di.start_var.IsFullDomain() && di.end_var.IsFullDomain()) ? 1 : 0;
    qd.start_lo = di.start_var.lo;
    qd.end_lo = di.end_var.lo;
    qd.cand_begin = static_cast<uint32_t>(key_.size());
    qd.lookup_first = di.first;
    qd.start_inv_w =
        f / (static_cast<double>(di.start_var.hi) - di.start_var.lo);
    qd.end_inv_w = f / (static_cast<double>(di.end_var.hi) - di.end_var.lo);
    qdims_.push_back(qd);
    qhot_.push_back(QHot{qd.dim, qd.is_full_domain, 0, qd.cand_begin});
    for (uint32_t j = 0; j <= f; ++j) {
      piece_bounds_.push_back(j == f ? di.start_var.hi
                                     : Piece(di.start_var, j, f).lo);
    }
    for (uint32_t j = 0; j <= f; ++j) {
      piece_bounds_.push_back(j == f ? di.end_var.hi
                                     : Piece(di.end_var, j, f).lo);
    }
    for (uint32_t ia = 0; ia < f; ++ia) {
      ia_bases_.push_back(static_cast<uint32_t>(key_.size()));
      const VarInterval pa = Piece(di.start_var, ia, f);
      for (uint32_t ib = 0; ib < f; ++ib) {
        const VarInterval pb = Piece(di.end_var, ib, f);
        // Feasible iff an object with a <= b can have a in pa and b in pb:
        // the start piece must begin strictly before the end piece ends.
        // With identical variation intervals this excludes ia > ib, giving
        // the paper's f(f+1)/2 symmetric count.
        if (!(pa.lo < pb.hi)) continue;
        lookup_[di.first + ia * f + ib] = static_cast<int32_t>(key_.size());
        key_.push_back((static_cast<uint32_t>(d) << 16) | (ia << 8) | ib);
      }
    }
    ia_bases_.push_back(static_cast<uint32_t>(key_.size()));
  }
  n_.assign(key_.size(), 0.0);
  q_.assign(key_.size(), 0.0);
}

namespace {

// PieceIndex against cached piece boundaries: piece j spans
// [bnd[j], bnd[j+1]), the last piece closed iff the variation interval is.
// Same guess-then-nudge logic (and nudge order) as PieceIndex, but without
// reconstructing any Piece, so the insert/move path does one division and a
// couple of cached-float compares per dimension. `x` must lie inside the
// variation interval (candidate accounting is only called for members).
inline int PieceIndexCached(const float* bnd, uint32_t f, bool hi_closed,
                            float lo, double inv_w, float x) {
  int idx = static_cast<int>((x - lo) * inv_w);
  if (idx < 0) idx = 0;
  if (idx >= static_cast<int>(f)) idx = static_cast<int>(f) - 1;
  const auto contains = [&](int j) {
    if (x < bnd[j]) return false;
    if (x < bnd[j + 1]) return true;
    return j + 1 == static_cast<int>(f) && hi_closed && x <= bnd[j + 1];
  };
  if (!contains(idx)) {
    if (idx + 1 < static_cast<int>(f) && contains(idx + 1)) {
      ++idx;
    } else if (idx > 0 && contains(idx - 1)) {
      --idx;
    }
  }
  return idx;
}

}  // namespace

void CandidateSet::AccountObject(BoxView o, double delta) {
  ACCL_DCHECK(o.dims() == dims_.size());
  const float* oc = o.data();
  const uint32_t fp1 = f_ + 1;
  const size_t ndiv = qdims_.size();
  for (size_t i = 0; i < ndiv; ++i) {
    const QDim& qd = qdims_[i];
    const float* sb = piece_bounds_.data() + i * 2 * fp1;
    const float* eb = sb + fp1;
    const int ia = PieceIndexCached(sb, f_, qd.start_hi_closed != 0,
                                    qd.start_lo, qd.start_inv_w,
                                    oc[2 * qd.dim]);
    const int ib = PieceIndexCached(eb, f_, qd.end_hi_closed != 0, qd.end_lo,
                                    qd.end_inv_w, oc[2 * qd.dim + 1]);
    ACCL_DCHECK(ia == PieceIndex(dims_[qd.dim].start_var, f_, o.lo(qd.dim)));
    ACCL_DCHECK(ib == PieceIndex(dims_[qd.dim].end_var, f_, o.hi(qd.dim)));
    const int32_t ci =
        lookup_[qd.lookup_first + ia * static_cast<int>(f_) + ib];
    if (ci >= 0) {
      n_[ci] += delta;
      if (n_[ci] < 0) n_[ci] = 0;  // float drift guard
    }
  }
}

namespace {

// Piece admission masks of one dimension: sm bit j = start piece j passes,
// em bit j = end piece j passes. The relation only selects which query
// coordinate each cached piece bound is compared against and in which
// direction.
inline void PieceMasks(const float* sb, const float* eb, uint32_t f,
                       float qlo, float qhi, Relation rel, uint32_t* sm_out,
                       uint32_t* em_out) {
  uint32_t sm = 0, em = 0;
  switch (rel) {
    case Relation::kIntersects:
      for (uint32_t j = 0; j < f; ++j) {
        sm |= static_cast<uint32_t>(sb[j] <= qhi) << j;      // piece lo
        em |= static_cast<uint32_t>(eb[j + 1] >= qlo) << j;  // piece hi
      }
      break;
    case Relation::kContainedBy:
      for (uint32_t j = 0; j < f; ++j) {
        sm |= static_cast<uint32_t>(sb[j + 1] >= qlo) << j;
        em |= static_cast<uint32_t>(eb[j] <= qhi) << j;
      }
      break;
    case Relation::kEncloses:
      for (uint32_t j = 0; j < f; ++j) {
        sm |= static_cast<uint32_t>(sb[j] <= qlo) << j;
        em |= static_cast<uint32_t>(eb[j + 1] >= qhi) << j;
      }
      break;
  }
  *sm_out = sm;
  *em_out = em;
}

}  // namespace

void CandidateSet::AccountQuery(const Query& query, QueryPieceMasks* shared) {
  // Candidates differ from the owner in exactly one dimension, so a
  // candidate is admitted iff its pieces pass the per-dimension admission
  // test for that dimension. Compute, per divided dimension, a bitmask of
  // passing start pieces (sm) and end pieces (em), then update that
  // dimension's contiguous candidate range.
  ACCL_DCHECK(query.dims() == dims_.size());
  const float* qc = query.box.data();
  const uint32_t fp1 = f_ + 1;
  const size_t ndiv = qhot_.size();
  double* __restrict__ cq = q_.data();
  for (size_t i = 0; i < ndiv; ++i) {
    const QHot qd = qhot_[i];
    const Dim d = qd.dim;
    const float qlo = qc[2 * d];
    const float qhi = qc[2 * d + 1];
    uint32_t sm, em;
    if (qd.is_full_domain && shared != nullptr) {
      // A full-domain interval divides into the same boundaries everywhere,
      // so this dimension's masks are a per-query constant shared across
      // clusters — most explorations then never touch the bounds at all.
      if (!shared->valid[d]) {
        PieceMasks(piece_bounds_.data() + i * 2 * fp1,
                   piece_bounds_.data() + i * 2 * fp1 + fp1, f_, qlo, qhi,
                   query.rel, &shared->sm[d], &shared->em[d]);
        shared->valid[d] = 1;
      }
      sm = shared->sm[d];
      em = shared->em[d];
    } else {
      PieceMasks(piece_bounds_.data() + i * 2 * fp1,
                 piece_bounds_.data() + i * 2 * fp1 + fp1, f_, qlo, qhi,
                 query.rel, &sm, &em);
    }
    if (sm == 0 || em == 0) continue;  // no candidate of this dim admitted
    // The piece bounds are monotone, so sm and em are contiguous runs of
    // bits, and per start piece the feasible end pieces are a contiguous
    // suffix — admitted candidates therefore form one contiguous slice of
    // the indicator array per admitted start piece. Increment the slices
    // directly instead of testing all f(f+1)/2 candidates one by one.
    const uint32_t ia_lo = static_cast<uint32_t>(__builtin_ctz(sm));
    const uint32_t ia_hi = 32u - static_cast<uint32_t>(__builtin_clz(sm));
    const uint32_t ib_lo = static_cast<uint32_t>(__builtin_ctz(em));
    const uint32_t ib_hi = 32u - static_cast<uint32_t>(__builtin_clz(em));
    ACCL_DCHECK(sm == (((1ull << ia_hi) - 1) & ~((1ull << ia_lo) - 1)));
    ACCL_DCHECK(em == (((1ull << ib_hi) - 1) & ~((1ull << ib_lo) - 1)));
    if (qd.is_full_domain) {
      // Symmetric feasibility (ia <= ib): group ia starts at offset
      // ia*f - ia*(ia-1)/2 of the dimension's range, with ib >= ia. No
      // per-cluster layout data is read.
      for (uint32_t ia = ia_lo; ia < ia_hi; ++ia) {
        const uint32_t base = qd.cand_begin + ia * f_ - ia * (ia - 1) / 2;
        const uint32_t from = ib_lo > ia ? ib_lo : ia;
        if (from >= ib_hi) continue;
        double* qq = cq + base + (from - ia);
        for (uint32_t t = from; t < ib_hi; ++t) *qq++ += 1.0;
      }
    } else {
      const uint32_t* bases = ia_bases_.data() + i * fp1;
      for (uint32_t ia = ia_lo; ia < ia_hi; ++ia) {
        const uint32_t base = bases[ia];
        const uint32_t ibmin = f_ - (bases[ia + 1] - base);
        const uint32_t from = ib_lo > ibmin ? ib_lo : ibmin;
        if (from >= ib_hi) continue;
        double* qq = cq + base + (from - ibmin);
        for (uint32_t t = from; t < ib_hi; ++t) *qq++ += 1.0;
      }
    }
  }
}

Signature CandidateSet::MakeSignature(const Signature& owner, size_t i) const {
  ACCL_DCHECK(i < key_.size());
  const Candidate c = at(i);
  const DimInfo& di = dims_[c.dim];
  Signature s = owner;
  s.set(c.dim, Piece(di.start_var, c.ia, f_), Piece(di.end_var, c.ib, f_));
  return s;
}

void CandidateSet::Halve() {
  w0_ *= 0.5;
  for (double& q : q_) q *= 0.5;
}

}  // namespace accl
