#include "durability/segment.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/digest.h"
#include "util/serialize.h"

namespace accl::durability {

namespace {

/// Splits `base` into its directory (for the scan) and filename prefix.
void SplitBase(const std::string& base, std::string* dir,
               std::string* prefix) {
  const size_t slash = base.find_last_of('/');
  if (slash == std::string::npos) {
    *dir = ".";
    *prefix = base;
  } else {
    *dir = base.substr(0, slash == 0 ? 1 : slash);
    *prefix = base.substr(slash + 1);
  }
}

/// Parses a pure-decimal suffix; false when empty or non-numeric.
bool ParseSeq(const std::string& s, uint64_t* seq) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = v;
  return true;
}

std::vector<SegmentFileInfo> ListWithInfix(const std::string& base,
                                           const std::string& infix) {
  std::string dir, prefix;
  SplitBase(base, &dir, &prefix);
  prefix += infix;
  std::vector<SegmentFileInfo> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    uint64_t seq = 0;
    if (!ParseSeq(name.substr(prefix.size()), &seq) || seq == 0) continue;
    SegmentFileInfo info;
    info.seq = seq;
    info.path = (dir == "." ? name : dir + "/" + name);
    out.push_back(std::move(info));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const SegmentFileInfo& a, const SegmentFileInfo& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string SeqSuffix(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

}  // namespace

uint32_t FrameChecksum(const uint8_t* payload, size_t n, Lsn lsn,
                       uint64_t gen) {
  return FrameChecksumFromHash(Fnv1aBytes(kFnvOffsetBasis, payload, n), lsn,
                               gen);
}

uint32_t FrameChecksumFromHash(uint64_t payload_hash, Lsn lsn, uint64_t gen) {
  return FnvFold32(Fnv1a(Fnv1a(payload_hash, lsn), gen));
}

std::string SegmentPath(const std::string& base, uint64_t seq) {
  return base + "." + SeqSuffix(seq);
}

std::string SparePath(const std::string& base, uint64_t seq) {
  return base + ".spare." + SeqSuffix(seq);
}

std::vector<SegmentFileInfo> ListSegmentFiles(const std::string& base) {
  return ListWithInfix(base, ".");
}

std::vector<SegmentFileInfo> ListSpareFiles(const std::string& base) {
  return ListWithInfix(base, ".spare.");
}

void RemoveWalFiles(const std::string& base) {
  for (const SegmentFileInfo& f : ListSegmentFiles(base)) {
    std::remove(f.path.c_str());
  }
  for (const SegmentFileInfo& f : ListSpareFiles(base)) {
    std::remove(f.path.c_str());
  }
}

namespace {

/// Writes + syncs the preamble of `file`. One fault consult, one charged
/// head repositioning + transfer.
bool WritePreamble(PagedFile* file, uint64_t seq, Lsn base_lsn,
                   SimDisk* disk) {
  if (disk != nullptr && disk->NextOpFails()) return false;
  uint8_t pre[kSegmentPreambleBytes];
  const uint32_t magic = kSegmentMagic;
  const uint32_t version = kSegmentVersion;
  std::memcpy(pre, &magic, 4);
  std::memcpy(pre + 4, &version, 4);
  std::memcpy(pre + 8, &seq, 8);
  std::memcpy(pre + 16, &base_lsn, 8);
  if (!file->StreamWrite(0, pre, kSegmentPreambleBytes)) return false;
  if (!file->Sync()) return false;
  if (disk != nullptr) {
    disk->Seek();
    disk->Transfer(kSegmentPreambleBytes);
  }
  return true;
}

}  // namespace

std::unique_ptr<WalSegment> WalSegment::Create(const std::string& path,
                                               uint32_t page_bytes,
                                               uint64_t seq, Lsn base_lsn,
                                               SimDisk* disk) {
  if (disk != nullptr && disk->NextOpFails()) return nullptr;
  std::unique_ptr<PagedFile> file = PagedFile::Create(path, page_bytes);
  if (file == nullptr) return nullptr;
  if (disk != nullptr) disk->NoteCreate();
  if (!WritePreamble(file.get(), seq, base_lsn, disk)) {
    return nullptr;  // the torn file is GC'd at the next open
  }
  return std::unique_ptr<WalSegment>(
      new WalSegment(path, std::move(file), seq, base_lsn));
}

std::unique_ptr<WalSegment> WalSegment::Recycle(const std::string& path,
                                                uint64_t seq, Lsn base_lsn,
                                                SimDisk* disk) {
  std::unique_ptr<PagedFile> file = PagedFile::Open(path);
  if (file == nullptr) return nullptr;
  // Rewrite the preamble only — the stale frame bytes past it survive on
  // purpose (the generation stamp is what makes that safe), so recycling
  // costs one small write instead of a truncate + regrow.
  if (!WritePreamble(file.get(), seq, base_lsn, disk)) return nullptr;
  return std::unique_ptr<WalSegment>(
      new WalSegment(path, std::move(file), seq, base_lsn));
}

std::unique_ptr<WalSegment> WalSegment::Open(const std::string& path) {
  std::unique_ptr<PagedFile> file = PagedFile::Open(path);
  if (file == nullptr) return nullptr;
  if (file->payload_bytes() < kSegmentPreambleBytes) return nullptr;
  uint8_t pre[kSegmentPreambleBytes];
  if (!file->StreamRead(0, pre, kSegmentPreambleBytes)) return nullptr;
  uint32_t magic = 0, version = 0;
  uint64_t seq = 0;
  Lsn base_lsn = kNoLsn;
  std::memcpy(&magic, pre, 4);
  std::memcpy(&version, pre + 4, 4);
  std::memcpy(&seq, pre + 8, 8);
  std::memcpy(&base_lsn, pre + 16, 8);
  if (magic != kSegmentMagic || version != kSegmentVersion || seq == 0) {
    return nullptr;
  }
  return std::unique_ptr<WalSegment>(
      new WalSegment(path, std::move(file), seq, base_lsn));
}

bool WalSegment::DecodeFrameAt(uint64_t off, WalRecord* out, uint64_t* next,
                               bool* io_error) {
  *io_error = false;
  const uint64_t limit = payload_limit();
  if (off + kFrameHeaderBytes > limit) return false;
  uint32_t len = 0, crc = 0;
  uint64_t gen = 0;
  uint8_t hdr[kFrameHeaderBytes];
  // Every read below stays within `limit`, bytes the file claims to back:
  // a failure is a real I/O error, not a torn tail.
  if (!file_->StreamRead(off, hdr, kFrameHeaderBytes)) {
    *io_error = true;
    return false;
  }
  std::memcpy(&len, hdr, 4);
  std::memcpy(&crc, hdr + 4, 4);
  std::memcpy(&out->lsn, hdr + 8, 8);
  std::memcpy(&gen, hdr + 16, 8);
  if (len == 0 || len > kMaxFrameBytes || out->lsn == kNoLsn) return false;
  // Stale generation: bytes from a previous life of this physical region.
  // Everything else about the frame may check out (length, checksum, even
  // LSN continuity under an adversarial layout) — the stamp is the one
  // field a dead frame cannot carry forward.
  if (gen != seq_) return false;
  if (off + kFrameHeaderBytes + len > limit) return false;  // torn tail
  std::vector<uint8_t> payload(len);
  if (!file_->StreamRead(off + kFrameHeaderBytes, payload.data(), len)) {
    *io_error = true;
    return false;
  }
  if (FrameChecksum(payload.data(), len, out->lsn, gen) != crc) return false;
  ByteReader r(payload);
  uint8_t type = 0;
  if (!r.GetU8(&type)) return false;
  if (type < static_cast<uint8_t>(WalRecordType::kSubscribe) ||
      type > static_cast<uint8_t>(WalRecordType::kUnsubscribe)) {
    return false;
  }
  out->type = static_cast<WalRecordType>(type);
  if (!r.GetU32(&out->first_id)) return false;
  if (out->type == WalRecordType::kUnsubscribe) {
    out->count = 1;
    out->nd = 0;
    out->coords.clear();
  } else {
    if (!r.GetU32(&out->count) || !r.GetU32(&out->nd)) return false;
    if (out->count == 0 || out->nd == 0) return false;
    const size_t floats = static_cast<size_t>(out->count) * 2 * out->nd;
    if (r.remaining() != floats * 4) return false;
    out->coords.resize(floats);
    if (!r.GetBytes(out->coords.data(), floats * 4)) return false;
  }
  if (!r.exhausted()) return false;
  *next = off + kFrameHeaderBytes + len;
  return true;
}

}  // namespace accl::durability
