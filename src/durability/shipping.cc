// Log shipping implementation: mirror the source segment chain
// byte-verbatim, re-base from its checkpoint when the cursor falls behind
// the log, apply behind the replication cursor, promote on failover. See
// shipping.h for the model.
#include "durability/shipping.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "durability/wal.h"
#include "obs/trace.h"
#include "storage/paged_store.h"
#include "util/timer.h"

namespace accl::durability {
namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

LogShipper::LogShipper(AttributeSchema schema, EngineOptions engine_options,
                       Options options)
    : schema_(std::move(schema)),
      engine_options_(std::move(engine_options)),
      options_(std::move(options)) {}

LogShipper::~LogShipper() { DetachMetrics(); }

std::unique_ptr<LogShipper> LogShipper::Create(AttributeSchema schema,
                                               EngineOptions engine_options,
                                               Options options,
                                               Status* status) {
  // A fresh shipper is a fresh follower: whatever replica artifacts a
  // previous incarnation left are superseded, and keeping them would let a
  // stale mirror chain disagree with the empty engine below.
  RemoveWalFiles(options.replica_wal_base);
  std::remove(options.replica_checkpoint_path.c_str());

  auto shipper = std::unique_ptr<LogShipper>(new LogShipper(
      std::move(schema), std::move(engine_options), std::move(options)));

  std::unique_ptr<PagedFile> ckpt_file = OpenOrCreatePagedFile(
      shipper->options_.replica_checkpoint_path,
      shipper->options_.checkpoint_page_bytes);
  if (ckpt_file == nullptr) {
    if (status != nullptr) {
      *status = Status::IOError("cannot create the replica checkpoint file: " +
                                shipper->options_.replica_checkpoint_path);
    }
    return nullptr;
  }
  shipper->replica_ckpts_ =
      CheckpointStore::Open(std::move(ckpt_file), shipper->options_.disk);

  shipper->engine_ = SubscriptionEngine::Create(
      shipper->schema_, shipper->engine_options_, status);
  if (shipper->engine_ == nullptr) return nullptr;
  shipper->engine_->SetRole(SubscriptionEngine::EngineRole::kFollower);
  // Replication lag/cursor/throughput metrics surface through the
  // follower's own DumpMetrics alongside its pipeline families.
  shipper->AttachMetrics(&shipper->engine_->metrics());
  if (status != nullptr) *status = Status::Ok();
  return shipper;
}

Status LogShipper::SyncCheckpoint(bool need_rebase) {
  EngineImage image;
  bool have_image = false;
  if (FileExists(options_.source_checkpoint_path)) {
    // Re-open per pass: the primary writes through its own handle, so a
    // cached snapshot would never see a new directory flip. Source reads
    // are never charged to the disk — only replica-side writes are ours.
    std::unique_ptr<PagedFile> src_file =
        PagedFile::Open(options_.source_checkpoint_path);
    if (src_file != nullptr) {
      std::unique_ptr<CheckpointStore> src =
          CheckpointStore::Open(std::move(src_file), nullptr);
      have_image = src->Read(&image);
    }
  }

  if (have_image && image.lsn > replica_ckpt_lsn_) {
    // Image-level copy: re-validated on read, re-written shadow-paged into
    // the replica store (which consults the shared disk), never byte-cloned.
    if (!replica_ckpts_->Write(image)) {
      return Status::IOError("replica checkpoint write failed");
    }
    replica_ckpt_lsn_ = image.lsn;
  }
  if (have_image && static_cast<int64_t>(image.lsn) >
                        source_durable_lsn_gauge_.Value()) {
    source_durable_lsn_gauge_.Set(static_cast<int64_t>(image.lsn));
  }
  if (!need_rebase) return Status::Ok();

  if (replica_ckpt_lsn_ <= cursor_lsn_) {
    // The source truncated records past the cursor AND its checkpoint does
    // not cover them — the WAL's truncate precondition makes this
    // impossible for an intact source, so surface it rather than ship a
    // log with a hole.
    return Status::FailedPrecondition(
        "source log has a gap behind the replication cursor and no "
        "checkpoint covers it");
  }
  // Re-base: rebuild the follower from the (already replica-durable)
  // image. Dedup in ApplyReplicated would not help here — the image also
  // reflects unsubscribes the cursor never saw — so the engine is rebuilt,
  // not patched.
  Status st;
  std::unique_ptr<SubscriptionEngine> rebuilt = SubscriptionEngine::Recover(
      schema_, engine_options_, replica_ckpts_.get(), /*wal=*/nullptr, &st,
      &apply_stats_);
  if (rebuilt == nullptr) return st;
  rebuilt->SetRole(SubscriptionEngine::EngineRole::kFollower);
  // The replica registry dies with the engine it belongs to: withdraw the
  // shipper's metrics before the swap and re-home them on the rebuilt
  // engine, or attached_reg_ would dangle into the destroyed registry.
  DetachMetrics();
  engine_ = std::move(rebuilt);
  AttachMetrics(&engine_->metrics());
  cursor_lsn_ = replica_ckpt_lsn_;
  mirror_max_lsn_ = 0;  // pre-gap mirror content no longer constrains copies
  checkpoint_catchups_.Add(1);
  return Status::Ok();
}

Status LogShipper::ShipSegment(const SegmentFileInfo& info, bool* stop) {
  *stop = false;
  std::unique_ptr<WalSegment> src = WalSegment::Open(info.path);
  if (src == nullptr || src->seq() != info.seq) {
    // Torn creation or a crash mid-recycle (name and preamble disagree):
    // the source's own reopen garbage-collects this file; nothing past it
    // is valid log.
    *stop = true;
    return Status::Ok();
  }

  auto it = mirror_.find(info.seq);
  uint64_t off =
      it != mirror_.end() ? it->second.tail : kSegmentPreambleBytes;

  // Validate + decode the new frames first; the verbatim copy below only
  // happens for frames that decoded clean and kept LSN continuity.
  std::vector<WalRecord> recs;
  std::vector<uint8_t> buf;
  uint64_t end = off;
  // Continuity is tracked locally and committed to mirror_max_lsn_ only
  // once the batch is mirror-durable: a pass that decoded frames but then
  // failed the mirror write must leave no trace, or the retry would see
  // its own aborted progress as a continuity break.
  Lsn copied_max = mirror_max_lsn_;
  for (;;) {
    WalRecord rec;
    uint64_t next = 0;
    bool io_error = false;
    if (!src->DecodeFrameAt(end, &rec, &next, &io_error)) {
      if (io_error) {
        return Status::IOError("source segment read failed: " + info.path);
      }
      break;  // clean tail (or a seal — the next segment decides)
    }
    if (copied_max != 0 && rec.lsn != copied_max + 1) {
      // A decodable frame that breaks LSN continuity is not a seal; it is
      // stale or foreign. Ship nothing from here on.
      *stop = true;
      return Status::Ok();
    }
    const size_t frame_bytes = static_cast<size_t>(next - end);
    buf.resize(buf.size() + frame_bytes);
    if (!src->Read(end, buf.data() + buf.size() - frame_bytes, frame_bytes)) {
      return Status::IOError("source segment read failed: " + info.path);
    }
    copied_max = rec.lsn;
    recs.push_back(std::move(rec));
    end = next;
  }
  if (recs.empty()) return Status::Ok();

  if (it == mirror_.end()) {
    std::unique_ptr<WalSegment> seg = WalSegment::Create(
        SegmentPath(options_.replica_wal_base, info.seq),
        options_.wal_page_bytes, info.seq, src->base_lsn(), options_.disk);
    if (seg == nullptr) {
      return Status::IOError("cannot create mirror segment for " + info.path);
    }
    Mirror m;
    m.seg = std::move(seg);
    it = mirror_.emplace(info.seq, std::move(m)).first;
    segments_mirrored_.Add(1);
  }
  Mirror& m = it->second;

  // One consult per shipped batch, mirroring the WAL flusher's policy.
  if (options_.disk != nullptr) {
    if (options_.disk->NextOpFails()) {
      return Status::IOError("injected fault on mirror segment write");
    }
    options_.disk->Seek();
    options_.disk->Transfer(buf.size());
  }
  if (!m.seg->Write(m.tail, buf.data(), buf.size()) || !m.seg->Sync()) {
    return Status::IOError("mirror segment write failed: " + m.seg->path());
  }
  m.tail = end;
  m.last_lsn = recs.back().lsn;
  mirror_max_lsn_ = copied_max;
  bytes_shipped_.Add(static_cast<uint64_t>(buf.size()));

  // Apply behind the cursor only after the bytes are mirror-durable, so a
  // promoted node's files always cover its in-memory state.
  for (const WalRecord& rec : recs) {
    if (rec.lsn <= cursor_lsn_) continue;
    engine_->ApplyReplicated(rec, &apply_stats_);
    cursor_lsn_ = rec.lsn;
    records_applied_.Add(1);
  }
  return Status::Ok();
}

Status LogShipper::GcMirror(uint64_t oldest_live_seq) {
  for (auto it = mirror_.begin(); it != mirror_.end();) {
    const Mirror& m = it->second;
    const bool covered =
        m.last_lsn == kNoLsn || m.last_lsn <= replica_ckpt_lsn_;
    if (it->first >= oldest_live_seq || !covered) {
      ++it;
      continue;
    }
    if (options_.disk != nullptr) {
      if (options_.disk->NextOpFails()) {
        return Status::IOError("injected fault on mirror segment unlink");
      }
      options_.disk->NoteUnlink();
    }
    const std::string path = m.seg->path();
    it = mirror_.erase(it);  // close the handle before unlinking
    std::remove(path.c_str());
    mirror_unlinked_.Add(1);
  }
  return Status::Ok();
}

Status LogShipper::ShipOnce() {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("shipper was already promoted");
  }
  ACCL_TRACE_SPAN("ship_once");
  WallTimer pass_timer;
  const std::vector<SegmentFileInfo> live =
      ListSegmentFiles(options_.source_wal_base);

  // Gap check: records the follower still owes start at cursor+1; the
  // oldest live segment's base LSN is the oldest record the log can still
  // serve. Anything older must come from the checkpoint.
  bool need_rebase = false;
  if (!live.empty()) {
    std::unique_ptr<WalSegment> oldest = WalSegment::Open(live.front().path);
    if (oldest != nullptr && oldest->seq() == live.front().seq) {
      need_rebase = cursor_lsn_ + 1 < oldest->base_lsn();
    }
  }
  Status st = SyncCheckpoint(need_rebase);
  if (st.ok()) {
    for (const SegmentFileInfo& info : live) {
      bool stop = false;
      st = ShipSegment(info, &stop);
      if (!st.ok() || stop) break;
    }
  }
  if (st.ok() && !live.empty()) {
    st = GcMirror(live.front().seq);
  }
  ship_pass_us_.Record(static_cast<uint64_t>(
      std::max(0.0, std::round(pass_timer.ElapsedMs() * 1000.0))));
  if (!st.ok()) {
    ship_errors_.Add(1);
    return st;
  }
  ship_passes_.Add(1);
  cursor_lsn_gauge_.Set(static_cast<int64_t>(cursor_lsn_));
  if (static_cast<int64_t>(mirror_max_lsn_) >
      source_durable_lsn_gauge_.Value()) {
    source_durable_lsn_gauge_.Set(static_cast<int64_t>(mirror_max_lsn_));
  }
  const int64_t source_lsn = source_durable_lsn_gauge_.Value();
  lag_records_gauge_.Set(source_lsn > static_cast<int64_t>(cursor_lsn_)
                             ? source_lsn - static_cast<int64_t>(cursor_lsn_)
                             : 0);
  return Status::Ok();
}

Status LogShipper::Promote(const DurabilityOptions& durability_options,
                           DurableEngine* out) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("shipper was already promoted");
  }
  // Final catch-up against the (dead) source's files: after a crash the
  // surviving valid prefix is exactly the acknowledged prefix, so this
  // pass is what makes promotion lose nothing that was ever acked.
  Status st = ShipOnce();
  if (!st.ok()) return st;

  // Close the mirror handles, then reopen the chain as a real WAL — its
  // open-time walk re-validates every frame we shipped.
  mirror_.clear();
  WriteAheadLog::Options wal_opts;
  wal_opts.group_commit = durability_options.group_commit;
  wal_opts.disk = options_.disk;
  wal_opts.page_bytes = durability_options.wal_page_bytes;
  wal_opts.segment_bytes = durability_options.wal_segment_bytes;
  wal_opts.spare_segments = durability_options.wal_spare_segments;
  std::unique_ptr<WriteAheadLog> wal =
      WriteAheadLog::Open(options_.replica_wal_base, wal_opts);
  if (wal == nullptr) {
    return Status::IOError("cannot open the mirror chain as a WAL: " +
                           options_.replica_wal_base);
  }
  // After a checkpoint catch-up the cursor can sit past every mirrored
  // frame; new LSNs must still sort after it.
  wal->ReserveLsnsThrough(cursor_lsn_);

  *out = DurableEngine();
  out->wal = std::move(wal);
  out->checkpoints = std::move(replica_ckpts_);
  out->engine = std::move(engine_);
  out->engine->SetRole(SubscriptionEngine::EngineRole::kPrimary);
  out->engine->AttachDurability(out->wal.get());
  Checkpointer::Options cp_opts;
  cp_opts.every_mutations = durability_options.checkpoint_every_mutations;
  cp_opts.background = durability_options.background_checkpoints;
  out->checkpointer = std::make_unique<Checkpointer>(
      out->engine.get(), out->wal.get(), out->checkpoints.get(), cp_opts);
  out->engine->SetCheckpointer(out->checkpointer.get());
  out->recovery = apply_stats_;
  promoted_gauge_.Set(1);
  cursor_lsn_gauge_.Set(static_cast<int64_t>(cursor_lsn_));
  // The promoted engine (and its registry) outlives this shipper, and the
  // shipper-owned counters stop meaning anything for a primary: withdraw
  // them now rather than leaving dangling registrants behind.
  DetachMetrics();
  return Status::Ok();
}

ReplicationStats LogShipper::stats() const {
  ReplicationStats s;
  s.cursor_lsn = static_cast<Lsn>(cursor_lsn_gauge_.Value());
  s.source_durable_lsn = static_cast<Lsn>(source_durable_lsn_gauge_.Value());
  s.lag_records = static_cast<uint64_t>(lag_records_gauge_.Value());
  s.ship_passes = ship_passes_.Value();
  s.records_applied = records_applied_.Value();
  s.bytes_shipped = bytes_shipped_.Value();
  s.segments_mirrored = segments_mirrored_.Value();
  s.mirror_segments_unlinked = mirror_unlinked_.Value();
  s.checkpoint_catchups = checkpoint_catchups_.Value();
  s.ship_errors = ship_errors_.Value();
  s.promoted = promoted_gauge_.Value() != 0;
  return s;
}

void LogShipper::DetachMetrics() {
  if (attached_reg_ == nullptr) return;
  for (const char* name :
       {"accl_repl_ship_passes_total", "accl_repl_records_applied_total",
        "accl_repl_bytes_shipped_total", "accl_repl_segments_mirrored_total",
        "accl_repl_mirror_segments_unlinked_total",
        "accl_repl_checkpoint_catchups_total", "accl_repl_ship_errors_total",
        "accl_repl_ship_pass_us", "accl_repl_cursor_lsn",
        "accl_repl_source_durable_lsn", "accl_repl_lag_records",
        "accl_repl_promoted"}) {
    attached_reg_->Detach(name);
  }
  attached_reg_ = nullptr;
}

void LogShipper::AttachMetrics(obs::MetricsRegistry* reg) {
  attached_reg_ = reg;
  reg->Attach("accl_repl_ship_passes_total", &ship_passes_,
              "successful replication passes");
  reg->Attach("accl_repl_records_applied_total", &records_applied_,
              "records applied to the follower");
  reg->Attach("accl_repl_bytes_shipped_total", &bytes_shipped_,
              "bytes copied into the mirror chain");
  reg->Attach("accl_repl_segments_mirrored_total", &segments_mirrored_,
              "mirror segments created");
  reg->Attach("accl_repl_mirror_segments_unlinked_total", &mirror_unlinked_,
              "mirror segments garbage-collected");
  reg->Attach("accl_repl_checkpoint_catchups_total", &checkpoint_catchups_,
              "follower re-bases from the source checkpoint");
  reg->Attach("accl_repl_ship_errors_total", &ship_errors_,
              "replication passes that failed");
  reg->Attach("accl_repl_ship_pass_us", &ship_pass_us_,
              "duration of each replication pass (us)");
  reg->Attach("accl_repl_cursor_lsn", &cursor_lsn_gauge_,
              "highest LSN applied to the follower");
  reg->Attach("accl_repl_source_durable_lsn", &source_durable_lsn_gauge_,
              "highest source LSN observed");
  reg->Attach("accl_repl_lag_records", &lag_records_gauge_,
              "records the follower is behind the source");
  reg->Attach("accl_repl_promoted", &promoted_gauge_,
              "1 after a successful promotion");
}

}  // namespace accl::durability
