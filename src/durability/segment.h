// WAL segment files: the bounded, individually-checksummed units the
// write-ahead log is rotated into (durability/wal.h drives the lifecycle).
//
// A log is a directory-scanned chain of segment files named
// `<base>.<seq:08>`, each a PagedFile byte stream holding one 24-byte
// preamble followed by framed records. The segment sequence number doubles
// as the *generation stamp*: every frame written into a segment carries the
// segment's seq in its header and folds it into its checksum, and decoding
// rejects any frame whose stamp differs from the preamble's. A recycled
// file (a truncated segment renamed into the spare pool and later reused as
// a fresh tail) therefore keeps its stale bytes — old frames may survive
// past the new valid tail with intact lengths, checksums, even plausible
// LSNs — but they carry the dead generation and can never replay. That
// closes the torn-write ABA hazard the single-file log documented.
//
// Truncated segments are unlinked (bounding the log's on-disk footprint)
// or, up to a small pool cap, renamed to `<base>.spare.<seq:08>` for
// rotation to reuse. Spare files are never part of the live chain: the
// listing helpers keep the namespaces separate, and a crash between the
// rename and the preamble rewrite leaves a file whose name and preamble
// disagree — reopened logs garbage-collect it.
//
// SimDisk fault injection covers the file lifecycle, not just reads and
// writes: creating, unlinking or renaming a segment consults NextOpFails()
// first and charges one head repositioning (a directory update), so a
// crash-point matrix over io_ops() drives faults through rotation and
// segment GC as well.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/durability.h"
#include "api/types.h"
#include "storage/paged_store.h"
#include "storage/sim_disk.h"

namespace accl::durability {

/// Record kinds, one per engine mutation.
enum class WalRecordType : uint8_t {
  kSubscribe = 1,
  kSubscribeBatch = 2,
  kUnsubscribe = 3,
};

/// Decoded record handed to Replay callbacks.
struct WalRecord {
  WalRecordType type = WalRecordType::kSubscribe;
  Lsn lsn = kNoLsn;
  ObjectId first_id = kInvalidObject;  ///< id, or first id of a batch
  uint32_t count = 0;                  ///< subscriptions in the record
  Dim nd = 0;                          ///< 0 for kUnsubscribe
  std::vector<float> coords;           ///< count * 2 * nd floats
};

/// Frame layout: [u32 len][u32 crc][u64 lsn][u64 gen][payload]. The LSN
/// and the generation stamp live in the 24-byte header — not the payload —
/// so appenders can encode and hash the payload outside the log mutex and
/// the flusher folds the LSN and the target segment's generation into the
/// checksum in O(1) when it finally places the frame.
constexpr uint64_t kFrameHeaderBytes = 24;
/// Frames larger than this are treated as corruption, not allocated.
constexpr uint32_t kMaxFrameBytes = 1u << 26;

/// Segment preamble: [u32 magic][u32 version][u64 seq][u64 base_lsn],
/// written and synced at creation, immutable afterwards (a recycle rewrites
/// it under a fresh seq before the segment rejoins the chain).
constexpr uint64_t kSegmentPreambleBytes = 24;
constexpr uint32_t kSegmentMagic = 0x41534547u;  // "ASEG"
constexpr uint32_t kSegmentVersion = 1;

/// Frame checksum: FNV-1a over the payload, then the LSN and the
/// generation stamp folded on top, folded to the 32 bits the frame stores.
uint32_t FrameChecksum(const uint8_t* payload, size_t n, Lsn lsn,
                       uint64_t gen);
/// Same, resuming from a precomputed payload hash (Fnv1aBytes over the
/// payload starting at kFnvOffsetBasis) — the flusher's O(1) finish.
uint32_t FrameChecksumFromHash(uint64_t payload_hash, Lsn lsn, uint64_t gen);

/// Live segment file path: `<base>.<seq:08>`.
std::string SegmentPath(const std::string& base, uint64_t seq);
/// Spare (recycled-pool) file path: `<base>.spare.<seq:08>`.
std::string SparePath(const std::string& base, uint64_t seq);

struct SegmentFileInfo {
  uint64_t seq = 0;
  std::string path;
};

/// Lists `base`'s live segment files, ascending by seq (directory scan).
std::vector<SegmentFileInfo> ListSegmentFiles(const std::string& base);
/// Lists `base`'s spare files, ascending by the seq embedded in the name.
std::vector<SegmentFileInfo> ListSpareFiles(const std::string& base);
/// Unlinks every live segment and spare of `base` (tests and tools; the
/// log itself never removes files it did not decide to truncate).
void RemoveWalFiles(const std::string& base);

/// One segment file: a PagedFile stream with a validated preamble. Offsets
/// are absolute stream offsets; frames start at kSegmentPreambleBytes.
class WalSegment {
 public:
  /// Creates a fresh segment (truncating any existing file) and durably
  /// writes its preamble. Consults `disk` once for the file creation and
  /// once for the preamble write+sync; nullptr on failure (injected or
  /// real) — a torn creation leaves a file reopen garbage-collects.
  static std::unique_ptr<WalSegment> Create(const std::string& path,
                                            uint32_t page_bytes, uint64_t seq,
                                            Lsn base_lsn, SimDisk* disk);

  /// Reuses an existing file (a renamed spare) as a fresh segment: rewrites
  /// and syncs the preamble under the new seq WITHOUT truncating the
  /// payload — the old generation's frame bytes stay on disk past the new
  /// tail, which is exactly the surface the generation stamp guards.
  /// Consults `disk` once for the preamble write.
  static std::unique_ptr<WalSegment> Recycle(const std::string& path,
                                             uint64_t seq, Lsn base_lsn,
                                             SimDisk* disk);

  /// Opens an existing segment and validates its preamble (magic, version,
  /// non-zero seq). No fault consults: open-time reads are recovery I/O.
  static std::unique_ptr<WalSegment> Open(const std::string& path);

  uint64_t seq() const { return seq_; }
  Lsn base_lsn() const { return base_lsn_; }
  const std::string& path() const { return path_; }
  /// Bytes the file claims to back; the decode limit.
  uint64_t payload_limit() const { return file_->payload_bytes(); }

  bool Write(uint64_t off, const void* data, uint64_t len) {
    return file_->StreamWrite(off, data, len);
  }
  bool Read(uint64_t off, void* out, uint64_t len) {
    return file_->StreamRead(off, out, len);
  }
  bool Sync() { return file_->Sync(); }

  /// Decodes the frame at `off`; false when invalid/torn — a valid-prefix
  /// walk stops there. Rejects frames whose generation stamp is not this
  /// segment's seq (stale bytes in a recycled region). A false with
  /// `*io_error` set means a read failed on bytes the file claims to back:
  /// the scan result is unreliable, not a clean tail. `*next` is the
  /// offset just past a decoded frame.
  bool DecodeFrameAt(uint64_t off, WalRecord* out, uint64_t* next,
                     bool* io_error);

 private:
  WalSegment(std::string path, std::unique_ptr<PagedFile> file, uint64_t seq,
             Lsn base_lsn)
      : path_(std::move(path)),
        file_(std::move(file)),
        seq_(seq),
        base_lsn_(base_lsn) {}

  std::string path_;
  std::unique_ptr<PagedFile> file_;
  uint64_t seq_ = 0;
  Lsn base_lsn_ = kNoLsn;
};

}  // namespace accl::durability
