// Crash recovery: SubscriptionEngine::Recover (checkpoint load + idempotent
// WAL-tail replay) and durability::OpenDurable (the fully wired durable
// engine: files -> WAL -> checkpoint store -> recovered engine -> hooks).
//
// Replay idempotence, which is what makes the fuzzy checkpoint sound:
//   - Records with lsn <= checkpoint LSN are gone (truncated) or skipped —
//     the image is guaranteed to contain their effect (the LSN is the WAL's
//     applied low-water, read before the image scan).
//   - A subscribe whose id is already live is skipped (dedup by id): the
//     fuzzy scan may have captured the effect of a record *past* the
//     checkpoint LSN. Ids are never reused, so id-presence is an exact
//     "already applied" test.
//   - An unsubscribe of an unknown id is a no-op — either its subscribe was
//     also past the image scan (both replay, in LSN order), or the capture
//     already saw the removal.
//
// The same rules make ApplyReplicated safe as the follower's apply path
// (durability/shipping.h): a ship pass that re-reads frames it already
// applied, or that follows a checkpoint catch-up, changes nothing.
#include <sys/stat.h>

#include <algorithm>
#include <utility>

#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "sdi/subscription_engine.h"
#include "util/check.h"
#include "util/timer.h"

namespace accl {

void SubscriptionEngine::ApplyReplicated(const durability::WalRecord& rec,
                                         RecoveryStats* rs) {
  ++rs->wal_records_scanned;
  switch (rec.type) {
    case durability::WalRecordType::kSubscribe:
    case durability::WalRecordType::kSubscribeBatch: {
      if (rec.nd != schema_.dims()) {
        ++rs->wal_records_skipped;  // foreign record; never ours
        return;
      }
      std::vector<SubscriptionId> ids;
      std::vector<float> coords;
      const size_t stride = 2 * static_cast<size_t>(rec.nd);
      bool skipped_any = false;
      for (uint32_t i = 0; i < rec.count; ++i) {
        const SubscriptionId id = rec.first_id + i;
        if (ShardOf(id) != shards_.size()) {
          skipped_any = true;  // fuzzy image / earlier pass already holds it
          continue;
        }
        ids.push_back(id);
        coords.insert(coords.end(), rec.coords.data() + i * stride,
                      rec.coords.data() + (i + 1) * stride);
      }
      if (!ids.empty()) {
        RestoreSubscriptions(
            Span<const SubscriptionId>(ids.data(), ids.size()),
            coords.data());
        ++rs->wal_records_applied;
      }
      if (skipped_any || ids.empty()) ++rs->wal_records_skipped;
      // Ids past the image's allocator mark must stay allocated even when
      // every subscription in the record was deduplicated.
      std::lock_guard<std::mutex> lk(meta_mu_);
      if (rec.first_id + rec.count > next_id_) {
        next_id_ = rec.first_id + rec.count;
      }
      break;
    }
    case durability::WalRecordType::kUnsubscribe:
      if (ApplyUnsubscribe(rec.first_id)) {
        ++rs->wal_records_applied;
      } else {
        ++rs->wal_records_skipped;  // capture already saw the removal
      }
      break;
  }
}

std::unique_ptr<SubscriptionEngine> SubscriptionEngine::Recover(
    AttributeSchema schema, EngineOptions options,
    durability::CheckpointStore* checkpoints, durability::WriteAheadLog* wal,
    Status* status, RecoveryStats* recovery) {
  RecoveryStats local_stats;
  RecoveryStats& rs = recovery != nullptr ? *recovery : local_stats;
  rs = RecoveryStats();

  durability::EngineImage image;
  const bool have_image =
      checkpoints != nullptr && checkpoints->Read(&image);
  if (have_image) {
    if (image.nd != schema.dims()) {
      if (status != nullptr) {
        *status = Status::InvalidArgument(
            "checkpoint dimensionality does not match the schema");
      }
      return nullptr;
    }
    rs.checkpoint_loaded = true;
    rs.checkpoint_subscriptions = image.ids.size();
    rs.checkpoint_lsn = image.lsn;
    // Restore the checkpointed fence array when it fits the configured
    // shard count; otherwise keep the configured boundaries — the restore
    // below re-routes every subscription under whatever table the engine
    // starts with, so shard-count changes across a restart are legal.
    if (options.sharding == ShardingPolicy::kRange && options.shards >= 2 &&
        image.fences.size() == static_cast<size_t>(options.shards) - 2) {
      options.range_boundaries = image.fences;
    }
  }

  std::unique_ptr<SubscriptionEngine> engine =
      Create(std::move(schema), std::move(options), status);
  if (engine == nullptr) return nullptr;

  WallTimer timer;
  if (have_image) {
    engine->RestoreSubscriptions(
        Span<const SubscriptionId>(image.ids.data(), image.ids.size()),
        image.coords.data());
    std::lock_guard<std::mutex> lk(engine->meta_mu_);
    if (image.next_id > engine->next_id_) engine->next_id_ = image.next_id;
  }

  if (wal != nullptr) {
    // LSNs allocated after recovery must sort after everything the
    // checkpoint covers, even when the log was fully truncated (empty
    // scan): the log cannot know the checkpoint's LSN, so tell it.
    wal->ReserveLsnsThrough(image.lsn);
    SubscriptionEngine* e = engine.get();
    const bool replay_ok =
        wal->Replay(image.lsn, [&](const durability::WalRecord& rec) {
          e->ApplyReplicated(rec, &rs);
        });
    if (!replay_ok) {
      // A read I/O failure mid-scan: the prefix replayed so far may be
      // missing acknowledged records. Refusing is the only honest answer.
      if (status != nullptr) {
        *status = Status::InvalidArgument(
            "WAL replay hit a read I/O error; recovery is incomplete");
      }
      return nullptr;
    }
  }
  rs.replay_ms = timer.ElapsedMs();
  if (status != nullptr) *status = Status::Ok();
  return engine;
}

namespace durability {

std::unique_ptr<PagedFile> OpenOrCreatePagedFile(const std::string& path,
                                                 uint32_t page_bytes) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return PagedFile::Create(path, page_bytes);
  }
  return PagedFile::Open(path);
}

bool OpenDurable(AttributeSchema schema, EngineOptions engine_options,
                 const DurabilityOptions& durability_options,
                 const std::string& wal_path,
                 const std::string& checkpoint_path, SimDisk* disk,
                 DurableEngine* out, Status* status) {
  *out = DurableEngine();
  WriteAheadLog::Options wal_opts;
  wal_opts.group_commit = durability_options.group_commit;
  wal_opts.disk = disk;
  wal_opts.page_bytes = durability_options.wal_page_bytes;
  wal_opts.segment_bytes = durability_options.wal_segment_bytes;
  wal_opts.spare_segments = durability_options.wal_spare_segments;
  out->wal = WriteAheadLog::Open(wal_path, wal_opts);
  if (out->wal == nullptr) {
    if (status != nullptr) {
      *status = Status::IOError(
          "cannot open the WAL segment chain at " + wal_path +
          " (file error, or a read failed on backed bytes)");
    }
    return false;
  }

  std::unique_ptr<PagedFile> ckpt_file = OpenOrCreatePagedFile(
      checkpoint_path, durability_options.checkpoint_page_bytes);
  if (ckpt_file == nullptr) {
    if (status != nullptr) {
      *status = Status::InvalidArgument(
          "cannot open or create checkpoint file: " + checkpoint_path);
    }
    return false;
  }
  out->checkpoints = CheckpointStore::Open(std::move(ckpt_file), disk);

  out->engine = SubscriptionEngine::Recover(
      std::move(schema), std::move(engine_options), out->checkpoints.get(),
      out->wal.get(), status, &out->recovery);
  if (out->engine == nullptr) return false;

  out->engine->AttachDurability(out->wal.get());
  Checkpointer::Options cp_opts;
  cp_opts.every_mutations = durability_options.checkpoint_every_mutations;
  cp_opts.background = durability_options.background_checkpoints;
  out->checkpointer = std::make_unique<Checkpointer>(
      out->engine.get(), out->wal.get(), out->checkpoints.get(), cp_opts);
  out->engine->SetCheckpointer(out->checkpointer.get());
  return true;
}

}  // namespace durability
}  // namespace accl
