// Log shipping: a warm follower engine fed from a primary's durable files.
//
// The replication model is shared-storage log shipping. A LogShipper never
// talks to the primary process — it reads the primary's on-disk artifacts
// (the WAL segment chain and the checkpoint file, durability/segment.h and
// durability/checkpoint.h) and maintains three things of its own:
//
//   1. A *mirror* of the source WAL under a replica base path: every valid
//      frame is copied byte-verbatim into a mirror segment with the same
//      sequence number and base LSN, so the mirror is itself a well-formed
//      segment chain that WriteAheadLog::Open accepts. Generation stamps
//      survive the copy unchanged — a stale frame the source's recycled
//      segment would reject is rejected out of the mirror too.
//   2. A *replica checkpoint*: whenever the source checkpoint image is
//      newer than the replica's, the image (not its bytes — it is re-read,
//      validated and re-written shadow-paged) is copied across. When the
//      source has truncated records the follower never saw (the replication
//      cursor fell behind the oldest live segment), the follower re-bases
//      itself from that image instead of the log — a checkpoint catch-up.
//      The same path bootstraps a fresh follower against an old primary.
//   3. A warm follower SubscriptionEngine, replaying shipped records
//      through ApplyReplicated behind a replication cursor. The follower is
//      read-only (EngineRole::kFollower): Match serves, mutations refuse.
//
// Failover: Promote() runs one final ship pass against the dead primary's
// files (shared storage: after a primary crash the surviving bytes are the
// acknowledged prefix, which is exactly what the pass ships), then opens
// the mirror chain as a writable WriteAheadLog, flips the warm engine to
// EngineRole::kPrimary, and wires durability hooks and a checkpointer into
// a DurableEngine. No replay, no index rebuild — the engine that was
// following is the engine that serves.
//
// Every mirror-side file operation (segment create, frame-batch write,
// unlink, checkpoint write) consults the shared SimDisk, so a crash-point
// matrix over io_ops() lands faults inside shipping as well; a failed pass
// surfaces as Status::IOError with the mirror still consistent (fully
// shipped segments stay shipped, the failed one is retried next pass).
//
// Thread model: ShipOnce / Promote / stats are serialized by the caller
// (one replication driver thread). The follower engine's Match is safe to
// call concurrently from any thread, as on a primary.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "api/durability.h"
#include "api/status.h"
#include "api/types.h"
#include "durability/checkpoint.h"
#include "durability/segment.h"
#include "obs/metrics.h"
#include "sdi/subscription_engine.h"
#include "storage/sim_disk.h"

namespace accl::durability {

class LogShipper {
 public:
  struct Options {
    /// Source (primary) artifacts: WAL segment-chain base + checkpoint file.
    std::string source_wal_base;
    std::string source_checkpoint_path;
    /// Replica artifacts the shipper owns: mirror chain base + checkpoint.
    std::string replica_wal_base;
    std::string replica_checkpoint_path;
    uint32_t wal_page_bytes = 4096;
    uint32_t checkpoint_page_bytes = 4096;
    /// Optional, not owned: consulted/charged for every mirror-side file
    /// operation. Sharing the primary's disk puts shipping inside the same
    /// crash-point op space.
    SimDisk* disk = nullptr;
  };

  /// Builds a fresh follower: any previous replica chain is discarded and
  /// the engine starts empty with the cursor at 0 — the first ship pass
  /// bootstraps it from the source checkpoint and/or log. Returns nullptr
  /// with `*status` filled when the replica checkpoint file cannot be
  /// opened or the engine cannot be built.
  static std::unique_ptr<LogShipper> Create(AttributeSchema schema,
                                            EngineOptions engine_options,
                                            Options options,
                                            Status* status = nullptr);

  ~LogShipper();
  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// One incremental replication pass: copy the source checkpoint if newer
  /// (re-basing the follower when the log has a gap behind the cursor),
  /// mirror every new valid frame byte-verbatim, apply records past the
  /// cursor to the follower, and GC mirror segments the source truncated.
  /// kIOError (retryable; mirror consistent) on a failed file operation.
  Status ShipOnce();

  /// Final catch-up + failover: ship the source's surviving prefix, open
  /// the mirror as a writable WAL, flip the engine to kPrimary, and wire a
  /// checkpointer. On success `*out` owns everything (the shipper is left
  /// empty and must be discarded); on failure the follower is intact and
  /// Promote may be retried.
  Status Promote(const DurabilityOptions& durability_options,
                 DurableEngine* out);

  /// The follower (nullptr after a successful Promote). Read-only until
  /// promoted: Match serves, Subscribe/Unsubscribe refuse.
  SubscriptionEngine* engine() const { return engine_.get(); }

  ReplicationStats stats() const;

  /// Registers the shipper's metrics (ship-pass/record/byte counters, the
  /// per-pass duration histogram, cursor/lag gauges) into `reg` under the
  /// accl_repl_* names. Create() attaches them to the follower engine's
  /// registry automatically; the shipper detaches in its destructor and
  /// on a successful Promote (the promoted engine — and its registry —
  /// outlives the discarded shipper).
  void AttachMetrics(obs::MetricsRegistry* reg);

 private:
  LogShipper(AttributeSchema schema, EngineOptions engine_options,
             Options options);

  /// Mirror-side bookkeeping for one segment: the open mirror file plus
  /// how far (bytes, LSN) the verbatim copy has progressed.
  struct Mirror {
    std::unique_ptr<WalSegment> seg;
    uint64_t tail = kSegmentPreambleBytes;  ///< next copy offset
    Lsn last_lsn = kNoLsn;                  ///< highest LSN copied, or kNoLsn
  };

  /// Copies the source checkpoint image to the replica store when newer;
  /// re-bases the follower from it when `need_rebase`.
  Status SyncCheckpoint(bool need_rebase);
  /// Ships one source segment's new valid frames into its mirror. `*stop`
  /// asks the pass to stop walking further segments (torn creation, broken
  /// continuity) without it being an error.
  Status ShipSegment(const SegmentFileInfo& info, bool* stop);
  /// Unlinks mirror segments below `oldest_live_seq` that the replica
  /// checkpoint covers.
  Status GcMirror(uint64_t oldest_live_seq);

  AttributeSchema schema_;
  EngineOptions engine_options_;
  Options options_;

  std::unique_ptr<SubscriptionEngine> engine_;
  std::unique_ptr<CheckpointStore> replica_ckpts_;
  std::map<uint64_t, Mirror> mirror_;  ///< by seq; contiguous keys
  Lsn cursor_lsn_ = 0;        ///< highest LSN applied to the follower
  Lsn replica_ckpt_lsn_ = 0;  ///< LSN of the image in the replica store
  Lsn mirror_max_lsn_ = 0;    ///< highest LSN ever copied; continuity guard
  RecoveryStats apply_stats_;

  /// Replication telemetry on obs primitives: one driver thread writes,
  /// stats() and any attached registry read atomically from anywhere.
  obs::Counter ship_passes_;
  obs::Counter records_applied_;
  obs::Counter bytes_shipped_;
  obs::Counter segments_mirrored_;
  obs::Counter mirror_unlinked_;
  obs::Counter checkpoint_catchups_;
  obs::Counter ship_errors_;
  obs::Histogram ship_pass_us_;  ///< duration of each ShipOnce pass
  obs::Gauge cursor_lsn_gauge_;
  obs::Gauge source_durable_lsn_gauge_;
  obs::Gauge lag_records_gauge_;
  obs::Gauge promoted_gauge_;  ///< 0/1
  obs::MetricsRegistry* attached_reg_ = nullptr;

  /// Withdraws the accl_repl_* names from attached_reg_ (if any).
  void DetachMetrics();
};

}  // namespace accl::durability
