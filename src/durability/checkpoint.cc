#include "durability/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "durability/wal.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/digest.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace accl::durability {

namespace {

constexpr uint32_t kCheckpointMagic = 0x41434B50u;  // "ACKP"
constexpr uint32_t kCheckpointVersion = 1;

uint32_t ChecksumOf(const uint8_t* p, size_t n) {
  return FnvFold32(Fnv1aBytes(kFnvOffsetBasis, p, n));
}

}  // namespace

CheckpointStore::CheckpointStore(std::unique_ptr<PagedFile> file,
                                 SimDisk* disk)
    : file_(std::move(file)), disk_(disk) {
  ACCL_CHECK(file_ != nullptr);
}

std::unique_ptr<CheckpointStore> CheckpointStore::Open(
    std::unique_ptr<PagedFile> file, SimDisk* disk) {
  if (file == nullptr) return nullptr;
  auto store = std::unique_ptr<CheckpointStore>(
      new CheckpointStore(std::move(file), disk));
  uint64_t first = 0, pages = 0, bytes = 0;
  if (store->file_->GetDirectory(&first, &pages, &bytes)) {
    // Re-mark the live image's run so a later Write's fresh-run allocation
    // cannot land on top of it. A pointer that fails to mark (corrupt
    // geometry) degrades to "no checkpoint" — recovery then starts empty
    // and replays the whole WAL.
    store->have_dir_ = store->file_->MarkAllocated(first, pages);
  }
  return store;
}

bool CheckpointStore::Write(const EngineImage& image) {
  ByteWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU32(kCheckpointVersion);
  w.PutU64(image.lsn);
  w.PutU32(image.next_id);
  w.PutU64(image.routing_version);
  w.PutU32(image.nd);
  w.PutU32(static_cast<uint32_t>(image.fences.size()));
  for (const float f : image.fences) w.PutF32(f);
  const uint64_t n = image.ids.size();
  ACCL_CHECK(image.coords.size() ==
             n * 2 * static_cast<size_t>(image.nd));
  w.PutU64(n);
  w.PutBytes(image.ids.data(), n * sizeof(SubscriptionId));
  w.PutBytes(image.coords.data(), image.coords.size() * sizeof(float));
  const uint32_t crc = ChecksumOf(w.bytes().data(), w.size());
  w.PutU32(crc);

  if (disk_ != nullptr && disk_->NextOpFails()) return false;
  uint64_t old_first = 0, old_pages = 0, old_bytes = 0;
  const bool had =
      have_dir_ && file_->GetDirectory(&old_first, &old_pages, &old_bytes);
  const uint64_t pages = std::max<uint64_t>(
      1, (w.size() + file_->page_bytes() - 1) / file_->page_bytes());
  const uint64_t first = file_->AllocateRun(pages);
  // Shadow-paging order: blob into the fresh run and synced to disk BEFORE
  // the directory pointer flips to it; the flip itself is re-synced so the
  // header referencing the new image is durable before the old run is
  // reusable.
  if (!file_->WriteAt(first, 0, w.bytes().data(), w.size()) ||
      !file_->Sync()) {
    file_->FreeRun(first, pages);
    return false;
  }
  if (disk_ != nullptr) {
    disk_->Seek();
    disk_->Transfer(w.size());
  }
  if (disk_ != nullptr && disk_->NextOpFails()) {
    file_->FreeRun(first, pages);
    return false;
  }
  if (!file_->SetDirectory(first, pages, w.size())) {
    // The durable header still references the old image; the fresh run is
    // unreferenced and safe to reuse.
    file_->FreeRun(first, pages);
    return false;
  }
  if (!file_->Sync()) {
    // The flip happened in memory but may or may not be durable: the
    // on-disk header can reference EITHER run. Free neither — both hold
    // fully-written images, so whichever header survives a crash points at
    // intact data. The stale run's pages leak until the file is recreated;
    // a bounded price on a failure path, never a torn checkpoint.
    have_dir_ = true;
    return false;
  }
  if (disk_ != nullptr) disk_->Seek();  // header flip
  if (had) file_->FreeRun(old_first, old_pages);
  have_dir_ = true;
  ++writes_;
  return true;
}

bool CheckpointStore::Read(EngineImage* out) {
  if (!have_dir_) return false;
  uint64_t first = 0, pages = 0, bytes = 0;
  if (!file_->GetDirectory(&first, &pages, &bytes)) return false;
  if (bytes < 4) return false;
  if (disk_ != nullptr && disk_->NextOpFails()) return false;
  std::vector<uint8_t> blob(bytes);
  if (!file_->ReadAt(first, 0, blob.data(), bytes)) return false;
  if (disk_ != nullptr) disk_->SequentialRead(bytes);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, blob.data() + bytes - 4, 4);
  if (ChecksumOf(blob.data(), bytes - 4) != stored_crc) return false;
  ByteReader r(blob.data(), bytes - 4);
  uint32_t magic = 0, version = 0, n_fences = 0;
  if (!r.GetU32(&magic) || magic != kCheckpointMagic) return false;
  if (!r.GetU32(&version) || version != kCheckpointVersion) return false;
  if (!r.GetU64(&out->lsn)) return false;
  if (!r.GetU32(&out->next_id)) return false;
  if (!r.GetU64(&out->routing_version)) return false;
  if (!r.GetU32(&out->nd) || out->nd == 0) return false;
  if (!r.GetU32(&n_fences)) return false;
  out->fences.resize(n_fences);
  for (uint32_t i = 0; i < n_fences; ++i) {
    if (!r.GetF32(&out->fences[i])) return false;
  }
  uint64_t n = 0;
  if (!r.GetU64(&n)) return false;
  const size_t stride = 2 * static_cast<size_t>(out->nd);
  if (r.remaining() != n * (sizeof(SubscriptionId) + stride * 4)) {
    return false;
  }
  out->ids.resize(n);
  out->coords.resize(n * stride);
  if (n != 0) {
    if (!r.GetBytes(out->ids.data(), n * sizeof(SubscriptionId))) {
      return false;
    }
    if (!r.GetBytes(out->coords.data(), out->coords.size() * 4)) {
      return false;
    }
  }
  return r.exhausted();
}

// ------------------------------------------------------------ Checkpointer

Checkpointer::Checkpointer(SubscriptionEngine* engine, WriteAheadLog* wal,
                           CheckpointStore* store, Options options)
    : engine_(engine), wal_(wal), store_(store), options_(options) {
  ACCL_CHECK(engine_ != nullptr && wal_ != nullptr && store_ != nullptr);
  if (options_.background) {
    pool_ = std::make_unique<exec::ThreadPool>(1);
  }
}

Checkpointer::~Checkpointer() {
  // Drains any queued background checkpoint while engine/wal/store are
  // still alive.
  pool_.reset();
  // The engine's registry outlives this checkpointer (DurableEngine's
  // Teardown destroys the checkpointer first): withdraw our metrics so a
  // later DumpMetrics cannot read freed objects.
  if (attached_reg_ != nullptr) {
    attached_reg_->Detach("accl_ckpt_writes_total");
    attached_reg_->Detach("accl_ckpt_failures_total");
    attached_reg_->Detach("accl_ckpt_duration_us");
    attached_reg_->Detach("accl_ckpt_last_subscriptions");
    attached_reg_->Detach("accl_ckpt_last_lsn");
    attached_reg_->Detach("accl_ckpt_last_write_us");
  }
}

bool Checkpointer::CheckpointNow() {
  std::lock_guard<std::mutex> run(run_mu_);
  ACCL_TRACE_SPAN("ckpt_run");
  WallTimer t;
  EngineImage image;
  {
    ACCL_TRACE_SPAN("ckpt_capture");
    engine_->CaptureDurableImage(&image);
  }
  bool ok;
  {
    ACCL_TRACE_SPAN_ARG("ckpt_write",
                        static_cast<uint32_t>(image.ids.size()));
    ok = store_->Write(image);
  }
  if (ok) {
    // The image is durable; truncation is an optimization, but a refused or
    // failed one still counts as a checkpoint failure so callers notice the
    // log is not shrinking (the Status detail says why).
    const Status trunc = wal_->Truncate(image.lsn);
    ok = trunc.ok();
  }
  const int64_t elapsed_us =
      static_cast<int64_t>(std::llround(t.ElapsedMs() * 1000.0));
  duration_us_.Record(static_cast<uint64_t>(std::max<int64_t>(0, elapsed_us)));
  if (ok) {
    writes_.Add(1);
    last_subscriptions_.Set(static_cast<int64_t>(image.ids.size()));
    last_lsn_.Set(static_cast<int64_t>(image.lsn));
    last_write_us_.Set(elapsed_us);
  } else {
    failures_.Add(1);
  }
  return ok;
}

void Checkpointer::OnMutations(uint64_t n) {
  if (options_.every_mutations == 0) return;
  if (mutations_since_.fetch_add(n, std::memory_order_relaxed) + n <
      options_.every_mutations) {
    return;
  }
  if (inflight_.exchange(true, std::memory_order_acquire)) return;
  mutations_since_.store(0, std::memory_order_relaxed);
  const auto job = [this] {
    CheckpointNow();
    inflight_.store(false, std::memory_order_release);
  };
  if (pool_ != nullptr) {
    pool_->Submit(job);
  } else {
    job();
  }
}

CheckpointStats Checkpointer::stats() const {
  CheckpointStats s;
  s.checkpoints_written = writes_.Value();
  s.checkpoint_failures = failures_.Value();
  s.last_subscriptions = static_cast<uint64_t>(last_subscriptions_.Value());
  s.last_lsn = static_cast<Lsn>(last_lsn_.Value());
  s.last_write_ms = static_cast<double>(last_write_us_.Value()) / 1000.0;
  return s;
}

void DurableEngine::Teardown() {
  checkpointer.reset();  // joins its worker, detaches from engine->metrics()
  engine.reset();
  checkpoints.reset();
  wal.reset();
}

DurableEngine& DurableEngine::operator=(DurableEngine&& other) noexcept {
  if (this != &other) {
    Teardown();
    wal = std::move(other.wal);
    checkpoints = std::move(other.checkpoints);
    engine = std::move(other.engine);
    checkpointer = std::move(other.checkpointer);
    recovery = other.recovery;
  }
  return *this;
}

void Checkpointer::AttachMetrics(obs::MetricsRegistry* reg) {
  attached_reg_ = reg;
  reg->Attach("accl_ckpt_writes_total", &writes_,
              "checkpoints written successfully");
  reg->Attach("accl_ckpt_failures_total", &failures_,
              "checkpoint runs that failed (write or truncate)");
  reg->Attach("accl_ckpt_duration_us", &duration_us_,
              "checkpoint capture+write+truncate duration (us)");
  reg->Attach("accl_ckpt_last_subscriptions", &last_subscriptions_,
              "subscriptions in the last durable image");
  reg->Attach("accl_ckpt_last_lsn", &last_lsn_,
              "WAL LSN the last durable image covers");
  reg->Attach("accl_ckpt_last_write_us", &last_write_us_,
              "duration of the last successful checkpoint (us)");
}

}  // namespace accl::durability
