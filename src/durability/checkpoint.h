// Checkpointing for the durable SDI engine, plus the wiring helper that
// assembles a fully durable engine (WAL + checkpoints + recovery).
//
// A checkpoint is one self-contained, checksummed image of the engine —
// every live subscription (id + normalized box), the routing fences and
// version, the id allocator, and the WAL LSN the image covers — written
// through the PagedFile shadow-paging path ClusterFileStore established:
// the blob goes into a *fresh* page run, is synced, and only then does the
// one-block directory pointer flip to it (header write + sync); the old
// image's run is freed afterwards. A crash at any point leaves either the
// old or the new checkpoint intact, never a torn one — and the blob
// checksum rejects a torn run even if a stale header survives.
//
// The Checkpointer drives the lifecycle: capture a fuzzy image from the
// engine (epoch-pinned, per-shard locks only — matching never stalls),
// write it, then truncate the WAL up to the image's LSN. Scheduling is by
// acknowledged-mutation count; the triggering mutator only submits the
// job to a private background worker (exec::ThreadPool) and returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/durability.h"
#include "api/status.h"
#include "api/types.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "sdi/subscription_engine.h"
#include "storage/paged_store.h"
#include "storage/sim_disk.h"

namespace accl::durability {

class WriteAheadLog;

/// Checkpointable image of a SubscriptionEngine (see
/// SubscriptionEngine::CaptureDurableImage for capture semantics).
struct EngineImage {
  Lsn lsn = kNoLsn;  ///< WAL applied low-water the image covers
  SubscriptionId next_id = 0;
  uint64_t routing_version = 0;
  Dim nd = 0;
  std::vector<float> fences;            ///< kRange interior fences (or empty)
  std::vector<SubscriptionId> ids;      ///< live subscriptions
  std::vector<float> coords;            ///< ids.size() * 2 * nd floats
};

/// Shadow-paged single-image store over a PagedFile.
class CheckpointStore {
 public:
  /// Wraps a page file (fresh or reopened). A reopened file's live
  /// checkpoint run is re-marked allocated so later writes cannot clobber
  /// it; a corrupt directory pointer degrades to "no checkpoint".
  static std::unique_ptr<CheckpointStore> Open(std::unique_ptr<PagedFile> file,
                                               SimDisk* disk = nullptr);

  /// Writes `image` shadow-paged (fresh run -> sync -> directory flip ->
  /// sync -> free old run). On failure the previous checkpoint remains
  /// intact and readable.
  bool Write(const EngineImage& image);

  /// Loads the current checkpoint. False when none was ever written or the
  /// stored blob fails validation (checksum, geometry).
  bool Read(EngineImage* out);

  bool has_checkpoint() const { return have_dir_; }
  uint64_t writes() const { return writes_; }

 private:
  CheckpointStore(std::unique_ptr<PagedFile> file, SimDisk* disk);

  std::unique_ptr<PagedFile> file_;
  SimDisk* disk_;
  bool have_dir_ = false;
  uint64_t writes_ = 0;
};

/// Schedules and runs checkpoints against one engine + WAL + store.
class Checkpointer {
 public:
  struct Options {
    /// Schedule a checkpoint every this many acknowledged mutations
    /// (OnMutations). 0 = only explicit CheckpointNow calls.
    uint64_t every_mutations = 0;
    /// Run scheduled checkpoints on a private background worker; false
    /// runs them inline on the triggering mutator (deterministic tests).
    bool background = true;
  };

  /// None of the pointers are owned; all must outlive the checkpointer.
  Checkpointer(SubscriptionEngine* engine, WriteAheadLog* wal,
               CheckpointStore* store, Options options);
  /// Joins any in-flight background checkpoint.
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Capture + write + WAL-truncate, serialized against other checkpoint
  /// runs. Returns false when the image write or the truncation failed
  /// (the previous checkpoint stays valid either way).
  bool CheckpointNow();

  /// Mutation-count trigger, called by the engine after acknowledged
  /// mutations. Never blocks on the checkpoint itself in background mode.
  void OnMutations(uint64_t n);

  CheckpointStats stats() const;

  /// Registers this checkpointer's metrics (write/failure counters, the
  /// capture+write+truncate duration histogram, last-image gauges) into
  /// `reg` under the accl_ckpt_* names. The checkpointer owns the
  /// metrics and detaches them in its destructor — a DurableEngine
  /// destroys the checkpointer before the engine (and its registry), so
  /// the registry must never be left pointing at dead metrics.
  void AttachMetrics(obs::MetricsRegistry* reg);

 private:
  SubscriptionEngine* engine_;
  WriteAheadLog* wal_;
  CheckpointStore* store_;
  Options options_;

  std::mutex run_mu_;  ///< serializes CheckpointNow bodies
  std::atomic<uint64_t> mutations_since_{0};
  std::atomic<bool> inflight_{false};

  /// Checkpoint telemetry on obs primitives: stats() is a thin snapshot
  /// read; AttachMetrics exposes the same objects on a registry.
  obs::Counter writes_;
  obs::Counter failures_;
  obs::Histogram duration_us_;  ///< capture + write + truncate, per run
  obs::Gauge last_subscriptions_;
  obs::Gauge last_lsn_;
  obs::Gauge last_write_us_;
  obs::MetricsRegistry* attached_reg_ = nullptr;

  /// Private single worker so background checkpoints never contend with
  /// the engine's match pool; destroyed first (declared last) so the
  /// destructor's join happens while every other member is still alive.
  std::unique_ptr<exec::ThreadPool> pool_;
};

/// A fully wired durable engine. Teardown order matters: the checkpointer
/// must die first (it joins its background job and detaches its metrics
/// from the engine's registry), then the engine, then the stores, then the
/// WAL's flusher. Reverse member order gives exactly that at scope end,
/// but move-assignment (`de = DurableEngine()`) destroys the old members
/// in DECLARATION order — wal and engine before checkpointer — so the
/// destructor and move-assign spell the order out explicitly.
struct DurableEngine {
  std::unique_ptr<WriteAheadLog> wal;
  std::unique_ptr<CheckpointStore> checkpoints;
  std::unique_ptr<SubscriptionEngine> engine;
  std::unique_ptr<Checkpointer> checkpointer;
  RecoveryStats recovery;

  DurableEngine() = default;
  DurableEngine(DurableEngine&&) = default;
  DurableEngine& operator=(DurableEngine&& other) noexcept;
  ~DurableEngine() { Teardown(); }

 private:
  /// Resets checkpointer -> engine -> checkpoints -> wal.
  void Teardown();
};

/// Opens `path` as a page file, creating it only when it does not exist.
/// An existing file that fails Open's validation returns nullptr — it may
/// hold the only copy of durable state, and PagedFile::Create truncates, so
/// "corrupt" must surface as an error, never as a silently fresh file.
std::unique_ptr<PagedFile> OpenOrCreatePagedFile(const std::string& path,
                                                 uint32_t page_bytes);

/// Opens (or creates) the WAL segment chain rooted at `wal_path` (the
/// base of the `<wal_path>.<seq:08>` files) and the checkpoint file,
/// recovers the engine from them, and wires the mutation hooks and the
/// checkpointer. `disk` (optional, not owned) is charged for WAL and
/// checkpoint I/O and drives fault injection. Returns false with `*status`
/// filled on failure. Implemented in durability/recovery.cc.
bool OpenDurable(AttributeSchema schema, EngineOptions engine_options,
                 const DurabilityOptions& durability_options,
                 const std::string& wal_path,
                 const std::string& checkpoint_path, SimDisk* disk,
                 DurableEngine* out, Status* status = nullptr);

}  // namespace accl::durability
