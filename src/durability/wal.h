// Write-ahead log for the SDI subscription database.
//
// Every mutation (Subscribe / SubscribeBatch / Unsubscribe) is encoded as
// one length+checksum-framed record and appended to a PagedFile byte
// stream *before* it is applied to the engine; a caller's mutation is
// acknowledged only once its record is on disk. Recovery replays the
// surviving record sequence on top of the newest checkpoint
// (durability/checkpoint.h, sdi recovery factory), so acknowledged
// mutations survive a crash and an un-acknowledged tail is at worst
// absent — never torn: the per-record checksum makes a partial tail
// detectable, and replay stops at the first invalid frame.
//
// Group commit: mutators never touch the file. Append() encodes the
// record, assigns its LSN under the log mutex, enqueues it, and returns;
// the caller then blocks in WaitDurable() on its commit LSN. One flusher
// thread drains the queue — the whole queue per iteration in group-commit
// mode, one record at a time in per-record mode — writes the batch with a
// single StreamWrite and one Sync (fflush+fsync), and advances the
// durable LSN, waking every caller whose record the batch covered. N
// concurrent mutators therefore share one fsync instead of paying one
// each; WalStats::records_per_flush reports the achieved batching factor.
//
// The stream's tail is not persisted: recovery scans frames from the
// file's stream_start until the first invalid frame (zero length, bad
// checksum, short payload, or non-contiguous LSN). Truncation after a
// checkpoint advances the durable stream_start pointer past every record
// the checkpoint covers; LSNs are never reused. (Space before
// stream_start is currently dead — log rotation/compaction is a ROADMAP
// follow-up.)
//
// Fault injection: an optional SimDisk is consulted (NextOpFails) once
// per flush batch and once per truncation, and charged Seek/Transfer for
// the simulated cost. An injected failure breaks the log permanently
// (broken()): the failed record was never written, every waiter past the
// durable LSN gets `false`, and later appends fail fast — exactly the
// "crash at this I/O op" the recovery matrix test drives.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "api/durability.h"
#include "api/span.h"
#include "api/types.h"
#include "storage/paged_store.h"
#include "storage/sim_disk.h"

namespace accl::durability {

/// Record kinds, one per engine mutation.
enum class WalRecordType : uint8_t {
  kSubscribe = 1,
  kSubscribeBatch = 2,
  kUnsubscribe = 3,
};

/// Decoded record handed to Replay callbacks.
struct WalRecord {
  WalRecordType type = WalRecordType::kSubscribe;
  Lsn lsn = kNoLsn;
  ObjectId first_id = kInvalidObject;  ///< id, or first id of a batch
  uint32_t count = 0;                  ///< subscriptions in the record
  Dim nd = 0;                          ///< 0 for kUnsubscribe
  std::vector<float> coords;           ///< count * 2 * nd floats
};

class WriteAheadLog {
 public:
  struct Options {
    bool group_commit = true;
    SimDisk* disk = nullptr;  ///< optional; not owned, not thread-safe
  };

  /// Wraps a fresh (empty) page file. Returns nullptr when `file` is null.
  static std::unique_ptr<WriteAheadLog> Create(
      std::unique_ptr<PagedFile> file, Options options);

  /// Wraps an existing log: scans from stream_start for the valid record
  /// prefix, positions the append tail after it, and continues LSNs past
  /// the highest one found. Works on a fresh file too (empty prefix).
  static std::unique_ptr<WriteAheadLog> Open(std::unique_ptr<PagedFile> file,
                                             Options options);

  /// Stops the flusher after draining already-enqueued records (clean
  /// shutdown; a simulated crash breaks the log first, which drops them).
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // ---- Appending (any thread) ----

  /// Enqueue one mutation record; returns its LSN (kNoLsn when the log is
  /// broken). `coords` is the subscription's 2*nd normalized limits.
  Lsn AppendSubscribe(ObjectId id, Dim nd, const float* coords);
  /// One record covering `count` subscriptions with contiguous ids
  /// starting at `first_id`; `coords` holds count*2*nd floats.
  Lsn AppendSubscribeBatch(ObjectId first_id, uint32_t count, Dim nd,
                           const float* coords);
  Lsn AppendUnsubscribe(ObjectId id);

  /// Blocks until every record up to `lsn` is on disk. False when the log
  /// broke before reaching it — the caller's record may not be durable and
  /// the mutation must not be acknowledged.
  bool WaitDurable(Lsn lsn);

  // ---- Apply tracking (checkpoint low-water) ----

  /// Marks `lsn`'s mutation as applied to the engine. Called by mutators
  /// after WaitDurable + apply; the low-water mark below is what makes a
  /// fuzzy checkpoint's LSN safe to truncate to.
  void MarkApplied(Lsn lsn);

  /// Highest L such that every record with lsn <= L has been applied. A
  /// checkpoint scan started after reading this value is guaranteed to
  /// contain the effect of every record it covers.
  Lsn applied_low_water() const;

  Lsn durable_lsn() const;
  /// Highest LSN ever allocated (or scanned at Open).
  Lsn max_lsn() const;
  /// Continues LSN allocation (and the applied low-water) past `lsn`;
  /// recovery calls this with the checkpoint LSN so records logged after a
  /// fully-truncated log reopens always sort after the checkpoint.
  void ReserveLsnsThrough(Lsn lsn);

  /// True once an I/O failure broke the log (permanent until reopen).
  bool broken() const;

  // ---- Recovery & truncation ----

  /// Scans the valid record prefix in LSN order, invoking `fn` for every
  /// record with lsn > `after`. Stops cleanly at the first invalid frame
  /// (torn tail). Returns false only on a read I/O failure — the scan may
  /// then have missed durable records and recovery must not proceed as if
  /// the log simply ended.
  bool Replay(Lsn after, const std::function<void(const WalRecord&)>& fn);

  /// Durably (header flip + fsync) advances the stream start past every
  /// record with lsn <= `up_to` (no-op when none qualify). Requires
  /// up_to <= applied_low_water() — truncating past an unapplied record
  /// would lose it — and refuses on a broken log (its in-memory geometry
  /// may no longer match the file).
  bool Truncate(Lsn up_to);

  WalStats stats() const;

 private:
  WriteAheadLog(std::unique_ptr<PagedFile> file, Options options);

  /// Frame layout: [u32 len][u32 crc][u64 lsn][payload]. The LSN lives in
  /// the 16-byte header — not the payload — so Append can encode and
  /// checksum the payload entirely outside the log mutex and only fold the
  /// just-assigned LSN into the checksum (O(1)) inside it; a large batch
  /// record therefore never serializes concurrent mutators.
  static constexpr uint64_t kFrameHeaderBytes = 16;
  struct Pending {
    Lsn lsn;
    uint8_t header[kFrameHeaderBytes];
    std::vector<uint8_t> payload;
  };

  Lsn Append(WalRecordType type, ObjectId first_id, uint32_t count, Dim nd,
             const float* coords);
  void FlusherLoop();
  /// One framed batch -> StreamWrite + Sync, with the SimDisk consult.
  bool WriteAndSync(uint64_t off, const std::vector<uint8_t>& bytes);
  /// Decodes the frame at `off`; false when invalid/torn — scanning stops
  /// there. A false with `*io_error` set means a read failed on bytes the
  /// file claims to back: the scan result is unreliable, not a clean tail.
  /// `*next` is the offset just past a decoded frame.
  bool DecodeFrameAt(uint64_t off, uint64_t limit, WalRecord* out,
                     uint64_t* next, bool* io_error);
  /// The one valid-prefix walk Open/Replay/Truncate all share: decodes
  /// frames from stream_start, stops at the first invalid frame or LSN
  /// discontinuity (stale bytes), or when `visit` returns false (that
  /// frame is then NOT consumed). `*end_off` is the offset just past the
  /// last consumed frame. Returns false on a read I/O failure. Caller
  /// holds io_mu_ (or no flusher is running yet).
  bool ScanPrefix(const std::function<bool(const WalRecord&)>& visit,
                  uint64_t* end_off, bool* io_error);

  std::unique_ptr<PagedFile> file_;
  Options options_;

  /// Serializes every PagedFile access (FILE* is not thread-safe): the
  /// flusher's writes, Replay's scans, Truncate's header flip.
  std::mutex io_mu_;

  mutable std::mutex mu_;  ///< queue, LSN allocation, durable/applied state
  std::condition_variable flush_cv_;    ///< flusher: work available / stop
  std::condition_variable durable_cv_;  ///< waiters: durable advanced / broke
  std::queue<Pending> pending_;
  uint64_t pending_bytes_ = 0;
  Lsn next_lsn_ = 1;
  Lsn durable_lsn_ = 0;
  uint64_t tail_ = 0;  ///< append offset (absolute payload bytes)
  bool broken_ = false;
  bool stop_ = false;

  /// Applied low-water: every lsn <= applied_upto_ is applied;
  /// out-of-order completions park in the heap until contiguous.
  Lsn applied_upto_ = 0;
  std::priority_queue<Lsn, std::vector<Lsn>, std::greater<Lsn>> applied_ooo_;

  uint64_t records_appended_ = 0;
  uint64_t flush_batches_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t truncations_ = 0;

  std::thread flusher_;
};

}  // namespace accl::durability
