// Write-ahead log for the SDI subscription database, rotated across
// bounded segment files (durability/segment.h).
//
// Every mutation (Subscribe / SubscribeBatch / Unsubscribe) is encoded as
// one length+checksum-framed record and appended to the tail segment
// *before* it is applied to the engine; a caller's mutation is
// acknowledged only once its record is on disk. Recovery replays the
// surviving record sequence on top of the newest checkpoint
// (durability/checkpoint.h, sdi recovery factory), so acknowledged
// mutations survive a crash and an un-acknowledged tail is at worst
// absent — never torn: the per-record checksum makes a partial tail
// detectable, and replay stops at the first invalid frame.
//
// Frame format: [u32 len][u32 crc][u64 lsn][u64 gen][payload]
// (kFrameHeaderBytes = 24). `gen` is the generation stamp — the sequence
// number of the segment the frame was written into, also folded into
// `crc`. Decoding rejects a frame whose stamp differs from its segment's
// preamble, so bytes surviving from a previous life of a recycled segment
// file can never replay, even when their length, checksum and LSN
// continuity would all pass: the single-file log's torn-write ABA hazard
// is structurally closed. The LSN and stamp live in the header — not the
// payload — so Append hashes the payload entirely outside the log mutex
// and the flusher finishes the checksum in O(1) when it places the frame.
//
// Segmentation: the log is a chain of `<base>.<seq:08>` files. The
// flusher rotates to a fresh segment once the tail exceeds
// Options::segment_bytes (a batch is never split across segments) and
// records per-segment (first_lsn, last_lsn, tail offset) watermarks as it
// writes; Truncate(up_to) therefore drops every fully-covered sealed
// segment with an O(1) unlink (or a rename into the spare pool that
// rotation recycles) instead of scanning frames, and the log's on-disk
// footprint stays bounded. ValidPrefixWalk spans segment boundaries: LSNs
// must stay contiguous across a rotation, and an empty just-rotated tail
// is a valid (empty) continuation.
//
// Group commit: mutators never touch the files. Append() encodes the
// record, assigns its LSN under the log mutex, enqueues it, and returns;
// the caller then blocks in WaitDurable() on its commit LSN. One flusher
// thread drains the queue — the whole queue per iteration in group-commit
// mode, one record at a time in per-record mode — writes the batch with a
// single StreamWrite and one Sync (fflush+fsync), and advances the
// durable LSN, waking every caller whose record the batch covered.
//
// Fault injection: an optional SimDisk is consulted (NextOpFails) once
// per flush batch, once per segment-file lifecycle operation (create,
// preamble write, rename, unlink), and charged Seek/Transfer for the
// simulated cost. An injected failure breaks the log permanently
// (broken()): the failed record was never written, every waiter past the
// durable LSN gets `false`, and later appends fail fast — exactly the
// "crash at this I/O op" the recovery and failover matrix tests drive.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "api/durability.h"
#include "api/span.h"
#include "api/status.h"
#include "api/types.h"
#include "durability/segment.h"
#include "obs/metrics.h"
#include "storage/sim_disk.h"

namespace accl::durability {

class WriteAheadLog {
 public:
  struct Options {
    bool group_commit = true;
    SimDisk* disk = nullptr;  ///< optional; not owned, not thread-safe
    /// Page size of each segment's PagedFile.
    uint32_t page_bytes = 4096;
    /// Rotate once the tail segment's frame bytes exceed this (soft: a
    /// flush batch is never split across segments).
    uint64_t segment_bytes = 1 << 20;
    /// Truncated segments kept as recycle spares instead of unlinked.
    uint32_t spare_segments = 1;
  };

  /// Opens the segment chain at `base_path` (creating segment 1 when none
  /// exists): walks the valid frame prefix across segments, records the
  /// per-segment watermarks, positions the append tail after the last
  /// valid frame, and continues LSNs past the highest one found. Files
  /// with torn preambles or broken chain order are garbage-collected.
  /// Returns nullptr when the chain cannot be opened or a read failed on
  /// backed bytes (the tail position would be unknowable).
  static std::unique_ptr<WriteAheadLog> Open(const std::string& base_path,
                                             Options options);
  /// Alias of Open — a fresh directory scans to an empty chain.
  static std::unique_ptr<WriteAheadLog> Create(const std::string& base_path,
                                               Options options);

  /// Stops the flusher after draining already-enqueued records (clean
  /// shutdown; a simulated crash breaks the log first, which drops them).
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // ---- Appending (any thread) ----

  /// Enqueue one mutation record; returns its LSN (kNoLsn when the log is
  /// broken). `coords` is the subscription's 2*nd normalized limits.
  Lsn AppendSubscribe(ObjectId id, Dim nd, const float* coords);
  /// One record covering `count` subscriptions with contiguous ids
  /// starting at `first_id`; `coords` holds count*2*nd floats.
  Lsn AppendSubscribeBatch(ObjectId first_id, uint32_t count, Dim nd,
                           const float* coords);
  Lsn AppendUnsubscribe(ObjectId id);

  /// Blocks until every record up to `lsn` is on disk. False when the log
  /// broke before reaching it — the caller's record may not be durable and
  /// the mutation must not be acknowledged.
  bool WaitDurable(Lsn lsn);

  // ---- Apply tracking (checkpoint low-water) ----

  /// Marks `lsn`'s mutation as applied to the engine. Called by mutators
  /// after WaitDurable + apply; the low-water mark below is what makes a
  /// fuzzy checkpoint's LSN safe to truncate to.
  void MarkApplied(Lsn lsn);

  /// Highest L such that every record with lsn <= L has been applied. A
  /// checkpoint scan started after reading this value is guaranteed to
  /// contain the effect of every record it covers.
  Lsn applied_low_water() const;

  Lsn durable_lsn() const;
  /// Highest LSN ever allocated (or scanned at Open).
  Lsn max_lsn() const;
  /// Continues LSN allocation (and the applied low-water) past `lsn`;
  /// recovery calls this with the checkpoint LSN so records logged after a
  /// fully-truncated log reopens always sort after the checkpoint.
  void ReserveLsnsThrough(Lsn lsn);

  /// True once an I/O failure broke the log (permanent until reopen).
  bool broken() const;

  // ---- Recovery & truncation ----

  /// Scans the valid record prefix in LSN order, invoking `fn` for every
  /// record with lsn > `after`. Whole segments below the cursor are
  /// skipped by watermark without decoding a frame. Stops cleanly at the
  /// first invalid frame (torn tail). Returns false only on a read I/O
  /// failure — the scan may then have missed durable records and recovery
  /// must not proceed as if the log simply ended.
  bool Replay(Lsn after, const std::function<void(const WalRecord&)>& fn);

  /// Drops every sealed segment whose records all have lsn <= `up_to` —
  /// an O(1) unlink (or rename into the spare pool) per segment, no frame
  /// scan; the tail segment always stays. Requires
  /// up_to <= applied_low_water() (truncating past an unapplied record
  /// would lose it: kFailedPrecondition) and refuses on a broken log; a
  /// failed lifecycle op surfaces as kIOError with the chain still
  /// consistent (already-dropped segments stay dropped — replay of a
  /// partially truncated chain is idempotent).
  Status Truncate(Lsn up_to);

  WalStats stats() const;

  /// Registers this log's metrics (counters, segment gauges, the
  /// enqueue->durable commit-latency histogram and the records-per-sync
  /// histogram) into `reg` under the accl_wal_* names. The log owns the
  /// metrics; it must outlive the registry or be detached.
  void AttachMetrics(obs::MetricsRegistry* reg);

 private:
  WriteAheadLog(std::string base_path, Options options);

  struct Pending {
    Lsn lsn;
    uint64_t enqueue_ns;    ///< steady-clock stamp for the commit-latency
                            ///< histogram (enqueue -> durable)
    uint64_t payload_hash;  ///< Fnv1aBytes over the payload; the flusher
                            ///< folds LSN + generation in O(1) at placement
    std::vector<uint8_t> payload;
  };

  /// One live chain entry, owned by io_mu_: the segment plus the
  /// (lsn, offset) watermarks the flusher records as it writes. They are
  /// what makes Truncate O(1) and Replay's segment skip exact.
  struct LiveSeg {
    std::unique_ptr<WalSegment> seg;
    Lsn first_lsn = kNoLsn;
    Lsn last_lsn = kNoLsn;
    uint64_t tail = kSegmentPreambleBytes;  ///< next frame offset
  };

  Lsn Append(WalRecordType type, ObjectId first_id, uint32_t count, Dim nd,
             const float* coords);
  void FlusherLoop();
  /// Frames + writes one batch into the tail segment (rotating first when
  /// the tail is full) and syncs it. Runs on the flusher; takes io_mu_.
  bool WriteBatch(const std::vector<Pending>& items);
  /// Appends a fresh tail segment — recycled from the spare pool when one
  /// is available, created otherwise. Caller holds io_mu_.
  bool RotateLocked(Lsn base_lsn);
  /// The one valid-prefix walk Open/Replay share — spans segment
  /// boundaries: decodes frames from segment `start_index` on, stops at
  /// the first invalid frame (bad length/checksum, stale generation) or
  /// LSN discontinuity. `visit` receives each record and its segment
  /// index. `*end_index`/`*end_off` locate the position just past the
  /// last valid frame. Returns false on a read I/O failure. Caller holds
  /// io_mu_ (or no flusher is running yet).
  bool ValidPrefixWalk(
      size_t start_index,
      const std::function<void(const WalRecord&, size_t)>& visit,
      size_t* end_index, uint64_t* end_off, bool* io_error);
  void UpdateSegmentGauges();  ///< caller holds io_mu_

  std::string base_path_;
  Options options_;

  /// Serializes every segment-file access and all chain mutations: the
  /// flusher's writes and rotations, Replay's scans, Truncate's GC.
  std::mutex io_mu_;
  std::deque<LiveSeg> segments_;     ///< guarded by io_mu_; back = tail
  std::vector<std::string> spares_;  ///< recycle pool paths; io_mu_
  uint64_t next_seq_ = 1;            ///< guarded by io_mu_

  mutable std::mutex mu_;  ///< queue, LSN allocation, durable/applied state
  std::condition_variable flush_cv_;    ///< flusher: work available / stop
  std::condition_variable durable_cv_;  ///< waiters: durable advanced / broke
  std::queue<Pending> pending_;
  uint64_t pending_bytes_ = 0;
  Lsn next_lsn_ = 1;
  Lsn durable_lsn_ = 0;
  bool broken_ = false;
  bool stop_ = false;

  /// Applied low-water: every lsn <= applied_upto_ is applied;
  /// out-of-order completions park in the heap until contiguous.
  Lsn applied_upto_ = 0;
  std::priority_queue<Lsn, std::vector<Lsn>, std::greater<Lsn>> applied_ooo_;

  /// Lifetime counters, latency histograms and segment gauges: obs
  /// primitives, so stats() is a thin snapshot read and AttachMetrics can
  /// expose the same objects on a registry. None need io_mu_ or mu_.
  obs::Counter records_appended_;
  obs::Counter flush_batches_;
  obs::Counter bytes_appended_;
  obs::Counter truncations_;
  /// Latency from Append's enqueue to the flusher advancing the durable
  /// LSN past the record (microseconds) — the group-commit ack path.
  obs::Histogram commit_latency_us_;
  /// Records covered per fsync (group-commit batch size).
  obs::Histogram records_per_sync_;
  obs::Gauge live_segments_;
  obs::Gauge spare_count_;
  obs::Gauge tail_seq_;
  obs::Gauge durable_lsn_gauge_;
  obs::Counter segments_rotated_;
  obs::Counter segments_recycled_;
  obs::Counter segments_unlinked_;
  obs::Counter segments_spared_;

  std::thread flusher_;
};

}  // namespace accl::durability
