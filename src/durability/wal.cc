#include "durability/wal.h"

#include <cstring>
#include <utility>

#include "util/check.h"
#include "util/digest.h"
#include "util/serialize.h"

namespace accl::durability {

namespace {

/// Frames larger than this are treated as corruption, not allocated.
constexpr uint32_t kMaxFrameBytes = 1u << 26;

/// Record checksum: FNV-1a over the payload, then the LSN folded on top
/// (so Append can hash the payload outside the log mutex and finish with
/// the just-assigned LSN in O(1)), folded to the 32 bits the frame stores.
uint32_t FrameChecksum(const uint8_t* payload, size_t n, Lsn lsn) {
  return FnvFold32(Fnv1a(Fnv1aBytes(kFnvOffsetBasis, payload, n), lsn));
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::unique_ptr<PagedFile> file, Options options)
    : file_(std::move(file)), options_(options) {}

std::unique_ptr<WriteAheadLog> WriteAheadLog::Create(
    std::unique_ptr<PagedFile> file, Options options) {
  return Open(std::move(file), options);  // a fresh file scans to an empty
                                          // prefix; one path serves both
}

std::unique_ptr<WriteAheadLog> WriteAheadLog::Open(
    std::unique_ptr<PagedFile> file, Options options) {
  if (file == nullptr) return nullptr;
  auto log = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(file), options));
  // Find the durable tail: the end of the valid frame prefix. No flusher
  // is running yet, so the scan needs no locks.
  Lsn max_lsn = kNoLsn;
  uint64_t off = 0;
  bool io_error = false;
  log->ScanPrefix(
      [&](const WalRecord& rec) {
        max_lsn = rec.lsn;
        return true;
      },
      &off, &io_error);
  // A read failure on backed bytes means the tail position is unknowable;
  // appending there could overwrite durable records. Refuse to open.
  if (io_error) return nullptr;
  log->tail_ = off;
  log->durable_lsn_ = max_lsn;
  log->applied_upto_ = max_lsn;  // recovery replays (applies) the prefix
                                 // before the log is used again
  log->next_lsn_ = max_lsn + 1;
  log->flusher_ = std::thread([l = log.get()] { l->FlusherLoop(); });
  return log;
}

WriteAheadLog::~WriteAheadLog() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

Lsn WriteAheadLog::Append(WalRecordType type, ObjectId first_id,
                          uint32_t count, Dim nd, const float* coords) {
  // Encode and hash the payload OUTSIDE the log mutex: a large batch
  // record must not serialize concurrent mutators. Only LSN assignment,
  // the O(1) checksum finish, and the queue push run under the lock.
  ByteWriter payload;
  payload.PutU8(static_cast<uint8_t>(type));
  payload.PutU32(first_id);
  if (type != WalRecordType::kUnsubscribe) {
    payload.PutU32(count);
    payload.PutU32(nd);
    payload.PutBytes(coords, static_cast<size_t>(count) * 2 * nd * 4);
  }
  const uint64_t base_hash =
      Fnv1aBytes(kFnvOffsetBasis, payload.bytes().data(), payload.size());
  Pending p;
  p.payload.assign(payload.bytes().begin(), payload.bytes().end());
  const uint32_t len = static_cast<uint32_t>(p.payload.size());

  std::unique_lock<std::mutex> lk(mu_);
  if (broken_) return kNoLsn;
  const Lsn lsn = next_lsn_++;
  p.lsn = lsn;
  const uint32_t crc = FnvFold32(Fnv1a(base_hash, lsn));
  std::memcpy(p.header, &len, 4);
  std::memcpy(p.header + 4, &crc, 4);
  std::memcpy(p.header + 8, &lsn, 8);
  pending_bytes_ += kFrameHeaderBytes + p.payload.size();
  pending_.push(std::move(p));
  ++records_appended_;
  lk.unlock();
  flush_cv_.notify_one();
  return lsn;
}

Lsn WriteAheadLog::AppendSubscribe(ObjectId id, Dim nd, const float* coords) {
  return Append(WalRecordType::kSubscribe, id, 1, nd, coords);
}

Lsn WriteAheadLog::AppendSubscribeBatch(ObjectId first_id, uint32_t count,
                                        Dim nd, const float* coords) {
  ACCL_CHECK(count > 0);
  return Append(WalRecordType::kSubscribeBatch, first_id, count, nd, coords);
}

Lsn WriteAheadLog::AppendUnsubscribe(ObjectId id) {
  return Append(WalRecordType::kUnsubscribe, id, 1, 0, nullptr);
}

void WriteAheadLog::FlusherLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    flush_cv_.wait(
        lk, [&] { return stop_ || (!pending_.empty() && !broken_); });
    if (broken_ || pending_.empty()) {
      if (stop_) return;
      continue;
    }
    // Group commit drains the whole queue into one append+sync; per-record
    // mode takes exactly one frame, so every record pays its own sync.
    std::vector<uint8_t> batch;
    batch.reserve(options_.group_commit
                      ? pending_bytes_
                      : kFrameHeaderBytes + pending_.front().payload.size());
    Lsn last = kNoLsn;
    size_t take = options_.group_commit ? pending_.size() : 1;
    while (take-- > 0) {
      Pending& p = pending_.front();
      batch.insert(batch.end(), p.header, p.header + kFrameHeaderBytes);
      batch.insert(batch.end(), p.payload.begin(), p.payload.end());
      last = p.lsn;
      pending_bytes_ -= kFrameHeaderBytes + p.payload.size();
      pending_.pop();
    }
    const uint64_t off = tail_;
    tail_ += batch.size();
    lk.unlock();
    const bool ok = WriteAndSync(off, batch);
    lk.lock();
    if (ok) {
      durable_lsn_ = last;
      ++flush_batches_;
      bytes_appended_ += batch.size();
    } else {
      // The failed batch was never acknowledged; everything still queued
      // can never become durable either. Break the log and wake every
      // waiter so no caller acknowledges a lost mutation.
      broken_ = true;
      while (!pending_.empty()) pending_.pop();
      pending_bytes_ = 0;
    }
    durable_cv_.notify_all();
  }
}

bool WriteAheadLog::WriteAndSync(uint64_t off,
                                 const std::vector<uint8_t>& bytes) {
  std::lock_guard<std::mutex> lk(io_mu_);
  if (options_.disk != nullptr && options_.disk->NextOpFails()) return false;
  if (!file_->StreamWrite(off, bytes.data(), bytes.size())) return false;
  if (!file_->Sync()) return false;
  if (options_.disk != nullptr) {
    options_.disk->Seek();  // the sync's head positioning
    options_.disk->Transfer(bytes.size());
  }
  return true;
}

bool WriteAheadLog::WaitDurable(Lsn lsn) {
  if (lsn == kNoLsn) return false;  // a failed Append never becomes durable
  std::unique_lock<std::mutex> lk(mu_);
  durable_cv_.wait(lk, [&] { return durable_lsn_ >= lsn || broken_; });
  return durable_lsn_ >= lsn;
}

void WriteAheadLog::MarkApplied(Lsn lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  if (lsn <= applied_upto_) return;
  if (lsn == applied_upto_ + 1) {
    applied_upto_ = lsn;
    while (!applied_ooo_.empty() && applied_ooo_.top() == applied_upto_ + 1) {
      applied_upto_ = applied_ooo_.top();
      applied_ooo_.pop();
    }
  } else {
    applied_ooo_.push(lsn);
  }
}

Lsn WriteAheadLog::applied_low_water() const {
  std::lock_guard<std::mutex> lk(mu_);
  return applied_upto_;
}

Lsn WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return durable_lsn_;
}

Lsn WriteAheadLog::max_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_ - 1;
}

void WriteAheadLog::ReserveLsnsThrough(Lsn lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  if (lsn >= next_lsn_) next_lsn_ = lsn + 1;
  if (lsn > durable_lsn_) durable_lsn_ = lsn;
  if (lsn > applied_upto_) {
    applied_upto_ = lsn;
    while (!applied_ooo_.empty() && applied_ooo_.top() <= applied_upto_ + 1) {
      if (applied_ooo_.top() == applied_upto_ + 1) {
        applied_upto_ = applied_ooo_.top();
      }
      applied_ooo_.pop();
    }
  }
}

bool WriteAheadLog::broken() const {
  std::lock_guard<std::mutex> lk(mu_);
  return broken_;
}

bool WriteAheadLog::DecodeFrameAt(uint64_t off, uint64_t limit,
                                  WalRecord* out, uint64_t* next,
                                  bool* io_error) {
  *io_error = false;
  if (off + kFrameHeaderBytes > limit) return false;
  uint32_t len = 0, crc = 0;
  uint8_t hdr[kFrameHeaderBytes];
  // Every read below stays within `limit`, bytes the file claims to back:
  // a failure is a real I/O error, not a torn tail.
  if (!file_->StreamRead(off, hdr, kFrameHeaderBytes)) {
    *io_error = true;
    return false;
  }
  std::memcpy(&len, hdr, 4);
  std::memcpy(&crc, hdr + 4, 4);
  std::memcpy(&out->lsn, hdr + 8, 8);
  if (len == 0 || len > kMaxFrameBytes || out->lsn == kNoLsn) return false;
  if (off + kFrameHeaderBytes + len > limit) return false;  // torn tail
  std::vector<uint8_t> payload(len);
  if (!file_->StreamRead(off + kFrameHeaderBytes, payload.data(), len)) {
    *io_error = true;
    return false;
  }
  if (FrameChecksum(payload.data(), len, out->lsn) != crc) return false;
  ByteReader r(payload);
  uint8_t type = 0;
  if (!r.GetU8(&type)) return false;
  if (type < static_cast<uint8_t>(WalRecordType::kSubscribe) ||
      type > static_cast<uint8_t>(WalRecordType::kUnsubscribe)) {
    return false;
  }
  out->type = static_cast<WalRecordType>(type);
  if (!r.GetU32(&out->first_id)) return false;
  if (out->type == WalRecordType::kUnsubscribe) {
    out->count = 1;
    out->nd = 0;
    out->coords.clear();
  } else {
    if (!r.GetU32(&out->count) || !r.GetU32(&out->nd)) return false;
    if (out->count == 0 || out->nd == 0) return false;
    const size_t floats = static_cast<size_t>(out->count) * 2 * out->nd;
    if (r.remaining() != floats * 4) return false;
    out->coords.resize(floats);
    if (!r.GetBytes(out->coords.data(), floats * 4)) return false;
  }
  if (!r.exhausted()) return false;
  *next = off + kFrameHeaderBytes + len;
  return true;
}

bool WriteAheadLog::ScanPrefix(
    const std::function<bool(const WalRecord&)>& visit, uint64_t* end_off,
    bool* io_error) {
  uint64_t off = file_->stream_start();
  const uint64_t limit = file_->payload_bytes();
  WalRecord rec;
  uint64_t next = off;
  Lsn prev = kNoLsn;
  *io_error = false;
  while (DecodeFrameAt(off, limit, &rec, &next, io_error)) {
    if (prev != kNoLsn && rec.lsn != prev + 1) break;  // stale frame
    if (!visit(rec)) break;  // caller stop: frame not consumed
    prev = rec.lsn;
    off = next;
  }
  *end_off = off;
  return !*io_error;
}

bool WriteAheadLog::Replay(Lsn after,
                           const std::function<void(const WalRecord&)>& fn) {
  std::lock_guard<std::mutex> io(io_mu_);
  uint64_t end = 0;
  bool io_error = false;
  ScanPrefix(
      [&](const WalRecord& rec) {
        if (rec.lsn > after) fn(rec);
        return true;
      },
      &end, &io_error);
  // A torn tail is a clean end of log; a failed read of backed bytes is
  // not — the caller must not treat the scanned prefix as complete.
  return !io_error;
}

bool WriteAheadLog::Truncate(Lsn up_to) {
  if (up_to == kNoLsn) return true;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (up_to > applied_upto_) return false;  // would lose unapplied records
    // After an I/O failure the in-memory tail/geometry may not match the
    // file; moving the durable start pointer then risks cutting into
    // records that are still the only copy. A broken log is read-only.
    if (broken_) return false;
  }
  std::unique_lock<std::mutex> io(io_mu_);
  if (options_.disk != nullptr && options_.disk->NextOpFails()) return false;
  uint64_t off = 0;
  bool io_error = false;
  ScanPrefix([&](const WalRecord& rec) { return rec.lsn <= up_to; }, &off,
             &io_error);
  if (io_error) return false;
  if (off == file_->stream_start()) return true;  // nothing to drop
  // Header flip + fsync: the truncation point must actually be durable —
  // replay idempotence would mask a lost flip, but the contract (and the
  // reclaimed log space) shouldn't depend on that.
  if (!file_->SetStreamStart(off)) return false;
  if (!file_->Sync()) return false;
  if (options_.disk != nullptr) options_.disk->Seek();  // header flip
  io.unlock();
  std::lock_guard<std::mutex> lk(mu_);
  ++truncations_;
  return true;
}

WalStats WriteAheadLog::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  WalStats st;
  st.records_appended = records_appended_;
  st.flush_batches = flush_batches_;
  st.bytes_appended = bytes_appended_;
  st.truncations = truncations_;
  st.durable_lsn = durable_lsn_;
  st.applied_low_water = applied_upto_;
  return st;
}

}  // namespace accl::durability
