#include "durability/wal.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"
#include "util/digest.h"
#include "util/serialize.h"

namespace accl::durability {

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

WriteAheadLog::WriteAheadLog(std::string base_path, Options options)
    : base_path_(std::move(base_path)), options_(options) {}

std::unique_ptr<WriteAheadLog> WriteAheadLog::Create(
    const std::string& base_path, Options options) {
  return Open(base_path, options);  // a fresh directory scans to an empty
                                    // chain; one path serves both
}

std::unique_ptr<WriteAheadLog> WriteAheadLog::Open(
    const std::string& base_path, Options options) {
  auto log = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(base_path, options));

  // Adopt spares left by a previous life; rotation reuses them.
  for (const SegmentFileInfo& f : ListSpareFiles(base_path)) {
    log->spares_.push_back(f.path);
  }

  // The live chain is the maximal contiguous-seq suffix of files whose
  // preambles validate and agree with their names. Everything else is the
  // leftover of some interrupted lifecycle op — a torn create, a crashed
  // recycle (renamed but preamble not yet rewritten), a stray below a
  // truncation gap — and holds nothing durable: collect it.
  std::vector<SegmentFileInfo> infos = ListSegmentFiles(base_path);
  std::vector<std::unique_ptr<WalSegment>> opened(infos.size());
  while (!infos.empty()) {
    opened.back() = WalSegment::Open(infos.back().path);
    if (opened.back() != nullptr &&
        opened.back()->seq() == infos.back().seq) {
      break;
    }
    std::remove(infos.back().path.c_str());
    infos.pop_back();
    opened.pop_back();
  }
  size_t first_live = infos.empty() ? 0 : infos.size() - 1;
  while (first_live > 0 &&
         infos[first_live - 1].seq + 1 == infos[first_live].seq) {
    opened[first_live - 1] = WalSegment::Open(infos[first_live - 1].path);
    if (opened[first_live - 1] == nullptr ||
        opened[first_live - 1]->seq() != infos[first_live - 1].seq) {
      break;
    }
    --first_live;
  }
  for (size_t i = 0; i < first_live; ++i) {
    std::remove(infos[i].path.c_str());
  }
  for (size_t i = first_live; i < infos.size(); ++i) {
    LiveSeg ls;
    ls.seg = std::move(opened[i]);
    log->segments_.push_back(std::move(ls));
  }

  if (log->segments_.empty()) {
    // Fresh log. Open-time I/O is recovery I/O: no fault consult, no
    // simulated charge (matching the checkpoint store's open behavior).
    std::unique_ptr<WalSegment> seg =
        WalSegment::Create(SegmentPath(base_path, 1), options.page_bytes,
                           /*seq=*/1, /*base_lsn=*/1, /*disk=*/nullptr);
    if (seg == nullptr) return nullptr;
    LiveSeg ls;
    ls.seg = std::move(seg);
    log->segments_.push_back(std::move(ls));
  }

  // Find the durable tail: the end of the valid frame prefix across the
  // chain. No flusher is running yet, so the walk needs no locks.
  Lsn max_lsn = kNoLsn;
  size_t end_idx = 0;
  uint64_t end_off = kSegmentPreambleBytes;
  bool io_error = false;
  log->ValidPrefixWalk(
      0,
      [&](const WalRecord& rec, size_t idx) {
        LiveSeg& ls = log->segments_[idx];
        if (ls.first_lsn == kNoLsn) ls.first_lsn = rec.lsn;
        ls.last_lsn = rec.lsn;
        max_lsn = rec.lsn;
      },
      &end_idx, &end_off, &io_error);
  // A read failure on backed bytes means the tail position is unknowable;
  // appending there could overwrite durable records. Refuse to open.
  if (io_error) return nullptr;
  // Segments past the walk's end hold nothing reachable (frames are
  // written strictly sequentially, so a valid chain cannot resume after a
  // stop) — drop them so the append tail is the chain's last segment.
  while (log->segments_.size() > end_idx + 1) {
    std::remove(log->segments_.back().seg->path().c_str());
    log->segments_.pop_back();
  }
  log->segments_.back().tail = end_off;

  log->next_seq_ = log->segments_.back().seg->seq() + 1;
  log->durable_lsn_ = max_lsn;
  log->applied_upto_ = max_lsn;  // recovery replays (applies) the prefix
                                 // before the log is used again
  log->next_lsn_ = max_lsn + 1;
  log->UpdateSegmentGauges();
  log->flusher_ = std::thread([l = log.get()] { l->FlusherLoop(); });
  return log;
}

WriteAheadLog::~WriteAheadLog() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

Lsn WriteAheadLog::Append(WalRecordType type, ObjectId first_id,
                          uint32_t count, Dim nd, const float* coords) {
  // Encode and hash the payload OUTSIDE the log mutex: a large batch
  // record must not serialize concurrent mutators. Only LSN assignment and
  // the queue push run under the lock; the flusher folds the LSN and the
  // target segment's generation into the checksum in O(1) at placement
  // (the generation is unknowable here — rotation picks the segment).
  ByteWriter payload;
  payload.PutU8(static_cast<uint8_t>(type));
  payload.PutU32(first_id);
  if (type != WalRecordType::kUnsubscribe) {
    payload.PutU32(count);
    payload.PutU32(nd);
    payload.PutBytes(coords, static_cast<size_t>(count) * 2 * nd * 4);
  }
  Pending p;
  p.enqueue_ns = NowNs();
  p.payload_hash =
      Fnv1aBytes(kFnvOffsetBasis, payload.bytes().data(), payload.size());
  p.payload.assign(payload.bytes().begin(), payload.bytes().end());

  std::unique_lock<std::mutex> lk(mu_);
  if (broken_) return kNoLsn;
  const Lsn lsn = next_lsn_++;
  p.lsn = lsn;
  pending_bytes_ += kFrameHeaderBytes + p.payload.size();
  pending_.push(std::move(p));
  lk.unlock();
  records_appended_.Add();
  flush_cv_.notify_one();
  return lsn;
}

Lsn WriteAheadLog::AppendSubscribe(ObjectId id, Dim nd, const float* coords) {
  return Append(WalRecordType::kSubscribe, id, 1, nd, coords);
}

Lsn WriteAheadLog::AppendSubscribeBatch(ObjectId first_id, uint32_t count,
                                        Dim nd, const float* coords) {
  ACCL_CHECK(count > 0);
  return Append(WalRecordType::kSubscribeBatch, first_id, count, nd, coords);
}

Lsn WriteAheadLog::AppendUnsubscribe(ObjectId id) {
  return Append(WalRecordType::kUnsubscribe, id, 1, 0, nullptr);
}

void WriteAheadLog::FlusherLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    flush_cv_.wait(
        lk, [&] { return stop_ || (!pending_.empty() && !broken_); });
    if (broken_ || pending_.empty()) {
      if (stop_) return;
      continue;
    }
    // Group commit drains the whole queue into one append+sync; per-record
    // mode takes exactly one frame, so every record pays its own sync.
    std::vector<Pending> items;
    size_t take = options_.group_commit ? pending_.size() : 1;
    items.reserve(take);
    uint64_t batch_bytes = 0;
    while (take-- > 0) {
      Pending& p = pending_.front();
      batch_bytes += kFrameHeaderBytes + p.payload.size();
      pending_bytes_ -= kFrameHeaderBytes + p.payload.size();
      items.push_back(std::move(p));
      pending_.pop();
    }
    const Lsn last = items.back().lsn;
    lk.unlock();
    const bool ok = WriteBatch(items);
    if (ok) {
      // Enqueue -> durable: the latency each covered record's WaitDurable
      // ack is bounded below by. Recorded off the queue lock.
      const uint64_t now = NowNs();
      for (const Pending& p : items) {
        commit_latency_us_.Record((now - p.enqueue_ns) / 1000);
      }
      records_per_sync_.Record(items.size());
      flush_batches_.Add();
      bytes_appended_.Add(batch_bytes);
      durable_lsn_gauge_.Set(static_cast<int64_t>(last));
    }
    lk.lock();
    if (ok) {
      durable_lsn_ = last;
    } else {
      // The failed batch was never acknowledged; everything still queued
      // can never become durable either. Break the log and wake every
      // waiter so no caller acknowledges a lost mutation.
      broken_ = true;
      while (!pending_.empty()) pending_.pop();
      pending_bytes_ = 0;
    }
    durable_cv_.notify_all();
  }
}

bool WriteAheadLog::WriteBatch(const std::vector<Pending>& items) {
  ACCL_TRACE_SPAN_ARG("wal_write_batch",
                      static_cast<uint32_t>(items.size()));
  std::lock_guard<std::mutex> lk(io_mu_);
  LiveSeg* tail = &segments_.back();
  if (tail->tail - kSegmentPreambleBytes >= options_.segment_bytes) {
    // The new segment's preamble records the first LSN it will hold.
    if (!RotateLocked(items.front().lsn)) return false;
    tail = &segments_.back();
  }
  // Frame the batch under this segment's generation stamp: O(1) checksum
  // finish per record from the pre-hashed payload.
  const uint64_t gen = tail->seg->seq();
  uint64_t total = 0;
  for (const Pending& p : items) {
    total += kFrameHeaderBytes + p.payload.size();
  }
  std::vector<uint8_t> bytes;
  bytes.reserve(total);
  for (const Pending& p : items) {
    uint8_t hdr[kFrameHeaderBytes];
    const uint32_t len = static_cast<uint32_t>(p.payload.size());
    const uint32_t crc = FrameChecksumFromHash(p.payload_hash, p.lsn, gen);
    std::memcpy(hdr, &len, 4);
    std::memcpy(hdr + 4, &crc, 4);
    std::memcpy(hdr + 8, &p.lsn, 8);
    std::memcpy(hdr + 16, &gen, 8);
    bytes.insert(bytes.end(), hdr, hdr + kFrameHeaderBytes);
    bytes.insert(bytes.end(), p.payload.begin(), p.payload.end());
  }
  if (options_.disk != nullptr && options_.disk->NextOpFails()) return false;
  if (!tail->seg->Write(tail->tail, bytes.data(), bytes.size())) return false;
  if (!tail->seg->Sync()) return false;
  if (options_.disk != nullptr) {
    options_.disk->Seek();  // the sync's head positioning
    options_.disk->Transfer(bytes.size());
  }
  // The flusher-recorded watermarks: (lsn, segment, offset). Truncate
  // drops whole segments by comparing last_lsn, Replay skips them the
  // same way — neither ever re-scans frames.
  if (tail->first_lsn == kNoLsn) tail->first_lsn = items.front().lsn;
  tail->last_lsn = items.back().lsn;
  tail->tail += bytes.size();
  return true;
}

bool WriteAheadLog::RotateLocked(Lsn base_lsn) {
  const uint64_t seq = next_seq_++;
  const std::string live = SegmentPath(base_path_, seq);
  std::unique_ptr<WalSegment> seg;
  if (!spares_.empty()) {
    // Recycle: rename the spare into the chain, then rewrite its preamble
    // under the new seq. Its old bytes stay — the generation stamp keeps
    // them dead. A crash between the two steps leaves a name/preamble
    // mismatch the next open garbage-collects.
    const std::string spare = spares_.back();
    if (options_.disk != nullptr && options_.disk->NextOpFails()) {
      return false;
    }
    if (std::rename(spare.c_str(), live.c_str()) != 0) return false;
    if (options_.disk != nullptr) options_.disk->NoteRename();
    spares_.pop_back();
    seg = WalSegment::Recycle(live, seq, base_lsn, options_.disk);
    if (seg == nullptr) return false;
    segments_recycled_.Add();
  } else {
    seg = WalSegment::Create(live, options_.page_bytes, seq, base_lsn,
                             options_.disk);
    if (seg == nullptr) return false;
  }
  LiveSeg ls;
  ls.seg = std::move(seg);
  segments_.push_back(std::move(ls));
  segments_rotated_.Add();
  UpdateSegmentGauges();
  return true;
}

bool WriteAheadLog::WaitDurable(Lsn lsn) {
  if (lsn == kNoLsn) return false;  // a failed Append never becomes durable
  std::unique_lock<std::mutex> lk(mu_);
  durable_cv_.wait(lk, [&] { return durable_lsn_ >= lsn || broken_; });
  return durable_lsn_ >= lsn;
}

void WriteAheadLog::MarkApplied(Lsn lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  if (lsn <= applied_upto_) return;
  if (lsn == applied_upto_ + 1) {
    applied_upto_ = lsn;
    while (!applied_ooo_.empty() && applied_ooo_.top() == applied_upto_ + 1) {
      applied_upto_ = applied_ooo_.top();
      applied_ooo_.pop();
    }
  } else {
    applied_ooo_.push(lsn);
  }
}

Lsn WriteAheadLog::applied_low_water() const {
  std::lock_guard<std::mutex> lk(mu_);
  return applied_upto_;
}

Lsn WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return durable_lsn_;
}

Lsn WriteAheadLog::max_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_ - 1;
}

void WriteAheadLog::ReserveLsnsThrough(Lsn lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  if (lsn >= next_lsn_) next_lsn_ = lsn + 1;
  if (lsn > durable_lsn_) durable_lsn_ = lsn;
  if (lsn > applied_upto_) {
    applied_upto_ = lsn;
    while (!applied_ooo_.empty() && applied_ooo_.top() <= applied_upto_ + 1) {
      if (applied_ooo_.top() == applied_upto_ + 1) {
        applied_upto_ = applied_ooo_.top();
      }
      applied_ooo_.pop();
    }
  }
}

bool WriteAheadLog::broken() const {
  std::lock_guard<std::mutex> lk(mu_);
  return broken_;
}

bool WriteAheadLog::ValidPrefixWalk(
    size_t start_index,
    const std::function<void(const WalRecord&, size_t)>& visit,
    size_t* end_index, uint64_t* end_off, bool* io_error) {
  ACCL_CHECK(start_index < segments_.size());
  *io_error = false;
  size_t idx = start_index;
  uint64_t off = kSegmentPreambleBytes;
  Lsn prev = kNoLsn;
  WalRecord rec;
  uint64_t next = 0;
  for (;;) {
    WalSegment& seg = *segments_[idx].seg;
    bool io = false;
    if (seg.DecodeFrameAt(off, &rec, &next, &io) &&
        (prev == kNoLsn || rec.lsn == prev + 1)) {
      visit(rec, idx);
      prev = rec.lsn;
      off = next;
      continue;
    }
    if (io) {
      *io_error = true;
      break;
    }
    // This segment yields no further frame: a torn/absent tail, a sealed
    // segment's end, or stale recycled bytes. The boundary decides which:
    // a next segment whose first frame continues the LSN chain means this
    // was a rotation seal; a final empty segment is a just-rotated tail
    // the walk ends *inside* (appends resume at its start). Anything else
    // ends the walk here.
    if (idx + 1 >= segments_.size()) break;
    bool peek_io = false;
    const bool peeked = segments_[idx + 1].seg->DecodeFrameAt(
        kSegmentPreambleBytes, &rec, &next, &peek_io);
    if (peek_io) {
      *io_error = true;
      break;
    }
    if (peeked && (prev == kNoLsn || rec.lsn == prev + 1)) {
      ++idx;
      off = kSegmentPreambleBytes;
      continue;  // the main loop re-decodes and consumes the peeked frame
    }
    if (!peeked && idx + 2 == segments_.size()) {
      // Crash between the rotation's seal and the next segment's first
      // write: the tail is the empty (or stale-recycled) final segment.
      ++idx;
      off = kSegmentPreambleBytes;
    }
    break;
  }
  *end_index = idx;
  *end_off = off;
  return !*io_error;
}

bool WriteAheadLog::Replay(Lsn after,
                           const std::function<void(const WalRecord&)>& fn) {
  std::lock_guard<std::mutex> io(io_mu_);
  // Watermark skip: whole segments at or below the cursor are not even
  // decoded. (The walk re-anchors LSN continuity at the first segment it
  // actually reads.)
  size_t start = 0;
  while (start + 1 < segments_.size() &&
         segments_[start].last_lsn != kNoLsn &&
         segments_[start].last_lsn <= after) {
    ++start;
  }
  size_t end_idx = 0;
  uint64_t end_off = 0;
  bool io_error = false;
  ValidPrefixWalk(
      start,
      [&](const WalRecord& rec, size_t) {
        if (rec.lsn > after) fn(rec);
      },
      &end_idx, &end_off, &io_error);
  // A torn tail is a clean end of log; a failed read of backed bytes is
  // not — the caller must not treat the scanned prefix as complete.
  return !io_error;
}

Status WriteAheadLog::Truncate(Lsn up_to) {
  ACCL_TRACE_SPAN("wal_truncate");
  if (up_to == kNoLsn) return Status::Ok();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (up_to > applied_upto_) {
      // Truncating past an unapplied record would lose the only copy of a
      // mutation whose effect no checkpoint can contain yet.
      return Status::FailedPrecondition(
          "WAL truncate to LSN " + std::to_string(up_to) +
          " exceeds the applied low-water " + std::to_string(applied_upto_) +
          "; a record above the low-water is durable but not yet applied");
    }
    // After an I/O failure the in-memory chain may not match the files;
    // dropping segments then risks cutting into records that are still
    // the only copy. A broken log is read-only.
    if (broken_) {
      return Status::FailedPrecondition(
          "WAL is broken by an earlier I/O failure; truncation refused "
          "(the log is read-only until reopened)");
    }
  }
  std::unique_lock<std::mutex> io(io_mu_);
  // O(1) per segment: compare the flusher's last_lsn watermark, unlink or
  // spare the file, pop it. The tail segment always stays (the chain is
  // never empty and the append position never moves).
  while (segments_.size() > 1) {
    LiveSeg& front = segments_.front();
    if (front.last_lsn == kNoLsn || front.last_lsn > up_to) break;
    const std::string path = front.seg->path();
    if (options_.disk != nullptr && options_.disk->NextOpFails()) {
      return Status::IOError(
          "injected failure dropping truncated WAL segment " + path);
    }
    if (spares_.size() < options_.spare_segments) {
      const std::string spare = SparePath(base_path_, front.seg->seq());
      if (std::rename(path.c_str(), spare.c_str()) != 0) {
        return Status::IOError("cannot rename truncated WAL segment " +
                               path + " into the spare pool");
      }
      if (options_.disk != nullptr) options_.disk->NoteRename();
      spares_.push_back(spare);
      segments_spared_.Add();
    } else {
      if (std::remove(path.c_str()) != 0) {
        return Status::IOError("cannot unlink truncated WAL segment " +
                               path);
      }
      if (options_.disk != nullptr) options_.disk->NoteUnlink();
      segments_unlinked_.Add();
    }
    segments_.pop_front();
  }
  UpdateSegmentGauges();
  io.unlock();
  truncations_.Add();
  return Status::Ok();
}

void WriteAheadLog::UpdateSegmentGauges() {
  live_segments_.Set(static_cast<int64_t>(segments_.size()));
  spare_count_.Set(static_cast<int64_t>(spares_.size()));
  tail_seq_.Set(static_cast<int64_t>(
      segments_.empty() ? 0 : segments_.back().seg->seq()));
}

WalStats WriteAheadLog::stats() const {
  WalStats st;
  {
    std::lock_guard<std::mutex> lk(mu_);
    st.durable_lsn = durable_lsn_;
    st.applied_low_water = applied_upto_;
  }
  st.records_appended = records_appended_.Value();
  st.flush_batches = flush_batches_.Value();
  st.bytes_appended = bytes_appended_.Value();
  st.truncations = truncations_.Value();
  st.live_segments = static_cast<uint64_t>(live_segments_.Value());
  st.spare_segments = static_cast<uint64_t>(spare_count_.Value());
  st.tail_segment_seq = static_cast<uint64_t>(tail_seq_.Value());
  st.segments_rotated = segments_rotated_.Value();
  st.segments_recycled = segments_recycled_.Value();
  st.segments_unlinked = segments_unlinked_.Value();
  st.segments_spared = segments_spared_.Value();
  return st;
}

void WriteAheadLog::AttachMetrics(obs::MetricsRegistry* reg) {
  reg->Attach("accl_wal_records_appended_total", &records_appended_,
              "records enqueued to the log");
  reg->Attach("accl_wal_flush_batches_total", &flush_batches_,
              "flusher write+sync batches (one fsync each)");
  reg->Attach("accl_wal_bytes_appended_total", &bytes_appended_,
              "framed bytes written to segments");
  reg->Attach("accl_wal_truncations_total", &truncations_,
              "successful Truncate calls");
  reg->Attach("accl_wal_commit_latency_us", &commit_latency_us_,
              "enqueue -> durable latency per record (microseconds)");
  reg->Attach("accl_wal_records_per_sync", &records_per_sync_,
              "records covered per fsync (group-commit batch size)");
  reg->Attach("accl_wal_live_segments", &live_segments_,
              "segments in the live chain");
  reg->Attach("accl_wal_spare_segments", &spare_count_,
              "truncated segments held for recycling");
  reg->Attach("accl_wal_tail_segment_seq", &tail_seq_,
              "sequence number of the append-tail segment");
  reg->Attach("accl_wal_durable_lsn", &durable_lsn_gauge_,
              "highest LSN known durable");
  reg->Attach("accl_wal_segments_rotated_total", &segments_rotated_,
              "tail rotations");
  reg->Attach("accl_wal_segments_recycled_total", &segments_recycled_,
              "rotations served from the spare pool");
  reg->Attach("accl_wal_segments_unlinked_total", &segments_unlinked_,
              "truncated segments unlinked");
  reg->Attach("accl_wal_segments_spared_total", &segments_spared_,
              "truncated segments renamed into the spare pool");
}

}  // namespace accl::durability
