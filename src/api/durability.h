// Shared types of the durability subsystem (src/durability/): log sequence
// numbers, configuration, and the counter structs the WAL, checkpointer and
// recovery path expose.
//
// They live in api/ — not durability/ — because the engine layer (sdi/)
// references LSNs and durability metrics in its public surface without
// depending on the WAL implementation, mirroring how api/metrics.h serves
// the index layer.
#pragma once

#include <cstdint>

namespace accl {

/// Log sequence number: position of a record in the write-ahead log.
/// Monotone per log, assigned at append, never reused — truncation advances
/// the log's start but LSNs keep counting. 0 is "no LSN".
using Lsn = uint64_t;
inline constexpr Lsn kNoLsn = 0;

/// Configuration for a durable engine (durability::OpenDurable).
struct DurabilityOptions {
  /// Group commit: mutators enqueue records and one flusher thread batches
  /// them into a single append+sync, so concurrent Subscribe calls share a
  /// sync. false = the flusher syncs one record at a time (the naive
  /// durable engine; exists for the bench comparison and for tests that
  /// need one I/O op per record).
  bool group_commit = true;

  /// Page size of the WAL file and of the checkpoint file.
  uint32_t wal_page_bytes = 4096;
  uint32_t checkpoint_page_bytes = 4096;

  /// A background checkpoint is scheduled every this many acknowledged
  /// mutations. 0 = checkpoint only on explicit CheckpointNow().
  uint64_t checkpoint_every_mutations = 0;

  /// Run scheduled checkpoints on a background worker thread (the engine's
  /// mutators only trigger, never wait). false = the triggering mutator
  /// runs the checkpoint inline (deterministic; used by tests).
  bool background_checkpoints = true;
};

/// Write-ahead-log counters (WriteAheadLog::stats).
struct WalStats {
  uint64_t records_appended = 0;
  uint64_t flush_batches = 0;  ///< append+sync operations the flusher ran
  uint64_t bytes_appended = 0;
  uint64_t truncations = 0;
  Lsn durable_lsn = 0;
  Lsn applied_low_water = 0;
  /// Group-commit batching factor: acknowledged records per sync. 1.0 in
  /// per-record-flush mode; > 1 whenever concurrent mutators shared a sync.
  double records_per_flush() const {
    return flush_batches == 0
               ? 0.0
               : static_cast<double>(records_appended) /
                     static_cast<double>(flush_batches);
  }
};

/// Checkpointer counters (Checkpointer::stats).
struct CheckpointStats {
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_failures = 0;  ///< image write or WAL truncation failed
  uint64_t last_subscriptions = 0;   ///< live subscriptions in the last image
  Lsn last_lsn = 0;                  ///< WAL low-water the last image covers
  double last_write_ms = 0.0;
};

/// What SubscriptionEngine::Recover did (diagnostics + tests).
struct RecoveryStats {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_subscriptions = 0;
  Lsn checkpoint_lsn = 0;
  uint64_t wal_records_scanned = 0;
  uint64_t wal_records_applied = 0;
  /// Records skipped by idempotent replay: their LSN is covered by the
  /// checkpoint, or their subscription id is already live (a fuzzy
  /// checkpoint captured the effect of a record past its own LSN).
  uint64_t wal_records_skipped = 0;
  double replay_ms = 0.0;
};

}  // namespace accl
