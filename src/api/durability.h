// Shared types of the durability subsystem (src/durability/): log sequence
// numbers, configuration, and the counter structs the WAL, checkpointer and
// recovery path expose.
//
// They live in api/ — not durability/ — because the engine layer (sdi/)
// references LSNs and durability metrics in its public surface without
// depending on the WAL implementation, mirroring how api/metrics.h serves
// the index layer.
#pragma once

#include <cstdint>

namespace accl {

/// Log sequence number: position of a record in the write-ahead log.
/// Monotone per log, assigned at append, never reused — truncation advances
/// the log's start but LSNs keep counting. 0 is "no LSN".
using Lsn = uint64_t;
inline constexpr Lsn kNoLsn = 0;

/// Configuration for a durable engine (durability::OpenDurable).
struct DurabilityOptions {
  /// Group commit: mutators enqueue records and one flusher thread batches
  /// them into a single append+sync, so concurrent Subscribe calls share a
  /// sync. false = the flusher syncs one record at a time (the naive
  /// durable engine; exists for the bench comparison and for tests that
  /// need one I/O op per record).
  bool group_commit = true;

  /// Page size of the WAL segment files and of the checkpoint file.
  uint32_t wal_page_bytes = 4096;
  uint32_t checkpoint_page_bytes = 4096;

  /// The WAL rotates to a fresh segment file once the tail segment's frame
  /// bytes exceed this (soft limit: a batch is never split across
  /// segments). Checkpoint truncation then drops whole covered segments in
  /// O(1) unlinks, so the log's on-disk footprint stays bounded.
  uint64_t wal_segment_bytes = 1 << 20;

  /// Truncated segments kept as recycled spares instead of unlinked; a
  /// rotation reuses a spare (rename + preamble rewrite) before creating a
  /// fresh file. Recycled bytes are exactly the stale-frame surface the
  /// per-frame generation stamp guards against.
  uint32_t wal_spare_segments = 1;

  /// A background checkpoint is scheduled every this many acknowledged
  /// mutations. 0 = checkpoint only on explicit CheckpointNow().
  uint64_t checkpoint_every_mutations = 0;

  /// Run scheduled checkpoints on a background worker thread (the engine's
  /// mutators only trigger, never wait). false = the triggering mutator
  /// runs the checkpoint inline (deterministic; used by tests).
  bool background_checkpoints = true;
};

/// Write-ahead-log counters (WriteAheadLog::stats).
struct WalStats {
  uint64_t records_appended = 0;
  uint64_t flush_batches = 0;  ///< append+sync operations the flusher ran
  uint64_t bytes_appended = 0;
  uint64_t truncations = 0;
  Lsn durable_lsn = 0;
  Lsn applied_low_water = 0;
  // ---- Segment lifecycle (rotation + truncation GC) ----
  uint64_t live_segments = 0;       ///< segment files currently in the chain
  uint64_t spare_segments = 0;      ///< recycled files waiting for reuse
  uint64_t tail_segment_seq = 0;    ///< generation stamp of the append tail
  uint64_t segments_rotated = 0;    ///< rotations the flusher performed
  uint64_t segments_recycled = 0;   ///< rotations served from the spare pool
  uint64_t segments_unlinked = 0;   ///< truncated segments removed from disk
  uint64_t segments_spared = 0;     ///< truncated segments renamed to spares
  /// Group-commit batching factor: acknowledged records per sync. 1.0 in
  /// per-record-flush mode; > 1 whenever concurrent mutators shared a sync.
  double records_per_flush() const {
    return flush_batches == 0
               ? 0.0
               : static_cast<double>(records_appended) /
                     static_cast<double>(flush_batches);
  }
};

/// Checkpointer counters (Checkpointer::stats).
struct CheckpointStats {
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_failures = 0;  ///< image write or WAL truncation failed
  uint64_t last_subscriptions = 0;   ///< live subscriptions in the last image
  Lsn last_lsn = 0;                  ///< WAL low-water the last image covers
  double last_write_ms = 0.0;
};

/// Log-shipping / warm-standby counters (durability::LogShipper::stats).
struct ReplicationStats {
  Lsn cursor_lsn = 0;          ///< highest LSN applied on the follower
  Lsn source_durable_lsn = 0;  ///< highest LSN seen in the source log at the
                               ///< last completed ship pass
  /// Replication lag at the last completed pass:
  /// source_durable_lsn - cursor_lsn (records the follower still owes).
  uint64_t lag_records = 0;
  uint64_t ship_passes = 0;        ///< completed ShipOnce calls
  uint64_t records_applied = 0;    ///< records replayed into the follower
  uint64_t bytes_shipped = 0;      ///< frame bytes copied into the mirror
  uint64_t segments_mirrored = 0;  ///< mirror segment files created
  uint64_t mirror_segments_unlinked = 0;  ///< mirror GC following the source
  /// Ship passes that re-based the follower from the source's checkpoint
  /// because the log records behind the cursor were already truncated away.
  uint64_t checkpoint_catchups = 0;
  uint64_t ship_errors = 0;  ///< failed ShipOnce calls (I/O; retryable)
  bool promoted = false;
};

/// What SubscriptionEngine::Recover did (diagnostics + tests).
struct RecoveryStats {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_subscriptions = 0;
  Lsn checkpoint_lsn = 0;
  uint64_t wal_records_scanned = 0;
  uint64_t wal_records_applied = 0;
  /// Records skipped by idempotent replay: their LSN is covered by the
  /// checkpoint, or their subscription id is already live (a fuzzy
  /// checkpoint captured the effect of a record past its own LSN).
  uint64_t wal_records_skipped = 0;
  double replay_ms = 0.0;
};

}  // namespace accl
