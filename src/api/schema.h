// Attribute schemas: named, typed attribute domains mapped onto the
// normalized [0,1] coordinate space the indexes operate in.
//
// The paper's motivating application (§1) expresses subscriptions over
// named attributes ("rent between 400$ and 700$, 3 to 5 rooms"); this layer
// handles the bookkeeping from such predicates to hyper-rectangles and
// back, so application code never deals in raw normalized floats.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/types.h"
#include "geometry/box.h"

namespace accl {

/// A named attribute range predicate (closed interval in domain units).
struct AttributeRange {
  std::string name;
  double lo;
  double hi;
};

/// A named attribute point value (for events / point queries).
struct AttributeValue {
  std::string name;
  double value;
};

/// Immutable-after-setup mapping from named attribute domains to dimensions.
class AttributeSchema {
 public:
  /// Registers an attribute with its domain [lo, hi]; returns its
  /// dimension index. Names must be unique; lo < hi required.
  Dim AddAttribute(std::string name, double lo, double hi);

  /// Number of attributes (= index dimensionality).
  Dim dims() const { return static_cast<Dim>(attrs_.size()); }

  /// Dimension of a named attribute, or nullopt when unknown.
  std::optional<Dim> DimensionOf(std::string_view name) const;

  const std::string& NameOf(Dim d) const { return attrs_[d].name; }
  double DomainLo(Dim d) const { return attrs_[d].lo; }
  double DomainHi(Dim d) const { return attrs_[d].hi; }

  /// Maps a domain value into [0,1], clamping to the domain.
  float Normalize(Dim d, double value) const;

  /// Maps a normalized coordinate back into domain units.
  double Denormalize(Dim d, float x) const;

  /// Builds a hyper-rectangle from range predicates. Attributes not
  /// mentioned span their whole domain (the paper's subscriptions leave
  /// unspecified attributes unconstrained). Returns false when a name is
  /// unknown, duplicated, or a range is inverted/outside the domain
  /// tolerance.
  bool MakeBox(const std::vector<AttributeRange>& ranges, Box* out) const;

  /// Builds a point (as normalized coordinates) from attribute values.
  /// Every attribute must be given exactly once.
  bool MakePoint(const std::vector<AttributeValue>& values,
                 std::vector<float>* out) const;

  /// Human-readable rendering of a normalized box in domain units.
  std::string Describe(const Box& box) const;

 private:
  struct Attr {
    std::string name;
    double lo;
    double hi;
  };
  std::vector<Attr> attrs_;
};

}  // namespace accl
