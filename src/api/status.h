// Minimal status type for constructor-time and configuration validation.
//
// The library's internal invariants stay ACCL_CHECK aborts (violating them
// means corruption), but *user-supplied configuration* — engine options,
// shard counts, boundary arrays — is input, not an invariant, and bad
// input must surface as a diagnosable error at construction instead of an
// abort (or worse, a crash deep inside the first operation that happens to
// exercise the bad knob). Factories return Status plus a null object;
// validating entry points return Status directly.
#pragma once

#include <string>
#include <utility>

namespace accl {

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  /// Empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace accl
