// Minimal status type for constructor-time and configuration validation.
//
// The library's internal invariants stay ACCL_CHECK aborts (violating them
// means corruption), but *user-supplied configuration* — engine options,
// shard counts, boundary arrays — is input, not an invariant, and bad
// input must surface as a diagnosable error at construction instead of an
// abort (or worse, a crash deep inside the first operation that happens to
// exercise the bad knob). Factories return Status plus a null object;
// validating entry points return Status directly.
#pragma once

#include <string>
#include <utility>

namespace accl {

/// Coarse error kind, for callers that branch on *why* an operation was
/// refused (retry an I/O error, surface a precondition to the operator).
/// The message carries the detail; the code carries the category.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  /// The call was well-formed but arrived in a state that forbids it
  /// (e.g. truncating the WAL past its applied low-water, promoting an
  /// already-promoted replica).
  kFailedPrecondition,
  /// An I/O operation failed (real or injected); the durable state is
  /// unchanged unless the message says otherwise, and a retry may succeed
  /// once the device recovers.
  kIOError,
};

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace accl
