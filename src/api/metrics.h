// Per-query and aggregated execution metrics. These are the performance
// indicators the paper reports: query execution time, number of accessed
// clusters/nodes, and the size (bytes) of verified data.
#pragma once

#include <cstdint>

#include "util/summary.h"

namespace accl {

/// Identity of the batched-verification kernel a structure executes with —
/// resolved once at construction from the kernel backend registry
/// (kernels/backend_registry.h). Surfaced so benchmark JSON and diagnostics
/// can record which ISA variant produced a measurement.
struct VerifyKernelInfo {
  const char* backend = "scalar";     ///< "scalar", "sse2", "avx2", "avx512"
  uint32_t vector_width_floats = 1;   ///< floats per SIMD lane group
};

/// Counters produced by a single spatial query execution.
struct QueryMetrics {
  /// Clusters (AC), tree nodes (R*), or scans (SS = 1) explored.
  uint64_t groups_explored = 0;
  /// Total groups that exist in the structure at query time (for ratios).
  uint64_t groups_total = 0;
  /// Objects individually checked against the selection criterion.
  uint64_t objects_verified = 0;
  /// Dimensions actually compared before accept/early-reject, summed over
  /// verified objects (models the CPU verification cost; see the paper's
  /// footnote on Sequential Scan CPU cost).
  uint64_t dims_checked = 0;
  /// Bytes of object data read/verified.
  uint64_t bytes_verified = 0;
  /// Number of matching objects returned.
  uint64_t result_count = 0;
  /// Simulated execution time (cost-model milliseconds) for the structure's
  /// configured storage scenario. Memory scenario: CPU terms only.
  /// Disk scenario: adds seek + transfer charges.
  double sim_time_ms = 0.0;
  /// Simulated disk seeks (random accesses) charged.
  uint64_t disk_seeks = 0;
  /// Simulated bytes transferred from disk.
  uint64_t disk_bytes = 0;

  void Clear() { *this = QueryMetrics(); }

  QueryMetrics& operator+=(const QueryMetrics& o) {
    groups_explored += o.groups_explored;
    groups_total += o.groups_total;
    objects_verified += o.objects_verified;
    dims_checked += o.dims_checked;
    bytes_verified += o.bytes_verified;
    result_count += o.result_count;
    sim_time_ms += o.sim_time_ms;
    disk_seeks += o.disk_seeks;
    disk_bytes += o.disk_bytes;
    return *this;
  }
};

/// Aggregation of many QueryMetrics plus wall-clock timings; used by the
/// benchmark harness to print the paper's table rows.
struct ExperimentStats {
  Summary wall_ms;            ///< measured execution time per query
  Summary sim_ms;             ///< cost-model time per query
  Summary groups_explored;    ///< clusters/nodes accessed per query
  Summary explored_ratio;     ///< explored / total groups (the tables' "Expl. %")
  Summary verified_ratio;     ///< objects verified / database size ("Objs. %")
  Summary result_count;

  void AddQuery(const QueryMetrics& m, double wall, uint64_t db_size) {
    wall_ms.Add(wall);
    sim_ms.Add(m.sim_time_ms);
    groups_explored.Add(static_cast<double>(m.groups_explored));
    if (m.groups_total > 0) {
      explored_ratio.Add(static_cast<double>(m.groups_explored) /
                         static_cast<double>(m.groups_total));
    }
    if (db_size > 0) {
      verified_ratio.Add(static_cast<double>(m.objects_verified) /
                         static_cast<double>(db_size));
    }
    result_count.Add(static_cast<double>(m.result_count));
  }
};

}  // namespace accl
