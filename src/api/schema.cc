#include "api/schema.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace accl {

Dim AttributeSchema::AddAttribute(std::string name, double lo, double hi) {
  ACCL_CHECK(lo < hi);
  ACCL_CHECK(!DimensionOf(name).has_value());
  attrs_.push_back(Attr{std::move(name), lo, hi});
  return static_cast<Dim>(attrs_.size() - 1);
}

std::optional<Dim> AttributeSchema::DimensionOf(std::string_view name) const {
  for (Dim d = 0; d < dims(); ++d) {
    if (attrs_[d].name == name) return d;
  }
  return std::nullopt;
}

float AttributeSchema::Normalize(Dim d, double value) const {
  const Attr& a = attrs_[d];
  double x = (value - a.lo) / (a.hi - a.lo);
  if (x < 0.0) x = 0.0;
  if (x > 1.0) x = 1.0;
  return static_cast<float>(x);
}

double AttributeSchema::Denormalize(Dim d, float x) const {
  const Attr& a = attrs_[d];
  return a.lo + (a.hi - a.lo) * static_cast<double>(x);
}

bool AttributeSchema::MakeBox(const std::vector<AttributeRange>& ranges,
                              Box* out) const {
  Box b = Box::FullDomain(dims());
  std::vector<bool> seen(dims(), false);
  for (const AttributeRange& r : ranges) {
    auto d = DimensionOf(r.name);
    if (!d.has_value()) return false;
    if (seen[*d]) return false;
    seen[*d] = true;
    if (r.lo > r.hi) return false;
    const float lo = Normalize(*d, r.lo);
    const float hi = Normalize(*d, r.hi);
    if (lo > hi) return false;
    b.set(*d, lo, hi);
  }
  *out = std::move(b);
  return true;
}

bool AttributeSchema::MakePoint(const std::vector<AttributeValue>& values,
                                std::vector<float>* out) const {
  if (values.size() != dims()) return false;
  std::vector<float> pt(dims());
  std::vector<bool> seen(dims(), false);
  for (const AttributeValue& v : values) {
    auto d = DimensionOf(v.name);
    if (!d.has_value() || seen[*d]) return false;
    seen[*d] = true;
    pt[*d] = Normalize(*d, v.value);
  }
  *out = std::move(pt);
  return true;
}

std::string AttributeSchema::Describe(const Box& box) const {
  ACCL_CHECK(box.dims() == dims());
  std::string s;
  for (Dim d = 0; d < dims(); ++d) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s%s=[%.6g,%.6g]", d ? ", " : "",
                  attrs_[d].name.c_str(), Denormalize(d, box.lo(d)),
                  Denormalize(d, box.hi(d)));
    s += buf;
  }
  return s;
}

}  // namespace accl
