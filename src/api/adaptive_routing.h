// Configuration and statistics types of the workload-adaptive routing
// subsystem (src/adapt/): online fence-dimension selection and
// overflow-shard splitting for the range-routed SDI engine.
//
// The paper's index adapts each cluster to its observed queries; these
// types lift the same idea one level up, to the *routing* layer. kRange
// slices shards over one fence dimension — historically the hard-coded
// leading dimension — and parks fence-straddlers in an overflow shard.
// When the workload's real selectivity lives on another axis, routing
// degrades toward broadcast. The adaptive subsystem observes event and
// subscription interval distributions per dimension (QueryPatternTracker),
// predicts each candidate dimension's routing selectivity under an optimal
// fence set (SelectivityAnalyzer), and switches the fence dimension or
// splits the overflow shard online (RoutingAdvisor), through the same
// epoch-snapshot + double-residency migration machinery rebalancing uses —
// so match sets stay byte-identical to the serial oracle at every instant.
//
// These types live in api/ so the engine's options/stats surface does not
// depend on the adapt/ implementation layer.
#pragma once

#include <cstdint>
#include <vector>

namespace accl {

/// Knobs of the adaptive routing subsystem (EngineOptions::adaptive).
/// Validated by SubscriptionEngine::ValidateOptions; every violation is a
/// descriptive Status from Create, never a crash in the first window.
struct AdaptiveRoutingOptions {
  /// Master switch. Requires ShardingPolicy::kRange. Off by default: the
  /// tracker's sampling is cheap but not free, and non-range policies have
  /// no routing dimension to adapt.
  bool enabled = false;

  /// Events between advisor evaluations (the observation window). Each
  /// window the advisor snapshots the pattern histograms, re-estimates
  /// per-dimension selectivity, and may execute one routing change. Must
  /// be >= 1 when enabled (a zero window would evaluate on every event).
  uint32_t sample_window = 4096;

  /// A dimension switch requires the current dimension's predicted cost to
  /// be at least this multiple of the best candidate's (default: switch
  /// only for a predicted >= 1.5x selectivity win). Must be > 1 when
  /// enabled — a threshold of 1 or less lets estimation noise flip the
  /// dimension back and forth every window.
  double switch_threshold = 1.5;

  /// Overflow-split trigger: straddler pressure (overflow residents plus
  /// the rebalance planner's last predicted straddler spill, as a fraction
  /// of all subscriptions) must reach this level... must be in (0, 1]
  /// when enabled.
  double split_straddler_threshold = 0.25;

  /// ...for this many consecutive advisor windows before the overflow
  /// shard is split (straddler pressure under well-placed fences is a
  /// steady-state property, not a one-window blip). Must be >= 1 when
  /// enabled.
  uint32_t split_patience = 2;

  /// Overflow sub-shards reserved for splitting (0 = splitting disabled;
  /// requires kRange when > 0). The engine allocates these physically at
  /// construction; they stay empty and unvisited until a split activates.
  /// With a split on dimension d2, a straddler whose d2 interval fits one
  /// split slice lives in that sub-shard and an event visits only the
  /// sub-shards its own d2 interval overlaps — the catch-all overflow
  /// shard keeps only double-straddlers.
  uint32_t overflow_split_shards = 0;

  /// Initial fence dimension (-1 = dimension 0, the historical default).
  /// Must name a schema dimension when >= 0. The advisor may move off it.
  int32_t fence_dim = -1;

  /// Pinned overflow-split dimension (-1 = the advisor picks the most
  /// selective dimension other than the fence dimension). Must name a
  /// schema dimension when >= 0.
  int32_t split_dim = -1;
};

/// What the analyzer predicts for routing on one candidate dimension,
/// assuming equal-mass quantile fences on that dimension.
struct DimensionEstimate {
  /// Expected shards visited per event: the fences an average event's
  /// interval crosses, plus its home slice, plus the overflow visit.
  double expected_shard_visits = 0.0;
  /// Fraction of subscriptions predicted to straddle at least one fence
  /// (they would live in the overflow shard, which every event visits).
  double straddler_fraction = 0.0;
  /// Comparable routing cost: expected_shard_visits plus the straddler
  /// fraction weighted by the slice count (an overflow shard holding
  /// fraction f of all subscriptions costs an event roughly f times a
  /// broadcast's verification work). Lower is better.
  double score = 0.0;
};

/// Point-in-time view of the adaptive subsystem
/// (SubscriptionEngine::adaptive_stats()).
struct AdaptiveRoutingStats {
  bool enabled = false;
  /// Fence dimension of the current routing snapshot.
  uint32_t fence_dimension = 0;
  /// Overflow-split dimension of the current snapshot, or -1 when the
  /// split is inactive.
  int32_t split_dimension = -1;
  uint64_t dimension_switches = 0;
  uint64_t overflow_splits = 0;
  /// Advisor windows evaluated (each may or may not act).
  uint64_t windows_evaluated = 0;
  /// Lifetime samples the tracker has folded in.
  uint64_t events_observed = 0;
  uint64_t subscriptions_observed = 0;
  /// Per-dimension estimates of the most recent advisor window (empty
  /// until the first window completes).
  std::vector<DimensionEstimate> last_estimates;
};

}  // namespace accl
