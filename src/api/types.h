// Fundamental identifiers and constants shared by all index implementations.
#pragma once

#include <cstdint>

namespace accl {

/// Identifier of a spatial object (4 bytes, as in the paper's data layout).
using ObjectId = uint32_t;

/// Sentinel "no object".
inline constexpr ObjectId kInvalidObject = 0xFFFFFFFFu;

/// Dimension index type. The paper evaluates 16..40 dimensions; we support
/// up to 65535.
using Dim = uint32_t;

/// The normalized data domain: every coordinate lies in [kDomainMin, kDomainMax].
inline constexpr float kDomainMin = 0.0f;
inline constexpr float kDomainMax = 1.0f;

/// Bytes occupied by one stored object with `nd` dimensions: a 4-byte id plus
/// two 4-byte interval limits per dimension (paper §7.1, Data Representation).
inline constexpr uint64_t ObjectBytes(Dim nd) {
  return 4ull + 8ull * static_cast<uint64_t>(nd);
}

}  // namespace accl
