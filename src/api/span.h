// A minimal non-owning contiguous view (std::span subset; C++17 — the
// project predates std::span). Lives alone so low-level consumers
// (core bulk APIs, exec queues) can take spans without pulling in the
// sharded-engine batch types.
#pragma once

#include <cstddef>
#include <utility>

namespace accl {

/// Non-owning contiguous view.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}
  /// From any contiguous container with data()/size() (vector, array).
  template <typename C, typename = decltype(std::declval<C&>().data())>
  constexpr Span(C& c) : data_(c.data()), size_(c.size()) {}  // NOLINT

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace accl
