// Batch request/response types shared by the sharded matching subsystem.
//
// The SDI engine's batched API fans one span of events across K index
// shards and merges per-shard answers deterministically; these are the
// transport types for that path: the per-batch result carrying
// ObjectId-sorted match sets and the per-shard metrics aggregation the
// benchmarks and tests consume, plus the streaming MatchSink consumer for
// callers that want each event's matches pushed as soon as that event's
// last shard visit completes instead of materialized into one result
// object. (Span itself lives in api/span.h so lower layers can use it
// without these types.)
#pragma once

#include <cstddef>
#include <vector>

#include "api/metrics.h"
#include "api/span.h"
#include "api/types.h"

namespace accl {

/// Aggregated execution metrics of one shard over a batch (or a lifetime):
/// the shard's summed QueryMetrics plus how many event×shard executions
/// contributed, so ratios stay computable after merging.
struct ShardMetrics {
  QueryMetrics totals;
  uint64_t executions = 0;
  /// Events dispatched to this shard by the batch router. Broadcast
  /// policies route every event to every shard, so this equals the batch
  /// size; range-routed dispatch visits only the shards whose key slice an
  /// event overlaps (plus the overflow shard), so summing this across
  /// shards measures routing selectivity — shard-visits per event — which
  /// is the quantity the routed engine exists to shrink.
  uint64_t events_routed = 0;
  /// Point-in-time gauge: subscriptions resident in this shard when the
  /// batch was dispatched. Populated for every shard under every sharding
  /// policy. Merge keeps the max (it is a gauge, not a counter).
  uint64_t resident_subscriptions = 0;
  /// Point-in-time gauge: subscriptions resident in the engine's overflow
  /// shard when this batch was dispatched. Only the overflow shard's entry
  /// carries it, and only range-routed engines have an overflow shard —
  /// consult MatchBatchResult::overflow_shard to tell "this entry is the
  /// overflow shard with 0 residents" apart from "this policy has no
  /// overflow shard at all". It tracks straddler pressure — fences
  /// repeatedly cutting dense regions push subscriptions here, and every
  /// routed event pays an overflow visit. Merge keeps the max (a gauge).
  uint64_t overflow_subscriptions = 0;
  /// Residual-serialization counter: pipeline workers that tried to claim
  /// a chunk of this shard's queue but found the shard mutex held (by
  /// another worker's chunk or a concurrent single-event Match) and moved
  /// on to steal elsewhere. High values on one shard mean its queue is
  /// the batch's serialization residue — the signal behind the wall-
  /// scaling gap the parallel benchmark tracks.
  uint64_t try_lock_failures = 0;

  void Add(const QueryMetrics& m) {
    totals += m;
    ++executions;
  }
  void Merge(const ShardMetrics& o) {
    totals += o.totals;
    executions += o.executions;
    events_routed += o.events_routed;
    if (o.resident_subscriptions > resident_subscriptions) {
      resident_subscriptions = o.resident_subscriptions;
    }
    if (o.overflow_subscriptions > overflow_subscriptions) {
      overflow_subscriptions = o.overflow_subscriptions;
    }
    try_lock_failures += o.try_lock_failures;
  }
  void Clear() { *this = ShardMetrics(); }
};

/// Streaming consumer for batched matching: the engine calls
/// OnEventMatches exactly once per event of the batch, as soon as that
/// event's last shard visit has completed — events complete in arbitrary
/// order, possibly concurrently from several pool workers. Implementations
/// must therefore be thread-safe across *different* event indices (the
/// engine never emits the same index twice, so per-index slots need no
/// locking). The span is only valid for the duration of the call. The ids
/// are sorted ascending by ObjectId and duplicate-free — byte-identical to
/// what MatchBatchResult::matches[event_index] would have held.
class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual void OnEventMatches(size_t event_index,
                              Span<const ObjectId> matches,
                              uint64_t objects_verified) = 0;
};

/// The trivial MatchSink: copies each event's matches into a preallocated
/// per-event slot. Lock-free — the engine's exactly-once-per-index contract
/// makes the writes disjoint. Useful for tests and as the materialization
/// baseline a custom sink is measured against.
class VectorMatchSink final : public MatchSink {
 public:
  VectorMatchSink() = default;
  explicit VectorMatchSink(size_t n_events) { Reset(n_events); }

  /// Sizes the per-event slots (capacity-preserving across batches).
  void Reset(size_t n_events) {
    for (auto& m : matches_) m.clear();
    matches_.resize(n_events);
    verified_.assign(n_events, 0);
  }

  void OnEventMatches(size_t event_index, Span<const ObjectId> matches,
                      uint64_t objects_verified) override {
    matches_[event_index].assign(matches.begin(), matches.end());
    verified_[event_index] = objects_verified;
  }

  const std::vector<std::vector<ObjectId>>& matches() const {
    return matches_;
  }
  const std::vector<uint64_t>& verified() const { return verified_; }

 private:
  std::vector<std::vector<ObjectId>> matches_;
  std::vector<uint64_t> verified_;
};

/// Result of matching a batch of events against a (possibly sharded) engine.
///
/// `matches[e]` holds the ids notified by event `e`, sorted ascending by
/// ObjectId — the deterministic merge order, byte-identical regardless of
/// shard count or thread count.
struct MatchBatchResult {
  /// Sentinel for `overflow_shard`: the dispatching policy has no overflow
  /// shard (broadcast policies), so no per_shard entry carries the
  /// overflow gauge.
  static constexpr size_t kNoOverflowShard = static_cast<size_t>(-1);

  std::vector<std::vector<ObjectId>> matches;  ///< per event, id-sorted
  std::vector<ShardMetrics> per_shard;         ///< indexed by shard
  QueryMetrics total;                          ///< sum over shards & events
  /// Index into `per_shard` of the overflow shard the batch was routed
  /// with, or kNoOverflowShard when the policy has none (broadcast). This
  /// is what makes the overflow_subscriptions gauge *explicitly absent*
  /// rather than silently zero for non-range policies.
  size_t overflow_shard = kNoOverflowShard;
  /// Version of the routing snapshot the whole batch was dispatched with
  /// (one consistent snapshot per batch; 0 for an empty batch).
  /// Non-decreasing across a single caller's batches — a later batch can
  /// never observe an older routing table.
  uint64_t routing_version = 0;
  /// Reclamation epoch the batch was pinned at while routing and executing
  /// (0 for an empty batch). Diagnostics for the epoch subsystem: a stuck
  /// epoch across batches means some reader is wedged pinned.
  uint64_t epoch = 0;
  /// Residual-serialization counter: failed head-CAS iterations across all
  /// workers while popping the finalize-ready stack this batch. Nonzero
  /// means two workers raced for the same ready event — contention on the
  /// one lock-free structure the pipeline's merge path has.
  uint64_t ready_pop_retries = 0;

  /// Logically empties the result while PRESERVING allocated capacity: the
  /// per-event match vectors and per-shard entries are cleared in place,
  /// not destroyed, so a result object reused across batches of similar
  /// shape performs no allocations after the first. `matches.size()` /
  /// `per_shard.size()` are therefore a capacity artifact after Clear —
  /// the engine resizes both to the next batch's shape before filling
  /// them. (Allocation churn on the batch path was a measured wall-clock
  /// cost; see bench_parallel_sdi's allocation counter.)
  void Clear() {
    for (auto& m : matches) m.clear();
    for (auto& s : per_shard) s.Clear();
    total.Clear();
    overflow_shard = kNoOverflowShard;
    routing_version = 0;
    epoch = 0;
    ready_pop_retries = 0;
  }

  /// Recomputes `total` as the shard-order sum of `per_shard` (the
  /// deterministic aggregation the engine uses after the fan-out joins).
  void AggregateShards() {
    total.Clear();
    for (const ShardMetrics& s : per_shard) total += s.totals;
  }

  /// Total shard visits the router dispatched for this batch. Broadcast
  /// dispatch pays events × shards; range-routed dispatch strictly less on
  /// selective workloads.
  uint64_t TotalShardVisits() const {
    uint64_t v = 0;
    for (const ShardMetrics& s : per_shard) v += s.events_routed;
    return v;
  }
};

}  // namespace accl
