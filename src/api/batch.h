// Batch request/response types shared by the sharded matching subsystem.
//
// The SDI engine's batched API fans one span of events across K index
// shards and merges per-shard answers deterministically; these are the
// transport types for that path: the per-batch result carrying
// ObjectId-sorted match sets and the per-shard metrics aggregation the
// benchmarks and tests consume. (Span itself lives in api/span.h so
// lower layers can use it without these types.)
#pragma once

#include <cstddef>
#include <vector>

#include "api/metrics.h"
#include "api/span.h"
#include "api/types.h"

namespace accl {

/// Aggregated execution metrics of one shard over a batch (or a lifetime):
/// the shard's summed QueryMetrics plus how many event×shard executions
/// contributed, so ratios stay computable after merging.
struct ShardMetrics {
  QueryMetrics totals;
  uint64_t executions = 0;
  /// Events dispatched to this shard by the batch router. Broadcast
  /// policies route every event to every shard, so this equals the batch
  /// size; range-routed dispatch visits only the shards whose key slice an
  /// event overlaps (plus the overflow shard), so summing this across
  /// shards measures routing selectivity — shard-visits per event — which
  /// is the quantity the routed engine exists to shrink.
  uint64_t events_routed = 0;
  /// Point-in-time gauge: subscriptions resident in the engine's overflow
  /// shard when this batch was dispatched. The range-routed engine fills it
  /// on the overflow shard's entry only (0 elsewhere); it tracks straddler
  /// pressure — fences repeatedly cutting dense regions push subscriptions
  /// here, and every routed event pays an overflow visit. Merge keeps the
  /// max (it is a gauge, not a counter).
  uint64_t overflow_subscriptions = 0;

  void Add(const QueryMetrics& m) {
    totals += m;
    ++executions;
  }
  void Merge(const ShardMetrics& o) {
    totals += o.totals;
    executions += o.executions;
    events_routed += o.events_routed;
    if (o.overflow_subscriptions > overflow_subscriptions) {
      overflow_subscriptions = o.overflow_subscriptions;
    }
  }
  void Clear() { *this = ShardMetrics(); }
};

/// Result of matching a batch of events against a (possibly sharded) engine.
///
/// `matches[e]` holds the ids notified by event `e`, sorted ascending by
/// ObjectId — the deterministic merge order, byte-identical regardless of
/// shard count or thread count.
struct MatchBatchResult {
  std::vector<std::vector<ObjectId>> matches;  ///< per event, id-sorted
  std::vector<ShardMetrics> per_shard;         ///< indexed by shard
  QueryMetrics total;                          ///< sum over shards & events
  /// Version of the routing snapshot the whole batch was dispatched with
  /// (one consistent snapshot per batch; 0 for an empty batch).
  /// Non-decreasing across a single caller's batches — a later batch can
  /// never observe an older routing table.
  uint64_t routing_version = 0;
  /// Reclamation epoch the batch was pinned at while routing and executing
  /// (0 for an empty batch). Diagnostics for the epoch subsystem: a stuck
  /// epoch across batches means some reader is wedged pinned.
  uint64_t epoch = 0;

  void Clear() {
    matches.clear();
    per_shard.clear();
    total.Clear();
    routing_version = 0;
    epoch = 0;
  }

  /// Recomputes `total` as the shard-order sum of `per_shard` (the
  /// deterministic aggregation the engine uses after the fan-out joins).
  void AggregateShards() {
    total.Clear();
    for (const ShardMetrics& s : per_shard) total += s.totals;
  }

  /// Total shard visits the router dispatched for this batch. Broadcast
  /// dispatch pays events × shards; range-routed dispatch strictly less on
  /// selective workloads.
  uint64_t TotalShardVisits() const {
    uint64_t v = 0;
    for (const ShardMetrics& s : per_shard) v += s.events_routed;
    return v;
  }
};

}  // namespace accl
