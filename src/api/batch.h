// Batch request/response types shared by the sharded matching subsystem.
//
// The SDI engine's batched API fans one span of events across K index
// shards and merges per-shard answers deterministically; these are the
// transport types for that path: a minimal C++17 span (std::span is C++20),
// the per-batch result carrying ObjectId-sorted match sets, and the
// per-shard metrics aggregation the benchmarks and tests consume.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "api/metrics.h"
#include "api/types.h"

namespace accl {

/// Non-owning contiguous view (std::span subset; C++17).
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}
  /// From any contiguous container with data()/size() (vector, array).
  template <typename C, typename = decltype(std::declval<C&>().data())>
  constexpr Span(C& c) : data_(c.data()), size_(c.size()) {}  // NOLINT

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

/// Aggregated execution metrics of one shard over a batch (or a lifetime):
/// the shard's summed QueryMetrics plus how many event×shard executions
/// contributed, so ratios stay computable after merging.
struct ShardMetrics {
  QueryMetrics totals;
  uint64_t executions = 0;

  void Add(const QueryMetrics& m) {
    totals += m;
    ++executions;
  }
  void Merge(const ShardMetrics& o) {
    totals += o.totals;
    executions += o.executions;
  }
  void Clear() { *this = ShardMetrics(); }
};

/// Result of matching a batch of events against a (possibly sharded) engine.
///
/// `matches[e]` holds the ids notified by event `e`, sorted ascending by
/// ObjectId — the deterministic merge order, byte-identical regardless of
/// shard count or thread count.
struct MatchBatchResult {
  std::vector<std::vector<ObjectId>> matches;  ///< per event, id-sorted
  std::vector<ShardMetrics> per_shard;         ///< indexed by shard
  QueryMetrics total;                          ///< sum over shards & events

  void Clear() {
    matches.clear();
    per_shard.clear();
    total.Clear();
  }

  /// Recomputes `total` as the shard-order sum of `per_shard` (the
  /// deterministic aggregation the engine uses after the fan-out joins).
  void AggregateShards() {
    total.Clear();
    for (const ShardMetrics& s : per_shard) total += s.totals;
  }
};

}  // namespace accl
