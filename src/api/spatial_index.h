// Common interface implemented by all three competitors evaluated in the
// paper: Adaptive Clustering (AC), R*-tree (RS), and Sequential Scan (SS).
// Benchmarks and correctness tests are written against this interface.
#pragma once

#include <cstddef>
#include <vector>

#include "api/metrics.h"
#include "api/types.h"
#include "geometry/query.h"

namespace accl {

/// Abstract spatial index over multidimensional extended objects.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Short display name ("AC", "RS", "SS").
  virtual const char* name() const = 0;

  /// Dimensionality of the indexed space.
  virtual Dim dims() const = 0;

  /// Inserts an object. `id` must be unique among live objects.
  virtual void Insert(ObjectId id, BoxView box) = 0;

  /// Removes the object with the given id. Returns false if absent.
  virtual bool Erase(ObjectId id) = 0;

  /// Executes a spatial selection; appends matching ids to `*out` (order
  /// unspecified). When `metrics` is non-null it is overwritten with this
  /// query's counters.
  virtual void Execute(const Query& q, std::vector<ObjectId>* out,
                       QueryMetrics* metrics = nullptr) = 0;

  /// Number of live objects.
  virtual size_t size() const = 0;

  /// The verification kernel this structure executes with. Structures that
  /// verify through the kernel backend registry (AC, SS) report the resolved
  /// backend; the default covers structures with scalar-only verification.
  virtual VerifyKernelInfo verify_kernel() const { return {}; }
};

}  // namespace accl
