// Internal factory declarations for the compiled-in verify backends.
//
// Registration is explicit (the registry constructor calls these) rather
// than static-initializer self-registration: the library is linked as a
// static archive, where an unreferenced TU's initializers are silently
// dropped by the linker — the classic way a backend vanishes from release
// builds only. A factory returns nullptr when its ISA was not compiled
// into the TU (e.g. MakeSse2Backend on a non-x86 build); the AVX factories
// are additionally compiled out entirely (and their calls #if-gated by the
// ACCL_KERNEL_HAVE_* definitions CMake sets) when the toolchain cannot
// build the TU at all.
#pragma once

#include <memory>

#include "kernels/verify_backend.h"

namespace accl::kernels {

std::unique_ptr<VerifyBackend> MakeScalarBackend();
std::unique_ptr<VerifyBackend> MakeSse2Backend();
#if defined(ACCL_KERNEL_HAVE_AVX2)
std::unique_ptr<VerifyBackend> MakeAvx2Backend();
#endif
#if defined(ACCL_KERNEL_HAVE_AVX512)
std::unique_ptr<VerifyBackend> MakeAvx512Backend();
#endif

}  // namespace accl::kernels
