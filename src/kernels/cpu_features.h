// Host CPU capability probe for verify-backend selection.
//
// The registry (backend_registry.h) asks the host once, at first use, which
// vector ISAs it can execute, and registers/selects backends accordingly.
// Detection goes through __builtin_cpu_supports, which on x86 includes the
// OS XSAVE/ZMM-state check — "the CPU has AVX-512F" only counts when the
// kernel actually preserves the wide registers across context switches.
#pragma once

#include <string>

namespace accl::kernels {

/// The ISA capabilities a verify backend may require.
struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
  bool avx512f = false;
};

/// Probes the executing host once; subsequent calls return the cached
/// result. On non-x86 hosts every flag is false (the scalar backend is the
/// only one that registers as supported).
const CpuFeatures& HostCpuFeatures();

/// Space-separated list of the detected features ("sse2 avx2 avx512f"),
/// or "none" — for logs, BENCH JSON metadata, and error messages.
std::string CpuFeatureString(const CpuFeatures& f);

}  // namespace accl::kernels
