// SSE2 verify backend: 16 floats (8 dimensions) per probe step via four
// 128-bit compares — the PR 1 kernel, now one registered variant among
// equals. Compiled with the baseline x86-64 flags (SSE2 is architectural
// there), so no per-TU ISA options; on non-x86 builds the factory returns
// nullptr and the backend simply never registers.
#include "kernels/backends.h"

#if defined(__SSE2__)
#include <emmintrin.h>

#include "kernels/verify_common.h"
#endif

namespace accl::kernels {

#if defined(__SSE2__)

namespace {

struct Sse2Probe {
  static constexpr size_t kChunk = 16;
  static inline size_t FirstFail(const float* o, const float* bg,
                                 const float* bl) {
    uint32_t m = 0;
    for (size_t g = 0; g < 16; g += 4) {
      const __m128 ov = _mm_loadu_ps(o + g);
      const __m128 f =
          _mm_or_ps(_mm_cmpgt_ps(ov, _mm_loadu_ps(bg + g)),
                    _mm_cmplt_ps(ov, _mm_loadu_ps(bl + g)));
      m |= static_cast<uint32_t>(_mm_movemask_ps(f)) << g;
    }
    return m != 0 ? static_cast<size_t>(__builtin_ctz(m)) : kChunk;
  }
};

class Sse2Backend final : public VerifyBackend {
 public:
  const char* name() const override { return "sse2"; }
  uint32_t vector_width_floats() const override { return 4; }
  bool SupportedOnHost(const CpuFeatures& host) const override {
    return host.sse2;
  }

  size_t VerifyBatch(const float* coords, const ObjectId* ids, size_t n,
                     const BatchQuery& bq, std::vector<ObjectId>* out,
                     uint64_t* dims_checked) const override {
    return detail::VerifyBatchImpl<Sse2Probe>(coords, ids, n, bq, out,
                                              dims_checked);
  }

  size_t FilterSlotsDense(const float* le, const float* ge, float le_bound,
                          float ge_bound, size_t n,
                          uint32_t* out_slots) const override {
    const __m128 leb = _mm_set1_ps(le_bound);
    const __m128 geb = _mm_set1_ps(ge_bound);
    size_t count = 0;
    size_t s = 0;
    for (; s + 4 <= n; s += 4) {
      const __m128 pass = _mm_and_ps(_mm_cmple_ps(_mm_loadu_ps(le + s), leb),
                                     _mm_cmpge_ps(_mm_loadu_ps(ge + s), geb));
      uint32_t m = static_cast<uint32_t>(_mm_movemask_ps(pass));
      while (m != 0) {  // ascending: ctz walks low bit to high
        const uint32_t b = static_cast<uint32_t>(__builtin_ctz(m));
        m &= m - 1;
        out_slots[count++] = static_cast<uint32_t>(s + b);
      }
    }
    for (; s < n; ++s) {
      out_slots[count] = static_cast<uint32_t>(s);
      count += (le[s] <= le_bound) & (ge[s] >= ge_bound);
    }
    return count;
  }
};

}  // namespace

std::unique_ptr<VerifyBackend> MakeSse2Backend() {
  return std::make_unique<Sse2Backend>();
}

#else  // !__SSE2__

std::unique_ptr<VerifyBackend> MakeSse2Backend() { return nullptr; }

#endif

}  // namespace accl::kernels
