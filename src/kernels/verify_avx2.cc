// AVX2 verify backend: 16 floats (8 dimensions) per probe step via two
// 256-bit compares. This TU is compiled with -mavx2 (set per-file by CMake,
// never globally), so nothing outside it may call into it directly — the
// registry reaches it only through the MakeAvx2Backend factory, and only
// after the CPUID probe confirmed the host executes AVX2.
//
// The chunk stays 16 floats — same as SSE2 — so the first-fail positions,
// and therefore the dims accounting, are structurally identical across
// backends; AVX2 wins by halving the instruction count per chunk, not by
// widening the probe window.
#include <immintrin.h>

#include "kernels/backends.h"
#include "kernels/verify_common.h"

namespace accl::kernels {

namespace {

struct Avx2Probe {
  static constexpr size_t kChunk = 16;
  static inline size_t FirstFail(const float* o, const float* bg,
                                 const float* bl) {
    uint32_t m = 0;
    for (size_t g = 0; g < 16; g += 8) {
      const __m256 ov = _mm256_loadu_ps(o + g);
      const __m256 f = _mm256_or_ps(
          _mm256_cmp_ps(ov, _mm256_loadu_ps(bg + g), _CMP_GT_OQ),
          _mm256_cmp_ps(ov, _mm256_loadu_ps(bl + g), _CMP_LT_OQ));
      m |= static_cast<uint32_t>(_mm256_movemask_ps(f)) << g;
    }
    return m != 0 ? static_cast<size_t>(__builtin_ctz(m)) : kChunk;
  }
};

class Avx2Backend final : public VerifyBackend {
 public:
  const char* name() const override { return "avx2"; }
  uint32_t vector_width_floats() const override { return 8; }
  bool SupportedOnHost(const CpuFeatures& host) const override {
    return host.avx2;
  }

  size_t VerifyBatch(const float* coords, const ObjectId* ids, size_t n,
                     const BatchQuery& bq, std::vector<ObjectId>* out,
                     uint64_t* dims_checked) const override {
    return detail::VerifyBatchImpl<Avx2Probe>(coords, ids, n, bq, out,
                                              dims_checked);
  }

  size_t FilterSlotsDense(const float* le, const float* ge, float le_bound,
                          float ge_bound, size_t n,
                          uint32_t* out_slots) const override {
    const __m256 leb = _mm256_set1_ps(le_bound);
    const __m256 geb = _mm256_set1_ps(ge_bound);
    size_t count = 0;
    size_t s = 0;
    for (; s + 8 <= n; s += 8) {
      const __m256 pass = _mm256_and_ps(
          _mm256_cmp_ps(_mm256_loadu_ps(le + s), leb, _CMP_LE_OQ),
          _mm256_cmp_ps(_mm256_loadu_ps(ge + s), geb, _CMP_GE_OQ));
      uint32_t m = static_cast<uint32_t>(_mm256_movemask_ps(pass));
      while (m != 0) {  // ascending: ctz walks low bit to high
        const uint32_t b = static_cast<uint32_t>(__builtin_ctz(m));
        m &= m - 1;
        out_slots[count++] = static_cast<uint32_t>(s + b);
      }
    }
    for (; s < n; ++s) {
      out_slots[count] = static_cast<uint32_t>(s);
      count += (le[s] <= le_bound) & (ge[s] >= ge_bound);
    }
    return count;
  }
};

}  // namespace

std::unique_ptr<VerifyBackend> MakeAvx2Backend() {
  return std::make_unique<Avx2Backend>();
}

}  // namespace accl::kernels
