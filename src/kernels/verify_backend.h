// VerifyBackend — the interface every batched-verification kernel variant
// implements (scalar / SSE2 / AVX2 / AVX-512, and whatever the registry
// grows next: a GPU or stub backend drops in here without touching any
// call site).
//
// The backends are *observationally identical by contract*: for the same
// inputs every backend must produce the same match set, in the same order,
// with the same cost accounting. Vector width may only change how fast the
// answer arrives, never what the answer is — the kernel-parity property
// test (tests/kernel_parity_test.cc) enforces this against the scalar
// reference for every registered backend.
#pragma once

#include <cstdint>
#include <vector>

#include "api/types.h"
#include "geometry/predicates.h"
#include "kernels/cpu_features.h"
#include "obs/metrics.h"

namespace accl::kernels {

/// One batched-verification kernel implementation.
class VerifyBackend {
 public:
  virtual ~VerifyBackend() = default;

  /// Stable lower-case identifier ("scalar", "sse2", "avx2", "avx512").
  /// This is the name IndexOptions / ACCL_FORCE_BACKEND pin by, and the
  /// name surfaced in metrics and BENCH JSON.
  virtual const char* name() const = 0;

  /// Floats compared per vector step (1 for scalar, 4/8/16 for
  /// SSE2/AVX2/AVX-512). Registry auto-selection picks the widest
  /// supported backend; ties break toward earlier registration.
  virtual uint32_t vector_width_floats() const = 0;

  /// True when `host` can execute this backend's instructions. A backend
  /// may be registered (compiled into the binary) yet unsupported on the
  /// machine that loaded it — selection filters on this.
  virtual bool SupportedOnHost(const CpuFeatures& host) const = 0;

  // ---- The dims-accounting contract ----------------------------------
  //
  // VerifyBatch verifies `n` records of a flat coordinate block (stride
  // 2*nd floats, layout [lo0, hi0, lo1, hi1, ...] — the SlotArray layout)
  // against the precomputed query image `bq`, appends the ids of matching
  // records to `*out` IN RECORD ORDER, and returns the match count.
  //
  // `*dims_checked` is incremented by the number of LOGICAL dimension
  // reads — per record, exactly what the scalar early-exit loop
  // (SatisfiesCounting) would report:
  //
  //     first failing dimension + 1   on a reject,
  //     nd                            on a match,
  //
  // where the first failing dimension is derived from the first failing
  // FLOAT position k as k/2 (each dimension spans two floats). This is a
  // *logical reads* count, not a physical-probe count: a wide backend
  // that speculatively compares 16 floats past the failing position, or
  // re-probes a chunk to locate the first failing bit, performs more
  // physical comparisons but must still charge only the scalar early-exit
  // figure. The cost model prices verification from this counter
  // (verify_ms_per_byte * (4*n + 8*dims_checked)); a backend that let its
  // physical probe count leak into it would silently skew every
  // split/merge decision the adaptive clustering makes — and would do so
  // differently per machine, making cost-model traces
  // hardware-dependent. Backends are free to vectorize however they like
  // as long as this accounting (and the match set) is bit-for-bit the
  // scalar reference's.
  virtual size_t VerifyBatch(const float* coords, const ObjectId* ids,
                             size_t n, const BatchQuery& bq,
                             std::vector<ObjectId>* out,
                             uint64_t* dims_checked) const = 0;

  // ---- Admit-filter sweeps (SignatureTable::CollectAdmitted) ---------
  //
  // One dimension of the signature admit test is two bound comparisons
  // against packed per-slot arrays: slot s survives iff
  //
  //     le[s] <= le_bound  &&  ge[s] >= ge_bound.
  //
  // FilterSlotsDense scans slots [0, n) and writes the survivors'
  // ascending slot numbers to `out_slots` (capacity >= n), returning the
  // survivor count. FilterSlotsSparse does the same over an explicit
  // ascending slot list `in` (out_slots may not alias `in`). Both carry
  // no dims accounting — the admit filter is charged per cluster (the
  // cost model's A term), not per dimension — but the survivor sets and
  // their order are contract: every backend must emit exactly the slots
  // the scalar loop emits, ascending.
  //
  // The base-class implementations are the scalar reference; vector
  // backends override the dense sweep (contiguous loads + compress) and
  // inherit the sparse one (gather-shaped, rarely worth vectorizing).
  virtual size_t FilterSlotsDense(const float* le, const float* ge,
                                  float le_bound, float ge_bound, size_t n,
                                  uint32_t* out_slots) const;
  virtual size_t FilterSlotsSparse(const float* le, const float* ge,
                                   float le_bound, float ge_bound,
                                   const uint32_t* in, size_t n,
                                   uint32_t* out_slots) const;

  // ---- Dispatch accounting -------------------------------------------
  //
  // Call sites that resolve a backend once and loop (the adaptive index's
  // verify loop) note each dispatch here; the BackendRegistry attaches
  // every registered backend's counter to the process-default
  // MetricsRegistry as accl_kernel_dispatch_<name>_total, so engine
  // metric dumps show which kernel actually ran and how often.
  void NoteDispatch() const { dispatch_count_.Add(1); }
  uint64_t dispatch_count() const { return dispatch_count_.Value(); }
  obs::Counter* dispatch_counter() const { return &dispatch_count_; }

 private:
  mutable obs::Counter dispatch_count_;
};

}  // namespace accl::kernels
