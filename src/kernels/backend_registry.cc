#include "kernels/backend_registry.h"

#include <cstdio>
#include <cstdlib>

#include "kernels/backends.h"
#include "obs/metrics.h"

namespace accl::kernels {

BackendRegistry::BackendRegistry() : host_(HostCpuFeatures()) {
  auto add = [this](std::unique_ptr<VerifyBackend> b) {
    if (!b || !b->SupportedOnHost(host_)) return;
    all_.push_back(b.get());
    if (widest_ == nullptr ||
        b->vector_width_floats() > widest_->vector_width_floats()) {
      widest_ = b.get();
    }
    owned_.push_back(std::move(b));
  };
  add(MakeScalarBackend());
  add(MakeSse2Backend());
#if defined(ACCL_KERNEL_HAVE_AVX2)
  add(MakeAvx2Backend());
#endif
#if defined(ACCL_KERNEL_HAVE_AVX512)
  add(MakeAvx512Backend());
#endif
  // Per-backend dispatch counters live on the process-default registry:
  // the backends are process-wide singletons (this registry is leaked),
  // so the lifetime contract of Attach holds trivially.
  for (const VerifyBackend* b : all_) {
    obs::MetricsRegistry::Default().Attach(
        std::string("accl_kernel_dispatch_") + b->name() + "_total",
        b->dispatch_counter(),
        "VerifyBatch dispatches through this backend");
  }
}

const BackendRegistry& BackendRegistry::Instance() {
  static const BackendRegistry registry;
  return registry;
}

const VerifyBackend* BackendRegistry::Find(const std::string& name) const {
  for (const VerifyBackend* b : all_) {
    if (name == b->name()) return b;
  }
  return nullptr;
}

const VerifyBackend* BackendRegistry::Resolve(const std::string& requested,
                                              std::string* note) const {
  if (const char* env = std::getenv("ACCL_FORCE_BACKEND");
      env != nullptr && env[0] != '\0') {
    if (const VerifyBackend* b = Find(env)) {
      if (note) *note = std::string("pinned by ACCL_FORCE_BACKEND=") + env;
      return b;
    }
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "accl: ACCL_FORCE_BACKEND=%s is not a registered verify "
                   "backend (have: %s); ignoring the pin\n",
                   env, BackendNames().c_str());
    }
  }
  if (!requested.empty()) {
    const VerifyBackend* b = Find(requested);
    if (b != nullptr && note) *note = "requested via config";
    return b;  // nullptr for unknown/unsupported: the caller owns the error
  }
#if defined(ACCL_FORCE_BACKEND_DEFAULT)
  if (const VerifyBackend* b = Find(ACCL_FORCE_BACKEND_DEFAULT)) {
    if (note) {
      *note = std::string("build default ACCL_FORCE_BACKEND_DEFAULT=") +
              ACCL_FORCE_BACKEND_DEFAULT;
    }
    return b;
  }
#endif
  if (note) *note = "widest supported on host";
  return widest_;
}

std::string BackendRegistry::BackendNames() const {
  std::string names;
  for (const VerifyBackend* b : all_) {
    if (!names.empty()) names += ' ';
    names += b->name();
  }
  return names;
}

size_t VerifyBatch(const float* coords, const ObjectId* ids, size_t n,
                   const BatchQuery& bq, std::vector<ObjectId>* out,
                   uint64_t* dims_checked) {
  const VerifyBackend* b = BackendRegistry::Instance().Resolve("");
  b->NoteDispatch();
  return b->VerifyBatch(coords, ids, n, bq, out, dims_checked);
}

}  // namespace accl::kernels
