#include "kernels/verify_backend.h"

namespace accl::kernels {

size_t VerifyBackend::FilterSlotsDense(const float* le, const float* ge,
                                       float le_bound, float ge_bound,
                                       size_t n, uint32_t* out_slots) const {
  // Branchless compaction: write unconditionally, advance on survival.
  size_t count = 0;
  for (size_t s = 0; s < n; ++s) {
    out_slots[count] = static_cast<uint32_t>(s);
    count += (le[s] <= le_bound) & (ge[s] >= ge_bound);
  }
  return count;
}

size_t VerifyBackend::FilterSlotsSparse(const float* le, const float* ge,
                                        float le_bound, float ge_bound,
                                        const uint32_t* in, size_t n,
                                        uint32_t* out_slots) const {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = in[i];
    out_slots[kept] = s;
    kept += (le[s] <= le_bound) & (ge[s] >= ge_bound);
  }
  return kept;
}

}  // namespace accl::kernels
