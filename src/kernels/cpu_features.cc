#include "kernels/cpu_features.h"

namespace accl::kernels {

namespace {

CpuFeatures Probe() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults CPUID *and* (for AVX-class features)
  // XGETBV, so a kernel that does not save the wide register state makes
  // the feature read as absent — exactly the "can I actually run this
  // backend" question the registry needs answered.
  f.sse2 = __builtin_cpu_supports("sse2");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.avx512f = __builtin_cpu_supports("avx512f");
#endif
  return f;
}

}  // namespace

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures f = Probe();
  return f;
}

std::string CpuFeatureString(const CpuFeatures& f) {
  std::string s;
  if (f.sse2) s += "sse2";
  if (f.avx2) s += s.empty() ? "avx2" : " avx2";
  if (f.avx512f) s += s.empty() ? "avx512f" : " avx512f";
  return s.empty() ? "none" : s;
}

}  // namespace accl::kernels
