// AVX-512F verify backend: one 512-bit compare pair covers the whole
// 16-float chunk, and the fail mask comes back in a mask register —
// movemask and the OR tree disappear entirely. Compiled with -mavx512f
// per-file; reached only via MakeAvx512Backend after the CPUID probe.
//
// Chunk remains 16 floats, matching SSE2/AVX2, so first-fail positions and
// dims accounting are structurally identical; see verify_common.h.
#include <immintrin.h>

#include "kernels/backends.h"
#include "kernels/verify_common.h"

namespace accl::kernels {

namespace {

struct Avx512Probe {
  static constexpr size_t kChunk = 16;
  static inline size_t FirstFail(const float* o, const float* bg,
                                 const float* bl) {
    const __m512 ov = _mm512_loadu_ps(o);
    const __mmask16 m = static_cast<__mmask16>(
        _mm512_cmp_ps_mask(ov, _mm512_loadu_ps(bg), _CMP_GT_OQ) |
        _mm512_cmp_ps_mask(ov, _mm512_loadu_ps(bl), _CMP_LT_OQ));
    return m != 0 ? static_cast<size_t>(__builtin_ctz(m)) : kChunk;
  }
};

class Avx512Backend final : public VerifyBackend {
 public:
  const char* name() const override { return "avx512"; }
  uint32_t vector_width_floats() const override { return 16; }
  bool SupportedOnHost(const CpuFeatures& host) const override {
    return host.avx512f;
  }

  size_t VerifyBatch(const float* coords, const ObjectId* ids, size_t n,
                     const BatchQuery& bq, std::vector<ObjectId>* out,
                     uint64_t* dims_checked) const override {
    return detail::VerifyBatchImpl<Avx512Probe>(coords, ids, n, bq, out,
                                                dims_checked);
  }

  size_t FilterSlotsDense(const float* le, const float* ge, float le_bound,
                          float ge_bound, size_t n,
                          uint32_t* out_slots) const override {
    const __m512 leb = _mm512_set1_ps(le_bound);
    const __m512 geb = _mm512_set1_ps(ge_bound);
    // Compress-store writes the surviving lane indices contiguously in lane
    // order, which is exactly the ascending-slot contract.
    const __m512i lane = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15);
    size_t count = 0;
    size_t s = 0;
    for (; s + 16 <= n; s += 16) {
      const __mmask16 pass = static_cast<__mmask16>(
          _mm512_cmp_ps_mask(_mm512_loadu_ps(le + s), leb, _CMP_LE_OQ) &
          _mm512_cmp_ps_mask(_mm512_loadu_ps(ge + s), geb, _CMP_GE_OQ));
      const __m512i slots =
          _mm512_add_epi32(lane, _mm512_set1_epi32(static_cast<int>(s)));
      _mm512_mask_compressstoreu_epi32(out_slots + count, pass, slots);
      count += static_cast<size_t>(__builtin_popcount(pass));
    }
    for (; s < n; ++s) {
      out_slots[count] = static_cast<uint32_t>(s);
      count += (le[s] <= le_bound) & (ge[s] >= ge_bound);
    }
    return count;
  }
};

}  // namespace

std::unique_ptr<VerifyBackend> MakeAvx512Backend() {
  return std::make_unique<Avx512Backend>();
}

}  // namespace accl::kernels
