// Shared skeleton of the batched verification kernel.
//
// Every ISA variant is the same algorithm — 64-record blocks, a branch-free
// chunked fail probe per record, scalar tail for the floats past the last
// full chunk, early-exit dims accounting, bitmask-deferred id emission —
// differing only in how one chunk's "first failing float" is found. Keeping
// the skeleton in one template makes the parity contract structural: a
// backend cannot drift in blocking, ordering, or accounting, only in its
// Probe.
//
// Probe contract:
//   static constexpr size_t kChunk;   // floats examined per step (0 = none:
//                                     // the scalar tail handles everything)
//   static size_t FirstFail(const float* o, const float* bg, const float* bl);
//     // smallest k in [0, kChunk) with o[k] > bg[k] || o[k] < bl[k],
//     // or kChunk when the whole chunk passes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "api/types.h"
#include "geometry/predicates.h"

namespace accl::kernels::detail {

template <typename Probe>
size_t VerifyBatchImpl(const float* coords, const ObjectId* ids, size_t n,
                       const BatchQuery& bq, std::vector<ObjectId>* out,
                       uint64_t* dims_checked) {
  const Dim nd = bq.dims();
  const size_t stride = 2 * static_cast<size_t>(nd);
  const float* __restrict__ bg = bq.gt_bounds();
  const float* __restrict__ bl = bq.lt_bounds();
  uint64_t dims = 0;
  size_t matches = 0;
  for (size_t block = 0; block < n; block += 64) {
    const size_t bn = std::min<size_t>(64, n - block);
    uint64_t match_mask = 0;
    const float* __restrict__ o = coords + block * stride;
    for (size_t j = 0; j < bn; ++j, o += stride) {
      // Stay a few records ahead of the hardware prefetcher: most records
      // are rejected after one or two dimensions, so the sweep consumes
      // lines faster than a freshly started stream is predicted.
      __builtin_prefetch(o + 4 * stride);
      size_t k = 0;
      size_t fail = stride;
      if constexpr (Probe::kChunk > 0) {
        // Chunked sweep: the fail test is evaluated branch-free for the
        // whole chunk and reduced to the first failing float. No
        // data-dependent branching per dimension, so mixed fail depths
        // cost no mispredictions; the one branch per chunk ("this chunk
        // decided it") is overwhelmingly taken on selective queries.
        for (; k + Probe::kChunk <= stride; k += Probe::kChunk) {
          const size_t idx = Probe::FirstFail(o + k, bg + k, bl + k);
          if (idx != Probe::kChunk) {
            fail = k + idx;
            break;
          }
        }
      }
      if (fail == stride) {
        // Scalar tail: the (stride % kChunk) floats past the last full
        // chunk — also the whole record for the scalar backend.
        for (size_t t = k; t < stride; ++t) {
          if ((o[t] > bg[t]) | (o[t] < bl[t])) {
            fail = t;
            break;
          }
        }
      }
      if (fail == stride) {
        dims += nd;
        match_mask |= 1ull << j;
      } else {
        dims += fail / 2 + 1;  // logical reads: failing dimension + 1
      }
    }
    while (match_mask != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(match_mask));
      match_mask &= match_mask - 1;
      out->push_back(ids[block + j]);
      ++matches;
    }
  }
  *dims_checked += dims;
  return matches;
}

}  // namespace accl::kernels::detail
