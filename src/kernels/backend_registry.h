// Process-wide registry of verify backends.
//
// Built once, at first use: the constructor probes the host CPU
// (cpu_features.h) and registers every compiled-in backend the host can
// execute — always "scalar", then "sse2"/"avx2"/"avx512" as CPUID and the
// build allow. Selection is a pure function of (env, request, build
// default, host), so two indexes constructed with the same inputs always
// verify with the same kernel.
//
// Resolve precedence, strongest first:
//   1. ACCL_FORCE_BACKEND environment variable — operator pin, wins over
//      everything (CI's forced-scalar job rides on this). An unknown or
//      unsupported name warns once to stderr and falls through, so a stale
//      pin degrades loudly instead of crashing or silently lying.
//   2. The requested name (AdaptiveConfig::verify_backend). Unknown or
//      unsupported names return nullptr here — the caller owns the error
//      (ValidateOptions turns it into InvalidArgument before an engine
//      ever starts).
//   3. ACCL_FORCE_BACKEND_DEFAULT — a compile-time pin from the CMake
//      cache knob of the same name, for images built for known fleets.
//   4. Widest supported: highest vector_width_floats() among registered
//      backends. The common case; picks avx512 > avx2 > sse2 > scalar.
//
// The environment variable is re-read on every Resolve call (it is not
// latched at registry construction) so tests can setenv/unsetenv around
// index construction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kernels/verify_backend.h"

namespace accl::kernels {

class BackendRegistry {
 public:
  static const BackendRegistry& Instance();

  // Registered backend with the given name, or nullptr. Registered implies
  // compiled in AND executable on this host.
  const VerifyBackend* Find(const std::string& name) const;

  // Applies the precedence above. `requested` empty means "no preference".
  // Returns nullptr only when `requested` is non-empty and not registered;
  // with an empty request a backend is always found (scalar is always
  // registered). If `note` is non-null it receives a one-line description
  // of why this backend was chosen (for logs / bench metadata).
  const VerifyBackend* Resolve(const std::string& requested,
                               std::string* note = nullptr) const;

  const std::vector<const VerifyBackend*>& All() const { return all_; }
  const CpuFeatures& host() const { return host_; }

  // "scalar sse2 avx2 avx512" — for error messages.
  std::string BackendNames() const;

 private:
  BackendRegistry();

  CpuFeatures host_;
  std::vector<std::unique_ptr<VerifyBackend>> owned_;
  std::vector<const VerifyBackend*> all_;     // registration order
  const VerifyBackend* widest_ = nullptr;
};

// Registry-dispatched convenience mirroring the old geometry::VerifyBatch
// free function: verifies with the backend the registry resolves for an
// empty request (env pin respected). Callers on a hot path should resolve
// once and hold the pointer instead.
size_t VerifyBatch(const float* coords, const ObjectId* ids, size_t n,
                   const BatchQuery& bq, std::vector<ObjectId>* out,
                   uint64_t* dims_checked);

}  // namespace accl::kernels
