// Scalar verify backend — the portable reference every other backend must
// match bit-for-bit (match sets, ordering, dims accounting). Runs anywhere;
// the registry guarantees it is always registered, which is what makes
// ACCL_FORCE_BACKEND=scalar a valid pin on every machine CI ever lands on.
#include "kernels/backends.h"
#include "kernels/verify_common.h"

namespace accl::kernels {

namespace {

struct ScalarProbe {
  // No chunked sweep: VerifyBatchImpl's scalar tail — the per-float
  // early-exit loop — handles the whole record.
  static constexpr size_t kChunk = 0;
  static size_t FirstFail(const float*, const float*, const float*) {
    return 0;  // unreachable with kChunk == 0
  }
};

class ScalarBackend final : public VerifyBackend {
 public:
  const char* name() const override { return "scalar"; }
  uint32_t vector_width_floats() const override { return 1; }
  bool SupportedOnHost(const CpuFeatures&) const override { return true; }

  size_t VerifyBatch(const float* coords, const ObjectId* ids, size_t n,
                     const BatchQuery& bq, std::vector<ObjectId>* out,
                     uint64_t* dims_checked) const override {
    return detail::VerifyBatchImpl<ScalarProbe>(coords, ids, n, bq, out,
                                                dims_checked);
  }
};

}  // namespace

std::unique_ptr<VerifyBackend> MakeScalarBackend() {
  return std::make_unique<ScalarBackend>();
}

}  // namespace accl::kernels
