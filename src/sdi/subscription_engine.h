// Selective Dissemination of Information engine — the paper's motivating
// application (§1): a publish/subscribe notification system where
// subscriptions define range intervals over attributes and incoming events
// (offers) must be matched against the whole subscription database with low
// latency.
//
// The engine wraps the adaptive clustering index with an attribute schema,
// subscription lifecycle management, the two event kinds the paper
// describes (point events and range events), and running statistics.
//
// Scale-out (sharding): the subscription database can be partitioned across
// K independent AdaptiveIndex shards (EngineOptions::shards). Each
// subscription lives in exactly one shard, chosen by a pluggable
// partitioner; per-shard answers are merged deterministically (sorted by
// ObjectId), so the match sets are byte-identical to a single-shard
// engine's. Reads fan out concurrently across shards on the engine's
// thread pool; all per-shard work — including Execute's statistics updates
// and the adaptive reorganization it may trigger — runs behind that
// shard's mutex, so the reorganization logic itself is untouched by
// concurrency.
//
// Range-routed dispatch (ShardingPolicy::kRange): shards 0..K-2 own
// contiguous slices of the *fence dimension's* domain (dimension 0 by
// default; configurable, and switched online by the adaptive subsystem —
// see below), delimited by a sorted boundary array; the last shard is the
// *overflow* shard holding every subscription whose fence-dimension
// interval straddles a boundary. An event is dispatched only to the
// shards whose slice its box overlaps (two binary searches) plus the
// overflow shard — never broadcast — and because any spatial relation the
// engine supports implies interval overlap in every dimension, the routed
// match sets stay exact.
//
// Workload-adaptive routing (src/adapt/, EngineOptions::adaptive): a
// lock-cheap QueryPatternTracker samples per-dimension event/subscription
// interval histograms on the match and subscribe paths; every
// sample_window events a RoutingAdvisor compares the predicted routing
// selectivity of every candidate fence dimension (SelectivityAnalyzer)
// and, when another dimension is predicted switch_threshold× more
// selective, re-fences the engine on that dimension online — through the
// same epoch-snapshot + double-residency migration rebalancing uses, so
// match sets stay exact throughout. When the overflow shard stays hot
// under well-placed fences (sustained straddler pressure, fed by the
// rebalance planner's predicted_straddler_spill signal), the advisor
// splits it on a second dimension into pre-allocated sub-shards: a
// straddler whose split-dimension interval fits one split slice moves to
// that sub-shard, and events visit only the sub-shards their own
// split-dimension interval overlaps instead of one monolithic overflow.
//
// Epoch-published routing snapshots: the fence array, the shard handle
// table and a version number live in one immutable RoutingSnapshot behind
// a single atomic pointer. Matchers pin a reclamation epoch
// (exec/epoch.h), load the snapshot, and route the entire operation
// against that one consistent table — no routing lock, no engine meta
// lock. Rebalancing migrates subscriptions with a grace-period
// *double-residency* protocol: moving subscriptions are inserted at their
// destination first, the new snapshot is published, the old epoch drains,
// and only then are the source copies erased — so a match running at any
// instant of a migration sees every live subscription at least once (and
// at most twice, which an adjacent-unique pass over the ObjectId-sorted
// match set removes). Match sets are therefore byte-identical to the
// serial oracle *during* a rebalance, not just after it returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/adaptive_routing.h"
#include "api/batch.h"
#include "api/durability.h"
#include "api/schema.h"
#include "api/status.h"
#include "core/adaptive_index.h"
#include "exec/epoch.h"
#include "exec/thread_pool.h"
#include "util/summary.h"

namespace accl {

namespace durability {
class WriteAheadLog;
class Checkpointer;
class CheckpointStore;
struct EngineImage;
struct WalRecord;
}  // namespace durability

namespace adapt {
class QueryPatternTracker;
class RoutingAdvisor;
}  // namespace adapt

/// Identifier handed out for registered subscriptions.
using SubscriptionId = ObjectId;

/// How range events select subscriptions.
enum class MatchPolicy : uint8_t {
  /// Notify subscriptions whose ranges intersect the event's ranges — the
  /// paper's spatial range query ("consult the set of alternative offers
  /// that are close to their wishes").
  kIntersecting = 0,
  /// Notify only subscriptions whose ranges fully cover the event's ranges
  /// (the event satisfies every constraint of the subscription) — the
  /// enclosure query; point events degenerate to point-enclosing.
  kCovering,
};

/// How subscriptions are partitioned across shards.
enum class ShardingPolicy : uint8_t {
  /// Mix the subscription id through SplitMix64 and take it mod K. Spreads
  /// load evenly regardless of the subscription distribution.
  kHashId = 0,
  /// Partition the leading dimension's box center into K equal slices.
  /// Keeps spatially close subscriptions together, at the cost of possible
  /// load skew. Events are still broadcast (the center says nothing about
  /// extents, so no shard can be skipped).
  kLeadingDimension,
  /// Range partitioning with routed, non-broadcast event dispatch: shards
  /// 0..K-2 own contiguous slices of the fence dimension (dimension 0
  /// unless adaptive.fence_dim or the online advisor says otherwise), the
  /// last shard is the overflow shard for fence-straddling subscriptions.
  /// Requires K >= 2. Supports online boundary rebalancing
  /// (RebalanceOnce) and workload-adaptive routing (EngineOptions::
  /// adaptive).
  kRange,
};

/// Custom partitioner: maps (id, normalized subscription box, shard count)
/// to a shard. The result is taken mod the shard count. A default
/// (empty) function means "use `sharding`"; combining a partitioner with
/// ShardingPolicy::kRange is rejected by validation (the partitioner would
/// silently disable routing and rebalancing).
using ShardPartitionFn =
    std::function<uint32_t(SubscriptionId, const Box&, uint32_t)>;

/// An incoming publication.
struct Event {
  /// Point event: one value per attribute. Built via
  /// AttributeSchema::MakePoint or SubscriptionEngine::MakePointEvent.
  static Event Point(std::vector<float> normalized_point);
  /// Range event ("3 to 5 rooms, 600$-900$").
  static Event Range(Box normalized_box);

  bool is_point = true;
  Box box;  ///< degenerate for point events
};

/// Aggregate engine statistics.
struct EngineStats {
  uint64_t events_processed = 0;
  Summary matches_per_event;
  Summary verified_per_event;
  Summary match_latency_ms;
};

/// Tuning for the engine; forwards the index knobs.
struct EngineOptions {
  AdaptiveConfig index;  ///< nd overwritten from the schema
  MatchPolicy default_policy = MatchPolicy::kCovering;

  /// Number of independent index shards (K >= 1). 1 keeps the classic
  /// single-index engine, bit-for-bit.
  uint32_t shards = 1;
  /// Worker threads for MatchBatch's shard fan-out. 0 or 1 = the calling
  /// thread does everything (still deterministic, still correct) — zero is
  /// a documented valid value, not an error.
  uint32_t match_threads = 0;
  /// How subscriptions are assigned to shards (ignored when K == 1).
  ShardingPolicy sharding = ShardingPolicy::kHashId;
  /// Overrides `sharding` when set. Incompatible with kRange (validated).
  ShardPartitionFn partitioner;

  // ---- kRange knobs (ignored by the other policies) ----
  /// Initial interior boundaries: strictly ascending, size K-2 (the K-1
  /// range shards need K-2 interior fences; the implicit outer fences are
  /// ±infinity). Empty = uniform split of [0,1] into K-1 slices.
  std::vector<float> range_boundaries;
  /// Events between automatic load-imbalance checks; 0 = rebalance only on
  /// explicit RebalanceOnce()/SetRangeBoundaries() calls.
  uint32_t rebalance_period = 0;
  /// Auto-rebalance triggers when the hottest range shard's window load
  /// (resident subscriptions + events routed since the last rebalance)
  /// exceeds this multiple of the mean range-shard load. Must be > 0.
  double rebalance_trigger_ratio = 1.5;
  /// Auto-rebalance ignores imbalance until the total window load reaches
  /// this floor (tiny shards are cheap to visit; moving them is not).
  uint64_t rebalance_min_load = 512;
  /// Fence positions RebalanceOnce evaluates per move (>= 1). 1 reproduces
  /// the single-candidate gap-halving planner; larger values let the
  /// planner pick, among shed counts within ±25% of the exact halving
  /// count (so every candidate still roughly halves the load gap), the
  /// fence predicting the least straddler spill into the overflow shard.
  uint32_t rebalance_fence_candidates = 9;

  /// Workload-adaptive routing: online fence-dimension selection and
  /// overflow-shard splitting (kRange only; see api/adaptive_routing.h).
  AdaptiveRoutingOptions adaptive;
};

/// The subscription database and matcher.
///
/// Thread-safety contract (snapshot/epoch model):
///
///   - Match/MatchBatch never take the engine meta lock or any routing
///     lock. The routed read path is: pin a reclamation epoch (wait-free —
///     one CAS on a per-thread slot), load the current RoutingSnapshot
///     from one atomic pointer, route every event of the call against that
///     single consistent table, execute on the selected shards, unpin.
///     The only locks a match takes are the per-shard mutexes (required:
///     AdaptiveIndex::Execute is a logical read but a physical write — it
///     updates the adaptation statistics) and, once at the end, a
///     dedicated stats mutex. A match never blocks behind a rebalance; a
///     rebalance never blocks behind a match except for the bounded grace
///     period below.
///
///   - Subscribe/SubscribeBatch/Unsubscribe may be called concurrently
///     from any threads. kRange subscribes serialize against rebalances
///     (rebalance lock held from routing through owner-map publish);
///     Unsubscribe is lock-ordered so it may run concurrently with an
///     in-flight migration and still observe each subscription
///     all-or-nothing.
///
///   - RebalanceOnce/SetRangeBoundaries migrate with grace-period double
///     residency: (1) moving subscriptions are *inserted* at their
///     destination shard, (2) the new snapshot is published, (3) the epoch
///     manager waits until every reader pinned before the publish has
///     drained, (4) the stale source copies are erased (deferred source
///     cleanup via AdaptiveIndex::BulkErase). A reader on the old snapshot
///     finds every moving subscription at its source; a reader on the new
///     snapshot finds it at its destination; a reader whose route covers
///     both shards finds it twice and deduplicates during the
///     ObjectId-sorted merge. Match sets are therefore exact — identical
///     to a serial oracle over the live subscription set — at every
///     instant of a migration. Retired snapshots are reclaimed through the
///     epoch manager's deferred retire list.
///
///   - Determinism: for a deterministic call sequence the results are
///     byte-identical across shard/thread/boundary configurations
///     (concurrent *callers* race for shard-lock order like any concurrent
///     writers would). MatchBatchResult::routing_version is monotone per
///     caller.
class SubscriptionEngine {
 public:
  /// Validates user-supplied configuration: shard count >= 1, kRange needs
  /// K >= 2 and no custom partitioner, boundary arrays must have size K-2
  /// and be strictly ascending, trigger ratio > 0, a schema with >= 1
  /// attribute, and index knobs the structure can actually run with
  /// (division_factor >= 2, max_clusters >= 1). match_threads == 0 is
  /// valid (caller-thread execution).
  static Status ValidateOptions(const AttributeSchema& schema,
                                const EngineOptions& options);

  /// Validating factory: returns null and fills `*status` (when non-null)
  /// with the reason instead of aborting on invalid configuration.
  static std::unique_ptr<SubscriptionEngine> Create(AttributeSchema schema,
                                                    EngineOptions options,
                                                    Status* status = nullptr);

  /// Schema must be fully defined before constructing the engine. Invalid
  /// configuration aborts with the ValidateOptions message (use Create for
  /// a recoverable Status instead).
  explicit SubscriptionEngine(AttributeSchema schema,
                              EngineOptions options = {});
  ~SubscriptionEngine();

  const AttributeSchema& schema() const { return schema_; }

  /// Registers a subscription given by range predicates (unspecified
  /// attributes are unconstrained). Returns the new id, or kInvalidObject
  /// when a predicate is malformed.
  SubscriptionId Subscribe(const std::vector<AttributeRange>& ranges);

  /// Registers a pre-built normalized subscription box.
  SubscriptionId SubscribeBox(const Box& box);

  /// Registers boxes.size() subscriptions in one call; ids are assigned
  /// contiguously in box order and returned in `*out` (its previous
  /// contents are discarded) — observably identical to calling
  /// SubscribeBox in a loop, but the batch is grouped per target shard so
  /// each shard lock (and the id-allocation lock) is taken once instead
  /// of once per subscription.
  void SubscribeBatch(Span<const Box> boxes,
                      std::vector<SubscriptionId>* out);

  /// Removes a subscription. Returns false when unknown. Safe concurrently
  /// with an in-flight migration: a double-resident subscription is erased
  /// from both homes.
  bool Unsubscribe(SubscriptionId id);

  size_t subscription_count() const {
    return subscription_count_.load(std::memory_order_relaxed);
  }

  /// Matches an event against the database; appends notified subscription
  /// ids to `*out`. For broadcast policies the appended ids are in
  /// shard-major order (with one shard this is exactly the classic
  /// engine's order); for kRange they are sorted ascending by ObjectId and
  /// deduplicated (double-residency may surface a migrating subscription
  /// in two shards). Uses the default policy unless overridden.
  void Match(const Event& event, std::vector<SubscriptionId>* out);
  void Match(const Event& event, MatchPolicy policy,
             std::vector<SubscriptionId>* out);

  /// Matches a batch of events through the streamed shard-affine pipeline:
  /// per-shard CSR work queues (broadcast policies enqueue every event on
  /// every shard, kRange only on the shards the router selects, under one
  /// snapshot for the whole batch) are executed in fixed-size chunks by
  /// shard-affine pool workers, and each event is finalized (sorted,
  /// deduplicated, emitted) by whichever worker completes its last shard
  /// visit — there is no single-threaded merge barrier. `out->matches[e]`
  /// is sorted by ObjectId, duplicate-free, and byte-identical for any
  /// shard/thread/boundary configuration — including while a rebalance is
  /// in flight. Per-shard metrics land in `out->per_shard` (shard order),
  /// aggregated into `out->total`; `per_shard[s].events_routed` counts the
  /// events dispatched to shard s, every entry carries the
  /// `resident_subscriptions` gauge, and under kRange the entry named by
  /// `out->overflow_shard` carries the `overflow_subscriptions` pressure
  /// gauge (kNoOverflowShard for broadcast policies — explicitly absent,
  /// not silently zero). `out->routing_version` / `out->epoch` record the
  /// snapshot and epoch the batch ran under. Reusing one result object
  /// across batches is allocation-free at steady state (capacity-
  /// preserving Clear + engine-pooled pipeline scratch).
  void MatchBatch(Span<const Event> events, MatchBatchResult* out);
  void MatchBatch(Span<const Event> events, MatchPolicy policy,
                  MatchBatchResult* out);

  /// Streaming variant: instead of materializing a MatchBatchResult, each
  /// event's sorted, deduplicated match set is pushed to `sink` the moment
  /// that event's last shard visit completes — completion order is
  /// arbitrary and calls may come concurrently from several pool workers
  /// (see the MatchSink contract in api/batch.h). Emitted spans are
  /// byte-identical to what the materializing overload would have stored
  /// at the same event index. Engine statistics are recorded identically.
  void MatchBatch(Span<const Event> events, MatchSink* sink);
  void MatchBatch(Span<const Event> events, MatchPolicy policy,
                  MatchSink* sink);

  /// Convenience: builds a point event from attribute values. Returns
  /// false when values do not cover the schema exactly.
  bool MakePointEvent(const std::vector<AttributeValue>& values,
                      Event* out) const;

  /// Convenience: builds a range event from predicates.
  bool MakeRangeEvent(const std::vector<AttributeRange>& ranges,
                      Event* out) const;

  /// Snapshot of the running statistics (copies under the stats lock).
  EngineStats stats() const;
  void ResetStats();

  // ---- Shard introspection ----
  size_t shard_count() const { return shards_.size(); }

  /// The underlying index of shard `s` (diagnostics: cluster counts, reorg
  /// stats). Not synchronized — quiesce matching before deep inspection.
  const AdaptiveIndex& shard_index(size_t s) const {
    return *shards_[s]->index;
  }

  /// Back-compatible single-index accessor: shard 0's index (the only
  /// shard when K == 1).
  const AdaptiveIndex& index() const { return *shards_[0]->index; }

  /// Shard of a live subscription, or shard_count() when unknown. During a
  /// migration's double-residency window this reports the source (the
  /// destination becomes the owner when the source copy is cleaned up).
  size_t ShardOf(SubscriptionId id) const;

  /// Per-shard load snapshot.
  struct ShardInfo {
    size_t subscriptions;
    size_t clusters;
    uint64_t routed_events;  ///< lifetime events dispatched to this shard
  };
  std::vector<ShardInfo> GetShardInfos() const;

  // ---- Range routing & online rebalancing (kRange only) ----

  /// True when the engine routes events by leading-dimension range.
  bool range_routed() const { return range_routed_; }

  /// Copy of the current snapshot's interior boundary array (empty for
  /// other policies). Taken under an epoch pin; lock-free.
  std::vector<float> GetRangeBoundaries() const;

  /// Version of the current routing snapshot; bumped on every publish.
  uint64_t routing_version() const;

  /// Installs `bounds` (strictly ascending, size shard_count()-2) as the
  /// boundary array and migrates every subscription whose target shard
  /// changed — including draining overflow subscriptions that no longer
  /// straddle. Returns false (and changes nothing) when the engine is not
  /// range-routed or the array is malformed.
  bool SetRangeBoundaries(const std::vector<float>& bounds);

  /// One forced load-balancing step: picks the range shard with the
  /// highest window load, moves its boundary toward it so roughly half of
  /// its subscriptions re-route to its lighter neighbor, and migrates
  /// them (double-residency protocol; see the class comment). Returns
  /// true when a boundary moved. No-op (false) for non-range engines,
  /// K < 3, or when no productive move exists.
  bool RebalanceOnce();

  /// Lifetime rebalancing counters.
  struct RebalanceStats {
    uint64_t boundary_moves = 0;
    uint64_t subscriptions_migrated = 0;
    /// Straddler spill the rebalance planner predicted its fence moves
    /// would send to the overflow shard (donor residents that straddle the
    /// *new* fence instead of moving cleanly to the receiver). Lifetime
    /// sum and last move's value. Acted on twice: the planner's
    /// overflow-aware fence placement avoids high-spill fences, and the
    /// adaptive advisor folds the last value into the straddler-pressure
    /// signal that triggers an overflow split.
    uint64_t predicted_straddler_spill = 0;
    uint64_t last_predicted_straddler_spill = 0;
    /// Online fence-dimension switches executed (advisor or manual).
    uint64_t dimension_switches = 0;
    /// Overflow-shard split activations (advisor or manual), and the
    /// straddlers those activations moved out of the catch-all shard into
    /// split sub-shards.
    uint64_t overflow_splits = 0;
    uint64_t straddlers_split = 0;
  };
  /// Thin atomic snapshot read of the registry-backed rebalance counters
  /// (safe from any thread, racy-exact like every obs::Counter read).
  RebalanceStats rebalance_stats() const;

  /// The load signal the rebalancer acts on, plus overflow pressure:
  /// per-range-shard window loads (residents + events routed since the
  /// last rebalance), the overflow shard's resident count, and the
  /// straddler fraction (overflow residents / all residents). Empty for
  /// non-range engines.
  struct RebalanceLoadSnapshot {
    std::vector<uint64_t> range_loads;
    uint64_t overflow_subscriptions = 0;
    uint64_t total_subscriptions = 0;
    double straddler_fraction = 0.0;
  };
  RebalanceLoadSnapshot GetRebalanceLoadSnapshot() const;

  // ---- Adaptive routing (kRange only; see api/adaptive_routing.h) ----

  /// Fence dimension of the current routing snapshot (0 for non-range
  /// engines). Taken under an epoch pin; lock-free.
  uint32_t routing_dimension() const;

  /// Split dimension of the current snapshot, or -1 when the overflow
  /// split is inactive.
  int32_t overflow_split_dimension() const;

  /// Sub-shards physically reserved for overflow splitting
  /// (adaptive.overflow_split_shards; 0 = splitting unavailable).
  uint32_t overflow_split_capacity() const { return num_split_shards_; }

  /// Manually re-fences routing on `dim` (the advisor's switch, forced):
  /// the interior fence positions are retained, every resident the new
  /// dimension routes elsewhere is migrated (double-residency protocol),
  /// and an active overflow split is cleared (the straddler set changed).
  /// Returns false for non-range engines or a dimension outside the
  /// schema; returns true without a migration when `dim` is already the
  /// fence dimension.
  bool SetRoutingDimension(uint32_t dim);

  /// Manually activates (or re-fences) the overflow split on `dim` with
  /// the given strictly ascending interior fences (`fences.size() + 1`
  /// split slices; at most overflow_split_capacity()). Catch-all
  /// straddlers whose `dim` interval fits one split slice migrate into
  /// that sub-shard. Returns false for non-range engines, zero split
  /// capacity, a dimension outside the schema, or a malformed fence array.
  bool SetOverflowSplit(uint32_t dim, const std::vector<float>& fences);

  /// Deactivates the overflow split; sub-shard residents migrate back to
  /// the catch-all shard. Returns false for non-range engines (a no-op
  /// true when no split was active).
  bool ClearOverflowSplit();

  /// Point-in-time view of the adaptive subsystem (valid — with
  /// enabled=false and live routing fields — even when the advisor is
  /// off).
  AdaptiveRoutingStats adaptive_stats() const;

  // ---- Epoch subsystem introspection ----

  /// Blocks until every in-flight match pinned before this call has
  /// drained, then reclaims retired routing snapshots. Useful for tests
  /// and orderly shutdown; never required for correctness.
  void SynchronizeEpochs();

  /// Counters of the engine's epoch manager (pins, grace periods, retired
  /// and reclaimed snapshots).
  exec::EpochManagerStats epoch_stats() const { return epoch_.stats(); }

  // ---- Observability (src/obs/) ----

  /// The engine-scoped metrics registry. Every instrumented component
  /// wired into this engine (epoch manager, WAL, checkpointer, log
  /// shipper) registers its metrics here under the accl_* naming scheme;
  /// the engine's own pipeline/rebalance/adaptive counters are
  /// registry-owned. Components attach on wiring (AttachDurability /
  /// SetCheckpointer / LogShipper::Create), so a volatile engine's
  /// registry simply has no accl_wal_*/accl_ckpt_*/accl_repl_* entries.
  obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Prometheus text exposition of the engine registry plus the
  /// process-default registry (kernel dispatch counters, heap-alloc
  /// gauge). Refreshes the point-in-time gauges (subscriptions, heap
  /// allocs) first.
  std::string DumpMetrics() const;

  /// The same combined metric set as one JSON object keyed by metric
  /// name (counters/gauges as numbers, histograms as
  /// {"count","sum","max","p50","p90","p99"}); embedded verbatim in
  /// BENCH_parallel.json.
  std::string DumpMetricsJson() const;

  /// Chrome trace-event JSON from the process-wide flight recorder
  /// (loadable in Perfetto / chrome://tracing). Call with tracing
  /// disabled and matchers quiesced — a completed MatchBatch's
  /// countdown/pool synchronization orders every worker's ring writes
  /// before the caller's drain.
  std::string DumpTrace() const;

  /// Toggles the process-wide flight recorder (one relaxed atomic; the
  /// disabled hot path is a single predicted branch per site).
  static void SetTracing(bool on);
  static bool tracing_enabled();

  // ---- Durability (src/durability/) ----

  /// Attaches a write-ahead log: every later Subscribe/SubscribeBatch/
  /// Unsubscribe appends its record to `wal` and is acknowledged only
  /// once the record is durable (group commit; see durability/wal.h). On
  /// log failure the mutation is refused (kInvalidObject / empty id list /
  /// false) and never applied. Call while quiesced; `wal` is not owned
  /// and must outlive every later mutation.
  void AttachDurability(durability::WriteAheadLog* wal);

  /// Registers the checkpointer notified after every acknowledged
  /// mutation (drives its every-N-mutations scheduling). Not owned.
  void SetCheckpointer(durability::Checkpointer* cp);

  durability::WriteAheadLog* wal() const { return wal_; }

  /// Captures a checkpointable image: every live subscription (id + box),
  /// the routing fences/version, the id allocator, and the WAL applied
  /// low-water the image covers. Fuzzy with respect to concurrent
  /// mutations — it runs under an epoch pin and per-shard locks, so
  /// MatchBatch never stalls; a mutation racing the capture may or may
  /// not be included, and replaying the WAL tail past image.lsn
  /// (idempotently) reconstructs the exact engine either way. For kRange
  /// the capture additionally holds the rebalance lock so a migration's
  /// double-residency window cannot hide a subscription from the scan
  /// (each id is captured exactly once).
  void CaptureDurableImage(durability::EngineImage* out) const;

  /// Crash recovery factory: loads the newest valid checkpoint from
  /// `checkpoints` (null/absent/corrupt degrades to an empty image),
  /// rebuilds the shards through the grouped BulkInsert fast path, then
  /// replays `wal`'s surviving tail idempotently — records at or below
  /// the checkpoint LSN are gone (truncated) or skipped, and a subscribe
  /// whose id is already live (a fuzzy checkpoint captured an effect past
  /// its own LSN) is deduplicated by id. Returns nullptr with `*status`
  /// filled on invalid configuration or a checkpoint/schema dimensionality
  /// mismatch. The recovered engine is not yet attached to the WAL; see
  /// durability::OpenDurable for the fully wired path.
  static std::unique_ptr<SubscriptionEngine> Recover(
      AttributeSchema schema, EngineOptions options,
      durability::CheckpointStore* checkpoints, durability::WriteAheadLog* wal,
      Status* status = nullptr, RecoveryStats* recovery = nullptr);

  // ---- Replication (durability/shipping.h) ----

  /// A follower serves read-only traffic (Match/MatchBatch) while a log
  /// shipper replays the primary's records into it; every local mutation
  /// entry point refuses before allocating an id, so follower ids can only
  /// ever come from the replicated log. Promotion flips the role back —
  /// the engine object is reused warm, nothing is rebuilt.
  enum class EngineRole : uint8_t { kPrimary, kFollower };

  EngineRole role() const { return role_.load(std::memory_order_acquire); }
  void SetRole(EngineRole role) {
    role_.store(role, std::memory_order_release);
  }

  /// Applies one replicated (or replayed) WAL record with the same
  /// idempotence rules Recover uses: subscribes deduplicate by live id,
  /// unknown unsubscribes are no-ops, and the id allocator is bumped past
  /// every id the record names. This is the follower's apply path (the log
  /// shipper calls it in LSN order) and the body of recovery's replay.
  /// `rs` (not null) accumulates scanned/applied/skipped counts.
  void ApplyReplicated(const durability::WalRecord& rec, RecoveryStats* rs);

 private:
  struct Shard {
    explicit Shard(const AdaptiveConfig& cfg)
        : index(std::make_unique<AdaptiveIndex>(cfg)) {}
    std::mutex mu;  ///< serializes every index access (reads mutate stats)
    std::unique_ptr<AdaptiveIndex> index;
    /// Lifetime events dispatched here (relaxed; observability + the
    /// rebalancer's load signal).
    std::atomic<uint64_t> routed{0};
    /// Resident subscriptions (relaxed mirror of index->size(), readable
    /// without the shard lock; double-resident copies count once, at the
    /// owner).
    std::atomic<size_t> subs{0};
  };

  /// The routing function's parameters: which dimension the fences cut,
  /// where they sit, and (when active) the overflow split's dimension and
  /// fences. Value-copied into plans by the publishers, embedded immutably
  /// in the published snapshot.
  struct RoutingPlan {
    uint32_t dim = 0;           ///< fence dimension (kRange)
    std::vector<float> bounds;  ///< sorted interior fences (kRange)
    /// Overflow split: -1 = inactive (all straddlers in the catch-all
    /// shard). When >= 0, a straddler whose split_dim interval fits one
    /// split slice lives in sub-shard num_range_shards_ + slice.
    int32_t split_dim = -1;
    std::vector<float> split_bounds;  ///< sorted interior split fences
  };

  /// Immutable routing state, published whole behind `snapshot_`. Readers
  /// obtain it under an epoch pin and never see it change; superseded
  /// snapshots are retired through the epoch manager.
  struct RoutingSnapshot {
    RoutingPlan plan;
    uint64_t version = 0;
    std::vector<Shard*> shards;   ///< handle table (Shard storage is stable)
  };

  /// Shard choice for one subscription. `plan` is only read by kRange
  /// (callers pass the routing snapshot they routed the rest of the
  /// operation with).
  uint32_t ShardFor(SubscriptionId id, const Box& box,
                    const RoutingPlan& plan) const;
  /// kRange home of a box under `plan`: its slice's shard; a straddler
  /// goes to the sub-shard its split_dim interval fits (split active), or
  /// the catch-all overflow shard. B is Box or BoxView (defined in the
  /// .cc; every instantiation lives there).
  template <typename B>
  uint32_t RangeShardFor(const RoutingPlan& plan, const B& box) const;
  /// Shards an event must visit under `plan`: the slice span of its
  /// fence-dimension interval, the sub-shards its split_dim interval
  /// overlaps (split active), and the catch-all shard — ascending.
  void RouteEvent(const RoutingPlan& plan, const Box& box,
                  std::vector<uint32_t>* out) const;

  /// Publisher-side snapshot access; caller holds rebalance_mu_ (the only
  /// mutator), so a plain load is race-free.
  const RoutingSnapshot* SnapshotUnderRebalanceLock() const {
    return snapshot_.load(std::memory_order_acquire);
  }
  /// Allocates and publishes a snapshot with `plan`, retiring the old
  /// one through the epoch manager. Caller holds rebalance_mu_.
  void PublishSnapshot(RoutingPlan plan);

  static Relation RelationFor(const Event& event, MatchPolicy policy);
  void RecordEvent(size_t matches, size_t verified, double latency_ms);

  // ---- Streamed batch pipeline (see MatchBatchImpl in the .cc) ----

  /// Reusable, engine-pooled per-batch pipeline state: the CSR queues, the
  /// per-event countdowns/ready-stack, chunk output buffers, and worker
  /// gather buffers. Defined in the .cc; pooled so concurrent MatchBatch
  /// callers each get their own while capacity survives across batches.
  struct PipelineScratch;

  /// Shared body of the four MatchBatch overloads. Exactly one of
  /// `out`/`sink` is non-null: `out` materializes per-event matches,
  /// `sink` streams them (metrics then accumulate into pooled scratch).
  void MatchBatchImpl(Span<const Event> events, MatchPolicy policy,
                      MatchBatchResult* out, MatchSink* sink);
  /// One pipeline worker: claims shard-queue chunks (shard-affine, with
  /// stealing), executes them under the shard mutex, counts down the
  /// per-event remaining-visit counters, and finalizes events whose last
  /// visit completed. Runs on pool workers and the calling thread.
  void RunPipelineWorker(size_t worker_id, PipelineScratch& ps,
                         const RoutingSnapshot* snap, Span<const Event> events,
                         MatchPolicy policy, MatchBatchResult* res,
                         MatchSink* sink);
  std::unique_ptr<PipelineScratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<PipelineScratch> s);

  /// Non-durable mutation bodies: the routing + shard insert/erase +
  /// owner-map bookkeeping the public entry points run after (or instead
  /// of) the WAL round trip.
  void ApplySubscribe(SubscriptionId id, const Box& box);
  void ApplySubscribeBatch(SubscriptionId first, Span<const Box> boxes);
  bool ApplyUnsubscribe(SubscriptionId id);
  /// Recovery-only bulk restore: inserts the (id, box) pairs — ids given,
  /// not allocated — grouped per target shard via BulkInsert, and bumps
  /// next_id_ past the highest id seen. `coords` is ids.size()*2*nd
  /// floats. Single-threaded use (the engine is not yet published).
  void RestoreSubscriptions(Span<const SubscriptionId> ids,
                            const float* coords);
  void NotifyCheckpointer(uint64_t mutations);

  /// Auto-rebalance hook, called after every match entry point (with no
  /// epoch pinned: the grace-period wait inside would otherwise deadlock
  /// on the caller's own pin).
  void MaybeAutoRebalance(uint64_t events);
  /// One boundary move; caller holds rebalance_mu_. `force` skips the
  /// trigger-ratio/min-load gate.
  bool RebalanceLocked(bool force);
  /// Double-residency migration: inserts re-routed subscriptions at their
  /// destinations, publishes `plan`, waits out the grace period, and
  /// erases the stale source copies. Caller holds rebalance_mu_. Returns
  /// the number of subscriptions migrated.
  size_t ApplyRoutingLocked(RoutingPlan plan,
                            const std::vector<uint32_t>& scan_shards);

  /// Adaptive-evaluation hook, called after every match entry point (with
  /// no epoch pinned — an applied decision's grace-period wait would
  /// otherwise deadlock on the caller's own pin).
  void MaybeAutoAdapt(uint64_t events);
  /// One advisor window: snapshot the tracker, evaluate, apply at most one
  /// routing change. Caller holds rebalance_mu_. Returns true when a
  /// change was applied.
  bool EvaluateAdaptiveLocked();
  /// All shard indices, and the overflow family (sub-shards + catch-all):
  /// the migration scan sets the adaptive publishers use.
  std::vector<uint32_t> AllShardIds() const;
  std::vector<uint32_t> OverflowShardIds() const;

  /// Registry-owned handles for the engine's own metrics (pipeline,
  /// rebalance, adaptive, gauges); defined in the .cc.
  struct EngineObs;
  /// Re-computes the point-in-time gauges (subscription count, heap
  /// allocs) before a metrics export.
  void RefreshGaugesForDump() const;

  AttributeSchema schema_;
  EngineOptions options_;
  /// Engine-scoped metrics plane. Declared before every instrumented
  /// member (and before epoch_, whose AttachMetrics registers into it)
  /// so the registry is destroyed last.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<EngineObs> obs_;
  bool range_routed_ = false;
  /// kRange shard layout: shards 0..num_range_shards_-1 are the range
  /// slices, the next num_split_shards_ are overflow sub-shards (idle
  /// until a split activates), and the last shard is the catch-all
  /// overflow. Both are 0 for non-range engines (every shard is plain).
  uint32_t num_range_shards_ = 0;
  uint32_t num_split_shards_ = 0;
  /// Durability hooks; null = volatile engine (the default). Set by
  /// AttachDurability/SetCheckpointer, read by the mutation entry points.
  durability::WriteAheadLog* wal_ = nullptr;
  durability::Checkpointer* checkpointer_ = nullptr;
  /// Replication role; mutation entry points refuse on a follower before
  /// allocating an id. Atomic so Promote's flip needs no mutation lock.
  std::atomic<EngineRole> role_{EngineRole::kPrimary};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<exec::ThreadPool> pool_;  ///< null when match_threads <= 1

  /// Current routing snapshot; swapped only under rebalance_mu_, read by
  /// matchers under an epoch pin. Never null after construction.
  std::atomic<const RoutingSnapshot*> snapshot_{nullptr};
  /// Reclamation epochs for snapshot readers (mutable: pinning is a
  /// logically-const read).
  mutable exec::EpochManager epoch_;

  /// Serializes rebalances (the whole double-residency protocol runs under
  /// it) and kRange subscribes (held from routing through owner-map
  /// publish): a boundary change is therefore ordered strictly before or
  /// after every subscribe, so it either routes the new subscription
  /// itself or its migration scan sees the insert — a subscription can
  /// never be stranded in a shard the new table doesn't route to.
  mutable std::mutex rebalance_mu_;
  /// Auto-rebalance in-flight flag (mutex try_lock may fail spuriously,
  /// which would make deterministic replays skip triggers at random).
  std::atomic<bool> rebalance_inflight_{false};
  /// Per-shard routed-counter snapshot at the last rebalance; the window
  /// load is routed - routed_at_reset_. Guarded by rebalance_mu_.
  std::vector<uint64_t> routed_at_reset_;
  std::atomic<uint64_t> events_since_check_{0};

  /// Adaptive routing state. Tracker and advisor exist only when
  /// options_.adaptive.enabled; the manual entry points
  /// (SetRoutingDimension/SetOverflowSplit) work without them. The advisor
  /// is only ever called under rebalance_mu_.
  std::unique_ptr<adapt::QueryPatternTracker> tracker_;
  std::unique_ptr<adapt::RoutingAdvisor> advisor_;
  /// Same deterministic-skip discipline as rebalance_inflight_.
  std::atomic<bool> adapt_inflight_{false};
  std::atomic<uint64_t> adapt_events_since_window_{0};
  /// Most recent advisor window's per-dimension estimates; its own tiny
  /// lock so adaptive_stats() never waits behind a migration.
  mutable std::mutex adapt_estimates_mu_;
  std::vector<DimensionEstimate> last_estimates_;

  /// Guards next_id_, shard_of_, second_home_ — never taken by
  /// Match/MatchBatch.
  mutable std::mutex meta_mu_;
  SubscriptionId next_id_ = 0;
  /// Owner shard of each live subscription (needed by Unsubscribe for
  /// custom/spatial partitioners whose input box is long gone, and kept
  /// exact across migrations).
  std::unordered_map<SubscriptionId, uint32_t> shard_of_;
  /// Second residency during migration: id -> destination shard, present
  /// exactly while a copy lives in both shards. Unsubscribe erases both;
  /// the migration's cleanup pass claims ownership by removing the entry.
  std::unordered_map<SubscriptionId, uint32_t> second_home_;
  std::atomic<size_t> subscription_count_{0};

  /// Guards stats_ only (its own lock so the match path never contends
  /// with id allocation or ownership updates). The batch path holds it
  /// O(1) per batch: per-event values are folded into local Summaries off
  /// the lock and merged/bulk-added in one step.
  mutable std::mutex stats_mu_;
  EngineStats stats_;

  /// Freelist of pipeline scratch objects (capacity-preserving reuse
  /// across batches; one per concurrent MatchBatch caller at peak).
  mutable std::mutex scratch_pool_mu_;
  std::vector<std::unique_ptr<PipelineScratch>> scratch_pool_;
};

}  // namespace accl
