// Selective Dissemination of Information engine — the paper's motivating
// application (§1): a publish/subscribe notification system where
// subscriptions define range intervals over attributes and incoming events
// (offers) must be matched against the whole subscription database with low
// latency.
//
// The engine wraps the adaptive clustering index with an attribute schema,
// subscription lifecycle management, the two event kinds the paper
// describes (point events and range events), and running statistics.
//
// Scale-out (sharding): the subscription database can be partitioned across
// K independent AdaptiveIndex shards (EngineOptions::shards). Each
// subscription lives in exactly one shard, chosen by a pluggable
// partitioner; per-shard answers are merged deterministically (sorted by
// ObjectId), so the match sets are byte-identical to a single-shard
// engine's. Reads fan out concurrently across shards on the engine's
// thread pool; all per-shard work — including Execute's statistics updates
// and the adaptive reorganization it may trigger — runs behind that
// shard's mutex, so the reorganization logic itself is untouched by
// concurrency.
//
// Range-routed dispatch (ShardingPolicy::kRange): shards 0..K-2 own
// contiguous slices of the leading dimension's domain, delimited by a
// sorted boundary array; shard K-1 is the *overflow* shard holding every
// subscription whose leading-dimension interval straddles a boundary. An
// event is dispatched only to the shards whose slice its box overlaps
// (two binary searches) plus the overflow shard — never broadcast — and
// because any spatial relation the engine supports implies interval
// overlap in every dimension, the routed match sets stay exact. Online
// rebalancing (RebalanceOnce / automatic via rebalance_period) moves a
// boundary toward the hottest shard and migrates the affected
// subscriptions between shards under the existing per-shard locks, so
// matching on untouched shards never blocks behind a reorganization.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/batch.h"
#include "api/schema.h"
#include "core/adaptive_index.h"
#include "exec/thread_pool.h"
#include "util/summary.h"

namespace accl {

/// Identifier handed out for registered subscriptions.
using SubscriptionId = ObjectId;

/// How range events select subscriptions.
enum class MatchPolicy : uint8_t {
  /// Notify subscriptions whose ranges intersect the event's ranges — the
  /// paper's spatial range query ("consult the set of alternative offers
  /// that are close to their wishes").
  kIntersecting = 0,
  /// Notify only subscriptions whose ranges fully cover the event's ranges
  /// (the event satisfies every constraint of the subscription) — the
  /// enclosure query; point events degenerate to point-enclosing.
  kCovering,
};

/// How subscriptions are partitioned across shards.
enum class ShardingPolicy : uint8_t {
  /// Mix the subscription id through SplitMix64 and take it mod K. Spreads
  /// load evenly regardless of the subscription distribution.
  kHashId = 0,
  /// Partition the leading dimension's box center into K equal slices.
  /// Keeps spatially close subscriptions together, at the cost of possible
  /// load skew. Events are still broadcast (the center says nothing about
  /// extents, so no shard can be skipped).
  kLeadingDimension,
  /// Range partitioning with routed, non-broadcast event dispatch: shards
  /// 0..K-2 own contiguous leading-dimension slices, shard K-1 is the
  /// overflow shard for boundary-straddling subscriptions. Requires K >= 2.
  /// Supports online boundary rebalancing; see RebalanceOnce.
  kRange,
};

/// Custom partitioner: maps (id, normalized subscription box, shard count)
/// to a shard. The result is taken mod the shard count.
using ShardPartitionFn =
    std::function<uint32_t(SubscriptionId, const Box&, uint32_t)>;

/// An incoming publication.
struct Event {
  /// Point event: one value per attribute. Built via
  /// AttributeSchema::MakePoint or SubscriptionEngine::MakePointEvent.
  static Event Point(std::vector<float> normalized_point);
  /// Range event ("3 to 5 rooms, 600$-900$").
  static Event Range(Box normalized_box);

  bool is_point = true;
  Box box;  ///< degenerate for point events
};

/// Aggregate engine statistics.
struct EngineStats {
  uint64_t events_processed = 0;
  Summary matches_per_event;
  Summary verified_per_event;
  Summary match_latency_ms;
};

/// Tuning for the engine; forwards the index knobs.
struct EngineOptions {
  AdaptiveConfig index;  ///< nd overwritten from the schema
  MatchPolicy default_policy = MatchPolicy::kCovering;

  /// Number of independent index shards (K >= 1). 1 keeps the classic
  /// single-index engine, bit-for-bit.
  uint32_t shards = 1;
  /// Worker threads for MatchBatch's shard fan-out. 0 or 1 = the calling
  /// thread does everything (still deterministic, still correct).
  uint32_t match_threads = 0;
  /// How subscriptions are assigned to shards (ignored when K == 1).
  ShardingPolicy sharding = ShardingPolicy::kHashId;
  /// Overrides `sharding` when set.
  ShardPartitionFn partitioner;

  // ---- kRange knobs (ignored by the other policies) ----
  /// Initial interior boundaries: strictly ascending, size K-2 (the K-1
  /// range shards need K-2 interior fences; the implicit outer fences are
  /// ±infinity). Empty = uniform split of [0,1] into K-1 slices.
  std::vector<float> range_boundaries;
  /// Events between automatic load-imbalance checks; 0 = rebalance only on
  /// explicit RebalanceOnce()/SetRangeBoundaries() calls.
  uint32_t rebalance_period = 0;
  /// Auto-rebalance triggers when the hottest range shard's window load
  /// (resident subscriptions + events routed since the last rebalance)
  /// exceeds this multiple of the mean range-shard load.
  double rebalance_trigger_ratio = 1.5;
  /// Auto-rebalance ignores imbalance until the total window load reaches
  /// this floor (tiny shards are cheap to visit; moving them is not).
  uint64_t rebalance_min_load = 512;
};

/// The subscription database and matcher.
///
/// Thread safety: Subscribe/Unsubscribe/Match/MatchBatch/SubscribeBatch and
/// the rebalance entry points may be called concurrently from any threads;
/// shard state is guarded by per-shard mutexes, the routing table by a
/// routing mutex, and engine bookkeeping by an engine mutex. Determinism is
/// only guaranteed for a deterministic call sequence (concurrent *callers*
/// race for lock order like any concurrent writers would). A match running
/// concurrently with a rebalance may route with the pre-move boundary table
/// and miss subscriptions mid-migration — the same transient window a match
/// concurrent with Unsubscribe has always had; every Match/MatchBatch call
/// that *starts* after a rebalance call returns is exact. (Epoch-based
/// snapshot reads that close this window are a ROADMAP item.)
class SubscriptionEngine {
 public:
  /// Schema must be fully defined before constructing the engine.
  explicit SubscriptionEngine(AttributeSchema schema,
                              EngineOptions options = {});

  const AttributeSchema& schema() const { return schema_; }

  /// Registers a subscription given by range predicates (unspecified
  /// attributes are unconstrained). Returns the new id, or kInvalidObject
  /// when a predicate is malformed.
  SubscriptionId Subscribe(const std::vector<AttributeRange>& ranges);

  /// Registers a pre-built normalized subscription box.
  SubscriptionId SubscribeBox(const Box& box);

  /// Registers boxes.size() subscriptions in one call; ids are assigned
  /// contiguously in box order and returned in `*out` (its previous
  /// contents are discarded) — observably identical to calling
  /// SubscribeBox in a loop, but the batch is grouped per target shard so
  /// each shard lock (and the id-allocation lock) is taken once instead
  /// of once per subscription.
  void SubscribeBatch(Span<const Box> boxes,
                      std::vector<SubscriptionId>* out);

  /// Removes a subscription. Returns false when unknown.
  bool Unsubscribe(SubscriptionId id);

  size_t subscription_count() const {
    return subscription_count_.load(std::memory_order_relaxed);
  }

  /// Matches an event against the database; appends notified subscription
  /// ids to `*out` (shard-major order; with one shard this is exactly the
  /// classic engine's order). Uses the default policy unless overridden.
  void Match(const Event& event, std::vector<SubscriptionId>* out);
  void Match(const Event& event, MatchPolicy policy,
             std::vector<SubscriptionId>* out);

  /// Matches a batch of events, fanning the batch across shards on the
  /// engine's thread pool — per-shard work queues: broadcast policies
  /// enqueue every event on every shard, kRange only on the shards the
  /// router selects. `out->matches[e]` is sorted by ObjectId and
  /// byte-identical for any shard/thread/boundary configuration. Per-shard
  /// metrics land in `out->per_shard` (shard order), aggregated into
  /// `out->total`; `per_shard[s].events_routed` counts the events
  /// dispatched to shard s.
  void MatchBatch(Span<const Event> events, MatchBatchResult* out);
  void MatchBatch(Span<const Event> events, MatchPolicy policy,
                  MatchBatchResult* out);

  /// Convenience: builds a point event from attribute values. Returns
  /// false when values do not cover the schema exactly.
  bool MakePointEvent(const std::vector<AttributeValue>& values,
                      Event* out) const;

  /// Convenience: builds a range event from predicates.
  bool MakeRangeEvent(const std::vector<AttributeRange>& ranges,
                      Event* out) const;

  /// Snapshot of the running statistics (copies under the stats lock).
  EngineStats stats() const;
  void ResetStats();

  // ---- Shard introspection ----
  size_t shard_count() const { return shards_.size(); }

  /// The underlying index of shard `s` (diagnostics: cluster counts, reorg
  /// stats). Not synchronized — quiesce matching before deep inspection.
  const AdaptiveIndex& shard_index(size_t s) const {
    return *shards_[s]->index;
  }

  /// Back-compatible single-index accessor: shard 0's index (the only
  /// shard when K == 1).
  const AdaptiveIndex& index() const { return *shards_[0]->index; }

  /// Shard of a live subscription, or shard_count() when unknown.
  size_t ShardOf(SubscriptionId id) const;

  /// Per-shard load snapshot.
  struct ShardInfo {
    size_t subscriptions;
    size_t clusters;
    uint64_t routed_events;  ///< lifetime events dispatched to this shard
  };
  std::vector<ShardInfo> GetShardInfos() const;

  // ---- Range routing & online rebalancing (kRange only) ----

  /// True when the engine routes events by leading-dimension range.
  bool range_routed() const { return range_routed_; }

  /// Snapshot of the interior boundary array (empty for other policies).
  std::vector<float> GetRangeBoundaries() const;

  /// Monotonic counter bumped on every boundary-table change.
  uint64_t routing_version() const;

  /// Installs `bounds` (strictly ascending, size shard_count()-2) as the
  /// boundary array and migrates every subscription whose target shard
  /// changed — including draining overflow subscriptions that no longer
  /// straddle. Returns false (and changes nothing) when the engine is not
  /// range-routed or the array is malformed.
  bool SetRangeBoundaries(const std::vector<float>& bounds);

  /// One forced load-balancing step: picks the range shard with the
  /// highest window load, moves its boundary toward it so roughly half of
  /// its subscriptions re-route to its lighter neighbor, and migrates
  /// them. Returns true when a boundary moved. No-op (false) for
  /// non-range engines, K < 3, or when no productive move exists.
  bool RebalanceOnce();

  /// Lifetime rebalancing counters.
  struct RebalanceStats {
    uint64_t boundary_moves = 0;
    uint64_t subscriptions_migrated = 0;
  };
  RebalanceStats rebalance_stats() const {
    return RebalanceStats{
        boundary_moves_.load(std::memory_order_relaxed),
        subscriptions_migrated_.load(std::memory_order_relaxed)};
  }

 private:
  struct Shard {
    explicit Shard(const AdaptiveConfig& cfg)
        : index(std::make_unique<AdaptiveIndex>(cfg)) {}
    std::mutex mu;  ///< serializes every index access (reads mutate stats)
    std::unique_ptr<AdaptiveIndex> index;
    /// Lifetime events dispatched here (relaxed; observability + the
    /// rebalancer's load signal).
    std::atomic<uint64_t> routed{0};
    /// Resident subscriptions (relaxed mirror of index->size(), readable
    /// without the shard lock).
    std::atomic<size_t> subs{0};
  };

  /// Shard choice for one subscription. `bounds` is only read by kRange
  /// (callers pass the boundary snapshot they routed the rest of the
  /// operation with).
  uint32_t ShardFor(SubscriptionId id, const Box& box,
                    const std::vector<float>& bounds) const;
  /// kRange target of a box under `bounds`: its slice's shard, or the
  /// overflow shard when the leading-dimension interval straddles a fence.
  uint32_t RangeShardFor(const std::vector<float>& bounds,
                         float lo0, float hi0) const;
  /// Shards an event must visit under `bounds`: the slice span of its
  /// leading-dimension interval plus the overflow shard, ascending.
  void RouteEvent(const std::vector<float>& bounds, const Box& box,
                  std::vector<uint32_t>* out) const;
  std::vector<float> SnapshotBounds() const;

  static Relation RelationFor(const Event& event, MatchPolicy policy);
  void RecordEvent(size_t matches, size_t verified, double latency_ms);

  /// Auto-rebalance hook, called after every match entry point.
  void MaybeAutoRebalance(uint64_t events);
  /// One boundary move; caller holds rebalance_mu_. `force` skips the
  /// trigger-ratio/min-load gate.
  bool RebalanceLocked(bool force);
  /// Publishes `new_bounds`, then migrates every subscription in
  /// `scan_shards` whose target changed. Caller holds rebalance_mu_.
  /// Returns the number of subscriptions migrated.
  size_t ApplyBoundariesLocked(std::vector<float> new_bounds,
                               const std::vector<uint32_t>& scan_shards);

  AttributeSchema schema_;
  EngineOptions options_;
  bool range_routed_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<exec::ThreadPool> pool_;  ///< null when match_threads <= 1

  /// Routing table for kRange: sorted interior boundaries over the leading
  /// dimension, size shard_count()-2. route_mu_ guards only the table
  /// itself and is held for snapshots/publishes, never across index work —
  /// matching is free to snapshot mid-insert and mid-migration.
  mutable std::mutex route_mu_;
  std::vector<float> bounds_;
  uint64_t routing_version_ = 0;

  /// Serializes rebalances (boundary publish + migration runs entirely
  /// under it) and kRange subscribes (held from routing through owner-map
  /// publish): a boundary change is therefore ordered strictly before or
  /// after every subscribe, so it either routes the new subscription
  /// itself or its migration scan sees the insert — a subscription can
  /// never be stranded in a shard the new table doesn't route to.
  std::mutex rebalance_mu_;
  /// Auto-rebalance in-flight flag (mutex try_lock may fail spuriously,
  /// which would make deterministic replays skip triggers at random).
  std::atomic<bool> rebalance_inflight_{false};
  /// Per-shard routed-counter snapshot at the last rebalance; the window
  /// load is routed - routed_at_reset_. Guarded by rebalance_mu_.
  std::vector<uint64_t> routed_at_reset_;
  std::atomic<uint64_t> events_since_check_{0};
  std::atomic<uint64_t> boundary_moves_{0};
  std::atomic<uint64_t> subscriptions_migrated_{0};

  mutable std::mutex meta_mu_;  ///< guards next_id_, shard_of_, stats_
  SubscriptionId next_id_ = 0;
  /// Owner shard of each live subscription (needed by Unsubscribe for
  /// custom/spatial partitioners whose input box is long gone, and kept
  /// exact across migrations).
  std::unordered_map<SubscriptionId, uint32_t> shard_of_;
  std::atomic<size_t> subscription_count_{0};
  EngineStats stats_;
};

}  // namespace accl
