// Selective Dissemination of Information engine — the paper's motivating
// application (§1): a publish/subscribe notification system where
// subscriptions define range intervals over attributes and incoming events
// (offers) must be matched against the whole subscription database with low
// latency.
//
// The engine wraps the adaptive clustering index with an attribute schema,
// subscription lifecycle management, the two event kinds the paper
// describes (point events and range events), and running statistics.
//
// Scale-out (sharding): the subscription database can be partitioned across
// K independent AdaptiveIndex shards (EngineOptions::shards). Each
// subscription lives in exactly one shard, chosen by a pluggable
// partitioner; every event is matched against all shards and the per-shard
// answers are merged deterministically (sorted by ObjectId), so the match
// sets are byte-identical to a single-shard engine's. Reads fan out
// concurrently across shards on the engine's thread pool; all per-shard
// work — including Execute's statistics updates and the adaptive
// reorganization it may trigger — runs behind that shard's mutex, so the
// reorganization logic itself is untouched by concurrency.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/batch.h"
#include "api/schema.h"
#include "core/adaptive_index.h"
#include "exec/thread_pool.h"
#include "util/summary.h"

namespace accl {

/// Identifier handed out for registered subscriptions.
using SubscriptionId = ObjectId;

/// How range events select subscriptions.
enum class MatchPolicy : uint8_t {
  /// Notify subscriptions whose ranges intersect the event's ranges — the
  /// paper's spatial range query ("consult the set of alternative offers
  /// that are close to their wishes").
  kIntersecting = 0,
  /// Notify only subscriptions whose ranges fully cover the event's ranges
  /// (the event satisfies every constraint of the subscription) — the
  /// enclosure query; point events degenerate to point-enclosing.
  kCovering,
};

/// How subscriptions are partitioned across shards.
enum class ShardingPolicy : uint8_t {
  /// Mix the subscription id through SplitMix64 and take it mod K. Spreads
  /// load evenly regardless of the subscription distribution.
  kHashId = 0,
  /// Partition the leading dimension's box center into K equal slices.
  /// Keeps spatially close subscriptions together (range-partition
  /// precursor; see ROADMAP), at the cost of possible load skew.
  kLeadingDimension,
};

/// Custom partitioner: maps (id, normalized subscription box, shard count)
/// to a shard. The result is taken mod the shard count.
using ShardPartitionFn =
    std::function<uint32_t(SubscriptionId, const Box&, uint32_t)>;

/// An incoming publication.
struct Event {
  /// Point event: one value per attribute. Built via
  /// AttributeSchema::MakePoint or SubscriptionEngine::MakePointEvent.
  static Event Point(std::vector<float> normalized_point);
  /// Range event ("3 to 5 rooms, 600$-900$").
  static Event Range(Box normalized_box);

  bool is_point = true;
  Box box;  ///< degenerate for point events
};

/// Aggregate engine statistics.
struct EngineStats {
  uint64_t events_processed = 0;
  Summary matches_per_event;
  Summary verified_per_event;
  Summary match_latency_ms;
};

/// Tuning for the engine; forwards the index knobs.
struct EngineOptions {
  AdaptiveConfig index;  ///< nd overwritten from the schema
  MatchPolicy default_policy = MatchPolicy::kCovering;

  /// Number of independent index shards (K >= 1). 1 keeps the classic
  /// single-index engine, bit-for-bit.
  uint32_t shards = 1;
  /// Worker threads for MatchBatch's shard fan-out. 0 or 1 = the calling
  /// thread does everything (still deterministic, still correct).
  uint32_t match_threads = 0;
  /// How subscriptions are assigned to shards (ignored when K == 1).
  ShardingPolicy sharding = ShardingPolicy::kHashId;
  /// Overrides `sharding` when set.
  ShardPartitionFn partitioner;
};

/// The subscription database and matcher.
///
/// Thread safety: Subscribe/Unsubscribe/Match/MatchBatch may be called
/// concurrently from any threads; shard state is guarded by per-shard
/// mutexes and engine bookkeeping by an engine mutex. Determinism is only
/// guaranteed for a deterministic call sequence (concurrent *callers* race
/// for lock order like any concurrent writers would).
class SubscriptionEngine {
 public:
  /// Schema must be fully defined before constructing the engine.
  explicit SubscriptionEngine(AttributeSchema schema,
                              EngineOptions options = {});

  const AttributeSchema& schema() const { return schema_; }

  /// Registers a subscription given by range predicates (unspecified
  /// attributes are unconstrained). Returns the new id, or kInvalidObject
  /// when a predicate is malformed.
  SubscriptionId Subscribe(const std::vector<AttributeRange>& ranges);

  /// Registers a pre-built normalized subscription box.
  SubscriptionId SubscribeBox(const Box& box);

  /// Removes a subscription. Returns false when unknown.
  bool Unsubscribe(SubscriptionId id);

  size_t subscription_count() const {
    return subscription_count_.load(std::memory_order_relaxed);
  }

  /// Matches an event against the database; appends notified subscription
  /// ids to `*out` (shard-major order; with one shard this is exactly the
  /// classic engine's order). Uses the default policy unless overridden.
  void Match(const Event& event, std::vector<SubscriptionId>* out);
  void Match(const Event& event, MatchPolicy policy,
             std::vector<SubscriptionId>* out);

  /// Matches a batch of events, fanning the batch across shards on the
  /// engine's thread pool. `out->matches[e]` is sorted by ObjectId and
  /// byte-identical for any shard/thread configuration. Per-shard metrics
  /// land in `out->per_shard` (shard order), aggregated into `out->total`.
  void MatchBatch(Span<const Event> events, MatchBatchResult* out);
  void MatchBatch(Span<const Event> events, MatchPolicy policy,
                  MatchBatchResult* out);

  /// Convenience: builds a point event from attribute values. Returns
  /// false when values do not cover the schema exactly.
  bool MakePointEvent(const std::vector<AttributeValue>& values,
                      Event* out) const;

  /// Convenience: builds a range event from predicates.
  bool MakeRangeEvent(const std::vector<AttributeRange>& ranges,
                      Event* out) const;

  /// Snapshot of the running statistics (copies under the stats lock).
  EngineStats stats() const;
  void ResetStats();

  // ---- Shard introspection ----
  size_t shard_count() const { return shards_.size(); }

  /// The underlying index of shard `s` (diagnostics: cluster counts, reorg
  /// stats). Not synchronized — quiesce matching before deep inspection.
  const AdaptiveIndex& shard_index(size_t s) const {
    return *shards_[s]->index;
  }

  /// Back-compatible single-index accessor: shard 0's index (the only
  /// shard when K == 1).
  const AdaptiveIndex& index() const { return *shards_[0]->index; }

  /// Shard of a live subscription, or shard_count() when unknown.
  size_t ShardOf(SubscriptionId id) const;

  /// Per-shard load snapshot.
  struct ShardInfo {
    size_t subscriptions;
    size_t clusters;
  };
  std::vector<ShardInfo> GetShardInfos() const;

 private:
  struct Shard {
    explicit Shard(const AdaptiveConfig& cfg)
        : index(std::make_unique<AdaptiveIndex>(cfg)) {}
    std::mutex mu;  ///< serializes every index access (reads mutate stats)
    std::unique_ptr<AdaptiveIndex> index;
  };

  uint32_t ShardFor(SubscriptionId id, const Box& box) const;
  static Relation RelationFor(const Event& event, MatchPolicy policy);
  void RecordEvent(size_t matches, size_t verified, double latency_ms);

  AttributeSchema schema_;
  EngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<exec::ThreadPool> pool_;  ///< null when match_threads <= 1

  mutable std::mutex meta_mu_;  ///< guards next_id_, shard_of_, stats_
  SubscriptionId next_id_ = 0;
  /// Owner shard of each live subscription (needed by Unsubscribe for
  /// custom/spatial partitioners whose input box is long gone).
  std::unordered_map<SubscriptionId, uint32_t> shard_of_;
  std::atomic<size_t> subscription_count_{0};
  EngineStats stats_;
};

}  // namespace accl
