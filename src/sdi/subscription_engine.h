// Selective Dissemination of Information engine — the paper's motivating
// application (§1): a publish/subscribe notification system where
// subscriptions define range intervals over attributes and incoming events
// (offers) must be matched against the whole subscription database with low
// latency.
//
// The engine wraps the adaptive clustering index with an attribute schema,
// subscription lifecycle management, the two event kinds the paper
// describes (point events and range events), and running statistics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/schema.h"
#include "core/adaptive_index.h"
#include "util/summary.h"

namespace accl {

/// Identifier handed out for registered subscriptions.
using SubscriptionId = ObjectId;

/// How range events select subscriptions.
enum class MatchPolicy : uint8_t {
  /// Notify subscriptions whose ranges intersect the event's ranges — the
  /// paper's spatial range query ("consult the set of alternative offers
  /// that are close to their wishes").
  kIntersecting = 0,
  /// Notify only subscriptions whose ranges fully cover the event's ranges
  /// (the event satisfies every constraint of the subscription) — the
  /// enclosure query; point events degenerate to point-enclosing.
  kCovering,
};

/// An incoming publication.
struct Event {
  /// Point event: one value per attribute. Built via
  /// AttributeSchema::MakePoint or SubscriptionEngine::MakePointEvent.
  static Event Point(std::vector<float> normalized_point);
  /// Range event ("3 to 5 rooms, 600$-900$").
  static Event Range(Box normalized_box);

  bool is_point = true;
  Box box;  ///< degenerate for point events
};

/// Aggregate engine statistics.
struct EngineStats {
  uint64_t events_processed = 0;
  Summary matches_per_event;
  Summary verified_per_event;
  Summary match_latency_ms;
};

/// Tuning for the engine; forwards the index knobs.
struct EngineOptions {
  AdaptiveConfig index;  ///< nd overwritten from the schema
  MatchPolicy default_policy = MatchPolicy::kCovering;
};

/// The subscription database and matcher.
class SubscriptionEngine {
 public:
  /// Schema must be fully defined before constructing the engine.
  explicit SubscriptionEngine(AttributeSchema schema,
                              EngineOptions options = {});

  const AttributeSchema& schema() const { return schema_; }

  /// Registers a subscription given by range predicates (unspecified
  /// attributes are unconstrained). Returns the new id, or kInvalidObject
  /// when a predicate is malformed.
  SubscriptionId Subscribe(const std::vector<AttributeRange>& ranges);

  /// Registers a pre-built normalized subscription box.
  SubscriptionId SubscribeBox(const Box& box);

  /// Removes a subscription. Returns false when unknown.
  bool Unsubscribe(SubscriptionId id);

  size_t subscription_count() const { return index_->size(); }

  /// Matches an event against the database; appends notified subscription
  /// ids to `*out`. Uses the engine's default policy unless overridden.
  void Match(const Event& event, std::vector<SubscriptionId>* out);
  void Match(const Event& event, MatchPolicy policy,
             std::vector<SubscriptionId>* out);

  /// Convenience: builds a point event from attribute values. Returns
  /// false when values do not cover the schema exactly.
  bool MakePointEvent(const std::vector<AttributeValue>& values,
                      Event* out) const;

  /// Convenience: builds a range event from predicates.
  bool MakeRangeEvent(const std::vector<AttributeRange>& ranges,
                      Event* out) const;

  const EngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EngineStats(); }

  /// The underlying index (for diagnostics: cluster counts, reorg stats).
  const AdaptiveIndex& index() const { return *index_; }

 private:
  AttributeSchema schema_;
  EngineOptions options_;
  std::unique_ptr<AdaptiveIndex> index_;
  SubscriptionId next_id_ = 0;
  EngineStats stats_;
};

}  // namespace accl
