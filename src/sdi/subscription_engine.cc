#include "sdi/subscription_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <tuple>
#include <unordered_set>
#include <utility>

#include <cmath>

#include "adapt/pattern_tracker.h"
#include "adapt/routing_advisor.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "exec/shard_queues.h"
#include "kernels/backend_registry.h"
#include "obs/alloc_hook.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace accl {

namespace {

/// Slice of coordinate `x` under the interior fences: the index of the
/// first fence strictly greater than `x`. A coordinate exactly on a fence
/// therefore belongs to the slice on the fence's right, which is also what
/// makes routing exact for touching intervals: an event ending exactly on
/// a fence still routes to the right slice, whose subscriptions may start
/// exactly there.
uint32_t SliceOf(const std::vector<float>& bounds, float x) {
  return static_cast<uint32_t>(
      std::upper_bound(bounds.begin(), bounds.end(), x) - bounds.begin());
}


/// Shard-queue positions are executed in fixed chunks of this many queries.
/// Chunk boundaries are fixed multiples (position p lives in chunk
/// p / kMatchChunkSize), so a finalizer can locate any position's output
/// without knowing the claim history. Small enough that one hot shard's
/// queue is split across many mutex acquisitions (other workers interleave
/// and a concurrent single-event Match is never starved), large enough
/// that the per-chunk lock/unlock and countdown overhead stays amortized.
constexpr size_t kMatchChunkSize = 16;

}  // namespace

// Reusable per-batch state of the streamed matching pipeline. Pooled by
// the engine (AcquireScratch/ReleaseScratch) so capacity survives across
// batches — at steady state a batch of stable shape allocates nothing.
struct SubscriptionEngine::PipelineScratch {
  exec::ShardQueues queues;

  // ---- Per-event state (grow-only capacity) ----
  /// Shard visits not yet executed; the worker that decrements one to zero
  /// owns that event's finalization.
  std::unique_ptr<std::atomic<uint32_t>[]> remaining;
  /// Intrusive links of the ready stack. Written once per event (before
  /// the releasing head-CAS publishes it), so plain storage is race-free.
  std::unique_ptr<int64_t[]> ready_next;
  size_t event_cap = 0;
  std::vector<uint32_t> matched;   ///< per event, post-dedup match count
  std::vector<uint64_t> verified;  ///< per event, objects verified

  /// Treiber stack of events whose last visit completed, awaiting
  /// finalization (-1 = empty). Each event is pushed exactly once per
  /// batch and never re-pushed, so the classic ABA hazard cannot arise.
  std::atomic<int64_t> ready_head{-1};
  std::atomic<size_t> events_done{0};

  // ---- Chunk output buffers ----
  /// Chunk c of shard s covers queue positions
  /// [c*kMatchChunkSize, min((c+1)*kMatchChunkSize, queue length)); its
  /// buffer is written under the shard mutex by whichever worker claimed
  /// it and read by finalizers strictly after the countdown handoff.
  struct Chunk {
    std::vector<ObjectId> ids;       ///< concatenated per-position matches
    std::vector<uint32_t> offsets;   ///< chunk length + 1 entries
    std::vector<uint64_t> verified;  ///< per position
  };
  std::vector<Chunk> chunks;  ///< grow-only; stale tails are never read

  struct ShardRun {
    size_t chunk_base = 0;  ///< index of this shard's first chunk
    /// Next unclaimed queue position. Advanced only under the shard mutex
    /// (claims are chunk-aligned); read racily as a skip hint elsewhere.
    std::atomic<size_t> next_pos{0};
  };
  std::unique_ptr<ShardRun[]> shard_runs;
  size_t shard_cap = 0;

  /// Per-worker finalize gather buffers (worker-indexed, disjoint).
  std::vector<std::vector<ObjectId>> gather;
  /// Per-worker reusable Query objects: Query owns a heap-backed Box, so
  /// constructing one per execution was one allocation per (event, shard)
  /// visit — the dominant steady-state churn. Copy-assigning the event box
  /// into a warm same-dimension Box reuses its storage instead.
  std::vector<Query> worker_query;

  /// Metrics landing zone for the sink overloads (no caller-provided
  /// result object); pooled with the rest of the scratch.
  MatchBatchResult sink_result;

  // ---- Residual-serialization counters (worker-indexed, disjoint;
  // folded into the result after the fan-out joins) ----
  /// try_lock_fail[w][s]: worker w's failed claim attempts on shard s.
  std::vector<std::vector<uint64_t>> try_lock_fail;
  /// pop_retry[w]: worker w's failed ready-stack head-CAS iterations.
  std::vector<uint64_t> pop_retry;

  /// Off-lock fold buffer for the adaptive tracker's event sampling
  /// (pooled here so steady-state batches allocate nothing).
  adapt::PatternAccumulator pattern;
};

// Registry-owned handles for the engine's own metrics. Everything here is
// created on (and owned by) the engine's MetricsRegistry, so the handles
// are plain pointers with the registry's lifetime; components the engine
// merely wires in (WAL, checkpointer, epoch manager, log shipper) own
// their metrics themselves and Attach() them instead.
struct SubscriptionEngine::EngineObs {
  explicit EngineObs(obs::MetricsRegistry* r)
      : batches(r->GetCounter("accl_pipeline_batches_total",
                              "MatchBatch pipeline runs")),
        events(r->GetCounter("accl_pipeline_events_total",
                             "events matched through the batch pipeline")),
        events_routed(r->GetCounter(
            "accl_pipeline_events_routed_total",
            "per-shard event dispatches (one event may visit many shards)")),
        chunks_claimed(r->GetCounter("accl_pipeline_chunks_claimed_total",
                                     "shard-queue chunks executed")),
        chunks_stolen(r->GetCounter(
            "accl_pipeline_chunks_stolen_total",
            "chunks a worker claimed off its affine shard")),
        trylock_failures(r->GetCounter(
            "accl_pipeline_trylock_failures_total",
            "failed shard-mutex claim attempts (residual serialization)")),
        ready_pop_retries(r->GetCounter(
            "accl_pipeline_ready_pop_retries_total",
            "lost ready-stack head races (finalize contention)")),
        matches(r->GetCounter("accl_pipeline_matches_total",
                              "post-dedup subscription notifications")),
        batch_us(r->GetHistogram("accl_pipeline_batch_us",
                                 "MatchBatch end-to-end duration (us)")),
        boundary_moves(r->GetCounter("accl_rebalance_boundary_moves_total",
                                     "fence moves applied")),
        subs_migrated(r->GetCounter(
            "accl_rebalance_subscriptions_migrated_total",
            "subscriptions moved by the double-residency protocol")),
        spill_total(r->GetCounter(
            "accl_rebalance_predicted_spill_total",
            "straddler spill the fence planner predicted (lifetime)")),
        spill_last(r->GetGauge(
            "accl_rebalance_predicted_spill_last",
            "straddler spill predicted by the most recent fence move")),
        migration_us(r->GetHistogram(
            "accl_rebalance_migration_us",
            "scan+insert+grace+cleanup duration per routing change (us)")),
        dimension_switches(r->GetCounter(
            "accl_adapt_dimension_switches_total",
            "online fence-dimension switches (advisor or manual)")),
        overflow_splits(r->GetCounter(
            "accl_adapt_overflow_splits_total",
            "overflow-shard split activations (advisor or manual)")),
        straddlers_split(r->GetCounter(
            "accl_adapt_straddlers_split_total",
            "straddlers moved out of the catch-all shard by splits")),
        windows_evaluated(r->GetCounter("accl_adapt_windows_evaluated_total",
                                        "advisor windows evaluated")),
        subscriptions(r->GetGauge("accl_engine_subscriptions",
                                  "live subscriptions")),
        heap_allocs(r->GetGauge(
            "accl_process_heap_allocs",
            "lifetime heap allocations (0 unless the binary installed "
            "ACCL_OBS_INSTALL_GLOBAL_ALLOC_HOOK)")),
        heap_alloc_hook(r->GetGauge(
            "accl_process_heap_alloc_hook",
            "1 when the global allocation hook is installed")) {}

  obs::Counter* batches;
  obs::Counter* events;
  obs::Counter* events_routed;
  obs::Counter* chunks_claimed;
  obs::Counter* chunks_stolen;
  obs::Counter* trylock_failures;
  obs::Counter* ready_pop_retries;
  obs::Counter* matches;
  obs::Histogram* batch_us;
  obs::Counter* boundary_moves;
  obs::Counter* subs_migrated;
  obs::Counter* spill_total;
  obs::Gauge* spill_last;
  obs::Histogram* migration_us;
  obs::Counter* dimension_switches;
  obs::Counter* overflow_splits;
  obs::Counter* straddlers_split;
  obs::Counter* windows_evaluated;
  obs::Gauge* subscriptions;
  obs::Gauge* heap_allocs;
  obs::Gauge* heap_alloc_hook;
};

Event Event::Point(std::vector<float> normalized_point) {
  Event e;
  e.is_point = true;
  e.box = Box::Point(normalized_point);
  return e;
}

Event Event::Range(Box normalized_box) {
  Event e;
  e.is_point = false;
  e.box = std::move(normalized_box);
  return e;
}

Status SubscriptionEngine::ValidateOptions(const AttributeSchema& schema,
                                           const EngineOptions& o) {
  if (schema.dims() == 0) {
    return Status::InvalidArgument(
        "schema must define at least one attribute");
  }
  if (o.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (o.index.division_factor < 2) {
    return Status::InvalidArgument(
        "index.division_factor must be >= 2 (the clustering function "
        "cannot divide a domain into fewer than two parts)");
  }
  if (o.index.max_clusters < 1) {
    return Status::InvalidArgument("index.max_clusters must be >= 1");
  }
  if (!o.index.verify_backend.empty()) {
    // Checked against the registry directly (not Resolve) so the
    // ACCL_FORCE_BACKEND pin cannot mask a config that would abort on a
    // host without the pin.
    const auto& reg = kernels::BackendRegistry::Instance();
    if (reg.Find(o.index.verify_backend) == nullptr) {
      return Status::InvalidArgument(
          "index.verify_backend \"" + o.index.verify_backend +
          "\" is not a registered verify backend on this host (have: " +
          reg.BackendNames() + ")");
    }
  }
  if (!(o.rebalance_trigger_ratio > 0.0)) {
    return Status::InvalidArgument(
        "rebalance_trigger_ratio must be > 0 (and not NaN)");
  }
  if (o.rebalance_fence_candidates < 1) {
    return Status::InvalidArgument(
        "rebalance_fence_candidates must be >= 1 (1 = the single-candidate "
        "gap-halving planner)");
  }
  const bool custom = static_cast<bool>(o.partitioner);
  if (o.sharding == ShardingPolicy::kRange) {
    if (custom) {
      return Status::InvalidArgument(
          "a custom partitioner is incompatible with ShardingPolicy::kRange "
          "(it would silently disable routed dispatch and rebalancing; pick "
          "one)");
    }
    if (o.shards < 2) {
      return Status::InvalidArgument(
          "ShardingPolicy::kRange needs shards >= 2 (K-1 slice shards plus "
          "the overflow shard)");
    }
    if (!o.range_boundaries.empty()) {
      if (o.range_boundaries.size() != static_cast<size_t>(o.shards) - 2) {
        return Status::InvalidArgument(
            "range_boundaries must have exactly shards-2 interior fences "
            "(or be empty for a uniform split)");
      }
      for (size_t i = 1; i < o.range_boundaries.size(); ++i) {
        if (!(o.range_boundaries[i - 1] < o.range_boundaries[i])) {
          return Status::InvalidArgument(
              "range_boundaries must be strictly ascending");
        }
      }
    }
  }
  const AdaptiveRoutingOptions& a = o.adaptive;
  if ((a.enabled || a.overflow_split_shards > 0 || a.fence_dim >= 0 ||
       a.split_dim >= 0) &&
      (o.sharding != ShardingPolicy::kRange || custom)) {
    return Status::InvalidArgument(
        "adaptive routing (adaptive.enabled / overflow_split_shards / "
        "fence_dim / split_dim) requires ShardingPolicy::kRange without a "
        "custom partitioner — other policies have no fence dimension to "
        "adapt");
  }
  if (a.fence_dim >= 0 &&
      static_cast<uint32_t>(a.fence_dim) >= schema.dims()) {
    return Status::InvalidArgument(
        "adaptive.fence_dim must name a schema dimension");
  }
  if (a.split_dim >= 0 &&
      static_cast<uint32_t>(a.split_dim) >= schema.dims()) {
    return Status::InvalidArgument(
        "adaptive.split_dim must name a schema dimension");
  }
  if (a.enabled) {
    if (a.sample_window < 1) {
      return Status::InvalidArgument(
          "adaptive.sample_window must be >= 1 (a zero window would "
          "evaluate routing on every event)");
    }
    if (!(a.switch_threshold > 1.0)) {
      return Status::InvalidArgument(
          "adaptive.switch_threshold must be > 1 (and not NaN) — a "
          "threshold of 1 or less lets estimation noise flip the fence "
          "dimension every window");
    }
    if (!(a.split_straddler_threshold > 0.0) ||
        a.split_straddler_threshold > 1.0) {
      return Status::InvalidArgument(
          "adaptive.split_straddler_threshold must be in (0, 1]");
    }
    if (a.split_patience < 1) {
      return Status::InvalidArgument("adaptive.split_patience must be >= 1");
    }
  }
  // match_threads == 0 is documented as "caller thread does everything".
  return Status::Ok();
}

std::unique_ptr<SubscriptionEngine> SubscriptionEngine::Create(
    AttributeSchema schema, EngineOptions options, Status* status) {
  const Status st = ValidateOptions(schema, options);
  if (status != nullptr) *status = st;
  if (!st.ok()) return nullptr;
  return std::unique_ptr<SubscriptionEngine>(
      new SubscriptionEngine(std::move(schema), std::move(options)));
}

SubscriptionEngine::SubscriptionEngine(AttributeSchema schema,
                                       EngineOptions options)
    : schema_(std::move(schema)),
      options_(std::move(options)),
      // Slot sizing is a contention hint: the pool's fan-out runs under the
      // caller's single pin, so concurrent pins ~= concurrent callers.
      epoch_(static_cast<size_t>(options_.match_threads) + 8) {
  const Status st = ValidateOptions(schema_, options_);
  if (!st.ok()) {
    std::fprintf(stderr, "SubscriptionEngine: invalid configuration: %s\n",
                 st.message().c_str());
    std::abort();
  }
  metrics_ = std::make_unique<obs::MetricsRegistry>();
  obs_ = std::make_unique<EngineObs>(metrics_.get());
  epoch_.AttachMetrics(metrics_.get());
  options_.index.nd = schema_.dims();
  RoutingPlan plan;
  uint32_t physical_shards = options_.shards;
  if (options_.sharding == ShardingPolicy::kRange && !options_.partitioner) {
    range_routed_ = true;
    num_range_shards_ = options_.shards - 1;
    // Split sub-shards are allocated up front (the shard table is never
    // resized concurrently); they idle — empty and unrouted — until a
    // split activates. The catch-all overflow shard stays LAST.
    num_split_shards_ = options_.adaptive.overflow_split_shards;
    physical_shards = options_.shards + num_split_shards_;
    plan.dim = options_.adaptive.fence_dim >= 0
                   ? static_cast<uint32_t>(options_.adaptive.fence_dim)
                   : 0;
    if (!options_.range_boundaries.empty()) {
      plan.bounds = options_.range_boundaries;
    } else {
      for (uint32_t i = 1; i < num_range_shards_; ++i) {
        plan.bounds.push_back(
            kDomainMin + (kDomainMax - kDomainMin) * static_cast<float>(i) /
                             static_cast<float>(num_range_shards_));
      }
    }
    if (options_.adaptive.enabled) {
      tracker_ =
          std::make_unique<adapt::QueryPatternTracker>(schema_.dims());
      advisor_ = std::make_unique<adapt::RoutingAdvisor>(options_.adaptive,
                                                         schema_.dims());
    }
  }
  shards_.reserve(physical_shards);
  for (uint32_t s = 0; s < physical_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.index));
  }
  routed_at_reset_.assign(physical_shards, 0);
  // ParallelFor includes the calling thread, so N-way matching needs N-1
  // workers; 0 or 1 requested threads means no pool at all.
  if (options_.match_threads > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(options_.match_threads - 1);
    // Epoch-retire amortization: superseded routing snapshots are freed by
    // idle pool workers (TryReclaim is non-blocking and safe concurrently),
    // not inline by the publisher — see ApplyRoutingLocked's WaitGrace.
    // Safe lifetime: ~SubscriptionEngine joins the pool before epoch_ dies.
    pool_->SetIdleHook([this] { epoch_.TryReclaim(); });
  }
  auto* snap = new RoutingSnapshot();
  snap->plan = std::move(plan);
  snap->version = 1;
  snap->shards.reserve(shards_.size());
  for (const auto& sh : shards_) snap->shards.push_back(sh.get());
  snapshot_.store(snap, std::memory_order_seq_cst);
}

SubscriptionEngine::~SubscriptionEngine() {
  pool_.reset();         // join workers before tearing down routing state
  epoch_.Synchronize();  // reclaim retired snapshots (no readers remain)
  delete snapshot_.load(std::memory_order_acquire);
}

void SubscriptionEngine::PublishSnapshot(RoutingPlan plan) {
  const RoutingSnapshot* old = SnapshotUnderRebalanceLock();
  auto* next = new RoutingSnapshot();
  next->plan = std::move(plan);
  next->version = old->version + 1;
  next->shards = old->shards;
  // seq_cst swap: a reader whose pin the next grace-period scan does not
  // observe is ordered after this store and must load `next` (see the
  // epoch manager's memory-ordering contract).
  snapshot_.store(next, std::memory_order_seq_cst);
  epoch_.Retire([old] { delete old; });
}

template <typename B>
uint32_t SubscriptionEngine::RangeShardFor(const RoutingPlan& plan,
                                           const B& box) const {
  const Dim fd = static_cast<Dim>(plan.dim);
  const uint32_t a = SliceOf(plan.bounds, box.lo(fd));
  const uint32_t b = SliceOf(plan.bounds, box.hi(fd));
  if (a == b) return a;
  // Fence straddler. With an active split, a straddler whose
  // split-dimension interval fits one split slice lives in that sub-shard;
  // only double-straddlers fall through to the catch-all overflow shard.
  if (plan.split_dim >= 0) {
    const Dim sd = static_cast<Dim>(plan.split_dim);
    const uint32_t ja = SliceOf(plan.split_bounds, box.lo(sd));
    const uint32_t jb = SliceOf(plan.split_bounds, box.hi(sd));
    if (ja == jb) return num_range_shards_ + ja;
  }
  return static_cast<uint32_t>(shards_.size() - 1);
}

void SubscriptionEngine::RouteEvent(const RoutingPlan& plan, const Box& box,
                                    std::vector<uint32_t>* out) const {
  // The slice span of the event's fence-dimension interval, then (split
  // active) the sub-shards its split-dimension interval overlaps, then the
  // catch-all overflow shard. Sub-shard ids sit strictly between the slice
  // ids and the catch-all's, so the route list stays ascending — which the
  // pipeline's deterministic per-shard execution order relies on. Routing
  // stays exact: every supported relation implies per-dimension interval
  // overlap, so an event overlaps a sub-shard resident's split slice span.
  const Dim fd = static_cast<Dim>(plan.dim);
  const uint32_t a = SliceOf(plan.bounds, box.lo(fd));
  const uint32_t b = SliceOf(plan.bounds, box.hi(fd));
  for (uint32_t s = a; s <= b; ++s) out->push_back(s);
  if (plan.split_dim >= 0) {
    const Dim sd = static_cast<Dim>(plan.split_dim);
    const uint32_t ja = SliceOf(plan.split_bounds, box.lo(sd));
    const uint32_t jb = SliceOf(plan.split_bounds, box.hi(sd));
    for (uint32_t j = ja; j <= jb; ++j) {
      out->push_back(num_range_shards_ + j);
    }
  }
  out->push_back(static_cast<uint32_t>(shards_.size() - 1));
}

uint32_t SubscriptionEngine::ShardFor(SubscriptionId id, const Box& box,
                                      const RoutingPlan& plan) const {
  const uint32_t k = static_cast<uint32_t>(shards_.size());
  if (k == 1) return 0;
  if (options_.partitioner) return options_.partitioner(id, box, k) % k;
  switch (options_.sharding) {
    case ShardingPolicy::kLeadingDimension: {
      const float center = 0.5f * (box.lo(0) + box.hi(0));
      const float clamped =
          std::min(std::max(center, kDomainMin), kDomainMax);
      return std::min(k - 1, static_cast<uint32_t>(
                                 clamped * static_cast<float>(k)));
    }
    case ShardingPolicy::kRange:
      return RangeShardFor(plan, box);
    case ShardingPolicy::kHashId:
      break;
  }
  uint64_t state = id;
  return static_cast<uint32_t>(SplitMix64(&state) % k);
}

SubscriptionId SubscriptionEngine::Subscribe(
    const std::vector<AttributeRange>& ranges) {
  Box box;
  if (!schema_.MakeBox(ranges, &box)) return kInvalidObject;
  return SubscribeBox(box);
}

SubscriptionId SubscriptionEngine::SubscribeBox(const Box& box) {
  ACCL_CHECK(box.dims() == schema_.dims());
  // A follower's ids come only from the replicated log; refusing before
  // the allocation keeps the local allocator exactly at the log's heels.
  if (role() == EngineRole::kFollower) return kInvalidObject;
  SubscriptionId id;
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    id = next_id_++;
  }
  if (wal_ != nullptr) {
    // Durable path: the record must be on disk before the subscription is
    // applied or acknowledged. A broken log refuses the mutation (the
    // allocated id is simply never used — ids are not reused anyway).
    const Lsn lsn = wal_->AppendSubscribe(id, schema_.dims(), box.data());
    if (!wal_->WaitDurable(lsn)) return kInvalidObject;
    ApplySubscribe(id, box);
    wal_->MarkApplied(lsn);
  } else {
    ApplySubscribe(id, box);
  }
  NotifyCheckpointer(1);
  return id;
}

void SubscriptionEngine::ApplySubscribe(SubscriptionId id, const Box& box) {
  // kRange holds the rebalance lock from target choice through owner-map
  // publish: a boundary change (the whole double-residency protocol runs
  // under rebalance_mu_) is then serialized either before this
  // subscription (so we route with the new table) or after it (so its
  // migration scan sees our insert). Matching needs no lock we hold, so it
  // proceeds throughout.
  static const RoutingPlan kNoPlan;
  std::unique_lock<std::mutex> rebalance_lk;
  const RoutingPlan* plan = &kNoPlan;
  if (range_routed_) {
    rebalance_lk = std::unique_lock<std::mutex>(rebalance_mu_);
    plan = &SnapshotUnderRebalanceLock()->plan;
  }
  const uint32_t s = ShardFor(id, box, *plan);
  {
    std::lock_guard<std::mutex> lk(shards_[s]->mu);
    shards_[s]->index->Insert(id, box.view());
  }
  shards_[s]->subs.fetch_add(1, std::memory_order_relaxed);
  // Publish the owner mapping only after the insert: nobody can hold this
  // id yet, and Unsubscribe consults the map first. The count bumps inside
  // the same critical section — once the map entry exists the id is
  // Unsubscribe-able, and its decrement must never precede our increment.
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    shard_of_.emplace(id, s);
    subscription_count_.fetch_add(1, std::memory_order_relaxed);
  }
  rebalance_lk = {};  // tracker sampling needs no routing consistency
  if (tracker_ != nullptr) tracker_->RecordSubscription(box);
}

void SubscriptionEngine::SubscribeBatch(Span<const Box> boxes,
                                        std::vector<SubscriptionId>* out) {
  const size_t n = boxes.size();
  out->clear();
  if (n == 0) return;
  if (role() == EngineRole::kFollower) return;  // read-only; see SubscribeBox
  for (const Box& b : boxes) ACCL_CHECK(b.dims() == schema_.dims());
  SubscriptionId first;
  {
    // One id-allocation critical section for the whole batch.
    std::lock_guard<std::mutex> lk(meta_mu_);
    first = next_id_;
    next_id_ += static_cast<SubscriptionId>(n);
  }
  if (wal_ != nullptr) {
    // One WAL record (and typically one shared sync) for the whole batch.
    // On log failure `out` stays empty: none of the batch is acknowledged
    // and none is applied.
    const size_t stride = 2 * static_cast<size_t>(schema_.dims());
    std::vector<float> flat(n * stride);
    for (size_t i = 0; i < n; ++i) {
      std::copy(boxes[i].data(), boxes[i].data() + stride,
                flat.data() + i * stride);
    }
    const Lsn lsn = wal_->AppendSubscribeBatch(
        first, static_cast<uint32_t>(n), schema_.dims(), flat.data());
    if (!wal_->WaitDurable(lsn)) return;
    ApplySubscribeBatch(first, boxes);
    wal_->MarkApplied(lsn);
  } else {
    ApplySubscribeBatch(first, boxes);
  }
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(first + static_cast<SubscriptionId>(i));
  }
  NotifyCheckpointer(n);
}

void SubscriptionEngine::ApplySubscribeBatch(SubscriptionId first,
                                             Span<const Box> boxes) {
  const size_t n = boxes.size();
  // Same rebalance-lock discipline as SubscribeBox, held across the whole
  // grouped insert so a boundary change serializes entirely before or
  // after the batch; matching routes with the epoch-published snapshot and
  // proceeds throughout.
  static const RoutingPlan kNoPlan;
  std::unique_lock<std::mutex> rebalance_lk;
  const RoutingPlan* plan = &kNoPlan;
  if (range_routed_) {
    rebalance_lk = std::unique_lock<std::mutex>(rebalance_mu_);
    plan = &SnapshotUnderRebalanceLock()->plan;
  }

  // Group per target shard; each queue keeps batch order, so the per-shard
  // insert sequences are exactly the subsequences a SubscribeBox loop
  // would have produced.
  exec::ShardQueues queues;
  queues.Build(n, shards_.size(), [&](size_t i, std::vector<uint32_t>* t) {
    t->push_back(
        ShardFor(first + static_cast<SubscriptionId>(i), boxes[i], *plan));
  });

  for (size_t s = 0; s < shards_.size(); ++s) {
    const size_t nq = queues.size(s);
    if (nq == 0) continue;
    const uint32_t* items = queues.items(s);
    // One shard-lock acquisition per target shard — the whole point.
    std::lock_guard<std::mutex> lk(shards_[s]->mu);
    for (size_t j = 0; j < nq; ++j) {
      shards_[s]->index->Insert(first + items[j], boxes[items[j]].view());
    }
    shards_[s]->subs.fetch_add(nq, std::memory_order_relaxed);
  }
  {
    // One owner-map publish for the whole batch.
    std::lock_guard<std::mutex> lk(meta_mu_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      const size_t nq = queues.size(s);
      const uint32_t* items = queues.items(s);
      for (size_t j = 0; j < nq; ++j) {
        shard_of_.emplace(first + items[j], static_cast<uint32_t>(s));
      }
    }
    subscription_count_.fetch_add(n, std::memory_order_relaxed);
  }
  rebalance_lk = {};
  if (tracker_ != nullptr) {
    // Fold the whole batch off the tracker lock, merge once (the stats
    // discipline every hot path here follows).
    adapt::PatternAccumulator acc;
    acc.Reset(schema_.dims());
    for (const Box& b : boxes) acc.AddSubscription(b);
    tracker_->Record(acc);
  }
}

bool SubscriptionEngine::Unsubscribe(SubscriptionId id) {
  if (role() == EngineRole::kFollower) return false;  // read-only
  if (wal_ == nullptr) return ApplyUnsubscribe(id);
  {
    // Don't log mutations that are no-ops from this caller's view. The
    // check races concurrent unsubscribes of the same id, but a logged
    // no-op record replays as a no-op — harmless either way.
    std::lock_guard<std::mutex> lk(meta_mu_);
    if (shard_of_.find(id) == shard_of_.end()) return false;
  }
  const Lsn lsn = wal_->AppendUnsubscribe(id);
  if (!wal_->WaitDurable(lsn)) return false;
  const bool ok = ApplyUnsubscribe(id);
  wal_->MarkApplied(lsn);
  NotifyCheckpointer(1);
  return ok;
}

bool SubscriptionEngine::ApplyUnsubscribe(SubscriptionId id) {
  uint32_t s;
  uint32_t second = 0;
  bool has_second = false;
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    auto it = shard_of_.find(id);
    if (it == shard_of_.end()) return false;
    s = it->second;
    shard_of_.erase(it);
    auto jt = second_home_.find(id);
    if (jt != second_home_.end()) {
      second = jt->second;
      has_second = true;
      second_home_.erase(jt);
    }
  }
  // Both map entries are gone in one atomic step, so no migration phase
  // will touch this id again (each phase re-checks the maps under
  // meta_mu_) — the index copies below are exclusively ours to erase, and
  // a mapped id must exist in its mapped shard(s).
  {
    std::lock_guard<std::mutex> lk(shards_[s]->mu);
    const bool erased = shards_[s]->index->Erase(id);
    ACCL_CHECK(erased);
  }
  shards_[s]->subs.fetch_sub(1, std::memory_order_relaxed);
  if (has_second) {
    // Mid-migration double residency: the destination copy was inserted
    // under the same meta critical section that registered second_home_,
    // so it must still be present. It never counted toward the
    // destination's `subs` (ownership stays at the source until cleanup),
    // so no counter update here.
    std::lock_guard<std::mutex> lk(shards_[second]->mu);
    const bool erased = shards_[second]->index->Erase(id);
    ACCL_CHECK(erased);
  }
  subscription_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

size_t SubscriptionEngine::ShardOf(SubscriptionId id) const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  auto it = shard_of_.find(id);
  return it == shard_of_.end() ? shards_.size() : it->second;
}

std::vector<SubscriptionEngine::ShardInfo> SubscriptionEngine::GetShardInfos()
    const {
  std::vector<ShardInfo> infos;
  infos.reserve(shards_.size());
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    infos.push_back(ShardInfo{sh->index->size(), sh->index->cluster_count(),
                              sh->routed.load(std::memory_order_relaxed)});
  }
  return infos;
}

std::vector<float> SubscriptionEngine::GetRangeBoundaries() const {
  exec::EpochManager::Guard guard = epoch_.Pin();
  // The copy happens while pinned; the guard dies after the return value
  // is constructed.
  return snapshot_.load(std::memory_order_seq_cst)->plan.bounds;
}

uint32_t SubscriptionEngine::routing_dimension() const {
  exec::EpochManager::Guard guard = epoch_.Pin();
  return snapshot_.load(std::memory_order_seq_cst)->plan.dim;
}

int32_t SubscriptionEngine::overflow_split_dimension() const {
  exec::EpochManager::Guard guard = epoch_.Pin();
  return snapshot_.load(std::memory_order_seq_cst)->plan.split_dim;
}

uint64_t SubscriptionEngine::routing_version() const {
  exec::EpochManager::Guard guard = epoch_.Pin();
  return snapshot_.load(std::memory_order_seq_cst)->version;
}

void SubscriptionEngine::SynchronizeEpochs() { epoch_.Synchronize(); }

void SubscriptionEngine::AttachDurability(durability::WriteAheadLog* wal) {
  wal_ = wal;
  if (wal_ != nullptr) wal_->AttachMetrics(metrics_.get());
}

void SubscriptionEngine::SetCheckpointer(durability::Checkpointer* cp) {
  checkpointer_ = cp;
  if (checkpointer_ != nullptr) checkpointer_->AttachMetrics(metrics_.get());
}

void SubscriptionEngine::RefreshGaugesForDump() const {
  obs_->subscriptions->Set(static_cast<int64_t>(
      subscription_count_.load(std::memory_order_relaxed)));
  obs_->heap_allocs->Set(static_cast<int64_t>(obs::HeapAllocsNow()));
  obs_->heap_alloc_hook->Set(obs::HeapAllocHookInstalled() ? 1 : 0);
}

std::string SubscriptionEngine::DumpMetrics() const {
  RefreshGaugesForDump();
  // The engine registry holds everything wired through this engine (its
  // own families plus attached WAL/checkpoint/epoch/replication metrics);
  // the process-default registry holds per-backend kernel dispatch
  // counters shared by every engine in the binary.
  return metrics_->PrometheusText() +
         obs::MetricsRegistry::Default().PrometheusText();
}

std::string SubscriptionEngine::DumpMetricsJson() const {
  RefreshGaugesForDump();
  obs::MetricsSnapshot snap = metrics_->Snapshot();
  obs::MetricsSnapshot proc = obs::MetricsRegistry::Default().Snapshot();
  snap.values.insert(snap.values.end(), proc.values.begin(),
                     proc.values.end());
  std::sort(snap.values.begin(), snap.values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return obs::JsonDump(snap);
}

std::string SubscriptionEngine::DumpTrace() const {
  return obs::TraceRecorder::Global().DrainChromeJson();
}

void SubscriptionEngine::SetTracing(bool on) {
  obs::TraceRecorder::Global().SetEnabled(on);
}

bool SubscriptionEngine::tracing_enabled() {
  return obs::TraceRecorder::enabled();
}

void SubscriptionEngine::NotifyCheckpointer(uint64_t mutations) {
  if (checkpointer_ != nullptr) checkpointer_->OnMutations(mutations);
}

void SubscriptionEngine::CaptureDurableImage(
    durability::EngineImage* out) const {
  // The low-water is read BEFORE any shard scan: every record at or below
  // it was applied (MarkApplied) before this point, and each apply's shard
  // insert completed under the shard lock the scan takes below — so the
  // image provably contains the effect of every record it claims to cover.
  out->lsn = wal_ != nullptr ? wal_->applied_low_water() : kNoLsn;
  out->nd = schema_.dims();
  out->ids.clear();
  out->coords.clear();
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    out->next_id = next_id_;
  }
  // kRange: hold the rebalance lock so a double-residency migration is
  // ordered entirely before or after the scan — otherwise a subscription
  // mid-flight from a not-yet-scanned source into an already-scanned
  // destination would be invisible to both scans (and, being older than
  // the WAL tail, lost). Subscribes briefly serialize with the capture;
  // matching takes no lock we hold and never stalls.
  std::unique_lock<std::mutex> rebalance_lk;
  if (range_routed_) {
    rebalance_lk = std::unique_lock<std::mutex>(rebalance_mu_);
  }
  exec::EpochManager::Guard guard = epoch_.Pin();
  const RoutingSnapshot* snap = snapshot_.load(std::memory_order_seq_cst);
  // The image stores the fence positions only: the learned fence DIMENSION
  // and overflow split are runtime state and reset to the configured
  // initial on recovery (the tracker re-learns them from live traffic;
  // routing stays exact either way because residency is always computed
  // under the recovering engine's own snapshot).
  out->fences = snap->plan.bounds;
  out->routing_version = snap->version;
  const size_t stride = 2 * static_cast<size_t>(schema_.dims());
  std::unordered_set<SubscriptionId> seen;
  for (Shard* sh : snap->shards) {
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->index->ForEachObject([&](ObjectId id, BoxView b) {
      if (!seen.insert(id).second) return;  // double-resident: capture once
      out->ids.push_back(id);
      out->coords.insert(out->coords.end(), b.data(), b.data() + stride);
    });
  }
}

void SubscriptionEngine::RestoreSubscriptions(Span<const SubscriptionId> ids,
                                              const float* coords) {
  const size_t n = ids.size();
  if (n == 0) return;
  const size_t stride = 2 * static_cast<size_t>(schema_.dims());
  static const RoutingPlan kNoPlan;
  std::unique_lock<std::mutex> rebalance_lk;
  const RoutingPlan* plan = &kNoPlan;
  if (range_routed_) {
    rebalance_lk = std::unique_lock<std::mutex>(rebalance_mu_);
    plan = &SnapshotUnderRebalanceLock()->plan;
  }
  // Group per target shard (the SubscribeBatch fast path) and land each
  // group with one BulkInsert behind one lock acquisition.
  exec::ShardQueues queues;
  queues.Build(n, shards_.size(), [&](size_t i, std::vector<uint32_t>* t) {
    t->push_back(ShardFor(ids[i], Box(BoxView(coords + i * stride,
                                              schema_.dims())),
                          *plan));
  });
  SubscriptionId max_id = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const size_t nq = queues.size(s);
    if (nq == 0) continue;
    const uint32_t* items = queues.items(s);
    std::vector<ObjectId> ins_ids;
    std::vector<float> ins_coords;
    ins_ids.reserve(nq);
    ins_coords.reserve(nq * stride);
    for (size_t j = 0; j < nq; ++j) {
      const SubscriptionId id = ids[items[j]];
      ins_ids.push_back(id);
      ins_coords.insert(ins_coords.end(), coords + items[j] * stride,
                        coords + (items[j] + 1) * stride);
      max_id = std::max(max_id, id);
    }
    {
      std::lock_guard<std::mutex> lk(shards_[s]->mu);
      shards_[s]->index->BulkInsert(
          Span<const ObjectId>(ins_ids.data(), ins_ids.size()),
          Span<const float>(ins_coords.data(), ins_coords.size()));
    }
    shards_[s]->subs.fetch_add(nq, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(meta_mu_);
    for (const ObjectId id : ins_ids) {
      shard_of_.emplace(id, static_cast<uint32_t>(s));
    }
  }
  subscription_count_.fetch_add(n, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(meta_mu_);
  if (max_id + 1 > next_id_) next_id_ = max_id + 1;
}

Relation SubscriptionEngine::RelationFor(const Event& event,
                                         MatchPolicy policy) {
  // Point events are enclosure queries under either policy (a point
  // intersects a subscription iff the subscription encloses it).
  return event.is_point || policy == MatchPolicy::kCovering
             ? Relation::kEncloses
             : Relation::kIntersects;
}

void SubscriptionEngine::RecordEvent(size_t matches, size_t verified,
                                     double latency_ms) {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.match_latency_ms.Add(latency_ms);
  ++stats_.events_processed;
  stats_.matches_per_event.Add(static_cast<double>(matches));
  stats_.verified_per_event.Add(static_cast<double>(verified));
}

void SubscriptionEngine::Match(const Event& event,
                               std::vector<SubscriptionId>* out) {
  Match(event, options_.default_policy, out);
}

void SubscriptionEngine::Match(const Event& event, MatchPolicy policy,
                               std::vector<SubscriptionId>* out) {
  ACCL_TRACE_SPAN("match_event");
  Query q(event.box, RelationFor(event, policy));
  WallTimer t;
  size_t matched = 0;
  size_t verified = 0;
  {
    // The pin covers routing AND shard execution: the grace period a
    // migration waits out must include readers that routed with the old
    // table but have not yet looked inside the source shard.
    exec::EpochManager::Guard guard = epoch_.Pin();
    const RoutingSnapshot* snap = snapshot_.load(std::memory_order_seq_cst);
    // Returns the raw (pre-dedup) match count; the kRange branch discards
    // it and recounts after deduplication instead.
    const auto run = [&](Shard& sh) -> size_t {
      sh.routed.fetch_add(1, std::memory_order_relaxed);
      QueryMetrics m;
      std::lock_guard<std::mutex> lk(sh.mu);
      sh.index->Execute(q, out, &m);
      verified += m.objects_verified;
      return m.result_count;
    };
    if (range_routed_) {
      const size_t first = out->size();
      std::vector<uint32_t> route;
      RouteEvent(snap->plan, event.box, &route);
      for (const uint32_t s : route) run(*snap->shards[s]);
      // A migrating subscription may be double-resident in two routed
      // shards; the ObjectId sort makes duplicates adjacent and one
      // unique pass removes them (this is also what makes the routed
      // Match order deterministic across boundary configurations).
      std::sort(out->begin() + first, out->end());
      out->erase(std::unique(out->begin() + first, out->end()), out->end());
      matched = out->size() - first;
    } else {
      for (const auto& sh : shards_) matched += run(*sh);
    }
  }  // unpin before MaybeAutoRebalance/MaybeAutoAdapt: their grace-period
     // waits would otherwise deadlock on our own pin
  RecordEvent(matched, verified, t.ElapsedMs());
  if (tracker_ != nullptr) tracker_->RecordEvent(event.box);
  MaybeAutoRebalance(1);
  MaybeAutoAdapt(1);
}

void SubscriptionEngine::MatchBatch(Span<const Event> events,
                                    MatchBatchResult* out) {
  MatchBatchImpl(events, options_.default_policy, out, nullptr);
}

void SubscriptionEngine::MatchBatch(Span<const Event> events,
                                    MatchPolicy policy,
                                    MatchBatchResult* out) {
  MatchBatchImpl(events, policy, out, nullptr);
}

void SubscriptionEngine::MatchBatch(Span<const Event> events,
                                    MatchSink* sink) {
  MatchBatchImpl(events, options_.default_policy, nullptr, sink);
}

void SubscriptionEngine::MatchBatch(Span<const Event> events,
                                    MatchPolicy policy, MatchSink* sink) {
  MatchBatchImpl(events, policy, nullptr, sink);
}

std::unique_ptr<SubscriptionEngine::PipelineScratch>
SubscriptionEngine::AcquireScratch() {
  {
    std::lock_guard<std::mutex> lk(scratch_pool_mu_);
    if (!scratch_pool_.empty()) {
      std::unique_ptr<PipelineScratch> s = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return s;
    }
  }
  return std::make_unique<PipelineScratch>();
}

void SubscriptionEngine::ReleaseScratch(std::unique_ptr<PipelineScratch> s) {
  std::lock_guard<std::mutex> lk(scratch_pool_mu_);
  scratch_pool_.push_back(std::move(s));
}

// Streamed shard-affine pipeline.
//
// The former shape — one task per shard holding the shard mutex across its
// whole queue, then a single-threaded cursor-walk merge — serialized the
// wall path three ways: the merge ran on one core while the pool idled,
// one hot shard's task bounded the fan-out's makespan behind a single
// mutex hold, and every call re-allocated queues/scratch/results. The
// pipeline removes all three:
//
//   - Shard queues are executed in fixed kMatchChunkSize chunks; a worker
//     claims the next chunk of (preferably) its affine shard under a
//     try_lock, so a hot shard is interleaved across workers and a
//     concurrent single-event Match is never starved for a whole batch.
//     Per-shard execution order stays the queue order regardless of which
//     worker runs a chunk (claims advance under the shard mutex), so the
//     per-shard adaptation sequence — and therefore every structure
//     decision — is byte-identical to the serial engine's.
//   - Each event carries a remaining-visit countdown initialized to its
//     routing degree. The worker whose chunk performs an event's last
//     visit pushes it onto a ready stack; workers drain that stack and
//     finalize (gather via the queues' inverse item->(shard,position) CSR,
//     sort, dedup under kRange, emit to the result slot or MatchSink)
//     while other chunks are still executing. The merge therefore overlaps
//     execution and spreads across all workers; no barrier remains.
//   - All transient state lives in a pooled PipelineScratch and the
//     capacity-preserving MatchBatchResult, so steady-state batches
//     allocate nothing (gated by bench_parallel_sdi's allocation counter).
//
// Memory ordering: chunk output is written under the shard mutex, the
// countdown decrement is acq_rel (the last decrementer observes every
// earlier visit's writes through the chain of decrements), the ready-stack
// push/pop are release/acquire — so a finalizer reads fully published
// chunk buffers even when three different workers executed the visits.
void SubscriptionEngine::MatchBatchImpl(Span<const Event> events,
                                        MatchPolicy policy,
                                        MatchBatchResult* out,
                                        MatchSink* sink) {
  const size_t ne = events.size();
  const size_t k = shards_.size();
  std::unique_ptr<PipelineScratch> scratch = AcquireScratch();
  PipelineScratch& ps = *scratch;
  MatchBatchResult* res = out != nullptr ? out : &ps.sink_result;
  res->Clear();
  if (out != nullptr) res->matches.resize(ne);
  res->per_shard.resize(k);
  if (ne == 0) {
    ReleaseScratch(std::move(scratch));
    return;
  }
  ACCL_TRACE_SPAN_ARG("match_batch", static_cast<uint32_t>(ne));
  obs_->batches->Add(1);
  obs_->events->Add(ne);
  WallTimer t;

  // Pin once for the whole batch; the pool workers below run under this
  // pin (they finish before the fan-out returns, and the guard outlives
  // it), so they never touch the epoch machinery themselves.
  exec::EpochManager::Guard guard = epoch_.Pin();
  const RoutingSnapshot* snap = snapshot_.load(std::memory_order_seq_cst);
  res->routing_version = snap->version;
  res->epoch = guard.epoch();

  // Per-shard work queues. Broadcast policies enqueue every event on every
  // shard; kRange asks the router, under the one snapshot the whole batch
  // shares, which shards each event's box overlaps.
  {
    ACCL_TRACE_SPAN("route_scatter");
    if (range_routed_) {
      ps.queues.Build(ne, k, [&](size_t e, std::vector<uint32_t>* targets) {
        RouteEvent(snap->plan, events[e].box, targets);
      });
      // Overflow-pressure gauge: resident (owned) subscriptions in the
      // overflow shard at dispatch time. overflow_shard names the entry so
      // broadcast callers see "absent", never a silent zero.
      res->overflow_shard = k - 1;
      res->per_shard[k - 1].overflow_subscriptions =
          snap->shards[k - 1]->subs.load(std::memory_order_relaxed);
    } else {
      ps.queues.BuildBroadcast(ne, k);
    }
  }
  uint64_t routed_total = 0;
  for (size_t s = 0; s < k; ++s) {
    res->per_shard[s].events_routed = ps.queues.size(s);
    res->per_shard[s].resident_subscriptions =
        snap->shards[s]->subs.load(std::memory_order_relaxed);
    snap->shards[s]->routed.fetch_add(ps.queues.size(s),
                                      std::memory_order_relaxed);
    routed_total += ps.queues.size(s);
  }
  obs_->events_routed->Add(routed_total);

  // Per-event countdowns and the ready stack.
  if (ps.event_cap < ne) {
    ps.remaining.reset(new std::atomic<uint32_t>[ne]);
    ps.ready_next.reset(new int64_t[ne]);
    ps.event_cap = ne;
  }
  ps.matched.assign(ne, 0);
  ps.verified.assign(ne, 0);
  ps.ready_head.store(-1, std::memory_order_relaxed);
  ps.events_done.store(0, std::memory_order_relaxed);
  for (size_t e = 0; e < ne; ++e) {
    const size_t deg = ps.queues.item_degree(e);
    // Every event visits >= 1 shard (kRange always includes the overflow
    // shard; broadcast fans to all K >= 1), so the countdown cannot start
    // at zero and every event is finalized by exactly one worker.
    ACCL_DCHECK(deg > 0);
    ps.remaining[e].store(static_cast<uint32_t>(deg),
                          std::memory_order_relaxed);
  }

  // Fixed chunk layout per shard.
  if (ps.shard_cap < k) {
    ps.shard_runs.reset(new PipelineScratch::ShardRun[k]);
    ps.shard_cap = k;
  }
  size_t total_chunks = 0;
  for (size_t s = 0; s < k; ++s) {
    ps.shard_runs[s].chunk_base = total_chunks;
    ps.shard_runs[s].next_pos.store(0, std::memory_order_relaxed);
    total_chunks +=
        (ps.queues.size(s) + kMatchChunkSize - 1) / kMatchChunkSize;
  }
  if (ps.chunks.size() < total_chunks) ps.chunks.resize(total_chunks);

  const size_t workers =
      pool_ != nullptr
          ? std::min(pool_->concurrency(), std::max<size_t>(1, total_chunks))
          : 1;
  if (ps.gather.size() < workers) ps.gather.resize(workers);
  if (ps.worker_query.size() < workers) ps.worker_query.resize(workers);
  // Residual-serialization counters: one row per worker (disjoint writes),
  // folded below after the fan-out joins.
  if (ps.try_lock_fail.size() < workers) ps.try_lock_fail.resize(workers);
  for (size_t w = 0; w < workers; ++w) ps.try_lock_fail[w].assign(k, 0);
  ps.pop_retry.assign(workers, 0);

  if (workers > 1) {
    pool_->ParallelForDynamic(workers, [&](size_t w) {
      RunPipelineWorker(w, ps, snap, events, policy, res, sink);
    });
  } else {
    RunPipelineWorker(0, ps, snap, events, policy, res, sink);
  }
  ACCL_DCHECK(ps.events_done.load(std::memory_order_relaxed) == ne);
  // Shard reads are done. Unpinning now shortens the grace period
  // concurrent migrations wait for — and MaybeAutoRebalance below must
  // not run pinned.
  guard.Release();

  uint64_t trylock_fail_total = 0;
  uint64_t pop_retry_total = 0;
  for (size_t w = 0; w < workers; ++w) {
    for (size_t s = 0; s < k; ++s) {
      res->per_shard[s].try_lock_failures += ps.try_lock_fail[w][s];
      trylock_fail_total += ps.try_lock_fail[w][s];
    }
    res->ready_pop_retries += ps.pop_retry[w];
    pop_retry_total += ps.pop_retry[w];
  }
  obs_->trylock_failures->Add(trylock_fail_total);
  obs_->ready_pop_retries->Add(pop_retry_total);
  res->AggregateShards();
  // Latency is read after the fan-out drains so the batch path reports the
  // same end-to-end per-event cost Match() reports for its full path.
  const double per_event_ms = t.ElapsedMs() / static_cast<double>(ne);
  // Fold per-event values into local summaries OFF the lock, then merge:
  // the stats lock is held O(1) per batch, not O(ne) (the former loop
  // added the same averaged latency ne times while holding stats_mu_).
  Summary matched_sum;
  Summary verified_sum;
  uint64_t matched_total = 0;
  for (size_t e = 0; e < ne; ++e) {
    matched_sum.Add(static_cast<double>(ps.matched[e]));
    verified_sum.Add(static_cast<double>(ps.verified[e]));
    matched_total += ps.matched[e];
  }
  obs_->matches->Add(matched_total);
  obs_->batch_us->Record(static_cast<uint64_t>(
      std::max(0.0, std::round(t.ElapsedMs() * 1000.0))));
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.match_latency_ms.AddN(ne, per_event_ms);
    stats_.events_processed += ne;
    stats_.matches_per_event.Merge(matched_sum);
    stats_.verified_per_event.Merge(verified_sum);
  }
  if (tracker_ != nullptr) {
    // Off-lock fold (pooled accumulator), one tracker merge per batch.
    ps.pattern.Reset(schema_.dims());
    for (size_t e = 0; e < ne; ++e) ps.pattern.AddEvent(events[e].box);
    tracker_->Record(ps.pattern);
  }
  ReleaseScratch(std::move(scratch));
  MaybeAutoRebalance(ne);
  MaybeAutoAdapt(ne);
}

void SubscriptionEngine::RunPipelineWorker(size_t worker_id,
                                           PipelineScratch& ps,
                                           const RoutingSnapshot* snap,
                                           Span<const Event> events,
                                           MatchPolicy policy,
                                           MatchBatchResult* res,
                                           MatchSink* sink) {
  const size_t ne = events.size();
  const size_t k = shards_.size();
  ACCL_TRACE_SPAN_ARG("pipeline_worker", static_cast<uint32_t>(worker_id));
  // Claim accounting is kept in locals and flushed once after the loop:
  // the loop body is the engine's hottest path and the obs counters,
  // while cheap, are still shared cache lines.
  uint64_t chunks_claimed = 0;
  uint64_t chunks_stolen = 0;
  std::vector<ObjectId>& buf = ps.gather[worker_id];

  // Finalize one ready event: gather its per-shard slices through the
  // inverse visit CSR, sort, dedup under kRange (double-residency), emit.
  const auto finalize = [&](size_t e) {
    ACCL_TRACE_SPAN_ARG("finalize_event", static_cast<uint32_t>(e));
    buf.clear();
    const size_t deg = ps.queues.item_degree(e);
    const uint32_t* vshards = ps.queues.item_shards(e);
    const uint32_t* vpos = ps.queues.item_positions(e);
    uint64_t verified = 0;
    for (size_t v = 0; v < deg; ++v) {
      const size_t p = vpos[v];
      const PipelineScratch::Chunk& ch =
          ps.chunks[ps.shard_runs[vshards[v]].chunk_base +
                    p / kMatchChunkSize];
      const size_t within = p % kMatchChunkSize;
      buf.insert(buf.end(), ch.ids.begin() + ch.offsets[within],
                 ch.ids.begin() + ch.offsets[within + 1]);
      verified += ch.verified[within];
    }
    // Same deterministic order as the serial oracle: ObjectId-sorted, with
    // the adjacent-unique pass removing double-resident duplicates under
    // kRange. Any worker finalizing in any order produces identical bytes.
    std::sort(buf.begin(), buf.end());
    if (range_routed_) {
      buf.erase(std::unique(buf.begin(), buf.end()), buf.end());
    }
    ps.matched[e] = static_cast<uint32_t>(buf.size());
    ps.verified[e] = verified;
    if (sink == nullptr) {
      res->matches[e].assign(buf.begin(), buf.end());
    } else {
      sink->OnEventMatches(e, Span<const ObjectId>(buf.data(), buf.size()),
                           verified);
    }
    ps.events_done.fetch_add(1, std::memory_order_release);
  };

  const auto pop_ready = [&]() -> int64_t {
    int64_t head = ps.ready_head.load(std::memory_order_acquire);
    // ready_next[head] is immutable once head is published, and events are
    // never re-pushed, so the CAS has no ABA window.
    while (head >= 0 && !ps.ready_head.compare_exchange_weak(
                            head, ps.ready_next[head],
                            std::memory_order_acq_rel,
                            std::memory_order_acquire)) {
      ++ps.pop_retry[worker_id];  // lost the head race to another worker
    }
    return head;
  };
  const auto push_ready = [&](size_t e) {
    int64_t head = ps.ready_head.load(std::memory_order_relaxed);
    do {
      ps.ready_next[e] = head;
    } while (!ps.ready_head.compare_exchange_weak(
        head, static_cast<int64_t>(e), std::memory_order_release,
        std::memory_order_relaxed));
  };

  // Executes the next chunk of shard s (caller holds the shard mutex).
  // Returns the claimed [begin, end) positions; begin == end when another
  // worker drained the queue between our racy check and the lock.
  const auto exec_chunk_locked = [&](size_t s) -> std::pair<size_t, size_t> {
    PipelineScratch::ShardRun& run = ps.shard_runs[s];
    const size_t nq = ps.queues.size(s);
    const size_t p = run.next_pos.load(std::memory_order_relaxed);
    if (p >= nq) return {p, p};
    const size_t end = std::min(p + kMatchChunkSize, nq);
    const uint32_t* q_items = ps.queues.items(s);
    PipelineScratch::Chunk& ch =
        ps.chunks[run.chunk_base + p / kMatchChunkSize];
    const size_t len = end - p;
    ch.ids.clear();
    ch.offsets.resize(len + 1);
    ch.verified.resize(len);
    ch.offsets[0] = 0;
    Shard& sh = *snap->shards[s];
    Query& q = ps.worker_query[worker_id];
    for (size_t j = 0; j < len; ++j) {
      const Event& ev = events[q_items[p + j]];
      q.box = ev.box;  // copy-assign reuses the warm Box's storage
      q.rel = RelationFor(ev, policy);
      QueryMetrics m;
      sh.index->Execute(q, &ch.ids, &m);
      ch.offsets[j + 1] = static_cast<uint32_t>(ch.ids.size());
      ch.verified[j] = m.objects_verified;
      res->per_shard[s].Add(m);  // only ever touched under this shard's mu
    }
    run.next_pos.store(end, std::memory_order_relaxed);
    return {p, end};
  };

  // Post-execution handoff (mutex released): count down the chunk's events
  // and stack the ones whose last visit just completed. acq_rel: the final
  // decrement observes every other visit's chunk writes via the preceding
  // decrements, and push_ready's release makes them visible to the popper.
  const auto settle = [&](size_t s, size_t p, size_t end) {
    const uint32_t* q_items = ps.queues.items(s);
    for (size_t j = p; j < end; ++j) {
      const uint32_t e = q_items[j];
      if (ps.remaining[e].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        push_ready(e);
      }
    }
  };

  // Spread initial affinities across shards; after a successful claim a
  // worker sticks to its shard (queue locality, amortized adaptation).
  size_t affinity = (worker_id * k) / std::max<size_t>(1, ps.gather.size());
  if (affinity >= k) affinity = k - 1;
  for (;;) {
    // Finalization first: it is the only work no mutex guards, and
    // draining it keeps the emit path ahead of execution.
    for (int64_t e; (e = pop_ready()) >= 0;) finalize(static_cast<size_t>(e));
    if (ps.events_done.load(std::memory_order_acquire) == ne) break;

    bool executed = false;
    size_t first_pending = k;
    for (size_t i = 0; i < k; ++i) {
      const size_t s = (affinity + i) % k;
      if (ps.shard_runs[s].next_pos.load(std::memory_order_relaxed) >=
          ps.queues.size(s)) {
        continue;
      }
      if (first_pending == k) first_pending = s;
      Shard& sh = *snap->shards[s];
      if (!sh.mu.try_lock()) {  // busy: steal from the next shard
        ++ps.try_lock_fail[worker_id][s];
        continue;
      }
      size_t p, end;
      {
        ACCL_TRACE_SPAN_ARG("shard_execute", static_cast<uint32_t>(s));
        std::tie(p, end) = exec_chunk_locked(s);
      }
      sh.mu.unlock();
      if (p != end) {
        settle(s, p, end);
        ++chunks_claimed;
        if (i != 0) ++chunks_stolen;  // claimed off the affine shard
        affinity = s;
        executed = true;
        break;
      }
    }
    if (executed) continue;
    if (first_pending < k) {
      // Every pending shard's mutex was momentarily held (another worker's
      // chunk, or a concurrent single-event Match). If finalize work
      // arrived meanwhile, loop back for it; otherwise block once on the
      // first pending shard — bounded by one chunk of the current holder —
      // instead of spinning.
      if (ps.ready_head.load(std::memory_order_acquire) >= 0) continue;
      Shard& sh = *snap->shards[first_pending];
      sh.mu.lock();
      size_t p, end;
      {
        ACCL_TRACE_SPAN_ARG("shard_execute",
                            static_cast<uint32_t>(first_pending));
        std::tie(p, end) = exec_chunk_locked(first_pending);
      }
      sh.mu.unlock();
      if (p != end) {
        settle(first_pending, p, end);
        ++chunks_claimed;
        if (first_pending != affinity) ++chunks_stolen;
        affinity = first_pending;
      }
      continue;
    }
    // All chunks claimed; remaining events are finalizing on other
    // workers (or about to land on the ready stack).
    std::this_thread::yield();
  }
  obs_->chunks_claimed->Add(chunks_claimed);
  obs_->chunks_stolen->Add(chunks_stolen);
}

void SubscriptionEngine::MaybeAutoRebalance(uint64_t events) {
  if (!range_routed_ || options_.rebalance_period == 0) return;
  if (events_since_check_.fetch_add(events, std::memory_order_relaxed) +
          events <
      options_.rebalance_period) {
    return;
  }
  // If an auto-rebalance is already in flight there is nothing useful to
  // queue behind it. An atomic flag — not mutex try_lock, which the
  // standard allows to fail spuriously — keeps the skip deterministic for
  // deterministic call sequences (single callers always pass).
  if (rebalance_inflight_.exchange(true, std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(rebalance_mu_);
    events_since_check_.store(0, std::memory_order_relaxed);
    RebalanceLocked(/*force=*/false);
  }
  rebalance_inflight_.store(false, std::memory_order_release);
}

void SubscriptionEngine::MaybeAutoAdapt(uint64_t events) {
  if (tracker_ == nullptr) return;
  if (adapt_events_since_window_.fetch_add(events,
                                           std::memory_order_relaxed) +
          events <
      options_.adaptive.sample_window) {
    return;
  }
  // Same deterministic-skip discipline as MaybeAutoRebalance: an atomic
  // flag, not mutex try_lock, so single-caller sequences never skip a
  // window at random.
  if (adapt_inflight_.exchange(true, std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(rebalance_mu_);
    adapt_events_since_window_.store(0, std::memory_order_relaxed);
    EvaluateAdaptiveLocked();
  }
  adapt_inflight_.store(false, std::memory_order_release);
}

bool SubscriptionEngine::EvaluateAdaptiveLocked() {
  obs_->windows_evaluated->Add(1);
  const adapt::PatternSnapshot pattern = tracker_->Snapshot();
  tracker_->AdvanceWindow();
  const RoutingPlan& cur = SnapshotUnderRebalanceLock()->plan;

  adapt::AdvisorState st;
  st.current_dim = cur.dim;
  st.split_active = cur.split_dim >= 0;
  st.range_slices = num_range_shards_;
  st.split_slices = num_split_shards_;
  st.overflow_residents =
      shards_.back()->subs.load(std::memory_order_relaxed);
  st.planner_predicted_spill =
      static_cast<uint64_t>(std::max<int64_t>(0, obs_->spill_last->Value()));
  st.total_subscriptions =
      subscription_count_.load(std::memory_order_relaxed);

  adapt::RoutingDecision d = advisor_->Evaluate(pattern, st);
  {
    std::lock_guard<std::mutex> lk(adapt_estimates_mu_);
    last_estimates_ = std::move(d.estimates);
  }
  switch (d.kind) {
    case adapt::RoutingDecision::Kind::kNone:
      return false;
    case adapt::RoutingDecision::Kind::kSwitchDimension: {
      // Re-fence on the winning dimension; any resident anywhere may
      // re-route (straddlers become non-straddlers and vice versa), so
      // the scan covers every shard. An active split dies with the old
      // dimension's straddler population.
      RoutingPlan plan;
      plan.dim = d.dim;
      plan.bounds = std::move(d.fences);
      ApplyRoutingLocked(std::move(plan), AllShardIds());
      obs_->dimension_switches->Add(1);
      ACCL_TRACE_INSTANT("adapt_dimension_switch", d.dim);
      // The old pattern argued for this switch; it must not immediately
      // argue again. The rebalancer's load window resets with it.
      tracker_->ResetWindow();
      for (size_t s = 0; s < shards_.size(); ++s) {
        routed_at_reset_[s] =
            shards_[s]->routed.load(std::memory_order_relaxed);
      }
      return true;
    }
    case adapt::RoutingDecision::Kind::kSplitOverflow: {
      RoutingPlan plan = cur;
      plan.split_dim = static_cast<int32_t>(d.dim);
      plan.split_bounds = std::move(d.fences);
      const size_t moved =
          ApplyRoutingLocked(std::move(plan), OverflowShardIds());
      obs_->overflow_splits->Add(1);
      obs_->straddlers_split->Add(moved);
      ACCL_TRACE_INSTANT("adapt_overflow_split",
                         static_cast<uint32_t>(moved));
      return true;
    }
  }
  return false;
}

AdaptiveRoutingStats SubscriptionEngine::adaptive_stats() const {
  AdaptiveRoutingStats st;
  st.enabled = tracker_ != nullptr;
  {
    exec::EpochManager::Guard guard = epoch_.Pin();
    const RoutingSnapshot* snap = snapshot_.load(std::memory_order_seq_cst);
    st.fence_dimension = snap->plan.dim;
    st.split_dimension = snap->plan.split_dim;
  }
  st.dimension_switches = obs_->dimension_switches->Value();
  st.overflow_splits = obs_->overflow_splits->Value();
  st.windows_evaluated = obs_->windows_evaluated->Value();
  if (tracker_ != nullptr) {
    st.events_observed = tracker_->events_observed();
    st.subscriptions_observed = tracker_->subscriptions_observed();
  }
  {
    std::lock_guard<std::mutex> lk(adapt_estimates_mu_);
    st.last_estimates = last_estimates_;
  }
  return st;
}

SubscriptionEngine::RebalanceStats SubscriptionEngine::rebalance_stats()
    const {
  RebalanceStats st;
  st.boundary_moves = obs_->boundary_moves->Value();
  st.subscriptions_migrated = obs_->subs_migrated->Value();
  st.predicted_straddler_spill = obs_->spill_total->Value();
  st.last_predicted_straddler_spill =
      static_cast<uint64_t>(std::max<int64_t>(0, obs_->spill_last->Value()));
  st.dimension_switches = obs_->dimension_switches->Value();
  st.overflow_splits = obs_->overflow_splits->Value();
  st.straddlers_split = obs_->straddlers_split->Value();
  return st;
}

bool SubscriptionEngine::RebalanceOnce() {
  if (!range_routed_) return false;
  std::lock_guard<std::mutex> lk(rebalance_mu_);
  return RebalanceLocked(/*force=*/true);
}

std::vector<uint32_t> SubscriptionEngine::AllShardIds() const {
  std::vector<uint32_t> all(shards_.size());
  std::iota(all.begin(), all.end(), 0u);
  return all;
}

std::vector<uint32_t> SubscriptionEngine::OverflowShardIds() const {
  std::vector<uint32_t> ids;
  for (uint32_t s = num_range_shards_; s < shards_.size(); ++s) {
    ids.push_back(s);
  }
  return ids;
}

bool SubscriptionEngine::SetRangeBoundaries(const std::vector<float>& bounds) {
  if (!range_routed_) return false;
  if (bounds.size() != static_cast<size_t>(num_range_shards_) - 1) {
    return false;
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) return false;
  }
  std::lock_guard<std::mutex> lk(rebalance_mu_);
  // Arbitrary table change: any shard may hold re-routed residents, so the
  // migration scan covers all of them (overflow drains too). The fence
  // dimension and split state carry over unchanged.
  RoutingPlan plan = SnapshotUnderRebalanceLock()->plan;
  plan.bounds = bounds;
  ApplyRoutingLocked(std::move(plan), AllShardIds());
  obs_->boundary_moves->Add(1);
  for (size_t s = 0; s < shards_.size(); ++s) {
    routed_at_reset_[s] = shards_[s]->routed.load(std::memory_order_relaxed);
  }
  return true;
}

bool SubscriptionEngine::SetRoutingDimension(uint32_t dim) {
  if (!range_routed_ || dim >= schema_.dims()) return false;
  std::lock_guard<std::mutex> lk(rebalance_mu_);
  const RoutingPlan& cur = SnapshotUnderRebalanceLock()->plan;
  if (cur.dim == dim) return true;
  RoutingPlan plan;
  plan.dim = dim;
  plan.bounds = cur.bounds;  // positions retained; the straddler SET changes
  // An active split is cleared: its slicing was chosen against the old
  // dimension's straddler population.
  ApplyRoutingLocked(std::move(plan), AllShardIds());
  obs_->dimension_switches->Add(1);
  ACCL_TRACE_INSTANT("adapt_dimension_switch", dim);
  if (tracker_ != nullptr) tracker_->ResetWindow();
  for (size_t s = 0; s < shards_.size(); ++s) {
    routed_at_reset_[s] = shards_[s]->routed.load(std::memory_order_relaxed);
  }
  return true;
}

bool SubscriptionEngine::SetOverflowSplit(uint32_t dim,
                                          const std::vector<float>& fences) {
  if (!range_routed_ || num_split_shards_ == 0 || dim >= schema_.dims()) {
    return false;
  }
  if (fences.size() + 1 > num_split_shards_) return false;
  for (size_t i = 1; i < fences.size(); ++i) {
    if (!(fences[i - 1] < fences[i])) return false;
  }
  std::lock_guard<std::mutex> lk(rebalance_mu_);
  RoutingPlan plan = SnapshotUnderRebalanceLock()->plan;
  plan.split_dim = static_cast<int32_t>(dim);
  plan.split_bounds = fences;
  // Only the overflow family can re-route: range-slice residents are not
  // straddlers, so their home is unaffected by split fences.
  const size_t moved = ApplyRoutingLocked(std::move(plan), OverflowShardIds());
  obs_->overflow_splits->Add(1);
  obs_->straddlers_split->Add(moved);
  ACCL_TRACE_INSTANT("adapt_overflow_split", static_cast<uint32_t>(moved));
  return true;
}

bool SubscriptionEngine::ClearOverflowSplit() {
  if (!range_routed_) return false;
  std::lock_guard<std::mutex> lk(rebalance_mu_);
  RoutingPlan plan = SnapshotUnderRebalanceLock()->plan;
  if (plan.split_dim < 0) return true;
  plan.split_dim = -1;
  plan.split_bounds.clear();
  ApplyRoutingLocked(std::move(plan), OverflowShardIds());
  return true;
}

SubscriptionEngine::RebalanceLoadSnapshot
SubscriptionEngine::GetRebalanceLoadSnapshot() const {
  RebalanceLoadSnapshot snap;
  if (!range_routed_) return snap;
  std::lock_guard<std::mutex> lk(rebalance_mu_);
  const size_t rk = num_range_shards_;
  snap.range_loads.resize(rk);
  for (size_t s = 0; s < rk; ++s) {
    const uint64_t window =
        shards_[s]->routed.load(std::memory_order_relaxed) -
        routed_at_reset_[s];
    snap.range_loads[s] =
        shards_[s]->subs.load(std::memory_order_relaxed) + window;
  }
  // The whole overflow family: split sub-shards plus the catch-all (every
  // resident there is a straddler of the current primary fences).
  for (size_t s = rk; s < shards_.size(); ++s) {
    snap.overflow_subscriptions +=
        shards_[s]->subs.load(std::memory_order_relaxed);
  }
  snap.total_subscriptions =
      subscription_count_.load(std::memory_order_relaxed);
  snap.straddler_fraction =
      snap.total_subscriptions == 0
          ? 0.0
          : static_cast<double>(snap.overflow_subscriptions) /
                static_cast<double>(snap.total_subscriptions);
  return snap;
}

bool SubscriptionEngine::RebalanceLocked(bool force) {
  const size_t rk = num_range_shards_;  // overflow family excluded
  if (rk < 2) return false;

  // Window loads: resident subscriptions plus events routed since the last
  // rebalance — a shard can be hot because it is big or because the event
  // stream concentrates on it, and a boundary move helps with both.
  std::vector<uint64_t> load(rk);
  uint64_t total = 0;
  for (size_t s = 0; s < rk; ++s) {
    const uint64_t window = shards_[s]->routed.load(std::memory_order_relaxed) -
                            routed_at_reset_[s];
    load[s] = shards_[s]->subs.load(std::memory_order_relaxed) + window;
    total += load[s];
  }
  if (!force) {
    if (total < options_.rebalance_min_load) return false;
    uint64_t hottest = 0;
    for (size_t s = 0; s < rk; ++s) hottest = std::max(hottest, load[s]);
    const double mean = static_cast<double>(total) / static_cast<double>(rk);
    if (static_cast<double>(hottest) <
        options_.rebalance_trigger_ratio * mean) {
      return false;
    }
  }
  // Pick the adjacent pair with the largest load gap (only adjacent slices
  // share a fence, so only they can trade residents with one boundary
  // move); the heavier side donates.
  size_t best_f = 0;
  uint64_t best_gap = 0;
  for (size_t f = 0; f + 1 < rk; ++f) {
    const uint64_t gap = load[f] > load[f + 1] ? load[f] - load[f + 1]
                                               : load[f + 1] - load[f];
    if (gap > best_gap) {
      best_gap = gap;
      best_f = f;
    }
  }
  if (best_gap == 0) return false;  // flat profile: nothing to gain
  const size_t h = load[best_f] >= load[best_f + 1] ? best_f : best_f + 1;
  const size_t l = h == best_f ? best_f + 1 : best_f;

  RoutingPlan plan = SnapshotUnderRebalanceLock()->plan;
  std::vector<float>& bounds = plan.bounds;
  const Dim dim = static_cast<Dim>(plan.dim);
  // Donor residents' fence-dimension extents. The move is ranked by the
  // endpoint FACING the receiver: a donor resident leaves when the moving
  // fence passes that endpoint — shedding downward, every box with
  // lo0 < fence leaves (to the receiver if it fits, to overflow if it
  // straddles); shedding upward, every box with hi0 >= fence leaves.
  // Ranking by the receiver-facing endpoint therefore predicts the donor's
  // loss *exactly*, straddlers included — ranking by the far endpoint
  // counts only the boxes that clear the fence entirely, so the straddler
  // spill to overflow comes on top of the plan, overshoots in dense
  // regions, and makes repeated passes slosh the same residents back and
  // forth forever. Both endpoints are kept so the planner can also report
  // how much of the loss is straddler spill.
  std::vector<std::pair<float, float>> exts;  // (lo0, hi0)
  {
    std::lock_guard<std::mutex> lk(shards_[h]->mu);
    exts.reserve(shards_[h]->index->size());
    shards_[h]->index->ForEachObject([&](ObjectId, BoxView b) {
      exts.emplace_back(b.lo(dim), b.hi(dim));
    });
  }
  if (exts.size() < 2) return false;
  const bool receiver_below = l < h;
  std::sort(exts.begin(), exts.end(),
            [receiver_below](const auto& a, const auto& b) {
              return receiver_below ? a.first < b.first : a.second < b.second;
            });
  // Shed enough residents to halve the pair's load gap (per-resident load
  // approximated as load[h]/exts.size()). Halving — not equal-splitting the
  // donor — is what makes repeated passes converge to a fixed point; a
  // move that rounds to zero residents is below the resolution of the
  // boundary and refused.
  size_t m = static_cast<size_t>(
      static_cast<uint64_t>(exts.size()) * best_gap / (2 * load[h]));
  if (m == 0) return false;
  m = std::min(m, exts.size() - 1);

  // The index (into bounds) of the fence the pair shares. Receiver below:
  // bounds[h-1] moves up past the shed residents' smallest lower
  // endpoints; receiver above: bounds[h] moves down past their largest
  // upper endpoints.
  const size_t fence = receiver_below ? h - 1 : h;

  // Fence position implied by shedding `j` residents, or false when the
  // position is unusable (mass sits on the current fence, or the move
  // would break the boundary array's strict ascent).
  const auto fence_for = [&](size_t j, float* out_fence) -> bool {
    if (receiver_below) {
      const float f = exts[j].first;
      if (f <= bounds[fence]) return false;
      *out_fence = f;
      return true;
    }
    const float f = exts[exts.size() - j].second;
    if (f >= bounds[fence]) return false;
    if (fence >= 1 && f <= bounds[fence - 1]) return false;
    *out_fence = f;
    return true;
  };
  // Straddler spill a fence position predicts: departing donors that
  // straddle the NEW fence land in the overflow shard instead of the
  // receiver. Donor residents lie entirely inside slice h, so the moved
  // fence is the only one they can straddle.
  const auto spill_for = [&](float f) {
    uint64_t spill = 0;
    for (const auto& [lo0, hi0] : exts) {
      if (lo0 < f && hi0 >= f) ++spill;
    }
    return spill;
  };

  // Overflow-aware fence placement: the exact halving count m is one
  // candidate; the planner also evaluates shed counts within ±25% of m —
  // every candidate still roughly halves the load gap — and deviates from
  // m only for a candidate predicting less than HALF of m's straddler
  // spill (tie-breaking toward m). A fence repeatedly cutting a dense
  // region is what inflates the overflow shard (every routed event pays an
  // overflow visit), so trading a quarter of the balance step for a fence
  // that lands in a gap is a good deal — but small spill differences must
  // not win, or the planner drifts off the halving point at every pass and
  // repeated passes converge noticeably slower.
  // rebalance_fence_candidates == 1 reproduces the single-candidate
  // planner exactly.
  const size_t n_cand =
      std::max<uint32_t>(1, options_.rebalance_fence_candidates);
  const size_t j_lo = n_cand == 1 ? m : std::max<size_t>(1, m - m / 4);
  const size_t j_hi = n_cand == 1 ? m : std::min(exts.size() - 1, m + m / 4);
  float fence_m = 0.0f;
  const bool have_m = fence_for(m, &fence_m);
  const uint64_t spill_m = have_m ? spill_for(fence_m) : 0;
  bool have = false;
  float new_fence = 0.0f;
  uint64_t best_spill = 0;
  size_t best_dist = 0;
  for (size_t c = 0; c < n_cand; ++c) {
    const size_t j =
        n_cand == 1
            ? m
            : j_lo + (j_hi - j_lo) * c / std::max<size_t>(1, n_cand - 1);
    float f;
    if (!fence_for(j, &f)) continue;
    const uint64_t spill = spill_for(f);
    const size_t dist = j > m ? j - m : m - j;
    if (!have || spill < best_spill ||
        (spill == best_spill && dist < best_dist)) {
      have = true;
      new_fence = f;
      best_spill = spill;
      best_dist = dist;
    }
  }
  if (!have) return false;  // no candidate clears the current fences
  if (have_m && 2 * best_spill >= spill_m) {
    // The alternatives don't save enough: stay on the exact halving point.
    new_fence = fence_m;
    best_spill = spill_m;
  }
  bounds[fence] = new_fence;

  obs_->spill_last->Set(static_cast<int64_t>(best_spill));
  obs_->spill_total->Add(best_spill);

  // Only the donor's residents and the overflow family's straddlers can
  // be re-routed by a single-fence move (the receiver's slice only grew),
  // so the migration scan — and its locks — touch exactly those shards.
  // The family includes active split sub-shards: the moved fence can
  // un-straddle their residents too.
  std::vector<uint32_t> scan{static_cast<uint32_t>(h)};
  for (const uint32_t s : OverflowShardIds()) scan.push_back(s);
  ApplyRoutingLocked(std::move(plan), scan);
  obs_->boundary_moves->Add(1);
  for (size_t s = 0; s < shards_.size(); ++s) {
    routed_at_reset_[s] = shards_[s]->routed.load(std::memory_order_relaxed);
  }
  return true;
}

size_t SubscriptionEngine::ApplyRoutingLocked(
    RoutingPlan plan, const std::vector<uint32_t>& scan_shards) {
  ACCL_TRACE_SPAN_ARG("routing_migrate",
                      static_cast<uint32_t>(scan_shards.size()));
  WallTimer migrate_timer;
  const size_t stride = 2 * static_cast<size_t>(schema_.dims());

  // Phase 1 — scan: collect the residents the new table routes elsewhere.
  // The box views die with the scan lock, so coordinates are copied out
  // per destination. (Between migrations second_home_ is empty, so every
  // physical resident seen here is an owned, single-resident copy.)
  struct Outgoing {
    std::vector<ObjectId> ids;
    std::vector<float> coords;
  };
  struct SrcPlan {
    uint32_t src;
    std::vector<Outgoing> outgoing;                     // indexed by dst
    std::vector<std::pair<ObjectId, uint32_t>> moved;   // (id, dst)
  };
  std::vector<SrcPlan> plans;
  plans.reserve(scan_shards.size());
  for (const uint32_t src : scan_shards) {
    SrcPlan sp;
    sp.src = src;
    sp.outgoing.resize(shards_.size());
    {
      std::lock_guard<std::mutex> lk(shards_[src]->mu);
      shards_[src]->index->ForEachObject([&](ObjectId id, BoxView b) {
        const uint32_t dst = RangeShardFor(plan, b);
        if (dst == src) return;
        Outgoing& o = sp.outgoing[dst];
        o.ids.push_back(id);
        o.coords.insert(o.coords.end(), b.data(), b.data() + stride);
      });
    }
    plans.push_back(std::move(sp));
  }

  // Phase 2 — double-residency inserts: each moving subscription is copied
  // into its destination shard while the source copy stays live, and its
  // second home is registered in the SAME meta critical section as the
  // insert, so Unsubscribe observes "entry implies both copies present"
  // atomically. Readers still route with the old snapshot and find the
  // source copies; a route covering both shards finds two copies, which
  // the match-side adjacent-unique pass removes.
  size_t migrated = 0;
  for (SrcPlan& sp : plans) {
    for (uint32_t dst = 0; dst < shards_.size(); ++dst) {
      Outgoing& o = sp.outgoing[dst];
      if (o.ids.empty()) continue;
      std::scoped_lock lk(meta_mu_, shards_[dst]->mu);
      std::vector<ObjectId> ins_ids;
      std::vector<float> ins_coords;
      ins_ids.reserve(o.ids.size());
      ins_coords.reserve(o.coords.size());
      for (size_t i = 0; i < o.ids.size(); ++i) {
        const ObjectId id = o.ids[i];
        auto it = shard_of_.find(id);
        // Unsubscribed between scan and insert: nothing to migrate.
        if (it == shard_of_.end() || it->second != sp.src) continue;
        ins_ids.push_back(id);
        ins_coords.insert(ins_coords.end(), o.coords.begin() + i * stride,
                          o.coords.begin() + (i + 1) * stride);
        second_home_.emplace(id, dst);
        sp.moved.emplace_back(id, dst);
      }
      shards_[dst]->index->BulkInsert(
          Span<const ObjectId>(ins_ids.data(), ins_ids.size()),
          Span<const float>(ins_coords.data(), ins_coords.size()));
      migrated += ins_ids.size();
    }
  }

  // Phase 3 — publish, then wait out the grace period: after Synchronize
  // returns, every reader that routed with the old table has finished its
  // shard reads, and any reader it did not wait for is guaranteed to have
  // loaded the new snapshot (seq_cst publish ordering). Readers of the new
  // table find the moving subscriptions at their destinations, so the
  // source copies below are dead weight for every possible reader.
  PublishSnapshot(std::move(plan));
  // Wait out the grace period but do NOT reclaim inline: retire work is
  // amortized into pool idle time (the idle hook runs TryReclaim), so the
  // publisher's wall cost is just the grace wait. Pool-less engines have
  // no idle hook, so they reclaim here to bound retired_pending.
  epoch_.WaitGrace();
  if (pool_ == nullptr) epoch_.TryReclaim();

  // Phase 4 — deferred source cleanup: flip ownership and bulk-erase the
  // stale source copies. An id whose second_home_ entry is gone was
  // unsubscribed mid-migration (Unsubscribe erased both copies); skip it.
  for (SrcPlan& sp : plans) {
    if (sp.moved.empty()) continue;
    std::scoped_lock lk(meta_mu_, shards_[sp.src]->mu);
    std::vector<ObjectId> erase_ids;
    erase_ids.reserve(sp.moved.size());
    std::vector<size_t> flips(shards_.size(), 0);
    for (const auto& [id, dst] : sp.moved) {
      auto jt = second_home_.find(id);
      if (jt == second_home_.end()) continue;  // unsubscribed mid-flight
      ACCL_DCHECK(jt->second == dst);
      second_home_.erase(jt);
      auto it = shard_of_.find(id);
      ACCL_CHECK(it != shard_of_.end() && it->second == sp.src);
      it->second = dst;
      erase_ids.push_back(id);
      ++flips[dst];
    }
    const size_t erased = shards_[sp.src]->index->BulkErase(
        Span<const ObjectId>(erase_ids.data(), erase_ids.size()));
    ACCL_CHECK(erased == erase_ids.size());
    shards_[sp.src]->subs.fetch_sub(erase_ids.size(),
                                    std::memory_order_relaxed);
    for (uint32_t d = 0; d < shards_.size(); ++d) {
      if (flips[d] != 0) {
        shards_[d]->subs.fetch_add(flips[d], std::memory_order_relaxed);
      }
    }
  }
  obs_->subs_migrated->Add(migrated);
  obs_->migration_us->Record(static_cast<uint64_t>(std::max(
      0.0, std::round(migrate_timer.ElapsedMs() * 1000.0))));
  return migrated;
}

bool SubscriptionEngine::MakePointEvent(
    const std::vector<AttributeValue>& values, Event* out) const {
  std::vector<float> pt;
  if (!schema_.MakePoint(values, &pt)) return false;
  *out = Event::Point(std::move(pt));
  return true;
}

bool SubscriptionEngine::MakeRangeEvent(
    const std::vector<AttributeRange>& ranges, Event* out) const {
  Box box;
  if (!schema_.MakeBox(ranges, &box)) return false;
  *out = Event::Range(std::move(box));
  return true;
}

EngineStats SubscriptionEngine::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void SubscriptionEngine::ResetStats() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_ = EngineStats();
}

}  // namespace accl
