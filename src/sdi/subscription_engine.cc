#include "sdi/subscription_engine.h"

#include <algorithm>
#include <numeric>

#include "exec/shard_queues.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace accl {

namespace {

/// Slice of coordinate `x` under the interior fences: the index of the
/// first fence strictly greater than `x`. A coordinate exactly on a fence
/// therefore belongs to the slice on the fence's right, which is also what
/// makes routing exact for touching intervals: an event ending exactly on
/// a fence still routes to the right slice, whose subscriptions may start
/// exactly there.
uint32_t SliceOf(const std::vector<float>& bounds, float x) {
  return static_cast<uint32_t>(
      std::upper_bound(bounds.begin(), bounds.end(), x) - bounds.begin());
}

}  // namespace

Event Event::Point(std::vector<float> normalized_point) {
  Event e;
  e.is_point = true;
  e.box = Box::Point(normalized_point);
  return e;
}

Event Event::Range(Box normalized_box) {
  Event e;
  e.is_point = false;
  e.box = std::move(normalized_box);
  return e;
}

SubscriptionEngine::SubscriptionEngine(AttributeSchema schema,
                                       EngineOptions options)
    : schema_(std::move(schema)), options_(std::move(options)) {
  ACCL_CHECK(schema_.dims() > 0);
  ACCL_CHECK(options_.shards >= 1);
  options_.index.nd = schema_.dims();
  shards_.reserve(options_.shards);
  for (uint32_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.index));
  }
  if (options_.sharding == ShardingPolicy::kRange && !options_.partitioner) {
    // K-1 range shards plus the overflow shard: the smallest useful K is 2.
    ACCL_CHECK(options_.shards >= 2);
    range_routed_ = true;
    const uint32_t rk = options_.shards - 1;  // range shards
    if (!options_.range_boundaries.empty()) {
      ACCL_CHECK(options_.range_boundaries.size() ==
                 static_cast<size_t>(rk) - 1);
      for (size_t i = 1; i < options_.range_boundaries.size(); ++i) {
        ACCL_CHECK(options_.range_boundaries[i - 1] <
                   options_.range_boundaries[i]);
      }
      bounds_ = options_.range_boundaries;
    } else {
      for (uint32_t i = 1; i < rk; ++i) {
        bounds_.push_back(kDomainMin +
                          (kDomainMax - kDomainMin) * static_cast<float>(i) /
                              static_cast<float>(rk));
      }
    }
  }
  routed_at_reset_.assign(options_.shards, 0);
  // ParallelFor includes the calling thread, so N-way matching needs N-1
  // workers; 0 or 1 requested threads means no pool at all.
  if (options_.match_threads > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(options_.match_threads - 1);
  }
}

uint32_t SubscriptionEngine::RangeShardFor(const std::vector<float>& bounds,
                                           float lo0, float hi0) const {
  const uint32_t a = SliceOf(bounds, lo0);
  const uint32_t b = SliceOf(bounds, hi0);
  return a == b ? a : static_cast<uint32_t>(shards_.size() - 1);
}

void SubscriptionEngine::RouteEvent(const std::vector<float>& bounds,
                                    const Box& box,
                                    std::vector<uint32_t>* out) const {
  // The slice span of the event's leading-dimension interval, then the
  // overflow shard (always last; its id K-1 exceeds every slice shard's, so
  // the route list stays ascending).
  const uint32_t a = SliceOf(bounds, box.lo(0));
  const uint32_t b = SliceOf(bounds, box.hi(0));
  for (uint32_t s = a; s <= b; ++s) out->push_back(s);
  out->push_back(static_cast<uint32_t>(shards_.size() - 1));
}

std::vector<float> SubscriptionEngine::SnapshotBounds() const {
  std::lock_guard<std::mutex> lk(route_mu_);
  return bounds_;
}

uint32_t SubscriptionEngine::ShardFor(SubscriptionId id, const Box& box,
                                      const std::vector<float>& bounds) const {
  const uint32_t k = static_cast<uint32_t>(shards_.size());
  if (k == 1) return 0;
  if (options_.partitioner) return options_.partitioner(id, box, k) % k;
  switch (options_.sharding) {
    case ShardingPolicy::kLeadingDimension: {
      const float center = 0.5f * (box.lo(0) + box.hi(0));
      const float clamped =
          std::min(std::max(center, kDomainMin), kDomainMax);
      return std::min(k - 1, static_cast<uint32_t>(
                                 clamped * static_cast<float>(k)));
    }
    case ShardingPolicy::kRange:
      return RangeShardFor(bounds, box.lo(0), box.hi(0));
    case ShardingPolicy::kHashId:
      break;
  }
  uint64_t state = id;
  return static_cast<uint32_t>(SplitMix64(&state) % k);
}

SubscriptionId SubscriptionEngine::Subscribe(
    const std::vector<AttributeRange>& ranges) {
  Box box;
  if (!schema_.MakeBox(ranges, &box)) return kInvalidObject;
  return SubscribeBox(box);
}

SubscriptionId SubscriptionEngine::SubscribeBox(const Box& box) {
  ACCL_CHECK(box.dims() == schema_.dims());
  SubscriptionId id;
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    id = next_id_++;
  }
  // kRange holds the rebalance lock from target choice through owner-map
  // publish: a boundary change (publish + migration scan, which runs
  // entirely under rebalance_mu_) is then serialized either before this
  // subscription (so we route with the new table) or after it (so its
  // migration scan sees our insert). route_mu_ itself stays a short
  // snapshot lock, so concurrent matching never stalls behind an insert.
  std::unique_lock<std::mutex> rebalance_lk;
  std::vector<float> bounds;
  if (range_routed_) {
    rebalance_lk = std::unique_lock<std::mutex>(rebalance_mu_);
    bounds = SnapshotBounds();
  }
  const uint32_t s = ShardFor(id, box, bounds);
  {
    std::lock_guard<std::mutex> lk(shards_[s]->mu);
    shards_[s]->index->Insert(id, box.view());
  }
  shards_[s]->subs.fetch_add(1, std::memory_order_relaxed);
  // Publish the owner mapping only after the insert: nobody can hold this
  // id yet, and Unsubscribe consults the map first. The count bumps inside
  // the same critical section — once the map entry exists the id is
  // Unsubscribe-able, and its decrement must never precede our increment.
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    shard_of_.emplace(id, s);
    subscription_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return id;
}

void SubscriptionEngine::SubscribeBatch(Span<const Box> boxes,
                                        std::vector<SubscriptionId>* out) {
  const size_t n = boxes.size();
  out->clear();
  if (n == 0) return;
  for (const Box& b : boxes) ACCL_CHECK(b.dims() == schema_.dims());
  SubscriptionId first;
  {
    // One id-allocation critical section for the whole batch.
    std::lock_guard<std::mutex> lk(meta_mu_);
    first = next_id_;
    next_id_ += static_cast<SubscriptionId>(n);
  }
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(first + static_cast<SubscriptionId>(i));
  }

  // Same rebalance-lock discipline as SubscribeBox, held across the whole
  // grouped insert so a boundary change serializes entirely before or
  // after the batch; matching only needs route_mu_, which is not held
  // here, so it proceeds throughout.
  std::unique_lock<std::mutex> rebalance_lk;
  if (range_routed_) {
    rebalance_lk = std::unique_lock<std::mutex>(rebalance_mu_);
  }

  // Group per target shard; each queue keeps batch order, so the per-shard
  // insert sequences are exactly the subsequences a SubscribeBox loop
  // would have produced.
  const std::vector<float> bounds = SnapshotBounds();
  exec::ShardQueues queues;
  queues.Build(n, shards_.size(), [&](size_t i, std::vector<uint32_t>* t) {
    t->push_back(
        ShardFor(first + static_cast<SubscriptionId>(i), boxes[i], bounds));
  });

  for (size_t s = 0; s < shards_.size(); ++s) {
    const size_t nq = queues.size(s);
    if (nq == 0) continue;
    const uint32_t* items = queues.items(s);
    // One shard-lock acquisition per target shard — the whole point.
    std::lock_guard<std::mutex> lk(shards_[s]->mu);
    for (size_t j = 0; j < nq; ++j) {
      shards_[s]->index->Insert(first + items[j], boxes[items[j]].view());
    }
    shards_[s]->subs.fetch_add(nq, std::memory_order_relaxed);
  }
  {
    // One owner-map publish for the whole batch.
    std::lock_guard<std::mutex> lk(meta_mu_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      const size_t nq = queues.size(s);
      const uint32_t* items = queues.items(s);
      for (size_t j = 0; j < nq; ++j) {
        shard_of_.emplace(first + items[j], static_cast<uint32_t>(s));
      }
    }
    subscription_count_.fetch_add(n, std::memory_order_relaxed);
  }
}

bool SubscriptionEngine::Unsubscribe(SubscriptionId id) {
  uint32_t s;
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    auto it = shard_of_.find(id);
    if (it == shard_of_.end()) return false;
    s = it->second;
    shard_of_.erase(it);
  }
  bool erased;
  {
    std::lock_guard<std::mutex> lk(shards_[s]->mu);
    erased = shards_[s]->index->Erase(id);
  }
  // The owner map is the single source of truth for liveness; a mapped id
  // must exist in its shard. (A migration racing this call either re-homed
  // the id before our map read — then `s` is the new shard — or observes
  // the missing map entry and skips the id, so the erase cannot go stale.)
  ACCL_CHECK(erased);
  shards_[s]->subs.fetch_sub(1, std::memory_order_relaxed);
  subscription_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

size_t SubscriptionEngine::ShardOf(SubscriptionId id) const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  auto it = shard_of_.find(id);
  return it == shard_of_.end() ? shards_.size() : it->second;
}

std::vector<SubscriptionEngine::ShardInfo> SubscriptionEngine::GetShardInfos()
    const {
  std::vector<ShardInfo> infos;
  infos.reserve(shards_.size());
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    infos.push_back(ShardInfo{sh->index->size(), sh->index->cluster_count(),
                              sh->routed.load(std::memory_order_relaxed)});
  }
  return infos;
}

std::vector<float> SubscriptionEngine::GetRangeBoundaries() const {
  return SnapshotBounds();
}

uint64_t SubscriptionEngine::routing_version() const {
  std::lock_guard<std::mutex> lk(route_mu_);
  return routing_version_;
}

Relation SubscriptionEngine::RelationFor(const Event& event,
                                         MatchPolicy policy) {
  // Point events are enclosure queries under either policy (a point
  // intersects a subscription iff the subscription encloses it).
  return event.is_point || policy == MatchPolicy::kCovering
             ? Relation::kEncloses
             : Relation::kIntersects;
}

void SubscriptionEngine::RecordEvent(size_t matches, size_t verified,
                                     double latency_ms) {
  std::lock_guard<std::mutex> lk(meta_mu_);
  stats_.match_latency_ms.Add(latency_ms);
  ++stats_.events_processed;
  stats_.matches_per_event.Add(static_cast<double>(matches));
  stats_.verified_per_event.Add(static_cast<double>(verified));
}

void SubscriptionEngine::Match(const Event& event,
                               std::vector<SubscriptionId>* out) {
  Match(event, options_.default_policy, out);
}

void SubscriptionEngine::Match(const Event& event, MatchPolicy policy,
                               std::vector<SubscriptionId>* out) {
  Query q(event.box, RelationFor(event, policy));
  WallTimer t;
  size_t matched = 0;
  size_t verified = 0;
  const auto run = [&](Shard& sh) {
    sh.routed.fetch_add(1, std::memory_order_relaxed);
    QueryMetrics m;
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.index->Execute(q, out, &m);
    matched += m.result_count;
    verified += m.objects_verified;
  };
  if (range_routed_) {
    std::vector<uint32_t> route;
    RouteEvent(SnapshotBounds(), event.box, &route);
    for (const uint32_t s : route) run(*shards_[s]);
  } else {
    for (const auto& sh : shards_) run(*sh);
  }
  RecordEvent(matched, verified, t.ElapsedMs());
  MaybeAutoRebalance(1);
}

void SubscriptionEngine::MatchBatch(Span<const Event> events,
                                    MatchBatchResult* out) {
  MatchBatch(events, options_.default_policy, out);
}

void SubscriptionEngine::MatchBatch(Span<const Event> events,
                                    MatchPolicy policy,
                                    MatchBatchResult* out) {
  const size_t ne = events.size();
  const size_t k = shards_.size();
  out->Clear();
  out->matches.resize(ne);
  out->per_shard.resize(k);
  if (ne == 0) return;
  WallTimer t;

  // Per-shard work queues. Broadcast policies enqueue every event on every
  // shard; kRange asks the router, under one boundary snapshot for the
  // whole batch, which shards each event's box overlaps.
  exec::ShardQueues queues;
  if (range_routed_) {
    const std::vector<float> bounds = SnapshotBounds();
    queues.Build(ne, k, [&](size_t e, std::vector<uint32_t>* targets) {
      RouteEvent(bounds, events[e].box, targets);
    });
  } else {
    queues.BuildBroadcast(ne, k);
  }
  for (size_t s = 0; s < k; ++s) {
    out->per_shard[s].events_routed = queues.size(s);
    shards_[s]->routed.fetch_add(queues.size(s), std::memory_order_relaxed);
  }

  // Per-shard scratch: one flat id vector with per-queue-position offsets
  // (cheaper than ne vectors per shard) plus per-position verified counts
  // for the engine statistics.
  struct ShardScratch {
    std::vector<ObjectId> ids;
    std::vector<size_t> offsets;      // queue length + 1 entries
    std::vector<uint64_t> verified;   // per queue position
  };
  std::vector<ShardScratch> scratch(k);

  // Fan the queues out: one task per shard, each draining its own queue in
  // batch order behind the shard mutex. Shard-local adaptation
  // (statistics, reorganization) therefore sees a deterministic query
  // sequence regardless of thread count.
  const auto run_shard = [&](size_t s) {
    const size_t nq = queues.size(s);
    if (nq == 0) return;  // routed away: don't even take the lock
    const uint32_t* q_items = queues.items(s);
    ShardScratch& sc = scratch[s];
    sc.offsets.resize(nq + 1, 0);
    sc.verified.resize(nq, 0);
    Shard& sh = *shards_[s];
    std::lock_guard<std::mutex> lk(sh.mu);
    for (size_t j = 0; j < nq; ++j) {
      const Event& ev = events[q_items[j]];
      Query q(ev.box, RelationFor(ev, policy));
      QueryMetrics m;
      sh.index->Execute(q, &sc.ids, &m);
      sc.offsets[j + 1] = sc.ids.size();
      sc.verified[j] = m.objects_verified;
      out->per_shard[s].Add(m);
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(k, run_shard);
  } else {
    for (size_t s = 0; s < k; ++s) run_shard(s);
  }

  // Deterministic merge: walk each shard's queue with a cursor, shard-order
  // concatenation per event, then ObjectId sort — byte-identical output for
  // any shard/thread/boundary configuration (each subscription lives in
  // exactly one shard, so ids are unique).
  std::vector<size_t> cursor(k, 0);
  std::vector<uint64_t> verified_per_event(ne, 0);
  for (size_t e = 0; e < ne; ++e) {
    std::vector<ObjectId>& dst = out->matches[e];
    size_t total = 0;
    for (size_t s = 0; s < k; ++s) {
      const size_t c = cursor[s];
      if (c < queues.size(s) && queues.items(s)[c] == e) {
        total += scratch[s].offsets[c + 1] - scratch[s].offsets[c];
      }
    }
    dst.reserve(total);
    for (size_t s = 0; s < k; ++s) {
      const size_t c = cursor[s];
      if (c >= queues.size(s) || queues.items(s)[c] != e) continue;
      const ShardScratch& sc = scratch[s];
      dst.insert(dst.end(), sc.ids.begin() + sc.offsets[c],
                 sc.ids.begin() + sc.offsets[c + 1]);
      verified_per_event[e] += sc.verified[c];
      ++cursor[s];
    }
    std::sort(dst.begin(), dst.end());
  }
  out->AggregateShards();
  // Latency is read after the merge so the batch path reports the same
  // end-to-end per-event cost Match() reports for its full path.
  const double per_event_ms = t.ElapsedMs() / static_cast<double>(ne);
  // One stats-lock acquisition for the whole batch: meta_mu_ also guards id
  // allocation, so taking it per event would serialize the batched hot path
  // against concurrent subscribers ne times over.
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    for (size_t e = 0; e < ne; ++e) {
      stats_.match_latency_ms.Add(per_event_ms);
      ++stats_.events_processed;
      stats_.matches_per_event.Add(
          static_cast<double>(out->matches[e].size()));
      stats_.verified_per_event.Add(
          static_cast<double>(verified_per_event[e]));
    }
  }
  MaybeAutoRebalance(ne);
}

void SubscriptionEngine::MaybeAutoRebalance(uint64_t events) {
  if (!range_routed_ || options_.rebalance_period == 0) return;
  if (events_since_check_.fetch_add(events, std::memory_order_relaxed) +
          events <
      options_.rebalance_period) {
    return;
  }
  // If an auto-rebalance is already in flight there is nothing useful to
  // queue behind it. An atomic flag — not mutex try_lock, which the
  // standard allows to fail spuriously — keeps the skip deterministic for
  // deterministic call sequences (single callers always pass).
  if (rebalance_inflight_.exchange(true, std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(rebalance_mu_);
    events_since_check_.store(0, std::memory_order_relaxed);
    RebalanceLocked(/*force=*/false);
  }
  rebalance_inflight_.store(false, std::memory_order_release);
}

bool SubscriptionEngine::RebalanceOnce() {
  if (!range_routed_) return false;
  std::lock_guard<std::mutex> lk(rebalance_mu_);
  return RebalanceLocked(/*force=*/true);
}

bool SubscriptionEngine::SetRangeBoundaries(const std::vector<float>& bounds) {
  if (!range_routed_) return false;
  if (bounds.size() != shards_.size() - 2) return false;
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) return false;
  }
  std::lock_guard<std::mutex> lk(rebalance_mu_);
  // Arbitrary table change: any shard may hold re-routed residents, so the
  // migration scan covers all of them (overflow drains too).
  std::vector<uint32_t> all(shards_.size());
  std::iota(all.begin(), all.end(), 0u);
  ApplyBoundariesLocked(bounds, all);
  boundary_moves_.fetch_add(1, std::memory_order_relaxed);
  for (size_t s = 0; s < shards_.size(); ++s) {
    routed_at_reset_[s] = shards_[s]->routed.load(std::memory_order_relaxed);
  }
  return true;
}

bool SubscriptionEngine::RebalanceLocked(bool force) {
  const size_t rk = shards_.size() - 1;  // range shards; overflow excluded
  if (rk < 2) return false;

  // Window loads: resident subscriptions plus events routed since the last
  // rebalance — a shard can be hot because it is big or because the event
  // stream concentrates on it, and a boundary move helps with both.
  std::vector<uint64_t> load(rk);
  uint64_t total = 0;
  for (size_t s = 0; s < rk; ++s) {
    const uint64_t window = shards_[s]->routed.load(std::memory_order_relaxed) -
                            routed_at_reset_[s];
    load[s] = shards_[s]->subs.load(std::memory_order_relaxed) + window;
    total += load[s];
  }
  if (!force) {
    if (total < options_.rebalance_min_load) return false;
    uint64_t hottest = 0;
    for (size_t s = 0; s < rk; ++s) hottest = std::max(hottest, load[s]);
    const double mean = static_cast<double>(total) / static_cast<double>(rk);
    if (static_cast<double>(hottest) <
        options_.rebalance_trigger_ratio * mean) {
      return false;
    }
  }
  // Pick the adjacent pair with the largest load gap (only adjacent slices
  // share a fence, so only they can trade residents with one boundary
  // move); the heavier side donates.
  size_t best_f = 0;
  uint64_t best_gap = 0;
  for (size_t f = 0; f + 1 < rk; ++f) {
    const uint64_t gap = load[f] > load[f + 1] ? load[f] - load[f + 1]
                                               : load[f + 1] - load[f];
    if (gap > best_gap) {
      best_gap = gap;
      best_f = f;
    }
  }
  if (best_gap == 0) return false;  // flat profile: nothing to gain
  const size_t h = load[best_f] >= load[best_f + 1] ? best_f : best_f + 1;
  const size_t l = h == best_f ? best_f + 1 : best_f;

  std::vector<float> bounds = SnapshotBounds();
  // Donor residents' leading-dimension endpoints — the one FACING the
  // receiver. A donor resident leaves when the moving fence passes that
  // endpoint: shedding downward, every box with lo0 < fence leaves (to
  // the receiver if it fits, to overflow if it straddles); shedding
  // upward, every box with hi0 >= fence leaves. Ranking by the
  // receiver-facing endpoint therefore predicts the donor's loss
  // *exactly*, straddlers included — ranking by the far endpoint counts
  // only the boxes that clear the fence entirely, so the straddler spill
  // to overflow comes on top of the plan, overshoots in dense regions,
  // and makes repeated passes slosh the same residents back and forth
  // forever.
  std::vector<float> keys;
  {
    std::lock_guard<std::mutex> lk(shards_[h]->mu);
    keys.reserve(shards_[h]->index->size());
    shards_[h]->index->ForEachObject([&](ObjectId, BoxView b) {
      keys.push_back(l < h ? b.lo(0) : b.hi(0));
    });
  }
  if (keys.size() < 2) return false;
  std::sort(keys.begin(), keys.end());
  // Shed enough residents to halve the pair's load gap (per-resident load
  // approximated as load[h]/keys.size()). Halving — not equal-splitting the
  // donor — is what makes repeated passes converge to a fixed point; a
  // move that rounds to zero residents is below the resolution of the
  // boundary and refused.
  size_t m = static_cast<size_t>(
      static_cast<uint64_t>(keys.size()) * best_gap / (2 * load[h]));
  if (m == 0) return false;
  m = std::min(m, keys.size() - 1);

  float new_fence;
  size_t fence;  // index into bounds of the shared fence
  if (l < h) {
    // Receiver below: fence between slices l and h is bounds[h-1]; move it
    // up past the m smallest lower endpoints. Those m residents leave the
    // donor — to l when they fit the grown slice, to overflow when they
    // span the new fence.
    fence = h - 1;
    new_fence = keys[m];
    if (new_fence <= bounds[fence]) return false;  // mass sits on the edge
  } else {
    // Receiver above: fence bounds[h] moves down past the m largest upper
    // endpoints; the residents whose hi0 the fence passed leave the donor.
    fence = h;
    new_fence = keys[keys.size() - m];
    if (new_fence >= bounds[fence]) return false;
    if (fence >= 1 && new_fence <= bounds[fence - 1]) return false;
  }
  bounds[fence] = new_fence;

  // Only the donor's residents and the overflow shard's straddlers can be
  // re-routed by a single-fence move (the receiver's slice only grew), so
  // the migration scan — and its locks — touch exactly those two shards.
  ApplyBoundariesLocked(std::move(bounds),
                        {static_cast<uint32_t>(h),
                         static_cast<uint32_t>(shards_.size() - 1)});
  boundary_moves_.fetch_add(1, std::memory_order_relaxed);
  for (size_t s = 0; s < shards_.size(); ++s) {
    routed_at_reset_[s] = shards_[s]->routed.load(std::memory_order_relaxed);
  }
  return true;
}

size_t SubscriptionEngine::ApplyBoundariesLocked(
    std::vector<float> new_bounds, const std::vector<uint32_t>& scan_shards) {
  {
    // Publish the table first: subscriptions arriving after this point
    // route themselves with the new fences, so the scan below only ever
    // chases a shrinking set of stale residents.
    std::lock_guard<std::mutex> lk(route_mu_);
    bounds_ = new_bounds;
    ++routing_version_;
  }
  const size_t stride = 2 * static_cast<size_t>(schema_.dims());
  size_t migrated = 0;
  struct Outgoing {
    std::vector<ObjectId> ids;
    std::vector<float> coords;
  };
  for (const uint32_t src : scan_shards) {
    // Collect residents the new table routes elsewhere; the box views die
    // with the scan lock, so coordinates are copied out per destination.
    std::vector<Outgoing> outgoing(shards_.size());
    {
      std::lock_guard<std::mutex> lk(shards_[src]->mu);
      shards_[src]->index->ForEachObject([&](ObjectId id, BoxView b) {
        const uint32_t dst = RangeShardFor(new_bounds, b.lo(0), b.hi(0));
        if (dst == src) return;
        Outgoing& o = outgoing[dst];
        o.ids.push_back(id);
        o.coords.insert(o.coords.end(), b.data(), b.data() + stride);
      });
    }
    for (uint32_t dst = 0; dst < shards_.size(); ++dst) {
      Outgoing& o = outgoing[dst];
      if (o.ids.empty()) continue;
      // Owner map + both shard locks in one atomic step: Unsubscribe and
      // ShardOf observe each migration all-or-nothing, and matching on any
      // shard outside {src, dst} proceeds untouched. std::scoped_lock's
      // deadlock avoidance covers the route->shard order subscribers use.
      std::scoped_lock lk(meta_mu_, shards_[src]->mu, shards_[dst]->mu);
      std::vector<ObjectId> moved_ids;
      std::vector<float> moved_coords;
      moved_ids.reserve(o.ids.size());
      moved_coords.reserve(o.coords.size());
      for (size_t i = 0; i < o.ids.size(); ++i) {
        const ObjectId id = o.ids[i];
        auto it = shard_of_.find(id);
        // Unsubscribed between scan and move: nothing to migrate.
        if (it == shard_of_.end() || it->second != src) continue;
        const bool erased = shards_[src]->index->Erase(id);
        ACCL_CHECK(erased);
        it->second = dst;
        moved_ids.push_back(id);
        moved_coords.insert(moved_coords.end(),
                            o.coords.begin() + i * stride,
                            o.coords.begin() + (i + 1) * stride);
      }
      shards_[dst]->index->BulkInsert(
          Span<const ObjectId>(moved_ids.data(), moved_ids.size()),
          Span<const float>(moved_coords.data(), moved_coords.size()));
      shards_[src]->subs.fetch_sub(moved_ids.size(),
                                   std::memory_order_relaxed);
      shards_[dst]->subs.fetch_add(moved_ids.size(),
                                   std::memory_order_relaxed);
      migrated += moved_ids.size();
    }
  }
  subscriptions_migrated_.fetch_add(migrated, std::memory_order_relaxed);
  return migrated;
}

bool SubscriptionEngine::MakePointEvent(
    const std::vector<AttributeValue>& values, Event* out) const {
  std::vector<float> pt;
  if (!schema_.MakePoint(values, &pt)) return false;
  *out = Event::Point(std::move(pt));
  return true;
}

bool SubscriptionEngine::MakeRangeEvent(
    const std::vector<AttributeRange>& ranges, Event* out) const {
  Box box;
  if (!schema_.MakeBox(ranges, &box)) return false;
  *out = Event::Range(std::move(box));
  return true;
}

EngineStats SubscriptionEngine::stats() const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  return stats_;
}

void SubscriptionEngine::ResetStats() {
  std::lock_guard<std::mutex> lk(meta_mu_);
  stats_ = EngineStats();
}

}  // namespace accl
