#include "sdi/subscription_engine.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace accl {

Event Event::Point(std::vector<float> normalized_point) {
  Event e;
  e.is_point = true;
  e.box = Box::Point(normalized_point);
  return e;
}

Event Event::Range(Box normalized_box) {
  Event e;
  e.is_point = false;
  e.box = std::move(normalized_box);
  return e;
}

SubscriptionEngine::SubscriptionEngine(AttributeSchema schema,
                                       EngineOptions options)
    : schema_(std::move(schema)), options_(std::move(options)) {
  ACCL_CHECK(schema_.dims() > 0);
  ACCL_CHECK(options_.shards >= 1);
  options_.index.nd = schema_.dims();
  shards_.reserve(options_.shards);
  for (uint32_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.index));
  }
  // ParallelFor includes the calling thread, so N-way matching needs N-1
  // workers; 0 or 1 requested threads means no pool at all.
  if (options_.match_threads > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(options_.match_threads - 1);
  }
}

uint32_t SubscriptionEngine::ShardFor(SubscriptionId id,
                                      const Box& box) const {
  const uint32_t k = static_cast<uint32_t>(shards_.size());
  if (k == 1) return 0;
  if (options_.partitioner) return options_.partitioner(id, box, k) % k;
  switch (options_.sharding) {
    case ShardingPolicy::kLeadingDimension: {
      const float center = 0.5f * (box.lo(0) + box.hi(0));
      const float clamped =
          std::min(std::max(center, kDomainMin), kDomainMax);
      return std::min(k - 1, static_cast<uint32_t>(
                                 clamped * static_cast<float>(k)));
    }
    case ShardingPolicy::kHashId:
      break;
  }
  uint64_t state = id;
  return static_cast<uint32_t>(SplitMix64(&state) % k);
}

SubscriptionId SubscriptionEngine::Subscribe(
    const std::vector<AttributeRange>& ranges) {
  Box box;
  if (!schema_.MakeBox(ranges, &box)) return kInvalidObject;
  return SubscribeBox(box);
}

SubscriptionId SubscriptionEngine::SubscribeBox(const Box& box) {
  ACCL_CHECK(box.dims() == schema_.dims());
  SubscriptionId id;
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    id = next_id_++;
  }
  const uint32_t s = ShardFor(id, box);
  {
    std::lock_guard<std::mutex> lk(shards_[s]->mu);
    shards_[s]->index->Insert(id, box.view());
  }
  // Publish the owner mapping only after the insert: nobody can hold this
  // id yet, and Unsubscribe consults the map first. The count bumps inside
  // the same critical section — once the map entry exists the id is
  // Unsubscribe-able, and its decrement must never precede our increment.
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    shard_of_.emplace(id, s);
    subscription_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return id;
}

bool SubscriptionEngine::Unsubscribe(SubscriptionId id) {
  uint32_t s;
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    auto it = shard_of_.find(id);
    if (it == shard_of_.end()) return false;
    s = it->second;
    shard_of_.erase(it);
  }
  bool erased;
  {
    std::lock_guard<std::mutex> lk(shards_[s]->mu);
    erased = shards_[s]->index->Erase(id);
  }
  // The owner map is the single source of truth for liveness; a mapped id
  // must exist in its shard.
  ACCL_CHECK(erased);
  subscription_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

size_t SubscriptionEngine::ShardOf(SubscriptionId id) const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  auto it = shard_of_.find(id);
  return it == shard_of_.end() ? shards_.size() : it->second;
}

std::vector<SubscriptionEngine::ShardInfo> SubscriptionEngine::GetShardInfos()
    const {
  std::vector<ShardInfo> infos;
  infos.reserve(shards_.size());
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    infos.push_back(ShardInfo{sh->index->size(), sh->index->cluster_count()});
  }
  return infos;
}

Relation SubscriptionEngine::RelationFor(const Event& event,
                                         MatchPolicy policy) {
  // Point events are enclosure queries under either policy (a point
  // intersects a subscription iff the subscription encloses it).
  return event.is_point || policy == MatchPolicy::kCovering
             ? Relation::kEncloses
             : Relation::kIntersects;
}

void SubscriptionEngine::RecordEvent(size_t matches, size_t verified,
                                     double latency_ms) {
  std::lock_guard<std::mutex> lk(meta_mu_);
  stats_.match_latency_ms.Add(latency_ms);
  ++stats_.events_processed;
  stats_.matches_per_event.Add(static_cast<double>(matches));
  stats_.verified_per_event.Add(static_cast<double>(verified));
}

void SubscriptionEngine::Match(const Event& event,
                               std::vector<SubscriptionId>* out) {
  Match(event, options_.default_policy, out);
}

void SubscriptionEngine::Match(const Event& event, MatchPolicy policy,
                               std::vector<SubscriptionId>* out) {
  Query q(event.box, RelationFor(event, policy));
  WallTimer t;
  size_t matched = 0;
  size_t verified = 0;
  for (const auto& sh : shards_) {
    QueryMetrics m;
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->index->Execute(q, out, &m);
    matched += m.result_count;
    verified += m.objects_verified;
  }
  RecordEvent(matched, verified, t.ElapsedMs());
}

void SubscriptionEngine::MatchBatch(Span<const Event> events,
                                    MatchBatchResult* out) {
  MatchBatch(events, options_.default_policy, out);
}

void SubscriptionEngine::MatchBatch(Span<const Event> events,
                                    MatchPolicy policy,
                                    MatchBatchResult* out) {
  const size_t ne = events.size();
  const size_t k = shards_.size();
  out->Clear();
  out->matches.resize(ne);
  out->per_shard.resize(k);
  if (ne == 0) return;
  WallTimer t;

  // Per-shard scratch: one flat id vector with per-event offsets (cheaper
  // than ne vectors per shard) plus per-event verified counts for the
  // engine statistics.
  struct ShardScratch {
    std::vector<ObjectId> ids;
    std::vector<size_t> offsets;      // ne + 1 entries
    std::vector<uint64_t> verified;   // per event
  };
  std::vector<ShardScratch> scratch(k);

  // Fan the whole batch out: one task per shard, each processing every
  // event in batch order behind the shard mutex. Shard-local adaptation
  // (statistics, reorganization) therefore sees a deterministic query
  // sequence regardless of thread count.
  const auto run_shard = [&](size_t s) {
    ShardScratch& sc = scratch[s];
    sc.offsets.resize(ne + 1, 0);
    sc.verified.resize(ne, 0);
    Shard& sh = *shards_[s];
    std::lock_guard<std::mutex> lk(sh.mu);
    for (size_t e = 0; e < ne; ++e) {
      const Event& ev = events[e];
      Query q(ev.box, RelationFor(ev, policy));
      QueryMetrics m;
      sh.index->Execute(q, &sc.ids, &m);
      sc.offsets[e + 1] = sc.ids.size();
      sc.verified[e] = m.objects_verified;
      out->per_shard[s].Add(m);
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(k, run_shard);
  } else {
    for (size_t s = 0; s < k; ++s) run_shard(s);
  }

  // Deterministic merge: shard order concatenation, then ObjectId sort —
  // byte-identical output for any shard/thread configuration (each
  // subscription lives in exactly one shard, so ids are unique).
  std::vector<uint64_t> verified_per_event(ne, 0);
  for (size_t e = 0; e < ne; ++e) {
    std::vector<ObjectId>& dst = out->matches[e];
    size_t total = 0;
    for (size_t s = 0; s < k; ++s) {
      total += scratch[s].offsets[e + 1] - scratch[s].offsets[e];
    }
    dst.reserve(total);
    for (size_t s = 0; s < k; ++s) {
      const ShardScratch& sc = scratch[s];
      dst.insert(dst.end(), sc.ids.begin() + sc.offsets[e],
                 sc.ids.begin() + sc.offsets[e + 1]);
      verified_per_event[e] += sc.verified[e];
    }
    std::sort(dst.begin(), dst.end());
  }
  out->AggregateShards();
  // Latency is read after the merge so the batch path reports the same
  // end-to-end per-event cost Match() reports for its full path.
  const double per_event_ms = t.ElapsedMs() / static_cast<double>(ne);
  // One stats-lock acquisition for the whole batch: meta_mu_ also guards id
  // allocation, so taking it per event would serialize the batched hot path
  // against concurrent subscribers ne times over.
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    for (size_t e = 0; e < ne; ++e) {
      stats_.match_latency_ms.Add(per_event_ms);
      ++stats_.events_processed;
      stats_.matches_per_event.Add(
          static_cast<double>(out->matches[e].size()));
      stats_.verified_per_event.Add(
          static_cast<double>(verified_per_event[e]));
    }
  }
}

bool SubscriptionEngine::MakePointEvent(
    const std::vector<AttributeValue>& values, Event* out) const {
  std::vector<float> pt;
  if (!schema_.MakePoint(values, &pt)) return false;
  *out = Event::Point(std::move(pt));
  return true;
}

bool SubscriptionEngine::MakeRangeEvent(
    const std::vector<AttributeRange>& ranges, Event* out) const {
  Box box;
  if (!schema_.MakeBox(ranges, &box)) return false;
  *out = Event::Range(std::move(box));
  return true;
}

EngineStats SubscriptionEngine::stats() const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  return stats_;
}

void SubscriptionEngine::ResetStats() {
  std::lock_guard<std::mutex> lk(meta_mu_);
  stats_ = EngineStats();
}

}  // namespace accl
