#include "sdi/subscription_engine.h"

#include "util/check.h"
#include "util/timer.h"

namespace accl {

Event Event::Point(std::vector<float> normalized_point) {
  Event e;
  e.is_point = true;
  e.box = Box::Point(normalized_point);
  return e;
}

Event Event::Range(Box normalized_box) {
  Event e;
  e.is_point = false;
  e.box = std::move(normalized_box);
  return e;
}

SubscriptionEngine::SubscriptionEngine(AttributeSchema schema,
                                       EngineOptions options)
    : schema_(std::move(schema)), options_(options) {
  ACCL_CHECK(schema_.dims() > 0);
  options_.index.nd = schema_.dims();
  index_ = std::make_unique<AdaptiveIndex>(options_.index);
}

SubscriptionId SubscriptionEngine::Subscribe(
    const std::vector<AttributeRange>& ranges) {
  Box box;
  if (!schema_.MakeBox(ranges, &box)) return kInvalidObject;
  return SubscribeBox(box);
}

SubscriptionId SubscriptionEngine::SubscribeBox(const Box& box) {
  ACCL_CHECK(box.dims() == schema_.dims());
  const SubscriptionId id = next_id_++;
  index_->Insert(id, box.view());
  return id;
}

bool SubscriptionEngine::Unsubscribe(SubscriptionId id) {
  return index_->Erase(id);
}

void SubscriptionEngine::Match(const Event& event,
                               std::vector<SubscriptionId>* out) {
  Match(event, options_.default_policy, out);
}

void SubscriptionEngine::Match(const Event& event, MatchPolicy policy,
                               std::vector<SubscriptionId>* out) {
  // Point events are enclosure queries under either policy (a point
  // intersects a subscription iff the subscription encloses it).
  const Relation rel = event.is_point || policy == MatchPolicy::kCovering
                           ? Relation::kEncloses
                           : Relation::kIntersects;
  Query q(event.box, rel);
  QueryMetrics m;
  WallTimer t;
  index_->Execute(q, out, &m);
  stats_.match_latency_ms.Add(t.ElapsedMs());
  ++stats_.events_processed;
  stats_.matches_per_event.Add(static_cast<double>(m.result_count));
  stats_.verified_per_event.Add(static_cast<double>(m.objects_verified));
}

bool SubscriptionEngine::MakePointEvent(
    const std::vector<AttributeValue>& values, Event* out) const {
  std::vector<float> pt;
  if (!schema_.MakePoint(values, &pt)) return false;
  *out = Event::Point(std::move(pt));
  return true;
}

bool SubscriptionEngine::MakeRangeEvent(
    const std::vector<AttributeRange>& ranges, Event* out) const {
  Box box;
  if (!schema_.MakeBox(ranges, &box)) return false;
  *out = Event::Range(std::move(box));
  return true;
}

}  // namespace accl
