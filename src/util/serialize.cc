#include "util/serialize.h"

#include <cstdio>

namespace accl {

bool ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  long sz = std::ftell(f);
  if (sz < 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(sz));
  size_t got = sz ? std::fread(out->data(), 1, out->size(), f) : 0;
  std::fclose(f);
  return got == out->size();
}

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t put = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  int rc = std::fclose(f);
  return put == bytes.size() && rc == 0;
}

}  // namespace accl
