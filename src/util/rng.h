// Deterministic pseudo-random number generation.
//
// All synthetic workloads in the reproduction are seeded, so experiments are
// exactly repeatable. We use xoshiro256++ (Blackman & Vigna), seeded through
// SplitMix64, which is fast, high quality, and has a tiny state — important
// because workload generation is itself benchmarked.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace accl {

/// 64-bit SplitMix64 step; used for seeding and as a cheap hash.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256++ generator with convenience helpers for the value ranges the
/// workload generators need. Deterministic for a given seed.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Bernoulli trial with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

/// Zipf(s) distribution over {0, .., n-1}: P(k) ∝ 1/(k+1)^s. The CDF is
/// precomputed once (O(n)); Sample is a binary search. Used by the skewed
/// sharding workloads: with s ≳ 1 a handful of ranks carry most of the
/// mass, which is exactly the leading-dimension hot-spot that range-routed
/// dispatch must survive.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  size_t size() const { return cdf_.size(); }

  /// Draws a rank in [0, n). Deterministic given the Rng stream.
  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k), cdf_.back() == 1
};

}  // namespace accl
