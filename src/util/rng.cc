#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace accl {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() {
  return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  ACCL_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  ACCL_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace accl
