// Wall-clock timer for the in-memory experiment measurements.
#pragma once

#include <chrono>

namespace accl {

/// Simple steady-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction / last Reset.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed seconds since construction / last Reset.
  double ElapsedSec() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace accl
