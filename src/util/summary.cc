#include "util/summary.h"

#include <cmath>
#include <cstdio>

namespace accl {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::AddN(size_t n, double x) {
  if (n == 0) return;
  // n identical observations form a summary with zero within-group
  // variance; the standard parallel-variance merge does the rest.
  Summary batch;
  batch.count_ = n;
  batch.mean_ = x;
  batch.m2_ = 0.0;
  batch.min_ = batch.max_ = x;
  Merge(batch);
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void Summary::Reset() { *this = Summary(); }

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::string Summary::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "n=%zu mean=%.6g [%.6g,%.6g]", count_,
                mean(), min(), max());
  return buf;
}

}  // namespace accl
