// Lightweight invariant checking used across the library.
//
// ACCL_CHECK is always-on (library invariants that must hold even in release
// builds: violating them means data corruption). ACCL_DCHECK compiles out in
// NDEBUG builds and guards hot-path assertions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace accl {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "ACCL_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace accl

#define ACCL_CHECK(expr)                                \
  do {                                                  \
    if (!(expr)) ::accl::CheckFailed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define ACCL_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define ACCL_DCHECK(expr) ACCL_CHECK(expr)
#endif
