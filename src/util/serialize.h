// Minimal little-endian binary (de)serialization used by the disk
// persistence layer (storage/persist.h). Values are written in the host's
// native representation; the format is an on-disk image for crash recovery
// on the same machine, not a portable interchange format (matching the
// paper's §6 "Fail Recovery" scope).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace accl {

/// Append-only byte sink.
class ByteWriter {
 public:
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF32(float v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutU8(uint8_t v) { PutRaw(&v, sizeof(v)); }

  void PutBytes(const void* data, size_t n) { PutRaw(data, n); }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

/// Sequential byte source over a borrowed buffer. All Get* methods return
/// false (and leave the output untouched) on underflow, so a truncated file
/// is detected rather than read past.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t n) : data_(data), size_(n) {}
  explicit ByteReader(const std::vector<uint8_t>& v)
      : data_(v.data()), size_(v.size()) {}

  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetF32(float* v) { return GetRaw(v, sizeof(*v)); }
  bool GetF64(double* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetBytes(void* out, size_t n) { return GetRaw(out, n); }

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  bool GetRaw(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Reads a whole file into `out`. Returns false on I/O failure.
bool ReadFile(const std::string& path, std::vector<uint8_t>* out);

/// Writes `bytes` to `path`, truncating. Returns false on I/O failure.
bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes);

}  // namespace accl
