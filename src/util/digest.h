// FNV-1a digesting for determinism oracles.
//
// The parity gates (bench_parallel_sdi's cross-thread/cross-mode digest,
// tests/rebalance_fuzz_test's sharded-vs-serial replay oracle) hash the
// exact (event index, sorted match ids) assignment and compare across
// engine configurations; they are only a shared oracle if every gate uses
// bit-identical hashing, so the function lives here instead of being
// re-derived per binary.
#pragma once

#include <cstddef>
#include <cstdint>

namespace accl {

inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;

/// Folds the 8 bytes of `x` (little-endian order) into FNV-1a state `h`.
inline uint64_t Fnv1a(uint64_t h, uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

/// Folds `n` raw bytes into FNV-1a state `h`. The durability layer's
/// record/checkpoint checksums chain this (payload first, trailing fields
/// after), so the state-in/state-out form matters.
inline uint64_t Fnv1aBytes(uint64_t h, const void* p, size_t n) {
  const auto* b = static_cast<const uint8_t*>(p);
  for (size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Folds a 64-bit FNV state to the 32 bits stored in on-disk checksums.
inline uint32_t FnvFold32(uint64_t h) {
  return static_cast<uint32_t>(h ^ (h >> 32));
}

}  // namespace accl
