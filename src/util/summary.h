// Streaming summary statistics (count / mean / min / max / stddev) used by
// the benchmark harness and by the adaptive index's internal accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace accl {

/// Welford-style running summary. Numerically stable; O(1) space.
class Summary {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Adds `n` observations of the same value `x` in O(1) — equivalent to
  /// calling Add(x) n times (identical count/mean/min/max; variance agrees
  /// to floating-point rounding). Used by batch paths that record one
  /// averaged value per element so the stats lock is held O(1), not O(n).
  void AddN(size_t n, double x);

  /// Merges another summary into this one.
  void Merge(const Summary& other);

  /// Removes all observations.
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Short human-readable rendering, e.g. "n=100 mean=1.23 [0.5,4.2]".
  std::string ToString() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace accl
