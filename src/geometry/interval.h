// One-dimensional closed interval [lo, hi] — the building block of
// multidimensional extended objects ("hyper-intervals" in the paper).
#pragma once

#include <algorithm>

#include "api/types.h"
#include "util/check.h"

namespace accl {

/// Closed interval [lo, hi] with lo <= hi, both in the normalized domain.
struct Interval {
  float lo = 0.0f;
  float hi = 0.0f;

  Interval() = default;
  Interval(float l, float h) : lo(l), hi(h) { ACCL_DCHECK(l <= h); }

  float length() const { return hi - lo; }
  float center() const { return 0.5f * (lo + hi); }

  /// Point membership (closed on both ends).
  bool Contains(float x) const { return lo <= x && x <= hi; }

  /// [lo,hi] ∩ [o.lo,o.hi] ≠ ∅ (touching endpoints count as intersecting,
  /// consistent with closed intervals).
  bool Intersects(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }

  /// True iff `o` lies entirely within this interval (this ⊇ o).
  bool ContainsInterval(const Interval& o) const {
    return lo <= o.lo && o.hi <= hi;
  }

  /// Length of the overlap with `o` (0 when disjoint).
  float OverlapLength(const Interval& o) const {
    return std::max(0.0f, std::min(hi, o.hi) - std::max(lo, o.lo));
  }

  bool operator==(const Interval& o) const { return lo == o.lo && hi == o.hi; }
};

}  // namespace accl
