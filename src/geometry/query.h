// A spatial query: a query object plus the requested spatial relation.
#pragma once

#include <string>
#include <vector>

#include "geometry/box.h"
#include "geometry/predicates.h"

namespace accl {

/// Spatial selection as defined in the paper's §3.6: the query specifies the
/// query object and the spatial relation (intersection, containment, or
/// enclosure) requested between the query object and the database objects in
/// the answer set.
struct Query {
  Box box;
  Relation rel = Relation::kIntersects;

  Query() = default;
  Query(Box b, Relation r) : box(std::move(b)), rel(r) {}

  Dim dims() const { return box.dims(); }

  /// True iff database object `obj` belongs to the answer set.
  bool Matches(BoxView obj) const { return Satisfies(obj, box.view(), rel); }

  static Query Intersection(Box b) {
    return Query(std::move(b), Relation::kIntersects);
  }
  static Query Containment(Box b) {
    return Query(std::move(b), Relation::kContainedBy);
  }
  static Query Enclosure(Box b) {
    return Query(std::move(b), Relation::kEncloses);
  }
  /// Point-enclosing query: all objects containing the point.
  static Query PointEnclosing(const std::vector<float>& pt) {
    return Query(Box::Point(pt), Relation::kEncloses);
  }

  std::string ToString() const;
};

}  // namespace accl
