// Multidimensional extended objects (hyper-rectangles).
//
// Coordinates are stored flat as [lo0, hi0, lo1, hi1, ...] so that large
// collections can live in contiguous memory — the paper stores each cluster's
// objects sequentially to exploit cache lines / sequential disk transfer, and
// our cluster storage keeps the same layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/types.h"
#include "geometry/interval.h"
#include "util/check.h"

namespace accl {

/// Non-owning view of one hyper-rectangle: `2*nd` floats laid out
/// [lo0, hi0, lo1, hi1, ...]. Cheap to copy; valid only while the underlying
/// buffer lives.
class BoxView {
 public:
  BoxView() : data_(nullptr), nd_(0) {}
  BoxView(const float* data, Dim nd) : data_(data), nd_(nd) {}

  Dim dims() const { return nd_; }
  const float* data() const { return data_; }
  bool empty() const { return data_ == nullptr; }

  float lo(Dim d) const { return data_[2 * d]; }
  float hi(Dim d) const { return data_[2 * d + 1]; }
  Interval interval(Dim d) const { return Interval(lo(d), hi(d)); }

  /// Product of side lengths.
  double Volume() const {
    double v = 1.0;
    for (Dim d = 0; d < nd_; ++d) v *= static_cast<double>(hi(d) - lo(d));
    return v;
  }

  /// Sum of side lengths (the R*-tree "margin").
  double Margin() const {
    double m = 0.0;
    for (Dim d = 0; d < nd_; ++d) m += static_cast<double>(hi(d) - lo(d));
    return m;
  }

 private:
  const float* data_;
  Dim nd_;
};

/// Owning hyper-rectangle. Used at API boundaries, in tests, and for query
/// objects; bulk data lives in flat arrays instead.
class Box {
 public:
  Box() = default;

  /// A degenerate box at the origin of an `nd`-dimensional space.
  explicit Box(Dim nd) : coords_(2 * static_cast<size_t>(nd), 0.0f) {}

  /// Builds from explicit per-dimension intervals.
  explicit Box(const std::vector<Interval>& ivs);

  /// Copies the contents of a view.
  explicit Box(BoxView v);

  /// The full domain [0,1]^nd.
  static Box FullDomain(Dim nd);

  /// A zero-extent box (point). `pt.size()` gives the dimensionality.
  static Box Point(const std::vector<float>& pt);

  Dim dims() const { return static_cast<Dim>(coords_.size() / 2); }
  float lo(Dim d) const { return coords_[2 * d]; }
  float hi(Dim d) const { return coords_[2 * d + 1]; }
  void set(Dim d, float lo, float hi) {
    ACCL_DCHECK(lo <= hi);
    coords_[2 * d] = lo;
    coords_[2 * d + 1] = hi;
  }
  Interval interval(Dim d) const { return Interval(lo(d), hi(d)); }

  BoxView view() const { return BoxView(coords_.data(), dims()); }
  const float* data() const { return coords_.data(); }
  float* mutable_data() { return coords_.data(); }

  double Volume() const { return view().Volume(); }

  /// "[0.1,0.2]x[0.3,0.4]" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Box& o) const { return coords_ == o.coords_; }

 private:
  std::vector<float> coords_;
};

}  // namespace accl
