// Spatial relations between a query object and database objects.
//
// The paper's spatial selections: intersection, containment ("find objects
// contained in the query"), enclosure ("find objects enclosing the query"),
// with point-enclosing as the degenerate enclosure case.
#pragma once

#include <cstdint>

#include "geometry/box.h"

namespace accl {

/// The spatial relation requested between the query object Q and a database
/// object O for O to belong to the answer set.
enum class Relation : uint8_t {
  kIntersects = 0,  ///< O ∩ Q ≠ ∅
  kContainedBy,     ///< O ⊆ Q (containment query)
  kEncloses,        ///< O ⊇ Q (enclosure query; point-enclosing when Q is a point)
};

const char* RelationName(Relation r);

/// True iff `obj` stands in relation `rel` to `query`. Both boxes must have
/// the same dimensionality.
bool Satisfies(BoxView obj, BoxView query, Relation rel);

/// As Satisfies(), but additionally reports how many dimensions were compared
/// before the verdict (early exit on the first failing dimension). This is
/// the per-object verification cost the paper's footnote 4 discusses: for
/// unselective queries, more attributes must be checked on average.
bool SatisfiesCounting(BoxView obj, BoxView query, Relation rel,
                       uint32_t* dims_checked);

/// Convenience wrappers.
inline bool Intersects(BoxView a, BoxView b) {
  return Satisfies(a, b, Relation::kIntersects);
}
inline bool ContainedBy(BoxView inner, BoxView outer) {
  return Satisfies(inner, outer, Relation::kContainedBy);
}
inline bool Encloses(BoxView outer, BoxView inner) {
  return Satisfies(outer, inner, Relation::kEncloses);
}

}  // namespace accl
