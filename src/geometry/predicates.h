// Spatial relations between a query object and database objects.
//
// The paper's spatial selections: intersection, containment ("find objects
// contained in the query"), enclosure ("find objects enclosing the query"),
// with point-enclosing as the degenerate enclosure case.
#pragma once

#include <cstdint>
#include <vector>

#include "api/types.h"
#include "geometry/box.h"

namespace accl {

/// The spatial relation requested between the query object Q and a database
/// object O for O to belong to the answer set.
enum class Relation : uint8_t {
  kIntersects = 0,  ///< O ∩ Q ≠ ∅
  kContainedBy,     ///< O ⊆ Q (containment query)
  kEncloses,        ///< O ⊇ Q (enclosure query; point-enclosing when Q is a point)
};

const char* RelationName(Relation r);

/// True iff `obj` stands in relation `rel` to `query`. Both boxes must have
/// the same dimensionality.
bool Satisfies(BoxView obj, BoxView query, Relation rel);

/// As Satisfies(), but additionally reports how many dimensions were compared
/// before the verdict (early exit on the first failing dimension). This is
/// the per-object verification cost the paper's footnote 4 discusses: for
/// unselective queries, more attributes must be checked on average.
bool SatisfiesCounting(BoxView obj, BoxView query, Relation rel,
                       uint32_t* dims_checked);

/// Precomputed query image for batched verification.
///
/// Per record float k (layout [lo0, hi0, lo1, hi1, ...]) the image holds two
/// bounds such that the float fails its dimension iff
///
///     o[k] > gt_bound[k]  ||  o[k] < lt_bound[k]
///
/// with +/-infinity in the positions a relation does not constrain. This
/// encodes all three relations into data: the kernel runs one uniform,
/// branch-free two-compare loop with no per-object or per-dimension
/// dispatch, and the failing-float position is exactly the early-exit
/// dimension the cost accounting needs.
class BatchQuery {
 public:
  BatchQuery() = default;
  BatchQuery(BoxView query, Relation rel) { Assign(query, rel); }

  /// (Re)builds the image for a new query, reusing the buffers — keep one
  /// instance around to avoid per-query allocations on the hot path.
  void Assign(BoxView query, Relation rel);

  Dim dims() const { return nd_; }
  Relation relation() const { return rel_; }
  const float* gt_bounds() const { return gt_.data(); }
  const float* lt_bounds() const { return lt_.data(); }

 private:
  Dim nd_ = 0;
  Relation rel_ = Relation::kIntersects;
  std::vector<float> gt_;  // 2*nd, fail if o[k] > gt_[k]
  std::vector<float> lt_;  // 2*nd, fail if o[k] < lt_[k]
};

// The batched verification kernel that consumes a BatchQuery lives in
// src/kernels/ (verify_backend.h / backend_registry.h): one algorithm,
// several runtime-dispatched ISA variants. BatchQuery stays here because it
// is pure query-image data — geometry remains below the kernel layer.

/// Convenience wrappers.
inline bool Intersects(BoxView a, BoxView b) {
  return Satisfies(a, b, Relation::kIntersects);
}
inline bool ContainedBy(BoxView inner, BoxView outer) {
  return Satisfies(inner, outer, Relation::kContainedBy);
}
inline bool Encloses(BoxView outer, BoxView inner) {
  return Satisfies(outer, inner, Relation::kEncloses);
}

}  // namespace accl
