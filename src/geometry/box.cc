#include "geometry/box.h"

#include <cstdio>

namespace accl {

Box::Box(const std::vector<Interval>& ivs) {
  coords_.reserve(ivs.size() * 2);
  for (const Interval& iv : ivs) {
    ACCL_CHECK(iv.lo <= iv.hi);
    coords_.push_back(iv.lo);
    coords_.push_back(iv.hi);
  }
}

Box::Box(BoxView v) {
  coords_.assign(v.data(), v.data() + 2 * static_cast<size_t>(v.dims()));
}

Box Box::FullDomain(Dim nd) {
  Box b(nd);
  for (Dim d = 0; d < nd; ++d) b.set(d, kDomainMin, kDomainMax);
  return b;
}

Box Box::Point(const std::vector<float>& pt) {
  Box b(static_cast<Dim>(pt.size()));
  for (Dim d = 0; d < b.dims(); ++d) b.set(d, pt[d], pt[d]);
  return b;
}

std::string Box::ToString() const {
  std::string s;
  for (Dim d = 0; d < dims(); ++d) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s[%g,%g]", d ? "x" : "", lo(d), hi(d));
    s += buf;
  }
  return s;
}

}  // namespace accl
