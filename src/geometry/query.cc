#include "geometry/query.h"

namespace accl {

std::string Query::ToString() const {
  std::string s = RelationName(rel);
  s += " ";
  s += box.ToString();
  return s;
}

}  // namespace accl
