#include "geometry/predicates.h"

#include <limits>

#include "util/check.h"

namespace accl {

const char* RelationName(Relation r) {
  switch (r) {
    case Relation::kIntersects:
      return "intersects";
    case Relation::kContainedBy:
      return "contained-by";
    case Relation::kEncloses:
      return "encloses";
  }
  return "?";
}

namespace {

// One dimension of each relation. All comparisons are on closed intervals.
inline bool DimOk(float olo, float ohi, float qlo, float qhi, Relation rel) {
  switch (rel) {
    case Relation::kIntersects:
      return olo <= qhi && qlo <= ohi;
    case Relation::kContainedBy:
      return qlo <= olo && ohi <= qhi;
    case Relation::kEncloses:
      return olo <= qlo && qhi <= ohi;
  }
  return false;
}

}  // namespace

bool Satisfies(BoxView obj, BoxView query, Relation rel) {
  ACCL_DCHECK(obj.dims() == query.dims());
  const Dim nd = obj.dims();
  const float* o = obj.data();
  const float* q = query.data();
  for (Dim d = 0; d < nd; ++d) {
    if (!DimOk(o[2 * d], o[2 * d + 1], q[2 * d], q[2 * d + 1], rel)) {
      return false;
    }
  }
  return true;
}

void BatchQuery::Assign(BoxView query, Relation rel) {
  nd_ = query.dims();
  rel_ = rel;
  gt_.assign(2 * static_cast<size_t>(nd_),
             std::numeric_limits<float>::infinity());
  lt_.assign(2 * static_cast<size_t>(nd_),
             -std::numeric_limits<float>::infinity());
  const float* q = query.data();
  for (Dim d = 0; d < nd_; ++d) {
    const float qlo = q[2 * d];
    const float qhi = q[2 * d + 1];
    switch (rel) {
      case Relation::kIntersects:  // fail: olo > qhi  ||  ohi < qlo
        gt_[2 * d] = qhi;
        lt_[2 * d + 1] = qlo;
        break;
      case Relation::kContainedBy:  // fail: olo < qlo  ||  ohi > qhi
        lt_[2 * d] = qlo;
        gt_[2 * d + 1] = qhi;
        break;
      case Relation::kEncloses:  // fail: olo > qlo  ||  ohi < qhi
        gt_[2 * d] = qlo;
        lt_[2 * d + 1] = qhi;
        break;
    }
  }
}

bool SatisfiesCounting(BoxView obj, BoxView query, Relation rel,
                       uint32_t* dims_checked) {
  ACCL_DCHECK(obj.dims() == query.dims());
  const Dim nd = obj.dims();
  const float* o = obj.data();
  const float* q = query.data();
  for (Dim d = 0; d < nd; ++d) {
    if (!DimOk(o[2 * d], o[2 * d + 1], q[2 * d], q[2 * d + 1], rel)) {
      *dims_checked = d + 1;
      return false;
    }
  }
  *dims_checked = nd;
  return true;
}

}  // namespace accl
