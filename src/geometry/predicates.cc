#include "geometry/predicates.h"

#include <algorithm>
#include <limits>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/check.h"

namespace accl {

const char* RelationName(Relation r) {
  switch (r) {
    case Relation::kIntersects:
      return "intersects";
    case Relation::kContainedBy:
      return "contained-by";
    case Relation::kEncloses:
      return "encloses";
  }
  return "?";
}

namespace {

// One dimension of each relation. All comparisons are on closed intervals.
inline bool DimOk(float olo, float ohi, float qlo, float qhi, Relation rel) {
  switch (rel) {
    case Relation::kIntersects:
      return olo <= qhi && qlo <= ohi;
    case Relation::kContainedBy:
      return qlo <= olo && ohi <= qhi;
    case Relation::kEncloses:
      return olo <= qlo && qhi <= ohi;
  }
  return false;
}

}  // namespace

bool Satisfies(BoxView obj, BoxView query, Relation rel) {
  ACCL_DCHECK(obj.dims() == query.dims());
  const Dim nd = obj.dims();
  const float* o = obj.data();
  const float* q = query.data();
  for (Dim d = 0; d < nd; ++d) {
    if (!DimOk(o[2 * d], o[2 * d + 1], q[2 * d], q[2 * d + 1], rel)) {
      return false;
    }
  }
  return true;
}

void BatchQuery::Assign(BoxView query, Relation rel) {
  nd_ = query.dims();
  rel_ = rel;
  gt_.assign(2 * static_cast<size_t>(nd_),
             std::numeric_limits<float>::infinity());
  lt_.assign(2 * static_cast<size_t>(nd_),
             -std::numeric_limits<float>::infinity());
  const float* q = query.data();
  for (Dim d = 0; d < nd_; ++d) {
    const float qlo = q[2 * d];
    const float qhi = q[2 * d + 1];
    switch (rel) {
      case Relation::kIntersects:  // fail: olo > qhi  ||  ohi < qlo
        gt_[2 * d] = qhi;
        lt_[2 * d + 1] = qlo;
        break;
      case Relation::kContainedBy:  // fail: olo < qlo  ||  ohi > qhi
        lt_[2 * d] = qlo;
        gt_[2 * d + 1] = qhi;
        break;
      case Relation::kEncloses:  // fail: olo > qlo  ||  ohi < qhi
        gt_[2 * d] = qlo;
        lt_[2 * d + 1] = qhi;
        break;
    }
  }
}

size_t VerifyBatch(const float* coords, const ObjectId* ids, size_t n,
                   const BatchQuery& bq, std::vector<ObjectId>* out,
                   uint64_t* dims_checked) {
  const Dim nd = bq.dims();
  const size_t stride = 2 * static_cast<size_t>(nd);
  const float* __restrict__ bg = bq.gt_bounds();
  const float* __restrict__ bl = bq.lt_bounds();
  uint64_t dims = 0;
  size_t matches = 0;
  for (size_t block = 0; block < n; block += 64) {
    const size_t bn = std::min<size_t>(64, n - block);
    uint64_t match_mask = 0;
    const float* __restrict__ o = coords + block * stride;
    for (size_t j = 0; j < bn; ++j, o += stride) {
      // Stay a few records ahead of the hardware prefetcher: most records
      // are rejected after one or two dimensions, so the sweep consumes
      // lines faster than a freshly started stream is predicted.
      __builtin_prefetch(o + 4 * stride);
      size_t k = 0;
      size_t fail = stride;
#if defined(__SSE2__)
      // SIMD sweep, 16 floats (8 dimensions) per step: the fail test is
      // evaluated branch-free for the whole chunk and reduced to a bitmask
      // whose lowest set bit is the first failing float. No data-dependent
      // branching per dimension, so mixed fail depths cost no
      // mispredictions; the one branch per chunk ("this chunk decided it")
      // is overwhelmingly taken on selective queries.
      for (; k + 16 <= stride; k += 16) {
        uint32_t m = 0;
        for (size_t g = 0; g < 16; g += 4) {
          const __m128 ov = _mm_loadu_ps(o + k + g);
          const __m128 f =
              _mm_or_ps(_mm_cmpgt_ps(ov, _mm_loadu_ps(bg + k + g)),
                        _mm_cmplt_ps(ov, _mm_loadu_ps(bl + k + g)));
          m |= static_cast<uint32_t>(_mm_movemask_ps(f)) << g;
        }
        if (m != 0) {
          fail = k + static_cast<size_t>(__builtin_ctz(m));
          break;
        }
      }
      if (fail == stride) {
        for (size_t t = k; t < stride; ++t) {
          if ((o[t] > bg[t]) | (o[t] < bl[t])) {
            fail = t;
            break;
          }
        }
      }
#else
      for (; k < stride; ++k) {
        if ((o[k] > bg[k]) | (o[k] < bl[k])) {
          fail = k;
          break;
        }
      }
#endif
      if (fail == stride) {
        dims += nd;
        match_mask |= 1ull << j;
      } else {
        dims += fail / 2 + 1;
      }
    }
    while (match_mask != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(match_mask));
      match_mask &= match_mask - 1;
      out->push_back(ids[block + j]);
      ++matches;
    }
  }
  *dims_checked += dims;
  return matches;
}

bool SatisfiesCounting(BoxView obj, BoxView query, Relation rel,
                       uint32_t* dims_checked) {
  ACCL_DCHECK(obj.dims() == query.dims());
  const Dim nd = obj.dims();
  const float* o = obj.data();
  const float* q = query.data();
  for (Dim d = 0; d < nd; ++d) {
    if (!DimOk(o[2 * d], o[2 * d + 1], q[2 * d], q[2 * d + 1], rel)) {
      *dims_checked = d + 1;
      return false;
    }
  }
  *dims_checked = nd;
  return true;
}

}  // namespace accl
