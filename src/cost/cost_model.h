// The paper's cost model (§5) and benefit functions.
//
// The expected execution time charged to a cluster c is
//     T_c = A + p_c * (B + n_c * C)
// where p_c is the cluster's access probability, n_c its object count, and
//   A = time to check the cluster signature (paid for every cluster),
//   B = time to prepare the exploration + update query statistics
//       (+ one disk seek in the disk scenario),
//   C = time to verify one object (+ its transfer time in the disk scenario).
//
// Materialization benefit (eq. 3):  beta(s,c) = (p_c - p_s) n_s C - p_s B - A
// Merging benefit (eq. 5):          mu(c,a)   = A + p_c B - (p_a - p_c) n_c C
#pragma once

#include <cstdint>
#include <string>

#include "api/types.h"

namespace accl {

/// Where cluster members live. Signatures/statistics are always in memory.
enum class StorageScenario : uint8_t {
  kMemory = 0,  ///< members sequential in RAM
  kDisk,        ///< members sequential on (simulated) disk
};

const char* StorageScenarioName(StorageScenario s);

/// Database/system parameters affecting query performance (paper Table 2).
/// All times in milliseconds, rates in bytes/ms.
struct SystemParams {
  /// Time to check one cluster signature against a query, per dimension.
  /// Paper Table 2 lists 5e-7 ms per signature check; we scale linearly in
  /// dimensionality since the check is a per-dimension loop.
  double sig_check_ms_per_dim = 5e-7;
  /// Fixed time to prepare a cluster exploration (function call, scan
  /// initialization).
  double explore_setup_ms = 2e-4;
  /// Per-candidate cost of updating query statistics when a cluster is
  /// explored. The paper's B explicitly includes "the time spent to update
  /// the query statistics for the current cluster and for the candidate
  /// subclusters"; with 10*Nd..16*Nd candidates per cluster this term
  /// dominates B in memory and is what stops the structure from splitting
  /// into clusters too small to amortize their own bookkeeping.
  double stat_update_ms_per_candidate = 2e-5;
  /// CPU object-verification rate. Paper: 300 MB/s => 3.18e-6 ms/byte.
  double verify_ms_per_byte = 1000.0 / (300.0 * 1024 * 1024);
  /// Disk access (seek + rotational) time. Paper: 15 ms.
  double disk_access_ms = 15.0;
  /// Sequential disk transfer. Paper: 20 MB/s => 4.77e-5 ms/byte.
  double disk_ms_per_byte = 1000.0 / (20.0 * 1024 * 1024);

  /// The paper's reference hardware (Table 2).
  static SystemParams Paper() { return SystemParams{}; }
};

/// The A/B/C parameters of T = A + p(B + nC), derived from SystemParams for
/// a given scenario and per-object size.
struct CostModel {
  double A = 0.0;  ///< per-signature-check cost [ms]
  double B = 0.0;  ///< per-exploration fixed cost [ms]
  double C = 0.0;  ///< per-object cost [ms]
  StorageScenario scenario = StorageScenario::kMemory;

  /// Builds the model for `scenario` with `nd`-dimensional objects.
  /// `candidates_per_cluster` is the number of candidate subclusters whose
  /// statistics each exploration updates (0 for structures without
  /// candidates, e.g. when modeling a plain scan).
  static CostModel Make(StorageScenario scenario, Dim nd,
                        const SystemParams& sys,
                        double candidates_per_cluster = 0.0);

  /// Expected per-query time charged to a cluster (eq. 1).
  double ClusterTime(double p, double n) const { return A + p * (B + n * C); }

  /// Materialization benefit beta(s, c) of candidate s of cluster c (eq. 3).
  /// Positive => splitting s out of c is expected to pay off.
  double MaterializationBenefit(double p_c, double p_s, double n_s) const {
    return (p_c - p_s) * n_s * C - p_s * B - A;
  }

  /// Merging benefit mu(c, a) of folding cluster c into its parent a (eq. 5).
  /// Positive => merging is expected to pay off.
  double MergeBenefit(double p_c, double p_a, double n_c) const {
    return A + p_c * B - (p_a - p_c) * n_c * C;
  }

  std::string ToString() const;
};

}  // namespace accl
