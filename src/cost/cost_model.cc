#include "cost/cost_model.h"

#include <cstdio>

namespace accl {

const char* StorageScenarioName(StorageScenario s) {
  switch (s) {
    case StorageScenario::kMemory:
      return "memory";
    case StorageScenario::kDisk:
      return "disk";
  }
  return "?";
}

CostModel CostModel::Make(StorageScenario scenario, Dim nd,
                          const SystemParams& sys,
                          double candidates_per_cluster) {
  CostModel m;
  m.scenario = scenario;
  const double obj_bytes = static_cast<double>(ObjectBytes(nd));
  m.A = sys.sig_check_ms_per_dim * static_cast<double>(nd);
  m.B = sys.explore_setup_ms +
        sys.stat_update_ms_per_candidate * candidates_per_cluster;
  m.C = sys.verify_ms_per_byte * obj_bytes;
  if (scenario == StorageScenario::kDisk) {
    // B' = B + disk head positioning; C' = C + per-object transfer.
    m.B += sys.disk_access_ms;
    m.C += sys.disk_ms_per_byte * obj_bytes;
  }
  return m;
}

std::string CostModel::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "CostModel(%s A=%.3g B=%.3g C=%.3g ms)",
                StorageScenarioName(scenario), A, B, C);
  return buf;
}

}  // namespace accl
