// Sequential Scan baseline (paper §7.1).
//
// The whole database is one sequentially stored collection; every query
// checks every object. Quantitatively expensive but with perfect data
// locality — on disk it pays a single head positioning followed by one
// sustained sequential transfer, which is why it beats R-tree variants in
// high dimensions and is the reference the adaptive clustering must always
// outperform.
#pragma once

#include <cstdint>

#include "api/spatial_index.h"
#include "cost/cost_model.h"
#include "geometry/predicates.h"
#include "storage/slot_array.h"

namespace accl {

namespace kernels {
class VerifyBackend;
}  // namespace kernels

/// The Sequential Scan competitor.
class SeqScan : public SpatialIndex {
 public:
  explicit SeqScan(Dim nd,
                   StorageScenario scenario = StorageScenario::kMemory,
                   const SystemParams& sys = SystemParams::Paper());

  const char* name() const override { return "SS"; }
  Dim dims() const override { return nd_; }
  void Insert(ObjectId id, BoxView box) override;
  bool Erase(ObjectId id) override;
  void Execute(const Query& q, std::vector<ObjectId>* out,
               QueryMetrics* metrics = nullptr) override;
  size_t size() const override { return store_.size(); }
  VerifyKernelInfo verify_kernel() const override;

 private:
  Dim nd_;
  StorageScenario scenario_;
  SystemParams sys_;
  /// Verification backend resolved once at construction (env / widest).
  const kernels::VerifyBackend* backend_;
  SlotArray store_;
  /// Reused per-query verification image (avoids per-query allocation).
  BatchQuery bq_;
};

}  // namespace accl
