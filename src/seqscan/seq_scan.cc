#include "seqscan/seq_scan.h"

#include "geometry/predicates.h"
#include "kernels/backend_registry.h"
#include "util/check.h"

namespace accl {

SeqScan::SeqScan(Dim nd, StorageScenario scenario, const SystemParams& sys)
    : nd_(nd),
      scenario_(scenario),
      sys_(sys),
      backend_(kernels::BackendRegistry::Instance().Resolve("")),
      store_(nd, 0.0) {}

VerifyKernelInfo SeqScan::verify_kernel() const {
  return {backend_->name(), backend_->vector_width_floats()};
}

void SeqScan::Insert(ObjectId id, BoxView box) {
  ACCL_CHECK(box.dims() == nd_);
  store_.Append(id, box);
}

bool SeqScan::Erase(ObjectId id) {
  const size_t slot = store_.Find(id);
  if (slot == static_cast<size_t>(-1)) return false;
  store_.RemoveAt(slot);
  return true;
}

void SeqScan::Execute(const Query& q, std::vector<ObjectId>* out,
                      QueryMetrics* metrics) {
  ACCL_CHECK(q.dims() == nd_);
  QueryMetrics local;
  QueryMetrics* m = metrics ? metrics : &local;
  m->Clear();
  m->groups_total = 1;
  m->groups_explored = 1;

  const size_t n = store_.size();
  bq_.Assign(q.box.view(), q.rel);
  m->result_count += backend_->VerifyBatch(
      store_.coords_data(), store_.ids().data(), n, bq_, out,
      &m->dims_checked);
  m->objects_verified = n;
  m->bytes_verified = store_.live_bytes();

  // Cost-model time. CPU verification is charged for the bytes actually
  // compared (id + 8 bytes per checked dimension) — this reproduces the
  // paper's footnote 4: unselective queries reject later and cost up to
  // ~3x more CPU.
  const uint64_t cpu_bytes = 4ull * n + 8ull * m->dims_checked;
  m->sim_time_ms += sys_.verify_ms_per_byte * static_cast<double>(cpu_bytes);
  if (scenario_ == StorageScenario::kDisk) {
    // One head positioning, then one sustained sequential transfer.
    m->disk_seeks = 1;
    m->disk_bytes = store_.live_bytes();
    m->sim_time_ms +=
        sys_.disk_access_ms +
        sys_.disk_ms_per_byte * static_cast<double>(m->disk_bytes);
  }
}

}  // namespace accl
