// SelectivityAnalyzer — predicts, for every candidate fence dimension,
// what range routing would cost if the fences were placed there.
//
// Pure functions over a PatternSnapshot: no locks, no engine state, fully
// deterministic — the advisor's decisions (and therefore the fuzzers'
// replays) are reproducible from the histogram contents alone.
//
// The model, per dimension d with R range slices:
//
//   - Fence placement: R-1 interior fences at equal-mass quantiles of the
//     subscription interval-center distribution (approximated at bin
//     resolution by the mean of the lower- and upper-endpoint cumulative
//     histograms). Equal mass is what the online rebalancer converges to,
//     so the estimate prices the steady state, not the cold start.
//   - Expected shard visits per event: an event visits one slice per fence
//     its interval crosses, plus its home slice, plus the overflow shard.
//     Intervals crossing fence f at bin boundary t number
//     count(lo < t) - count(hi < t) — exact at bin resolution.
//   - Straddler fraction: subscriptions crossing >= 1 fence would live in
//     the overflow shard. Summed per fence and clamped to 1 (a box
//     crossing two fences is counted twice; the overestimate is shared by
//     every candidate dimension, so the comparison stays fair).
//   - Score: expected visits + straddler_fraction * R. Every event visits
//     the overflow shard, so an overflow holding fraction f of all
//     subscriptions adds ~f of a broadcast's verification work — pricing
//     it as f extra "slice-equivalents" keeps a dimension that routes
//     narrowly but straddles everything from winning.
#pragma once

#include <cstdint>
#include <vector>

#include "adapt/pattern_tracker.h"
#include "api/adaptive_routing.h"
#include "api/types.h"

namespace accl::adapt {

class SelectivityAnalyzer {
 public:
  /// Per-dimension estimates under an optimal fence set of `slices` range
  /// slices. Returns one entry per dimension of `p`; all-zero estimates
  /// when the snapshot holds no events or no subscriptions.
  static std::vector<DimensionEstimate> Analyze(const PatternSnapshot& p,
                                                uint32_t slices);

  /// Equal-mass quantile fence plan for dimension `dim`: `n_fences`
  /// strictly ascending interior fences at bin-boundary resolution.
  /// Degenerate mass (everything in a handful of bins) falls back to a
  /// uniform split so the result is always a valid boundary array.
  static std::vector<float> PlanFences(const PatternSnapshot& p, Dim dim,
                                       size_t n_fences);
};

}  // namespace accl::adapt
