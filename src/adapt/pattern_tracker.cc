#include "adapt/pattern_tracker.h"

namespace accl::adapt {

QueryPatternTracker::QueryPatternTracker(Dim nd) : nd_(nd) {
  for (auto& gen : ring_) gen.Reset(nd_);
}

void QueryPatternTracker::Record(const PatternAccumulator& acc) {
  if (acc.empty()) return;
  events_observed_.fetch_add(acc.data().events, std::memory_order_relaxed);
  subscriptions_observed_.fetch_add(acc.data().subscriptions,
                                    std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  ring_[current_].Merge(acc.data());
}

void QueryPatternTracker::RecordEvent(const Box& b) {
  events_observed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  PatternSnapshot& gen = ring_[current_];
  ++gen.events;
  for (Dim d = 0; d < nd_; ++d) {
    ++gen.event_dims[d].lo[PatternBinOf(b.lo(d))];
    ++gen.event_dims[d].hi[PatternBinOf(b.hi(d))];
  }
}

void QueryPatternTracker::RecordSubscription(const Box& b) {
  subscriptions_observed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  PatternSnapshot& gen = ring_[current_];
  ++gen.subscriptions;
  for (Dim d = 0; d < nd_; ++d) {
    ++gen.sub_dims[d].lo[PatternBinOf(b.lo(d))];
    ++gen.sub_dims[d].hi[PatternBinOf(b.hi(d))];
  }
}

PatternSnapshot QueryPatternTracker::Snapshot() const {
  PatternSnapshot out;
  out.Reset(nd_);
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& gen : ring_) out.Merge(gen);
  return out;
}

void QueryPatternTracker::AdvanceWindow() {
  std::lock_guard<std::mutex> lk(mu_);
  current_ = (current_ + 1) % kGenerations;
  ring_[current_].Reset(nd_);
}

void QueryPatternTracker::ResetWindow() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& gen : ring_) gen.Reset(nd_);
  current_ = 0;
}

}  // namespace accl::adapt
