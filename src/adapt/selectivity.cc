#include "adapt/selectivity.h"

#include <algorithm>

namespace accl::adapt {

namespace {

/// Cumulative endpoint counts: out[t] = number of endpoints in bins
/// [0, t), i.e. endpoints strictly below the bin boundary t/kPatternBins.
void Cumulate(const std::array<uint64_t, kPatternBins>& bins,
              std::array<uint64_t, kPatternBins + 1>* out) {
  (*out)[0] = 0;
  for (size_t b = 0; b < kPatternBins; ++b) {
    (*out)[b + 1] = (*out)[b] + bins[b];
  }
}

/// Uniform interior fences: j/(n+1) for j = 1..n. Strictly ascending for
/// any n < kPatternBins-scale counts the engine accepts.
std::vector<float> UniformFences(size_t n_fences) {
  std::vector<float> f(n_fences);
  for (size_t j = 0; j < n_fences; ++j) {
    f[j] = static_cast<float>(j + 1) / static_cast<float>(n_fences + 1);
  }
  return f;
}

/// Bin-boundary indices (1..kPatternBins-1) of the planned fences for
/// `dim`, shared by Analyze (to price the plan) and PlanFences (to emit
/// it). Empty when the mass is too degenerate for a strictly ascending
/// quantile plan — callers fall back to uniform fences.
std::vector<size_t> QuantileBoundaries(const PatternSnapshot& p, Dim dim,
                                       size_t n_fences) {
  std::array<uint64_t, kPatternBins + 1> cum_lo, cum_hi;
  Cumulate(p.sub_dims[dim].lo, &cum_lo);
  Cumulate(p.sub_dims[dim].hi, &cum_hi);
  // Center mass below boundary t, doubled to stay integral: a box whose
  // endpoints both lie below t contributes 2, one spanning t contributes
  // 1 — exactly twice the "half the box is below t" center approximation.
  const uint64_t total2 = cum_lo[kPatternBins] + cum_hi[kPatternBins];
  if (total2 == 0 || n_fences == 0) return {};
  std::vector<size_t> bounds;
  bounds.reserve(n_fences);
  size_t t = 1;
  for (size_t j = 1; j <= n_fences; ++j) {
    // Smallest boundary with at least j/(n+1) of the center mass below it.
    const uint64_t target = total2 * j / (n_fences + 1);
    while (t < kPatternBins && cum_lo[t] + cum_hi[t] < target) ++t;
    // Strict ascent: a boundary colliding with its predecessor (a single
    // bin holding multiple quantiles) is nudged right.
    if (!bounds.empty() && t <= bounds.back()) t = bounds.back() + 1;
    if (t >= kPatternBins) return {};  // ran off the domain: degenerate
    bounds.push_back(t);
    ++t;
  }
  return bounds;
}

}  // namespace

std::vector<DimensionEstimate> SelectivityAnalyzer::Analyze(
    const PatternSnapshot& p, uint32_t slices) {
  const size_t nd = p.event_dims.size();
  std::vector<DimensionEstimate> est(nd);
  if (p.events == 0 || p.subscriptions == 0 || slices < 1) return est;
  const size_t n_fences = static_cast<size_t>(slices) - 1;
  for (size_t d = 0; d < nd; ++d) {
    std::vector<size_t> bounds =
        QuantileBoundaries(p, static_cast<Dim>(d), n_fences);
    if (bounds.empty() && n_fences > 0) {
      // Degenerate mass: price the uniform fallback PlanFences would emit.
      bounds.resize(n_fences);
      for (size_t j = 0; j < n_fences; ++j) {
        bounds[j] = std::max<size_t>(
            1, (j + 1) * kPatternBins / (n_fences + 1));
        if (j > 0 && bounds[j] <= bounds[j - 1]) bounds[j] = bounds[j - 1] + 1;
        bounds[j] = std::min(bounds[j], kPatternBins - 1);
      }
    }
    std::array<uint64_t, kPatternBins + 1> ev_lo, ev_hi, sub_lo, sub_hi;
    Cumulate(p.event_dims[d].lo, &ev_lo);
    Cumulate(p.event_dims[d].hi, &ev_hi);
    Cumulate(p.sub_dims[d].lo, &sub_lo);
    Cumulate(p.sub_dims[d].hi, &sub_hi);
    uint64_t ev_crossings = 0;
    uint64_t sub_crossings = 0;
    for (const size_t t : bounds) {
      ev_crossings += ev_lo[t] - ev_hi[t];
      sub_crossings += sub_lo[t] - sub_hi[t];
    }
    DimensionEstimate& e = est[d];
    e.expected_shard_visits =
        1.0 +
        static_cast<double>(ev_crossings) / static_cast<double>(p.events) +
        1.0;  // home slice + crossed fences + the overflow visit
    e.straddler_fraction =
        std::min(1.0, static_cast<double>(sub_crossings) /
                          static_cast<double>(p.subscriptions));
    e.score = e.expected_shard_visits +
              e.straddler_fraction * static_cast<double>(slices);
  }
  return est;
}

std::vector<float> SelectivityAnalyzer::PlanFences(const PatternSnapshot& p,
                                                   Dim dim, size_t n_fences) {
  if (n_fences == 0) return {};
  const std::vector<size_t> bounds = QuantileBoundaries(p, dim, n_fences);
  if (bounds.empty()) return UniformFences(n_fences);
  std::vector<float> fences(n_fences);
  for (size_t j = 0; j < n_fences; ++j) {
    fences[j] =
        static_cast<float>(bounds[j]) / static_cast<float>(kPatternBins);
  }
  return fences;
}

}  // namespace accl::adapt
