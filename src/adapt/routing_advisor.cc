#include "adapt/routing_advisor.h"

#include "adapt/selectivity.h"

namespace accl::adapt {

RoutingDecision RoutingAdvisor::Evaluate(const PatternSnapshot& pattern,
                                         const AdvisorState& state) {
  RoutingDecision d;
  if (pattern.events == 0 || pattern.subscriptions == 0 ||
      state.range_slices < 2) {
    return d;  // nothing observed yet, or a single slice: nothing to route
  }
  d.estimates = SelectivityAnalyzer::Analyze(pattern, state.range_slices);
  if (d.estimates.empty() || state.current_dim >= d.estimates.size()) {
    return d;
  }

  // --- 1. Dimension switch -------------------------------------------------
  size_t best = state.current_dim;
  for (size_t cand = 0; cand < d.estimates.size(); ++cand) {
    if (d.estimates[cand].score < d.estimates[best].score) best = cand;
  }
  const double current_score = d.estimates[state.current_dim].score;
  const double best_score = d.estimates[best].score;
  if (best != state.current_dim && best_score > 0.0 &&
      current_score >= opts_.switch_threshold * best_score) {
    std::vector<float> fences = SelectivityAnalyzer::PlanFences(
        pattern, static_cast<Dim>(best), state.range_slices - 1);
    if (fences.size() == state.range_slices - 1) {
      d.kind = RoutingDecision::Kind::kSwitchDimension;
      d.dim = static_cast<uint32_t>(best);
      d.fences = std::move(fences);
      straddle_streak_ = 0;  // new fences change who straddles
      return d;
    }
  }

  // --- 2. Overflow split ---------------------------------------------------
  if (state.split_active || state.split_slices == 0 ||
      state.total_subscriptions == 0) {
    straddle_streak_ = 0;
    return d;
  }
  const double pressure =
      static_cast<double>(state.overflow_residents +
                          state.planner_predicted_spill) /
      static_cast<double>(state.total_subscriptions);
  if (pressure < opts_.split_straddler_threshold) {
    straddle_streak_ = 0;
    return d;
  }
  if (++straddle_streak_ < opts_.split_patience) return d;

  // Split dimension: pinned, else the best-scoring non-fence dimension.
  size_t split_dim = d.estimates.size();
  if (opts_.split_dim >= 0) {
    split_dim = static_cast<size_t>(opts_.split_dim);
  } else {
    for (size_t cand = 0; cand < d.estimates.size(); ++cand) {
      if (cand == state.current_dim) continue;
      if (split_dim == d.estimates.size() ||
          d.estimates[cand].score < d.estimates[split_dim].score) {
        split_dim = cand;
      }
    }
  }
  if (split_dim >= d.estimates.size() || split_dim == state.current_dim) {
    return d;  // pinned to the fence dimension, or nd == 1: cannot split
  }
  // Split fences slice the *straddler* population; the subscription
  // histograms are the closest stand-in the tracker keeps. S sub-shards
  // need S-1 interior fences; PlanFences' uniform fallback guarantees a
  // valid plan, and S == 1 (zero fences -> empty plan) still routes
  // single-slice straddlers out of the catch-all.
  d.kind = RoutingDecision::Kind::kSplitOverflow;
  d.dim = static_cast<uint32_t>(split_dim);
  d.fences = SelectivityAnalyzer::PlanFences(
      pattern, static_cast<Dim>(split_dim), state.split_slices - 1);
  straddle_streak_ = 0;
  return d;
}

}  // namespace accl::adapt
