// QueryPatternTracker — lock-cheap per-dimension interval histograms of
// the observed workload, the input signal of the adaptive routing
// subsystem (see api/adaptive_routing.h for the subsystem overview).
//
// Two distributions are tracked, per dimension, over the normalized [0,1]
// domain: where event intervals lie and where subscription intervals lie —
// each as a pair of fixed-width endpoint histograms (lower endpoints,
// upper endpoints). The pair is enough to answer, at bin resolution, the
// two questions routing cares about: how many intervals *cross* a
// candidate fence f (count(lo < f) - count(hi < f)) and where the interval
// mass sits (for equal-mass fence placement) — without retaining a single
// sample.
//
// Concurrency discipline (the PR 8 stats-path pattern): hot paths fold
// samples into a caller-local PatternAccumulator off every lock, then
// merge it into the tracker with ONE mutex acquisition per batch. The
// tracker's mutex is therefore held O(dims) per MatchBatch, never O(events).
//
// Windowing: the histograms form a small ring of generations. The advisor
// rotates the ring once per evaluation window (AdvanceWindow), dropping
// the oldest generation; Snapshot() sums the ring. Observations therefore
// age out after kGenerations windows — the analyzer sees a sliding window
// of recent traffic, not the lifetime average, which is what lets the
// engine *re*-adapt when the workload shifts again.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "api/types.h"
#include "geometry/box.h"

namespace accl::adapt {

/// Histogram resolution over [0,1]. 64 bins puts candidate fences at
/// ~0.016 granularity — far finer than the rebalancer needs to refine
/// from — while keeping a full per-dimension pattern at 1KiB.
inline constexpr size_t kPatternBins = 64;

/// Bin of a normalized coordinate (clamped: out-of-domain coordinates
/// land in the edge bins, matching SliceOf's clamping behavior).
inline size_t PatternBinOf(float x) {
  if (!(x > 0.0f)) return 0;  // also catches NaN deterministically
  if (x >= 1.0f) return kPatternBins - 1;
  return static_cast<size_t>(x * static_cast<float>(kPatternBins));
}

/// Endpoint histograms of one dimension's interval distribution.
struct DimPattern {
  std::array<uint64_t, kPatternBins> lo{};  ///< lower-endpoint bin counts
  std::array<uint64_t, kPatternBins> hi{};  ///< upper-endpoint bin counts

  void Merge(const DimPattern& o) {
    for (size_t b = 0; b < kPatternBins; ++b) {
      lo[b] += o.lo[b];
      hi[b] += o.hi[b];
    }
  }
  void Clear() {
    lo.fill(0);
    hi.fill(0);
  }
};

/// One generation (or the summed snapshot) of the tracked workload.
struct PatternSnapshot {
  uint64_t events = 0;
  uint64_t subscriptions = 0;
  std::vector<DimPattern> event_dims;  ///< size nd
  std::vector<DimPattern> sub_dims;    ///< size nd

  void Reset(Dim nd) {
    events = 0;
    subscriptions = 0;
    event_dims.resize(nd);
    sub_dims.resize(nd);
    for (auto& d : event_dims) d.Clear();
    for (auto& d : sub_dims) d.Clear();
  }
  void Merge(const PatternSnapshot& o) {
    events += o.events;
    subscriptions += o.subscriptions;
    for (size_t d = 0; d < event_dims.size(); ++d) {
      event_dims[d].Merge(o.event_dims[d]);
      sub_dims[d].Merge(o.sub_dims[d]);
    }
  }
};

/// Caller-local fold buffer: sample boxes off-lock, merge once.
/// Reset is capacity-preserving (the engine pools accumulators inside its
/// pipeline scratch, so steady-state batches allocate nothing).
class PatternAccumulator {
 public:
  void Reset(Dim nd) { data_.Reset(nd); }

  void AddEvent(const Box& b) {
    ++data_.events;
    AddBox(b, &data_.event_dims);
  }
  void AddSubscription(const Box& b) {
    ++data_.subscriptions;
    AddBox(b, &data_.sub_dims);
  }
  void AddSubscription(BoxView b) {
    ++data_.subscriptions;
    AddBox(b, &data_.sub_dims);
  }

  const PatternSnapshot& data() const { return data_; }
  bool empty() const { return data_.events == 0 && data_.subscriptions == 0; }

 private:
  template <typename B>
  void AddBox(const B& b, std::vector<DimPattern>* dims) {
    const size_t nd = dims->size();
    for (size_t d = 0; d < nd; ++d) {
      DimPattern& p = (*dims)[d];
      ++p.lo[PatternBinOf(b.lo(static_cast<Dim>(d)))];
      ++p.hi[PatternBinOf(b.hi(static_cast<Dim>(d)))];
    }
  }

  PatternSnapshot data_;
};

/// The shared tracker. All methods are thread-safe; the intended usage is
/// accumulator-fold-then-Record from hot paths and Snapshot/AdvanceWindow
/// from the advisor (under the engine's rebalance lock).
class QueryPatternTracker {
 public:
  /// Generations in the sliding window. The advisor rotates once per
  /// evaluation window, so observations persist for 4 windows.
  static constexpr size_t kGenerations = 4;

  explicit QueryPatternTracker(Dim nd);

  /// Merges a folded accumulator into the current generation (one lock).
  void Record(const PatternAccumulator& acc);

  /// Single-sample conveniences for unbatched paths (one lock each; the
  /// single-event Match path and single Subscribe pay one uncontended
  /// mutex acquisition per call when tracking is enabled).
  void RecordEvent(const Box& b);
  void RecordSubscription(const Box& b);

  /// Sum of all live generations.
  PatternSnapshot Snapshot() const;

  /// Rotates the ring: the oldest generation is cleared and becomes the
  /// new current one.
  void AdvanceWindow();

  /// Clears every generation (after a routing change: the old dimension's
  /// pattern argued for the switch and must not immediately argue again).
  void ResetWindow();

  /// Lifetime sample counters (never reset; observability).
  uint64_t events_observed() const {
    return events_observed_.load(std::memory_order_relaxed);
  }
  uint64_t subscriptions_observed() const {
    return subscriptions_observed_.load(std::memory_order_relaxed);
  }

 private:
  const Dim nd_;
  mutable std::mutex mu_;
  std::array<PatternSnapshot, kGenerations> ring_;  ///< guarded by mu_
  size_t current_ = 0;                              ///< guarded by mu_
  std::atomic<uint64_t> events_observed_{0};
  std::atomic<uint64_t> subscriptions_observed_{0};
};

}  // namespace accl::adapt
