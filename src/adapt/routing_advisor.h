// RoutingAdvisor — the decision layer of adaptive routing: each
// observation window it compares the SelectivityAnalyzer's per-dimension
// estimates and emits at most ONE routing change for the engine to apply
// through its migration machinery.
//
// Policy, in priority order:
//   1. Dimension switch: if the best candidate dimension's predicted score
//      beats the current fence dimension's by >= switch_threshold, switch.
//      A switch resets the split-patience streak (the new fences change
//      who straddles).
//   2. Overflow split: if no switch fires, the current dimension is
//      (near-)optimal, and straddler pressure — observed overflow
//      residency plus the rebalance planner's predicted spill, over total
//      subscriptions — has stayed >= split_straddler_threshold for
//      split_patience consecutive windows, split the overflow shard on a
//      second dimension. The split dimension is the pinned opts.split_dim,
//      or the best-scoring dimension other than the fence dimension.
//
// The advisor is sequential state (streak counters) driven from exactly
// one call site, the engine's adapt evaluation under rebalance_mu_ — it
// needs and has no internal locking. Decisions are pure functions of the
// snapshot + state handed in, keeping fuzz replays deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "adapt/pattern_tracker.h"
#include "api/adaptive_routing.h"
#include "api/types.h"

namespace accl::adapt {

/// Engine-side facts the advisor needs for one evaluation.
struct AdvisorState {
  uint32_t current_dim = 0;      ///< fence dimension of the live snapshot
  bool split_active = false;     ///< overflow split already in effect
  uint32_t range_slices = 0;     ///< R: range slices under the fences
  uint32_t split_slices = 0;     ///< S: sub-shards available for a split
  /// Observed straddlers: residents of the overflow shard(s) right now.
  uint64_t overflow_residents = 0;
  /// The rebalance planner's most recent predicted_straddler_spill — subs
  /// it wanted to move but predicted would straddle the new fences.
  uint64_t planner_predicted_spill = 0;
  uint64_t total_subscriptions = 0;
};

/// One evaluated window's outcome.
struct RoutingDecision {
  enum class Kind : uint8_t {
    kNone = 0,          ///< keep routing as is
    kSwitchDimension,   ///< re-fence on `dim` with `fences`
    kSplitOverflow,     ///< split the overflow shard on `dim` with `fences`
  };
  Kind kind = Kind::kNone;
  uint32_t dim = 0;
  std::vector<float> fences;
  /// Analyzer output this decision was based on (one entry per dimension),
  /// surfaced in AdaptiveRoutingStats::last_estimates.
  std::vector<DimensionEstimate> estimates;
};

class RoutingAdvisor {
 public:
  RoutingAdvisor(const AdaptiveRoutingOptions& opts, Dim nd)
      : opts_(opts), nd_(nd) {}

  /// Evaluates one window. Not thread-safe: single caller, engine-locked.
  RoutingDecision Evaluate(const PatternSnapshot& pattern,
                           const AdvisorState& state);

  /// Consecutive windows at or above the straddler threshold so far.
  uint32_t straddle_streak() const { return straddle_streak_; }

 private:
  const AdaptiveRoutingOptions opts_;
  const Dim nd_;
  uint32_t straddle_streak_ = 0;
};

}  // namespace accl::adapt
