// Query workload generation with controlled selectivity.
//
// The paper enforces minimal/maximal query interval sizes to control the
// query selectivity (§7.2). The exact mapping from interval size to
// selectivity depends on the data distribution, so we *calibrate*: a binary
// search over the per-dimension query extent, measuring achieved selectivity
// against a sample of the dataset, until the target is met within tolerance.
// This reproduces the paper's experimental control measurably rather than by
// an unstated closed form.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/query.h"
#include "workload/dataset.h"

namespace accl {

/// A batch of queries plus the selectivity actually achieved on a sample.
struct QueryWorkload {
  std::vector<Query> queries;
  double target_selectivity = 0.0;
  double achieved_selectivity = 0.0;
  /// Per-dimension query extent used.
  double extent = 0.0;
};

/// Parameters for query generation.
struct QueryGenSpec {
  Relation rel = Relation::kIntersects;
  size_t count = 1000;
  uint64_t seed = 7;
  /// Target fraction of the database matched per query (e.g. 5e-4 = 0.05 %).
  double target_selectivity = 5e-4;
  /// Binary-search iterations for calibration.
  int calibration_steps = 24;
  /// Objects sampled from the dataset during calibration (capped at size).
  size_t calibration_sample = 4096;
  /// Queries generated per calibration probe.
  size_t calibration_queries = 48;
};

/// Generates uniformly positioned query boxes with a fixed per-dimension
/// extent. Exposed for tests and for workloads that want explicit extents
/// (the skewed experiment uses unconstrained query intervals).
std::vector<Query> GenerateQueriesWithExtent(Dim nd, Relation rel,
                                             size_t count, double extent,
                                             uint64_t seed);

/// Generates queries whose interval sizes are uniform in [0,1] ("no interval
/// constraints" — the paper's skewed-experiment queries).
std::vector<Query> GenerateUnconstrainedQueries(Dim nd, Relation rel,
                                                size_t count, uint64_t seed);

/// Generates point-enclosing queries (uniform points).
std::vector<Query> GeneratePointQueries(Dim nd, size_t count, uint64_t seed);

/// Calibrates the per-dimension extent against `data` to achieve
/// `spec.target_selectivity`, then generates `spec.count` queries.
QueryWorkload GenerateCalibrated(const Dataset& data, const QueryGenSpec& spec);

/// Measures the average fraction of `data` (sampled up to `sample_cap`
/// objects) matched by `queries`.
double MeasureSelectivity(const Dataset& data,
                          const std::vector<Query>& queries,
                          size_t sample_cap = 4096);

}  // namespace accl
