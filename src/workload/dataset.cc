#include "workload/dataset.h"

#include "util/check.h"

namespace accl {

void Dataset::Append(ObjectId id, BoxView b) {
  ACCL_CHECK(b.dims() == nd);
  ids.push_back(id);
  coords.insert(coords.end(), b.data(),
                b.data() + 2 * static_cast<size_t>(nd));
}

}  // namespace accl
