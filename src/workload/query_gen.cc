#include "workload/query_gen.h"

#include <algorithm>
#include <cmath>

#include "geometry/predicates.h"
#include "util/check.h"
#include "util/rng.h"

namespace accl {

namespace {

Query MakeBoxQuery(Rng& rng, Dim nd, Relation rel, double extent) {
  Box b(nd);
  for (Dim d = 0; d < nd; ++d) {
    const float len = static_cast<float>(std::min(extent, 1.0));
    const float start = (1.0f - len) * rng.NextFloat();
    b.set(d, start, std::min(start + len, kDomainMax));
  }
  return Query(std::move(b), rel);
}

}  // namespace

std::vector<Query> GenerateQueriesWithExtent(Dim nd, Relation rel,
                                             size_t count, double extent,
                                             uint64_t seed) {
  std::vector<Query> qs;
  qs.reserve(count);
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    qs.push_back(MakeBoxQuery(rng, nd, rel, extent));
  }
  return qs;
}

std::vector<Query> GenerateUnconstrainedQueries(Dim nd, Relation rel,
                                                size_t count, uint64_t seed) {
  std::vector<Query> qs;
  qs.reserve(count);
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    Box b(nd);
    for (Dim d = 0; d < nd; ++d) {
      float a = rng.NextFloat();
      float c = rng.NextFloat();
      if (a > c) std::swap(a, c);
      b.set(d, a, c);
    }
    qs.emplace_back(std::move(b), rel);
  }
  return qs;
}

std::vector<Query> GeneratePointQueries(Dim nd, size_t count, uint64_t seed) {
  std::vector<Query> qs;
  qs.reserve(count);
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    Box b(nd);
    for (Dim d = 0; d < nd; ++d) {
      float x = rng.NextFloat();
      b.set(d, x, x);
    }
    qs.emplace_back(std::move(b), Relation::kEncloses);
  }
  return qs;
}

double MeasureSelectivity(const Dataset& data,
                          const std::vector<Query>& queries,
                          size_t sample_cap) {
  if (data.size() == 0 || queries.empty()) return 0.0;
  const size_t n = data.size();
  const size_t sample = std::min(sample_cap, n);
  // Deterministic stride sampling keeps calibration reproducible.
  const size_t stride = std::max<size_t>(1, n / sample);
  uint64_t checked = 0, matched = 0;
  for (const Query& q : queries) {
    for (size_t i = 0; i < n; i += stride) {
      ++checked;
      if (q.Matches(data.box(i))) ++matched;
    }
  }
  return static_cast<double>(matched) / static_cast<double>(checked);
}

QueryWorkload GenerateCalibrated(const Dataset& data,
                                 const QueryGenSpec& spec) {
  ACCL_CHECK(data.nd > 0);
  QueryWorkload wl;
  wl.target_selectivity = spec.target_selectivity;

  // Selectivity is monotone in the query extent: increasing for
  // intersection and containment (bigger query window matches more), and
  // decreasing for enclosure (fewer objects enclose a bigger query).
  const bool increasing = spec.rel != Relation::kEncloses;
  double lo = 0.0, hi = 1.0;
  double extent = 0.5;
  for (int step = 0; step < spec.calibration_steps; ++step) {
    extent = 0.5 * (lo + hi);
    auto probe =
        GenerateQueriesWithExtent(data.nd, spec.rel, spec.calibration_queries,
                                  extent, spec.seed ^ 0xC0FFEEull);
    double sel = MeasureSelectivity(data, probe, spec.calibration_sample);
    const bool need_bigger_sel = sel < spec.target_selectivity;
    if (need_bigger_sel == increasing) {
      lo = extent;
    } else {
      hi = extent;
    }
  }
  extent = 0.5 * (lo + hi);

  wl.extent = extent;
  wl.queries = GenerateQueriesWithExtent(data.nd, spec.rel, spec.count,
                                         extent, spec.seed);
  wl.achieved_selectivity =
      MeasureSelectivity(data, wl.queries, spec.calibration_sample);
  return wl;
}

}  // namespace accl
