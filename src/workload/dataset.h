// Flat in-memory collection of multidimensional extended objects used to
// drive the experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "api/types.h"
#include "geometry/box.h"

namespace accl {

/// A generated database: ids plus flat coordinates (stride 2*nd).
struct Dataset {
  Dim nd = 0;
  std::vector<ObjectId> ids;
  std::vector<float> coords;

  size_t size() const { return ids.size(); }

  BoxView box(size_t i) const {
    return BoxView(coords.data() + 2 * static_cast<size_t>(nd) * i, nd);
  }

  /// Total bytes in the paper's storage layout.
  uint64_t bytes() const {
    return static_cast<uint64_t>(size()) * ObjectBytes(nd);
  }

  void Append(ObjectId id, BoxView b);
};

}  // namespace accl
