// Synthetic data generators matching the paper's §7 workloads.
//
// Uniform workload: interval sizes and positions uniformly distributed in
// every dimension.
//
// Skewed workload: "for each database object, we randomly choose a quarter of
// dimensions that are two times more selective than the rest" — i.e. for a
// random subset of dimensions the object's intervals are drawn a factor
// `selectivity_ratio` shorter.
#pragma once

#include <cstdint>

#include "workload/dataset.h"

namespace accl {

/// Parameters for the uniform workload generator.
struct UniformSpec {
  Dim nd = 16;
  size_t count = 100000;
  uint64_t seed = 1;
  /// Object extent per dimension is drawn uniformly in
  /// [min_extent, max_extent]; position uniform among placements that keep
  /// the interval inside [0,1].
  float min_extent = 0.0f;
  float max_extent = 0.25f;
};

/// Generates `spec.count` objects with ids 0..count-1.
Dataset GenerateUniform(const UniformSpec& spec);

/// Parameters for the skewed workload generator.
struct SkewedSpec {
  Dim nd = 16;
  size_t count = 100000;
  uint64_t seed = 1;
  float min_extent = 0.0f;
  float max_extent = 0.25f;
  /// Fraction of dimensions (chosen per object) that are more selective.
  double selective_fraction = 0.25;
  /// How much more selective: extents divided by this factor.
  double selectivity_ratio = 2.0;
};

/// Generates the paper's skewed dataset.
Dataset GenerateSkewed(const SkewedSpec& spec);

}  // namespace accl
