#include "workload/generators.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace accl {

namespace {

// Draws one interval with the given extent bounds; position uniform among
// in-domain placements.
inline void DrawInterval(Rng& rng, float min_extent, float max_extent,
                         float* lo, float* hi) {
  const float len =
      min_extent + (max_extent - min_extent) * rng.NextFloat();
  const float start = (1.0f - len) * rng.NextFloat();
  *lo = start;
  *hi = std::min(start + len, kDomainMax);
}

}  // namespace

Dataset GenerateUniform(const UniformSpec& spec) {
  ACCL_CHECK(spec.nd > 0);
  ACCL_CHECK(spec.min_extent >= 0.0f && spec.max_extent <= 1.0f);
  ACCL_CHECK(spec.min_extent <= spec.max_extent);
  Dataset ds;
  ds.nd = spec.nd;
  ds.ids.reserve(spec.count);
  ds.coords.reserve(spec.count * 2 * static_cast<size_t>(spec.nd));
  Rng rng(spec.seed);
  for (size_t i = 0; i < spec.count; ++i) {
    ds.ids.push_back(static_cast<ObjectId>(i));
    for (Dim d = 0; d < spec.nd; ++d) {
      float lo, hi;
      DrawInterval(rng, spec.min_extent, spec.max_extent, &lo, &hi);
      ds.coords.push_back(lo);
      ds.coords.push_back(hi);
    }
  }
  return ds;
}

Dataset GenerateSkewed(const SkewedSpec& spec) {
  ACCL_CHECK(spec.nd > 0);
  ACCL_CHECK(spec.selective_fraction >= 0.0 && spec.selective_fraction <= 1.0);
  ACCL_CHECK(spec.selectivity_ratio >= 1.0);
  Dataset ds;
  ds.nd = spec.nd;
  ds.ids.reserve(spec.count);
  ds.coords.reserve(spec.count * 2 * static_cast<size_t>(spec.nd));
  Rng rng(spec.seed);
  const size_t n_selective = static_cast<size_t>(
      static_cast<double>(spec.nd) * spec.selective_fraction + 0.5);
  std::vector<Dim> dims(spec.nd);
  for (Dim d = 0; d < spec.nd; ++d) dims[d] = d;
  std::vector<bool> selective(spec.nd);
  for (size_t i = 0; i < spec.count; ++i) {
    // Fisher-Yates prefix: pick the selective subset for this object.
    for (size_t k = 0; k < n_selective; ++k) {
      size_t j = k + rng.NextBelow(dims.size() - k);
      std::swap(dims[k], dims[j]);
    }
    std::fill(selective.begin(), selective.end(), false);
    for (size_t k = 0; k < n_selective; ++k) selective[dims[k]] = true;

    ds.ids.push_back(static_cast<ObjectId>(i));
    const float ratio = static_cast<float>(1.0 / spec.selectivity_ratio);
    for (Dim d = 0; d < spec.nd; ++d) {
      float min_e = spec.min_extent;
      float max_e = spec.max_extent;
      if (selective[d]) {
        min_e *= ratio;
        max_e *= ratio;
      }
      float lo, hi;
      DrawInterval(rng, min_e, max_e, &lo, &hi);
      ds.coords.push_back(lo);
      ds.coords.push_back(hi);
    }
  }
  return ds;
}

}  // namespace accl
