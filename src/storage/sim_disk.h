// Simulated disk with the paper's SCSI characteristics.
//
// The paper's disk-scenario measurements are dominated by two charges:
// a head repositioning (random access) per explored cluster/node, and a
// sequential transfer of the group's bytes. We do not own the 2004 testbed,
// so the disk is a virtual clock that accrues exactly those charges
// (DESIGN.md, substitutions). Counters expose seeks and bytes so benchmarks
// can report the same "number of accesses / size of data" indicators the
// paper tabulates.
#pragma once

#include <cstdint>

namespace accl {

/// Accumulates simulated I/O time and traffic counters.
class SimDisk {
 public:
  /// `access_ms`: head positioning time per random access.
  /// `ms_per_byte`: inverse sequential transfer rate.
  SimDisk(double access_ms, double ms_per_byte)
      : access_ms_(access_ms), ms_per_byte_(ms_per_byte) {}

  /// Paper Table 2 device: 15 ms access, 20 MB/s transfer.
  static SimDisk Paper() {
    return SimDisk(15.0, 1000.0 / (20.0 * 1024 * 1024));
  }

  /// Charges one random head repositioning.
  void Seek() {
    ++seeks_;
    clock_ms_ += access_ms_;
  }

  /// Charges a sequential transfer of `n` bytes.
  void Transfer(uint64_t n) {
    bytes_ += n;
    clock_ms_ += ms_per_byte_ * static_cast<double>(n);
  }

  /// Charges a full sequential read: one seek then `n` bytes.
  void SequentialRead(uint64_t n) {
    Seek();
    Transfer(n);
  }

  // ---- File-lifecycle charges (segment rotation and GC) ----
  // Creating, unlinking or renaming a segment file is a directory update:
  // one head repositioning each. The WAL consults NextOpFails() before the
  // operation, so FailAfter drives faults through rotation and segment GC
  // exactly like it does through flushes and checkpoint writes.

  /// Charges one file creation (a fresh WAL segment).
  void NoteCreate() {
    ++file_creates_;
    Seek();
  }

  /// Charges one file unlink (a truncated segment dropped from disk).
  void NoteUnlink() {
    ++file_unlinks_;
    Seek();
  }

  /// Charges one file rename (a truncated segment recycled into the
  /// spare pool, or a spare renamed back into the live chain).
  void NoteRename() {
    ++file_renames_;
    Seek();
  }

  double clock_ms() const { return clock_ms_; }
  uint64_t seeks() const { return seeks_; }
  uint64_t bytes() const { return bytes_; }
  double access_ms() const { return access_ms_; }
  double ms_per_byte() const { return ms_per_byte_; }

  void Reset() {
    clock_ms_ = 0;
    seeks_ = 0;
    bytes_ = 0;
  }

  // ---- Fault injection (failure-path tests) ----
  // The simulated device can be armed to start failing, letting storage
  // tests drive every error path deterministically: ClusterFileStore asks
  // NextOpFails() before each logical I/O and propagates the failure
  // exactly as a real short write/read would surface.

  /// Arms the device: the next `ops` I/O operations succeed, everything
  /// after fails until DisarmFaults().
  void FailAfter(uint64_t ops) {
    fail_armed_ = true;
    ops_until_fail_ = ops;
  }

  void DisarmFaults() { fail_armed_ = false; }

  /// Consumes one operation; true when the armed fault fires.
  bool NextOpFails() {
    ++io_ops_;
    if (!fail_armed_) return false;
    if (ops_until_fail_ == 0) {
      ++faults_injected_;
      return true;
    }
    --ops_until_fail_;
    return false;
  }

  uint64_t faults_injected() const { return faults_injected_; }

  uint64_t file_creates() const { return file_creates_; }
  uint64_t file_unlinks() const { return file_unlinks_; }
  uint64_t file_renames() const { return file_renames_; }

  /// Lifetime NextOpFails consultations (armed or not). A fault-free dry
  /// run's count is the size of the crash-point matrix: arming
  /// FailAfter(k) for every k < io_ops() drives the fault through every
  /// logical I/O operation the workload performs.
  uint64_t io_ops() const { return io_ops_; }

 private:
  double access_ms_;
  double ms_per_byte_;
  double clock_ms_ = 0.0;
  uint64_t seeks_ = 0;
  uint64_t bytes_ = 0;
  bool fail_armed_ = false;
  uint64_t ops_until_fail_ = 0;
  uint64_t faults_injected_ = 0;
  uint64_t io_ops_ = 0;
  uint64_t file_creates_ = 0;
  uint64_t file_unlinks_ = 0;
  uint64_t file_renames_ = 0;
};

}  // namespace accl
