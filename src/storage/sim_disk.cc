#include "storage/sim_disk.h"

// Header-only today; this translation unit anchors the target and keeps the
// door open for out-of-line additions (e.g. trace recording).
