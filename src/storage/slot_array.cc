#include "storage/slot_array.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace accl {

SlotArray::SlotArray(Dim nd, double reserve_fraction)
    : nd_(nd), reserve_fraction_(reserve_fraction) {
  ACCL_CHECK(nd > 0);
  ACCL_CHECK(reserve_fraction >= 0.0 && reserve_fraction < 1.0);
}

double SlotArray::utilization() const {
  if (capacity_ == 0) return 1.0;
  return static_cast<double>(size()) / static_cast<double>(capacity_);
}

void SlotArray::Relocate(size_t need) {
  // Fresh reserve on every relocation: capacity = need * (1 + reserve),
  // with a small floor so tiny clusters do not relocate constantly.
  size_t cap = static_cast<size_t>(
      std::ceil(static_cast<double>(need) * (1.0 + reserve_fraction_)));
  cap = std::max<size_t>(cap, 8);
  if (cap == capacity_) return;
  capacity_ = cap;
  ids_.reserve(capacity_);
  coords_.reserve(capacity_ * 2 * static_cast<size_t>(nd_));
  if (!ids_.empty()) ++relocations_;
}

void SlotArray::Append(ObjectId id, const float* coords) {
  if (size() + 1 > capacity_) Relocate(size() + 1);
  ids_.push_back(id);
  coords_.insert(coords_.end(), coords, coords + 2 * static_cast<size_t>(nd_));
}

ObjectId SlotArray::RemoveAt(size_t i) {
  ACCL_CHECK(i < size());
  const size_t last = size() - 1;
  const size_t stride = 2 * static_cast<size_t>(nd_);
  ObjectId moved = kInvalidObject;
  if (i != last) {
    ids_[i] = ids_[last];
    std::memcpy(coords_.data() + i * stride, coords_.data() + last * stride,
                stride * sizeof(float));
    moved = ids_[i];
  }
  ids_.pop_back();
  coords_.resize(coords_.size() - stride);
  return moved;
}

size_t SlotArray::Find(ObjectId id) const {
  auto it = std::find(ids_.begin(), ids_.end(), id);
  return it == ids_.end() ? static_cast<size_t>(-1)
                          : static_cast<size_t>(it - ids_.begin());
}

void SlotArray::Clear() {
  ids_.clear();
  coords_.clear();
}

void SlotArray::Compact() {
  size_t cap = static_cast<size_t>(
      std::ceil(static_cast<double>(size()) * (1.0 + reserve_fraction_)));
  cap = std::max<size_t>(cap, 8);
  capacity_ = cap;
  ids_.shrink_to_fit();
  coords_.shrink_to_fit();
  ids_.reserve(capacity_);
  coords_.reserve(capacity_ * 2 * static_cast<size_t>(nd_));
}

}  // namespace accl
