// File-backed paged cluster storage (paper §6 made concrete).
//
// Each cluster's members are stored *sequentially* in a run of contiguous
// fixed-size pages so that exploring a cluster is one head positioning plus
// one sequential transfer. Reserve places (20-30 %) are allocated with each
// run so insertions rarely relocate the cluster; a relocation allocates a
// fresh run with fresh reserve. A one-block directory at a fixed location
// records every cluster's (signature location, first page, page count,
// object count) so the structure survives crashes: reopening the file and
// reading the directory restores the whole layout (statistics are
// regathered, as §6 allows).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/types.h"
#include "core/adaptive_index.h"
#include "storage/sim_disk.h"

namespace accl {

/// A run-allocating page file over a real OS file.
class PagedFile {
 public:
  ~PagedFile();
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Creates (truncating) or opens a page file. Returns nullptr on I/O
  /// error or, when opening, on a page-size mismatch with the stored
  /// header.
  static std::unique_ptr<PagedFile> Create(const std::string& path,
                                           uint32_t page_bytes);
  static std::unique_ptr<PagedFile> Open(const std::string& path);

  uint32_t page_bytes() const { return page_bytes_; }
  uint64_t page_count() const { return page_count_; }
  /// Pages currently allocated to runs.
  uint64_t pages_in_use() const { return pages_in_use_; }

  /// Allocates a contiguous run of `n` pages (first-fit over freed runs,
  /// else file growth). Returns the first page index.
  uint64_t AllocateRun(uint64_t n);

  /// Returns a run to the free pool.
  void FreeRun(uint64_t first_page, uint64_t n);

  /// Reads/writes `len` bytes at byte offset `off` within the run starting
  /// at `first_page`. Returns false on I/O failure or out-of-run access.
  bool ReadAt(uint64_t first_page, uint64_t off, void* out, uint64_t len);
  bool WriteAt(uint64_t first_page, uint64_t off, const void* data,
               uint64_t len);

  /// Flushes OS buffers.
  bool Sync();

  /// Records the directory run in the file header (one-block directory
  /// pointer, paper §6). Persists the header immediately.
  bool SetDirectory(uint64_t first, uint64_t pages, uint64_t bytes);

  /// Reads the directory pointer; false when none was ever saved.
  bool GetDirectory(uint64_t* first, uint64_t* pages, uint64_t* bytes) const;

  /// Marks a run as live while loading a directory (all pages start free
  /// after Open). False when the run is not entirely free.
  bool MarkAllocated(uint64_t first, uint64_t n);

  // ---- Append-stream support (write-ahead logging) ----
  // A file can alternatively be used as one logical byte stream over the
  // payload pages: absolute byte offsets, file growth on demand, and a
  // durable *start* pointer in the header recording how far the stream has
  // been truncated from the front. The stream's tail is deliberately NOT
  // persisted — the owner (durability::WriteAheadLog) finds it by scanning
  // its checksum-framed records, so appends need no header write. Stream
  // and run allocation should not be mixed on one file: stream growth
  // claims pages without consulting the free-run list.

  /// Total payload bytes currently backed by the file.
  uint64_t payload_bytes() const { return page_count_ * page_bytes_; }

  /// Byte offset the stream logically starts at (0 for a fresh file).
  uint64_t stream_start() const { return stream_start_; }

  /// Persists a new stream start (front truncation). Monotone by contract;
  /// on header-write failure the previous value is kept (like
  /// SetDirectory) so the in-memory pointer always matches the durable
  /// header.
  bool SetStreamStart(uint64_t off);

  /// Writes `len` bytes at absolute payload offset `off`, growing the file
  /// (whole pages) as needed. Returns false on I/O failure.
  bool StreamWrite(uint64_t off, const void* data, uint64_t len);

  /// Reads `len` bytes at absolute payload offset `off`. False on short
  /// read or when the range exceeds the backed payload.
  bool StreamRead(uint64_t off, void* out, uint64_t len);

 private:
  PagedFile() = default;
  struct FreeRunRec {
    uint64_t first;
    uint64_t count;
  };
  bool PersistHeader();

  std::FILE* file_ = nullptr;
  uint32_t page_bytes_ = 0;
  uint64_t page_count_ = 0;   // payload pages (header excluded)
  uint64_t pages_in_use_ = 0;
  uint64_t dir_first_ = ~0ull;
  uint64_t dir_pages_ = 0;
  uint64_t dir_bytes_ = 0;
  uint64_t stream_start_ = 0;
  std::vector<FreeRunRec> free_runs_;
};

/// Cluster images laid out in a PagedFile with reserve slots + directory.
class ClusterFileStore {
 public:
  /// `reserve_fraction`: extra object places allocated per run.
  /// `disk` (optional, not owned): charged for the simulated cost of every
  /// read/write so experiments can account real layouts with the paper's
  /// device parameters.
  ClusterFileStore(std::unique_ptr<PagedFile> file, Dim nd,
                   double reserve_fraction = 0.25, SimDisk* disk = nullptr);

  Dim dims() const { return nd_; }
  size_t cluster_count() const;
  const PagedFile& file() const { return *file_; }

  /// Writes (or rewrites) a cluster. Relocates to a fresh run when the
  /// object count exceeds the reserved places. Returns false on I/O error.
  bool Put(const ClusterImage& image);

  /// Appends one object to a stored cluster, using a reserved place when
  /// available and relocating otherwise.
  bool Append(ClusterId id, ObjectId oid, const float* coords);

  /// Reads a cluster back (signature + members). False when unknown/corrupt.
  bool Get(ClusterId id, ClusterImage* out);

  /// Drops a cluster, freeing its run.
  bool Remove(ClusterId id);

  /// Object places used / allocated across all runs (>= ~70 % by §6).
  double utilization() const;

  /// Persists the directory block + all signatures; call before close.
  bool SaveDirectory();

  /// Restores a store from an existing file's directory.
  static std::unique_ptr<ClusterFileStore> Load(
      std::unique_ptr<PagedFile> file, SimDisk* disk = nullptr);

  /// Stores every cluster of an index; convenience for checkpointing.
  bool PutAll(const AdaptiveIndex& index);

  /// Reads all clusters back as images (for AdaptiveIndex::FromImages).
  bool GetAll(std::vector<ClusterImage>* out);

  uint64_t relocations() const { return relocations_; }

 private:
  struct Entry {
    ClusterId id;
    ClusterId parent;
    Signature sig;
    uint64_t first_page;
    uint64_t pages;
    uint64_t objects;   // live objects
    uint64_t capacity;  // object places in the run
  };

  uint64_t RunBytes(uint64_t capacity) const;
  uint64_t RunPages(uint64_t capacity) const;
  bool WriteObjects(const Entry& e, size_t first_slot,
                    const ObjectId* ids, const float* coords, size_t n);
  Entry* Find(ClusterId id);

  std::unique_ptr<PagedFile> file_;
  Dim nd_;
  double reserve_fraction_;
  SimDisk* disk_;
  std::vector<Entry> entries_;
  uint64_t relocations_ = 0;
};

}  // namespace accl
