// Sequential per-cluster object storage with reserved slots (paper §6,
// "Storage Utilization").
//
// Each cluster's members are stored contiguously (ids in one array, interval
// limits flat in another) to maximize data locality — in memory this exploits
// cache lines and read-ahead; on disk it enables one sequential transfer per
// cluster. To avoid relocating a cluster on every insertion, 20-30 % extra
// places are reserved whenever the array is (re)located, which bounds storage
// utilization below by roughly 1/(1+reserve) >= 70 %.
#pragma once

#include <cstdint>
#include <vector>

#include "api/types.h"
#include "geometry/box.h"
#include "util/check.h"

namespace accl {

/// Flat array of (id, hyper-rectangle) records with a reserve policy.
class SlotArray {
 public:
  /// `reserve_fraction` in [0,1): extra capacity allocated on relocation.
  SlotArray(Dim nd, double reserve_fraction = 0.25);

  Dim dims() const { return nd_; }
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Allocated places (size + free reserved places).
  size_t capacity() const { return capacity_; }

  /// size / capacity; 1.0 for an empty array.
  double utilization() const;

  /// Times the whole array had to be relocated because the reserve ran out.
  uint64_t relocations() const { return relocations_; }

  /// Bytes of live object data (paper layout: 4-byte id + 8 bytes/dim).
  uint64_t live_bytes() const {
    return static_cast<uint64_t>(size()) * ObjectBytes(nd_);
  }

  ObjectId id(size_t i) const { return ids_[i]; }
  BoxView box(size_t i) const {
    return BoxView(coords_.data() + 2 * static_cast<size_t>(nd_) * i, nd_);
  }
  const float* coords_data() const { return coords_.data(); }
  const std::vector<ObjectId>& ids() const { return ids_; }

  /// Appends one record; relocates (with fresh reserve) when full.
  void Append(ObjectId id, const float* coords);
  void Append(ObjectId id, BoxView b) { Append(id, b.data()); }

  /// Swap-removes slot `i`. Returns the id that now occupies slot `i`
  /// (kInvalidObject if `i` was the last slot).
  ObjectId RemoveAt(size_t i);

  /// Linear search for `id`; returns its slot or SIZE_MAX.
  size_t Find(ObjectId id) const;

  /// Drops everything (capacity retained).
  void Clear();

  /// Re-applies the reserve policy: shrinks capacity to
  /// ceil(size * (1 + reserve)). Used after bulk moves so utilization
  /// bounds hold again.
  void Compact();

 private:
  void Relocate(size_t need);

  Dim nd_;
  double reserve_fraction_;
  size_t capacity_ = 0;
  uint64_t relocations_ = 0;
  std::vector<ObjectId> ids_;
  std::vector<float> coords_;  // stride 2*nd_
};

}  // namespace accl
