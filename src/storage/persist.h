// Fail recovery for the disk-based scenario (paper §6).
//
// Cluster signatures are stored together with the member objects, and a
// one-block directory indicates the position of each cluster in the file.
// Performance indicators are NOT persisted — as the paper notes, fresh
// statistics can be gathered after recovery — so a loaded index has exact
// structure (signatures, hierarchy, membership) but empty statistics.
#pragma once

#include <memory>
#include <string>

#include "core/adaptive_index.h"

namespace accl {

/// On-disk image layout constants.
struct PersistFormat {
  static constexpr uint32_t kMagic = 0x4143434Cu;  // "ACCL"
  static constexpr uint32_t kVersion = 1;
};

/// Serializes the index image to `path`. Returns false on I/O failure.
bool SaveIndexImage(const AdaptiveIndex& index, const std::string& path);

/// Restores an index previously saved with SaveIndexImage. The
/// dimensionality recorded in the file must match `cfg.nd`. Returns nullptr
/// on I/O failure or corruption.
std::unique_ptr<AdaptiveIndex> LoadIndexImage(const std::string& path,
                                              const AdaptiveConfig& cfg);

}  // namespace accl
