#include "storage/paged_store.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "util/serialize.h"

namespace accl {

namespace {

constexpr uint32_t kFileMagic = 0x41434346u;  // "ACCF"
constexpr uint32_t kFileVersion = 1;
constexpr uint64_t kHeaderBytes = 4096;
constexpr uint64_t kNoDirectory = ~0ull;

struct FileHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t page_bytes;
  uint32_t pad;
  uint64_t page_count;
  uint64_t dir_first;
  uint64_t dir_pages;
  uint64_t dir_bytes;
  /// Append-stream front-truncation pointer. Files written before the
  /// field existed carry zeros in the (always 4096-byte) header block, so
  /// they read back as "stream starts at 0" — no version bump needed.
  uint64_t stream_start;
};

}  // namespace

// ---------------------------------------------------------------- PagedFile

PagedFile::~PagedFile() {
  if (file_ != nullptr) std::fclose(file_);
}

static bool WriteHeaderTo(std::FILE* f, const FileHeader& h) {
  uint8_t block[kHeaderBytes] = {};
  std::memcpy(block, &h, sizeof(h));
  if (std::fseek(f, 0, SEEK_SET) != 0) return false;
  return std::fwrite(block, 1, sizeof(block), f) == sizeof(block);
}

std::unique_ptr<PagedFile> PagedFile::Create(const std::string& path,
                                             uint32_t page_bytes) {
  if (page_bytes < 64) return nullptr;
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) return nullptr;
  FileHeader h{kFileMagic, kFileVersion, page_bytes, 0, 0,
               kNoDirectory, 0,           0,          0};
  // Flush the fresh header to the OS before handing the file out. "wb+"
  // already truncated any previous (possibly corrupt) contents, so on any
  // failure here we remove the remnant entirely: a half-created file must
  // never survive to a later Open with a stale directory block.
  if (!WriteHeaderTo(f, h) || std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(path.c_str());
    return nullptr;
  }
  auto pf = std::unique_ptr<PagedFile>(new PagedFile());
  pf->file_ = f;
  pf->page_bytes_ = page_bytes;
  return pf;
}

std::unique_ptr<PagedFile> PagedFile::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return nullptr;
  // Single close point: every validation failure lands here, so a rejected
  // open can never leak the descriptor.
  const auto reject = [f]() -> std::unique_ptr<PagedFile> {
    std::fclose(f);
    return nullptr;
  };
  FileHeader h{};
  if (std::fread(&h, sizeof(h), 1, f) != 1 || h.magic != kFileMagic ||
      h.version != kFileVersion || h.page_bytes < 64) {
    return reject();  // garbage, page-size mismatch, or short header read
  }
  // The claimed geometry must actually exist on disk; a truncated file
  // would otherwise surface as short reads deep inside directory loading.
  // Divisions, not products: a corrupt header must not be able to wrap the
  // arithmetic back into range.
  if (std::fseek(f, 0, SEEK_END) != 0) return reject();
  const long file_size = std::ftell(f);
  if (file_size < 0 || static_cast<uint64_t>(file_size) < kHeaderBytes) {
    return reject();
  }
  const uint64_t pages_on_disk =
      (static_cast<uint64_t>(file_size) - kHeaderBytes) / h.page_bytes;
  if (h.page_count > pages_on_disk) return reject();
  // A directory pointer must lie inside the payload pages and its byte
  // length inside its run — anything else is a stale or corrupt block.
  // (dir_pages <= page_count <= file_size / page_bytes keeps the byte
  // product below the actual file size, so it cannot overflow.)
  if (h.dir_first != kNoDirectory) {
    if (h.dir_pages == 0 || h.dir_first >= h.page_count ||
        h.dir_pages > h.page_count - h.dir_first ||
        h.dir_bytes > h.dir_pages * h.page_bytes) {
      return reject();
    }
  }
  // The stream-start pointer must lie inside the backed payload (page_count
  // is already validated against the actual file size above).
  if (h.stream_start > h.page_count * h.page_bytes) return reject();
  auto pf = std::unique_ptr<PagedFile>(new PagedFile());
  pf->file_ = f;
  pf->page_bytes_ = h.page_bytes;
  pf->page_count_ = h.page_count;
  pf->dir_first_ = h.dir_first;
  pf->dir_pages_ = h.dir_pages;
  pf->dir_bytes_ = h.dir_bytes;
  pf->stream_start_ = h.stream_start;
  // All pages start free; the directory loader re-marks live runs.
  if (h.page_count > 0) pf->free_runs_.push_back({0, h.page_count});
  return pf;
}

bool PagedFile::PersistHeader() {
  FileHeader h{kFileMagic, kFileVersion, page_bytes_, 0,          page_count_,
               dir_first_, dir_pages_,   dir_bytes_,  stream_start_};
  if (!WriteHeaderTo(file_, h)) return false;
  return std::fflush(file_) == 0;
}

bool PagedFile::SetDirectory(uint64_t first, uint64_t pages, uint64_t bytes) {
  const uint64_t prev_first = dir_first_;
  const uint64_t prev_pages = dir_pages_;
  const uint64_t prev_bytes = dir_bytes_;
  dir_first_ = first;
  dir_pages_ = pages;
  dir_bytes_ = bytes;
  if (PersistHeader()) return true;
  // Keep the in-memory pointer agreeing with the last durable header, so a
  // retried SaveDirectory frees the run the header really references.
  dir_first_ = prev_first;
  dir_pages_ = prev_pages;
  dir_bytes_ = prev_bytes;
  return false;
}

bool PagedFile::GetDirectory(uint64_t* first, uint64_t* pages,
                             uint64_t* bytes) const {
  if (dir_first_ == kNoDirectory) return false;
  *first = dir_first_;
  *pages = dir_pages_;
  *bytes = dir_bytes_;
  return true;
}

bool PagedFile::MarkAllocated(uint64_t first, uint64_t n) {
  if (n == 0) return true;
  for (size_t i = 0; i < free_runs_.size(); ++i) {
    FreeRunRec& r = free_runs_[i];
    if (first >= r.first && first + n <= r.first + r.count) {
      const FreeRunRec before{r.first, first - r.first};
      const FreeRunRec after{first + n, r.first + r.count - (first + n)};
      free_runs_.erase(free_runs_.begin() + static_cast<long>(i));
      if (after.count > 0) free_runs_.insert(free_runs_.begin() + i, after);
      if (before.count > 0) free_runs_.insert(free_runs_.begin() + i, before);
      pages_in_use_ += n;
      return true;
    }
  }
  return false;  // overlaps a live run or exceeds the file
}

uint64_t PagedFile::AllocateRun(uint64_t n) {
  ACCL_CHECK(n > 0);
  // First fit over freed runs.
  for (size_t i = 0; i < free_runs_.size(); ++i) {
    if (free_runs_[i].count >= n) {
      const uint64_t first = free_runs_[i].first;
      free_runs_[i].first += n;
      free_runs_[i].count -= n;
      if (free_runs_[i].count == 0) {
        free_runs_.erase(free_runs_.begin() + static_cast<long>(i));
      }
      pages_in_use_ += n;
      return first;
    }
  }
  const uint64_t first = page_count_;
  page_count_ += n;
  pages_in_use_ += n;
  // Extend the file so reads of fresh pages succeed.
  const uint64_t new_size = kHeaderBytes + page_count_ * page_bytes_;
  ACCL_CHECK(ftruncate(fileno(file_), static_cast<off_t>(new_size)) == 0);
  return first;
}

void PagedFile::FreeRun(uint64_t first_page, uint64_t n) {
  if (n == 0) return;
  ACCL_CHECK(first_page + n <= page_count_);
  ACCL_CHECK(pages_in_use_ >= n);
  pages_in_use_ -= n;
  free_runs_.push_back({first_page, n});
  // Coalesce neighbours to limit fragmentation.
  std::sort(free_runs_.begin(), free_runs_.end(),
            [](const FreeRunRec& a, const FreeRunRec& b) {
              return a.first < b.first;
            });
  std::vector<FreeRunRec> merged;
  for (const FreeRunRec& r : free_runs_) {
    if (!merged.empty() &&
        merged.back().first + merged.back().count == r.first) {
      merged.back().count += r.count;
    } else {
      merged.push_back(r);
    }
  }
  free_runs_.swap(merged);
}

bool PagedFile::ReadAt(uint64_t first_page, uint64_t off, void* out,
                       uint64_t len) {
  const uint64_t byte0 = first_page * page_bytes_ + off;
  if (byte0 + len > page_count_ * page_bytes_) return false;
  if (std::fseek(file_, static_cast<long>(kHeaderBytes + byte0), SEEK_SET) !=
      0) {
    return false;
  }
  return len == 0 || std::fread(out, 1, len, file_) == len;
}

bool PagedFile::WriteAt(uint64_t first_page, uint64_t off, const void* data,
                        uint64_t len) {
  const uint64_t byte0 = first_page * page_bytes_ + off;
  if (byte0 + len > page_count_ * page_bytes_) return false;
  if (std::fseek(file_, static_cast<long>(kHeaderBytes + byte0), SEEK_SET) !=
      0) {
    return false;
  }
  return len == 0 || std::fwrite(data, 1, len, file_) == len;
}

bool PagedFile::Sync() {
  if (std::fflush(file_) != 0) return false;
  return fsync(fileno(file_)) == 0;
}

bool PagedFile::SetStreamStart(uint64_t off) {
  if (off < stream_start_ || off > payload_bytes()) return false;
  const uint64_t prev = stream_start_;
  stream_start_ = off;
  if (PersistHeader()) return true;
  stream_start_ = prev;  // keep agreeing with the last durable header
  return false;
}

bool PagedFile::StreamWrite(uint64_t off, const void* data, uint64_t len) {
  if (off + len > payload_bytes()) {
    // Grow whole pages at the tail (at least 16 per growth to amortize the
    // header persist below). Deliberately bypasses the free-run list: a
    // stream file's space is one monotone region, and reusing an interior
    // freed run would break the "absolute offset = file position" contract.
    const uint64_t need = off + len - payload_bytes();
    const uint64_t pages =
        std::max<uint64_t>(16, (need + page_bytes_ - 1) / page_bytes_);
    page_count_ += pages;
    pages_in_use_ += pages;
    const uint64_t new_size = kHeaderBytes + page_count_ * page_bytes_;
    // Roll the in-memory geometry back on any growth failure: a later
    // successful header write must never durably record a page_count the
    // file doesn't actually back (Open would then reject the whole file).
    // The fsync between the size extension and the header write orders
    // their durability the same way: the header block is an overwrite that
    // writeback can persist independently, and a crash leaving the grown
    // page_count on disk without the grown file would also get the file
    // rejected at reopen.
    if (ftruncate(fileno(file_), static_cast<off_t>(new_size)) != 0 ||
        fsync(fileno(file_)) != 0 || !PersistHeader()) {
      page_count_ -= pages;
      pages_in_use_ -= pages;
      return false;
    }
    // The header persist also matters for recovery: a reopen derives the
    // readable payload from the header's page_count, and a stale count
    // would hide a synced tail.
  }
  return WriteAt(0, off, data, len);
}

bool PagedFile::StreamRead(uint64_t off, void* out, uint64_t len) {
  if (off + len > payload_bytes()) return false;
  return ReadAt(0, off, out, len);
}

// --------------------------------------------------------- ClusterFileStore

ClusterFileStore::ClusterFileStore(std::unique_ptr<PagedFile> file, Dim nd,
                                   double reserve_fraction, SimDisk* disk)
    : file_(std::move(file)),
      nd_(nd),
      reserve_fraction_(reserve_fraction),
      disk_(disk) {
  ACCL_CHECK(file_ != nullptr);
  ACCL_CHECK(nd_ > 0);
}

size_t ClusterFileStore::cluster_count() const { return entries_.size(); }

uint64_t ClusterFileStore::RunBytes(uint64_t capacity) const {
  // [u64 object count][capacity ids][capacity coord records]
  return 8 + capacity * (4 + 8ull * nd_);
}

uint64_t ClusterFileStore::RunPages(uint64_t capacity) const {
  const uint64_t bytes = RunBytes(capacity);
  return (bytes + file_->page_bytes() - 1) / file_->page_bytes();
}

ClusterFileStore::Entry* ClusterFileStore::Find(ClusterId id) {
  for (Entry& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

bool ClusterFileStore::WriteObjects(const Entry& e, size_t first_slot,
                                    const ObjectId* ids, const float* coords,
                                    size_t n) {
  if (n == 0) return true;
  const uint64_t ids_off = 8 + first_slot * 4ull;
  const uint64_t coords_off =
      8 + e.capacity * 4ull + first_slot * 8ull * nd_;
  if (!file_->WriteAt(e.first_page, ids_off, ids, n * 4ull)) return false;
  if (!file_->WriteAt(e.first_page, coords_off, coords, n * 8ull * nd_)) {
    return false;
  }
  if (disk_ != nullptr) {
    disk_->Seek();
    disk_->Transfer(n * (4ull + 8ull * nd_));
  }
  return true;
}

bool ClusterFileStore::Put(const ClusterImage& image) {
  if (disk_ != nullptr && disk_->NextOpFails()) return false;
  const uint64_t n = image.ids.size();
  Entry* e = Find(image.id);
  if (e != nullptr && n <= e->capacity) {
    // Rewrite in place. A failed rewrite leaves the run torn (old count
    // over a partially replaced payload — undetectable by Get's count
    // check alone), so on failure the entry is dropped and its run freed:
    // the cluster reads as missing, never as silently mixed data. Note the
    // *durable* directory may still reference the torn run until the next
    // SaveDirectory; record checksums are the ROADMAP follow-up.
    if (!file_->WriteAt(e->first_page, 0, &n, 8) ||
        !WriteObjects(*e, 0, image.ids.data(), image.coords.data(),
                      static_cast<size_t>(n))) {
      file_->FreeRun(e->first_page, e->pages);
      entries_.erase(entries_.begin() + (e - entries_.data()));
      return false;
    }
    e->sig = image.sig;
    e->objects = n;
    return true;
  }
  // Fresh run with reserve places.
  uint64_t cap = static_cast<uint64_t>(
      std::ceil(static_cast<double>(n) * (1.0 + reserve_fraction_)));
  cap = std::max<uint64_t>(cap, 8);
  const uint64_t pages = RunPages(cap);
  // Use every object place the page run can hold.
  cap = (pages * file_->page_bytes() - 8) / (4ull + 8ull * nd_);
  const uint64_t first = file_->AllocateRun(pages);
  Entry fresh;
  fresh.id = image.id;
  fresh.parent = image.parent;
  fresh.sig = image.sig;
  fresh.first_page = first;
  fresh.pages = pages;
  fresh.objects = n;
  fresh.capacity = cap;
  if (!file_->WriteAt(first, 0, &n, 8) ||
      !WriteObjects(fresh, 0, image.ids.data(), image.coords.data(),
                    static_cast<size_t>(n))) {
    // Return the half-written run to the pool: failing a relocation must
    // not leak pages (the old run, when any, stays live and untouched).
    file_->FreeRun(first, pages);
    return false;
  }
  if (e != nullptr) {
    file_->FreeRun(e->first_page, e->pages);
    ++relocations_;
    *e = fresh;
  } else {
    entries_.push_back(fresh);
  }
  return true;
}

bool ClusterFileStore::Append(ClusterId id, ObjectId oid,
                              const float* coords) {
  Entry* e = Find(id);
  if (e == nullptr) return false;
  if (disk_ != nullptr && disk_->NextOpFails()) return false;
  if (e->objects >= e->capacity) {
    // Relocate via read-modify-write with a fresh reserve.
    ClusterImage img;
    if (!Get(id, &img)) return false;
    img.ids.push_back(oid);
    img.coords.insert(img.coords.end(), coords, coords + 2 * nd_);
    return Put(img);
  }
  const size_t slot = static_cast<size_t>(e->objects);
  const uint64_t new_count = e->objects + 1;
  if (!WriteObjects(*e, slot, &oid, coords, 1)) return false;
  // Bump the in-memory count only after the on-disk count: a failed header
  // write leaves entry and disk agreeing on the old count (the orphan
  // record past it is unreachable and harmless).
  if (!file_->WriteAt(e->first_page, 0, &new_count, 8)) return false;
  e->objects = new_count;
  return true;
}

bool ClusterFileStore::Get(ClusterId id, ClusterImage* out) {
  Entry* e = Find(id);
  if (e == nullptr) return false;
  if (disk_ != nullptr && disk_->NextOpFails()) return false;
  uint64_t n = 0;
  if (!file_->ReadAt(e->first_page, 0, &n, 8)) return false;
  if (n != e->objects || n > e->capacity) return false;  // corruption
  out->id = e->id;
  out->parent = e->parent;
  out->sig = e->sig;
  out->ids.resize(n);
  out->coords.resize(n * 2 * static_cast<size_t>(nd_));
  if (n != 0) {
    if (!file_->ReadAt(e->first_page, 8, out->ids.data(), n * 4ull)) {
      return false;
    }
    if (!file_->ReadAt(e->first_page, 8 + e->capacity * 4ull,
                       out->coords.data(), n * 8ull * nd_)) {
      return false;
    }
  }
  if (disk_ != nullptr) disk_->SequentialRead(8 + n * (4ull + 8ull * nd_));
  return true;
}

bool ClusterFileStore::Remove(ClusterId id) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      file_->FreeRun(entries_[i].first_page, entries_[i].pages);
      entries_.erase(entries_.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

double ClusterFileStore::utilization() const {
  uint64_t used = 0, cap = 0;
  for (const Entry& e : entries_) {
    used += e.objects;
    cap += e.capacity;
  }
  return cap == 0 ? 1.0 : static_cast<double>(used) / static_cast<double>(cap);
}

bool ClusterFileStore::SaveDirectory() {
  ByteWriter w;
  w.PutU32(nd_);
  w.PutU32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    w.PutU32(e.id);
    w.PutU32(e.parent);
    e.sig.Serialize(&w);
    w.PutU64(e.first_page);
    w.PutU64(e.pages);
    w.PutU64(e.objects);
  }
  if (disk_ != nullptr && disk_->NextOpFails()) return false;
  // Shadow-paging order: write the new directory into a *fresh* run, flip
  // the header pointer, and only then free the old run. Freeing first would
  // let a later allocation clobber the old directory while the header still
  // points at it — a crash in that window reopens to a stale, corrupt
  // directory block.
  uint64_t old_first = 0, old_pages = 0, old_bytes = 0;
  const bool had_dir = file_->GetDirectory(&old_first, &old_pages, &old_bytes);
  const uint64_t dir_pages = std::max<uint64_t>(
      1, (w.size() + file_->page_bytes() - 1) / file_->page_bytes());
  const uint64_t dir_first = file_->AllocateRun(dir_pages);
  if (!file_->WriteAt(dir_first, 0, w.bytes().data(), w.size()) ||
      !file_->SetDirectory(dir_first, dir_pages, w.size())) {
    file_->FreeRun(dir_first, dir_pages);
    return false;
  }
  if (had_dir) file_->FreeRun(old_first, old_pages);
  return true;
}

std::unique_ptr<ClusterFileStore> ClusterFileStore::Load(
    std::unique_ptr<PagedFile> file, SimDisk* disk) {
  uint64_t dir_first = 0, dir_pages = 0, dir_bytes = 0;
  if (!file->GetDirectory(&dir_first, &dir_pages, &dir_bytes)) return nullptr;
  std::vector<uint8_t> bytes(dir_bytes);
  // The directory run itself must be marked used before reading.
  if (!file->MarkAllocated(dir_first, dir_pages)) return nullptr;
  if (!file->ReadAt(dir_first, 0, bytes.data(), dir_bytes)) return nullptr;
  ByteReader r(bytes);
  uint32_t nd = 0, count = 0;
  if (!r.GetU32(&nd) || nd == 0) return nullptr;
  if (!r.GetU32(&count)) return nullptr;
  auto store = std::make_unique<ClusterFileStore>(std::move(file), nd, 0.25,
                                                  disk);
  for (uint32_t i = 0; i < count; ++i) {
    Entry e;
    if (!r.GetU32(&e.id)) return nullptr;
    if (!r.GetU32(&e.parent)) return nullptr;
    if (!Signature::Deserialize(&r, &e.sig)) return nullptr;
    if (e.sig.dims() != nd) return nullptr;
    if (!r.GetU64(&e.first_page)) return nullptr;
    if (!r.GetU64(&e.pages)) return nullptr;
    if (!r.GetU64(&e.objects)) return nullptr;
    e.capacity = (e.pages * store->file_->page_bytes() - 8) /
                 (4ull + 8ull * nd);
    if (e.objects > e.capacity) return nullptr;
    if (!store->file_->MarkAllocated(e.first_page, e.pages)) return nullptr;
    store->entries_.push_back(std::move(e));
  }
  return store;
}

bool ClusterFileStore::PutAll(const AdaptiveIndex& index) {
  for (const ClusterImage& img : index.DumpClusters()) {
    if (!Put(img)) return false;
  }
  return true;
}

bool ClusterFileStore::GetAll(std::vector<ClusterImage>* out) {
  out->clear();
  out->reserve(entries_.size());
  for (const Entry& e : entries_) {
    ClusterImage img;
    if (!Get(e.id, &img)) return false;
    out->push_back(std::move(img));
  }
  return true;
}

}  // namespace accl
