#include "storage/persist.h"

#include "util/serialize.h"

namespace accl {

namespace {

void WriteCluster(const ClusterImage& img, ByteWriter* w) {
  w->PutU32(img.id);
  w->PutU32(img.parent);
  img.sig.Serialize(w);
  w->PutU64(img.ids.size());
  if (!img.ids.empty()) {
    w->PutBytes(img.ids.data(), img.ids.size() * sizeof(ObjectId));
    w->PutBytes(img.coords.data(), img.coords.size() * sizeof(float));
  }
}

bool ReadCluster(ByteReader* r, Dim nd, ClusterImage* img) {
  if (!r->GetU32(&img->id)) return false;
  if (!r->GetU32(&img->parent)) return false;
  if (!Signature::Deserialize(r, &img->sig)) return false;
  if (img->sig.dims() != nd) return false;
  uint64_t n = 0;
  if (!r->GetU64(&n)) return false;
  img->ids.resize(n);
  img->coords.resize(n * 2 * static_cast<size_t>(nd));
  if (n != 0) {
    if (!r->GetBytes(img->ids.data(), n * sizeof(ObjectId))) return false;
    if (!r->GetBytes(img->coords.data(), img->coords.size() * sizeof(float))) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool SaveIndexImage(const AdaptiveIndex& index, const std::string& path) {
  const std::vector<ClusterImage> images = index.DumpClusters();

  // Body: cluster records, offsets collected for the directory.
  ByteWriter body;
  std::vector<uint64_t> offsets;
  offsets.reserve(images.size());
  for (const ClusterImage& img : images) {
    offsets.push_back(body.size());
    WriteCluster(img, &body);
  }

  // Header + one-block directory + body.
  ByteWriter out;
  out.PutU32(PersistFormat::kMagic);
  out.PutU32(PersistFormat::kVersion);
  out.PutU32(index.dims());
  out.PutU32(static_cast<uint32_t>(images.size()));
  for (uint64_t off : offsets) out.PutU64(off);
  out.PutBytes(body.bytes().data(), body.size());
  return WriteFile(path, out.bytes());
}

std::unique_ptr<AdaptiveIndex> LoadIndexImage(const std::string& path,
                                              const AdaptiveConfig& cfg) {
  std::vector<uint8_t> bytes;
  if (!ReadFile(path, &bytes)) return nullptr;
  ByteReader r(bytes);
  uint32_t magic = 0, version = 0, nd = 0, count = 0;
  if (!r.GetU32(&magic) || magic != PersistFormat::kMagic) return nullptr;
  if (!r.GetU32(&version) || version != PersistFormat::kVersion) return nullptr;
  if (!r.GetU32(&nd) || nd != cfg.nd) return nullptr;
  if (!r.GetU32(&count)) return nullptr;
  // The directory is validated but navigation is sequential here; a paging
  // implementation would seek straight to the recorded offsets.
  std::vector<uint64_t> offsets(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.GetU64(&offsets[i])) return nullptr;
  }
  std::vector<ClusterImage> images(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!ReadCluster(&r, nd, &images[i])) return nullptr;
  }
  return AdaptiveIndex::FromImages(cfg, images);
}

}  // namespace accl
