#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace accl::exec {

ThreadPool::ThreadPool(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers exit only once the queue is empty, so every submitted task ran.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::SetIdleHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lk(mu_);
  idle_hook_ = std::move(hook);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (queue_.empty() && !stop_) {
        // Going idle: run the idle hook once per idle transition, outside
        // the lock (it may do real work, e.g. reclaim retired epochs).
        std::function<void()> hook = idle_hook_;
        if (hook) {
          lk.unlock();
          hook();
          lk.lock();
        }
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      }
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Per-call completion state: the pool queue is shared, so the caller may
  // execute tasks from overlapping ParallelFor calls while helping — that
  // only shortens their wait and cannot starve this one.
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto st = std::make_shared<State>();
  st->remaining = n;
  for (size_t i = 0; i < n; ++i) {
    Submit([&body, st, i] {
      body(i);
      std::lock_guard<std::mutex> lk(st->mu);
      if (--st->remaining == 0) st->cv.notify_all();
    });
  }
  while (RunOneTask()) {
  }
  std::unique_lock<std::mutex> lk(st->mu);
  st->cv.wait(lk, [&st] { return st->remaining == 0; });
}

void ThreadPool::ParallelForDynamic(size_t n,
                                    const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Chunked submission: one runner per available thread (capped at n), each
  // claiming indices from the shared cursor until the range is exhausted.
  // `body` is captured by reference — safe because this function does not
  // return until every runner has finished.
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<size_t> next{0};
    size_t live_runners = 0;
  };
  auto st = std::make_shared<State>();
  const size_t runners = std::min(n, concurrency());
  st->live_runners = runners - 1;  // the caller's inline runner isn't queued
  const auto run = [st, n, &body] {
    for (size_t i;
         (i = st->next.fetch_add(1, std::memory_order_relaxed)) < n;) {
      body(i);
    }
  };
  for (size_t r = 1; r < runners; ++r) {
    Submit([st, run] {
      run();
      std::lock_guard<std::mutex> lk(st->mu);
      if (--st->live_runners == 0) st->cv.notify_all();
    });
  }
  run();  // caller participates in the claiming loop
  // Help drain the shared queue (our runners, or overlapping calls') while
  // waiting for the queued runners to finish.
  while (RunOneTask()) {
  }
  std::unique_lock<std::mutex> lk(st->mu);
  st->cv.wait(lk, [&st] { return st->live_runners == 0; });
}

}  // namespace accl::exec
