// Per-shard work queues for routed dispatch.
//
// The sharded SDI engine used to fan *every* item to *every* shard; with
// range-routed dispatch each item names only the shards it must visit, so
// the fan-out needs a per-shard queue of item indices instead of the whole
// batch. ShardQueues builds those queues in CSR layout (one flat item
// array plus per-shard offsets) with a two-pass counting sort: routing is
// evaluated exactly once per item, queues come out in ascending item order
// (which is what keeps the shard-side execution sequence — and therefore
// the per-shard adaptation — deterministic), and a K-shard broadcast costs
// one allocation instead of K vectors.
//
// Build also records the *inverse* view: for each item, the CSR list of
// (shard, position-in-that-shard's-queue) visits. A streamed consumer that
// finalizes an item as soon as its last shard visit completes uses this to
// gather the item's per-shard slices directly, without walking any queue.
//
// All storage is member-owned and capacity-preserving: rebuilding with a
// same-shaped batch performs no allocations after the first build (part of
// the batch path's allocation-churn budget).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace accl::exec {

/// CSR-packed per-shard queues of item indices. Build once per batch, read
/// concurrently (the structure is immutable after Build).
class ShardQueues {
 public:
  /// Routes items 0..n_items-1 across n_shards queues. `route(i, &targets)`
  /// appends the target shard id(s) of item `i` (duplicates are kept —
  /// callers emit each target once). Each queue ends up in ascending item
  /// order.
  template <typename RouteFn>
  void Build(size_t n_items, size_t n_shards, RouteFn&& route) {
    Reset(n_items, n_shards);
    // Pass 1: evaluate routing once per item into a flat (offsets, targets)
    // image, counting per-shard queue lengths as we go.
    visit_shards_.clear();
    for (size_t i = 0; i < n_items; ++i) {
      route_scratch_.clear();
      route(i, &route_scratch_);
      for (const uint32_t s : route_scratch_) {
        ACCL_CHECK(s < n_shards);
        ++offsets_[s + 1];
        visit_shards_.push_back(s);
      }
      item_offsets_[i + 1] = visit_shards_.size();
    }
    // Pass 2: prefix-sum the counts into offsets, then scatter item indices
    // in item order — a stable counting sort by shard. The cursor value at
    // scatter time IS the item's position in that shard's queue, which is
    // recorded as the inverse (item -> visits) view.
    for (size_t s = 0; s < n_shards; ++s) offsets_[s + 1] += offsets_[s];
    items_.resize(visit_shards_.size());
    visit_positions_.resize(visit_shards_.size());
    cursor_.assign(offsets_.begin(), offsets_.end() - 1);
    for (size_t i = 0; i < n_items; ++i) {
      for (size_t r = item_offsets_[i]; r < item_offsets_[i + 1]; ++r) {
        const uint32_t t = visit_shards_[r];
        const size_t c = cursor_[t]++;
        items_[c] = static_cast<uint32_t>(i);
        visit_positions_[r] = static_cast<uint32_t>(c - offsets_[t]);
      }
    }
  }

  /// Every item goes to every shard (the classic broadcast fan-out).
  void BuildBroadcast(size_t n_items, size_t n_shards) {
    Reset(n_items, n_shards);
    items_.resize(n_items * n_shards);
    visit_shards_.resize(n_items * n_shards);
    visit_positions_.resize(n_items * n_shards);
    for (size_t s = 0; s < n_shards; ++s) {
      offsets_[s + 1] = offsets_[s] + n_items;
    }
    for (size_t i = 0; i < n_items; ++i) {
      item_offsets_[i + 1] = (i + 1) * n_shards;
      for (size_t s = 0; s < n_shards; ++s) {
        items_[offsets_[s] + i] = static_cast<uint32_t>(i);
        visit_shards_[i * n_shards + s] = static_cast<uint32_t>(s);
        visit_positions_[i * n_shards + s] = static_cast<uint32_t>(i);
      }
    }
  }

  size_t shard_count() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  /// Queue length of `shard`.
  size_t size(size_t shard) const {
    return offsets_[shard + 1] - offsets_[shard];
  }
  /// Total routed (item, shard) visits across all queues.
  size_t total() const { return items_.size(); }
  /// Queue of `shard`: item indices, ascending.
  const uint32_t* items(size_t shard) const {
    return items_.data() + offsets_[shard];
  }

  // ---- Inverse view: the visits of one item ----

  /// Number of shard visits of `item` (its routing fan-out degree).
  size_t item_degree(size_t item) const {
    return item_offsets_[item + 1] - item_offsets_[item];
  }
  /// Shard ids `item` visits, in routing order (ascending for the range
  /// router). Parallel to item_positions().
  const uint32_t* item_shards(size_t item) const {
    return visit_shards_.data() + item_offsets_[item];
  }
  /// For each visit of `item`, its position within that shard's queue.
  const uint32_t* item_positions(size_t item) const {
    return visit_positions_.data() + item_offsets_[item];
  }

 private:
  void Reset(size_t n_items, size_t n_shards) {
    offsets_.assign(n_shards + 1, 0);
    item_offsets_.assign(n_items + 1, 0);
    items_.clear();
  }

  std::vector<size_t> offsets_;  ///< per-shard [begin, end) into items_
  std::vector<uint32_t> items_;  ///< concatenated queues
  /// Inverse CSR: per-item [begin, end) into the parallel visit arrays.
  std::vector<size_t> item_offsets_;
  std::vector<uint32_t> visit_shards_;     ///< shard of each visit
  std::vector<uint32_t> visit_positions_;  ///< queue position of each visit
  std::vector<size_t> cursor_;             ///< pass-2 scatter cursors
  std::vector<uint32_t> route_scratch_;    ///< pass-1 per-item route buffer
};

}  // namespace accl::exec
