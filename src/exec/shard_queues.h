// Per-shard work queues for routed dispatch.
//
// The sharded SDI engine used to fan *every* item to *every* shard; with
// range-routed dispatch each item names only the shards it must visit, so
// the fan-out needs a per-shard queue of item indices instead of the whole
// batch. ShardQueues builds those queues in CSR layout (one flat item
// array plus per-shard offsets) with a two-pass counting sort: routing is
// evaluated exactly once per item, queues come out in ascending item order
// (which is what keeps the shard-side execution sequence — and therefore
// the per-shard adaptation — deterministic), and a K-shard broadcast costs
// one allocation instead of K vectors.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace accl::exec {

/// CSR-packed per-shard queues of item indices. Build once per batch, read
/// concurrently (the structure is immutable after Build).
class ShardQueues {
 public:
  /// Routes items 0..n_items-1 across n_shards queues. `route(i, &targets)`
  /// appends the target shard id(s) of item `i` (duplicates are kept —
  /// callers emit each target once). Each queue ends up in ascending item
  /// order.
  template <typename RouteFn>
  void Build(size_t n_items, size_t n_shards, RouteFn&& route) {
    Reset(n_shards);
    // Pass 1: evaluate routing once per item into a flat (offsets, targets)
    // image, counting per-shard queue lengths as we go.
    std::vector<size_t> route_offsets(n_items + 1, 0);
    std::vector<uint32_t> route_targets;
    std::vector<uint32_t> scratch;
    for (size_t i = 0; i < n_items; ++i) {
      scratch.clear();
      route(i, &scratch);
      for (const uint32_t s : scratch) {
        ACCL_CHECK(s < n_shards);
        ++offsets_[s + 1];
        route_targets.push_back(s);
      }
      route_offsets[i + 1] = route_targets.size();
    }
    // Pass 2: prefix-sum the counts into offsets, then scatter item indices
    // in item order — a stable counting sort by shard.
    for (size_t s = 0; s < n_shards; ++s) offsets_[s + 1] += offsets_[s];
    items_.resize(route_targets.size());
    std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (size_t i = 0; i < n_items; ++i) {
      for (size_t r = route_offsets[i]; r < route_offsets[i + 1]; ++r) {
        items_[cursor[route_targets[r]]++] = static_cast<uint32_t>(i);
      }
    }
  }

  /// Every item goes to every shard (the classic broadcast fan-out).
  void BuildBroadcast(size_t n_items, size_t n_shards) {
    Reset(n_shards);
    items_.resize(n_items * n_shards);
    for (size_t s = 0; s < n_shards; ++s) {
      offsets_[s + 1] = offsets_[s] + n_items;
      for (size_t i = 0; i < n_items; ++i) {
        items_[offsets_[s] + i] = static_cast<uint32_t>(i);
      }
    }
  }

  size_t shard_count() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  /// Queue length of `shard`.
  size_t size(size_t shard) const {
    return offsets_[shard + 1] - offsets_[shard];
  }
  /// Total routed (item, shard) visits across all queues.
  size_t total() const { return items_.size(); }
  /// Queue of `shard`: item indices, ascending.
  const uint32_t* items(size_t shard) const {
    return items_.data() + offsets_[shard];
  }

 private:
  void Reset(size_t n_shards) {
    offsets_.assign(n_shards + 1, 0);
    items_.clear();
  }

  std::vector<size_t> offsets_;  ///< per-shard [begin, end) into items_
  std::vector<uint32_t> items_;  ///< concatenated queues
};

}  // namespace accl::exec
