// Fixed-size thread-pool executor for the sharded matching subsystem.
//
// The paper's motivating SDI workload (§1) is many concurrent event streams
// matched against millions of subscriptions; one OS thread per query cannot
// saturate a modern machine. This pool is deliberately small and boring:
// long-lived workers, one locked FIFO of std::function tasks, and a blocking
// ParallelFor in which the *caller participates* — it drains tasks from the
// same queue while waiting, so a pool constructed with zero workers degrades
// to plain serial execution instead of deadlocking, and a pool of W workers
// gives W+1-way concurrency to the fork-join sections that use it.
//
// Interplay with epoch-based reclamation (exec/epoch.h): a fan-out caller
// that reads epoch-protected state pins ONCE, before submitting, and keeps
// the guard alive across ParallelFor — the workers (and any task the helping
// caller steals from an overlapping ParallelFor) are covered by the
// submitting caller's pin, because every task completes before that caller's
// guard is released. Workers therefore never pin epochs themselves, and a
// grace period can never deadlock on the pool: Synchronize() is only called
// with no pin held (see SubscriptionEngine::MaybeAutoRebalance), and pinned
// readers never block on the epoch publisher. Size an EpochManager's slot
// hint from concurrency() times the expected concurrent callers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace accl::exec {

/// Fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 is valid: Submit still queues, and
  /// ParallelFor runs everything on the calling thread.
  explicit ThreadPool(size_t workers);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Enqueues a task. Never blocks (beyond the queue lock).
  void Submit(std::function<void()> task);

  /// Runs body(0..n-1) across the pool and the calling thread; returns when
  /// every index has completed. Indices may run in any order and
  /// concurrently — bodies must write to disjoint state. Reentrant calls
  /// (ParallelFor from inside a body) are not supported.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Like ParallelFor, but with chunked submission and dynamic
  /// work-claiming: instead of enqueueing n task objects (one allocation +
  /// queue round-trip each), it enqueues min(n, concurrency()) *runner*
  /// tasks that claim indices from a shared atomic cursor until none
  /// remain. Fast indices finish early and their runner steals the rest —
  /// natural load balancing for imbalanced bodies — and per-batch queue
  /// churn is O(workers), not O(n). Same contract as ParallelFor otherwise
  /// (caller participates; bodies must write to disjoint state; no
  /// reentrancy). Index claim order is unspecified.
  void ParallelForDynamic(size_t n, const std::function<void(size_t)>& body);

  /// Installs a hook each worker runs (outside the queue lock) whenever it
  /// finds the queue empty and is about to sleep — idle time. Used to
  /// amortize deferred housekeeping (e.g. EpochManager::TryReclaim) into
  /// pool idle time instead of a hot path. The hook may run concurrently
  /// on several workers and must be safe to call at any point between
  /// tasks; it never runs after the destructor joins. Pass an empty
  /// function to clear.
  void SetIdleHook(std::function<void()> hook);

  /// Suggested shard/task width: worker threads + the caller.
  size_t concurrency() const { return workers_.size() + 1; }

 private:
  void WorkerLoop();
  /// Pops and runs one task; false when the queue was empty.
  bool RunOneTask();

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< workers: queue non-empty / stop
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::function<void()> idle_hook_;  ///< guarded by mu_; copied out to run
  bool stop_ = false;
};

}  // namespace accl::exec
