#include "exec/epoch.h"

#include <cmath>
#include <thread>

#include "obs/trace.h"
#include "util/timer.h"

namespace accl::exec {

namespace {

/// Process-wide dense thread ordinal, assigned on first use. Only a probe
/// seed (steady-state readers land on "their" slot immediately), never a
/// correctness input, so sharing it across managers is fine.
size_t ThreadOrdinal() {
  static std::atomic<size_t> counter{0};
  thread_local const size_t ordinal =
      counter.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

EpochManager::EpochManager(size_t min_slots) {
  SlotBlock* tail = &head_;
  for (size_t have = SlotBlock::kSlots; have < min_slots;
       have += SlotBlock::kSlots) {
    auto* b = new SlotBlock();
    tail->next.store(b, std::memory_order_release);
    tail = b;
  }
}

EpochManager::~EpochManager() {
  // No reader may be pinned here (the owner is being destroyed), so every
  // pending deleter is safe to run.
  {
    std::lock_guard<std::mutex> lk(retire_mu_);
    for (Retired& r : retired_) r.deleter();
    reclaimed_count_.Add(retired_.size());
    retired_.clear();
  }
  SlotBlock* b = head_.next.load(std::memory_order_acquire);
  while (b != nullptr) {
    SlotBlock* next = b->next.load(std::memory_order_acquire);
    delete b;
    b = next;
  }
}

EpochManager::Guard EpochManager::Pin() {
  pins_.Add();
  const size_t start = ThreadOrdinal() % SlotBlock::kSlots;
  for (;;) {
    for (SlotBlock* b = &head_; b != nullptr;
         b = b->next.load(std::memory_order_acquire)) {
      for (size_t i = 0; i < SlotBlock::kSlots; ++i) {
        Slot& s = b->slots[(start + i) % SlotBlock::kSlots];
        uint64_t expected = 0;
        // Epoch loaded immediately before the claim: if the publisher bumps
        // in between, the slot just advertises a slightly stale (smaller)
        // epoch and Synchronize waits for us conservatively.
        const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
        if (s.epoch.compare_exchange_strong(expected, e,
                                            std::memory_order_seq_cst)) {
          return Guard(&s.epoch, e);
        }
      }
    }
    Grow();  // every slot momentarily claimed: add capacity and retry
  }
}

EpochManager::SlotBlock* EpochManager::Grow() {
  std::lock_guard<std::mutex> lk(grow_mu_);
  SlotBlock* tail = &head_;
  for (SlotBlock* n = tail->next.load(std::memory_order_acquire); n != nullptr;
       n = tail->next.load(std::memory_order_acquire)) {
    tail = n;
  }
  auto* b = new SlotBlock();
  tail->next.store(b, std::memory_order_release);
  return b;
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = ~0ull;
  for (const SlotBlock* b = &head_; b != nullptr;
       b = b->next.load(std::memory_order_acquire)) {
    for (const Slot& s : b->slots) {
      const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min) min = e;
    }
  }
  return min;
}

void EpochManager::Retire(std::function<void()> deleter) {
  std::lock_guard<std::mutex> lk(retire_mu_);
  // Epoch read inside the lock: appends stay epoch-ordered, so reclamation
  // can stop at the first too-recent entry.
  retired_.push_back(
      Retired{global_epoch_.load(std::memory_order_seq_cst),
              std::move(deleter)});
  retired_count_.Add();
}

size_t EpochManager::ReclaimUpTo(uint64_t min_active) {
  // Deleters run under retire_mu_, which is what guarantees they never run
  // concurrently with one another. They must not re-enter the manager.
  std::lock_guard<std::mutex> lk(retire_mu_);
  size_t ran = 0;
  while (ran < retired_.size() && retired_[ran].epoch < min_active) {
    retired_[ran].deleter();
    ++ran;
  }
  retired_.erase(retired_.begin(), retired_.begin() + ran);
  reclaimed_count_.Add(ran);
  return ran;
}

size_t EpochManager::TryReclaim() {
  // If nobody is pinned, everything already retired is reclaimable: any pin
  // that begins after this scan follows it in the seq_cst total order, so
  // its subsequent reads observe the publications that preceded the
  // corresponding Retire calls.
  return ReclaimUpTo(MinActiveEpoch());
}

void EpochManager::Synchronize() { SynchronizeImpl(/*reclaim=*/true); }

void EpochManager::WaitGrace() { SynchronizeImpl(/*reclaim=*/false); }

void EpochManager::SynchronizeImpl(bool reclaim) {
  ACCL_TRACE_SPAN("epoch_grace_wait");
  synchronizes_.Add();
  const uint64_t next =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  // Wait for every reader still pinned at a pre-bump epoch. Readers never
  // block on the caller (pins cover pure read work), so this terminates.
  WallTimer wait_timer;
  for (;;) {
    bool busy = false;
    for (const SlotBlock* b = &head_; b != nullptr && !busy;
         b = b->next.load(std::memory_order_acquire)) {
      for (const Slot& s : b->slots) {
        const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
        if (e != 0 && e < next) {
          busy = true;
          break;
        }
      }
    }
    if (!busy) break;
    std::this_thread::yield();
  }
  // Record how long the grace period blocked this publisher — the price a
  // rebalance pays for each snapshot it retires; stats() and any attached
  // registry derive p50/p99 from the histogram.
  grace_wait_us_.Record(static_cast<uint64_t>(
      std::llround(wait_timer.ElapsedMs() * 1000.0)));
  if (reclaim) ReclaimUpTo(next);
}

EpochManagerStats EpochManager::stats() const {
  EpochManagerStats st;
  st.epoch = global_epoch_.load(std::memory_order_seq_cst);
  st.pins = pins_.Value();
  st.synchronizes = synchronizes_.Value();
  st.retired = retired_count_.Value();
  st.reclaimed = reclaimed_count_.Value();
  st.retired_pending = st.retired - st.reclaimed;
  st.grace_waits = grace_wait_us_.Count();
  st.grace_wait_p50_ms = grace_wait_us_.Percentile(0.50) / 1000.0;
  st.grace_wait_p99_ms = grace_wait_us_.Percentile(0.99) / 1000.0;
  st.grace_wait_max_ms = static_cast<double>(grace_wait_us_.Max()) / 1000.0;
  return st;
}

void EpochManager::AttachMetrics(obs::MetricsRegistry* reg) {
  reg->Attach("accl_epoch_pins_total", &pins_, "lifetime epoch pins");
  reg->Attach("accl_epoch_synchronizes_total", &synchronizes_,
              "grace periods driven (Synchronize + WaitGrace)");
  reg->Attach("accl_epoch_retired_total", &retired_count_,
              "deleters deferred through the retire list");
  reg->Attach("accl_epoch_reclaimed_total", &reclaimed_count_,
              "deferred deleters that have run");
  reg->Attach("accl_epoch_grace_wait_us", &grace_wait_us_,
              "grace-period wait per Synchronize/WaitGrace (microseconds)");
}

}  // namespace accl::exec
