// Epoch-based reclamation for read-mostly shared state.
//
// The sharded SDI engine publishes its routing metadata as immutable
// snapshots behind a single atomic pointer; readers must be able to use a
// snapshot without locks, and publishers must know when the last reader of
// a superseded snapshot is gone before tearing anything down. This is the
// classic epoch-based-reclamation contract of modern concurrent indexes
// (the Bw-tree line of work): readers *pin* the current epoch for the
// duration of one operation, writers *retire* obsolete state under the
// epoch at which it became unreachable, and retired state is reclaimed
// only once every active reader has advanced past that epoch.
//
// Design, deliberately small:
//   - A global epoch counter (monotone, starts at 1; slot value 0 means
//     "not pinned").
//   - Reader slots: cache-line-padded atomics grouped in fixed-size blocks.
//     A thread pins by CAS-claiming any quiescent slot and writing the
//     current epoch into it; no registration, no thread_locals tied to the
//     manager's lifetime, so short-lived managers (tests construct and
//     destroy engines freely) and foreign threads (any caller of Match, or
//     a thread_pool worker draining a fan-out) all work unchanged. A
//     thread-local ordinal seeds the slot probe so steady-state readers
//     keep hitting their own slot. The block list grows under a mutex when
//     every slot is momentarily claimed (rare: it means more concurrent
//     pins than slots) and is only freed at manager destruction, so the
//     lock-free slot scan never races reclamation of the slots themselves.
//   - A deferred retire list of (epoch, deleter) pairs, reclaimed when the
//     minimum pinned epoch has advanced past them (TryReclaim), or
//     synchronously after a grace period (Synchronize).
//
// Memory-ordering contract (this is what makes the engine's migration
// protocol sound): all epoch loads/stores and the publisher's snapshot
// pointer swap use seq_cst. If Synchronize()'s scan does NOT observe a
// reader's pin, that pin happened after the scan in the seq_cst total
// order — hence after the pointer swap that preceded the epoch bump — so
// the unobserved reader is guaranteed to load the *new* snapshot.
// Synchronize therefore returns only when every thread still using the old
// snapshot has unpinned.
//
// The thread_pool integration is by convention, not coupling: a fan-out
// caller (e.g. MatchBatch) pins once and keeps the guard alive across
// ParallelFor, so the pool workers executing its tasks are covered by the
// caller's pin and never touch the epoch machinery themselves. Size
// `min_slots` from ThreadPool::concurrency() times the expected number of
// concurrent callers; the block list grows on demand anyway.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace accl::exec {

/// Aggregate counters for observability (relaxed; monotone). A thin
/// snapshot read of the manager's obs metrics (kept for API
/// compatibility — the same numbers surface through a MetricsRegistry
/// the manager is attached to).
struct EpochManagerStats {
  uint64_t epoch = 0;            ///< current global epoch
  uint64_t pins = 0;             ///< lifetime Pin() calls
  uint64_t synchronizes = 0;     ///< lifetime Synchronize() calls
  uint64_t retired = 0;          ///< lifetime Retire() calls
  uint64_t reclaimed = 0;        ///< retired entries whose deleter has run
  uint64_t retired_pending = 0;  ///< retired entries awaiting reclamation
  /// Grace-period wait telemetry: how long Synchronize() calls blocked
  /// waiting for pre-bump readers to drain. Derived from a log-bucketed
  /// lifetime histogram (obs::Histogram, microsecond resolution), so the
  /// percentiles are quantized to <= 12.5% relative error; the max is
  /// exact to the microsecond.
  uint64_t grace_waits = 0;       ///< Synchronize() calls measured
  double grace_wait_p50_ms = 0.0;
  double grace_wait_p99_ms = 0.0;
  double grace_wait_max_ms = 0.0;  ///< lifetime maximum
};

class EpochManager {
 public:
  /// `min_slots` sizes the initial slot block(s); the slot pool grows on
  /// demand, so this is a contention hint, not a limit.
  explicit EpochManager(size_t min_slots = 0);

  /// Runs every pending deleter unconditionally. No reader may be pinned.
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII epoch pin. Movable so Pin() can return it; releasing twice is a
  /// no-op. A default-constructed Guard is released.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& o) noexcept : slot_(o.slot_), epoch_(o.epoch_) {
      o.slot_ = nullptr;
    }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        Release();
        slot_ = o.slot_;
        epoch_ = o.epoch_;
        o.slot_ = nullptr;
      }
      return *this;
    }
    ~Guard() { Release(); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    /// The epoch this guard is pinned at (0 when released).
    uint64_t epoch() const { return slot_ != nullptr ? epoch_ : 0; }
    bool pinned() const { return slot_ != nullptr; }

    /// Unpins early (before scope exit) to shorten the grace period the
    /// next Synchronize must wait for.
    void Release() {
      if (slot_ != nullptr) {
        slot_->store(0, std::memory_order_seq_cst);
        slot_ = nullptr;
      }
    }

   private:
    friend class EpochManager;
    Guard(std::atomic<uint64_t>* slot, uint64_t epoch)
        : slot_(slot), epoch_(epoch) {}
    std::atomic<uint64_t>* slot_ = nullptr;
    uint64_t epoch_ = 0;
  };

  /// Pins the calling thread to the current epoch. Lock-free on the steady
  /// path (one CAS on the thread's cached slot); falls back to probing and,
  /// if every slot is claimed, growing the slot pool. Reentrant: a thread
  /// may hold several guards (each occupies its own slot).
  Guard Pin();

  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

  /// Registers `deleter` to run once every reader pinned at or before the
  /// current epoch has unpinned. Called by publishers after unlinking
  /// state; the deleter runs on whichever thread later drives TryReclaim
  /// or Synchronize (never concurrently with another deleter).
  void Retire(std::function<void()> deleter);

  /// Runs the deleters whose retire epoch is strictly below every pinned
  /// reader's epoch. Returns how many ran. Non-blocking.
  size_t TryReclaim();

  /// Grace period: advances the epoch and blocks (yielding) until no
  /// reader remains pinned at a pre-advance epoch, then reclaims
  /// everything retired before the call. On return, every Pin() that was
  /// live when Synchronize started has been released — and any pin the
  /// scan did not wait for began after the caller's preceding publications
  /// (see the memory-ordering contract above).
  void Synchronize();

  /// Grace period WITHOUT the reclaim sweep: identical wait semantics to
  /// Synchronize (and counted in the same telemetry — a grace period is a
  /// grace period), but the retired deleters are left for a later
  /// TryReclaim/Synchronize. Publishers on a latency-sensitive path use
  /// this so deleter cost (freeing superseded snapshots) is amortized into
  /// someone's idle time — e.g. a thread pool's idle hook — instead of
  /// being paid inline by the publisher.
  void WaitGrace();

  EpochManagerStats stats() const;

  /// Registers this manager's metrics (pins/synchronizes/retired/
  /// reclaimed counters, grace-wait histogram) into `reg` under the
  /// accl_epoch_* names. The manager owns the metrics; it must outlive
  /// the registry or be detached.
  void AttachMetrics(obs::MetricsRegistry* reg);

  /// The grace-wait histogram (microseconds), for direct inspection.
  const obs::Histogram& grace_wait_histogram() const {
    return grace_wait_us_;
  }

 private:
  // One reader slot per cache line; 0 = quiescent, else the pinned epoch.
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};
  };
  struct SlotBlock {
    static constexpr size_t kSlots = 32;
    Slot slots[kSlots];
    std::atomic<SlotBlock*> next{nullptr};
  };

  /// Shared body of Synchronize/WaitGrace: epoch bump, grace wait,
  /// telemetry, and (when `reclaim`) the sweep of pre-bump retirees.
  void SynchronizeImpl(bool reclaim);
  /// Minimum epoch over pinned slots; ~0ull when nobody is pinned.
  uint64_t MinActiveEpoch() const;
  /// Appends one block to the slot list (called with no locks held).
  SlotBlock* Grow();
  size_t ReclaimUpTo(uint64_t min_active);

  std::atomic<uint64_t> global_epoch_{1};
  SlotBlock head_;  ///< first block inline: zero-allocation fast path
  std::mutex grow_mu_;

  struct Retired {
    uint64_t epoch;
    std::function<void()> deleter;
  };
  mutable std::mutex retire_mu_;
  std::vector<Retired> retired_;  ///< epoch-ordered (Retire stamps monotonically)

  /// Lifetime counters and the grace-wait latency histogram
  /// (microseconds): obs primitives so AttachMetrics can expose them on a
  /// registry while stats() keeps serving thin snapshot reads.
  obs::Counter pins_;
  obs::Counter synchronizes_;
  obs::Counter retired_count_;
  obs::Counter reclaimed_count_;
  obs::Histogram grace_wait_us_;
};

}  // namespace accl::exec
