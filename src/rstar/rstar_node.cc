#include "rstar/rstar_node.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace accl {

void UnionInto(BoxView b, float* acc) {
  const Dim nd = b.dims();
  for (Dim d = 0; d < nd; ++d) {
    acc[2 * d] = std::min(acc[2 * d], b.lo(d));
    acc[2 * d + 1] = std::max(acc[2 * d + 1], b.hi(d));
  }
}

double UnionVolume(BoxView a, BoxView b) {
  double v = 1.0;
  const Dim nd = a.dims();
  for (Dim d = 0; d < nd; ++d) {
    const double lo = std::min(a.lo(d), b.lo(d));
    const double hi = std::max(a.hi(d), b.hi(d));
    v *= hi - lo;
  }
  return v;
}

double OverlapVolume(BoxView a, BoxView b) {
  double v = 1.0;
  const Dim nd = a.dims();
  for (Dim d = 0; d < nd; ++d) {
    const double lo = std::max(a.lo(d), b.lo(d));
    const double hi = std::min(a.hi(d), b.hi(d));
    if (hi <= lo) return 0.0;
    v *= hi - lo;
  }
  return v;
}

double UnionMargin(BoxView a, BoxView b) {
  double m = 0.0;
  const Dim nd = a.dims();
  for (Dim d = 0; d < nd; ++d) {
    const double lo = std::min(a.lo(d), b.lo(d));
    const double hi = std::max(a.hi(d), b.hi(d));
    m += hi - lo;
  }
  return m;
}

void RNode::Add(BoxView b, uint32_t ref) {
  ACCL_DCHECK(b.dims() == nd_);
  mbbs_.insert(mbbs_.end(), b.data(),
               b.data() + 2 * static_cast<size_t>(nd_));
  refs_.push_back(ref);
}

void RNode::SetMbb(size_t i, BoxView b) {
  ACCL_DCHECK(i < size());
  std::memcpy(mbbs_.data() + 2 * static_cast<size_t>(nd_) * i, b.data(),
              2 * static_cast<size_t>(nd_) * sizeof(float));
}

void RNode::RemoveAt(size_t i) {
  ACCL_DCHECK(i < size());
  const size_t last = size() - 1;
  const size_t stride = 2 * static_cast<size_t>(nd_);
  if (i != last) {
    refs_[i] = refs_[last];
    std::memcpy(mbbs_.data() + i * stride, mbbs_.data() + last * stride,
                stride * sizeof(float));
  }
  refs_.pop_back();
  mbbs_.resize(mbbs_.size() - stride);
}

void RNode::Clear() {
  mbbs_.clear();
  refs_.clear();
}

Box RNode::ComputeMbb() const {
  ACCL_CHECK(!refs_.empty());
  Box acc(mbb(0));
  for (size_t i = 1; i < size(); ++i) UnionInto(mbb(i), acc.mutable_data());
  return acc;
}

size_t RNode::FindRef(uint32_t ref) const {
  auto it = std::find(refs_.begin(), refs_.end(), ref);
  return it == refs_.end() ? static_cast<size_t>(-1)
                           : static_cast<size_t>(it - refs_.begin());
}

}  // namespace accl
