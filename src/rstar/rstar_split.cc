#include "rstar/rstar_split.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "rstar/rstar_node.h"
#include "util/check.h"

namespace accl {

namespace {

// Accumulated MBB over a prefix/suffix of a sorted order; we precompute
// prefix and suffix unions so each distribution is O(nd).
struct RunningBoxes {
  // prefix[i] = union of entries order[0..i]; suffix[i] = union of
  // order[i..n-1]. Flat storage, stride 2*nd.
  std::vector<float> prefix;
  std::vector<float> suffix;
  Dim nd;

  RunningBoxes(const std::vector<BoxView>& entries,
               const std::vector<size_t>& order) {
    const size_t n = order.size();
    nd = entries[0].dims();
    const size_t stride = 2 * static_cast<size_t>(nd);
    prefix.resize(n * stride);
    suffix.resize(n * stride);
    for (size_t i = 0; i < n; ++i) {
      const BoxView b = entries[order[i]];
      std::copy(b.data(), b.data() + stride, prefix.begin() + i * stride);
      if (i > 0) {
        UnionInto(BoxView(prefix.data() + (i - 1) * stride, nd),
                  prefix.data() + i * stride);
      }
    }
    for (size_t i = n; i-- > 0;) {
      const BoxView b = entries[order[i]];
      std::copy(b.data(), b.data() + stride, suffix.begin() + i * stride);
      if (i + 1 < n) {
        UnionInto(BoxView(suffix.data() + (i + 1) * stride, nd),
                  suffix.data() + i * stride);
      }
    }
  }

  BoxView Prefix(size_t i) const {
    return BoxView(prefix.data() + i * 2 * static_cast<size_t>(nd), nd);
  }
  BoxView Suffix(size_t i) const {
    return BoxView(suffix.data() + i * 2 * static_cast<size_t>(nd), nd);
  }
};

double MarginOf(BoxView b) { return b.Margin(); }

}  // namespace

SplitPartition ChooseSplit(const std::vector<BoxView>& entries,
                           size_t min_entries) {
  const size_t n = entries.size();
  ACCL_CHECK(n >= 2 * min_entries);
  const Dim nd = entries[0].dims();

  // For each axis and each of the two sort keys (lower value, upper value),
  // sum the margins of all legal distributions; keep the best axis/key.
  double best_axis_margin = std::numeric_limits<double>::infinity();
  std::vector<size_t> best_order;
  std::vector<size_t> order(n);

  for (Dim d = 0; d < nd; ++d) {
    for (int key = 0; key < 2; ++key) {
      std::iota(order.begin(), order.end(), size_t{0});
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const float ka = key == 0 ? entries[a].lo(d) : entries[a].hi(d);
        const float kb = key == 0 ? entries[b].lo(d) : entries[b].hi(d);
        if (ka != kb) return ka < kb;
        // Secondary key keeps the sort total for deterministic splits.
        return (key == 0 ? entries[a].hi(d) < entries[b].hi(d)
                         : entries[a].lo(d) < entries[b].lo(d));
      });
      RunningBoxes rb(entries, order);
      double margin_sum = 0.0;
      for (size_t k = min_entries; k + min_entries <= n; ++k) {
        margin_sum += MarginOf(rb.Prefix(k - 1)) + MarginOf(rb.Suffix(k));
      }
      if (margin_sum < best_axis_margin) {
        best_axis_margin = margin_sum;
        best_order = order;
      }
    }
  }

  // ChooseSplitIndex along the winning order: minimum overlap volume between
  // the two groups; ties resolved by minimum combined volume.
  RunningBoxes rb(entries, best_order);
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  size_t best_k = min_entries;
  for (size_t k = min_entries; k + min_entries <= n; ++k) {
    const BoxView g1 = rb.Prefix(k - 1);
    const BoxView g2 = rb.Suffix(k);
    const double ov = OverlapVolume(g1, g2);
    const double vol = g1.Volume() + g2.Volume();
    if (ov < best_overlap || (ov == best_overlap && vol < best_volume)) {
      best_overlap = ov;
      best_volume = vol;
      best_k = k;
    }
  }

  SplitPartition part;
  part.group1.assign(best_order.begin(), best_order.begin() + best_k);
  part.group2.assign(best_order.begin() + best_k, best_order.end());
  return part;
}

}  // namespace accl
