// R*-tree (Beckmann et al., SIGMOD 1990) — the paper's main competitor.
//
// Full dynamic implementation: ChooseSubtree with minimum overlap
// enlargement at the leaf level (nearly-optimal candidate pruning),
// minimum area enlargement above; forced reinsertion of the 30 % farthest
// entries on first overflow per level per insertion; margin-driven split
// axis selection with overlap-driven split index; deletion with tree
// condensation and orphan reinsertion.
//
// Node capacity follows the paper's experimental setup: a page size of
// 16 KB and entries of 8*nd + 4 bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "api/spatial_index.h"
#include "cost/cost_model.h"
#include "rstar/rstar_node.h"

namespace accl {

/// Construction parameters for the R*-tree.
struct RStarConfig {
  Dim nd = 16;
  /// Node page size in bytes (paper: 16 KB).
  size_t page_bytes = 16384;
  /// Minimum fill m as a fraction of capacity M (R*: 40 %).
  double min_fill_fraction = 0.4;
  /// Fraction of entries force-reinserted on overflow (R*: 30 %).
  double reinsert_fraction = 0.3;
  /// Candidates considered for the overlap-enlargement test (R* "nearly
  /// optimal" pruning; 32 in the original).
  size_t overlap_candidates = 32;
  /// When non-zero, overrides the page-derived capacity (tests use small
  /// fanouts to exercise deep trees).
  size_t max_entries_override = 0;
  StorageScenario scenario = StorageScenario::kMemory;
  SystemParams sys = SystemParams::Paper();
};

/// The R*-tree competitor.
class RStarTree : public SpatialIndex {
 public:
  explicit RStarTree(const RStarConfig& cfg);
  ~RStarTree() override;

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  // ---- SpatialIndex interface ----
  const char* name() const override { return "RS"; }
  Dim dims() const override { return cfg_.nd; }
  void Insert(ObjectId id, BoxView box) override;
  bool Erase(ObjectId id) override;
  void Execute(const Query& q, std::vector<ObjectId>* out,
               QueryMetrics* metrics = nullptr) override;
  size_t size() const override { return object_count_; }

  // ---- Introspection ----
  const RStarConfig& config() const { return cfg_; }
  size_t node_count() const { return live_nodes_; }
  uint32_t height() const;  ///< number of levels (1 = root is a leaf)
  size_t max_entries() const { return max_entries_; }
  size_t min_entries() const { return min_entries_; }
  uint64_t forced_reinsertions() const { return forced_reinsertions_; }
  uint64_t splits() const { return splits_; }

  /// Average node fill (entries / capacity) across all nodes.
  double AverageUtilization() const;

  /// Verifies structural invariants: entry MBBs tight over children, level
  /// consistency, fill bounds. Aborts via ACCL_CHECK on violation.
  void CheckInvariants() const;

  /// An entry lifted out of a node (forced reinsert, splits, condensation).
  struct TakenEntry {
    Box box;
    uint32_t ref;
  };

 private:
  RNode* node(NodeId id) { return nodes_[id].get(); }
  const RNode* node(NodeId id) const { return nodes_[id].get(); }

  NodeId NewNode(uint32_t level);
  void FreeNode(NodeId id);

  /// R* ChooseSubtree step at one node whose children sit at
  /// `target_level`: index of the entry to descend into.
  size_t PickChild(const RNode* n, BoxView b, bool children_are_target) const;

  /// Inserts an entry at `target_level`, handling overflow (forced
  /// reinsert / split) and MBB adjustment.
  void InsertAtLevel(BoxView b, uint32_t ref, uint32_t target_level);

  /// Splits overfull node `cur`; returns the new sibling.
  NodeId SplitNode(NodeId cur);

  /// Removes the `reinsert_count_` entries farthest from the node's center;
  /// returns them sorted closest-first (R* close reinsert).
  std::vector<TakenEntry> TakeFarthest(NodeId nid);

  /// Recomputes the parent-entry MBBs for `child` along `path` (deepest
  /// ancestor last).
  void RefreshPath(const std::vector<NodeId>& path, NodeId child);

  void CheckNode(NodeId nid, const float* expected_mbb, uint32_t expected_level,
                 size_t* objects_seen) const;

  RStarConfig cfg_;
  size_t max_entries_;
  size_t min_entries_;
  size_t reinsert_count_;

  std::vector<std::unique_ptr<RNode>> nodes_;
  std::vector<NodeId> free_ids_;
  size_t live_nodes_ = 0;
  NodeId root_ = kNoNode;
  size_t object_count_ = 0;

  /// Per-level flags: has forced reinsert already run at this level during
  /// the current top-level insertion? (R* OverflowTreatment.)
  std::vector<bool> reinserted_levels_;

  uint64_t forced_reinsertions_ = 0;
  uint64_t splits_ = 0;
};

}  // namespace accl
