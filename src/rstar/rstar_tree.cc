#include "rstar/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "geometry/predicates.h"
#include "rstar/rstar_split.h"
#include "util/check.h"

namespace accl {

namespace {

// Node-level pruning: necessary condition on a node MBB for the subtree to
// possibly contain an answer object.
//  - intersects:   some object intersecting Q must itself intersect Q, and
//    it lies inside the MBB, so the MBB intersects Q.
//  - contained-by: an object inside Q lies inside MBB∩Q, so MBB meets Q.
//  - encloses:     an object enclosing Q lies inside the MBB, so the MBB
//    encloses Q as well.
inline bool NodeAdmits(BoxView mbb, const Query& q) {
  switch (q.rel) {
    case Relation::kIntersects:
    case Relation::kContainedBy:
      return Satisfies(mbb, q.box.view(), Relation::kIntersects);
    case Relation::kEncloses:
      return Satisfies(mbb, q.box.view(), Relation::kEncloses);
  }
  return false;
}

}  // namespace

RStarTree::RStarTree(const RStarConfig& cfg) : cfg_(cfg) {
  ACCL_CHECK(cfg_.nd > 0);
  const size_t entry_bytes = 8 * static_cast<size_t>(cfg_.nd) + 4;
  max_entries_ = cfg_.max_entries_override != 0
                     ? cfg_.max_entries_override
                     : std::max<size_t>(8, cfg_.page_bytes / entry_bytes);
  min_entries_ = std::max<size_t>(
      2, static_cast<size_t>(std::floor(static_cast<double>(max_entries_) *
                                        cfg_.min_fill_fraction)));
  ACCL_CHECK(2 * min_entries_ <= max_entries_ + 1);
  reinsert_count_ = std::max<size_t>(
      1, static_cast<size_t>(std::floor(static_cast<double>(max_entries_) *
                                        cfg_.reinsert_fraction)));
  // After removing the reinsert set the node must keep >= m entries.
  reinsert_count_ = std::min(reinsert_count_, max_entries_ + 1 - min_entries_);
  root_ = NewNode(0);
  reinserted_levels_.assign(1, false);
}

RStarTree::~RStarTree() = default;

NodeId RStarTree::NewNode(uint32_t level) {
  NodeId id;
  auto n = std::make_unique<RNode>(cfg_.nd, level);
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    nodes_[id] = std::move(n);
  } else {
    id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::move(n));
  }
  ++live_nodes_;
  return id;
}

void RStarTree::FreeNode(NodeId id) {
  ACCL_CHECK(nodes_[id] != nullptr);
  nodes_[id].reset();
  free_ids_.push_back(id);
  --live_nodes_;
}

uint32_t RStarTree::height() const { return node(root_)->level() + 1; }

double RStarTree::AverageUtilization() const {
  size_t entries = 0;
  for (const auto& n : nodes_) {
    if (n) entries += n->size();
  }
  return live_nodes_ == 0
             ? 0.0
             : static_cast<double>(entries) /
                   (static_cast<double>(live_nodes_) *
                    static_cast<double>(max_entries_));
}

size_t RStarTree::PickChild(const RNode* n, BoxView b,
                            bool children_are_leaves) const {
  const size_t sz = n->size();
  ACCL_DCHECK(sz > 0);
  struct Cand {
    size_t i;
    double enl;
    double area;
  };
  std::vector<Cand> cands;
  cands.reserve(sz);
  for (size_t i = 0; i < sz; ++i) {
    const BoxView e = n->mbb(i);
    const double area = e.Volume();
    cands.push_back({i, UnionVolume(e, b) - area, area});
  }
  if (!children_are_leaves) {
    // CS: minimum area enlargement, ties by minimum area.
    const Cand* best = &cands[0];
    for (const Cand& c : cands) {
      if (c.enl < best->enl || (c.enl == best->enl && c.area < best->area)) {
        best = &c;
      }
    }
    return best->i;
  }
  // Leaf level: minimum *overlap* enlargement among the top candidates by
  // area enlargement (R* nearly-optimal pruning), ties by area enlargement
  // then by area.
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& c) {
    if (a.enl != c.enl) return a.enl < c.enl;
    return a.area < c.area;
  });
  const size_t k = std::min(cfg_.overlap_candidates, sz);
  size_t best_i = cands[0].i;
  double best_ov = std::numeric_limits<double>::infinity();
  double best_enl = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  const size_t stride = 2 * static_cast<size_t>(cfg_.nd);
  std::vector<float> u(stride);
  for (size_t c = 0; c < k; ++c) {
    const size_t i = cands[c].i;
    const BoxView e = n->mbb(i);
    std::copy(e.data(), e.data() + stride, u.begin());
    UnionInto(b, u.data());
    const BoxView uv(u.data(), cfg_.nd);
    double ov = 0.0;
    for (size_t j = 0; j < sz; ++j) {
      if (j == i) continue;
      ov += OverlapVolume(uv, n->mbb(j)) - OverlapVolume(e, n->mbb(j));
    }
    if (ov < best_ov ||
        (ov == best_ov &&
         (cands[c].enl < best_enl ||
          (cands[c].enl == best_enl && cands[c].area < best_area)))) {
      best_ov = ov;
      best_enl = cands[c].enl;
      best_area = cands[c].area;
      best_i = i;
    }
  }
  return best_i;
}

void RStarTree::RefreshPath(const std::vector<NodeId>& path, NodeId child) {
  NodeId ch = child;
  for (size_t i = path.size(); i-- > 0;) {
    RNode* p = node(path[i]);
    const size_t ei = p->FindRef(ch);
    ACCL_DCHECK(ei != static_cast<size_t>(-1));
    p->SetMbb(ei, node(ch)->ComputeMbb().view());
    ch = path[i];
  }
}

std::vector<RStarTree::TakenEntry> RStarTree::TakeFarthest(NodeId nid) {
  RNode* n = node(nid);
  const Box nb = n->ComputeMbb();
  const Dim nd = cfg_.nd;
  // Squared distance between entry center and node center.
  std::vector<std::pair<double, size_t>> dist(n->size());
  for (size_t i = 0; i < n->size(); ++i) {
    const BoxView e = n->mbb(i);
    double d2 = 0.0;
    for (Dim d = 0; d < nd; ++d) {
      const double dd = 0.5 * (e.lo(d) + e.hi(d)) - 0.5 * (nb.lo(d) + nb.hi(d));
      d2 += dd * dd;
    }
    dist[i] = {d2, i};
  }
  std::sort(dist.begin(), dist.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  // The reinsert_count_ farthest entries, reinserted closest-first
  // ("close reinsert").
  std::vector<size_t> take_idx;
  take_idx.reserve(reinsert_count_);
  std::vector<TakenEntry> taken;
  taken.reserve(reinsert_count_);
  for (size_t c = reinsert_count_; c-- > 0;) {  // ascending distance
    const size_t i = dist[c].second;
    taken.push_back({Box(node(nid)->mbb(i)), node(nid)->ref(i)});
    take_idx.push_back(i);
  }
  // Remove by descending slot index so swap-removal does not disturb the
  // remaining victims.
  std::sort(take_idx.begin(), take_idx.end(), std::greater<size_t>());
  for (size_t i : take_idx) node(nid)->RemoveAt(i);
  return taken;
}

NodeId RStarTree::SplitNode(NodeId cur) {
  RNode* n = node(cur);
  std::vector<BoxView> entries;
  entries.reserve(n->size());
  for (size_t i = 0; i < n->size(); ++i) entries.push_back(n->mbb(i));
  const SplitPartition part = ChooseSplit(entries, min_entries_);

  // Copy out both groups before clearing the node (views alias its storage).
  std::vector<TakenEntry> g1, g2;
  g1.reserve(part.group1.size());
  g2.reserve(part.group2.size());
  for (size_t i : part.group1) g1.push_back({Box(n->mbb(i)), n->ref(i)});
  for (size_t i : part.group2) g2.push_back({Box(n->mbb(i)), n->ref(i)});

  const NodeId nn = NewNode(n->level());
  n = node(cur);  // table may have grown
  n->Clear();
  for (const TakenEntry& e : g1) n->Add(e.box.view(), e.ref);
  RNode* n2 = node(nn);
  for (const TakenEntry& e : g2) n2->Add(e.box.view(), e.ref);
  return nn;
}

void RStarTree::InsertAtLevel(BoxView b, uint32_t ref, uint32_t target_level) {
  // Descend to the target level, choosing subtrees the R* way.
  std::vector<NodeId> path;
  NodeId nid = root_;
  while (node(nid)->level() > target_level) {
    path.push_back(nid);
    const bool leaves = node(nid)->level() == 1;
    const size_t ci = PickChild(node(nid), b, leaves);
    nid = node(nid)->ref(ci);
  }
  ACCL_CHECK(node(nid)->level() == target_level);
  node(nid)->Add(b, ref);

  // Overflow treatment, bottom-up.
  NodeId cur = nid;
  size_t pi = path.size();  // ancestors path[0..pi-1] remain unprocessed
  while (node(cur)->size() > max_entries_) {
    const uint32_t lvl = node(cur)->level();
    if (cur != root_ && !reinserted_levels_[lvl]) {
      // Forced reinsert: once per level per top-level insertion.
      reinserted_levels_[lvl] = true;
      ++forced_reinsertions_;
      std::vector<TakenEntry> taken = TakeFarthest(cur);
      RefreshPath({path.begin(), path.begin() + pi}, cur);
      for (const TakenEntry& te : taken) {
        InsertAtLevel(te.box.view(), te.ref, lvl);
      }
      return;
    }
    const NodeId nn = SplitNode(cur);
    ++splits_;
    if (cur == root_) {
      const NodeId nr = NewNode(lvl + 1);
      node(nr)->Add(node(cur)->ComputeMbb().view(), cur);
      node(nr)->Add(node(nn)->ComputeMbb().view(), nn);
      root_ = nr;
      reinserted_levels_.resize(node(nr)->level() + 1, false);
      return;
    }
    const NodeId parent = path[pi - 1];
    const size_t ei = node(parent)->FindRef(cur);
    ACCL_DCHECK(ei != static_cast<size_t>(-1));
    node(parent)->SetMbb(ei, node(cur)->ComputeMbb().view());
    node(parent)->Add(node(nn)->ComputeMbb().view(), nn);
    cur = parent;
    --pi;
  }
  RefreshPath({path.begin(), path.begin() + pi}, cur);
}

void RStarTree::Insert(ObjectId id, BoxView box) {
  ACCL_CHECK(box.dims() == cfg_.nd);
  reinserted_levels_.assign(node(root_)->level() + 1, false);
  InsertAtLevel(box, id, 0);
  ++object_count_;
}

namespace {

// DFS for the leaf holding `id`; fills `path` with the ancestors.
bool FindLeafRec(const std::vector<std::unique_ptr<RNode>>& nodes, NodeId nid,
                 ObjectId id, std::vector<NodeId>* path, NodeId* leaf) {
  const RNode* n = nodes[nid].get();
  if (n->is_leaf()) {
    if (n->FindRef(id) != static_cast<size_t>(-1)) {
      *leaf = nid;
      return true;
    }
    return false;
  }
  path->push_back(nid);
  for (size_t i = 0; i < n->size(); ++i) {
    if (FindLeafRec(nodes, n->ref(i), id, path, leaf)) return true;
  }
  path->pop_back();
  return false;
}

void CollectLeafEntries(const std::vector<std::unique_ptr<RNode>>& nodes,
                        NodeId nid,
                        std::vector<RStarTree::TakenEntry>* out,
                        std::vector<NodeId>* subtree) {
  const RNode* n = nodes[nid].get();
  subtree->push_back(nid);
  if (n->is_leaf()) {
    for (size_t i = 0; i < n->size(); ++i) {
      out->push_back({Box(n->mbb(i)), n->ref(i)});
    }
    return;
  }
  for (size_t i = 0; i < n->size(); ++i) {
    CollectLeafEntries(nodes, n->ref(i), out, subtree);
  }
}

}  // namespace

bool RStarTree::Erase(ObjectId id) {
  std::vector<NodeId> path;
  NodeId leaf = kNoNode;
  if (!FindLeafRec(nodes_, root_, id, &path, &leaf)) return false;
  node(leaf)->RemoveAt(node(leaf)->FindRef(id));
  --object_count_;

  // Condense: dissolve underfull nodes bottom-up, reinserting their leaf
  // payloads afterwards (simpler than level-wise orphan reinsertion and
  // immune to root-height changes).
  std::vector<TakenEntry> orphans;
  NodeId cur = leaf;
  size_t pi = path.size();
  while (cur != root_) {
    const NodeId parent = path[pi - 1];
    if (node(cur)->size() < min_entries_) {
      const size_t ei = node(parent)->FindRef(cur);
      ACCL_DCHECK(ei != static_cast<size_t>(-1));
      node(parent)->RemoveAt(ei);
      std::vector<NodeId> subtree;
      CollectLeafEntries(nodes_, cur, &orphans, &subtree);
      for (NodeId nid : subtree) FreeNode(nid);
    } else {
      const size_t ei = node(parent)->FindRef(cur);
      node(parent)->SetMbb(ei, node(cur)->ComputeMbb().view());
    }
    cur = parent;
    --pi;
  }
  // Shrink the root while it is a one-way internal node.
  while (!node(root_)->is_leaf() && node(root_)->size() == 1) {
    const NodeId old = root_;
    root_ = node(root_)->ref(0);
    FreeNode(old);
  }
  if (!node(root_)->is_leaf() && node(root_)->size() == 0) {
    // Cannot happen: internal nodes lose whole children only via the
    // condense path, which never empties the root without shrinking it.
    ACCL_CHECK(false);
  }
  for (const TakenEntry& te : orphans) {
    reinserted_levels_.assign(node(root_)->level() + 1, false);
    InsertAtLevel(te.box.view(), te.ref, 0);
  }
  return true;
}

void RStarTree::Execute(const Query& q, std::vector<ObjectId>* out,
                        QueryMetrics* metrics) {
  ACCL_CHECK(q.dims() == cfg_.nd);
  QueryMetrics local;
  QueryMetrics* m = metrics ? metrics : &local;
  m->Clear();
  m->groups_total = live_nodes_;

  const BoxView qv = q.box.view();
  const uint64_t entry_bytes = 8ull * cfg_.nd + 4ull;
  std::vector<NodeId> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const NodeId nid = stack.back();
    stack.pop_back();
    const RNode* n = node(nid);
    ++m->groups_explored;
    // Every node access is a random page read in the disk scenario.
    if (cfg_.scenario == StorageScenario::kDisk) {
      ++m->disk_seeks;
      m->disk_bytes += cfg_.page_bytes;
      m->sim_time_ms +=
          cfg_.sys.disk_access_ms +
          cfg_.sys.disk_ms_per_byte * static_cast<double>(cfg_.page_bytes);
    }
    if (n->is_leaf()) {
      for (size_t i = 0; i < n->size(); ++i) {
        uint32_t dims_checked = 0;
        if (SatisfiesCounting(n->mbb(i), qv, q.rel, &dims_checked)) {
          out->push_back(n->ref(i));
          ++m->result_count;
        }
        m->dims_checked += dims_checked;
      }
      m->objects_verified += n->size();
      m->bytes_verified += n->size() * ObjectBytes(cfg_.nd);
      m->sim_time_ms += cfg_.sys.verify_ms_per_byte *
                        static_cast<double>(n->size() * entry_bytes);
    } else {
      for (size_t i = 0; i < n->size(); ++i) {
        if (NodeAdmits(n->mbb(i), q)) {
          stack.push_back(n->ref(i));
        }
      }
      m->sim_time_ms += cfg_.sys.verify_ms_per_byte *
                        static_cast<double>(n->size() * entry_bytes);
    }
  }
}

void RStarTree::CheckNode(NodeId nid, const float* expected_mbb,
                          uint32_t expected_level,
                          size_t* objects_seen) const {
  const RNode* n = node(nid);
  ACCL_CHECK(n != nullptr);
  ACCL_CHECK(n->level() == expected_level);
  if (nid != root_) {
    ACCL_CHECK(n->size() >= min_entries_);
  }
  ACCL_CHECK(n->size() <= max_entries_);
  if (expected_mbb != nullptr) {
    const Box actual = n->ComputeMbb();
    for (Dim d = 0; d < cfg_.nd; ++d) {
      ACCL_CHECK(actual.lo(d) == expected_mbb[2 * d]);
      ACCL_CHECK(actual.hi(d) == expected_mbb[2 * d + 1]);
    }
  }
  if (n->is_leaf()) {
    *objects_seen += n->size();
    return;
  }
  for (size_t i = 0; i < n->size(); ++i) {
    CheckNode(n->ref(i), n->mbb(i).data(), expected_level - 1, objects_seen);
  }
}

void RStarTree::CheckInvariants() const {
  size_t objects_seen = 0;
  if (object_count_ == 0 && node(root_)->is_leaf() &&
      node(root_)->size() == 0) {
    return;  // empty tree
  }
  CheckNode(root_, nullptr, node(root_)->level(), &objects_seen);
  ACCL_CHECK(objects_seen == object_count_);
}

}  // namespace accl
