// R*-tree split: ChooseSplitAxis by minimum margin sum over all
// distributions, then ChooseSplitIndex by minimum overlap (ties broken by
// minimum combined volume). Operates on an overfull node's entries and
// returns the partition.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/box.h"

namespace accl {

/// Output of the split decision: entry indices for each group.
struct SplitPartition {
  std::vector<size_t> group1;
  std::vector<size_t> group2;
};

/// Chooses the R* split of `entries` (each a BoxView of the same
/// dimensionality). `min_entries` is m: every distribution keeps at least m
/// entries per group. `entries.size()` must be at least 2*m.
SplitPartition ChooseSplit(const std::vector<BoxView>& entries,
                           size_t min_entries);

}  // namespace accl
