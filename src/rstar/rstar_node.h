// Nodes of the R*-tree baseline (Beckmann, Kriegel, Schneider, Seeger 1990),
// the paper's main competitor. Entries are stored flat (MBB stride 2*nd)
// exactly like the paper sizes them: 16 KB pages, entry = 8*nd + 4 bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "api/types.h"
#include "geometry/box.h"

namespace accl {

using NodeId = uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

/// Widens `acc` (flat 2*nd floats) to include `b`.
void UnionInto(BoxView b, float* acc);

/// Volume of the union MBB of `a` and `b`.
double UnionVolume(BoxView a, BoxView b);

/// Volume of the intersection of `a` and `b` (0 when disjoint).
double OverlapVolume(BoxView a, BoxView b);

/// Margin (sum of side lengths) of the union MBB of `a` and `b`.
double UnionMargin(BoxView a, BoxView b);

/// One R*-tree node: a page of entries. Leaf entries reference ObjectIds;
/// internal entries reference child NodeIds.
class RNode {
 public:
  RNode(Dim nd, uint32_t level) : nd_(nd), level_(level) {}

  Dim dims() const { return nd_; }
  uint32_t level() const { return level_; }  ///< 0 = leaf
  bool is_leaf() const { return level_ == 0; }
  size_t size() const { return refs_.size(); }

  BoxView mbb(size_t i) const {
    return BoxView(mbbs_.data() + 2 * static_cast<size_t>(nd_) * i, nd_);
  }
  uint32_t ref(size_t i) const { return refs_[i]; }

  void Add(BoxView b, uint32_t ref);

  /// Replaces entry i's MBB (after a child's extent changed).
  void SetMbb(size_t i, BoxView b);

  /// Swap-removes entry i.
  void RemoveAt(size_t i);

  void Clear();

  /// Union of all entry MBBs. Node must be non-empty.
  Box ComputeMbb() const;

  /// Index of the entry referencing `ref`, or SIZE_MAX.
  size_t FindRef(uint32_t ref) const;

 private:
  Dim nd_;
  uint32_t level_;
  std::vector<float> mbbs_;  // stride 2*nd
  std::vector<uint32_t> refs_;
};

}  // namespace accl
