// Behavioral tests for the paper's qualitative claims: the adaptive
// clustering verifies fewer objects than Sequential Scan, beats it under the
// cost model in both storage scenarios, and exploits skew.
#include <gtest/gtest.h>

#include "core/adaptive_index.h"
#include "seqscan/seq_scan.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/query_gen.h"

namespace accl {
namespace {

using testutil::Load;

struct DriveResult {
  double ac_sim_ms = 0;
  double ss_sim_ms = 0;
  uint64_t ac_verified = 0;
  uint64_t ss_verified = 0;
  uint64_t ac_explored = 0;
};

DriveResult Compare(StorageScenario scenario, const Dataset& ds,
                    const std::vector<Query>& warmup,
                    const std::vector<Query>& measure) {
  AdaptiveConfig acfg;
  acfg.nd = ds.nd;
  acfg.scenario = scenario;
  acfg.reorg_period = 100;
  acfg.min_observation = 32;
  AdaptiveIndex ac(acfg);
  SeqScan ss(ds.nd, scenario);
  Load(ac, ds);
  Load(ss, ds);

  std::vector<ObjectId> out;
  for (const Query& q : warmup) {
    out.clear();
    ac.Execute(q, &out);
  }
  DriveResult r;
  QueryMetrics m;
  for (const Query& q : measure) {
    out.clear();
    ac.Execute(q, &out, &m);
    r.ac_sim_ms += m.sim_time_ms;
    r.ac_verified += m.objects_verified;
    r.ac_explored += m.groups_explored;
    out.clear();
    ss.Execute(q, &out, &m);
    r.ss_sim_ms += m.sim_time_ms;
    r.ss_verified += m.objects_verified;
  }
  return r;
}

TEST(Adaptivity, BeatsScanInMemoryOnSelectiveWorkload) {
  UniformSpec spec;
  spec.nd = 8;
  spec.count = 30000;
  spec.seed = 3;
  Dataset ds = GenerateUniform(spec);
  auto warm = GenerateQueriesWithExtent(8, Relation::kIntersects, 1500, 0.08, 5);
  auto meas = GenerateQueriesWithExtent(8, Relation::kIntersects, 300, 0.08, 7);
  DriveResult r = Compare(StorageScenario::kMemory, ds, warm, meas);
  EXPECT_LT(r.ac_verified, r.ss_verified);
  EXPECT_LT(r.ac_sim_ms, r.ss_sim_ms);
}

TEST(Adaptivity, BeatsScanOnDiskOnSelectiveWorkload) {
  UniformSpec spec;
  spec.nd = 8;
  spec.count = 30000;
  spec.seed = 11;
  Dataset ds = GenerateUniform(spec);
  auto warm = GenerateQueriesWithExtent(8, Relation::kIntersects, 1500, 0.08, 13);
  auto meas = GenerateQueriesWithExtent(8, Relation::kIntersects, 300, 0.08, 17);
  DriveResult r = Compare(StorageScenario::kDisk, ds, warm, meas);
  // The paper's guarantee: AC always at least matches Sequential Scan.
  EXPECT_LE(r.ac_sim_ms, r.ss_sim_ms * 1.02);
}

TEST(Adaptivity, NeverWorseThanScanEvenOnHostileWorkload) {
  // Full-domain queries: clustering cannot help; the cost model must keep
  // (or collapse to) essentially a single cluster so AC tracks SS.
  UniformSpec spec;
  spec.nd = 4;
  spec.count = 20000;
  spec.seed = 19;
  Dataset ds = GenerateUniform(spec);
  std::vector<Query> all(2000, Query::Intersection(Box::FullDomain(4)));
  std::vector<Query> meas(100, Query::Intersection(Box::FullDomain(4)));
  DriveResult r = Compare(StorageScenario::kDisk, ds, all, meas);
  // Identical I/O: everything is read either way; allow small CPU slack.
  EXPECT_LE(r.ac_sim_ms, r.ss_sim_ms * 1.10);
}

TEST(Adaptivity, PointEnclosingIsBestCase) {
  // Paper: point-enclosing gains (up to 16x memory) exceed the intersection
  // gains thanks to very high selectivity.
  UniformSpec spec;
  spec.nd = 8;
  spec.count = 30000;
  spec.seed = 23;
  Dataset ds = GenerateUniform(spec);
  std::vector<Query> warm, meas;
  {
    auto w = GeneratePointQueries(8, 1500, 29);
    warm.assign(w.begin(), w.end());
    auto m = GeneratePointQueries(8, 300, 31);
    meas.assign(m.begin(), m.end());
  }
  DriveResult r = Compare(StorageScenario::kMemory, ds, warm, meas);
  EXPECT_LT(r.ac_verified * 2, r.ss_verified);  // at least 2x fewer checks
  EXPECT_LT(r.ac_sim_ms, r.ss_sim_ms);
}

TEST(Adaptivity, SkewedDataYieldsLargerSavings) {
  // The paper reports AC exploiting skew (signatures pick the most
  // selective dimensions), so the verified-object ratio should drop on
  // skewed data relative to uniform data.
  const size_t n = 30000;
  UniformSpec uspec;
  uspec.nd = 16;
  uspec.count = n;
  uspec.seed = 37;
  SkewedSpec sspec;
  sspec.nd = 16;
  sspec.count = n;
  sspec.seed = 37;
  Dataset uni = GenerateUniform(uspec);
  Dataset skw = GenerateSkewed(sspec);

  auto mk = [](Dim nd, uint64_t seed) {
    return GenerateQueriesWithExtent(nd, Relation::kIntersects, 1200, 0.3,
                                     seed);
  };
  auto wu = mk(16, 41), mu = mk(16, 43);
  auto ws = mk(16, 41), ms = mk(16, 43);
  DriveResult ru =
      Compare(StorageScenario::kMemory, uni, wu,
              std::vector<Query>(mu.begin(), mu.begin() + 200));
  DriveResult rs =
      Compare(StorageScenario::kMemory, skw, ws,
              std::vector<Query>(ms.begin(), ms.begin() + 200));
  const double ratio_uniform =
      static_cast<double>(ru.ac_verified) / static_cast<double>(ru.ss_verified);
  const double ratio_skewed =
      static_cast<double>(rs.ac_verified) / static_cast<double>(rs.ss_verified);
  EXPECT_LT(ratio_skewed, ratio_uniform * 1.05);
}

TEST(Adaptivity, MoreSelectiveQueriesYieldMoreClusters) {
  // Paper Fig. 7 discussion: very selective queries => many clusters;
  // unselective queries => few clusters.
  UniformSpec spec;
  spec.nd = 8;
  spec.count = 20000;
  spec.seed = 47;
  Dataset ds = GenerateUniform(spec);

  auto build = [&](double extent) {
    AdaptiveConfig cfg;
    cfg.nd = 8;
    cfg.reorg_period = 100;
    AdaptiveIndex idx(cfg);
    Load(idx, ds);
    auto qs = GenerateQueriesWithExtent(8, Relation::kIntersects, 1500,
                                        extent, 53);
    std::vector<ObjectId> out;
    for (const Query& q : qs) {
      out.clear();
      idx.Execute(q, &out);
    }
    return idx.cluster_count();
  };
  const size_t selective = build(0.02);
  const size_t unselective = build(0.9);
  EXPECT_GT(selective, unselective);
}

}  // namespace
}  // namespace accl
