// Property tests for the batched verification kernel: VerifyBatch must agree
// with the scalar Satisfies/SatisfiesCounting oracle on every relation,
// including degenerate point queries and boundary-equal coordinates, and its
// dims_checked accounting must match the scalar early-exit count exactly.
#include <gtest/gtest.h>

#include <vector>

#include "geometry/predicates.h"
#include "kernels/backend_registry.h"
#include "storage/slot_array.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

// Registry-dispatched kernel (widest backend the host supports, or the
// ACCL_FORCE_BACKEND pin). Per-backend parity is kernel_parity_test's job.
using kernels::VerifyBatch;

constexpr Relation kRelations[] = {Relation::kIntersects,
                                   Relation::kContainedBy,
                                   Relation::kEncloses};

struct ScalarResult {
  std::vector<ObjectId> matches;
  uint64_t dims = 0;
};

ScalarResult ScalarOracle(const SlotArray& a, BoxView q, Relation rel) {
  ScalarResult r;
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t dc = 0;
    if (SatisfiesCounting(a.box(i), q, rel, &dc)) r.matches.push_back(a.id(i));
    r.dims += dc;
  }
  return r;
}

void ExpectAgrees(const SlotArray& a, const Box& q, Relation rel) {
  const ScalarResult expect = ScalarOracle(a, q.view(), rel);
  const BatchQuery bq(q.view(), rel);
  std::vector<ObjectId> got;
  uint64_t dims = 0;
  const size_t matches = VerifyBatch(a.coords_data(), a.ids().data(),
                                     a.size(), bq, &got, &dims);
  EXPECT_EQ(matches, expect.matches.size())
      << RelationName(rel) << " on " << q.ToString();
  EXPECT_EQ(got, expect.matches) << RelationName(rel);
  EXPECT_EQ(dims, expect.dims)
      << "early-exit accounting diverged for " << RelationName(rel);
}

TEST(BatchVerify, RandomBoxesAllRelations) {
  Rng rng(7);
  for (Dim nd : {1u, 2u, 3u, 7u, 8u, 16u, 17u, 40u}) {
    SlotArray a(nd);
    for (ObjectId id = 0; id < 300; ++id) {
      a.Append(id, testutil::RandomBox(rng, nd, 0.5f).view());
    }
    for (int t = 0; t < 20; ++t) {
      const Box q = testutil::RandomBox(rng, nd, 0.8f);
      for (Relation rel : kRelations) ExpectAgrees(a, q, rel);
    }
  }
}

TEST(BatchVerify, DegeneratePointQueries) {
  Rng rng(11);
  for (Dim nd : {2u, 16u, 19u}) {
    SlotArray a(nd);
    for (ObjectId id = 0; id < 200; ++id) {
      a.Append(id, testutil::RandomBox(rng, nd, 0.6f).view());
    }
    for (int t = 0; t < 20; ++t) {
      Box q(nd);
      for (Dim d = 0; d < nd; ++d) {
        const float x = rng.NextFloat();
        q.set(d, x, x);  // zero-extent query (point-enclosing case)
      }
      for (Relation rel : kRelations) ExpectAgrees(a, q, rel);
    }
  }
}

TEST(BatchVerify, BoundaryEqualCoordinates) {
  // Objects whose faces coincide exactly with the query's: every comparison
  // is an equality, which all relations treat as satisfied (closed
  // intervals). Mix in touching-from-outside and one-ulp-ish offsets.
  const Dim nd = 5;
  Box q(nd);
  for (Dim d = 0; d < nd; ++d) q.set(d, 0.25f, 0.75f);

  SlotArray a(nd);
  Box same(nd);
  for (Dim d = 0; d < nd; ++d) same.set(d, 0.25f, 0.75f);
  a.Append(0, same.view());  // identical box: matches all three relations
  Box touch_lo(nd);
  for (Dim d = 0; d < nd; ++d) touch_lo.set(d, 0.0f, 0.25f);
  a.Append(1, touch_lo.view());  // touches the query's lower face
  Box touch_hi(nd);
  for (Dim d = 0; d < nd; ++d) touch_hi.set(d, 0.75f, 1.0f);
  a.Append(2, touch_hi.view());
  Box inside(nd);
  for (Dim d = 0; d < nd; ++d) inside.set(d, 0.25f, 0.5f);
  a.Append(3, inside.view());  // shares the lower face, contained
  Box outside(nd);
  for (Dim d = 0; d < nd; ++d) outside.set(d, 0.0f, 1.0f);
  a.Append(4, outside.view());  // encloses the query, shares no face

  for (Relation rel : kRelations) ExpectAgrees(a, q, rel);

  // Spot-check the expected sets directly.
  {
    const BatchQuery bq(q.view(), Relation::kIntersects);
    std::vector<ObjectId> got;
    uint64_t dims = 0;
    VerifyBatch(a.coords_data(), a.ids().data(), a.size(), bq, &got, &dims);
    EXPECT_EQ(got, (std::vector<ObjectId>{0, 1, 2, 3, 4}));
  }
  {
    const BatchQuery bq(q.view(), Relation::kContainedBy);
    std::vector<ObjectId> got;
    uint64_t dims = 0;
    VerifyBatch(a.coords_data(), a.ids().data(), a.size(), bq, &got, &dims);
    EXPECT_EQ(got, (std::vector<ObjectId>{0, 3}));
  }
  {
    const BatchQuery bq(q.view(), Relation::kEncloses);
    std::vector<ObjectId> got;
    uint64_t dims = 0;
    VerifyBatch(a.coords_data(), a.ids().data(), a.size(), bq, &got, &dims);
    EXPECT_EQ(got, (std::vector<ObjectId>{0, 4}));
  }
}

TEST(BatchVerify, EmptyBlockAndBlockBoundaries) {
  const Dim nd = 3;
  SlotArray a(nd);
  Box q(nd);
  for (Dim d = 0; d < nd; ++d) q.set(d, 0.0f, 1.0f);
  for (Relation rel : kRelations) ExpectAgrees(a, q, rel);  // n = 0

  // Sizes around the 64-record block boundary.
  Rng rng(23);
  for (size_t n : {1u, 63u, 64u, 65u, 128u, 130u}) {
    SlotArray b(nd);
    for (ObjectId id = 0; id < n; ++id) {
      b.Append(id, testutil::RandomBox(rng, nd, 0.4f).view());
    }
    for (int t = 0; t < 5; ++t) {
      const Box qq = testutil::RandomBox(rng, nd, 0.9f);
      for (Relation rel : kRelations) ExpectAgrees(b, qq, rel);
    }
  }
}

}  // namespace
}  // namespace accl
