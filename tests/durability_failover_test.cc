// Log shipping + failover tests (durability/shipping.h).
//
// Unit coverage first: a follower tracks a live primary and serves
// read-only matches, refuses mutations, re-bases from the checkpoint when
// the primary's truncation outruns the replication cursor, GCs its mirror
// chain, and promotes warm into a writable primary whose new mutations are
// durable in the replica files.
//
// The centerpiece is the failover crash-point matrix: a primary runs a
// deterministic mutation script with a shipper interleaved, all I/O
// charged to ONE shared SimDisk — WAL flushes, rotations, recycles,
// checkpoint writes, truncation unlinks, mirror creates, mirror batch
// writes, mirror GC. The primary is then killed at EVERY FailAfter(k) over
// the fault-free run's io_ops() range (so faults land mid-rotation and
// mid-ship too), faults are disarmed (shared storage survives the crash),
// the follower is promoted, and the promoted engine's match sets must be
// digest-equal to a brute-force oracle over exactly the acknowledged
// mutations. The promoted primary must also accept and durably log a new
// subscription, verified by recovering the replica files from scratch.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/segment.h"
#include "durability/shipping.h"
#include "durability/wal.h"
#include "geometry/query.h"
#include "sdi/subscription_engine.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

using durability::DurableEngine;
using durability::LogShipper;

constexpr Dim kNd = 3;

AttributeSchema UnitSchema() {
  AttributeSchema s;
  for (Dim d = 0; d < kNd; ++d) {
    s.AddAttribute("a" + std::to_string(d), 0.0, 1.0);
  }
  return s;
}

EngineOptions Opts() {
  EngineOptions o;
  o.index.reorg_period = 20;
  o.index.min_observation = 8;
  o.default_policy = MatchPolicy::kIntersecting;
  o.shards = 4;
  o.match_threads = 0;
  o.sharding = ShardingPolicy::kRange;
  return o;
}

DurabilityOptions DurOpts() {
  DurabilityOptions d;
  d.group_commit = true;
  d.checkpoint_every_mutations = 0;  // scripts checkpoint explicitly
  d.background_checkpoints = false;
  // Tiny segments: the scripts rotate, recycle and GC for real, and the
  // failover matrix lands faults inside those lifecycle ops.
  d.wal_segment_bytes = 256;
  d.wal_spare_segments = 1;
  return d;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Primary + replica file sets for one scenario.
struct Cluster {
  std::string wal;
  std::string ckpt;
  std::string replica_wal;
  std::string replica_ckpt;
  explicit Cluster(const std::string& tag)
      : wal(TempPath("failover_" + tag + ".wal")),
        ckpt(TempPath("failover_" + tag + ".ck")),
        replica_wal(TempPath("failover_" + tag + ".rwal")),
        replica_ckpt(TempPath("failover_" + tag + ".rck")) {}
  void Remove() const {
    durability::RemoveWalFiles(wal);
    durability::RemoveWalFiles(replica_wal);
    std::remove(ckpt.c_str());
    std::remove(replica_ckpt.c_str());
  }
  LogShipper::Options ShipOpts(SimDisk* disk) const {
    LogShipper::Options o;
    o.source_wal_base = wal;
    o.source_checkpoint_path = ckpt;
    o.replica_wal_base = replica_wal;
    o.replica_checkpoint_path = replica_ckpt;
    o.disk = disk;
    return o;
  }
};

std::vector<Box> Probes() {
  Rng rng(777);
  std::vector<Box> probes;
  for (int i = 0; i < 8; ++i) {
    probes.push_back(testutil::RandomBox(rng, kNd, 0.6f));
  }
  return probes;
}

std::vector<SubscriptionId> Oracle(const std::map<SubscriptionId, Box>& subs,
                                   const Box& probe) {
  Query q(probe, Relation::kIntersects);
  std::vector<SubscriptionId> out;
  for (const auto& [id, box] : subs) {
    if (q.Matches(box.view())) out.push_back(id);
  }
  return out;  // map order is ascending — already sorted
}

/// Match-set parity between `engine` and the `acked` oracle, via the
/// MatchBatch read path (what a follower actually serves).
void ExpectEngineParity(SubscriptionEngine* engine,
                        const std::map<SubscriptionId, Box>& acked,
                        const std::string& context) {
  ASSERT_EQ(engine->subscription_count(), acked.size()) << context;
  const std::vector<Box> probes = Probes();
  std::vector<Event> events;
  for (const Box& probe : probes) events.push_back(Event::Range(probe));
  MatchBatchResult result;
  engine->MatchBatch(Span<const Event>(events.data(), events.size()),
                     &result);
  ASSERT_EQ(result.matches.size(), probes.size()) << context;
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(result.matches[i], Oracle(acked, probes[i]))
        << context << ", probe " << i;
  }
}

/// Recovers a durable engine from `wal`/`ckpt` files and asserts parity.
void ExpectRecoveredParity(const std::string& wal, const std::string& ckpt,
                           const std::map<SubscriptionId, Box>& acked,
                           const std::string& context) {
  DurableEngine de;
  Status st;
  ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(), wal,
                                      ckpt, /*disk=*/nullptr, &de, &st))
      << context << ": " << st.message();
  ExpectEngineParity(de.engine.get(), acked, context);
}

void SubscribeSome(DurableEngine& de, Rng& rng, int n,
                   std::map<SubscriptionId, Box>* acked) {
  for (int i = 0; i < n; ++i) {
    const Box b = testutil::RandomBox(rng, kNd, 0.5f);
    const SubscriptionId id = de.engine->SubscribeBox(b);
    if (id != kInvalidObject) (*acked)[id] = b;
  }
}

// ---------------------------------------------------------------------------
// Shipping unit tests
// ---------------------------------------------------------------------------

TEST(LogShipping, FollowerTracksPrimaryAndServesReadOnly) {
  const Cluster c("track");
  c.Remove();
  Rng rng(11);
  std::map<SubscriptionId, Box> acked;

  DurableEngine primary;
  ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(), c.wal,
                                      c.ckpt, nullptr, &primary, nullptr));
  SubscribeSome(primary, rng, 20, &acked);

  Status st;
  std::unique_ptr<LogShipper> shipper = LogShipper::Create(
      UnitSchema(), Opts(), c.ShipOpts(nullptr), &st);
  ASSERT_NE(shipper, nullptr) << st.message();
  ASSERT_TRUE(shipper->ShipOnce().ok());

  ReplicationStats rs = shipper->stats();
  EXPECT_EQ(rs.cursor_lsn, primary.wal->durable_lsn());
  EXPECT_EQ(rs.lag_records, 0u);
  EXPECT_EQ(rs.ship_passes, 1u);
  EXPECT_EQ(rs.records_applied, 20u);
  EXPECT_GT(rs.segments_mirrored, 1u);  // 256-byte segments: many files
  EXPECT_GT(rs.bytes_shipped, 0u);
  EXPECT_FALSE(rs.promoted);
  ExpectEngineParity(shipper->engine(), acked, "after first pass");

  // Read-only: every mutation path refuses BEFORE allocating an id, so a
  // later promotion continues the primary's id space, not a forked one.
  SubscriptionEngine* follower = shipper->engine();
  EXPECT_EQ(follower->role(), SubscriptionEngine::EngineRole::kFollower);
  EXPECT_EQ(follower->SubscribeBox(Box::FullDomain(kNd)), kInvalidObject);
  std::vector<Box> batch(2, Box::FullDomain(kNd));
  std::vector<SubscriptionId> ids;
  follower->SubscribeBatch(Span<const Box>(batch.data(), batch.size()), &ids);
  EXPECT_TRUE(ids.empty());
  EXPECT_FALSE(follower->Unsubscribe(acked.begin()->first));
  EXPECT_EQ(follower->subscription_count(), acked.size());

  // Incremental: only the delta ships on the next pass.
  SubscribeSome(primary, rng, 10, &acked);
  ASSERT_TRUE(primary.engine->Unsubscribe(acked.begin()->first));
  acked.erase(acked.begin());
  ASSERT_TRUE(shipper->ShipOnce().ok());
  rs = shipper->stats();
  EXPECT_EQ(rs.ship_passes, 2u);
  EXPECT_EQ(rs.records_applied, 31u);
  EXPECT_EQ(rs.cursor_lsn, primary.wal->durable_lsn());
  ExpectEngineParity(shipper->engine(), acked, "after second pass");
  c.Remove();
}

TEST(LogShipping, MirrorFollowsSourceTruncationAndStaysBounded) {
  const Cluster c("gc");
  c.Remove();
  Rng rng(12);
  std::map<SubscriptionId, Box> acked;

  DurableEngine primary;
  ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(), c.wal,
                                      c.ckpt, nullptr, &primary, nullptr));
  std::unique_ptr<LogShipper> shipper =
      LogShipper::Create(UnitSchema(), Opts(), c.ShipOpts(nullptr), nullptr);
  ASSERT_NE(shipper, nullptr);

  SubscribeSome(primary, rng, 16, &acked);
  ASSERT_TRUE(shipper->ShipOnce().ok());
  const uint64_t mirrored = shipper->stats().segments_mirrored;
  ASSERT_GT(mirrored, 2u);

  // The primary checkpoints and truncates; the next pass copies the
  // covering image and unlinks the now-stale mirror segments.
  ASSERT_TRUE(primary.checkpointer->CheckpointNow());
  SubscribeSome(primary, rng, 4, &acked);
  ASSERT_TRUE(shipper->ShipOnce().ok());
  const ReplicationStats rs = shipper->stats();
  EXPECT_GT(rs.mirror_segments_unlinked, 0u);
  EXPECT_EQ(rs.checkpoint_catchups, 0u);  // cursor never fell behind
  EXPECT_LE(durability::ListSegmentFiles(c.replica_wal).size(),
            durability::ListSegmentFiles(c.wal).size());
  ExpectEngineParity(shipper->engine(), acked, "after mirror GC");
  c.Remove();
}

TEST(LogShipping, CheckpointCatchupWhenTruncationOutrunsCursor) {
  const Cluster c("catchup");
  c.Remove();
  Rng rng(13);
  std::map<SubscriptionId, Box> acked;

  DurableEngine primary;
  ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(), c.wal,
                                      c.ckpt, nullptr, &primary, nullptr));
  // Build state, unsubscribe some of it, checkpoint + truncate — all
  // BEFORE the follower ever ships: the oldest live record is now far past
  // a fresh cursor, so the log alone cannot bootstrap the follower. The
  // unsubscribes also prove the catch-up applies the image (which reflects
  // them), not a replay of surviving subscribe records (which would not).
  SubscribeSome(primary, rng, 16, &acked);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(primary.engine->Unsubscribe(acked.begin()->first));
    acked.erase(acked.begin());
  }
  ASSERT_TRUE(primary.checkpointer->CheckpointNow());
  SubscribeSome(primary, rng, 6, &acked);  // a live tail past the image

  std::unique_ptr<LogShipper> shipper =
      LogShipper::Create(UnitSchema(), Opts(), c.ShipOpts(nullptr), nullptr);
  ASSERT_NE(shipper, nullptr);
  ASSERT_TRUE(shipper->ShipOnce().ok());
  const ReplicationStats rs = shipper->stats();
  EXPECT_EQ(rs.checkpoint_catchups, 1u);
  EXPECT_EQ(rs.records_applied, 6u);  // only the tail came from the log
  EXPECT_EQ(rs.cursor_lsn, primary.wal->durable_lsn());
  ExpectEngineParity(shipper->engine(), acked, "after catch-up");
  EXPECT_EQ(shipper->engine()->role(),
            SubscriptionEngine::EngineRole::kFollower);
  c.Remove();
}

TEST(LogShipping, PromoteFlipsWarmFollowerToWritablePrimary) {
  const Cluster c("promote");
  c.Remove();
  Rng rng(14);
  std::map<SubscriptionId, Box> acked;
  SubscriptionId max_primary_id = 0;

  std::unique_ptr<LogShipper> shipper;
  SubscriptionEngine* warm = nullptr;
  {
    DurableEngine primary;
    ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(),
                                        c.wal, c.ckpt, nullptr, &primary,
                                        nullptr));
    SubscribeSome(primary, rng, 18, &acked);
    ASSERT_TRUE(primary.checkpointer->CheckpointNow());
    SubscribeSome(primary, rng, 5, &acked);
    max_primary_id = acked.rbegin()->first;
    // The follower tracks the live primary; the engine it built here is
    // the one promotion must keep (bootstrap may rebuild through a
    // checkpoint catch-up, so "warm" is captured after the pass).
    shipper = LogShipper::Create(UnitSchema(), Opts(), c.ShipOpts(nullptr),
                                 nullptr);
    ASSERT_NE(shipper, nullptr);
    ASSERT_TRUE(shipper->ShipOnce().ok());
    warm = shipper->engine();
  }  // primary gone; its files survive (shared storage)

  DurableEngine promoted;
  ASSERT_TRUE(shipper->Promote(DurOpts(), &promoted).ok());
  EXPECT_EQ(shipper->engine(), nullptr);
  EXPECT_TRUE(shipper->stats().promoted);
  // Warm promotion: the engine that was following IS the new primary.
  EXPECT_EQ(promoted.engine.get(), warm);
  EXPECT_EQ(promoted.engine->role(),
            SubscriptionEngine::EngineRole::kPrimary);
  ExpectEngineParity(promoted.engine.get(), acked, "promoted");

  // Promoting twice is refused, not replayed.
  DurableEngine again;
  EXPECT_EQ(shipper->Promote(DurOpts(), &again).code(),
            StatusCode::kFailedPrecondition);

  // The promoted primary accepts writes, continues the id space, and logs
  // them durably into the REPLICA files.
  const Box fresh_box = Box::FullDomain(kNd);
  const SubscriptionId fresh = promoted.engine->SubscribeBox(fresh_box);
  ASSERT_NE(fresh, kInvalidObject);
  EXPECT_GT(fresh, max_primary_id);
  acked[fresh] = fresh_box;
  ASSERT_TRUE(promoted.engine->Unsubscribe(acked.begin()->first));
  acked.erase(acked.begin());
  ASSERT_TRUE(promoted.checkpointer->CheckpointNow());
  SubscribeSome(promoted, rng, 3, &acked);
  ExpectEngineParity(promoted.engine.get(), acked, "promoted + writes");
}

TEST(LogShipping, PromotedPrimaryIsDurableInTheReplicaFiles) {
  // The previous test left the promoted node's state in c("promote")'s
  // replica files — but gtest tests must not order-depend, so this one
  // rebuilds the scenario from scratch and then recovers cold.
  const Cluster c("durable");
  c.Remove();
  Rng rng(15);
  std::map<SubscriptionId, Box> acked;
  {
    DurableEngine primary;
    ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(),
                                        c.wal, c.ckpt, nullptr, &primary,
                                        nullptr));
    SubscribeSome(primary, rng, 12, &acked);
  }
  std::unique_ptr<LogShipper> shipper =
      LogShipper::Create(UnitSchema(), Opts(), c.ShipOpts(nullptr), nullptr);
  ASSERT_NE(shipper, nullptr);
  {
    DurableEngine promoted;
    ASSERT_TRUE(shipper->Promote(DurOpts(), &promoted).ok());
    SubscribeSome(promoted, rng, 4, &acked);
    ASSERT_TRUE(promoted.engine->Unsubscribe(acked.begin()->first));
    acked.erase(acked.begin());
    ASSERT_TRUE(promoted.checkpointer->CheckpointNow());
  }  // clean shutdown of the new primary
  ExpectRecoveredParity(c.replica_wal, c.replica_ckpt, acked,
                        "replica restart");
  c.Remove();
}

// ---------------------------------------------------------------------------
// Failover crash-point matrix
// ---------------------------------------------------------------------------

/// The scripted life of a primary with a shipper attached: mutations,
/// explicit checkpoints, and ship passes all charge `disk`. Ship passes may
/// fail once a fault fires — shipping is retryable, and the promotion pass
/// after the crash is what must not lose anything.
void DriveFailoverScript(DurableEngine& de, LogShipper& shipper,
                         std::map<SubscriptionId, Box>* acked) {
  Rng rng(2027);
  for (int phase = 0; phase < 2; ++phase) {
    SubscribeSome(de, rng, 6, acked);
    std::vector<Box> batch;
    for (int i = 0; i < 4; ++i) {
      batch.push_back(testutil::RandomBox(rng, kNd, 0.5f));
    }
    std::vector<SubscriptionId> ids;
    de.engine->SubscribeBatch(Span<const Box>(batch.data(), batch.size()),
                              &ids);
    for (size_t i = 0; i < ids.size(); ++i) (*acked)[ids[i]] = batch[i];
    (void)shipper.ShipOnce();  // failure is part of the matrix
    for (int i = 0; i < 3 && !acked->empty(); ++i) {
      const SubscriptionId victim = acked->begin()->first;
      if (de.engine->Unsubscribe(victim)) acked->erase(victim);
    }
    de.checkpointer->CheckpointNow();  // failure is part of the matrix
    (void)shipper.ShipOnce();
  }
  SubscribeSome(de, rng, 3, acked);
}

TEST(FailoverMatrix, PromotionPreservesTheAcknowledgedPrefix) {
  // Dry run: one shared counting disk across primary WAL + checkpoints +
  // shipping; its io_ops() is the matrix size.
  uint64_t total_ops = 0;
  {
    const Cluster c("dryrun");
    c.Remove();
    SimDisk disk = SimDisk::Paper();
    std::map<SubscriptionId, Box> acked;
    std::unique_ptr<LogShipper> shipper =
        LogShipper::Create(UnitSchema(), Opts(), c.ShipOpts(&disk), nullptr);
    ASSERT_NE(shipper, nullptr);
    {
      DurableEngine primary;
      ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(),
                                          c.wal, c.ckpt, &disk, &primary,
                                          nullptr));
      DriveFailoverScript(primary, *shipper, &acked);
      total_ops = disk.io_ops();
      EXPECT_EQ(disk.faults_injected(), 0u);
    }  // clean primary shutdown
    {
      DurableEngine promoted;
      ASSERT_TRUE(shipper->Promote(DurOpts(), &promoted).ok());
      ExpectEngineParity(promoted.engine.get(), acked, "dry-run promote");
    }
    c.Remove();
  }
  ASSERT_GT(total_ops, 40u);  // flushes + lifecycle ops + ship batches

  for (uint64_t k = 0; k < total_ops; ++k) {
    const std::string tag = "k" + std::to_string(k);
    const Cluster c(tag);
    c.Remove();
    SimDisk disk = SimDisk::Paper();
    std::map<SubscriptionId, Box> acked;
    std::unique_ptr<LogShipper> shipper;
    {
      DurableEngine primary;
      ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(),
                                          c.wal, c.ckpt, &disk, &primary,
                                          nullptr));
      shipper = LogShipper::Create(UnitSchema(), Opts(), c.ShipOpts(&disk),
                                   nullptr);
      ASSERT_NE(shipper, nullptr);
      disk.FailAfter(k);
      DriveFailoverScript(primary, *shipper, &acked);
      EXPECT_GT(disk.faults_injected(), 0u) << "crash point " << k;
    }  // primary "crashes": destroyed with the fault still armed

    // Shared storage survives the crash; the disk itself works again.
    disk.DisarmFaults();
    {
      DurableEngine promoted;
      const Status st = shipper->Promote(DurOpts(), &promoted);
      ASSERT_TRUE(st.ok()) << "crash point " << k << ": " << st.message();
      ExpectEngineParity(promoted.engine.get(), acked,
                         "promote at crash point " + std::to_string(k));

      // The promoted primary accepts a new durable subscription...
      const Box fresh_box = Box::FullDomain(kNd);
      const SubscriptionId fresh = promoted.engine->SubscribeBox(fresh_box);
      ASSERT_NE(fresh, kInvalidObject) << "crash point " << k;
      acked[fresh] = fresh_box;
    }

    // ...that a from-scratch recovery of the replica files still has.
    ExpectRecoveredParity(c.replica_wal, c.replica_ckpt, acked,
                          "replica recovery at crash point " +
                              std::to_string(k));
    c.Remove();
  }
}

}  // namespace
}  // namespace accl
