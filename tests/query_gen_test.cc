#include <gtest/gtest.h>

#include "workload/generators.h"
#include "workload/query_gen.h"

namespace accl {
namespace {

Dataset SmallUniform(Dim nd = 8, size_t n = 20000) {
  UniformSpec spec;
  spec.nd = nd;
  spec.count = n;
  spec.seed = 21;
  return GenerateUniform(spec);
}

TEST(QueryGen, ExtentQueriesWellFormed) {
  auto qs = GenerateQueriesWithExtent(4, Relation::kIntersects, 100, 0.2, 3);
  ASSERT_EQ(qs.size(), 100u);
  for (const Query& q : qs) {
    EXPECT_EQ(q.rel, Relation::kIntersects);
    for (Dim d = 0; d < 4; ++d) {
      EXPECT_LE(q.box.lo(d), q.box.hi(d));
      EXPECT_NEAR(q.box.hi(d) - q.box.lo(d), 0.2f, 1e-5f);
      EXPECT_GE(q.box.lo(d), 0.0f);
      EXPECT_LE(q.box.hi(d), 1.0f);
    }
  }
}

TEST(QueryGen, ExtentClampedToDomain) {
  auto qs = GenerateQueriesWithExtent(2, Relation::kIntersects, 10, 5.0, 3);
  for (const Query& q : qs) {
    for (Dim d = 0; d < 2; ++d) {
      EXPECT_EQ(q.box.lo(d), 0.0f);
      EXPECT_EQ(q.box.hi(d), 1.0f);
    }
  }
}

TEST(QueryGen, UnconstrainedQueriesCoverSizes) {
  auto qs = GenerateUnconstrainedQueries(2, Relation::kIntersects, 2000, 5);
  double mean_len = 0;
  for (const Query& q : qs) mean_len += q.box.hi(0) - q.box.lo(0);
  mean_len /= qs.size();
  // |U1 - U2| has mean 1/3.
  EXPECT_NEAR(mean_len, 1.0 / 3.0, 0.02);
}

TEST(QueryGen, PointQueriesAreDegenerateEnclosures) {
  auto qs = GeneratePointQueries(3, 50, 11);
  ASSERT_EQ(qs.size(), 50u);
  for (const Query& q : qs) {
    EXPECT_EQ(q.rel, Relation::kEncloses);
    for (Dim d = 0; d < 3; ++d) EXPECT_EQ(q.box.lo(d), q.box.hi(d));
  }
}

TEST(QueryGen, MeasureSelectivityBruteForceAgreement) {
  Dataset ds = SmallUniform(2, 500);
  auto qs = GenerateQueriesWithExtent(2, Relation::kIntersects, 20, 0.3, 9);
  // With sample_cap >= n the measurement is exact.
  const double sel = MeasureSelectivity(ds, qs, ds.size());
  uint64_t matched = 0;
  for (const Query& q : qs) {
    for (size_t i = 0; i < ds.size(); ++i) matched += q.Matches(ds.box(i));
  }
  EXPECT_NEAR(sel, static_cast<double>(matched) / (20.0 * ds.size()), 1e-12);
}

TEST(QueryGen, MeasureSelectivityEmptyInputs) {
  Dataset ds;
  ds.nd = 2;
  EXPECT_EQ(MeasureSelectivity(ds, {}), 0.0);
}

struct CalibCase {
  Relation rel;
  double target;
  Dim nd;
};

class CalibrationTest : public ::testing::TestWithParam<CalibCase> {};

TEST_P(CalibrationTest, HitsTargetWithinFactor) {
  const CalibCase c = GetParam();
  // Enclosure selectivity is bounded above by the probability that a random
  // point falls inside an object (~mean_extent^nd), so its cases use low
  // dimensionality where the target is actually reachable.
  Dataset ds = SmallUniform(c.nd, 20000);
  QueryGenSpec spec;
  spec.rel = c.rel;
  spec.count = 64;
  spec.target_selectivity = c.target;
  spec.seed = 17;
  QueryWorkload wl = GenerateCalibrated(ds, spec);
  ASSERT_EQ(wl.queries.size(), 64u);
  EXPECT_GT(wl.achieved_selectivity, 0.0);
  // Calibration is statistical; accept a factor-3 band around the target.
  EXPECT_GT(wl.achieved_selectivity, c.target / 3.0);
  EXPECT_LT(wl.achieved_selectivity, c.target * 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    RelationsAndTargets, CalibrationTest,
    ::testing::Values(CalibCase{Relation::kIntersects, 5e-3, 8},
                      CalibCase{Relation::kIntersects, 5e-2, 8},
                      CalibCase{Relation::kIntersects, 5e-1, 8},
                      CalibCase{Relation::kContainedBy, 1e-2, 8},
                      CalibCase{Relation::kEncloses, 1e-3, 2}));

TEST(QueryGen, CalibrationMonotoneInTarget) {
  Dataset ds = SmallUniform(8, 10000);
  QueryGenSpec lo_spec, hi_spec;
  lo_spec.rel = hi_spec.rel = Relation::kIntersects;
  lo_spec.count = hi_spec.count = 16;
  lo_spec.target_selectivity = 1e-3;
  hi_spec.target_selectivity = 1e-1;
  const QueryWorkload lo = GenerateCalibrated(ds, lo_spec);
  const QueryWorkload hi = GenerateCalibrated(ds, hi_spec);
  EXPECT_LT(lo.extent, hi.extent);
  EXPECT_LT(lo.achieved_selectivity, hi.achieved_selectivity);
}

TEST(QueryGen, EnclosureCalibrationShrinksQueries) {
  // For enclosure, selectivity decreases with extent: small targets need
  // big query boxes and vice versa.
  Dataset ds = SmallUniform(4, 10000);
  QueryGenSpec strict, loose;
  strict.rel = loose.rel = Relation::kEncloses;
  strict.count = loose.count = 16;
  strict.target_selectivity = 1e-4;
  loose.target_selectivity = 5e-2;
  EXPECT_GT(GenerateCalibrated(ds, strict).extent,
            GenerateCalibrated(ds, loose).extent);
}

}  // namespace
}  // namespace accl
