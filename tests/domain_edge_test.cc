// Regression tests for the SignatureTable admit filter's domain edge cases:
// degenerate query boxes (lo == hi on some or all dimensions) stay on the
// in-domain fast path, boxes partially or entirely outside [0,1] take the
// dense fallback, and in every case AdaptiveIndex results must match
// SeqScan exactly and CollectAdmitted must equal brute-force AdmitsQuery.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/adaptive_index.h"
#include "core/signature_table.h"
#include "seqscan/seq_scan.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

constexpr Dim kNd = 5;

Box MakeBoxAll(float lo, float hi) {
  Box b(kNd);
  for (Dim d = 0; d < kNd; ++d) b.set(d, lo, hi);
  return b;
}

/// Builds an adapted index + seqscan over data touching the domain edges:
/// degenerate (point) objects, boundary-hugging boxes, interior boxes.
struct Rig {
  AdaptiveIndex idx;
  SeqScan ss;

  Rig() : idx(Config()), ss(kNd) {
    Rng rng(71);
    for (ObjectId id = 0; id < 4000; ++id) {
      Box b(kNd);
      for (Dim d = 0; d < kNd; ++d) {
        const double roll = rng.NextDouble();
        if (roll < 0.15) {
          const float x = rng.NextFloat();
          b.set(d, x, x);  // degenerate on this dimension
        } else if (roll < 0.30) {
          b.set(d, 0.0f, 0.2f * rng.NextFloat());  // pinned to the low edge
        } else if (roll < 0.45) {
          b.set(d, 1.0f - 0.2f * rng.NextFloat(), 1.0f);  // high edge
        } else {
          const float len = 0.3f * rng.NextFloat();
          const float start = (1.0f - len) * rng.NextFloat();
          b.set(d, start, start + len);
        }
      }
      idx.Insert(id, b.view());
      ss.Insert(id, b.view());
    }
    // Converge so refined signatures exist and the admit filter has real
    // rejection power before the edge-case probes run.
    std::vector<ObjectId> scratch;
    for (int i = 0; i < 600; ++i) {
      scratch.clear();
      idx.Execute(Query::Intersection(testutil::RandomBox(rng, kNd, 0.3f)),
                  &scratch);
    }
  }

  static AdaptiveConfig Config() {
    AdaptiveConfig cfg;
    cfg.nd = kNd;
    cfg.reorg_period = 50;
    cfg.min_observation = 8;
    return cfg;
  }

  void ExpectParity(const Query& q, const char* what) {
    EXPECT_EQ(testutil::RunQuery(idx, q), testutil::RunQuery(ss, q)) << what;
  }
};

TEST(DomainEdges, DegenerateQueryBoxesMatchSeqScan) {
  Rig rig;
  ASSERT_GT(rig.idx.cluster_count(), 1u);
  for (const Relation rel :
       {Relation::kIntersects, Relation::kContainedBy, Relation::kEncloses}) {
    // Fully degenerate (a point), interior and at both corners.
    rig.ExpectParity(Query(MakeBoxAll(0.5f, 0.5f), rel), "interior point");
    rig.ExpectParity(Query(MakeBoxAll(0.0f, 0.0f), rel), "origin corner");
    rig.ExpectParity(Query(MakeBoxAll(1.0f, 1.0f), rel), "far corner");
    // Degenerate on one dimension only.
    Box b = MakeBoxAll(0.2f, 0.8f);
    b.set(2, 0.5f, 0.5f);
    rig.ExpectParity(Query(b, rel), "one flat dimension");
    // Degenerate and pinned to an edge on one dimension.
    Box e = MakeBoxAll(0.1f, 0.9f);
    e.set(0, 1.0f, 1.0f);
    rig.ExpectParity(Query(e, rel), "flat at hi edge");
  }
}

TEST(DomainEdges, OutOfDomainQueryBoxesMatchSeqScan) {
  Rig rig;
  for (const Relation rel :
       {Relation::kIntersects, Relation::kContainedBy, Relation::kEncloses}) {
    rig.ExpectParity(Query(MakeBoxAll(-0.5f, -0.1f), rel), "entirely below");
    rig.ExpectParity(Query(MakeBoxAll(1.1f, 1.6f), rel), "entirely above");
    rig.ExpectParity(Query(MakeBoxAll(-0.3f, 0.4f), rel), "straddles low");
    rig.ExpectParity(Query(MakeBoxAll(0.7f, 1.3f), rel), "straddles high");
    rig.ExpectParity(Query(MakeBoxAll(-1.0f, 2.0f), rel), "covers domain");
    // Mixed: one dimension out of domain, the rest inside.
    Box m = MakeBoxAll(0.3f, 0.6f);
    m.set(1, -0.2f, 0.1f);
    rig.ExpectParity(Query(m, rel), "one dim below");
    Box h = MakeBoxAll(0.3f, 0.6f);
    h.set(4, 0.95f, 1.05f);
    rig.ExpectParity(Query(h, rel), "one dim above");
    // Out of domain *and* degenerate.
    rig.ExpectParity(Query(MakeBoxAll(1.25f, 1.25f), rel),
                     "degenerate above domain");
  }
}

/// Division-like refined signature: narrows `refined_dims` leading
/// dimensions to one 1/f-width piece chosen by the rng.
Signature RandomRefinedSignature(Rng& rng, Dim refined_dims, uint32_t f) {
  Signature sig(kNd);
  for (Dim d = 0; d < refined_dims; ++d) {
    const uint32_t ps = static_cast<uint32_t>(rng.NextBelow(f));
    const uint32_t pe = static_cast<uint32_t>(rng.NextBelow(f));
    const float w = 1.0f / static_cast<float>(f);
    VarInterval start{ps * w, (ps + 1) * w, ps + 1 == f};
    VarInterval end{pe * w, (pe + 1) * w, pe + 1 == f};
    sig.set(d, start, end);
  }
  return sig;
}

TEST(DomainEdges, CollectAdmittedEqualsBruteForceAdmitsQuery) {
  Rng rng(13);
  SignatureTable table(kNd);
  std::vector<std::pair<ClusterId, Signature>> sigs;
  for (ClusterId id = 0; id < 60; ++id) {
    Signature s = RandomRefinedSignature(
        rng, static_cast<Dim>(rng.NextBelow(kNd + 1)), 4);
    table.Add(id, s);
    sigs.emplace_back(id, std::move(s));
  }
  ASSERT_EQ(table.size(), sigs.size());

  const auto check = [&](const Query& q, const char* what) {
    std::vector<ClusterId> got;
    table.CollectAdmitted(q, &got);
    std::sort(got.begin(), got.end());
    std::vector<ClusterId> expect;
    for (const auto& [id, sig] : sigs) {
      if (sig.AdmitsQuery(q)) expect.push_back(id);
    }
    EXPECT_EQ(got, expect) << what << " rel=" << static_cast<int>(q.rel);
  };

  for (const Relation rel :
       {Relation::kIntersects, Relation::kContainedBy, Relation::kEncloses}) {
    for (int i = 0; i < 200; ++i) {
      check(Query(testutil::RandomBox(rng, kNd, 0.6f), rel), "in-domain");
    }
    // Adversarial fixed probes on both paths.
    check(Query(MakeBoxAll(0.0f, 0.0f), rel), "zero corner");
    check(Query(MakeBoxAll(1.0f, 1.0f), rel), "one corner");
    check(Query(MakeBoxAll(0.25f, 0.25f), rel), "piece boundary point");
    check(Query(MakeBoxAll(-0.5f, -0.2f), rel), "below domain");
    check(Query(MakeBoxAll(1.01f, 1.5f), rel), "above domain");
    check(Query(MakeBoxAll(-0.1f, 1.1f), rel), "superset of domain");
    for (int i = 0; i < 100; ++i) {
      // Random boxes shifted partially outside the domain.
      Box b = testutil::RandomBox(rng, kNd, 0.5f);
      Box shifted(kNd);
      for (Dim d = 0; d < kNd; ++d) {
        const float off = (rng.NextFloat() - 0.5f);
        shifted.set(d, b.lo(d) + off, b.hi(d) + off);
      }
      check(Query(shifted, rel), "shifted");
    }
  }
}

}  // namespace
}  // namespace accl
