// Cross-backend parity for the runtime-dispatched verify kernels.
//
// Every registered backend must be indistinguishable from the scalar
// reference on any input: byte-identical match sets (same ids, same order)
// and identical early-exit dims accounting — the dims contract on
// VerifyBackend promises logical reads, so a wider probe may never change
// the count. The fuzzer sweeps dimensionalities chosen to stress every
// chunk/tail split (below one chunk, exactly one chunk, chunk+1 float,
// unaligned tails) and batch sizes around the 64-record block boundary,
// plus degenerate point queries and boundary-touching coordinates.
//
// Also covered here: FilterSlotsDense/Sparse parity (the SignatureTable
// seam), registry selection (widest supported), the ACCL_FORCE_BACKEND env
// pin, the AdaptiveConfig::verify_backend request, and ValidateOptions'
// rejection of unknown backend names.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/adaptive_index.h"
#include "kernels/backend_registry.h"
#include "sdi/subscription_engine.h"
#include "storage/slot_array.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/query_gen.h"

namespace accl {
namespace {

using kernels::BackendRegistry;
using kernels::VerifyBackend;

constexpr Relation kRelations[] = {Relation::kIntersects,
                                   Relation::kContainedBy,
                                   Relation::kEncloses};

const VerifyBackend* Scalar() {
  const VerifyBackend* s = BackendRegistry::Instance().Find("scalar");
  EXPECT_NE(s, nullptr);
  return s;
}

struct KernelResult {
  std::vector<ObjectId> matches;
  uint64_t dims = 0;
  size_t returned = 0;
};

KernelResult Run(const VerifyBackend& b, const SlotArray& a,
                 const BatchQuery& bq) {
  KernelResult r;
  r.returned = b.VerifyBatch(a.coords_data(), a.ids().data(), a.size(), bq,
                             &r.matches, &r.dims);
  return r;
}

void ExpectBackendParity(const SlotArray& a, const Box& q, Relation rel) {
  const BatchQuery bq(q.view(), rel);
  const KernelResult ref = Run(*Scalar(), a, bq);
  EXPECT_EQ(ref.returned, ref.matches.size());
  for (const VerifyBackend* b : BackendRegistry::Instance().All()) {
    const KernelResult got = Run(*b, a, bq);
    EXPECT_EQ(got.matches, ref.matches)
        << b->name() << " match set diverged, " << RelationName(rel)
        << " nd=" << a.dims() << " n=" << a.size();
    EXPECT_EQ(got.dims, ref.dims)
        << b->name() << " dims accounting diverged, " << RelationName(rel)
        << " nd=" << a.dims() << " n=" << a.size();
    EXPECT_EQ(got.returned, ref.returned) << b->name();
  }
}

TEST(KernelParity, RandomBatchesAllBackends) {
  Rng rng(101);
  // nd values stressing every chunk/tail split of the 16-float probe:
  // whole record below one chunk (nd<8), exactly one chunk (8), chunk+tail
  // (15,17), multi-chunk (16,31,33,40).
  for (Dim nd : {1u, 2u, 3u, 5u, 7u, 8u, 15u, 16u, 17u, 31u, 33u, 40u}) {
    SlotArray a(nd);
    for (ObjectId id = 0; id < 300; ++id) {
      a.Append(id, testutil::RandomBox(rng, nd, 0.5f).view());
    }
    for (int t = 0; t < 12; ++t) {
      const Box q = testutil::RandomBox(rng, nd, 0.8f);
      for (Relation rel : kRelations) ExpectBackendParity(a, q, rel);
    }
  }
}

TEST(KernelParity, BlockBoundarySizes) {
  Rng rng(202);
  const Dim nd = 9;  // one full chunk + 2-float tail
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 130u}) {
    SlotArray a(nd);
    for (ObjectId id = 0; id < n; ++id) {
      a.Append(id, testutil::RandomBox(rng, nd, 0.4f).view());
    }
    for (int t = 0; t < 6; ++t) {
      const Box q = testutil::RandomBox(rng, nd, 0.9f);
      for (Relation rel : kRelations) ExpectBackendParity(a, q, rel);
    }
  }
}

TEST(KernelParity, DegenerateAndBoundaryTouching) {
  Rng rng(303);
  for (Dim nd : {2u, 8u, 16u, 19u}) {
    SlotArray a(nd);
    // Random boxes plus constructions that put coordinates exactly on the
    // query faces: equality must stay "satisfied" (closed intervals) on
    // every backend — ordered-quiet SIMD compares and scalar > / < must
    // agree on ties.
    for (ObjectId id = 0; id < 150; ++id) {
      a.Append(id, testutil::RandomBox(rng, nd, 0.6f).view());
    }
    Box q(nd);
    for (Dim d = 0; d < nd; ++d) q.set(d, 0.25f, 0.75f);
    Box same = q;
    a.Append(1000, same.view());
    Box touch(nd);
    for (Dim d = 0; d < nd; ++d) touch.set(d, 0.75f, 1.0f);
    a.Append(1001, touch.view());
    for (Relation rel : kRelations) ExpectBackendParity(a, q, rel);

    // Zero-extent (point) queries — the point-enclosing case.
    for (int t = 0; t < 8; ++t) {
      Box p(nd);
      for (Dim d = 0; d < nd; ++d) {
        const float x = rng.NextFloat();
        p.set(d, x, x);
      }
      for (Relation rel : kRelations) ExpectBackendParity(a, p, rel);
    }
  }
}

TEST(KernelParity, FilterSlotsDenseAndSparse) {
  Rng rng(404);
  const VerifyBackend* ref = Scalar();
  for (size_t n : {1u, 5u, 7u, 8u, 15u, 16u, 17u, 64u, 100u, 333u}) {
    std::vector<float> le(n), ge(n);
    for (size_t s = 0; s < n; ++s) {
      le[s] = rng.NextFloat();
      ge[s] = rng.NextFloat();
    }
    // Sprinkle exact-equality entries so ties exercise <= / >= edges.
    for (size_t s = 0; s < n; s += 3) le[s] = 0.5f;
    for (size_t s = 0; s < n; s += 4) ge[s] = 0.5f;
    for (int t = 0; t < 10; ++t) {
      const float le_b = (t == 0) ? 0.5f : rng.NextFloat();
      const float ge_b = (t == 1) ? 0.5f : rng.NextFloat();

      std::vector<uint32_t> expect(n), got(n);
      const size_t ecount =
          ref->FilterSlotsDense(le.data(), ge.data(), le_b, ge_b, n,
                                expect.data());
      for (const VerifyBackend* b : BackendRegistry::Instance().All()) {
        const size_t gcount = b->FilterSlotsDense(le.data(), ge.data(), le_b,
                                                  ge_b, n, got.data());
        ASSERT_EQ(gcount, ecount) << b->name() << " dense n=" << n;
        for (size_t i = 0; i < ecount; ++i) {
          ASSERT_EQ(got[i], expect[i]) << b->name() << " dense slot order";
        }
      }

      // Sparse pass over a random subset (strictly ascending slots).
      std::vector<uint32_t> in;
      for (size_t s = 0; s < n; ++s) {
        if (rng.NextFloat() < 0.4f) in.push_back(static_cast<uint32_t>(s));
      }
      std::vector<uint32_t> sexpect(in.size()), sgot(in.size());
      const size_t scount =
          ref->FilterSlotsSparse(le.data(), ge.data(), le_b, ge_b, in.data(),
                                 in.size(), sexpect.data());
      for (const VerifyBackend* b : BackendRegistry::Instance().All()) {
        const size_t c = b->FilterSlotsSparse(le.data(), ge.data(), le_b,
                                              ge_b, in.data(), in.size(),
                                              sgot.data());
        ASSERT_EQ(c, scount) << b->name() << " sparse n=" << in.size();
        for (size_t i = 0; i < scount; ++i) {
          ASSERT_EQ(sgot[i], sexpect[i]) << b->name() << " sparse slot order";
        }
      }
    }
  }
}

TEST(KernelRegistry, ScalarAlwaysRegisteredAndWidestSelected) {
  const auto& reg = BackendRegistry::Instance();
  ASSERT_NE(reg.Find("scalar"), nullptr);
  ASSERT_FALSE(reg.All().empty());

  ::unsetenv("ACCL_FORCE_BACKEND");
  const VerifyBackend* resolved = reg.Resolve("");
  ASSERT_NE(resolved, nullptr);
  for (const VerifyBackend* b : reg.All()) {
    EXPECT_GE(resolved->vector_width_floats(), b->vector_width_floats())
        << "Resolve(\"\") must pick the widest registered backend";
  }
#if defined(ACCL_KERNEL_HAVE_AVX512)
  if (reg.host().avx512f) {
    EXPECT_STREQ(resolved->name(), "avx512");
  }
#endif
#if defined(ACCL_KERNEL_HAVE_AVX2)
  if (reg.host().avx2 && !reg.host().avx512f) {
    EXPECT_STREQ(resolved->name(), "avx2");
  }
#endif

  // Every registered backend claims support on this host (registration
  // filtered on the CPUID probe).
  for (const VerifyBackend* b : reg.All()) {
    EXPECT_TRUE(b->SupportedOnHost(reg.host())) << b->name();
  }
}

TEST(KernelRegistry, EnvPinOverridesConfigAndUnknownFallsBack) {
  const auto& reg = BackendRegistry::Instance();
  ::setenv("ACCL_FORCE_BACKEND", "scalar", 1);
  std::string note;
  const VerifyBackend* pinned = reg.Resolve("", &note);
  ASSERT_NE(pinned, nullptr);
  EXPECT_STREQ(pinned->name(), "scalar");
  EXPECT_NE(note.find("ACCL_FORCE_BACKEND"), std::string::npos);
  // Env beats an explicit config request.
  const VerifyBackend* beat = reg.Resolve("sse2");
  if (reg.Find("sse2") != nullptr) {
    ASSERT_NE(beat, nullptr);
    EXPECT_STREQ(beat->name(), "scalar");
  }

  // An unknown env name warns and falls through to normal resolution.
  ::setenv("ACCL_FORCE_BACKEND", "gpu-of-the-future", 1);
  const VerifyBackend* fallback = reg.Resolve("");
  ASSERT_NE(fallback, nullptr);
  const VerifyBackend* requested = reg.Resolve("scalar");
  ASSERT_NE(requested, nullptr);
  EXPECT_STREQ(requested->name(), "scalar");
  ::unsetenv("ACCL_FORCE_BACKEND");

  // Unknown *config* names are the caller's error: nullptr, no fallback.
  EXPECT_EQ(reg.Resolve("gpu-of-the-future"), nullptr);
}

// End-to-end: the same workload through AdaptiveIndex pinned to each
// backend must return identical answers with bit-identical metrics — the
// cost model sees the same dims_checked regardless of kernel width, so the
// clustering decisions (and thus the structure) cannot diverge by backend.
TEST(KernelParity, AdaptiveIndexPinnedBackendsAgree) {
  ::unsetenv("ACCL_FORCE_BACKEND");
  const auto& reg = BackendRegistry::Instance();
  const Dim nd = 16;
  UniformSpec spec;
  spec.nd = nd;
  spec.count = 2000;
  spec.seed = 505;
  const Dataset ds = GenerateUniform(spec);
  const std::vector<Query> queries =
      GenerateQueriesWithExtent(nd, Relation::kIntersects, 300, 0.35, 606);

  struct Outcome {
    std::vector<std::vector<ObjectId>> results;
    std::vector<QueryMetrics> metrics;
    size_t clusters;
  };
  auto run = [&](const std::string& backend) {
    AdaptiveConfig cfg;
    cfg.nd = nd;
    cfg.reorg_period = 64;
    cfg.min_observation = 16;
    cfg.verify_backend = backend;
    AdaptiveIndex idx(cfg);
    EXPECT_EQ(std::string(idx.verify_kernel().backend), backend);
    testutil::Load(idx, ds);
    Outcome o;
    for (const Query& q : queries) {
      QueryMetrics m;
      o.results.push_back(testutil::RunQuery(idx, q, &m));
      o.metrics.push_back(m);
    }
    o.clusters = idx.cluster_count();
    return o;
  };

  const Outcome ref = run("scalar");
  for (const VerifyBackend* b : reg.All()) {
    if (std::string(b->name()) == "scalar") continue;
    const Outcome got = run(b->name());
    EXPECT_EQ(got.clusters, ref.clusters) << b->name();
    ASSERT_EQ(got.results.size(), ref.results.size());
    for (size_t i = 0; i < ref.results.size(); ++i) {
      EXPECT_EQ(got.results[i], ref.results[i]) << b->name() << " q#" << i;
      EXPECT_EQ(got.metrics[i].dims_checked, ref.metrics[i].dims_checked)
          << b->name() << " q#" << i;
      EXPECT_EQ(got.metrics[i].objects_verified,
                ref.metrics[i].objects_verified)
          << b->name() << " q#" << i;
      EXPECT_EQ(got.metrics[i].sim_time_ms, ref.metrics[i].sim_time_ms)
          << b->name() << " q#" << i << " (bit-identical cost model)";
    }
  }
}

TEST(KernelRegistry, ValidateOptionsRejectsUnknownBackend) {
  AttributeSchema schema;
  schema.AddAttribute("x", 0, 100);
  schema.AddAttribute("y", 0, 100);

  EngineOptions opts;
  opts.index.verify_backend = "not-a-backend";
  const Status bad = SubscriptionEngine::ValidateOptions(schema, opts);
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("verify_backend"), std::string::npos);
  EXPECT_NE(bad.message().find("scalar"), std::string::npos)
      << "error should list the registered backends";

  opts.index.verify_backend = "scalar";
  EXPECT_TRUE(SubscriptionEngine::ValidateOptions(schema, opts).ok());
  opts.index.verify_backend.clear();
  EXPECT_TRUE(SubscriptionEngine::ValidateOptions(schema, opts).ok());
}

}  // namespace
}  // namespace accl
