// Constructor-time configuration validation (api/status.h +
// SubscriptionEngine::ValidateOptions/Create): invalid engine configs must
// surface as a descriptive Status from the validating factory — or an
// immediate, message-carrying abort from the constructor — never as a
// crash deep inside the first Subscribe/Match that happens to exercise
// the bad knob.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sdi/subscription_engine.h"

namespace accl {
namespace {

AttributeSchema SchemaWithDims(Dim nd) {
  AttributeSchema s;
  for (Dim d = 0; d < nd; ++d) {
    s.AddAttribute("a" + std::to_string(d), 0.0, 1.0);
  }
  return s;
}

TEST(EngineConfig, ValidOptionsCreateAWorkingEngine) {
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.match_threads = 0;  // documented valid: caller-thread execution
  Status st;
  auto engine = SubscriptionEngine::Create(SchemaWithDims(3), o, &st);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_NE(engine, nullptr);
  const SubscriptionId id =
      engine->SubscribeBox(Box::FullDomain(3));
  EXPECT_NE(id, kInvalidObject);
  std::vector<SubscriptionId> out;
  engine->Match(Event::Point(std::vector<float>(3, 0.5f)), &out);
  EXPECT_EQ(out, std::vector<SubscriptionId>{id});
}

TEST(EngineConfig, CreateWithoutStatusPointerStillWorks) {
  EngineOptions o;
  o.shards = 1;
  EXPECT_NE(SubscriptionEngine::Create(SchemaWithDims(2), o), nullptr);
  o.shards = 0;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o), nullptr);
}

TEST(EngineConfig, ZeroShardsRejected) {
  EngineOptions o;
  o.shards = 0;
  Status st;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shards"), std::string::npos);
}

TEST(EngineConfig, RangeNeedsAtLeastTwoShards) {
  EngineOptions o;
  o.shards = 1;
  o.sharding = ShardingPolicy::kRange;
  Status st;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("kRange"), std::string::npos);
}

TEST(EngineConfig, RangeRejectsCustomPartitioner) {
  // Silently letting the partitioner win would disable routing and
  // rebalancing behind the caller's back; the combination is an error.
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.partitioner = [](SubscriptionId id, const Box&, uint32_t k) {
    return static_cast<uint32_t>(id) % k;
  };
  Status st;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("partitioner"), std::string::npos);
}

TEST(EngineConfig, DefaultConstructedPartitionerMeansUnset) {
  // An empty std::function is the documented "use `sharding`" value, not a
  // null callable to crash on during the first Subscribe.
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.partitioner = ShardPartitionFn();        // explicit empty
  Status st;
  auto engine = SubscriptionEngine::Create(SchemaWithDims(2), o, &st);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(engine->range_routed());
}

TEST(EngineConfig, BoundaryArraySizeAndOrderValidated) {
  EngineOptions o;
  o.shards = 5;  // needs exactly 3 interior fences
  o.sharding = ShardingPolicy::kRange;
  Status st;

  o.range_boundaries = {0.25f, 0.5f};  // wrong size
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());

  o.range_boundaries = {0.25f, 0.5f, 0.5f};  // not strictly ascending
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ascending"), std::string::npos);

  o.range_boundaries = {0.25f, 0.5f, 0.75f};
  EXPECT_NE(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_TRUE(st.ok());
}

TEST(EngineConfig, EmptySchemaRejected) {
  Status st;
  EXPECT_EQ(SubscriptionEngine::Create(AttributeSchema(), EngineOptions{},
                                       &st),
            nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("attribute"), std::string::npos);
}

TEST(EngineConfig, IndexKnobsValidated) {
  EngineOptions o;
  Status st;
  o.index.division_factor = 1;  // clustering function cannot divide by 1
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("division_factor"), std::string::npos);

  o = EngineOptions{};
  o.index.max_clusters = 0;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
}

TEST(EngineConfig, RebalanceTriggerRatioValidated) {
  EngineOptions o;
  Status st;
  o.rebalance_trigger_ratio = 0.0;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  o.rebalance_trigger_ratio = std::nan("");
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
}

TEST(EngineConfig, ValidateOptionsIsSideEffectFree) {
  EngineOptions o;
  o.shards = 3;
  o.sharding = ShardingPolicy::kRange;
  const AttributeSchema schema = SchemaWithDims(2);
  EXPECT_TRUE(SubscriptionEngine::ValidateOptions(schema, o).ok());
  o.shards = 0;
  EXPECT_FALSE(SubscriptionEngine::ValidateOptions(schema, o).ok());
}

#if GTEST_HAS_DEATH_TEST
TEST(EngineConfigDeathTest, ConstructorAbortsWithDiagnosticOnBadConfig) {
  EngineOptions o;
  o.shards = 1;
  o.sharding = ShardingPolicy::kRange;
  EXPECT_DEATH(SubscriptionEngine(SchemaWithDims(2), o),
               "invalid configuration");
}
#endif

}  // namespace
}  // namespace accl
