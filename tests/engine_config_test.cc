// Constructor-time configuration validation (api/status.h +
// SubscriptionEngine::ValidateOptions/Create): invalid engine configs must
// surface as a descriptive Status from the validating factory — or an
// immediate, message-carrying abort from the constructor — never as a
// crash deep inside the first Subscribe/Match that happens to exercise
// the bad knob.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sdi/subscription_engine.h"

namespace accl {
namespace {

AttributeSchema SchemaWithDims(Dim nd) {
  AttributeSchema s;
  for (Dim d = 0; d < nd; ++d) {
    s.AddAttribute("a" + std::to_string(d), 0.0, 1.0);
  }
  return s;
}

TEST(EngineConfig, ValidOptionsCreateAWorkingEngine) {
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.match_threads = 0;  // documented valid: caller-thread execution
  Status st;
  auto engine = SubscriptionEngine::Create(SchemaWithDims(3), o, &st);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_NE(engine, nullptr);
  const SubscriptionId id =
      engine->SubscribeBox(Box::FullDomain(3));
  EXPECT_NE(id, kInvalidObject);
  std::vector<SubscriptionId> out;
  engine->Match(Event::Point(std::vector<float>(3, 0.5f)), &out);
  EXPECT_EQ(out, std::vector<SubscriptionId>{id});
}

TEST(EngineConfig, CreateWithoutStatusPointerStillWorks) {
  EngineOptions o;
  o.shards = 1;
  EXPECT_NE(SubscriptionEngine::Create(SchemaWithDims(2), o), nullptr);
  o.shards = 0;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o), nullptr);
}

TEST(EngineConfig, ZeroShardsRejected) {
  EngineOptions o;
  o.shards = 0;
  Status st;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shards"), std::string::npos);
}

TEST(EngineConfig, RangeNeedsAtLeastTwoShards) {
  EngineOptions o;
  o.shards = 1;
  o.sharding = ShardingPolicy::kRange;
  Status st;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("kRange"), std::string::npos);
}

TEST(EngineConfig, RangeRejectsCustomPartitioner) {
  // Silently letting the partitioner win would disable routing and
  // rebalancing behind the caller's back; the combination is an error.
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.partitioner = [](SubscriptionId id, const Box&, uint32_t k) {
    return static_cast<uint32_t>(id) % k;
  };
  Status st;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("partitioner"), std::string::npos);
}

TEST(EngineConfig, DefaultConstructedPartitionerMeansUnset) {
  // An empty std::function is the documented "use `sharding`" value, not a
  // null callable to crash on during the first Subscribe.
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.partitioner = ShardPartitionFn();        // explicit empty
  Status st;
  auto engine = SubscriptionEngine::Create(SchemaWithDims(2), o, &st);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(engine->range_routed());
}

TEST(EngineConfig, BoundaryArraySizeAndOrderValidated) {
  EngineOptions o;
  o.shards = 5;  // needs exactly 3 interior fences
  o.sharding = ShardingPolicy::kRange;
  Status st;

  o.range_boundaries = {0.25f, 0.5f};  // wrong size
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());

  o.range_boundaries = {0.25f, 0.5f, 0.5f};  // not strictly ascending
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ascending"), std::string::npos);

  o.range_boundaries = {0.25f, 0.5f, 0.75f};
  EXPECT_NE(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_TRUE(st.ok());
}

TEST(EngineConfig, EmptySchemaRejected) {
  Status st;
  EXPECT_EQ(SubscriptionEngine::Create(AttributeSchema(), EngineOptions{},
                                       &st),
            nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("attribute"), std::string::npos);
}

TEST(EngineConfig, IndexKnobsValidated) {
  EngineOptions o;
  Status st;
  o.index.division_factor = 1;  // clustering function cannot divide by 1
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("division_factor"), std::string::npos);

  o = EngineOptions{};
  o.index.max_clusters = 0;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
}

TEST(EngineConfig, RebalanceTriggerRatioValidated) {
  EngineOptions o;
  Status st;
  o.rebalance_trigger_ratio = 0.0;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  o.rebalance_trigger_ratio = std::nan("");
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(2), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
}

TEST(EngineConfig, ValidateOptionsIsSideEffectFree) {
  EngineOptions o;
  o.shards = 3;
  o.sharding = ShardingPolicy::kRange;
  const AttributeSchema schema = SchemaWithDims(2);
  EXPECT_TRUE(SubscriptionEngine::ValidateOptions(schema, o).ok());
  o.shards = 0;
  EXPECT_FALSE(SubscriptionEngine::ValidateOptions(schema, o).ok());
}

TEST(EngineConfig, AdaptiveRoutingRequiresRangeSharding) {
  // Any adaptive knob — not just the master switch — implies a fence
  // dimension to adapt, which only kRange has.
  Status st;
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kHashId;
  o.adaptive.enabled = true;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(3), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("kRange"), std::string::npos);

  o = EngineOptions{};
  o.shards = 4;
  o.sharding = ShardingPolicy::kHashId;
  o.adaptive.overflow_split_shards = 2;  // split capacity alone also counts
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(3), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overflow_split_shards"), std::string::npos);

  // A custom partitioner disables range routing, so it conflicts too.
  o = EngineOptions{};
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.partitioner = [](SubscriptionId id, const Box&, uint32_t k) {
    return static_cast<uint32_t>(id) % k;
  };
  o.adaptive.enabled = true;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(3), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
}

TEST(EngineConfig, AdaptiveDimensionsMustNameSchemaDimensions) {
  Status st;
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.adaptive.fence_dim = 3;  // schema has dims 0..2
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(3), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("fence_dim"), std::string::npos);

  o.adaptive.fence_dim = 2;  // valid, even with the advisor off
  EXPECT_NE(SubscriptionEngine::Create(SchemaWithDims(3), o, &st), nullptr);
  EXPECT_TRUE(st.ok());

  o.adaptive.split_dim = 5;
  EXPECT_EQ(SubscriptionEngine::Create(SchemaWithDims(3), o, &st), nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("split_dim"), std::string::npos);
}

TEST(EngineConfig, AdaptiveWindowAndThresholdKnobsValidated) {
  const AttributeSchema schema = SchemaWithDims(3);
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.adaptive.enabled = true;
  ASSERT_TRUE(SubscriptionEngine::ValidateOptions(schema, o).ok());

  o.adaptive.sample_window = 0;  // would evaluate routing on every event
  Status st = SubscriptionEngine::ValidateOptions(schema, o);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sample_window"), std::string::npos);
  o.adaptive.sample_window = 4096;

  // A switch threshold <= 1 lets estimation noise flip the fence
  // dimension every window; NaN must not sneak through a < comparison.
  for (const double bad : {1.0, 0.5, std::nan("")}) {
    o.adaptive.switch_threshold = bad;
    st = SubscriptionEngine::ValidateOptions(schema, o);
    EXPECT_FALSE(st.ok()) << bad;
    EXPECT_NE(st.message().find("switch_threshold"), std::string::npos);
  }
  o.adaptive.switch_threshold = 1.5;

  for (const double bad : {0.0, -0.25, 1.5, std::nan("")}) {
    o.adaptive.split_straddler_threshold = bad;
    EXPECT_FALSE(SubscriptionEngine::ValidateOptions(schema, o).ok()) << bad;
  }
  o.adaptive.split_straddler_threshold = 0.25;

  o.adaptive.split_patience = 0;
  st = SubscriptionEngine::ValidateOptions(schema, o);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("split_patience"), std::string::npos);
  o.adaptive.split_patience = 2;
  EXPECT_TRUE(SubscriptionEngine::ValidateOptions(schema, o).ok());
}

TEST(EngineConfig, DisabledAdaptiveIgnoresWindowKnobs) {
  // The window/threshold knobs only matter when the advisor runs; bogus
  // values with enabled=false must not block engine creation.
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.adaptive.enabled = false;
  o.adaptive.sample_window = 0;
  o.adaptive.switch_threshold = 0.0;
  EXPECT_TRUE(
      SubscriptionEngine::ValidateOptions(SchemaWithDims(3), o).ok());
}

#if GTEST_HAS_DEATH_TEST
TEST(EngineConfigDeathTest, ConstructorAbortsWithDiagnosticOnBadConfig) {
  EngineOptions o;
  o.shards = 1;
  o.sharding = ShardingPolicy::kRange;
  EXPECT_DEATH(SubscriptionEngine(SchemaWithDims(2), o),
               "invalid configuration");
}
#endif

}  // namespace
}  // namespace accl
