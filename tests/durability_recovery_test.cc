// Crash recovery tests for the durable SDI engine.
//
// The centerpiece is the crash-point matrix: a deterministic mutation
// script (singles, batches, unsubscribes, checkpoints) is driven through a
// durable engine with SimDisk::FailAfter armed at EVERY logical I/O op
// index the fault-free run performs — WAL flushes, checkpoint blob writes,
// directory flips, WAL truncations. After each injected crash the files
// are reopened and the engine recovered; its match sets must be
// digest-equal to a brute-force oracle over exactly the mutations the
// crashed run acknowledged. The un-acknowledged tail may be absent (it is,
// by construction: a failed flush never wrote the record), but never
// corrupt and never resurrected.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "geometry/query.h"
#include "sdi/subscription_engine.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

constexpr Dim kNd = 3;

AttributeSchema UnitSchema() {
  AttributeSchema s;
  for (Dim d = 0; d < kNd; ++d) {
    s.AddAttribute("a" + std::to_string(d), 0.0, 1.0);
  }
  return s;
}

EngineOptions Opts() {
  EngineOptions o;
  o.index.reorg_period = 20;
  o.index.min_observation = 8;
  o.default_policy = MatchPolicy::kIntersecting;
  o.shards = 4;
  o.match_threads = 0;
  o.sharding = ShardingPolicy::kRange;
  return o;
}

DurabilityOptions DurOpts() {
  DurabilityOptions d;
  d.group_commit = true;
  d.checkpoint_every_mutations = 0;  // the script checkpoints explicitly
  d.background_checkpoints = false;  // deterministic op counts
  // Tiny segments so the script's flushes rotate the WAL many times and
  // its checkpoints actually drop (and recycle) segments: the crash-point
  // matrix then lands faults inside rotation, recycling and segment GC,
  // not just inside flushes and checkpoint writes.
  d.wal_segment_bytes = 256;
  d.wal_spare_segments = 1;
  return d;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

struct Paths {
  std::string wal;
  std::string ckpt;
  explicit Paths(const std::string& tag)
      : wal(TempPath("durrec_" + tag + ".wal")),
        ckpt(TempPath("durrec_" + tag + ".ck")) {}
  void Remove() const {
    durability::RemoveWalFiles(wal);  // the whole segment chain + spares
    std::remove(ckpt.c_str());
  }
};

/// Drives the deterministic mutation script against `de`, recording every
/// ACKNOWLEDGED mutation's net effect in `*acked`. Mutations refused by a
/// broken WAL simply drop out — that is the acknowledged-prefix contract
/// the oracle checks.
void DriveScript(durability::DurableEngine& de,
                 std::map<SubscriptionId, Box>* acked) {
  Rng rng(2026);
  SubscriptionEngine& e = *de.engine;
  const auto subscribe_one = [&](const Box& b) {
    const SubscriptionId id = e.SubscribeBox(b);
    if (id != kInvalidObject) (*acked)[id] = b;
  };
  const auto unsubscribe_some = [&](size_t n) {
    for (size_t i = 0; i < n && !acked->empty(); ++i) {
      const SubscriptionId victim = acked->begin()->first;
      if (e.Unsubscribe(victim)) acked->erase(victim);
    }
  };
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = 0; i < 8; ++i) {
      subscribe_one(testutil::RandomBox(rng, kNd, 0.5f));
    }
    std::vector<Box> batch;
    for (int i = 0; i < 6; ++i) {
      batch.push_back(testutil::RandomBox(rng, kNd, 0.5f));
    }
    std::vector<SubscriptionId> ids;
    e.SubscribeBatch(Span<const Box>(batch.data(), batch.size()), &ids);
    for (size_t i = 0; i < ids.size(); ++i) (*acked)[ids[i]] = batch[i];
    unsubscribe_some(4);
    de.checkpointer->CheckpointNow();  // failure is part of the matrix
  }
  for (int i = 0; i < 4; ++i) {
    subscribe_one(testutil::RandomBox(rng, kNd, 0.5f));
  }
}

std::vector<Box> Probes() {
  Rng rng(777);
  std::vector<Box> probes;
  for (int i = 0; i < 8; ++i) {
    probes.push_back(testutil::RandomBox(rng, kNd, 0.6f));
  }
  return probes;
}

std::vector<SubscriptionId> Oracle(const std::map<SubscriptionId, Box>& subs,
                                   const Box& probe) {
  Query q(probe, Relation::kIntersects);
  std::vector<SubscriptionId> out;
  for (const auto& [id, box] : subs) {
    if (q.Matches(box.view())) out.push_back(id);
  }
  return out;  // map order is ascending — already sorted
}

/// Recovers from the files and asserts exact parity with `acked`.
void ExpectRecoveredParity(const Paths& paths,
                           const std::map<SubscriptionId, Box>& acked,
                           const std::string& context) {
  durability::DurableEngine de;
  Status st;
  ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(),
                                      paths.wal, paths.ckpt,
                                      /*disk=*/nullptr, &de, &st))
      << context << ": " << st.message();
  ASSERT_EQ(de.engine->subscription_count(), acked.size()) << context;
  for (const Box& probe : Probes()) {
    std::vector<SubscriptionId> got;
    de.engine->Match(Event::Range(probe), &got);
    ASSERT_EQ(got, Oracle(acked, probe)) << context;
  }
}

TEST(DurabilityRecovery, CleanRestartRestoresEverythingExactly) {
  const Paths paths("clean");
  paths.Remove();
  std::map<SubscriptionId, Box> acked;
  uint64_t fences_version = 0;
  {
    durability::DurableEngine de;
    Status st;
    ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(),
                                        paths.wal, paths.ckpt, nullptr, &de,
                                        &st))
        << st.message();
    EXPECT_FALSE(de.recovery.checkpoint_loaded);  // fresh start
    DriveScript(de, &acked);
    // The script's checkpoints truncated the WAL as they went, and under
    // the tiny segment size that means real segment GC: files rotated in,
    // then dropped (unlinked or spared) once a checkpoint covered them —
    // the on-disk footprint is bounded, not just logically truncated.
    EXPECT_GT(de.checkpointer->stats().checkpoints_written, 0u);
    const WalStats ws = de.wal->stats();
    EXPECT_GT(ws.truncations, 0u);
    EXPECT_GT(ws.segments_rotated, 0u);
    EXPECT_GT(ws.segments_unlinked + ws.segments_spared, 0u);
    EXPECT_LT(ws.live_segments, ws.segments_rotated + 1);
    fences_version = de.engine->routing_version();
    EXPECT_GT(acked.size(), 20u);  // the script really did build state
  }
  // Restart: checkpoint + WAL tail reproduce the acknowledged state.
  {
    durability::DurableEngine de;
    Status st;
    ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(),
                                        paths.wal, paths.ckpt, nullptr, &de,
                                        &st));
    EXPECT_TRUE(de.recovery.checkpoint_loaded);
    EXPECT_GT(de.recovery.checkpoint_subscriptions, 0u);
    EXPECT_EQ(de.engine->subscription_count(), acked.size());
    for (const Box& probe : Probes()) {
      std::vector<SubscriptionId> got;
      de.engine->Match(Event::Range(probe), &got);
      EXPECT_EQ(got, Oracle(acked, probe));
    }
    // Recovered id allocation continues past every restored id: a new
    // durable subscription gets a fresh id and survives the next restart.
    const SubscriptionId fresh =
        de.engine->SubscribeBox(Box::FullDomain(kNd));
    ASSERT_NE(fresh, kInvalidObject);
    EXPECT_GT(fresh, acked.rbegin()->first);
    acked[fresh] = Box::FullDomain(kNd);
  }
  ExpectRecoveredParity(paths, acked, "second restart");
  (void)fences_version;
  paths.Remove();
}

TEST(DurabilityRecovery, CrashPointMatrixPreservesAcknowledgedPrefix) {
  // Dry run with a counting disk: its io_ops() is the matrix size.
  uint64_t total_ops = 0;
  {
    const Paths paths("dryrun");
    paths.Remove();
    SimDisk disk = SimDisk::Paper();
    std::map<SubscriptionId, Box> acked;
    {
      durability::DurableEngine de;
      ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(),
                                          paths.wal, paths.ckpt, &disk, &de,
                                          nullptr));
      DriveScript(de, &acked);
      total_ops = disk.io_ops();
      EXPECT_EQ(disk.faults_injected(), 0u);
    }
    ExpectRecoveredParity(paths, acked, "dry run");
    paths.Remove();
  }
  ASSERT_GT(total_ops, 30u);  // flushes + checkpoints + truncations

  for (uint64_t k = 0; k < total_ops; ++k) {
    const Paths paths("k" + std::to_string(k));
    paths.Remove();
    SimDisk disk = SimDisk::Paper();
    disk.FailAfter(k);
    std::map<SubscriptionId, Box> acked;
    {
      durability::DurableEngine de;
      ASSERT_TRUE(durability::OpenDurable(UnitSchema(), Opts(), DurOpts(),
                                          paths.wal, paths.ckpt, &disk, &de,
                                          nullptr));
      DriveScript(de, &acked);
      EXPECT_GT(disk.faults_injected(), 0u) << "crash point " << k;
    }  // "crash": tear everything down with the fault still armed
    ExpectRecoveredParity(paths, acked,
                          "crash point " + std::to_string(k));
    paths.Remove();
  }
}

}  // namespace
}  // namespace accl
