// The observability plane (src/obs/) and its engine wiring:
//
//   - Histogram bucket math and percentile edges: exact singleton buckets
//     below 2^kSubBits, <= 12.5% relative quantization above, p50 <= p90
//     <= p99 <= max always, max exact.
//   - Counter sharding under a thread hammer: racy-exact reads must equal
//     the exact total once the writers joined.
//   - TraceRecorder ring wraparound and Chrome trace-event JSON structure.
//   - Prometheus exposition / JSON dump structure.
//   - Metric-family coverage: a durable adaptive kRange engine's
//     DumpMetrics() must expose the pipeline, WAL, checkpoint, epoch,
//     adaptive-routing and rebalance families; a LogShipper follower adds
//     the replication family. This is the acceptance gate that keeps
//     instrumentation attached as the engine grows.
//   - Flight-recorder end-to-end: a traced 256-event MatchBatch yields
//     per-stage spans recorded across more than one worker thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/shipping.h"
#include "durability/wal.h"
#include "obs/alloc_hook.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sdi/subscription_engine.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(ObsHistogram, EmptyReportsZeros) {
  obs::Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  const obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(ObsHistogram, SmallValuesAreExact) {
  // Values below kSubBuckets land in singleton buckets: every percentile
  // of a single-sample histogram is that exact value.
  for (uint64_t v = 0; v < obs::Histogram::kSubBuckets; ++v) {
    obs::Histogram h;
    h.Record(v);
    EXPECT_EQ(h.Percentile(0.5), static_cast<double>(v)) << "value " << v;
    EXPECT_EQ(h.Max(), v);
  }
}

TEST(ObsHistogram, LargeValuesWithinQuantizationBound) {
  // One sample each of a spread of magnitudes: the reported p50 must be
  // within the documented 2^-kSubBits (12.5%) relative error — and never
  // above the exact recorded max, which caps the bucket midpoint.
  for (const uint64_t v :
       {uint64_t{9}, uint64_t{100}, uint64_t{4096}, uint64_t{123456789},
        uint64_t{1} << 40, (uint64_t{1} << 50) + 12345}) {
    obs::Histogram h;
    h.Record(v);
    const double p = h.Percentile(0.5);
    EXPECT_LE(p, static_cast<double>(v)) << "value " << v;
    EXPECT_GE(p, 0.875 * static_cast<double>(v)) << "value " << v;
    EXPECT_EQ(h.Max(), v);
  }
}

TEST(ObsHistogram, BucketIndexRoundTrips) {
  // Every value must fall inside [BucketLow, BucketLow + BucketWidth) of
  // its own bucket, and bucket indices must be monotone in the value.
  size_t prev_idx = 0;
  for (const uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{7}, uint64_t{8},
                           uint64_t{9}, uint64_t{15}, uint64_t{16},
                           uint64_t{1023}, uint64_t{1024}, uint64_t{1} << 33,
                           ~uint64_t{0}}) {
    const size_t idx = obs::Histogram::BucketIndex(v);
    ASSERT_LT(idx, obs::Histogram::kBuckets) << "value " << v;
    EXPECT_GE(v, obs::Histogram::BucketLow(idx)) << "value " << v;
    EXPECT_LT(v - obs::Histogram::BucketLow(idx),
              obs::Histogram::BucketWidth(idx))
        << "value " << v;
    EXPECT_GE(idx, prev_idx) << "value " << v;
    prev_idx = idx;
  }
}

TEST(ObsHistogram, PercentilesAreOrderedAndClampedToMax) {
  obs::Histogram h;
  Rng rng(99);
  uint64_t max = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextU64() % 1000000;
    h.Record(v);
    max = std::max(max, v);
  }
  const obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 10000u);
  EXPECT_EQ(s.max, max);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, static_cast<double>(s.max));
}

TEST(ObsHistogram, MergeFoldsCountsSumAndMax) {
  obs::Histogram a;
  obs::Histogram b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 50; ++i) b.Record(1000);
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 150u);
  EXPECT_EQ(a.Sum(), 100u * 10 + 50u * 1000);
  EXPECT_EQ(a.Max(), 1000u);
  // Two-thirds of the mass sits at 10: p50 stays small, p90 jumps.
  EXPECT_LE(a.Percentile(0.5), 10.0);
  EXPECT_GE(a.Percentile(0.9), 875.0);
}

// ---------------------------------------------------------------------------
// Counter / gauge
// ---------------------------------------------------------------------------

TEST(ObsCounter, ThreadHammerIsExactAfterJoin) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(ObsCounter, AddNAccumulates) {
  obs::Counter c;
  c.Add(5);
  c.Add();
  c.Add(37);
  EXPECT_EQ(c.Value(), 43u);
}

TEST(ObsGauge, SetAndAdd) {
  obs::Gauge g;
  g.Set(-7);
  EXPECT_EQ(g.Value(), -7);
  g.Add(10);
  EXPECT_EQ(g.Value(), 3);
}

// ---------------------------------------------------------------------------
// Registry + exposition
// ---------------------------------------------------------------------------

TEST(ObsRegistry, GetReturnsSameMetricAndSnapshotIsSorted) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("accl_test_z_total", "ends last");
  EXPECT_EQ(reg.GetCounter("accl_test_z_total"), c);
  reg.GetGauge("accl_test_a_gauge");
  reg.GetHistogram("accl_test_m_us");
  c->Add(3);

  const obs::MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.values.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snap.values.begin(), snap.values.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  const obs::MetricValue* v = snap.Find("accl_test_z_total");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->counter, 3u);
}

TEST(ObsRegistry, AttachedMetricsAreReadAndDetachable) {
  obs::MetricsRegistry reg;
  obs::Counter mine;
  reg.Attach("accl_test_attached_total", &mine, "externally owned");
  mine.Add(11);
  const obs::MetricValue* v =
      reg.Snapshot().Find("accl_test_attached_total");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->counter, 11u);
  reg.Detach("accl_test_attached_total");
  EXPECT_EQ(reg.Snapshot().Find("accl_test_attached_total"), nullptr);
}

TEST(ObsRegistry, DeltaSinceSubtractsMonotoneQuantities) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("accl_test_total");
  obs::Gauge* g = reg.GetGauge("accl_test_level");
  obs::Histogram* h = reg.GetHistogram("accl_test_us");
  c->Add(10);
  g->Set(100);
  h->Record(5);
  const obs::MetricsSnapshot base = reg.Snapshot();
  c->Add(7);
  g->Set(42);
  h->Record(5);
  h->Record(6);
  const obs::MetricsSnapshot delta = reg.Snapshot().DeltaSince(base);
  EXPECT_EQ(delta.Find("accl_test_total")->counter, 7u);
  EXPECT_EQ(delta.Find("accl_test_level")->gauge, 42);  // gauges: current
  EXPECT_EQ(delta.Find("accl_test_us")->hist.count, 2u);
  EXPECT_EQ(delta.Find("accl_test_us")->hist.sum, 11u);
}

TEST(ObsExposition, PrometheusTextStructure) {
  obs::MetricsRegistry reg;
  reg.GetCounter("accl_test_ops_total", "ops")->Add(5);
  reg.GetGauge("accl_test_level")->Set(-3);
  reg.GetHistogram("accl_test_lat_us")->Record(100);
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE accl_test_ops_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("accl_test_ops_total 5"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE accl_test_level gauge"), std::string::npos);
  EXPECT_NE(text.find("accl_test_level -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE accl_test_lat_us summary"), std::string::npos);
  EXPECT_NE(text.find("accl_test_lat_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
}

TEST(ObsExposition, JsonDumpIsOneObjectWithBalancedBraces) {
  obs::MetricsRegistry reg;
  reg.GetCounter("accl_test_ops_total")->Add(2);
  reg.GetHistogram("accl_test_lat_us")->Record(7);
  const std::string json = reg.JsonDump();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"accl_test_ops_total\":2"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

/// Tracing is process-global state: every trace test restores "disabled,
/// cleared" so suites compose in any order.
struct TraceQuiesce {
  TraceQuiesce() {
    SubscriptionEngine::SetTracing(false);
    obs::TraceRecorder::Global().Clear();
  }
  ~TraceQuiesce() {
    SubscriptionEngine::SetTracing(false);
    obs::TraceRecorder::Global().Clear();
  }
};

TEST(ObsTrace, DisabledRecordsNothing) {
  TraceQuiesce q;
  ACCL_TRACE_INSTANT("never", 1);
  { ACCL_TRACE_SPAN("never_span"); }
  EXPECT_EQ(obs::TraceRecorder::Global().EventCount(), 0u);
}

TEST(ObsTrace, RingWrapsKeepingNewestEvents) {
  TraceQuiesce q;
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  // Capacity applies to rings created after the call; run the writer on a
  // fresh thread so its ring is sized small for sure.
  rec.SetRingCapacity(64);
  rec.SetEnabled(true);
  std::thread writer([&rec] {
    for (uint32_t i = 0; i < 1000; ++i) {
      rec.Record("wrap_evt", obs::TraceRecorder::kInstant, i);
    }
  });
  writer.join();
  rec.SetEnabled(false);
  const std::string json = rec.DrainChromeJson();
  rec.SetRingCapacity(8192);
  // The ring holds the newest 64 events: the last arg (999) must be
  // present, the first (0) long overwritten. Args are decimal in the dump.
  EXPECT_NE(json.find("\"args\":{\"v\":999}"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"args\":{\"v\":0}"), std::string::npos);
}

TEST(ObsTrace, ChromeJsonStructure) {
  TraceQuiesce q;
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.SetEnabled(true);
  {
    ACCL_TRACE_SPAN_ARG("outer", 7);
    ACCL_TRACE_INSTANT("tick", 42);
  }
  rec.SetEnabled(false);
  const std::string json = rec.DrainChromeJson();
  // One JSON object, the traceEvents array, B/E/i phases, µs timestamps.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":42}"), std::string::npos);
  // A span that began with tracing enabled keeps its end even when
  // tracing flips off mid-scope: B and E counts balance.
  const auto count_of = [&](const std::string& needle) {
    size_t n = 0;
    for (size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("\"ph\":\"B\""), count_of("\"ph\":\"E\""));
}

// ---------------------------------------------------------------------------
// Alloc hook (not installed in this binary)
// ---------------------------------------------------------------------------

TEST(ObsAllocHook, UninstalledReportsZero) {
  // The test binary does not expand ACCL_OBS_INSTALL_GLOBAL_ALLOC_HOOK();
  // the counter must exist and read 0 rather than trap.
  EXPECT_FALSE(obs::HeapAllocHookInstalled());
  EXPECT_EQ(obs::HeapAllocsNow(), 0u);
}

// ---------------------------------------------------------------------------
// Engine wiring: family coverage + flight recording
// ---------------------------------------------------------------------------

constexpr Dim kNd = 3;

AttributeSchema UnitSchema() {
  AttributeSchema s;
  for (Dim d = 0; d < kNd; ++d) {
    s.AddAttribute("a" + std::to_string(d), 0.0, 1.0);
  }
  return s;
}

EngineOptions RangeOpts(uint32_t threads) {
  EngineOptions o;
  o.index.reorg_period = 20;
  o.index.min_observation = 8;
  o.default_policy = MatchPolicy::kIntersecting;
  o.shards = 4;
  o.match_threads = threads;
  o.sharding = ShardingPolicy::kRange;
  o.adaptive.enabled = true;
  o.adaptive.sample_window = 64;
  return o;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void RunSomeBatches(SubscriptionEngine* engine, uint64_t seed,
                    size_t n_events) {
  Rng rng(seed);
  std::vector<Event> events;
  for (size_t i = 0; i < n_events; ++i) {
    events.push_back(Event::Range(testutil::RandomBox(rng, kNd, 0.4f)));
  }
  MatchBatchResult res;
  engine->MatchBatch(Span<const Event>(events.data(), events.size()), &res);
}

/// Every name in `families` must appear as a metric-name prefix in `text`.
void ExpectFamilies(const std::string& text,
                    const std::vector<std::string>& families,
                    const std::string& context) {
  for (const std::string& fam : families) {
    EXPECT_NE(text.find(fam), std::string::npos)
        << context << ": missing metric family " << fam << " in:\n"
        << text;
  }
}

TEST(ObsEngineCoverage, DurableAdaptiveEngineExposesAllFamilies) {
  const std::string wal_path = TempPath("obs_cov.wal");
  const std::string ckpt_path = TempPath("obs_cov.ck");
  durability::RemoveWalFiles(wal_path);
  std::remove(ckpt_path.c_str());

  DurabilityOptions dopts;
  dopts.group_commit = true;
  dopts.checkpoint_every_mutations = 0;
  dopts.background_checkpoints = false;
  durability::DurableEngine de;
  Status st;
  ASSERT_TRUE(durability::OpenDurable(UnitSchema(), RangeOpts(2), dopts,
                                      wal_path, ckpt_path, nullptr, &de, &st))
      << st.message();

  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    de.engine->SubscribeBox(testutil::RandomBox(rng, kNd, 0.5f));
  }
  RunSomeBatches(de.engine.get(), 6, 128);
  ASSERT_TRUE(de.checkpointer->CheckpointNow());
  de.engine->RebalanceOnce();
  de.engine->SynchronizeEpochs();

  const std::string text = de.engine->DumpMetrics();
  ExpectFamilies(text,
                 {"accl_pipeline_batches_total", "accl_pipeline_events_total",
                  "accl_pipeline_chunks_claimed_total",
                  "accl_pipeline_matches_total", "accl_pipeline_batch_us",
                  "accl_wal_", "accl_ckpt_writes_total", "accl_epoch_pins",
                  "accl_epoch_grace_wait_us", "accl_adapt_windows_evaluated",
                  "accl_rebalance_boundary_moves_total",
                  "accl_rebalance_migration_us", "accl_engine_subscriptions",
                  "accl_kernel_dispatch_", "accl_process_heap_allocs"},
                 "durable adaptive engine");

  // Counters flow: the 128-event batch must be visible.
  const obs::MetricsSnapshot snap = de.engine->metrics().Snapshot();
  const obs::MetricValue* ev = snap.Find("accl_pipeline_events_total");
  ASSERT_NE(ev, nullptr);
  EXPECT_GE(ev->counter, 128u);
  const obs::MetricValue* ck = snap.Find("accl_ckpt_writes_total");
  ASSERT_NE(ck, nullptr);
  EXPECT_EQ(ck->counter, 1u);

  // The public stats structs read the same registry state.
  EXPECT_EQ(de.engine->rebalance_stats().boundary_moves,
            snap.Find("accl_rebalance_boundary_moves_total")->counter);
  EXPECT_EQ(de.engine->adaptive_stats().windows_evaluated,
            snap.Find("accl_adapt_windows_evaluated_total")->counter);

  // The JSON dump carries the same families.
  ExpectFamilies(de.engine->DumpMetricsJson(),
                 {"accl_pipeline_batches_total", "accl_wal_",
                  "accl_epoch_pins", "accl_kernel_dispatch_"},
                 "durable engine json");

  de = durability::DurableEngine();  // checkpointer detaches before engine
  durability::RemoveWalFiles(wal_path);
  std::remove(ckpt_path.c_str());
}

TEST(ObsEngineCoverage, FollowerExposesReplicationFamily) {
  const std::string wal_path = TempPath("obs_repl.wal");
  const std::string ckpt_path = TempPath("obs_repl.ck");
  const std::string rwal_path = TempPath("obs_repl.rwal");
  const std::string rckpt_path = TempPath("obs_repl.rck");
  durability::RemoveWalFiles(wal_path);
  durability::RemoveWalFiles(rwal_path);
  std::remove(ckpt_path.c_str());
  std::remove(rckpt_path.c_str());

  DurabilityOptions dopts;
  dopts.group_commit = true;
  dopts.checkpoint_every_mutations = 0;
  dopts.background_checkpoints = false;
  durability::DurableEngine primary;
  ASSERT_TRUE(durability::OpenDurable(UnitSchema(), RangeOpts(0), dopts,
                                      wal_path, ckpt_path, nullptr, &primary,
                                      nullptr));
  Rng rng(7);
  for (int i = 0; i < 32; ++i) {
    primary.engine->SubscribeBox(testutil::RandomBox(rng, kNd, 0.5f));
  }

  durability::LogShipper::Options sopts;
  sopts.source_wal_base = wal_path;
  sopts.source_checkpoint_path = ckpt_path;
  sopts.replica_wal_base = rwal_path;
  sopts.replica_checkpoint_path = rckpt_path;
  std::unique_ptr<durability::LogShipper> shipper =
      durability::LogShipper::Create(UnitSchema(), RangeOpts(0), sopts,
                                     nullptr);
  ASSERT_NE(shipper, nullptr);
  ASSERT_TRUE(shipper->ShipOnce().ok());
  EXPECT_EQ(shipper->engine()->subscription_count(), 32u);

  const std::string text = shipper->engine()->DumpMetrics();
  ExpectFamilies(text,
                 {"accl_repl_ship_passes_total",
                  "accl_repl_records_applied_total", "accl_repl_cursor_lsn",
                  "accl_repl_lag_records", "accl_repl_ship_pass_us"},
                 "follower");
  const obs::MetricValue* passes = shipper->engine()->metrics().Snapshot().Find(
      "accl_repl_ship_passes_total");
  ASSERT_NE(passes, nullptr);
  EXPECT_GE(passes->counter, 1u);

  // Destroying the shipper detaches its metrics: the follower engine died
  // with it here, but the detach path itself must not blow up, and a
  // fresh scan of the names must find nothing if the registry survived.
  shipper.reset();

  primary = durability::DurableEngine();
  durability::RemoveWalFiles(wal_path);
  durability::RemoveWalFiles(rwal_path);
  std::remove(ckpt_path.c_str());
  std::remove(rckpt_path.c_str());
}

TEST(ObsFlightRecorder, TracedMatchBatchShowsStagesAcrossWorkers) {
  TraceQuiesce q;
  SubscriptionEngine engine(UnitSchema(), RangeOpts(4));
  Rng rng(13);
  for (int i = 0; i < 256; ++i) {
    engine.SubscribeBox(testutil::RandomBox(rng, kNd, 0.5f));
  }
  // Warm pass untraced, then trace one 256-event batch (repeated a few
  // times so every pool worker participates).
  RunSomeBatches(&engine, 21, 256);
  SubscriptionEngine::SetTracing(true);
  ASSERT_TRUE(SubscriptionEngine::tracing_enabled());
  for (uint64_t seed = 22; seed < 26; ++seed) {
    RunSomeBatches(&engine, seed, 256);
  }
  SubscriptionEngine::SetTracing(false);
  const std::string json = engine.DumpTrace();

  // Per-stage spans of the batch pipeline are all present.
  for (const char* span : {"match_batch", "route_scatter", "pipeline_worker",
                           "shard_execute", "finalize_event"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + span + "\""),
              std::string::npos)
        << "missing span " << span;
  }
  // The spans landed on more than one thread: the pool fan-out records
  // each worker's ring under its own dense tid.
  std::set<std::string> tids;
  for (size_t at = json.find("\"tid\":"); at != std::string::npos;
       at = json.find("\"tid\":", at + 1)) {
    const size_t end = json.find_first_of(",}", at + 6);
    tids.insert(json.substr(at + 6, end - at - 6));
  }
  EXPECT_GE(tids.size(), 2u) << json.substr(0, 2000);
}

TEST(ObsFlightRecorder, TracingDoesNotPerturbMatchResults) {
  TraceQuiesce q;
  SubscriptionEngine engine(UnitSchema(), RangeOpts(2));
  Rng rng(31);
  for (int i = 0; i < 128; ++i) {
    engine.SubscribeBox(testutil::RandomBox(rng, kNd, 0.5f));
  }
  Rng erng(32);
  std::vector<Event> events;
  for (int i = 0; i < 128; ++i) {
    events.push_back(Event::Range(testutil::RandomBox(erng, kNd, 0.4f)));
  }
  MatchBatchResult off;
  engine.MatchBatch(Span<const Event>(events.data(), events.size()), &off);
  SubscriptionEngine::SetTracing(true);
  MatchBatchResult on;
  engine.MatchBatch(Span<const Event>(events.data(), events.size()), &on);
  SubscriptionEngine::SetTracing(false);
  ASSERT_EQ(off.matches.size(), on.matches.size());
  for (size_t e = 0; e < off.matches.size(); ++e) {
    EXPECT_EQ(off.matches[e], on.matches[e]) << "event " << e;
  }
}

}  // namespace
}  // namespace accl
