// Workload-adaptive routing (src/adapt/ + the engine's adaptive surface):
// unit coverage of the tracker/analyzer/advisor layers, the engine-level
// convergence property the subsystem exists for — a workload whose
// selectivity lives on a non-default dimension must trigger an online
// fence-dimension switch that drops shard visits per event to routed
// levels — and the dense-cut regression: when EVERY dimension's fences
// would cut the subscription population (so no switch can win), sustained
// straddler pressure must split the overflow shard on a second dimension
// instead of letting routing silently degrade to broadcast. Every engine
// assertion is paired with a brute-force oracle so an adaptation that
// loses or duplicates a subscription fails loudly, not just slowly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "adapt/pattern_tracker.h"
#include "adapt/routing_advisor.h"
#include "adapt/selectivity.h"
#include "geometry/query.h"
#include "sdi/subscription_engine.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

constexpr Dim kNd = 4;

AttributeSchema UnitSchema() {
  AttributeSchema s;
  for (Dim d = 0; d < kNd; ++d) {
    s.AddAttribute("a" + std::to_string(d), 0.0, 1.0);
  }
  return s;
}

/// Box that is `width`-narrow on `narrow_dim` (centered at `center`) and
/// full-domain on every other dimension — selective on exactly one axis.
Box NarrowOn(Dim narrow_dim, float center, float width) {
  Box b = Box::FullDomain(kNd);
  const float lo = std::max(0.0f, center - width / 2);
  b.set(narrow_dim, lo, std::min(1.0f, lo + width));
  return b;
}

/// Box of width `width` on EVERY dimension, centers drawn uniformly — the
/// dense-cut shape: moderate extent everywhere, so any single fence set
/// cuts a large fraction of the population.
Box ModerateEverywhere(Rng& rng, float width) {
  Box b(kNd);
  for (Dim d = 0; d < kNd; ++d) {
    const float lo = (1.0f - width) * rng.NextFloat();
    b.set(d, lo, lo + width);
  }
  return b;
}

std::vector<ObjectId> BruteForceMatches(
    const std::vector<std::pair<SubscriptionId, Box>>& subs,
    const Event& ev) {
  Query q(ev.box, Relation::kIntersects);
  std::vector<ObjectId> out;
  for (const auto& [id, box] : subs) {
    if (q.Matches(box.view())) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectOracleParity(SubscriptionEngine& engine,
                        const std::vector<std::pair<SubscriptionId, Box>>& subs,
                        const std::vector<Event>& probes, const char* where) {
  MatchBatchResult res;
  engine.MatchBatch(Span<const Event>(probes.data(), probes.size()), &res);
  ASSERT_EQ(res.matches.size(), probes.size()) << where;
  for (size_t e = 0; e < probes.size(); ++e) {
    EXPECT_EQ(res.matches[e], BruteForceMatches(subs, probes[e]))
        << where << ": probe " << e;
  }
}

// ---------------------------------------------------------------------------
// QueryPatternTracker
// ---------------------------------------------------------------------------

TEST(PatternTracker, BinClampingIsDeterministic) {
  EXPECT_EQ(adapt::PatternBinOf(0.0f), 0u);
  EXPECT_EQ(adapt::PatternBinOf(-3.0f), 0u);
  EXPECT_EQ(adapt::PatternBinOf(std::nanf("")), 0u);
  EXPECT_EQ(adapt::PatternBinOf(1.0f), adapt::kPatternBins - 1);
  EXPECT_EQ(adapt::PatternBinOf(42.0f), adapt::kPatternBins - 1);
  EXPECT_LT(adapt::PatternBinOf(0.999f), adapt::kPatternBins);
  // Mid-domain coordinates spread across distinct bins.
  EXPECT_NE(adapt::PatternBinOf(0.25f), adapt::PatternBinOf(0.75f));
}

TEST(PatternTracker, AccumulatorFoldAndSnapshotCounts) {
  adapt::QueryPatternTracker tracker(kNd);
  adapt::PatternAccumulator acc;
  acc.Reset(kNd);
  acc.AddEvent(NarrowOn(1, 0.5f, 0.1f));
  acc.AddEvent(NarrowOn(1, 0.7f, 0.1f));
  acc.AddSubscription(NarrowOn(2, 0.3f, 0.05f));
  tracker.Record(acc);
  tracker.RecordEvent(NarrowOn(1, 0.2f, 0.1f));
  tracker.RecordSubscription(NarrowOn(2, 0.8f, 0.05f));

  const adapt::PatternSnapshot snap = tracker.Snapshot();
  EXPECT_EQ(snap.events, 3u);
  EXPECT_EQ(snap.subscriptions, 2u);
  ASSERT_EQ(snap.event_dims.size(), static_cast<size_t>(kNd));
  // Every sample contributes exactly one lo and one hi endpoint per dim.
  for (Dim d = 0; d < kNd; ++d) {
    uint64_t lo_total = 0, hi_total = 0;
    for (size_t b = 0; b < adapt::kPatternBins; ++b) {
      lo_total += snap.event_dims[d].lo[b];
      hi_total += snap.event_dims[d].hi[b];
    }
    EXPECT_EQ(lo_total, 3u) << "dim " << static_cast<int>(d);
    EXPECT_EQ(hi_total, 3u) << "dim " << static_cast<int>(d);
  }
  // Lifetime counters survive window churn; the snapshot does not.
  EXPECT_EQ(tracker.events_observed(), 3u);
  EXPECT_EQ(tracker.subscriptions_observed(), 2u);
}

TEST(PatternTracker, ObservationsAgeOutAfterKGenerations) {
  adapt::QueryPatternTracker tracker(kNd);
  tracker.RecordEvent(NarrowOn(0, 0.5f, 0.1f));
  for (size_t w = 0; w < adapt::QueryPatternTracker::kGenerations - 1; ++w) {
    tracker.AdvanceWindow();
    EXPECT_EQ(tracker.Snapshot().events, 1u) << "window " << w;
  }
  tracker.AdvanceWindow();  // kGenerations-th rotation drops the sample
  EXPECT_EQ(tracker.Snapshot().events, 0u);
  EXPECT_EQ(tracker.events_observed(), 1u);  // lifetime counter unaffected

  tracker.RecordEvent(NarrowOn(0, 0.5f, 0.1f));
  tracker.ResetWindow();  // full reset clears every generation at once
  EXPECT_EQ(tracker.Snapshot().events, 0u);
}

// ---------------------------------------------------------------------------
// SelectivityAnalyzer
// ---------------------------------------------------------------------------

/// Snapshot with `n` samples: events and subscriptions both narrow on
/// `good_dim` (centers spread uniformly) and full-domain on the others.
adapt::PatternSnapshot DimShiftedPattern(Dim good_dim, size_t n) {
  adapt::PatternAccumulator acc;
  acc.Reset(kNd);
  for (size_t i = 0; i < n; ++i) {
    const float c = 0.05f + 0.9f * static_cast<float>(i) /
                                static_cast<float>(n ? n : 1);
    acc.AddEvent(NarrowOn(good_dim, c, 0.02f));
    acc.AddSubscription(NarrowOn(good_dim, c, 0.02f));
  }
  return acc.data();
}

TEST(SelectivityAnalyzer, NarrowDimensionScoresBest) {
  const adapt::PatternSnapshot p = DimShiftedPattern(/*good_dim=*/2, 512);
  const std::vector<DimensionEstimate> est =
      adapt::SelectivityAnalyzer::Analyze(p, /*slices=*/4);
  ASSERT_EQ(est.size(), static_cast<size_t>(kNd));
  for (Dim d = 0; d < kNd; ++d) {
    if (d == 2) continue;
    // Full-domain intervals cross every fence: near-broadcast visits and a
    // straddler fraction of ~1. The narrow dimension routes tightly.
    EXPECT_LT(est[2].score, est[d].score) << "dim " << static_cast<int>(d);
    EXPECT_GT(est[d].straddler_fraction, 0.9);
  }
  EXPECT_LT(est[2].straddler_fraction, 0.3);
  EXPECT_LT(est[2].expected_shard_visits, 2.5);
  EXPECT_GT(est[0].expected_shard_visits, 4.0);  // home + 3 fences + overflow
}

TEST(SelectivityAnalyzer, EmptySnapshotYieldsZeroEstimates) {
  adapt::PatternSnapshot p;
  p.Reset(kNd);
  const std::vector<DimensionEstimate> est =
      adapt::SelectivityAnalyzer::Analyze(p, 4);
  ASSERT_EQ(est.size(), static_cast<size_t>(kNd));
  for (const DimensionEstimate& e : est) EXPECT_EQ(e.score, 0.0);
}

TEST(SelectivityAnalyzer, PlanFencesAreStrictlyAscendingInDomain) {
  const adapt::PatternSnapshot p = DimShiftedPattern(1, 512);
  for (const size_t n_fences : {1u, 3u, 7u}) {
    const std::vector<float> f =
        adapt::SelectivityAnalyzer::PlanFences(p, 1, n_fences);
    ASSERT_EQ(f.size(), n_fences);
    for (size_t i = 0; i < f.size(); ++i) {
      EXPECT_GT(f[i], 0.0f);
      EXPECT_LT(f[i], 1.0f);
      if (i > 0) {
        EXPECT_LT(f[i - 1], f[i]);
      }
    }
  }
  // Equal-mass placement: centers are uniform over [0.05, 0.95], so the
  // median fence of a 2-slice plan sits near the middle of the domain.
  const std::vector<float> median =
      adapt::SelectivityAnalyzer::PlanFences(p, 1, 1);
  ASSERT_EQ(median.size(), 1u);
  EXPECT_NEAR(median[0], 0.5f, 0.1f);
}

TEST(SelectivityAnalyzer, DegenerateMassFallsBackToUniformFences) {
  // All interval mass in one spot: quantile placement would collapse all
  // fences onto one bin; the plan must still be strictly ascending.
  adapt::PatternAccumulator acc;
  acc.Reset(kNd);
  for (int i = 0; i < 100; ++i) {
    acc.AddEvent(NarrowOn(0, 0.5f, 0.001f));
    acc.AddSubscription(NarrowOn(0, 0.5f, 0.001f));
  }
  const std::vector<float> f =
      adapt::SelectivityAnalyzer::PlanFences(acc.data(), 0, 3);
  ASSERT_EQ(f.size(), 3u);
  for (size_t i = 1; i < f.size(); ++i) EXPECT_LT(f[i - 1], f[i]);
}

// ---------------------------------------------------------------------------
// RoutingAdvisor
// ---------------------------------------------------------------------------

adapt::AdvisorState DefaultState() {
  adapt::AdvisorState st;
  st.current_dim = 0;
  st.range_slices = 4;
  st.split_slices = 2;
  st.total_subscriptions = 512;
  return st;
}

TEST(RoutingAdvisor, EmptyWindowDecidesNothing) {
  AdaptiveRoutingOptions opts;
  adapt::RoutingAdvisor advisor(opts, kNd);
  adapt::PatternSnapshot p;
  p.Reset(kNd);
  const adapt::RoutingDecision d = advisor.Evaluate(p, DefaultState());
  EXPECT_EQ(d.kind, adapt::RoutingDecision::Kind::kNone);
}

TEST(RoutingAdvisor, SwitchesToThePredictedBetterDimension) {
  AdaptiveRoutingOptions opts;
  opts.switch_threshold = 1.5;
  adapt::RoutingAdvisor advisor(opts, kNd);
  const adapt::PatternSnapshot p = DimShiftedPattern(/*good_dim=*/3, 512);
  const adapt::RoutingDecision d = advisor.Evaluate(p, DefaultState());
  ASSERT_EQ(d.kind, adapt::RoutingDecision::Kind::kSwitchDimension);
  EXPECT_EQ(d.dim, 3u);
  ASSERT_EQ(d.fences.size(), 3u);  // range_slices - 1
  for (size_t i = 1; i < d.fences.size(); ++i) {
    EXPECT_LT(d.fences[i - 1], d.fences[i]);
  }
  EXPECT_EQ(d.estimates.size(), static_cast<size_t>(kNd));
}

TEST(RoutingAdvisor, NoSwitchWhenCurrentDimensionIsAlreadyBest) {
  AdaptiveRoutingOptions opts;
  adapt::RoutingAdvisor advisor(opts, kNd);
  adapt::AdvisorState st = DefaultState();
  st.current_dim = 3;
  const adapt::PatternSnapshot p = DimShiftedPattern(3, 512);
  const adapt::RoutingDecision d = advisor.Evaluate(p, st);
  EXPECT_EQ(d.kind, adapt::RoutingDecision::Kind::kNone);
}

TEST(RoutingAdvisor, SplitRequiresSustainedPressure) {
  AdaptiveRoutingOptions opts;
  opts.split_straddler_threshold = 0.25;
  opts.split_patience = 3;
  adapt::RoutingAdvisor advisor(opts, kNd);
  // Current dimension already the best one, so the split branch is live.
  adapt::AdvisorState st = DefaultState();
  st.current_dim = 2;
  st.overflow_residents = 300;  // 300/512 > 0.25: pressure present
  const adapt::PatternSnapshot p = DimShiftedPattern(2, 512);

  for (uint32_t w = 1; w < opts.split_patience; ++w) {
    EXPECT_EQ(advisor.Evaluate(p, st).kind,
              adapt::RoutingDecision::Kind::kNone)
        << "window " << w;
    EXPECT_EQ(advisor.straddle_streak(), w);
  }
  const adapt::RoutingDecision d = advisor.Evaluate(p, st);
  ASSERT_EQ(d.kind, adapt::RoutingDecision::Kind::kSplitOverflow);
  EXPECT_NE(d.dim, st.current_dim);
  EXPECT_LT(d.dim, static_cast<uint32_t>(kNd));
  EXPECT_EQ(d.fences.size(), 1u);  // split_slices - 1
  EXPECT_EQ(advisor.straddle_streak(), 0u);  // streak consumed by the split
}

TEST(RoutingAdvisor, PressureDipResetsThePatienceStreak) {
  AdaptiveRoutingOptions opts;
  opts.split_straddler_threshold = 0.25;
  opts.split_patience = 2;
  adapt::RoutingAdvisor advisor(opts, kNd);
  adapt::AdvisorState st = DefaultState();
  st.current_dim = 2;
  const adapt::PatternSnapshot p = DimShiftedPattern(2, 512);

  st.overflow_residents = 300;
  EXPECT_EQ(advisor.Evaluate(p, st).kind,
            adapt::RoutingDecision::Kind::kNone);
  EXPECT_EQ(advisor.straddle_streak(), 1u);
  st.overflow_residents = 10;  // dip below the threshold
  EXPECT_EQ(advisor.Evaluate(p, st).kind,
            adapt::RoutingDecision::Kind::kNone);
  EXPECT_EQ(advisor.straddle_streak(), 0u);
  st.overflow_residents = 300;  // pressure returns: patience starts over
  EXPECT_EQ(advisor.Evaluate(p, st).kind,
            adapt::RoutingDecision::Kind::kNone);
  EXPECT_EQ(advisor.straddle_streak(), 1u);
}

TEST(RoutingAdvisor, ActiveSplitAndPinnedDimRespected) {
  AdaptiveRoutingOptions opts;
  opts.split_patience = 1;
  adapt::RoutingAdvisor advisor(opts, kNd);
  adapt::AdvisorState st = DefaultState();
  st.current_dim = 2;
  st.overflow_residents = 400;
  const adapt::PatternSnapshot p = DimShiftedPattern(2, 512);

  st.split_active = true;  // already split: never split again
  EXPECT_EQ(advisor.Evaluate(p, st).kind,
            adapt::RoutingDecision::Kind::kNone);
  st.split_active = false;

  AdaptiveRoutingOptions pinned = opts;
  pinned.split_dim = 1;
  adapt::RoutingAdvisor pinned_advisor(pinned, kNd);
  const adapt::RoutingDecision d = pinned_advisor.Evaluate(p, st);
  ASSERT_EQ(d.kind, adapt::RoutingDecision::Kind::kSplitOverflow);
  EXPECT_EQ(d.dim, 1u);

  // Pinning the split to the fence dimension makes splitting impossible.
  AdaptiveRoutingOptions conflict = opts;
  conflict.split_dim = 2;
  adapt::RoutingAdvisor conflict_advisor(conflict, kNd);
  EXPECT_EQ(conflict_advisor.Evaluate(p, st).kind,
            adapt::RoutingDecision::Kind::kNone);
}

// ---------------------------------------------------------------------------
// Engine: online convergence
// ---------------------------------------------------------------------------

TEST(AdaptiveEngine, AutoSwitchConvergesToSelectiveDimension) {
  // Workload selective on dimension 2 only; routing starts on dimension 0,
  // where every subscription straddles every fence — effective broadcast.
  EngineOptions o;
  o.shards = 5;
  o.sharding = ShardingPolicy::kRange;
  o.match_threads = 2;
  o.default_policy = MatchPolicy::kIntersecting;
  o.adaptive.enabled = true;
  o.adaptive.sample_window = 256;
  SubscriptionEngine engine(UnitSchema(), o);
  ASSERT_EQ(engine.routing_dimension(), 0u);

  Rng rng(7);
  std::vector<std::pair<SubscriptionId, Box>> subs;
  for (int i = 0; i < 600; ++i) {
    Box b = NarrowOn(2, rng.NextFloat(), 0.02f);
    subs.emplace_back(engine.SubscribeBox(b), b);
  }

  auto make_batch = [&rng](size_t ne) {
    std::vector<Event> evs;
    for (size_t e = 0; e < ne; ++e) {
      evs.push_back(Event::Range(NarrowOn(2, rng.NextFloat(), 0.01f)));
    }
    return evs;
  };

  // Pre-switch sanity: with dim-0 fences every event pays ~shard_count
  // visits (all subscriptions straddle into the overflow shard).
  {
    const std::vector<Event> evs = make_batch(64);
    MatchBatchResult res;
    engine.MatchBatch(Span<const Event>(evs.data(), evs.size()), &res);
    EXPECT_GT(static_cast<double>(res.TotalShardVisits()) / 64.0, 4.0);
  }

  // Feed windows until the advisor acts (well beyond one sample_window).
  for (int round = 0; round < 12 && engine.routing_dimension() != 2u;
       ++round) {
    const std::vector<Event> evs = make_batch(64);
    MatchBatchResult res;
    engine.MatchBatch(Span<const Event>(evs.data(), evs.size()), &res);
  }

  const AdaptiveRoutingStats st = engine.adaptive_stats();
  EXPECT_TRUE(st.enabled);
  EXPECT_EQ(engine.routing_dimension(), 2u);
  EXPECT_EQ(st.fence_dimension, 2u);
  EXPECT_GE(st.dimension_switches, 1u);
  EXPECT_GE(st.windows_evaluated, 1u);
  EXPECT_EQ(st.last_estimates.size(), static_cast<size_t>(kNd));
  EXPECT_GT(st.events_observed, 0u);
  EXPECT_GT(st.subscriptions_observed, 0u);
  EXPECT_GE(engine.rebalance_stats().dimension_switches, 1u);

  // Post-convergence: routed visit economics and exact oracle parity.
  const std::vector<Event> probes = make_batch(128);
  MatchBatchResult res;
  engine.MatchBatch(Span<const Event>(probes.data(), probes.size()), &res);
  const double visits_per_event =
      static_cast<double>(res.TotalShardVisits()) /
      static_cast<double>(probes.size());
  EXPECT_LE(visits_per_event, 2.5) << "routing did not converge";
  for (size_t e = 0; e < probes.size(); ++e) {
    ASSERT_EQ(res.matches[e], BruteForceMatches(subs, probes[e]))
        << "probe " << e;
  }
}

TEST(AdaptiveEngine, DenseCutWorkloadSplitsOverflowInsteadOfThrashing) {
  // Dense-cut regression: moderate extent on EVERY dimension. No candidate
  // dimension can beat the current one by 1.5x (all fences cut the same
  // population), so the advisor must not switch — it must recognize the
  // sustained straddler pressure and split the overflow shard on a second
  // dimension, acting on the observed residency + predicted spill signal.
  EngineOptions o;
  o.shards = 6;
  o.sharding = ShardingPolicy::kRange;
  o.match_threads = 0;
  o.default_policy = MatchPolicy::kIntersecting;
  o.adaptive.enabled = true;
  o.adaptive.sample_window = 128;
  o.adaptive.split_straddler_threshold = 0.2;
  o.adaptive.split_patience = 2;
  o.adaptive.overflow_split_shards = 2;
  SubscriptionEngine engine(UnitSchema(), o);
  ASSERT_EQ(engine.overflow_split_capacity(), 2u);
  ASSERT_EQ(engine.overflow_split_dimension(), -1);

  Rng rng(13);
  std::vector<std::pair<SubscriptionId, Box>> subs;
  for (int i = 0; i < 500; ++i) {
    Box b = ModerateEverywhere(rng, 0.35f);
    subs.emplace_back(engine.SubscribeBox(b), b);
  }

  for (int round = 0; round < 12 && engine.overflow_split_dimension() < 0;
       ++round) {
    std::vector<Event> evs;
    for (int e = 0; e < 64; ++e) {
      evs.push_back(Event::Range(ModerateEverywhere(rng, 0.1f)));
    }
    MatchBatchResult res;
    engine.MatchBatch(Span<const Event>(evs.data(), evs.size()), &res);
  }

  const AdaptiveRoutingStats st = engine.adaptive_stats();
  ASSERT_GE(st.overflow_splits, 1u) << "split never fired";
  EXPECT_GE(st.split_dimension, 0);
  EXPECT_NE(static_cast<uint32_t>(st.split_dimension), st.fence_dimension);
  EXPECT_EQ(engine.overflow_split_dimension(), st.split_dimension);
  // The split must have physically relocated straddlers out of the
  // catch-all (this is the counter that closes the old "predicted spill
  // not yet acted on" gap).
  EXPECT_GT(engine.rebalance_stats().straddlers_split, 0u);
  EXPECT_GE(engine.rebalance_stats().overflow_splits, 1u);

  // Split sub-shards now carry residents, and a routed batch visits them.
  const auto infos = engine.GetShardInfos();
  size_t resident = 0;
  for (const auto& info : infos) resident += info.subscriptions;
  EXPECT_EQ(resident, subs.size());

  std::vector<Event> probes;
  for (int e = 0; e < 64; ++e) {
    probes.push_back(Event::Range(ModerateEverywhere(rng, 0.1f)));
  }
  ExpectOracleParity(engine, subs, probes, "post-split");
}

// ---------------------------------------------------------------------------
// Engine: manual controls
// ---------------------------------------------------------------------------

TEST(AdaptiveEngine, ManualDimensionSwitchKeepsMatchSetsExact) {
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.match_threads = 2;
  o.default_policy = MatchPolicy::kIntersecting;
  SubscriptionEngine engine(UnitSchema(), o);

  Rng rng(21);
  std::vector<std::pair<SubscriptionId, Box>> subs;
  for (int i = 0; i < 400; ++i) {
    Box b = testutil::RandomBox(rng, kNd, 0.4f);
    subs.emplace_back(engine.SubscribeBox(b), b);
  }
  std::vector<Event> probes;
  for (int e = 0; e < 48; ++e) {
    probes.push_back(Event::Range(testutil::RandomBox(rng, kNd, 0.5f)));
  }

  EXPECT_FALSE(engine.SetRoutingDimension(kNd));  // outside the schema
  ASSERT_TRUE(engine.SetRoutingDimension(2));
  EXPECT_EQ(engine.routing_dimension(), 2u);
  EXPECT_EQ(engine.rebalance_stats().dimension_switches, 1u);
  ExpectOracleParity(engine, subs, probes, "after SetRoutingDimension");

  // Switching to the current dimension is a no-op success.
  ASSERT_TRUE(engine.SetRoutingDimension(2));
  EXPECT_EQ(engine.rebalance_stats().dimension_switches, 1u);

  // Residency bookkeeping survived the migration.
  size_t resident = 0;
  for (const auto& info : engine.GetShardInfos()) {
    resident += info.subscriptions;
  }
  EXPECT_EQ(resident, subs.size());
  engine.SynchronizeEpochs();
  EXPECT_EQ(engine.epoch_stats().retired_pending, 0u);
}

TEST(AdaptiveEngine, ManualOverflowSplitLifecycle) {
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;
  o.match_threads = 0;
  o.default_policy = MatchPolicy::kIntersecting;
  o.adaptive.overflow_split_shards = 2;  // capacity without the advisor
  SubscriptionEngine engine(UnitSchema(), o);
  ASSERT_EQ(engine.shard_count(), 4u + 2u);  // slices + sub-shards + catch-all
  ASSERT_EQ(engine.overflow_split_capacity(), 2u);

  Rng rng(31);
  std::vector<std::pair<SubscriptionId, Box>> subs;
  for (int i = 0; i < 400; ++i) {
    // Wide on dim 0 (guaranteed straddlers), narrow on dim 1 (splittable).
    Box b = NarrowOn(1, rng.NextFloat(), 0.05f);
    subs.emplace_back(engine.SubscribeBox(b), b);
  }

  // Malformed requests change nothing.
  EXPECT_FALSE(engine.SetOverflowSplit(kNd, {0.5f}));          // bad dim
  EXPECT_FALSE(engine.SetOverflowSplit(1, {0.6f, 0.4f}));      // not ascending
  EXPECT_FALSE(engine.SetOverflowSplit(1, {0.3f, 0.5f, 0.7f}));  // > capacity
  EXPECT_EQ(engine.overflow_split_dimension(), -1);

  ASSERT_TRUE(engine.SetOverflowSplit(1, {0.5f}));
  EXPECT_EQ(engine.overflow_split_dimension(), 1);
  EXPECT_GT(engine.rebalance_stats().straddlers_split, 0u);
  std::vector<Event> probes;
  for (int e = 0; e < 48; ++e) {
    probes.push_back(Event::Range(testutil::RandomBox(rng, kNd, 0.5f)));
  }
  ExpectOracleParity(engine, subs, probes, "split active");

  // A routed batch pays visits to the sub-shards only per its own overlap;
  // the catch-all keeps only double-straddlers (narrow dim-1 boxes fit one
  // split slice unless they cross 0.5 exactly).
  {
    MatchBatchResult res;
    std::vector<Event> evs;
    for (int e = 0; e < 32; ++e) {
      evs.push_back(Event::Range(NarrowOn(1, rng.NextFloat(), 0.05f)));
    }
    engine.MatchBatch(Span<const Event>(evs.data(), evs.size()), &res);
    ASSERT_EQ(res.overflow_shard, engine.shard_count() - 1);
    uint64_t subshard_routed = 0;
    for (size_t s = 4 - 1; s < engine.shard_count() - 1; ++s) {
      subshard_routed += res.per_shard[s].events_routed;
    }
    EXPECT_GT(subshard_routed, 0u);
  }

  // Re-fencing an active split and clearing it both preserve parity.
  ASSERT_TRUE(engine.SetOverflowSplit(1, {0.4f}));
  ExpectOracleParity(engine, subs, probes, "split re-fenced");
  ASSERT_TRUE(engine.ClearOverflowSplit());
  EXPECT_EQ(engine.overflow_split_dimension(), -1);
  ASSERT_TRUE(engine.ClearOverflowSplit());  // idempotent no-op
  ExpectOracleParity(engine, subs, probes, "split cleared");

  size_t resident = 0;
  for (const auto& info : engine.GetShardInfos()) {
    resident += info.subscriptions;
  }
  EXPECT_EQ(resident, subs.size());
}

TEST(AdaptiveEngine, SplitUnavailableWithoutCapacityOrRangeRouting) {
  EngineOptions o;
  o.shards = 4;
  o.sharding = ShardingPolicy::kRange;  // capacity defaults to 0
  SubscriptionEngine range_engine(UnitSchema(), o);
  EXPECT_EQ(range_engine.overflow_split_capacity(), 0u);
  EXPECT_FALSE(range_engine.SetOverflowSplit(1, {0.5f}));

  o.sharding = ShardingPolicy::kHashId;
  SubscriptionEngine hash_engine(UnitSchema(), o);
  EXPECT_FALSE(hash_engine.SetRoutingDimension(1));
  EXPECT_FALSE(hash_engine.SetOverflowSplit(1, {0.5f}));
  EXPECT_FALSE(hash_engine.ClearOverflowSplit());
  const AdaptiveRoutingStats st = hash_engine.adaptive_stats();
  EXPECT_FALSE(st.enabled);
  EXPECT_EQ(st.split_dimension, -1);
}

}  // namespace
}  // namespace accl
