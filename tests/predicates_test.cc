#include <gtest/gtest.h>

#include "geometry/predicates.h"
#include "geometry/query.h"
#include "util/rng.h"

namespace accl {
namespace {

Box MakeBox2(float l0, float h0, float l1, float h1) {
  Box b(2);
  b.set(0, l0, h0);
  b.set(1, l1, h1);
  return b;
}

TEST(Predicates, Intersects2D) {
  Box a = MakeBox2(0.0f, 0.5f, 0.0f, 0.5f);
  Box b = MakeBox2(0.4f, 0.9f, 0.4f, 0.9f);
  Box c = MakeBox2(0.6f, 0.9f, 0.0f, 0.5f);
  EXPECT_TRUE(Intersects(a.view(), b.view()));
  EXPECT_TRUE(Intersects(b.view(), a.view()));
  EXPECT_FALSE(Intersects(a.view(), c.view()));  // disjoint in dim 0
}

TEST(Predicates, IntersectsTouchingEdge) {
  Box a = MakeBox2(0.0f, 0.5f, 0.0f, 0.5f);
  Box b = MakeBox2(0.5f, 1.0f, 0.0f, 0.5f);
  EXPECT_TRUE(Intersects(a.view(), b.view()));
}

TEST(Predicates, ContainedBy) {
  Box inner = MakeBox2(0.2f, 0.4f, 0.2f, 0.4f);
  Box outer = MakeBox2(0.1f, 0.5f, 0.1f, 0.5f);
  EXPECT_TRUE(ContainedBy(inner.view(), outer.view()));
  EXPECT_FALSE(ContainedBy(outer.view(), inner.view()));
  // Equal boxes contain each other.
  EXPECT_TRUE(ContainedBy(inner.view(), inner.view()));
}

TEST(Predicates, Encloses) {
  Box big = MakeBox2(0.0f, 1.0f, 0.0f, 1.0f);
  Box small = MakeBox2(0.3f, 0.6f, 0.3f, 0.6f);
  EXPECT_TRUE(Encloses(big.view(), small.view()));
  EXPECT_FALSE(Encloses(small.view(), big.view()));
}

TEST(Predicates, EnclosesPoint) {
  Box obj = MakeBox2(0.2f, 0.8f, 0.1f, 0.9f);
  Box in = Box::Point({0.5f, 0.5f});
  Box boundary = Box::Point({0.2f, 0.1f});
  Box out = Box::Point({0.1f, 0.5f});
  EXPECT_TRUE(Encloses(obj.view(), in.view()));
  EXPECT_TRUE(Encloses(obj.view(), boundary.view()));
  EXPECT_FALSE(Encloses(obj.view(), out.view()));
}

TEST(Predicates, RelationNames) {
  EXPECT_STREQ(RelationName(Relation::kIntersects), "intersects");
  EXPECT_STREQ(RelationName(Relation::kContainedBy), "contained-by");
  EXPECT_STREQ(RelationName(Relation::kEncloses), "encloses");
}

TEST(Predicates, CountingEarlyExit) {
  // Object fails the intersection test in dim 0: exactly 1 dim checked.
  Box obj = MakeBox2(0.8f, 0.9f, 0.0f, 1.0f);
  Box q = MakeBox2(0.0f, 0.5f, 0.0f, 1.0f);
  uint32_t dims = 0;
  EXPECT_FALSE(
      SatisfiesCounting(obj.view(), q.view(), Relation::kIntersects, &dims));
  EXPECT_EQ(dims, 1u);
}

TEST(Predicates, CountingFullCheckOnMatch) {
  Box obj = MakeBox2(0.1f, 0.2f, 0.1f, 0.2f);
  Box q = MakeBox2(0.0f, 1.0f, 0.0f, 1.0f);
  uint32_t dims = 0;
  EXPECT_TRUE(
      SatisfiesCounting(obj.view(), q.view(), Relation::kIntersects, &dims));
  EXPECT_EQ(dims, 2u);
}

TEST(Predicates, CountingSecondDimFailure) {
  Box obj = MakeBox2(0.1f, 0.2f, 0.8f, 0.9f);
  Box q = MakeBox2(0.0f, 1.0f, 0.0f, 0.5f);
  uint32_t dims = 0;
  EXPECT_FALSE(
      SatisfiesCounting(obj.view(), q.view(), Relation::kIntersects, &dims));
  EXPECT_EQ(dims, 2u);
}

// Relation semantics: containment implies intersection; enclosure implies
// intersection; equality satisfies all three.
TEST(Predicates, RelationImplications) {
  Rng rng(5);
  for (int iter = 0; iter < 2000; ++iter) {
    Box a(3), b(3);
    for (Dim d = 0; d < 3; ++d) {
      float a1 = rng.NextFloat(), a2 = rng.NextFloat();
      if (a1 > a2) std::swap(a1, a2);
      a.set(d, a1, a2);
      float b1 = rng.NextFloat(), b2 = rng.NextFloat();
      if (b1 > b2) std::swap(b1, b2);
      b.set(d, b1, b2);
    }
    if (Satisfies(a.view(), b.view(), Relation::kContainedBy)) {
      EXPECT_TRUE(Satisfies(a.view(), b.view(), Relation::kIntersects));
    }
    if (Satisfies(a.view(), b.view(), Relation::kEncloses)) {
      EXPECT_TRUE(Satisfies(a.view(), b.view(), Relation::kIntersects));
    }
    // Duality: a contained-by b == b encloses a.
    EXPECT_EQ(Satisfies(a.view(), b.view(), Relation::kContainedBy),
              Satisfies(b.view(), a.view(), Relation::kEncloses));
  }
}

TEST(Query, MatchesDelegatesToRelation) {
  Query q = Query::Containment(MakeBox2(0.0f, 0.5f, 0.0f, 0.5f));
  Box in = MakeBox2(0.1f, 0.2f, 0.1f, 0.2f);
  Box out = MakeBox2(0.1f, 0.2f, 0.4f, 0.6f);
  EXPECT_TRUE(q.Matches(in.view()));
  EXPECT_FALSE(q.Matches(out.view()));
}

TEST(Query, FactoryRelations) {
  Box b = MakeBox2(0, 1, 0, 1);
  EXPECT_EQ(Query::Intersection(b).rel, Relation::kIntersects);
  EXPECT_EQ(Query::Containment(b).rel, Relation::kContainedBy);
  EXPECT_EQ(Query::Enclosure(b).rel, Relation::kEncloses);
  Query pq = Query::PointEnclosing({0.5f, 0.5f});
  EXPECT_EQ(pq.rel, Relation::kEncloses);
  EXPECT_EQ(pq.box.lo(0), pq.box.hi(0));
}

TEST(Query, ToStringMentionsRelation) {
  Query q = Query::Intersection(MakeBox2(0, 1, 0, 1));
  EXPECT_NE(q.ToString().find("intersects"), std::string::npos);
}

}  // namespace
}  // namespace accl
