// Cross-cutting parameterized property suites:
//  - piece arithmetic partitions its parent for every division factor,
//  - the benefit functions are exactly the cost-difference identities from
//    the paper's derivations for random parameterizations,
//  - signature refinement is monotone w.r.t. both matching and admission
//    (a refined signature never matches/admits more than its parent).
#include <gtest/gtest.h>

#include "core/clustering_function.h"
#include "core/signature.h"
#include "cost/cost_model.h"
#include "util/rng.h"

namespace accl {
namespace {

// ---------------------------------------------------------------- pieces

class PiecePartition : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PiecePartition, PiecesPartitionParent) {
  const uint32_t f = GetParam();
  Rng rng(100 + f);
  for (int iter = 0; iter < 300; ++iter) {
    const float lo = 0.9f * rng.NextFloat();
    const float hi = lo + 0.001f + (1.0f - lo - 0.001f) * rng.NextFloat();
    const VarInterval v{lo, hi, rng.NextBool(0.5)};
    // Random probes inside the parent land in exactly one piece, and
    // PieceIndex agrees with Piece::Contains.
    for (int t = 0; t < 20; ++t) {
      const float x = lo + (hi - lo) * rng.NextFloat();
      if (!v.Contains(x)) continue;
      int count = 0, where = -1;
      for (uint32_t j = 0; j < f; ++j) {
        if (Piece(v, j, f).Contains(x)) {
          ++count;
          where = static_cast<int>(j);
        }
      }
      ASSERT_EQ(count, 1) << "f=" << f << " x=" << x << " v=" << v.ToString();
      EXPECT_EQ(PieceIndex(v, f, x), where);
    }
    // Pieces tile the parent: piece j ends where piece j+1 begins.
    for (uint32_t j = 0; j + 1 < f; ++j) {
      EXPECT_FLOAT_EQ(Piece(v, j, f).hi, Piece(v, j + 1, f).lo);
      EXPECT_FALSE(Piece(v, j, f).hi_closed);
    }
    EXPECT_FLOAT_EQ(Piece(v, 0, f).lo, v.lo);
    EXPECT_FLOAT_EQ(Piece(v, f - 1, f).hi, v.hi);
    EXPECT_EQ(Piece(v, f - 1, f).hi_closed, v.hi_closed);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, PiecePartition,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u, 16u));

// ------------------------------------------------------------ cost model

struct ScenarioDims {
  StorageScenario scenario;
  Dim nd;
};

class BenefitIdentity : public ::testing::TestWithParam<ScenarioDims> {};

// beta(s,c) must equal T_c - (T_c' + T_s) and mu(c,a) must equal
// (T_c + T_a) - T_a' under the paper's substitution assumptions, for any
// cost parameters — an algebraic identity, checked over random inputs.
TEST_P(BenefitIdentity, ExactCostDifferences) {
  const ScenarioDims p = GetParam();
  Rng rng(7 + static_cast<uint64_t>(p.nd));
  for (int iter = 0; iter < 200; ++iter) {
    SystemParams sys = SystemParams::Paper();
    sys.explore_setup_ms *= rng.Uniform(0.1, 10.0);
    sys.sig_check_ms_per_dim *= rng.Uniform(0.1, 10.0);
    sys.stat_update_ms_per_candidate *= rng.Uniform(0.1, 10.0);
    const CostModel m =
        CostModel::Make(p.scenario, p.nd, sys, rng.Uniform(0, 400));

    const double p_c = rng.NextDouble();
    const double p_s = rng.NextDouble() * p_c;
    const double n_c = rng.Uniform(1, 100000);
    const double n_s = rng.Uniform(0, n_c);
    const double split_before = m.ClusterTime(p_c, n_c);
    const double split_after =
        m.ClusterTime(p_c, n_c - n_s) + m.ClusterTime(p_s, n_s);
    EXPECT_NEAR(m.MaterializationBenefit(p_c, p_s, n_s),
                split_before - split_after, 1e-9 * (1.0 + split_before));

    const double p_a = p_c + (1.0 - p_c) * rng.NextDouble();
    const double n_a = rng.Uniform(0, 100000);
    const double merge_before = m.ClusterTime(p_c, n_c) + m.ClusterTime(p_a, n_a);
    const double merge_after = m.ClusterTime(p_a, n_a + n_c);
    EXPECT_NEAR(m.MergeBenefit(p_c, p_a, n_c), merge_before - merge_after,
                1e-9 * (1.0 + merge_before));

    // Splitting then merging back the same candidate can never both be
    // profitable under unchanged statistics: mu(after split) == -beta.
    EXPECT_NEAR(m.MergeBenefit(p_s, p_c, n_s),
                -m.MaterializationBenefit(p_c, p_s, n_s), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, BenefitIdentity,
    ::testing::Values(ScenarioDims{StorageScenario::kMemory, 2},
                      ScenarioDims{StorageScenario::kMemory, 16},
                      ScenarioDims{StorageScenario::kMemory, 40},
                      ScenarioDims{StorageScenario::kDisk, 16},
                      ScenarioDims{StorageScenario::kDisk, 40}));

// ----------------------------------------------------- refinement monotony

class RefinementMonotony : public ::testing::TestWithParam<Relation> {};

// If sig2 is refined from sig1, then (a) every object matching sig2
// matches sig1, and (b) every query admitted by sig2 is admitted by sig1.
// This is what makes merges safe and exploration sound.
TEST_P(RefinementMonotony, RefinedSignatureIsStricter) {
  const Relation rel = GetParam();
  Rng rng(31 + static_cast<int>(rel));
  const Dim nd = 4;
  for (int iter = 0; iter < 200; ++iter) {
    // Random parent; then refine a random dim via a random candidate.
    Signature parent(nd);
    if (rng.NextBool(0.5)) {
      const Dim d = static_cast<Dim>(rng.NextBelow(nd));
      const float lo = 0.5f * rng.NextFloat();
      parent.set(d, {lo, lo + 0.4f, false}, {lo, lo + 0.4f, false});
    }
    CandidateSet cs(parent, 4, 0.0);
    const size_t ci = rng.NextBelow(cs.size());
    const Signature child = cs.MakeSignature(parent, ci);
    ASSERT_TRUE(child.RefinedFrom(parent));

    for (int t = 0; t < 20; ++t) {
      // Random object.
      Box obj(nd);
      for (Dim d = 0; d < nd; ++d) {
        float a = rng.NextFloat(), b = rng.NextFloat();
        if (a > b) std::swap(a, b);
        obj.set(d, a, b);
      }
      if (child.MatchesObject(obj.view())) {
        EXPECT_TRUE(parent.MatchesObject(obj.view()));
      }
      // Random query.
      Box qb(nd);
      for (Dim d = 0; d < nd; ++d) {
        float a = rng.NextFloat(), b = rng.NextFloat();
        if (a > b) std::swap(a, b);
        qb.set(d, a, b);
      }
      Query q(qb, rel);
      if (child.AdmitsQuery(q)) {
        EXPECT_TRUE(parent.AdmitsQuery(q));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRelations, RefinementMonotony,
                         ::testing::Values(Relation::kIntersects,
                                           Relation::kContainedBy,
                                           Relation::kEncloses));

}  // namespace
}  // namespace accl
