// Streamed MatchBatch pipeline parity and plumbing:
//
//   - The streamed MatchSink overload, the materialized MatchBatchResult
//     overload, and a brute-force oracle must agree byte-for-byte for every
//     thread count {0, 1, 2, 4, 8}, both sharding policies (broadcast
//     kHashId and range-routed kRange), and both match policies — the
//     pipeline's countdown/ready-stack finalization must be invisible in
//     the output.
//   - The overflow gauge is explicitly absent (kNoOverflowShard sentinel)
//     under broadcast policies and populated under kRange; the per-shard
//     resident_subscriptions gauge is populated under every policy.
//   - MatchBatchResult reuse across batches is capacity-preserving: the
//     per-event vectors' storage survives Clear() and is reused in place.
//   - An adversarial run: streamed and materialized batches stay
//     oracle-exact while a rebalancer thread hammers RebalanceOnce and
//     wholesale SetRangeBoundaries swaps (the TSan CI job runs this file).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "sdi/subscription_engine.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

constexpr Dim kNd = 4;

AttributeSchema UnitSchema() {
  AttributeSchema s;
  for (Dim d = 0; d < kNd; ++d) {
    s.AddAttribute("a" + std::to_string(d), 0.0, 1.0);
  }
  return s;
}

SubscriptionEngine MakeEngine(uint32_t shards, uint32_t threads,
                              ShardingPolicy sharding) {
  EngineOptions o;
  o.index.reorg_period = 25;
  o.index.min_observation = 8;
  o.default_policy = MatchPolicy::kIntersecting;
  o.shards = shards;
  o.match_threads = threads;
  o.sharding = sharding;
  return SubscriptionEngine(UnitSchema(), o);
}

/// The engine's event->relation rule, replicated for the oracle.
Relation OracleRelation(const Event& ev, MatchPolicy policy) {
  return ev.is_point || policy == MatchPolicy::kCovering
             ? Relation::kEncloses
             : Relation::kIntersects;
}

std::vector<ObjectId> Oracle(
    const std::vector<std::pair<SubscriptionId, Box>>& subs, const Event& ev,
    MatchPolicy policy) {
  Query q(ev.box, OracleRelation(ev, policy));
  std::vector<ObjectId> out;
  for (const auto& [id, box] : subs) {
    if (q.Matches(box.view())) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// A mixed workload: range events plus point events (point events exercise
/// the enclosure degeneration under both match policies).
std::vector<Event> MakeEvents(Rng& rng, size_t n) {
  std::vector<Event> evs;
  evs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 4 == 0) {
      std::vector<float> pt(kNd);
      for (auto& x : pt) x = rng.NextFloat();
      evs.push_back(Event::Point(std::move(pt)));
    } else {
      evs.push_back(Event::Range(testutil::RandomBox(rng, kNd, 0.4f)));
    }
  }
  return evs;
}

TEST(MatchPipeline, StreamedEqualsMaterializedEqualsOracleEverywhere) {
  Rng rng(777);
  std::vector<Box> boxes;
  for (int i = 0; i < 900; ++i) {
    boxes.push_back(testutil::RandomBox(rng, kNd, 0.5f));
  }
  const std::vector<Event> events = MakeEvents(rng, 96);

  const uint32_t thread_counts[] = {0, 1, 2, 4, 8};
  const ShardingPolicy shardings[] = {ShardingPolicy::kHashId,
                                      ShardingPolicy::kRange};
  const MatchPolicy policies[] = {MatchPolicy::kIntersecting,
                                  MatchPolicy::kCovering};
  for (const ShardingPolicy sharding : shardings) {
    for (const uint32_t threads : thread_counts) {
      SubscriptionEngine engine = MakeEngine(4, threads, sharding);
      std::vector<std::pair<SubscriptionId, Box>> subs;
      for (const Box& b : boxes) subs.emplace_back(engine.SubscribeBox(b), b);

      for (const MatchPolicy policy : policies) {
        MatchBatchResult res;
        engine.MatchBatch(Span<const Event>(events.data(), events.size()),
                          policy, &res);
        VectorMatchSink sink(events.size());
        engine.MatchBatch(Span<const Event>(events.data(), events.size()),
                          policy, &sink);
        ASSERT_EQ(res.matches.size(), events.size());
        ASSERT_EQ(sink.matches().size(), events.size());
        for (size_t e = 0; e < events.size(); ++e) {
          const std::vector<ObjectId> want = Oracle(subs, events[e], policy);
          EXPECT_EQ(res.matches[e], want)
              << "materialized, threads=" << threads << " event=" << e;
          EXPECT_EQ(sink.matches()[e], want)
              << "streamed, threads=" << threads << " event=" << e;
        }
      }
    }
  }
}

TEST(MatchPipeline, OverflowGaugeAbsentForBroadcastPopulatedForRange) {
  Rng rng(778);
  std::vector<Box> boxes;
  for (int i = 0; i < 400; ++i) {
    boxes.push_back(testutil::RandomBox(rng, kNd, 0.5f));
  }
  const std::vector<Event> events = MakeEvents(rng, 32);

  for (const ShardingPolicy sharding :
       {ShardingPolicy::kHashId, ShardingPolicy::kRange}) {
    SubscriptionEngine engine = MakeEngine(4, 2, sharding);
    for (const Box& b : boxes) engine.SubscribeBox(b);
    MatchBatchResult res;
    engine.MatchBatch(Span<const Event>(events.data(), events.size()), &res);

    // resident_subscriptions is populated under EVERY policy: the gauges
    // sum to the subscription count (each subscription owned by one shard
    // in a quiesced engine).
    uint64_t residents = 0;
    for (const ShardMetrics& sm : res.per_shard) {
      residents += sm.resident_subscriptions;
    }
    EXPECT_EQ(residents, boxes.size());

    if (sharding == ShardingPolicy::kRange) {
      ASSERT_EQ(res.overflow_shard, res.per_shard.size() - 1);
      // The overflow gauge is the overflow shard's resident count.
      EXPECT_EQ(res.per_shard[res.overflow_shard].overflow_subscriptions,
                res.per_shard[res.overflow_shard].resident_subscriptions);
      for (size_t s = 0; s + 1 < res.per_shard.size(); ++s) {
        EXPECT_EQ(res.per_shard[s].overflow_subscriptions, 0u) << s;
      }
    } else {
      // Explicitly absent, not silently zero: the sentinel says no entry
      // carries the gauge.
      EXPECT_EQ(res.overflow_shard, MatchBatchResult::kNoOverflowShard);
      for (const ShardMetrics& sm : res.per_shard) {
        EXPECT_EQ(sm.overflow_subscriptions, 0u);
      }
    }
  }
}

TEST(MatchPipeline, ResultReuseIsCapacityPreserving) {
  Rng rng(779);
  std::vector<Box> boxes;
  for (int i = 0; i < 600; ++i) {
    boxes.push_back(testutil::RandomBox(rng, kNd, 0.5f));
  }
  const std::vector<Event> events = MakeEvents(rng, 48);
  SubscriptionEngine engine = MakeEngine(4, 2, ShardingPolicy::kHashId);
  for (const Box& b : boxes) engine.SubscribeBox(b);

  MatchBatchResult res;
  engine.MatchBatch(Span<const Event>(events.data(), events.size()), &res);
  const std::vector<std::vector<ObjectId>> first = res.matches;
  // Capture per-event storage pointers; the same batch re-matched into the
  // same result must reuse them in place (Clear() preserves capacity and
  // assign of an equal-size range cannot reallocate).
  std::vector<const ObjectId*> storage;
  for (const auto& m : res.matches) storage.push_back(m.data());

  engine.MatchBatch(Span<const Event>(events.data(), events.size()), &res);
  ASSERT_EQ(res.matches.size(), first.size());
  for (size_t e = 0; e < first.size(); ++e) {
    EXPECT_EQ(res.matches[e], first[e]) << e;
    if (!first[e].empty()) {
      EXPECT_EQ(res.matches[e].data(), storage[e])
          << "event " << e << " reallocated its match storage";
    }
  }
}

std::vector<float> RandomBounds(Rng& rng, size_t n_bounds) {
  std::vector<float> b(n_bounds);
  for (size_t i = 0; i < n_bounds; ++i) {
    const float cell = 0.9f / static_cast<float>(n_bounds + 1);
    b[i] = 0.05f + cell * (static_cast<float>(i + 1) +
                           0.8f * (rng.NextFloat() - 0.5f));
  }
  return b;
}

TEST(MatchPipeline, StreamedStaysOracleExactDuringContinuousRebalance) {
  SubscriptionEngine engine = MakeEngine(5, 4, ShardingPolicy::kRange);
  Rng rng(4343);
  std::vector<std::pair<SubscriptionId, Box>> subs;
  for (int i = 0; i < 500; ++i) {
    const Box b = testutil::RandomBox(rng, kNd, 0.5f);
    subs.emplace_back(engine.SubscribeBox(b), b);
  }
  const std::vector<Event> events = MakeEvents(rng, 24);
  std::vector<std::vector<ObjectId>> expected;
  for (const Event& ev : events) {
    expected.push_back(Oracle(subs, ev, MatchPolicy::kIntersecting));
  }

  std::atomic<bool> stop{false};
  std::thread rebalancer([&] {
    Rng rr(99);
    while (!stop.load(std::memory_order_relaxed)) {
      if (rr.NextBool(0.3)) {
        engine.SetRangeBoundaries(RandomBounds(rr, engine.shard_count() - 2));
      } else {
        engine.RebalanceOnce();
      }
    }
  });

  MatchBatchResult res;
  VectorMatchSink sink;
  for (int pass = 0; pass < 40; ++pass) {
    engine.MatchBatch(Span<const Event>(events.data(), events.size()), &res);
    sink.Reset(events.size());
    engine.MatchBatch(Span<const Event>(events.data(), events.size()), &sink);
    for (size_t e = 0; e < events.size(); ++e) {
      ASSERT_EQ(res.matches[e], expected[e])
          << "materialized diverged mid-migration, pass " << pass;
      ASSERT_EQ(sink.matches()[e], expected[e])
          << "streamed diverged mid-migration, pass " << pass;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  rebalancer.join();
  engine.SynchronizeEpochs();
}

}  // namespace
}  // namespace accl
