#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"

namespace accl {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  exec::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsOnCaller) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.concurrency(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(16);
  pool.ParallelFor(ran.size(),
                   [&](size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  exec::ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(10, [&](size_t i) { sum.fetch_add(i + 1); });
  }
  EXPECT_EQ(sum.load(), 50u * 55u);
}

TEST(ThreadPool, DestructorDrainsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    exec::ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool joins only after the queue is empty
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ParallelForDynamicCoversEveryIndexExactlyOnce) {
  exec::ThreadPool pool(3);
  std::vector<std::atomic<int>> hit(1000);
  for (auto& h : hit) h.store(0);
  pool.ParallelForDynamic(1000, [&](size_t i) { hit[i].fetch_add(1); });
  for (size_t i = 0; i < hit.size(); ++i) {
    EXPECT_EQ(hit[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForDynamicZeroWorkersRunsOnCaller) {
  exec::ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> ran{0};
  pool.ParallelForDynamic(64, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ParallelForDynamicReusableAcrossManyCalls) {
  exec::ThreadPool pool(2);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelForDynamic(20, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, IdleHookRunsWhenWorkersDrain) {
  exec::ThreadPool pool(2);
  std::atomic<int> hook_runs{0};
  pool.SetIdleHook([&] { hook_runs.fetch_add(1); });
  std::atomic<int> ran{0};
  pool.ParallelFor(32, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
  // Workers go idle after the burst drains; each idle transition runs the
  // hook once. Poll rather than assume scheduling: the workers may need a
  // moment to re-acquire the queue lock and observe emptiness.
  for (int spin = 0; spin < 2000 && hook_runs.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(hook_runs.load(), 0);
}

TEST(ThreadPool, ParallelForFromMultipleCallers) {
  // Two caller threads sharing one pool: per-call completion tracking must
  // not cross wires even when callers help drain each other's tasks.
  exec::ThreadPool pool(2);
  std::atomic<uint64_t> a{0}, b{0};
  std::thread t1(
      [&] { pool.ParallelFor(500, [&](size_t) { a.fetch_add(1); }); });
  std::thread t2(
      [&] { pool.ParallelFor(500, [&](size_t) { b.fetch_add(1); }); });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 500u);
  EXPECT_EQ(b.load(), 500u);
}

}  // namespace
}  // namespace accl
