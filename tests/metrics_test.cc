#include <gtest/gtest.h>

#include "api/metrics.h"

namespace accl {
namespace {

QueryMetrics Sample() {
  QueryMetrics m;
  m.groups_explored = 3;
  m.groups_total = 10;
  m.objects_verified = 100;
  m.dims_checked = 250;
  m.bytes_verified = 6800;
  m.result_count = 7;
  m.sim_time_ms = 1.5;
  m.disk_seeks = 3;
  m.disk_bytes = 6800;
  return m;
}

TEST(QueryMetrics, ClearZeroesEverything) {
  QueryMetrics m = Sample();
  m.Clear();
  EXPECT_EQ(m.groups_explored, 0u);
  EXPECT_EQ(m.groups_total, 0u);
  EXPECT_EQ(m.objects_verified, 0u);
  EXPECT_EQ(m.dims_checked, 0u);
  EXPECT_EQ(m.bytes_verified, 0u);
  EXPECT_EQ(m.result_count, 0u);
  EXPECT_EQ(m.sim_time_ms, 0.0);
  EXPECT_EQ(m.disk_seeks, 0u);
  EXPECT_EQ(m.disk_bytes, 0u);
}

TEST(QueryMetrics, AccumulateSums) {
  QueryMetrics a = Sample();
  a += Sample();
  EXPECT_EQ(a.groups_explored, 6u);
  EXPECT_EQ(a.objects_verified, 200u);
  EXPECT_EQ(a.result_count, 14u);
  EXPECT_DOUBLE_EQ(a.sim_time_ms, 3.0);
  EXPECT_EQ(a.disk_seeks, 6u);
}

TEST(ExperimentStats, AddQueryComputesRatios) {
  ExperimentStats s;
  s.AddQuery(Sample(), /*wall=*/2.0, /*db_size=*/1000);
  EXPECT_EQ(s.wall_ms.count(), 1u);
  EXPECT_DOUBLE_EQ(s.wall_ms.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.sim_ms.mean(), 1.5);
  EXPECT_DOUBLE_EQ(s.explored_ratio.mean(), 0.3);
  EXPECT_DOUBLE_EQ(s.verified_ratio.mean(), 0.1);
  EXPECT_DOUBLE_EQ(s.result_count.mean(), 7.0);
}

TEST(ExperimentStats, SkipsRatiosWithoutDenominators) {
  ExperimentStats s;
  QueryMetrics m = Sample();
  m.groups_total = 0;
  s.AddQuery(m, 1.0, /*db_size=*/0);
  EXPECT_EQ(s.explored_ratio.count(), 0u);
  EXPECT_EQ(s.verified_ratio.count(), 0u);
  EXPECT_EQ(s.wall_ms.count(), 1u);
}

TEST(ExperimentStats, AveragesOverManyQueries) {
  ExperimentStats s;
  for (int i = 1; i <= 10; ++i) {
    QueryMetrics m;
    m.groups_total = 10;
    m.groups_explored = static_cast<uint64_t>(i);
    s.AddQuery(m, static_cast<double>(i), 100);
  }
  EXPECT_DOUBLE_EQ(s.wall_ms.mean(), 5.5);
  EXPECT_DOUBLE_EQ(s.explored_ratio.mean(), 0.55);
  EXPECT_EQ(s.wall_ms.max(), 10.0);
}

}  // namespace
}  // namespace accl
