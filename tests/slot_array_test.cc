#include <gtest/gtest.h>

#include "storage/slot_array.h"
#include "util/rng.h"

namespace accl {
namespace {

Box MakeBox(Dim nd, float lo, float hi) {
  Box b(nd);
  for (Dim d = 0; d < nd; ++d) b.set(d, lo, hi);
  return b;
}

TEST(SlotArray, StartsEmpty) {
  SlotArray a(4);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.live_bytes(), 0u);
  EXPECT_DOUBLE_EQ(a.utilization(), 1.0);
}

TEST(SlotArray, AppendAndRead) {
  SlotArray a(2);
  Box b1 = MakeBox(2, 0.1f, 0.2f);
  Box b2 = MakeBox(2, 0.3f, 0.4f);
  a.Append(10, b1.view());
  a.Append(20, b2.view());
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.id(0), 10u);
  EXPECT_EQ(a.id(1), 20u);
  EXPECT_EQ(Box(a.box(0)), b1);
  EXPECT_EQ(Box(a.box(1)), b2);
}

TEST(SlotArray, LiveBytesUsesPaperLayout) {
  SlotArray a(16);
  a.Append(1, MakeBox(16, 0.0f, 1.0f).view());
  EXPECT_EQ(a.live_bytes(), ObjectBytes(16));
}

TEST(SlotArray, RemoveAtSwapsLast) {
  SlotArray a(1);
  a.Append(1, MakeBox(1, 0.1f, 0.1f).view());
  a.Append(2, MakeBox(1, 0.2f, 0.2f).view());
  a.Append(3, MakeBox(1, 0.3f, 0.3f).view());
  ObjectId moved = a.RemoveAt(0);
  EXPECT_EQ(moved, 3u);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.id(0), 3u);
  EXPECT_FLOAT_EQ(a.box(0).lo(0), 0.3f);
}

TEST(SlotArray, RemoveLastReturnsInvalid) {
  SlotArray a(1);
  a.Append(1, MakeBox(1, 0.1f, 0.1f).view());
  EXPECT_EQ(a.RemoveAt(0), kInvalidObject);
  EXPECT_TRUE(a.empty());
}

TEST(SlotArray, FindLocatesId) {
  SlotArray a(1);
  for (ObjectId i = 0; i < 10; ++i) {
    a.Append(i * 7, MakeBox(1, 0.0f, 1.0f).view());
  }
  EXPECT_EQ(a.Find(21), 3u);
  EXPECT_EQ(a.Find(999), static_cast<size_t>(-1));
}

TEST(SlotArray, UtilizationBoundedByReservePolicy) {
  // With 25% reserve, steady-state utilization stays >= 1/1.25 = 0.8 right
  // after relocation, and >= 70% is the paper's guarantee.
  SlotArray a(4, 0.25);
  for (ObjectId i = 0; i < 5000; ++i) {
    a.Append(i, MakeBox(4, 0.2f, 0.4f).view());
    if (a.size() > 8) {
      EXPECT_GE(a.utilization(), 0.70) << "at i=" << i;
    }
  }
}

TEST(SlotArray, RelocationsAreAmortized) {
  SlotArray a(2, 0.25);
  for (ObjectId i = 0; i < 10000; ++i) {
    a.Append(i, MakeBox(2, 0.1f, 0.9f).view());
  }
  // Growth is geometric-ish via the reserve; relocations must be far fewer
  // than appends.
  EXPECT_LT(a.relocations(), 200u);
}

TEST(SlotArray, CompactRestoresReserveBound) {
  SlotArray a(2, 0.25);
  for (ObjectId i = 0; i < 1000; ++i) {
    a.Append(i, MakeBox(2, 0.1f, 0.9f).view());
  }
  while (a.size() > 20) a.RemoveAt(0);
  a.Compact();
  EXPECT_GE(a.utilization(), 0.70);
}

TEST(SlotArray, ClearKeepsDims) {
  SlotArray a(3);
  a.Append(1, MakeBox(3, 0.0f, 1.0f).view());
  a.Clear();
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.dims(), 3u);
  a.Append(2, MakeBox(3, 0.5f, 0.6f).view());
  EXPECT_EQ(a.size(), 1u);
}

TEST(SlotArray, ManyRandomOpsKeepConsistency) {
  SlotArray a(2, 0.3);
  Rng rng(3);
  std::vector<ObjectId> live;
  ObjectId next = 0;
  for (int op = 0; op < 5000; ++op) {
    if (live.empty() || rng.NextBool(0.6)) {
      a.Append(next, MakeBox(2, 0.1f, 0.2f).view());
      live.push_back(next++);
    } else {
      size_t k = rng.NextBelow(live.size());
      size_t slot = a.Find(live[k]);
      ASSERT_NE(slot, static_cast<size_t>(-1));
      a.RemoveAt(slot);
      live.erase(live.begin() + k);
    }
    ASSERT_EQ(a.size(), live.size());
  }
}

}  // namespace
}  // namespace accl
