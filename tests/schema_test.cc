#include <gtest/gtest.h>

#include "api/schema.h"

namespace accl {
namespace {

AttributeSchema ApartmentSchema() {
  AttributeSchema s;
  s.AddAttribute("price", 0, 3000);
  s.AddAttribute("rooms", 0, 10);
  s.AddAttribute("baths", 0, 5);
  return s;
}

TEST(Schema, AddAndLookup) {
  AttributeSchema s = ApartmentSchema();
  EXPECT_EQ(s.dims(), 3u);
  EXPECT_EQ(s.DimensionOf("price"), std::optional<Dim>(0u));
  EXPECT_EQ(s.DimensionOf("baths"), std::optional<Dim>(2u));
  EXPECT_FALSE(s.DimensionOf("garage").has_value());
  EXPECT_EQ(s.NameOf(1), "rooms");
  EXPECT_EQ(s.DomainLo(0), 0.0);
  EXPECT_EQ(s.DomainHi(0), 3000.0);
}

TEST(Schema, DuplicateNameAborts) {
  AttributeSchema s;
  s.AddAttribute("x", 0, 1);
  EXPECT_DEATH(s.AddAttribute("x", 0, 2), "ACCL_CHECK");
}

TEST(Schema, InvertedDomainAborts) {
  AttributeSchema s;
  EXPECT_DEATH(s.AddAttribute("bad", 5, 5), "ACCL_CHECK");
}

TEST(Schema, NormalizeDenormalizeRoundTrip) {
  AttributeSchema s = ApartmentSchema();
  EXPECT_FLOAT_EQ(s.Normalize(0, 1500), 0.5f);
  EXPECT_FLOAT_EQ(s.Normalize(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(s.Normalize(1, 10), 1.0f);
  EXPECT_NEAR(s.Denormalize(0, s.Normalize(0, 725)), 725.0, 1e-3);
}

TEST(Schema, NormalizeClampsToDomain) {
  AttributeSchema s = ApartmentSchema();
  EXPECT_EQ(s.Normalize(0, -100), 0.0f);
  EXPECT_EQ(s.Normalize(0, 99999), 1.0f);
}

TEST(Schema, MakeBoxDefaultsUnconstrained) {
  AttributeSchema s = ApartmentSchema();
  Box b;
  ASSERT_TRUE(s.MakeBox({{"price", 400, 700}}, &b));
  EXPECT_NEAR(b.lo(0), 400.0 / 3000.0, 1e-6);
  EXPECT_NEAR(b.hi(0), 700.0 / 3000.0, 1e-6);
  // rooms & baths unconstrained.
  EXPECT_EQ(b.lo(1), 0.0f);
  EXPECT_EQ(b.hi(1), 1.0f);
  EXPECT_EQ(b.lo(2), 0.0f);
  EXPECT_EQ(b.hi(2), 1.0f);
}

TEST(Schema, MakeBoxRejectsUnknownAttribute) {
  AttributeSchema s = ApartmentSchema();
  Box b;
  EXPECT_FALSE(s.MakeBox({{"pool", 0, 1}}, &b));
}

TEST(Schema, MakeBoxRejectsDuplicateAttribute) {
  AttributeSchema s = ApartmentSchema();
  Box b;
  EXPECT_FALSE(s.MakeBox({{"rooms", 1, 2}, {"rooms", 3, 4}}, &b));
}

TEST(Schema, MakeBoxRejectsInvertedRange) {
  AttributeSchema s = ApartmentSchema();
  Box b;
  EXPECT_FALSE(s.MakeBox({{"price", 700, 400}}, &b));
}

TEST(Schema, MakePointRequiresAllAttributes) {
  AttributeSchema s = ApartmentSchema();
  std::vector<float> pt;
  EXPECT_FALSE(s.MakePoint({{"price", 500}}, &pt));
  ASSERT_TRUE(
      s.MakePoint({{"price", 600}, {"rooms", 4}, {"baths", 2}}, &pt));
  ASSERT_EQ(pt.size(), 3u);
  EXPECT_FLOAT_EQ(pt[0], 0.2f);
  EXPECT_FLOAT_EQ(pt[1], 0.4f);
  EXPECT_FLOAT_EQ(pt[2], 0.4f);
}

TEST(Schema, MakePointRejectsDuplicates) {
  AttributeSchema s = ApartmentSchema();
  std::vector<float> pt;
  EXPECT_FALSE(
      s.MakePoint({{"price", 600}, {"price", 700}, {"rooms", 4}}, &pt));
}

TEST(Schema, DescribeUsesDomainUnits) {
  AttributeSchema s = ApartmentSchema();
  Box b;
  ASSERT_TRUE(s.MakeBox({{"price", 400, 700}, {"rooms", 3, 5}}, &b));
  const std::string d = s.Describe(b);
  EXPECT_NE(d.find("price=[400,700]"), std::string::npos) << d;
  EXPECT_NE(d.find("rooms=[3,5]"), std::string::npos) << d;
}

}  // namespace
}  // namespace accl
