#include <gtest/gtest.h>

#include <cstdio>

#include "storage/persist.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/query_gen.h"

namespace accl {
namespace {

using testutil::Load;
using testutil::RandomBox;
using testutil::RunQuery;

AdaptiveConfig Cfg(Dim nd) {
  AdaptiveConfig cfg;
  cfg.nd = nd;
  cfg.reorg_period = 50;
  cfg.min_observation = 16;
  return cfg;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

// Builds an index with real cluster structure.
std::unique_ptr<AdaptiveIndex> BuildStructured(Dim nd, size_t count,
                                               uint64_t seed) {
  auto idx = std::make_unique<AdaptiveIndex>(Cfg(nd));
  UniformSpec spec;
  spec.nd = nd;
  spec.count = count;
  spec.seed = seed;
  Load(*idx, GenerateUniform(spec));
  auto qs = GenerateQueriesWithExtent(nd, Relation::kIntersects, 600, 0.05,
                                      seed ^ 0xABC);
  std::vector<ObjectId> out;
  for (const Query& q : qs) {
    out.clear();
    idx->Execute(q, &out);
  }
  return idx;
}

TEST(Persist, RoundTripPreservesStructureAndAnswers) {
  auto idx = BuildStructured(3, 5000, 1);
  ASSERT_GT(idx->cluster_count(), 1u);
  const std::string path = TempPath("accl_roundtrip.img");
  ASSERT_TRUE(SaveIndexImage(*idx, path));

  auto loaded = LoadIndexImage(path, Cfg(3));
  ASSERT_NE(loaded, nullptr);
  loaded->CheckInvariants();
  EXPECT_EQ(loaded->size(), idx->size());
  EXPECT_EQ(loaded->cluster_count(), idx->cluster_count());

  Rng rng(2);
  for (int i = 0; i < 40; ++i) {
    Box qb = RandomBox(rng, 3, 0.4f);
    for (Relation rel : {Relation::kIntersects, Relation::kContainedBy,
                         Relation::kEncloses}) {
      Query q(qb, rel);
      EXPECT_EQ(RunQuery(*loaded, q), RunQuery(*idx, q));
    }
  }
  std::remove(path.c_str());
}

TEST(Persist, LoadedIndexKeepsAdapting) {
  auto idx = BuildStructured(2, 4000, 3);
  const std::string path = TempPath("accl_adapting.img");
  ASSERT_TRUE(SaveIndexImage(*idx, path));
  auto loaded = LoadIndexImage(path, Cfg(2));
  ASSERT_NE(loaded, nullptr);
  // Statistics restart empty; further queries must still be answerable and
  // reorganization must still run without violating invariants.
  auto qs = GenerateQueriesWithExtent(2, Relation::kIntersects, 300, 0.05, 9);
  std::vector<ObjectId> out;
  for (const Query& q : qs) {
    out.clear();
    loaded->Execute(q, &out);
  }
  loaded->CheckInvariants();
  std::remove(path.c_str());
}

TEST(Persist, EmptyIndexRoundTrip) {
  AdaptiveIndex idx(Cfg(4));
  const std::string path = TempPath("accl_empty.img");
  ASSERT_TRUE(SaveIndexImage(idx, path));
  auto loaded = LoadIndexImage(path, Cfg(4));
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->cluster_count(), 1u);
  std::remove(path.c_str());
}

TEST(Persist, RejectsMissingFile) {
  EXPECT_EQ(LoadIndexImage("/nonexistent/path.img", Cfg(2)), nullptr);
}

TEST(Persist, RejectsWrongDimensionality) {
  auto idx = BuildStructured(3, 1000, 5);
  const std::string path = TempPath("accl_wrongnd.img");
  ASSERT_TRUE(SaveIndexImage(*idx, path));
  EXPECT_EQ(LoadIndexImage(path, Cfg(4)), nullptr);
  std::remove(path.c_str());
}

TEST(Persist, RejectsCorruptedMagic) {
  auto idx = BuildStructured(2, 500, 7);
  const std::string path = TempPath("accl_badmagic.img");
  ASSERT_TRUE(SaveIndexImage(*idx, path));
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFile(path, &bytes));
  bytes[0] ^= 0xFF;
  ASSERT_TRUE(WriteFile(path, bytes));
  EXPECT_EQ(LoadIndexImage(path, Cfg(2)), nullptr);
  std::remove(path.c_str());
}

TEST(Persist, RejectsTruncatedFile) {
  auto idx = BuildStructured(2, 2000, 9);
  const std::string path = TempPath("accl_trunc.img");
  ASSERT_TRUE(SaveIndexImage(*idx, path));
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFile(path, &bytes));
  bytes.resize(bytes.size() * 2 / 3);
  ASSERT_TRUE(WriteFile(path, bytes));
  EXPECT_EQ(LoadIndexImage(path, Cfg(2)), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace accl
