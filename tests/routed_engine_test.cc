// Range-routed dispatch parity: a kRange engine must return byte-identical
// (ObjectId-sorted) match sets to the serial single-index engine and to the
// broadcast sharded engine, for every boundary placement — including
// subscriptions straddling a boundary, degenerate (point) boxes, and boxes
// whose endpoints sit exactly on a boundary — while visiting strictly fewer
// shards than broadcast on selective workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sdi/subscription_engine.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

constexpr Dim kNd = 5;

AttributeSchema UnitSchema() {
  AttributeSchema s;
  for (Dim d = 0; d < kNd; ++d) {
    s.AddAttribute("a" + std::to_string(d), 0.0, 1.0);
  }
  return s;
}

EngineOptions Opts(uint32_t shards, uint32_t threads,
                   ShardingPolicy policy = ShardingPolicy::kHashId,
                   std::vector<float> boundaries = {}) {
  EngineOptions o;
  o.index.reorg_period = 40;
  o.index.min_observation = 8;
  o.shards = shards;
  o.match_threads = threads;
  o.sharding = policy;
  o.range_boundaries = std::move(boundaries);
  return o;
}

/// The engine's slice rule, replicated for oracle checks: first fence
/// strictly greater than x.
uint32_t SliceOf(const std::vector<float>& bounds, float x) {
  return static_cast<uint32_t>(
      std::upper_bound(bounds.begin(), bounds.end(), x) - bounds.begin());
}

uint32_t ExpectedShard(const std::vector<float>& bounds, uint32_t k,
                       const Box& box) {
  const uint32_t a = SliceOf(bounds, box.lo(0));
  const uint32_t b = SliceOf(bounds, box.hi(0));
  return a == b ? a : k - 1;
}

/// A box whose dimension-0 endpoints are adversarial against `snap`
/// values (boundary fences): with some probability lo and/or hi are set
/// exactly on a fence, made degenerate, or made to straddle a fence.
Box AdversarialBox(Rng& rng, const std::vector<float>& snap) {
  Box b = testutil::RandomBox(rng, kNd, 0.5f);
  if (!snap.empty() && rng.NextBool(0.5)) {
    const float fence = snap[rng.NextBelow(snap.size())];
    switch (rng.NextBelow(4)) {
      case 0:  // point box exactly on the fence
        b.set(0, fence, fence);
        break;
      case 1:  // ends exactly on the fence
        b.set(0, std::min(b.lo(0), fence), fence);
        break;
      case 2:  // starts exactly on the fence
        b.set(0, fence, std::max(b.hi(0), fence));
        break;
      case 3:  // straddles the fence
        b.set(0, fence * 0.5f, fence + (1.0f - fence) * 0.5f);
        break;
    }
  } else if (rng.NextBool(0.15)) {
    const float x = rng.NextFloat();
    b.set(0, x, x);  // degenerate dimension-0 interval off the fences
  }
  return b;
}

std::vector<Event> MakeEvents(Rng& rng, size_t n,
                              const std::vector<float>& snap) {
  std::vector<Event> evs;
  evs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.4)) {
      std::vector<float> pt(kNd);
      for (auto& x : pt) x = rng.NextFloat();
      if (!snap.empty() && rng.NextBool(0.3)) {
        pt[0] = snap[rng.NextBelow(snap.size())];  // point exactly on fence
      }
      evs.push_back(Event::Point(std::move(pt)));
    } else {
      evs.push_back(Event::Range(AdversarialBox(rng, snap)));
    }
  }
  return evs;
}

/// Seeded subscribe/unsubscribe/match workload; returns all match sets.
std::vector<std::vector<ObjectId>> DriveWorkload(
    SubscriptionEngine& engine, MatchPolicy policy, uint64_t seed,
    const std::vector<float>& snap) {
  Rng rng(seed);
  std::vector<SubscriptionId> live;
  std::vector<std::vector<ObjectId>> all_matches;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 200; ++i) {
      const SubscriptionId id = engine.SubscribeBox(AdversarialBox(rng, snap));
      EXPECT_NE(id, kInvalidObject);
      live.push_back(id);
    }
    for (int i = 0; i < 30 && live.size() > 1; ++i) {
      const size_t victim = rng.NextBelow(live.size());
      EXPECT_TRUE(engine.Unsubscribe(live[victim]));
      live[victim] = live.back();
      live.pop_back();
    }
    std::vector<Event> events = MakeEvents(rng, 24, snap);
    MatchBatchResult res;
    engine.MatchBatch(Span<const Event>(events.data(), events.size()), policy,
                      &res);
    for (auto& m : res.matches) all_matches.push_back(std::move(m));
  }
  return all_matches;
}

TEST(RoutedEngine, ParityAcrossBoundaryPlacementsVsSerialAndBroadcast) {
  // Snap values cover every fence any config under test uses, so the
  // workload deliberately stresses exact-on-boundary endpoints of them all.
  const std::vector<float> snap = {0.2f, 0.25f, 1.0f / 3.0f, 0.5f,
                                   2.0f / 3.0f, 0.75f, 0.9f};
  struct Config {
    uint32_t shards, threads;
    std::vector<float> bounds;  // empty = uniform
  };
  const Config configs[] = {
      {3, 0, {}},                    // 2 slices at 0.5 + overflow
      {4, 2, {}},                    // 3 uniform slices + overflow
      {4, 0, {0.2f, 0.9f}},          // lopsided fences
      {5, 4, {0.25f, 0.5f, 0.75f}},  // 4 slices, fences on snap points
      {8, 4, {}},                    // many slices
      {2, 0, {}},                    // degenerate: 1 slice + overflow
  };
  for (const MatchPolicy policy :
       {MatchPolicy::kIntersecting, MatchPolicy::kCovering}) {
    SubscriptionEngine serial(UnitSchema(), Opts(1, 0));
    const auto expected = DriveWorkload(serial, policy, 4242, snap);
    SubscriptionEngine broadcast(UnitSchema(), Opts(4, 2));
    EXPECT_EQ(DriveWorkload(broadcast, policy, 4242, snap), expected);
    for (const Config& cfg : configs) {
      SubscriptionEngine routed(
          UnitSchema(),
          Opts(cfg.shards, cfg.threads, ShardingPolicy::kRange, cfg.bounds));
      ASSERT_TRUE(routed.range_routed());
      const auto got = DriveWorkload(routed, policy, 4242, snap);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], expected[i])
            << "batch event " << i << " shards=" << cfg.shards
            << " threads=" << cfg.threads << " bounds=" << cfg.bounds.size();
      }
    }
  }
}

TEST(RoutedEngine, SubscriptionPlacementFollowsTheSliceRule) {
  const std::vector<float> bounds = {0.25f, 0.5f, 0.75f};
  SubscriptionEngine engine(
      UnitSchema(), Opts(5, 0, ShardingPolicy::kRange, bounds));
  EXPECT_EQ(engine.GetRangeBoundaries(), bounds);
  Rng rng(9);
  std::vector<std::pair<SubscriptionId, Box>> subs;
  for (int i = 0; i < 400; ++i) {
    const Box b = AdversarialBox(rng, bounds);
    subs.emplace_back(engine.SubscribeBox(b), b);
  }
  size_t straddlers = 0;
  for (const auto& [id, box] : subs) {
    const uint32_t want = ExpectedShard(bounds, 5, box);
    EXPECT_EQ(engine.ShardOf(id), want) << box.ToString();
    straddlers += want == 4 ? 1 : 0;
  }
  // The adversarial generator must actually produce boundary straddlers,
  // or this test and the parity suite prove nothing about the overflow
  // shard.
  EXPECT_GT(straddlers, 20u);
  const auto infos = engine.GetShardInfos();
  size_t total = 0;
  for (const auto& info : infos) total += info.subscriptions;
  EXPECT_EQ(total, subs.size());
}

TEST(RoutedEngine, RoutesStrictlyFewerShardVisitsThanBroadcast) {
  // Selective events (small dim-0 extent) against K=8: broadcast pays
  // ne * K shard visits; the router should pay far less — at most
  // (slice span + overflow) per event.
  const uint32_t kShards = 8;
  SubscriptionEngine routed(UnitSchema(),
                            Opts(kShards, 0, ShardingPolicy::kRange));
  SubscriptionEngine broadcast(UnitSchema(), Opts(kShards, 0));
  Rng rng(31);
  std::vector<Box> boxes;
  for (int i = 0; i < 2000; ++i) {
    Box b = testutil::RandomBox(rng, kNd, 0.5f);
    const float lo = 0.9f * rng.NextFloat();
    b.set(0, lo, lo + 0.05f * rng.NextFloat());  // selective in dim 0
    boxes.push_back(b);
  }
  std::vector<SubscriptionId> ids_r, ids_b;
  routed.SubscribeBatch(Span<const Box>(boxes.data(), boxes.size()), &ids_r);
  broadcast.SubscribeBatch(Span<const Box>(boxes.data(), boxes.size()),
                           &ids_b);
  EXPECT_EQ(ids_r, ids_b);

  std::vector<Event> events;
  Rng erng(32);
  for (int i = 0; i < 256; ++i) {
    Box b = testutil::RandomBox(erng, kNd, 0.8f);
    const float lo = 0.9f * erng.NextFloat();
    b.set(0, lo, lo + 0.05f * erng.NextFloat());
    events.push_back(Event::Range(std::move(b)));
  }
  MatchBatchResult res_r, res_b;
  routed.MatchBatch(Span<const Event>(events.data(), events.size()), &res_r);
  broadcast.MatchBatch(Span<const Event>(events.data(), events.size()),
                       &res_b);
  EXPECT_EQ(res_r.matches, res_b.matches);

  const uint64_t broadcast_visits = res_b.TotalShardVisits();
  const uint64_t routed_visits = res_r.TotalShardVisits();
  EXPECT_EQ(broadcast_visits, events.size() * kShards);
  EXPECT_LT(routed_visits, broadcast_visits);
  // Selective dim-0 events span at most 2 slices, plus the overflow shard.
  EXPECT_LE(routed_visits, events.size() * 3);
  for (size_t s = 0; s < res_r.per_shard.size(); ++s) {
    // A shard executes exactly the events routed to it, no more.
    EXPECT_EQ(res_r.per_shard[s].executions,
              res_r.per_shard[s].events_routed);
  }
  // Lifetime routed counters mirror the per-batch metrics.
  uint64_t lifetime = 0;
  for (const auto& info : routed.GetShardInfos()) {
    lifetime += info.routed_events;
  }
  EXPECT_EQ(lifetime, routed_visits);
}

TEST(RoutedEngine, SingleEventMatchUsesRoutingAndAgreesWithBatch) {
  SubscriptionEngine a(UnitSchema(), Opts(6, 0, ShardingPolicy::kRange));
  SubscriptionEngine b(UnitSchema(), Opts(6, 0, ShardingPolicy::kRange));
  Rng rng(77);
  const std::vector<float> snap = a.GetRangeBoundaries();
  for (int i = 0; i < 600; ++i) {
    const Box box = AdversarialBox(rng, snap);
    a.SubscribeBox(box);
    b.SubscribeBox(box);
  }
  std::vector<Event> events = MakeEvents(rng, 16, snap);
  MatchBatchResult res;
  a.MatchBatch(Span<const Event>(events.data(), events.size()), &res);
  uint64_t routed_before = 0;
  for (const auto& info : b.GetShardInfos()) routed_before += info.routed_events;
  EXPECT_EQ(routed_before, 0u);
  for (size_t e = 0; e < events.size(); ++e) {
    std::vector<SubscriptionId> single;
    b.Match(events[e], &single);
    EXPECT_EQ(testutil::Sorted(std::move(single)), res.matches[e]);
  }
  // The single-event path routes too: 16 events over 5 slices + overflow
  // cannot have broadcast (which would be 16 * 6 visits).
  uint64_t routed_after = 0;
  for (const auto& info : b.GetShardInfos()) routed_after += info.routed_events;
  EXPECT_LT(routed_after, events.size() * b.shard_count());
}

TEST(RoutedEngine, SetRangeBoundariesMigratesEverySubscriptionExactly) {
  SubscriptionEngine engine(UnitSchema(),
                            Opts(5, 2, ShardingPolicy::kRange));
  Rng rng(55);
  const std::vector<float> old_bounds = engine.GetRangeBoundaries();
  std::vector<Box> boxes;
  for (int i = 0; i < 800; ++i) boxes.push_back(AdversarialBox(rng, old_bounds));
  std::vector<SubscriptionId> ids;
  engine.SubscribeBatch(Span<const Box>(boxes.data(), boxes.size()), &ids);

  std::vector<Event> events = MakeEvents(rng, 32, old_bounds);
  MatchBatchResult before;
  engine.MatchBatch(Span<const Event>(events.data(), events.size()), &before);

  // Reject malformed tables outright.
  EXPECT_FALSE(engine.SetRangeBoundaries({0.5f, 0.5f, 0.6f}));  // not strict
  EXPECT_FALSE(engine.SetRangeBoundaries({0.5f}));              // wrong size

  const std::vector<float> new_bounds = {0.15f, 0.4f, 0.45f};
  const uint64_t version0 = engine.routing_version();
  ASSERT_TRUE(engine.SetRangeBoundaries(new_bounds));
  EXPECT_GT(engine.routing_version(), version0);
  EXPECT_EQ(engine.GetRangeBoundaries(), new_bounds);

  // Every subscription must now live exactly where the new table routes it
  // (including overflow drains and new straddlers).
  size_t moved = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    const uint32_t want = ExpectedShard(new_bounds, 5, boxes[i]);
    ASSERT_EQ(engine.ShardOf(ids[i]), want) << boxes[i].ToString();
    moved += want != ExpectedShard(old_bounds, 5, boxes[i]) ? 1 : 0;
  }
  EXPECT_GT(moved, 50u);  // the new table is genuinely different
  EXPECT_EQ(engine.rebalance_stats().subscriptions_migrated, moved);

  // Match sets are boundary-invariant.
  MatchBatchResult after;
  engine.MatchBatch(Span<const Event>(events.data(), events.size()), &after);
  EXPECT_EQ(after.matches, before.matches);
  size_t total = 0;
  for (const auto& info : engine.GetShardInfos()) total += info.subscriptions;
  EXPECT_EQ(total, ids.size());
}

TEST(RoutedEngine, RebalanceOnceShedsTheHotShard) {
  // All subscriptions crowd the first slice of a K=4 engine (fences at
  // 1/3, 2/3): shard 0 holds everything until a boundary move sheds half.
  SubscriptionEngine engine(UnitSchema(),
                            Opts(4, 0, ShardingPolicy::kRange));
  Rng rng(71);
  std::vector<Box> boxes;
  for (int i = 0; i < 500; ++i) {
    Box b = testutil::RandomBox(rng, kNd, 0.6f);
    const float lo = 0.25f * rng.NextFloat();
    b.set(0, lo, std::min(lo + 0.05f * rng.NextFloat(), 0.3f));
    boxes.push_back(b);
  }
  std::vector<SubscriptionId> ids;
  engine.SubscribeBatch(Span<const Box>(boxes.data(), boxes.size()), &ids);
  auto infos = engine.GetShardInfos();
  ASSERT_EQ(infos[0].subscriptions, ids.size());  // all in slice 0

  std::vector<Event> events = MakeEvents(rng, 32, engine.GetRangeBoundaries());
  MatchBatchResult before;
  engine.MatchBatch(Span<const Event>(events.data(), events.size()), &before);

  ASSERT_TRUE(engine.RebalanceOnce());
  EXPECT_EQ(engine.rebalance_stats().boundary_moves, 1u);
  EXPECT_GT(engine.rebalance_stats().subscriptions_migrated, 0u);
  // The shared fence moved into the crowd (below 1/3).
  EXPECT_LT(engine.GetRangeBoundaries()[0], 1.0f / 3.0f);

  infos = engine.GetShardInfos();
  // Roughly half the residents shed to the neighbor; nothing was lost.
  EXPECT_LT(infos[0].subscriptions, ids.size());
  EXPECT_GT(infos[1].subscriptions, 0u);
  size_t total = 0;
  for (const auto& info : infos) total += info.subscriptions;
  EXPECT_EQ(total, ids.size());
  // Consistency with the owner map after migration.
  for (const SubscriptionId id : ids) {
    EXPECT_LT(engine.ShardOf(id), engine.shard_count());
  }

  // Match sets are rebalance-invariant.
  MatchBatchResult after;
  engine.MatchBatch(Span<const Event>(events.data(), events.size()), &after);
  EXPECT_EQ(after.matches, before.matches);

  // A second forced pass may move the fence again, but repeated passes
  // reach a fixed point instead of oscillating forever.
  for (int i = 0; i < 12 && engine.RebalanceOnce(); ++i) {
  }
  EXPECT_FALSE(engine.RebalanceOnce());
}

TEST(RoutedEngine, AutoRebalanceTriggersUnderSkewAndKeepsParity) {
  EngineOptions opts = Opts(4, 0, ShardingPolicy::kRange);
  opts.rebalance_period = 64;
  opts.rebalance_trigger_ratio = 1.5;
  opts.rebalance_min_load = 64;
  SubscriptionEngine routed(UnitSchema(), opts);
  SubscriptionEngine serial(UnitSchema(), Opts(1, 0));

  Rng rng(13);
  std::vector<Box> boxes;
  for (int i = 0; i < 1500; ++i) {
    Box b = testutil::RandomBox(rng, kNd, 0.7f);
    const float lo = 0.2f * rng.NextFloat();  // all mass in slice 0
    b.set(0, lo, std::min(lo + 0.08f * rng.NextFloat(), 0.32f));
    boxes.push_back(b);
  }
  std::vector<SubscriptionId> r_ids, s_ids;
  routed.SubscribeBatch(Span<const Box>(boxes.data(), boxes.size()), &r_ids);
  serial.SubscribeBatch(Span<const Box>(boxes.data(), boxes.size()), &s_ids);
  EXPECT_EQ(r_ids, s_ids);

  Rng erng(14);
  for (int round = 0; round < 8; ++round) {
    std::vector<Event> events;
    for (int e = 0; e < 48; ++e) {
      Box b = testutil::RandomBox(erng, kNd, 0.9f);
      const float lo = 0.25f * erng.NextFloat();  // events hit the hot slice
      b.set(0, lo, std::min(lo + 0.1f * erng.NextFloat(), 0.35f));
      events.push_back(Event::Range(std::move(b)));
    }
    MatchBatchResult got, want;
    routed.MatchBatch(Span<const Event>(events.data(), events.size()), &got);
    serial.MatchBatch(Span<const Event>(events.data(), events.size()), &want);
    ASSERT_EQ(got.matches, want.matches) << "round " << round;
  }
  // The skew is extreme enough that the auto trigger must have fired.
  EXPECT_GE(routed.rebalance_stats().boundary_moves, 1u);
}

TEST(RoutedEngine, BruteForceOracleOnBoundaryGeometry) {
  // Hand-picked geometry around one fence of a K=3 engine (single fence at
  // 0.5): point subs on the fence, subs ending/starting exactly there,
  // straddlers, plus events with the same pathologies, verified against a
  // brute-force oracle for both policies.
  SubscriptionEngine engine(UnitSchema(),
                            Opts(3, 0, ShardingPolicy::kRange));
  ASSERT_EQ(engine.GetRangeBoundaries(), std::vector<float>{0.5f});
  Rng rng(3);
  std::vector<std::pair<SubscriptionId, Box>> subs;
  const auto add = [&](float lo0, float hi0) {
    Box b = testutil::RandomBox(rng, kNd, 0.8f);
    b.set(0, lo0, hi0);
    subs.emplace_back(engine.SubscribeBox(b), b);
  };
  add(0.5f, 0.5f);    // point sub on the fence
  add(0.3f, 0.5f);    // ends exactly on the fence -> straddler (0.5 is right)
  add(0.5f, 0.7f);    // starts exactly on the fence -> right slice
  add(0.2f, 0.8f);    // fat straddler
  add(0.0f, 0.4999f); // left slice
  add(0.5001f, 1.0f); // right slice
  add(0.0f, 1.0f);    // full-domain
  for (int i = 0; i < 100; ++i) {
    Box b = AdversarialBox(rng, {0.5f});
    subs.emplace_back(engine.SubscribeBox(b), b);
  }

  std::vector<Event> events;
  events.push_back(Event::Point(std::vector<float>(kNd, 0.5f)));
  {
    Box b = Box::FullDomain(kNd);
    b.set(0, 0.5f, 0.5f);
    events.push_back(Event::Range(std::move(b)));  // sliver on the fence
  }
  {
    Box b = Box::FullDomain(kNd);
    b.set(0, 0.0f, 0.5f);
    events.push_back(Event::Range(std::move(b)));  // ends on the fence
  }
  {
    Box b = Box::FullDomain(kNd);
    b.set(0, 0.5f, 1.0f);
    events.push_back(Event::Range(std::move(b)));  // starts on the fence
  }
  for (auto& e : MakeEvents(rng, 40, {0.5f})) events.push_back(std::move(e));

  for (const MatchPolicy policy :
       {MatchPolicy::kIntersecting, MatchPolicy::kCovering}) {
    MatchBatchResult res;
    engine.MatchBatch(Span<const Event>(events.data(), events.size()), policy,
                      &res);
    for (size_t e = 0; e < events.size(); ++e) {
      const Relation rel =
          events[e].is_point || policy == MatchPolicy::kCovering
              ? Relation::kEncloses
              : Relation::kIntersects;
      Query q(events[e].box, rel);
      std::vector<ObjectId> expect;
      for (const auto& [id, box] : subs) {
        if (q.Matches(box.view())) expect.push_back(id);
      }
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(res.matches[e], expect)
          << "event " << e << " policy " << static_cast<int>(policy);
    }
  }
}

TEST(RoutedEngine, OverflowPressureObservability) {
  // K=3, single fence at 0.5: deterministic residency makes the gauges
  // exactly checkable. Straddlers live in the overflow shard (shard 2).
  SubscriptionEngine engine(UnitSchema(),
                            Opts(3, 0, ShardingPolicy::kRange));
  Rng rng(9);
  size_t straddlers = 0;
  for (int i = 0; i < 120; ++i) {
    Box b = testutil::RandomBox(rng, kNd, 0.4f);
    if (i % 3 == 0) {
      b.set(0, 0.4f, 0.6f);  // straddles the fence
      ++straddlers;
    } else if (i % 3 == 1) {
      b.set(0, 0.1f, 0.2f);  // left slice
    } else {
      b.set(0, 0.7f, 0.8f);  // right slice
    }
    engine.SubscribeBox(b);
  }

  // The rebalance load snapshot reports overflow residency and straddler
  // fraction over the live population.
  const auto load = engine.GetRebalanceLoadSnapshot();
  ASSERT_EQ(load.range_loads.size(), 2u);
  EXPECT_EQ(load.overflow_subscriptions, straddlers);
  EXPECT_EQ(load.total_subscriptions, 120u);
  EXPECT_DOUBLE_EQ(load.straddler_fraction,
                   static_cast<double>(straddlers) / 120.0);

  // MatchBatch stamps the overflow gauge on the overflow shard's entry
  // only, alongside the routing snapshot version and epoch it ran under.
  std::vector<Event> events = MakeEvents(rng, 8, {0.5f});
  MatchBatchResult res;
  engine.MatchBatch(Span<const Event>(events.data(), events.size()), &res);
  ASSERT_EQ(res.per_shard.size(), 3u);
  EXPECT_EQ(res.per_shard[2].overflow_subscriptions, straddlers);
  EXPECT_EQ(res.per_shard[0].overflow_subscriptions, 0u);
  EXPECT_EQ(res.per_shard[1].overflow_subscriptions, 0u);
  EXPECT_EQ(res.routing_version, engine.routing_version());
  EXPECT_GT(res.epoch, 0u);

  // A non-range engine reports an empty load snapshot.
  SubscriptionEngine broadcast(UnitSchema(), Opts(3, 0));
  EXPECT_TRUE(broadcast.GetRebalanceLoadSnapshot().range_loads.empty());
}

TEST(RoutedEngine, SpillAwarePlannerBeatsSingleCandidateOnDenseCut) {
  // Dense-cut workload: the donor slice (0.5, inf) holds three packs —
  // 170 narrow boxes in [0.52, 0.56], a dense pack of 80 WIDE boxes whose
  // lower endpoints crowd [0.600, 0.602] with hi0 = 0.9, and 150 narrow
  // boxes above 0.7. The exact gap-halving shed count (m = 200) puts the
  // fence in the middle of the wide pack — every wide box below it
  // straddles the new fence and spills to overflow — while shedding ~175
  // puts the fence at the pack's leading edge and spills almost nothing.
  // The spill-aware planner must find that fence; the single-candidate
  // planner (rebalance_fence_candidates = 1) must not.
  const auto build = [](uint32_t candidates) {
    EngineOptions o = Opts(3, 0, ShardingPolicy::kRange, {0.5f});
    o.rebalance_fence_candidates = candidates;
    auto engine =
        std::make_unique<SubscriptionEngine>(UnitSchema(), std::move(o));
    const auto sub = [&](float lo, float hi) {
      Box b = Box::FullDomain(kNd);
      b.set(0, lo, hi);
      engine->SubscribeBox(b);
    };
    for (int i = 0; i < 170; ++i) {
      const float lo = 0.52f + 0.04f * static_cast<float>(i) / 170.0f;
      sub(lo, lo + 0.005f);
    }
    for (int i = 0; i < 80; ++i) {
      sub(0.600f + 0.002f * static_cast<float>(i) / 80.0f, 0.9f);
    }
    for (int i = 0; i < 150; ++i) {
      const float lo = 0.70f + 0.25f * static_cast<float>(i) / 150.0f;
      sub(lo, lo + 0.005f);
    }
    return engine;
  };

  auto naive = build(1);
  auto smart = build(EngineOptions().rebalance_fence_candidates);
  // Everything starts in the donor slice (shard 1).
  ASSERT_EQ(naive->GetShardInfos()[1].subscriptions, 400u);

  ASSERT_TRUE(naive->RebalanceOnce());
  ASSERT_TRUE(smart->RebalanceOnce());
  const auto naive_st = naive->rebalance_stats();
  const auto smart_st = smart->rebalance_stats();
  EXPECT_EQ(naive_st.boundary_moves, 1u);
  EXPECT_EQ(smart_st.boundary_moves, 1u);
  EXPECT_GT(smart_st.subscriptions_migrated, 0u);

  // The single-candidate fence lands inside the wide pack; the
  // spill-aware fence clears it almost entirely.
  EXPECT_GT(naive_st.last_predicted_straddler_spill, 20u);
  EXPECT_LT(smart_st.last_predicted_straddler_spill,
            naive_st.last_predicted_straddler_spill / 2);

  // The prediction is what the migration actually did: fewer overflow
  // residents under the spill-aware planner, on the same workload.
  const auto naive_load = naive->GetRebalanceLoadSnapshot();
  const auto smart_load = smart->GetRebalanceLoadSnapshot();
  EXPECT_EQ(naive_load.overflow_subscriptions,
            naive_st.last_predicted_straddler_spill);
  EXPECT_EQ(smart_load.overflow_subscriptions,
            smart_st.last_predicted_straddler_spill);
  EXPECT_LT(smart_load.overflow_subscriptions,
            naive_load.overflow_subscriptions);

  // Both planners still rebalanced: the donor shed a meaningful share and
  // nothing was lost.
  for (const auto& engine : {naive.get(), smart.get()}) {
    size_t total = 0;
    for (const auto& info : engine->GetShardInfos()) {
      total += info.subscriptions;
    }
    EXPECT_EQ(total, 400u);
    EXPECT_GT(engine->GetShardInfos()[0].subscriptions, 100u);
  }
}

TEST(RoutedEngine, RebalancePlannerReportsPredictedStraddlerSpill) {
  // Load the middle slice of a K=4 engine with residents that *straddle
  // the region the fence will move through*: a move must shed some of
  // them to overflow, and the planner must predict that spill.
  SubscriptionEngine engine(UnitSchema(),
                            Opts(4, 0, ShardingPolicy::kRange,
                                 {1.0f / 3.0f, 2.0f / 3.0f}));
  Rng rng(21);
  for (int i = 0; i < 300; ++i) {
    Box b = testutil::RandomBox(rng, kNd, 0.3f);
    // Fat boxes inside the middle slice (1/3, 2/3): any fence landing
    // inside the pack cuts many of them.
    const float lo = 0.35f + 0.2f * rng.NextFloat();
    const float hi = lo + 0.05f + 0.2f * rng.NextFloat();
    b.set(0, lo, std::min(hi, 0.66f));
    engine.SubscribeBox(b);
  }
  ASSERT_TRUE(engine.RebalanceOnce());
  const auto st = engine.rebalance_stats();
  EXPECT_EQ(st.boundary_moves, 1u);
  EXPECT_GT(st.predicted_straddler_spill, 0u);
  EXPECT_EQ(st.predicted_straddler_spill,
            st.last_predicted_straddler_spill);
  // Reported, not yet acted on: the prediction must agree with what the
  // migration actually did — every spilled donor is now overflow-resident.
  const auto load = engine.GetRebalanceLoadSnapshot();
  EXPECT_GE(load.overflow_subscriptions, st.last_predicted_straddler_spill);
}

}  // namespace
}  // namespace accl
