// End-to-end mini-experiment mirroring the paper's §7 experimental process:
// load all three competitors, converge the adaptive clustering, then check
// result equality and the qualitative performance ordering.
#include <gtest/gtest.h>

#include "core/adaptive_index.h"
#include "rstar/rstar_tree.h"
#include "seqscan/seq_scan.h"
#include "storage/persist.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/query_gen.h"

namespace accl {
namespace {

using testutil::Load;
using testutil::RunQuery;

TEST(Integration, MiniPaperPipelineDisk) {
  const Dim nd = 16;
  UniformSpec spec;
  spec.nd = nd;
  spec.count = 20000;
  spec.seed = 1;
  Dataset ds = GenerateUniform(spec);

  // Selectivity-calibrated query workload, as in §7.1.
  QueryGenSpec qspec;
  qspec.rel = Relation::kIntersects;
  qspec.count = 1200;
  qspec.target_selectivity = 5e-3;
  qspec.seed = 3;
  QueryWorkload wl = GenerateCalibrated(ds, qspec);

  AdaptiveConfig acfg;
  acfg.nd = nd;
  acfg.scenario = StorageScenario::kDisk;
  AdaptiveIndex ac(acfg);
  SeqScan ss(nd, StorageScenario::kDisk);
  RStarConfig rcfg;
  rcfg.nd = nd;
  rcfg.scenario = StorageScenario::kDisk;
  rcfg.max_entries_override = 64;
  RStarTree rs(rcfg);
  Load(ac, ds);
  Load(ss, ds);
  Load(rs, ds);

  // Warm-up / convergence phase.
  std::vector<ObjectId> out;
  for (size_t i = 0; i + 200 < wl.queries.size(); ++i) {
    out.clear();
    ac.Execute(wl.queries[i], &out);
  }

  // Measurement phase.
  double ac_ms = 0, ss_ms = 0, rs_ms = 0;
  QueryMetrics m;
  for (size_t i = wl.queries.size() - 200; i < wl.queries.size(); ++i) {
    const Query& q = wl.queries[i];
    auto a = RunQuery(ac, q, &m);
    ac_ms += m.sim_time_ms;
    auto s = RunQuery(ss, q, &m);
    ss_ms += m.sim_time_ms;
    auto r = RunQuery(rs, q, &m);
    rs_ms += m.sim_time_ms;
    ASSERT_EQ(a, s);
    ASSERT_EQ(a, r);
  }

  // Paper's qualitative ordering on disk at 16 dimensions:
  // AC <= SS << RS.
  EXPECT_LE(ac_ms, ss_ms * 1.02);
  EXPECT_GT(rs_ms, ss_ms);
}

TEST(Integration, SaveLoadContinuesPipeline) {
  const Dim nd = 8;
  UniformSpec spec;
  spec.nd = nd;
  spec.count = 8000;
  spec.seed = 7;
  Dataset ds = GenerateUniform(spec);

  AdaptiveConfig cfg;
  cfg.nd = nd;
  AdaptiveIndex ac(cfg);
  Load(ac, ds);
  auto qs = GenerateQueriesWithExtent(nd, Relation::kIntersects, 800, 0.1, 9);
  std::vector<ObjectId> out;
  for (const Query& q : qs) {
    out.clear();
    ac.Execute(q, &out);
  }

  const std::string path = testing::TempDir() + "/accl_integration.img";
  ASSERT_TRUE(SaveIndexImage(ac, path));
  auto loaded = LoadIndexImage(path, cfg);
  ASSERT_NE(loaded, nullptr);

  // The recovered index must answer identically and keep adapting.
  SeqScan ss(nd);
  Load(ss, ds);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(RunQuery(*loaded, qs[i]), RunQuery(ss, qs[i]));
  }
  loaded->CheckInvariants();
  std::remove(path.c_str());
}

TEST(Integration, MixedRelationStream) {
  // A single index instance serving all three relations plus inserts and
  // deletes interleaved — the SDI scenario's steady state.
  const Dim nd = 6;
  AdaptiveConfig cfg;
  cfg.nd = nd;
  cfg.reorg_period = 60;
  cfg.min_observation = 16;
  AdaptiveIndex ac(cfg);
  SeqScan ss(nd);

  Rng rng(13);
  ObjectId next = 0;
  std::vector<ObjectId> live;
  std::vector<ObjectId> out;
  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.3 || live.empty()) {
      Box b = testutil::RandomBox(rng, nd, 0.3f);
      ac.Insert(next, b.view());
      ss.Insert(next, b.view());
      live.push_back(next++);
    } else if (roll < 0.4) {
      size_t k = rng.NextBelow(live.size());
      ASSERT_TRUE(ac.Erase(live[k]));
      ASSERT_TRUE(ss.Erase(live[k]));
      live.erase(live.begin() + k);
    } else {
      Box qb = testutil::RandomBox(rng, nd, 0.4f);
      const Relation rel = roll < 0.6   ? Relation::kIntersects
                           : roll < 0.8 ? Relation::kContainedBy
                                        : Relation::kEncloses;
      Query q(qb, rel);
      ASSERT_EQ(RunQuery(ac, q), RunQuery(ss, q)) << "step " << step;
    }
  }
  ac.CheckInvariants();
  EXPECT_EQ(ac.size(), live.size());
}

}  // namespace
}  // namespace accl
