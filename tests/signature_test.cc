#include <gtest/gtest.h>

#include "core/signature.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/query_gen.h"

namespace accl {
namespace {

TEST(VarInterval, HalfOpenSemantics) {
  VarInterval v{0.25f, 0.5f, /*hi_closed=*/false};
  EXPECT_TRUE(v.Contains(0.25f));
  EXPECT_TRUE(v.Contains(0.49f));
  EXPECT_FALSE(v.Contains(0.5f));
  EXPECT_FALSE(v.Contains(0.24f));
}

TEST(VarInterval, ClosedSemantics) {
  VarInterval v{0.75f, 1.0f, /*hi_closed=*/true};
  EXPECT_TRUE(v.Contains(1.0f));
  EXPECT_TRUE(v.Contains(0.75f));
  EXPECT_FALSE(v.Contains(1.00001f));
}

TEST(VarInterval, FullDomainDetection) {
  EXPECT_TRUE((VarInterval{0.0f, 1.0f, true}).IsFullDomain());
  EXPECT_FALSE((VarInterval{0.0f, 1.0f, false}).IsFullDomain());
  EXPECT_FALSE((VarInterval{0.0f, 0.5f, true}).IsFullDomain());
}

TEST(VarInterval, ToStringShowsClosedness) {
  EXPECT_EQ((VarInterval{0.0f, 0.25f, false}).ToString(), "[0,0.25)");
  EXPECT_EQ((VarInterval{0.0f, 0.25f, true}).ToString(), "[0,0.25]");
}

TEST(Signature, RootAcceptsEverything) {
  Signature root(3);
  EXPECT_TRUE(root.IsRoot());
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    Box b(3);
    for (Dim d = 0; d < 3; ++d) {
      float a = rng.NextFloat(), c = rng.NextFloat();
      if (a > c) std::swap(a, c);
      b.set(d, a, c);
    }
    EXPECT_TRUE(root.MatchesObject(b.view()));
  }
}

TEST(Signature, RootAdmitsAnyQuery) {
  Signature root(2);
  Box qb(2);
  qb.set(0, 0.3f, 0.4f);
  qb.set(1, 0.0f, 1.0f);
  for (Relation rel : {Relation::kIntersects, Relation::kContainedBy,
                       Relation::kEncloses}) {
    EXPECT_TRUE(root.AdmitsQuery(Query(qb, rel)));
  }
}

// Paper Example 2: the three sample clusters in the 2-d space.
TEST(Signature, PaperExample2) {
  // sigma1 = {d1 [0,0.25):[0,0.25), d2 [0,1]:[0,1]}
  Signature s1(2);
  s1.set(0, {0.0f, 0.25f, false}, {0.0f, 0.25f, false});
  // O1 = d1[0.05,0.2], d2[0.8,0.95] — starts and ends in the first quarter
  // of d1 => member of sigma1.
  Box o1(2);
  o1.set(0, 0.05f, 0.2f);
  o1.set(1, 0.8f, 0.95f);
  EXPECT_TRUE(s1.MatchesObject(o1.view()));
  // An object whose d1 interval ends beyond 0.25 does not match.
  Box o3(2);
  o3.set(0, 0.3f, 0.8f);
  o3.set(1, 0.6f, 0.9f);
  EXPECT_FALSE(s1.MatchesObject(o3.view()));

  // sigma2 = {d1 [0.25,0.5):[0.75,1], d2 [0.5,0.75):[0.75,1]}
  Signature s2(2);
  s2.set(0, {0.25f, 0.5f, false}, {0.75f, 1.0f, true});
  s2.set(1, {0.5f, 0.75f, false}, {0.75f, 1.0f, true});
  Box o4(2);
  o4.set(0, 0.3f, 0.9f);
  o4.set(1, 0.6f, 0.8f);
  EXPECT_TRUE(s2.MatchesObject(o4.view()));
  EXPECT_FALSE(s2.MatchesObject(o1.view()));
}

TEST(Signature, MatchRespectsHalfOpenBoundary) {
  Signature s(1);
  s.set(0, {0.0f, 0.25f, false}, {0.0f, 1.0f, true});
  Box at_boundary(1);
  at_boundary.set(0, 0.25f, 0.5f);  // start exactly at 0.25: excluded
  EXPECT_FALSE(s.MatchesObject(at_boundary.view()));
  Box inside(1);
  inside.set(0, 0.2499f, 0.5f);
  EXPECT_TRUE(s.MatchesObject(inside.view()));
}

TEST(Signature, RefinedFromSelfAndRoot) {
  Signature root(2);
  Signature s(2);
  s.set(0, {0.0f, 0.25f, false}, {0.5f, 0.75f, false});
  EXPECT_TRUE(s.RefinedFrom(root));
  EXPECT_TRUE(s.RefinedFrom(s));
  EXPECT_FALSE(root.RefinedFrom(s));
}

TEST(Signature, RefinedFromClosednessMatters) {
  Signature outer(1), inner(1);
  outer.set(0, {0.0f, 0.5f, false}, {0.0f, 1.0f, true});
  inner.set(0, {0.0f, 0.5f, true}, {0.0f, 1.0f, true});
  // inner accepts 0.5 itself; outer does not => not a refinement.
  EXPECT_FALSE(inner.RefinedFrom(outer));
  EXPECT_TRUE(outer.RefinedFrom(inner));
}

TEST(Signature, SerializeRoundTrip) {
  Signature s(3);
  s.set(0, {0.0f, 0.25f, false}, {0.125f, 0.25f, true});
  s.set(2, {0.5f, 0.75f, false}, {0.75f, 1.0f, true});
  ByteWriter w;
  s.Serialize(&w);
  ByteReader r(w.bytes());
  Signature back;
  ASSERT_TRUE(Signature::Deserialize(&r, &back));
  EXPECT_EQ(back, s);
  EXPECT_TRUE(r.exhausted());
}

TEST(Signature, DeserializeRejectsTruncation) {
  Signature s(4);
  ByteWriter w;
  s.Serialize(&w);
  std::vector<uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() / 2);
  ByteReader r(bytes.data(), bytes.size());
  Signature back;
  EXPECT_FALSE(Signature::Deserialize(&r, &back));
}

TEST(Signature, DeserializeRejectsZeroDims) {
  ByteWriter w;
  w.PutU32(0);
  ByteReader r(w.bytes());
  Signature back;
  EXPECT_FALSE(Signature::Deserialize(&r, &back));
}

// THE key safety property (paper §3.6): AdmitsQuery is a *necessary*
// condition — if a member object satisfies the query relation, the
// signature must admit the query. Checked by random sampling across
// relations and dimensionalities.
class AdmissionSoundness
    : public ::testing::TestWithParam<std::tuple<Relation, int>> {};

TEST_P(AdmissionSoundness, NoFalseNegatives) {
  const Relation rel = std::get<0>(GetParam());
  const Dim nd = static_cast<Dim>(std::get<1>(GetParam()));
  Rng rng(1234 + static_cast<int>(rel) * 100 + nd);

  for (int iter = 0; iter < 300; ++iter) {
    // Random signature: each dim randomly refined or full.
    Signature sig(nd);
    for (Dim d = 0; d < nd; ++d) {
      if (rng.NextBool(0.5)) continue;
      float s1 = rng.NextFloat() * 0.5f;
      float s2 = s1 + 0.25f;
      float e1 = rng.NextFloat() * 0.5f;
      float e2 = e1 + 0.25f;
      sig.set(d, {s1, s2, false}, {e1, e2, false});
    }
    // Random object matching the signature: pick starts/ends inside vars
    // (retry a few times; skip when infeasible a<=b).
    Box obj(nd);
    bool ok = true;
    for (Dim d = 0; d < nd && ok; ++d) {
      const VarInterval& sv = sig.start_var(d);
      const VarInterval& ev = sig.end_var(d);
      bool found = false;
      for (int t = 0; t < 32 && !found; ++t) {
        float a = sv.lo + sv.width() * 0.999f * rng.NextFloat();
        float b = ev.lo + ev.width() * 0.999f * rng.NextFloat();
        if (a <= b) {
          obj.set(d, a, b);
          found = true;
        }
      }
      ok = found;
    }
    if (!ok) continue;
    ASSERT_TRUE(sig.MatchesObject(obj.view()));

    // Random query; whenever the object satisfies the relation, the
    // signature must admit the query.
    Box qb(nd);
    for (Dim d = 0; d < nd; ++d) {
      float a = rng.NextFloat(), b = rng.NextFloat();
      if (a > b) std::swap(a, b);
      qb.set(d, a, b);
    }
    Query q(qb, rel);
    if (q.Matches(obj.view())) {
      EXPECT_TRUE(sig.AdmitsQuery(q))
          << "relation " << RelationName(rel) << " object "
          << obj.ToString() << " query " << qb.ToString() << " sig "
          << sig.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRelations, AdmissionSoundness,
    ::testing::Combine(::testing::Values(Relation::kIntersects,
                                         Relation::kContainedBy,
                                         Relation::kEncloses),
                       ::testing::Values(1, 2, 4, 8)));

}  // namespace
}  // namespace accl
