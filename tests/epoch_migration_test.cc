// Mid-migration exactness of the epoch-published routing model — the
// acceptance gate for the snapshot/double-residency protocol, and a
// primary ThreadSanitizer target.
//
// The old contract only promised exact match sets for calls *starting
// after* a rebalance returned; a match racing a migration could route with
// pre-move fences and transiently miss (or, naively fixed, double-report)
// mid-flight subscriptions. Under the snapshot model every MatchBatch must
// be byte-identical to the serial brute-force oracle over the live
// subscription set at EVERY instant of a rebalance:
//
//   - DigestExactDuringContinuousRebalance: a fixed subscription set,
//     matcher threads continuously asserting batch results equal the
//     precomputed oracle while a rebalancer thread hammers RebalanceOnce
//     and wholesale SetRangeBoundaries swaps. Any stale-fence miss or
//     un-deduplicated double-residency copy fails the byte comparison.
//   - UnsubscribeDuringMigrationBoundsResults: with concurrent
//     Unsubscribe the exact set is racy by nature, so results are bounded:
//     superset of the oracle over never-removed subscriptions, subset of
//     the oracle over all, duplicate-free — then exact equality once
//     quiesced.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "sdi/subscription_engine.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

constexpr Dim kNd = 4;

AttributeSchema UnitSchema() {
  AttributeSchema s;
  for (Dim d = 0; d < kNd; ++d) {
    s.AddAttribute("a" + std::to_string(d), 0.0, 1.0);
  }
  return s;
}

SubscriptionEngine MakeRangeEngine(uint32_t shards, uint32_t threads) {
  EngineOptions o;
  o.index.reorg_period = 25;
  o.index.min_observation = 8;
  o.default_policy = MatchPolicy::kIntersecting;
  o.shards = shards;
  o.match_threads = threads;
  o.sharding = ShardingPolicy::kRange;
  return SubscriptionEngine(UnitSchema(), o);
}

/// Values boundary moves land on; boxes snap onto them so migrations
/// constantly re-home subscriptions that sit exactly on fences.
const std::vector<float>& SnapValues() {
  static const std::vector<float> snap = {0.2f,        0.25f, 1.0f / 3.0f,
                                          0.4f,        0.5f,  0.6f,
                                          2.0f / 3.0f, 0.75f, 0.8f};
  return snap;
}

Box FuzzBox(Rng& rng) {
  Box b = testutil::RandomBox(rng, kNd, 0.5f);
  if (rng.NextBool(0.35)) {
    const float fence = SnapValues()[rng.NextBelow(SnapValues().size())];
    switch (rng.NextBelow(3)) {
      case 0:
        b.set(0, fence, fence);
        break;
      case 1:
        b.set(0, std::min(b.lo(0), fence), fence);
        break;
      default:
        b.set(0, fence, std::max(b.hi(0), fence));
        break;
    }
  }
  return b;
}

std::vector<float> RandomBounds(Rng& rng, size_t n_bounds) {
  std::vector<float> b(n_bounds);
  for (size_t i = 0; i < n_bounds; ++i) {
    const float cell = 0.9f / static_cast<float>(n_bounds + 1);
    b[i] = 0.05f + cell * (static_cast<float>(i + 1) +
                           0.8f * (rng.NextFloat() - 0.5f));
  }
  return b;
}

std::vector<ObjectId> Oracle(
    const std::vector<std::pair<SubscriptionId, Box>>& subs, const Box& ev) {
  Query q(ev, Relation::kIntersects);
  std::vector<ObjectId> out;
  for (const auto& [id, box] : subs) {
    if (q.Matches(box.view())) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(EpochMigration, DigestExactDuringContinuousRebalance) {
  SubscriptionEngine engine = MakeRangeEngine(5, 3);

  // Fixed subscription set: the oracle is invariant, so EVERY batch —
  // including those overlapping a migration — must reproduce it exactly.
  Rng rng(4242);
  std::vector<std::pair<SubscriptionId, Box>> subs;
  for (int i = 0; i < 500; ++i) {
    const Box b = FuzzBox(rng);
    subs.emplace_back(engine.SubscribeBox(b), b);
  }
  std::vector<Event> probes;
  std::vector<std::vector<ObjectId>> expected;
  for (int e = 0; e < 12; ++e) {
    const Box b = FuzzBox(rng);
    probes.push_back(Event::Range(b));
    expected.push_back(Oracle(subs, b));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> moves_seen{0};
  std::thread rebalancer([&] {
    Rng rr(99);
    while (!stop.load(std::memory_order_relaxed)) {
      if (rr.NextBool(0.3)) {
        engine.SetRangeBoundaries(RandomBounds(rr, engine.shard_count() - 2));
        moves_seen.fetch_add(1, std::memory_order_relaxed);
      } else if (engine.RebalanceOnce()) {
        moves_seen.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  constexpr int kMatchers = 2;
  constexpr int kBatchesPerMatcher = 60;
  std::vector<std::thread> matchers;
  for (int t = 0; t < kMatchers; ++t) {
    matchers.emplace_back([&] {
      MatchBatchResult res;
      uint64_t last_version = 0;
      for (int i = 0; i < kBatchesPerMatcher; ++i) {
        engine.MatchBatch(Span<const Event>(probes.data(), probes.size()),
                          &res);
        // Snapshot versions are monotone per caller: a later batch can
        // never have routed with an older table.
        EXPECT_GE(res.routing_version, last_version);
        last_version = res.routing_version;
        for (size_t e = 0; e < probes.size(); ++e) {
          // Byte-identical to the serial oracle *during* migration — no
          // misses from stale fences, no duplicates from double residency.
          ASSERT_EQ(res.matches[e], expected[e])
              << "batch " << i << " probe " << e << " (routing_version "
              << res.routing_version << ")";
        }
      }
    });
  }
  for (auto& t : matchers) t.join();
  stop.store(true, std::memory_order_relaxed);
  rebalancer.join();

  // The run must actually have migrated under the matchers' feet.
  EXPECT_GT(moves_seen.load(), 0u);
  EXPECT_GT(engine.rebalance_stats().boundary_moves, 0u);

  // Epoch hygiene: after quiescing, retired snapshots are reclaimable and
  // the grace-period machinery ran once per publish.
  engine.SynchronizeEpochs();
  const exec::EpochManagerStats es = engine.epoch_stats();
  EXPECT_EQ(es.retired_pending, 0u);
  EXPECT_GT(es.synchronizes, 0u);
  EXPECT_GT(es.pins, 0u);
  // Grace-wait telemetry is populated: every Synchronize measured its
  // wait, and the window percentiles are ordered sanely.
  EXPECT_EQ(es.grace_waits, es.synchronizes);
  EXPECT_GE(es.grace_wait_p50_ms, 0.0);
  EXPECT_GE(es.grace_wait_p99_ms, es.grace_wait_p50_ms);
  EXPECT_GE(es.grace_wait_max_ms, es.grace_wait_p99_ms);

  // Residency bookkeeping survived: every subscription owned exactly once.
  size_t resident = 0;
  for (const auto& info : engine.GetShardInfos()) {
    resident += info.subscriptions;
  }
  EXPECT_EQ(resident, subs.size());
  EXPECT_EQ(engine.subscription_count(), subs.size());
}

TEST(EpochMigration, UnsubscribeDuringMigrationBoundsResults) {
  SubscriptionEngine engine = MakeRangeEngine(4, 2);

  Rng rng(777);
  std::vector<std::pair<SubscriptionId, Box>> keepers, victims;
  for (int i = 0; i < 400; ++i) {
    const Box b = FuzzBox(rng);
    const SubscriptionId id = engine.SubscribeBox(b);
    if (i % 2 == 0) {
      keepers.emplace_back(id, b);
    } else {
      victims.emplace_back(id, b);
    }
  }
  std::vector<std::pair<SubscriptionId, Box>> all = keepers;
  all.insert(all.end(), victims.begin(), victims.end());

  std::vector<Event> probes;
  std::vector<std::vector<ObjectId>> lower;  // oracle over keepers
  std::vector<std::vector<ObjectId>> upper;  // oracle over everything
  for (int e = 0; e < 10; ++e) {
    const Box b = FuzzBox(rng);
    probes.push_back(Event::Range(b));
    lower.push_back(Oracle(keepers, b));
    upper.push_back(Oracle(all, b));
  }

  std::atomic<bool> stop{false};
  std::thread rebalancer([&] {
    Rng rr(31);
    while (!stop.load(std::memory_order_relaxed)) {
      if (rr.NextBool(0.25)) {
        engine.SetRangeBoundaries(RandomBounds(rr, engine.shard_count() - 2));
      } else {
        engine.RebalanceOnce();
      }
    }
  });
  std::thread unsubscriber([&] {
    for (const auto& [id, box] : victims) {
      EXPECT_TRUE(engine.Unsubscribe(id));
    }
  });

  MatchBatchResult res;
  for (int i = 0; i < 40; ++i) {
    engine.MatchBatch(Span<const Event>(probes.data(), probes.size()), &res);
    for (size_t e = 0; e < probes.size(); ++e) {
      const std::vector<ObjectId>& got = res.matches[e];
      // Duplicate-free (sorted by contract): double residency never leaks
      // the same subscription twice, even racing its own unsubscribe.
      ASSERT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end())
          << "duplicate id in batch " << i << " probe " << e;
      // Every never-removed match present; nothing outside the full set.
      ASSERT_TRUE(std::includes(got.begin(), got.end(), lower[e].begin(),
                                lower[e].end()))
          << "missing keeper match in batch " << i << " probe " << e;
      ASSERT_TRUE(std::includes(upper[e].begin(), upper[e].end(), got.begin(),
                                got.end()))
          << "phantom id in batch " << i << " probe " << e;
    }
  }
  unsubscriber.join();
  stop.store(true, std::memory_order_relaxed);
  rebalancer.join();

  // Quiesced: exactly the keepers remain, and matching agrees byte-for-byte.
  EXPECT_EQ(engine.subscription_count(), keepers.size());
  engine.MatchBatch(Span<const Event>(probes.data(), probes.size()), &res);
  for (size_t e = 0; e < probes.size(); ++e) {
    EXPECT_EQ(res.matches[e], lower[e]) << "probe " << e;
  }
  size_t resident = 0;
  for (const auto& info : engine.GetShardInfos()) {
    resident += info.subscriptions;
  }
  EXPECT_EQ(resident, keepers.size());
}

TEST(EpochMigration, MatchSingleEventExactDuringRebalance) {
  // The non-batched Match path pins and dedups too; drive it through the
  // same continuous-rebalance gauntlet.
  SubscriptionEngine engine = MakeRangeEngine(4, 0);
  Rng rng(1234);
  std::vector<std::pair<SubscriptionId, Box>> subs;
  for (int i = 0; i < 300; ++i) {
    const Box b = FuzzBox(rng);
    subs.emplace_back(engine.SubscribeBox(b), b);
  }
  std::vector<Box> probe_boxes;
  std::vector<std::vector<ObjectId>> expected;
  for (int e = 0; e < 8; ++e) {
    probe_boxes.push_back(FuzzBox(rng));
    expected.push_back(Oracle(subs, probe_boxes.back()));
  }

  std::atomic<bool> stop{false};
  std::thread rebalancer([&] {
    Rng rr(5);
    while (!stop.load(std::memory_order_relaxed)) {
      if (rr.NextBool(0.3)) {
        engine.SetRangeBoundaries(RandomBounds(rr, engine.shard_count() - 2));
      } else {
        engine.RebalanceOnce();
      }
    }
  });
  for (int i = 0; i < 80; ++i) {
    for (size_t e = 0; e < probe_boxes.size(); ++e) {
      std::vector<SubscriptionId> out;
      engine.Match(Event::Range(probe_boxes[e]), &out);
      // kRange Match output is sorted + deduplicated by contract.
      ASSERT_EQ(out, expected[e]) << "iteration " << i << " probe " << e;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  rebalancer.join();
}

}  // namespace
}  // namespace accl
