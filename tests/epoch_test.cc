// Unit tests for the epoch-based reclamation subsystem (exec/epoch.h):
// pin/unpin slot protocol, deferred retire lists, grace-period
// Synchronize, slot-pool growth under more concurrent pins than slots,
// and the counters the engine's observability surfaces.
#include "exec/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace accl::exec {
namespace {

TEST(Epoch, PinReportsCurrentEpochAndReleases) {
  EpochManager em;
  const uint64_t e0 = em.current_epoch();
  EXPECT_GE(e0, 1u);  // 0 is the quiescent sentinel and never a real epoch
  {
    EpochManager::Guard g = em.Pin();
    EXPECT_TRUE(g.pinned());
    EXPECT_EQ(g.epoch(), e0);
  }
  EXPECT_EQ(em.stats().pins, 1u);
}

TEST(Epoch, GuardMoveTransfersThePin) {
  EpochManager em;
  EpochManager::Guard a = em.Pin();
  const uint64_t e = a.epoch();
  EpochManager::Guard b = std::move(a);
  EXPECT_FALSE(a.pinned());  // NOLINT(bugprone-use-after-move): tested
  EXPECT_TRUE(b.pinned());
  EXPECT_EQ(b.epoch(), e);
  b.Release();
  EXPECT_FALSE(b.pinned());
  b.Release();  // double release is a no-op
}

TEST(Epoch, ReentrantPinsOccupyDistinctSlots) {
  EpochManager em;
  EpochManager::Guard a = em.Pin();
  EpochManager::Guard b = em.Pin();  // same thread, second slot
  EXPECT_TRUE(a.pinned());
  EXPECT_TRUE(b.pinned());
  a.Release();
  // b still pins its own slot: retire at the current epoch and verify the
  // entry is not reclaimable while b lives.
  bool freed = false;
  em.Retire([&] { freed = true; });
  EXPECT_EQ(em.TryReclaim(), 0u);
  EXPECT_FALSE(freed);
  b.Release();
  EXPECT_EQ(em.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(Epoch, RetireIsDeferredUntilReadersDrain) {
  EpochManager em;
  EpochManager::Guard g = em.Pin();
  std::vector<int> order;
  em.Retire([&] { order.push_back(1); });
  em.Retire([&] { order.push_back(2); });
  EXPECT_EQ(em.TryReclaim(), 0u);  // reader pinned at the retire epoch
  EXPECT_EQ(em.stats().retired_pending, 2u);
  g.Release();
  EXPECT_EQ(em.TryReclaim(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // FIFO, never concurrent
  EXPECT_EQ(em.stats().retired_pending, 0u);
  EXPECT_EQ(em.stats().reclaimed, 2u);
}

TEST(Epoch, SynchronizeAdvancesEpochAndReclaims) {
  EpochManager em;
  const uint64_t e0 = em.current_epoch();
  bool freed = false;
  em.Retire([&] { freed = true; });
  em.Synchronize();
  EXPECT_GT(em.current_epoch(), e0);
  EXPECT_TRUE(freed);
  EXPECT_EQ(em.stats().synchronizes, 1u);
}

TEST(Epoch, SynchronizeWaitsForOldEpochReaders) {
  EpochManager em;
  std::atomic<bool> synchronized{false};
  std::atomic<bool> release_reader{false};

  EpochManager::Guard reader = em.Pin();
  std::thread sync([&] {
    em.Synchronize();
    synchronized.store(true);
  });
  // The synchronizer must not return while the old-epoch reader is pinned.
  // Give it ample opportunity to (incorrectly) finish.
  for (int i = 0; i < 100; ++i) {
    std::this_thread::yield();
    ASSERT_FALSE(synchronized.load());
  }
  release_reader.store(true);
  reader.Release();
  sync.join();
  EXPECT_TRUE(synchronized.load());
}

TEST(Epoch, NewEpochReadersDoNotBlockSynchronize) {
  // A reader that pins AFTER the bump must not extend the grace period:
  // pin a post-bump reader from inside the wait loop by racing Synchronize
  // against a pin-release treadmill. If Synchronize waited for new-epoch
  // readers it would livelock here.
  EpochManager em;
  std::atomic<bool> stop{false};
  std::thread treadmill([&] {
    while (!stop.load()) {
      EpochManager::Guard g = em.Pin();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 50; ++i) em.Synchronize();
  stop.store(true);
  treadmill.join();
  EXPECT_EQ(em.stats().synchronizes, 50u);
}

TEST(Epoch, SlotPoolGrowsBeyondOneBlock) {
  // More simultaneous pins than one block holds (32): every pin must still
  // succeed, and releasing them all must make everything reclaimable.
  EpochManager em;
  std::vector<EpochManager::Guard> guards;
  for (int i = 0; i < 100; ++i) guards.push_back(em.Pin());
  bool freed = false;
  em.Retire([&] { freed = true; });
  EXPECT_EQ(em.TryReclaim(), 0u);
  guards.clear();
  EXPECT_EQ(em.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(Epoch, ConcurrentPinnersNeverLoseASlot) {
  EpochManager em(4);  // deliberately undersized: force the grow path
  constexpr int kThreads = 16;
  constexpr int kItersPerThread = 2000;
  std::atomic<uint64_t> pinned_total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        EpochManager::Guard g = em.Pin();
        EXPECT_TRUE(g.pinned());
        pinned_total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pinned_total.load(), uint64_t{kThreads} * kItersPerThread);
  EXPECT_EQ(em.stats().pins, uint64_t{kThreads} * kItersPerThread);
}

TEST(Epoch, ConcurrentRetireAndSynchronizeReclaimEverything) {
  EpochManager em;
  constexpr int kRetirers = 4;
  constexpr int kPerThread = 500;
  std::atomic<int> freed{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kRetirers; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          em.Retire([&] { freed.fetch_add(1, std::memory_order_relaxed); });
          if (i % 64 == 0) em.TryReclaim();
        }
      });
    }
    std::thread reader([&] {
      for (int i = 0; i < 200; ++i) {
        EpochManager::Guard g = em.Pin();
        std::this_thread::yield();
      }
    });
    for (auto& t : threads) t.join();
    reader.join();
  }
  em.Synchronize();
  EXPECT_EQ(freed.load(), kRetirers * kPerThread);
  EXPECT_EQ(em.stats().retired_pending, 0u);
}

TEST(Epoch, DestructorRunsPendingDeleters) {
  bool freed = false;
  {
    EpochManager em;
    em.Retire([&] { freed = true; });
    // No TryReclaim/Synchronize: the destructor must not leak the entry.
  }
  EXPECT_TRUE(freed);
}

}  // namespace
}  // namespace accl::exec
