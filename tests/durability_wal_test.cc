// Unit tests for the write-ahead log and the shadow-paged checkpoint
// store: framing round trips, tail-corruption containment, truncation,
// group-commit vs per-record flush accounting, fault injection, and the
// checkpoint store's old-image-survives-failed-write guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "storage/paged_store.h"
#include "storage/sim_disk.h"

namespace accl {
namespace durability {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::unique_ptr<PagedFile> FreshFile(const std::string& path) {
  std::remove(path.c_str());
  return PagedFile::Create(path, 4096);
}

std::vector<float> BoxCoords(Dim nd, float seed) {
  std::vector<float> c(2 * static_cast<size_t>(nd));
  for (size_t i = 0; i < c.size(); i += 2) {
    c[i] = seed;
    c[i + 1] = seed + 0.1f;
  }
  return c;
}

std::vector<WalRecord> ReplayAll(WriteAheadLog& wal, Lsn after = kNoLsn) {
  std::vector<WalRecord> recs;
  EXPECT_TRUE(wal.Replay(after, [&](const WalRecord& r) { recs.push_back(r); }));
  return recs;
}

TEST(WriteAheadLog, AppendReplayRoundTrip) {
  const std::string path = TempPath("wal_roundtrip.wal");
  auto wal = WriteAheadLog::Create(FreshFile(path), {});
  ASSERT_NE(wal, nullptr);

  const auto c1 = BoxCoords(3, 0.1f);
  const Lsn l1 = wal->AppendSubscribe(7, 3, c1.data());
  const auto cb = BoxCoords(3, 0.3f);
  std::vector<float> batch(cb);
  batch.insert(batch.end(), cb.begin(), cb.end());
  const Lsn l2 = wal->AppendSubscribeBatch(8, 2, 3, batch.data());
  const Lsn l3 = wal->AppendUnsubscribe(7);
  EXPECT_EQ(l1, 1u);
  EXPECT_EQ(l2, 2u);
  EXPECT_EQ(l3, 3u);
  ASSERT_TRUE(wal->WaitDurable(l3));
  EXPECT_EQ(wal->durable_lsn(), 3u);

  const std::vector<WalRecord> recs = ReplayAll(*wal);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].type, WalRecordType::kSubscribe);
  EXPECT_EQ(recs[0].first_id, 7u);
  EXPECT_EQ(recs[0].count, 1u);
  EXPECT_EQ(recs[0].coords, c1);
  EXPECT_EQ(recs[1].type, WalRecordType::kSubscribeBatch);
  EXPECT_EQ(recs[1].first_id, 8u);
  EXPECT_EQ(recs[1].count, 2u);
  EXPECT_EQ(recs[1].coords, batch);
  EXPECT_EQ(recs[2].type, WalRecordType::kUnsubscribe);
  EXPECT_EQ(recs[2].first_id, 7u);
  // Replay honors the `after` cursor.
  EXPECT_EQ(ReplayAll(*wal, 2).size(), 1u);
  std::remove(path.c_str());
}

TEST(WriteAheadLog, ReopenFindsTheDurablePrefixAndContinuesLsns) {
  const std::string path = TempPath("wal_reopen.wal");
  const auto c = BoxCoords(2, 0.2f);
  {
    auto wal = WriteAheadLog::Create(FreshFile(path), {});
    for (int i = 0; i < 5; ++i) wal->AppendSubscribe(i, 2, c.data());
    ASSERT_TRUE(wal->WaitDurable(5));
  }
  auto wal = WriteAheadLog::Open(PagedFile::Open(path), {});
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->durable_lsn(), 5u);
  EXPECT_EQ(wal->max_lsn(), 5u);
  EXPECT_EQ(ReplayAll(*wal).size(), 5u);
  // New appends continue after the scanned prefix.
  EXPECT_EQ(wal->AppendSubscribe(99, 2, c.data()), 6u);
  ASSERT_TRUE(wal->WaitDurable(6));
  EXPECT_EQ(ReplayAll(*wal).size(), 6u);
  std::remove(path.c_str());
}

TEST(WriteAheadLog, CorruptTailStopsReplayCleanly) {
  const std::string path = TempPath("wal_corrupt.wal");
  const auto c = BoxCoords(2, 0.4f);
  {
    auto wal = WriteAheadLog::Create(FreshFile(path), {});
    for (int i = 0; i < 4; ++i) wal->AppendSubscribe(i, 2, c.data());
    ASSERT_TRUE(wal->WaitDurable(4));
  }
  // Scribble garbage over the last record's frame: a torn tail.
  {
    auto pf = PagedFile::Open(path);
    ASSERT_NE(pf, nullptr);
    // Each frame: 16 header (len+crc+lsn) + (1 + 4 + 4 + 4 + 16) payload
    // = 45 bytes.
    const uint64_t frame_bytes = 16 + 1 + 4 + 4 + 4 + 16;
    const uint64_t tail = 4 * frame_bytes;
    const uint32_t garbage[2] = {0xDEADBEEFu, 0x12345678u};
    ASSERT_TRUE(pf->StreamWrite(tail - frame_bytes + 10, garbage, 8));
    ASSERT_TRUE(pf->Sync());
  }
  auto wal = WriteAheadLog::Open(PagedFile::Open(path), {});
  ASSERT_NE(wal, nullptr);
  // The valid prefix (3 records) survives; the torn record is absent, and
  // the log keeps working from there.
  EXPECT_EQ(wal->max_lsn(), 3u);
  EXPECT_EQ(ReplayAll(*wal).size(), 3u);
  EXPECT_EQ(wal->AppendSubscribe(50, 2, c.data()), 4u);
  ASSERT_TRUE(wal->WaitDurable(4));
  EXPECT_EQ(ReplayAll(*wal).size(), 4u);
  std::remove(path.c_str());
}

TEST(WriteAheadLog, TruncateDropsCoveredRecordsDurably) {
  const std::string path = TempPath("wal_truncate.wal");
  const auto c = BoxCoords(2, 0.5f);
  auto wal = WriteAheadLog::Create(FreshFile(path), {});
  for (int i = 0; i < 10; ++i) wal->AppendSubscribe(i, 2, c.data());
  ASSERT_TRUE(wal->WaitDurable(10));
  // Truncation past the applied low-water is refused.
  EXPECT_FALSE(wal->Truncate(6));
  for (Lsn l = 1; l <= 6; ++l) wal->MarkApplied(l);
  EXPECT_EQ(wal->applied_low_water(), 6u);
  ASSERT_TRUE(wal->Truncate(6));
  EXPECT_EQ(wal->stats().truncations, 1u);
  std::vector<WalRecord> recs = ReplayAll(*wal);
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs.front().lsn, 7u);
  wal.reset();
  // The truncation is durable: a reopen sees the same suffix.
  wal = WriteAheadLog::Open(PagedFile::Open(path), {});
  recs = ReplayAll(*wal);
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs.front().lsn, 7u);
  EXPECT_EQ(wal->max_lsn(), 10u);
  std::remove(path.c_str());
}

TEST(WriteAheadLog, PerRecordModeSyncsEveryRecord) {
  const std::string path = TempPath("wal_perrecord.wal");
  WriteAheadLog::Options opts;
  opts.group_commit = false;
  auto wal = WriteAheadLog::Open(FreshFile(path), opts);
  const auto c = BoxCoords(2, 0.6f);
  for (int i = 0; i < 8; ++i) {
    const Lsn l = wal->AppendSubscribe(i, 2, c.data());
    ASSERT_TRUE(wal->WaitDurable(l));
  }
  const WalStats st = wal->stats();
  EXPECT_EQ(st.records_appended, 8u);
  EXPECT_EQ(st.flush_batches, 8u);  // one sync per record, by construction
  EXPECT_DOUBLE_EQ(st.records_per_flush(), 1.0);
  std::remove(path.c_str());
}

TEST(WriteAheadLog, GroupCommitSharesSyncsAcrossConcurrentAppenders) {
  const std::string path = TempPath("wal_group.wal");
  auto wal = WriteAheadLog::Open(FreshFile(path), {});
  const auto c = BoxCoords(2, 0.7f);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const Lsn l = wal->AppendSubscribe(i, 2, c.data());
        ASSERT_TRUE(wal->WaitDurable(l));
      }
    });
  }
  for (auto& t : threads) t.join();
  const WalStats st = wal->stats();
  EXPECT_EQ(st.records_appended,
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Batching is scheduling-dependent, but can never need MORE syncs than
  // records; every record must still be durable and replayable.
  EXPECT_LE(st.flush_batches, st.records_appended);
  EXPECT_EQ(st.durable_lsn, st.records_appended);
  EXPECT_EQ(ReplayAll(*wal).size(), st.records_appended);
  std::remove(path.c_str());
}

TEST(WriteAheadLog, InjectedFaultBreaksTheLogAndRefusesAcks) {
  const std::string path = TempPath("wal_fault.wal");
  SimDisk disk = SimDisk::Paper();
  WriteAheadLog::Options opts;
  opts.disk = &disk;
  auto wal = WriteAheadLog::Open(FreshFile(path), opts);
  const auto c = BoxCoords(2, 0.8f);
  const Lsn ok = wal->AppendSubscribe(1, 2, c.data());
  ASSERT_TRUE(wal->WaitDurable(ok));
  disk.FailAfter(0);
  const Lsn bad = wal->AppendSubscribe(2, 2, c.data());
  EXPECT_FALSE(wal->WaitDurable(bad));  // never acknowledged
  EXPECT_TRUE(wal->broken());
  EXPECT_EQ(wal->AppendSubscribe(3, 2, c.data()), kNoLsn);  // fails fast
  // The durable prefix is intact and the failed record is absent.
  disk.DisarmFaults();
  auto reopened = WriteAheadLog::Open(PagedFile::Open(path), {});
  EXPECT_EQ(ReplayAll(*reopened).size(), 1u);
  std::remove(path.c_str());
}

TEST(CheckpointStore, WriteReadRoundTripAndShadowOverwrite) {
  const std::string path = TempPath("ckpt_roundtrip.ck");
  auto store = CheckpointStore::Open(FreshFile(path));
  ASSERT_NE(store, nullptr);
  EXPECT_FALSE(store->has_checkpoint());
  EngineImage none;
  EXPECT_FALSE(store->Read(&none));

  EngineImage img;
  img.lsn = 42;
  img.next_id = 17;
  img.routing_version = 3;
  img.nd = 2;
  img.fences = {0.25f, 0.5f};
  img.ids = {1, 5, 9};
  img.coords = BoxCoords(2, 0.1f);
  auto more = BoxCoords(2, 0.2f);
  img.coords.insert(img.coords.end(), more.begin(), more.end());
  more = BoxCoords(2, 0.3f);
  img.coords.insert(img.coords.end(), more.begin(), more.end());
  ASSERT_TRUE(store->Write(img));

  EngineImage back;
  ASSERT_TRUE(store->Read(&back));
  EXPECT_EQ(back.lsn, img.lsn);
  EXPECT_EQ(back.next_id, img.next_id);
  EXPECT_EQ(back.routing_version, img.routing_version);
  EXPECT_EQ(back.fences, img.fences);
  EXPECT_EQ(back.ids, img.ids);
  EXPECT_EQ(back.coords, img.coords);

  // Shadow overwrite: the second image replaces the first...
  img.lsn = 50;
  img.ids = {1};
  img.coords = BoxCoords(2, 0.4f);
  ASSERT_TRUE(store->Write(img));
  ASSERT_TRUE(store->Read(&back));
  EXPECT_EQ(back.lsn, 50u);
  ASSERT_EQ(back.ids.size(), 1u);
  std::remove(path.c_str());
}

TEST(CheckpointStore, FailedWriteKeepsTheOldImageReadable) {
  const std::string path = TempPath("ckpt_fail.ck");
  SimDisk disk = SimDisk::Paper();
  auto store = CheckpointStore::Open(FreshFile(path), &disk);
  EngineImage img;
  img.lsn = 7;
  img.next_id = 2;
  img.nd = 2;
  img.ids = {1};
  img.coords = BoxCoords(2, 0.5f);
  ASSERT_TRUE(store->Write(img));

  // Fail the very next I/O op: the new image's blob write dies, the old
  // image must survive — on this store AND after a reopen.
  disk.FailAfter(0);
  img.lsn = 11;
  EXPECT_FALSE(store->Write(img));
  disk.DisarmFaults();
  EngineImage back;
  ASSERT_TRUE(store->Read(&back));
  EXPECT_EQ(back.lsn, 7u);

  store.reset();
  store = CheckpointStore::Open(PagedFile::Open(path));
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->Read(&back));
  EXPECT_EQ(back.lsn, 7u);
  // And the store still accepts new images afterwards.
  img.lsn = 20;
  ASSERT_TRUE(store->Write(img));
  ASSERT_TRUE(store->Read(&back));
  EXPECT_EQ(back.lsn, 20u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace durability
}  // namespace accl
