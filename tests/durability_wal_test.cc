// Unit tests for the segmented write-ahead log and the shadow-paged
// checkpoint store: framing round trips, tail-corruption containment,
// segment rotation and boundary-spanning replay, truncation GC (unlink +
// spare recycling) and the generation-stamp ABA regression, group-commit vs
// per-record flush accounting, fault injection across the file lifecycle,
// and the checkpoint store's old-image-survives-failed-write guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/segment.h"
#include "durability/wal.h"
#include "storage/paged_store.h"
#include "storage/sim_disk.h"

namespace accl {
namespace durability {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

/// WAL base path with no leftover segment or spare files.
std::string FreshBase(const char* name) {
  const std::string base = TempPath(name);
  RemoveWalFiles(base);
  return base;
}

std::unique_ptr<PagedFile> FreshFile(const std::string& path) {
  std::remove(path.c_str());
  return PagedFile::Create(path, 4096);
}

std::vector<float> BoxCoords(Dim nd, float seed) {
  std::vector<float> c(2 * static_cast<size_t>(nd));
  for (size_t i = 0; i < c.size(); i += 2) {
    c[i] = seed;
    c[i + 1] = seed + 0.1f;
  }
  return c;
}

std::vector<WalRecord> ReplayAll(WriteAheadLog& wal, Lsn after = kNoLsn) {
  std::vector<WalRecord> recs;
  EXPECT_TRUE(wal.Replay(after, [&](const WalRecord& r) { recs.push_back(r); }));
  return recs;
}

/// One nd=2 subscribe record on disk: 24-byte header + (1+4+4+4+16) payload.
constexpr uint64_t kSubscribe2dFrameBytes = kFrameHeaderBytes + 29;

/// Hand-writes a fully valid subscribe frame (id 666, lsn 8) at the second
/// frame slot of `segment_path`, stamped with `gen` and with the checksum
/// computed over exactly those bytes — everything about it passes framing;
/// only the stamp decides whether it replays.
void WriteStaleFrame(const std::string& segment_path, uint64_t gen) {
  std::vector<uint8_t> payload;
  payload.push_back(static_cast<uint8_t>(WalRecordType::kSubscribe));
  const auto put32 = [&](uint32_t v) {
    const uint8_t* b = reinterpret_cast<const uint8_t*>(&v);
    payload.insert(payload.end(), b, b + 4);
  };
  put32(666);  // id
  put32(1);    // count
  put32(2);    // nd
  const auto c = BoxCoords(2, 0.9f);
  const uint8_t* cb = reinterpret_cast<const uint8_t*>(c.data());
  payload.insert(payload.end(), cb, cb + 16);

  const Lsn lsn = 8;
  uint8_t hdr[kFrameHeaderBytes];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = FrameChecksum(payload.data(), payload.size(), lsn, gen);
  std::memcpy(hdr, &len, 4);
  std::memcpy(hdr + 4, &crc, 4);
  std::memcpy(hdr + 8, &lsn, 8);
  std::memcpy(hdr + 16, &gen, 8);

  auto pf = PagedFile::Open(segment_path);
  ASSERT_NE(pf, nullptr);
  const uint64_t off = kSegmentPreambleBytes + kSubscribe2dFrameBytes;
  ASSERT_TRUE(pf->StreamWrite(off, hdr, kFrameHeaderBytes));
  ASSERT_TRUE(
      pf->StreamWrite(off + kFrameHeaderBytes, payload.data(), payload.size()));
  ASSERT_TRUE(pf->Sync());
}

/// Small-segment options: with sequential WaitDurable'd appends (one record
/// per flush batch) each segment seals after exactly two nd=2 subscribes.
WriteAheadLog::Options SmallSegments() {
  WriteAheadLog::Options o;
  o.segment_bytes = 64;
  o.spare_segments = 1;
  return o;
}

/// Appends `n` nd=2 subscribes one at a time (ids `first_id`, +1, ...),
/// waiting each durable so every record is its own flush batch — segment
/// layout is then deterministic.
void AppendSerial(WriteAheadLog* wal, ObjectId first_id, int n, float seed) {
  const auto c = BoxCoords(2, seed);
  for (int i = 0; i < n; ++i) {
    const Lsn l = wal->AppendSubscribe(first_id + i, 2, c.data());
    ASSERT_TRUE(wal->WaitDurable(l));
  }
}

TEST(WriteAheadLog, AppendReplayRoundTrip) {
  const std::string base = FreshBase("wal_roundtrip.wal");
  auto wal = WriteAheadLog::Create(base, {});
  ASSERT_NE(wal, nullptr);

  const auto c1 = BoxCoords(3, 0.1f);
  const Lsn l1 = wal->AppendSubscribe(7, 3, c1.data());
  const auto cb = BoxCoords(3, 0.3f);
  std::vector<float> batch(cb);
  batch.insert(batch.end(), cb.begin(), cb.end());
  const Lsn l2 = wal->AppendSubscribeBatch(8, 2, 3, batch.data());
  const Lsn l3 = wal->AppendUnsubscribe(7);
  EXPECT_EQ(l1, 1u);
  EXPECT_EQ(l2, 2u);
  EXPECT_EQ(l3, 3u);
  ASSERT_TRUE(wal->WaitDurable(l3));
  EXPECT_EQ(wal->durable_lsn(), 3u);

  const std::vector<WalRecord> recs = ReplayAll(*wal);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].type, WalRecordType::kSubscribe);
  EXPECT_EQ(recs[0].first_id, 7u);
  EXPECT_EQ(recs[0].count, 1u);
  EXPECT_EQ(recs[0].coords, c1);
  EXPECT_EQ(recs[1].type, WalRecordType::kSubscribeBatch);
  EXPECT_EQ(recs[1].first_id, 8u);
  EXPECT_EQ(recs[1].count, 2u);
  EXPECT_EQ(recs[1].coords, batch);
  EXPECT_EQ(recs[2].type, WalRecordType::kUnsubscribe);
  EXPECT_EQ(recs[2].first_id, 7u);
  // Replay honors the `after` cursor.
  EXPECT_EQ(ReplayAll(*wal, 2).size(), 1u);
  wal.reset();
  RemoveWalFiles(base);
}

TEST(WriteAheadLog, ReopenFindsTheDurablePrefixAndContinuesLsns) {
  const std::string base = FreshBase("wal_reopen.wal");
  const auto c = BoxCoords(2, 0.2f);
  {
    auto wal = WriteAheadLog::Create(base, {});
    for (int i = 0; i < 5; ++i) wal->AppendSubscribe(i, 2, c.data());
    ASSERT_TRUE(wal->WaitDurable(5));
  }
  auto wal = WriteAheadLog::Open(base, {});
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->durable_lsn(), 5u);
  EXPECT_EQ(wal->max_lsn(), 5u);
  EXPECT_EQ(ReplayAll(*wal).size(), 5u);
  // New appends continue after the scanned prefix.
  EXPECT_EQ(wal->AppendSubscribe(99, 2, c.data()), 6u);
  ASSERT_TRUE(wal->WaitDurable(6));
  EXPECT_EQ(ReplayAll(*wal).size(), 6u);
  wal.reset();
  RemoveWalFiles(base);
}

TEST(WriteAheadLog, CorruptTailStopsReplayCleanly) {
  const std::string base = FreshBase("wal_corrupt.wal");
  const auto c = BoxCoords(2, 0.4f);
  {
    auto wal = WriteAheadLog::Create(base, {});
    for (int i = 0; i < 4; ++i) wal->AppendSubscribe(i, 2, c.data());
    ASSERT_TRUE(wal->WaitDurable(4));
  }
  // Scribble garbage over the last record's frame: a torn tail.
  {
    auto pf = PagedFile::Open(SegmentPath(base, 1));
    ASSERT_NE(pf, nullptr);
    const uint64_t tail = kSegmentPreambleBytes + 4 * kSubscribe2dFrameBytes;
    const uint32_t garbage[2] = {0xDEADBEEFu, 0x12345678u};
    ASSERT_TRUE(pf->StreamWrite(tail - kSubscribe2dFrameBytes + 10, garbage, 8));
    ASSERT_TRUE(pf->Sync());
  }
  auto wal = WriteAheadLog::Open(base, {});
  ASSERT_NE(wal, nullptr);
  // The valid prefix (3 records) survives; the torn record is absent, and
  // the log keeps working from there.
  EXPECT_EQ(wal->max_lsn(), 3u);
  EXPECT_EQ(ReplayAll(*wal).size(), 3u);
  EXPECT_EQ(wal->AppendSubscribe(50, 2, c.data()), 4u);
  ASSERT_TRUE(wal->WaitDurable(4));
  EXPECT_EQ(ReplayAll(*wal).size(), 4u);
  wal.reset();
  RemoveWalFiles(base);
}

TEST(WriteAheadLog, RotationSealsSegmentsAndReplaySpansBoundaries) {
  const std::string base = FreshBase("wal_rotate.wal");
  auto wal = WriteAheadLog::Open(base, SmallSegments());
  ASSERT_NE(wal, nullptr);
  AppendSerial(wal.get(), 0, 9, 0.3f);

  WalStats st = wal->stats();
  EXPECT_EQ(st.live_segments, 5u);  // two records per sealed segment
  EXPECT_EQ(st.segments_rotated, 4u);
  EXPECT_EQ(st.tail_segment_seq, 5u);

  // Replay crosses every rotation boundary in LSN order.
  std::vector<WalRecord> recs = ReplayAll(*wal);
  ASSERT_EQ(recs.size(), 9u);
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].lsn, static_cast<Lsn>(i + 1));
    EXPECT_EQ(recs[i].first_id, static_cast<ObjectId>(i));
  }
  // And the cursor can land mid-segment or on a boundary.
  EXPECT_EQ(ReplayAll(*wal, 4).size(), 5u);
  EXPECT_EQ(ReplayAll(*wal, 5).size(), 4u);

  // A reopen walks the same multi-segment prefix.
  wal.reset();
  wal = WriteAheadLog::Open(base, SmallSegments());
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->max_lsn(), 9u);
  EXPECT_EQ(ReplayAll(*wal).size(), 9u);
  wal.reset();
  RemoveWalFiles(base);
}

TEST(WriteAheadLog, ReopenResumesInEmptyJustRotatedTail) {
  const std::string base = FreshBase("wal_emptytail.wal");
  {
    auto wal = WriteAheadLog::Open(base, SmallSegments());
    ASSERT_NE(wal, nullptr);
    AppendSerial(wal.get(), 0, 2, 0.4f);  // seals segment 1 exactly
  }
  // Simulate a crash between a rotation's seal and the first write into
  // the new segment: the chain is [full seg 1, empty seg 2] on disk.
  ASSERT_NE(WalSegment::Create(SegmentPath(base, 2), 4096, /*seq=*/2,
                               /*base_lsn=*/3, /*disk=*/nullptr),
            nullptr);
  auto wal = WriteAheadLog::Open(base, SmallSegments());
  ASSERT_NE(wal, nullptr);
  // The empty tail is a valid (empty) continuation, not corruption: the
  // prefix survives and appends resume inside segment 2.
  EXPECT_EQ(wal->max_lsn(), 2u);
  EXPECT_EQ(ReplayAll(*wal).size(), 2u);
  EXPECT_EQ(wal->stats().tail_segment_seq, 2u);
  AppendSerial(wal.get(), 10, 1, 0.5f);
  const std::vector<WalRecord> recs = ReplayAll(*wal);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs.back().lsn, 3u);
  EXPECT_EQ(recs.back().first_id, 10u);
  wal.reset();
  RemoveWalFiles(base);
}

TEST(WriteAheadLog, TruncateDropsCoveredSegmentsDurablyAndBoundsFootprint) {
  const std::string base = FreshBase("wal_truncate.wal");
  auto wal = WriteAheadLog::Open(base, SmallSegments());
  AppendSerial(wal.get(), 0, 10, 0.5f);
  ASSERT_EQ(ListSegmentFiles(base).size(), 5u);

  // Truncation past the applied low-water is refused with the reason.
  const Status early = wal->Truncate(6);
  EXPECT_FALSE(early.ok());
  EXPECT_EQ(early.code(), StatusCode::kFailedPrecondition);
  for (Lsn l = 1; l <= 6; ++l) wal->MarkApplied(l);
  EXPECT_EQ(wal->applied_low_water(), 6u);
  ASSERT_TRUE(wal->Truncate(6).ok());

  // Segments {1,2}, {3,4}, {5,6} are fully covered: one becomes the spare,
  // the rest are unlinked — the on-disk footprint actually shrinks.
  WalStats st = wal->stats();
  EXPECT_EQ(st.truncations, 1u);
  EXPECT_EQ(st.live_segments, 2u);
  EXPECT_EQ(st.segments_spared, 1u);
  EXPECT_EQ(st.segments_unlinked, 2u);
  EXPECT_EQ(ListSegmentFiles(base).size(), 2u);
  EXPECT_EQ(ListSpareFiles(base).size(), 1u);

  std::vector<WalRecord> recs = ReplayAll(*wal);
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs.front().lsn, 7u);
  wal.reset();
  // The truncation is durable: a reopen sees the same suffix.
  wal = WriteAheadLog::Open(base, SmallSegments());
  recs = ReplayAll(*wal);
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs.front().lsn, 7u);
  EXPECT_EQ(wal->max_lsn(), 10u);
  wal.reset();
  RemoveWalFiles(base);
}

TEST(WriteAheadLog, GenerationStampRejectsStaleBytesInRecycledSegment) {
  const std::string base = FreshBase("wal_aba.wal");
  auto wal = WriteAheadLog::Open(base, SmallSegments());
  // Segments: 1:{1,2} 2:{3,4} 3:{5,6}. Truncate(4) spares segment 1 and
  // unlinks segment 2; the next rotation recycles the spare as segment 4
  // WITHOUT truncating its payload, so segment 1's old frames survive as
  // stale bytes past whatever the new generation overwrites.
  AppendSerial(wal.get(), 0, 6, 0.6f);
  for (Lsn l = 1; l <= 4; ++l) wal->MarkApplied(l);
  ASSERT_TRUE(wal->Truncate(4).ok());
  AppendSerial(wal.get(), 10, 1, 0.7f);  // lsn 7, first frame of segment 4
  WalStats st = wal->stats();
  EXPECT_EQ(st.segments_recycled, 1u);
  EXPECT_EQ(st.tail_segment_seq, 4u);
  wal.reset();

  // The recycled region right after lsn 7's frame still holds segment 1's
  // second frame. Make it maximally adversarial — the exact layout the
  // single-file log could not defend against: a stale frame with a valid
  // length, a checksum consistent with its own bytes, and an LSN (8) that
  // continues the live chain perfectly. Only its generation stamp (1, the
  // segment's previous life) betrays it.
  WriteStaleFrame(SegmentPath(base, 4), /*gen=*/1);

  // Recovery must stop at lsn 7: the stale frame would replay a subscribe
  // that was truncated away in another life of these bytes.
  wal = WriteAheadLog::Open(base, SmallSegments());
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->max_lsn(), 7u);
  const std::vector<WalRecord> recs = ReplayAll(*wal);
  ASSERT_EQ(recs.size(), 3u);  // lsns 5, 6, 7
  for (const WalRecord& r : recs) EXPECT_NE(r.first_id, 666u);
  wal.reset();

  // Control: restamp the identical frame under the segment's LIVE
  // generation (4) and it replays — proving the stamp, and nothing else
  // about the framing, is what rejected the stale bytes.
  WriteStaleFrame(SegmentPath(base, 4), /*gen=*/4);
  wal = WriteAheadLog::Open(base, SmallSegments());
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->max_lsn(), 8u);
  EXPECT_EQ(ReplayAll(*wal).back().first_id, 666u);
  wal.reset();
  RemoveWalFiles(base);
}

TEST(WriteAheadLog, PerRecordModeSyncsEveryRecord) {
  const std::string base = FreshBase("wal_perrecord.wal");
  WriteAheadLog::Options opts;
  opts.group_commit = false;
  auto wal = WriteAheadLog::Open(base, opts);
  const auto c = BoxCoords(2, 0.6f);
  for (int i = 0; i < 8; ++i) {
    const Lsn l = wal->AppendSubscribe(i, 2, c.data());
    ASSERT_TRUE(wal->WaitDurable(l));
  }
  const WalStats st = wal->stats();
  EXPECT_EQ(st.records_appended, 8u);
  EXPECT_EQ(st.flush_batches, 8u);  // one sync per record, by construction
  EXPECT_DOUBLE_EQ(st.records_per_flush(), 1.0);
  wal.reset();
  RemoveWalFiles(base);
}

TEST(WriteAheadLog, GroupCommitSharesSyncsAcrossConcurrentAppenders) {
  const std::string base = FreshBase("wal_group.wal");
  auto wal = WriteAheadLog::Open(base, {});
  const auto c = BoxCoords(2, 0.7f);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const Lsn l = wal->AppendSubscribe(i, 2, c.data());
        ASSERT_TRUE(wal->WaitDurable(l));
      }
    });
  }
  for (auto& t : threads) t.join();
  const WalStats st = wal->stats();
  EXPECT_EQ(st.records_appended,
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Batching is scheduling-dependent, but can never need MORE syncs than
  // records; every record must still be durable and replayable.
  EXPECT_LE(st.flush_batches, st.records_appended);
  EXPECT_EQ(st.durable_lsn, st.records_appended);
  EXPECT_EQ(ReplayAll(*wal).size(), st.records_appended);
  wal.reset();
  RemoveWalFiles(base);
}

TEST(WriteAheadLog, InjectedFaultBreaksTheLogAndRefusesAcks) {
  const std::string base = FreshBase("wal_fault.wal");
  SimDisk disk = SimDisk::Paper();
  WriteAheadLog::Options opts;
  opts.disk = &disk;
  auto wal = WriteAheadLog::Open(base, opts);
  const auto c = BoxCoords(2, 0.8f);
  const Lsn ok = wal->AppendSubscribe(1, 2, c.data());
  ASSERT_TRUE(wal->WaitDurable(ok));
  disk.FailAfter(0);
  const Lsn bad = wal->AppendSubscribe(2, 2, c.data());
  EXPECT_FALSE(wal->WaitDurable(bad));  // never acknowledged
  EXPECT_TRUE(wal->broken());
  EXPECT_EQ(wal->AppendSubscribe(3, 2, c.data()), kNoLsn);  // fails fast
  // A broken log refuses truncation too: its in-memory chain can no
  // longer be trusted to match the files.
  EXPECT_EQ(wal->Truncate(1).code(), StatusCode::kFailedPrecondition);
  // The durable prefix is intact and the failed record is absent.
  disk.DisarmFaults();
  auto reopened = WriteAheadLog::Open(base, {});
  EXPECT_EQ(ReplayAll(*reopened).size(), 1u);
  wal.reset();
  reopened.reset();
  RemoveWalFiles(base);
}

TEST(WriteAheadLog, LifecycleOpsConsultAndChargeTheSimDisk) {
  const std::string base = FreshBase("wal_lifecycle.wal");
  SimDisk disk = SimDisk::Paper();
  WriteAheadLog::Options opts = SmallSegments();
  opts.disk = &disk;
  auto wal = WriteAheadLog::Open(base, opts);
  AppendSerial(wal.get(), 0, 6, 0.2f);  // segments 1:{1,2} 2:{3,4} 3:{5,6}
  EXPECT_EQ(disk.file_creates(), 2u);   // rotations to 2 and 3 (not open's 1)
  for (Lsn l = 1; l <= 4; ++l) wal->MarkApplied(l);

  // Truncation's lifecycle ops are inside the fault domain: an armed disk
  // fails the drop, the chain stays consistent, and a retry finishes.
  disk.FailAfter(0);
  EXPECT_EQ(wal->Truncate(4).code(), StatusCode::kIOError);
  disk.DisarmFaults();
  ASSERT_TRUE(wal->Truncate(4).ok());
  EXPECT_EQ(disk.file_renames(), 1u);  // segment 1 -> spare
  EXPECT_EQ(disk.file_unlinks(), 1u);  // segment 2 removed
  const uint64_t ops_before = disk.io_ops();

  // The next rotation recycles the spare (rename back + preamble rewrite),
  // all charged I/O.
  AppendSerial(wal.get(), 10, 1, 0.3f);  // lsn 7 rotates into segment 4
  EXPECT_EQ(disk.file_renames(), 2u);
  EXPECT_EQ(wal->stats().segments_recycled, 1u);
  EXPECT_GT(disk.io_ops(), ops_before);

  const std::vector<WalRecord> recs = ReplayAll(*wal);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs.front().lsn, 5u);
  wal.reset();
  RemoveWalFiles(base);
}

TEST(CheckpointStore, WriteReadRoundTripAndShadowOverwrite) {
  const std::string path = TempPath("ckpt_roundtrip.ck");
  auto store = CheckpointStore::Open(FreshFile(path));
  ASSERT_NE(store, nullptr);
  EXPECT_FALSE(store->has_checkpoint());
  EngineImage none;
  EXPECT_FALSE(store->Read(&none));

  EngineImage img;
  img.lsn = 42;
  img.next_id = 17;
  img.routing_version = 3;
  img.nd = 2;
  img.fences = {0.25f, 0.5f};
  img.ids = {1, 5, 9};
  img.coords = BoxCoords(2, 0.1f);
  auto more = BoxCoords(2, 0.2f);
  img.coords.insert(img.coords.end(), more.begin(), more.end());
  more = BoxCoords(2, 0.3f);
  img.coords.insert(img.coords.end(), more.begin(), more.end());
  ASSERT_TRUE(store->Write(img));

  EngineImage back;
  ASSERT_TRUE(store->Read(&back));
  EXPECT_EQ(back.lsn, img.lsn);
  EXPECT_EQ(back.next_id, img.next_id);
  EXPECT_EQ(back.routing_version, img.routing_version);
  EXPECT_EQ(back.fences, img.fences);
  EXPECT_EQ(back.ids, img.ids);
  EXPECT_EQ(back.coords, img.coords);

  // Shadow overwrite: the second image replaces the first...
  img.lsn = 50;
  img.ids = {1};
  img.coords = BoxCoords(2, 0.4f);
  ASSERT_TRUE(store->Write(img));
  ASSERT_TRUE(store->Read(&back));
  EXPECT_EQ(back.lsn, 50u);
  ASSERT_EQ(back.ids.size(), 1u);
  std::remove(path.c_str());
}

TEST(CheckpointStore, FailedWriteKeepsTheOldImageReadable) {
  const std::string path = TempPath("ckpt_fail.ck");
  SimDisk disk = SimDisk::Paper();
  auto store = CheckpointStore::Open(FreshFile(path), &disk);
  EngineImage img;
  img.lsn = 7;
  img.next_id = 2;
  img.nd = 2;
  img.ids = {1};
  img.coords = BoxCoords(2, 0.5f);
  ASSERT_TRUE(store->Write(img));

  // Fail the very next I/O op: the new image's blob write dies, the old
  // image must survive — on this store AND after a reopen.
  disk.FailAfter(0);
  img.lsn = 11;
  EXPECT_FALSE(store->Write(img));
  disk.DisarmFaults();
  EngineImage back;
  ASSERT_TRUE(store->Read(&back));
  EXPECT_EQ(back.lsn, 7u);

  store.reset();
  store = CheckpointStore::Open(PagedFile::Open(path));
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->Read(&back));
  EXPECT_EQ(back.lsn, 7u);
  // And the store still accepts new images afterwards.
  img.lsn = 20;
  ASSERT_TRUE(store->Write(img));
  ASSERT_TRUE(store->Read(&back));
  EXPECT_EQ(back.lsn, 20u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace durability
}  // namespace accl
