#include <gtest/gtest.h>

#include "core/static_clustering.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/query_gen.h"

namespace accl {
namespace {

using testutil::BruteForce;
using testutil::RunQuery;

Dataset Uni(Dim nd, size_t n, uint64_t seed) {
  UniformSpec spec;
  spec.nd = nd;
  spec.count = n;
  spec.seed = seed;
  return GenerateUniform(spec);
}

TEST(StaticClustering, SingleClusterWhenQueriesUnselective) {
  Dataset ds = Uni(4, 5000, 1);
  std::vector<Query> sample(64, Query::Intersection(Box::FullDomain(4)));
  StaticClustering sc =
      BuildStaticClustering(ds, sample, StaticClusteringOptions{});
  EXPECT_EQ(sc.cluster_count, 1u);
  EXPECT_EQ(sc.images[0].ids.size(), 5000u);
}

TEST(StaticClustering, SelectiveQueriesProduceClusters) {
  Dataset ds = Uni(8, 20000, 3);
  auto sample =
      GenerateQueriesWithExtent(8, Relation::kIntersects, 512, 0.1, 5);
  StaticClustering sc =
      BuildStaticClustering(ds, sample, StaticClusteringOptions{});
  EXPECT_GT(sc.cluster_count, 1u);
  // All objects present exactly once.
  size_t total = 0;
  for (const auto& img : sc.images) total += img.ids.size();
  EXPECT_EQ(total, 20000u);
}

TEST(StaticClustering, ImagesLoadIntoValidIndex) {
  Dataset ds = Uni(4, 8000, 7);
  auto sample =
      GenerateQueriesWithExtent(4, Relation::kIntersects, 512, 0.1, 9);
  AdaptiveConfig cfg;
  cfg.nd = 4;
  auto idx = BuildStaticIndex(ds, sample, StaticClusteringOptions{}, cfg);
  ASSERT_NE(idx, nullptr);
  idx->CheckInvariants();
  EXPECT_EQ(idx->size(), 8000u);
  EXPECT_GT(idx->cluster_count(), 1u);

  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    Box qb = testutil::RandomBox(rng, 4, 0.4f);
    for (Relation rel : {Relation::kIntersects, Relation::kContainedBy,
                         Relation::kEncloses}) {
      Query q(qb, rel);
      EXPECT_EQ(RunQuery(*idx, q), BruteForce(ds, q));
    }
  }
}

TEST(StaticClustering, ExpectedCostNotWorseThanScan) {
  Dataset ds = Uni(8, 20000, 13);
  auto sample =
      GenerateQueriesWithExtent(8, Relation::kIntersects, 512, 0.05, 15);
  StaticClusteringOptions opt;
  StaticClustering sc = BuildStaticClustering(ds, sample, opt);
  const CostModel model = CostModel::Make(
      opt.scenario, 8, opt.sys, 8.0 * opt.division_factor *
                                    (opt.division_factor + 1) / 2.0);
  EXPECT_LE(sc.expected_query_ms, model.ClusterTime(1.0, 20000.0));
}

TEST(StaticClustering, WarmStartBeatsColdStartImmediately) {
  // A statically clustered index answers its first queries with far fewer
  // verifications than a cold adaptive index that has not reorganized yet.
  Dataset ds = Uni(8, 20000, 17);
  auto sample =
      GenerateQueriesWithExtent(8, Relation::kIntersects, 512, 0.08, 19);
  AdaptiveConfig cfg;
  cfg.nd = 8;
  auto warm = BuildStaticIndex(ds, sample, StaticClusteringOptions{}, cfg);
  AdaptiveIndex cold(cfg);
  testutil::Load(cold, ds);

  auto probe =
      GenerateQueriesWithExtent(8, Relation::kIntersects, 50, 0.08, 21);
  uint64_t warm_verified = 0, cold_verified = 0;
  QueryMetrics m;
  std::vector<ObjectId> out;
  for (const Query& q : probe) {
    out.clear();
    warm->Execute(q, &out, &m);
    warm_verified += m.objects_verified;
    out.clear();
    cold.Execute(q, &out, &m);
    cold_verified += m.objects_verified;
  }
  EXPECT_LT(warm_verified * 2, cold_verified);
}

TEST(StaticClustering, DiskScenarioFewerClusters) {
  Dataset ds = Uni(8, 20000, 23);
  auto sample =
      GenerateQueriesWithExtent(8, Relation::kIntersects, 512, 0.08, 25);
  StaticClusteringOptions mem, dsk;
  dsk.scenario = StorageScenario::kDisk;
  const size_t mem_clusters =
      BuildStaticClustering(ds, sample, mem).cluster_count;
  const size_t dsk_clusters =
      BuildStaticClustering(ds, sample, dsk).cluster_count;
  EXPECT_LT(dsk_clusters, mem_clusters);
}

TEST(StaticClustering, EmptyDatasetYieldsRootOnly) {
  Dataset ds;
  ds.nd = 3;
  std::vector<Query> sample(8, Query::Intersection(Box::FullDomain(3)));
  StaticClustering sc =
      BuildStaticClustering(ds, sample, StaticClusteringOptions{});
  EXPECT_EQ(sc.cluster_count, 1u);
  EXPECT_TRUE(sc.images[0].ids.empty());
}

}  // namespace
}  // namespace accl
