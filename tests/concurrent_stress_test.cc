// Concurrency hardening for the sharded SDI engine.
//
// Part 1 (deterministic): a seeded operation log interleaving MatchBatch
// with Subscribe/Unsubscribe is applied to sharded multi-threaded engines
// and replayed serially; every batch's match sets must be identical.
//
// Part 2 (scheduler-adversarial): raw threads hammer the engine's public
// API concurrently; the final state must equal the brute-force oracle over
// the surviving subscriptions. This is the primary ThreadSanitizer target.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "sdi/subscription_engine.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

constexpr Dim kNd = 4;

AttributeSchema UnitSchema() {
  AttributeSchema s;
  for (Dim d = 0; d < kNd; ++d) {
    s.AddAttribute("a" + std::to_string(d), 0.0, 1.0);
  }
  return s;
}

EngineOptions Opts(uint32_t shards, uint32_t threads) {
  EngineOptions o;
  o.index.reorg_period = 25;
  o.index.min_observation = 8;
  o.default_policy = MatchPolicy::kIntersecting;
  o.shards = shards;
  o.match_threads = threads;
  return o;
}

// One record per operation, pre-generated so every engine replays the
// exact same log.
struct Op {
  enum Kind { kSubscribe, kUnsubscribe, kMatchBatch } kind;
  Box box;                    // kSubscribe
  size_t victim_index;        // kUnsubscribe: index into the live list
  std::vector<Event> events;  // kMatchBatch
};

std::vector<Op> MakeOpLog(uint64_t seed, size_t n_ops) {
  Rng rng(seed);
  std::vector<Op> log;
  size_t live = 0;
  for (size_t i = 0; i < n_ops; ++i) {
    const double roll = rng.NextDouble();
    Op op;
    if (live == 0 || roll < 0.55) {
      op.kind = Op::kSubscribe;
      op.box = testutil::RandomBox(rng, kNd, 0.5f);
      ++live;
    } else if (roll < 0.75) {
      op.kind = Op::kUnsubscribe;
      op.victim_index = rng.NextBelow(live);
      --live;
    } else {
      op.kind = Op::kMatchBatch;
      const size_t ne = 1 + rng.NextBelow(12);
      for (size_t e = 0; e < ne; ++e) {
        if (rng.NextBool(0.5)) {
          std::vector<float> pt(kNd);
          for (auto& x : pt) x = rng.NextFloat();
          op.events.push_back(Event::Point(std::move(pt)));
        } else {
          op.events.push_back(Event::Range(testutil::RandomBox(rng, kNd)));
        }
      }
    }
    log.push_back(std::move(op));
  }
  return log;
}

/// Applies the log; returns the concatenated match sets of every batch.
std::vector<std::vector<ObjectId>> Replay(SubscriptionEngine& engine,
                                          const std::vector<Op>& log) {
  std::vector<SubscriptionId> live;
  std::vector<std::vector<ObjectId>> matches;
  for (const Op& op : log) {
    switch (op.kind) {
      case Op::kSubscribe:
        live.push_back(engine.SubscribeBox(op.box));
        break;
      case Op::kUnsubscribe: {
        const size_t v = op.victim_index;
        EXPECT_TRUE(engine.Unsubscribe(live[v]));
        live[v] = live.back();
        live.pop_back();
        break;
      }
      case Op::kMatchBatch: {
        MatchBatchResult res;
        engine.MatchBatch(
            Span<const Event>(op.events.data(), op.events.size()), &res);
        for (auto& m : res.matches) matches.push_back(std::move(m));
        break;
      }
    }
  }
  return matches;
}

TEST(ConcurrentStress, ShardedReplayMatchesSerialReplay) {
  const std::vector<Op> log = MakeOpLog(2026, 1500);
  SubscriptionEngine serial(UnitSchema(), Opts(1, 0));
  const auto expected = Replay(serial, log);
  for (const auto& cfg : {std::pair<uint32_t, uint32_t>{4, 4},
                          std::pair<uint32_t, uint32_t>{4, 2},
                          std::pair<uint32_t, uint32_t>{7, 3}}) {
    SubscriptionEngine sharded(UnitSchema(), Opts(cfg.first, cfg.second));
    const auto got = Replay(sharded, log);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expected[i])
          << "divergence at batch result " << i << " with K=" << cfg.first
          << " threads=" << cfg.second;
    }
    EXPECT_EQ(sharded.subscription_count(), serial.subscription_count());
  }
}

TEST(ConcurrentStress, ReplayIsRepeatable) {
  const std::vector<Op> log = MakeOpLog(5, 800);
  SubscriptionEngine a(UnitSchema(), Opts(4, 4));
  SubscriptionEngine b(UnitSchema(), Opts(4, 4));
  EXPECT_EQ(Replay(a, log), Replay(b, log));
}

TEST(ConcurrentStress, ConcurrentCallersKeepEngineConsistent) {
  SubscriptionEngine engine(UnitSchema(), Opts(4, 3));
  Rng seed_rng(77);
  const uint64_t seed_a = seed_rng.NextU64();
  const uint64_t seed_b = seed_rng.NextU64();
  const uint64_t seed_m = seed_rng.NextU64();

  // Thread A: subscribes 400 and keeps everything.
  std::vector<std::pair<SubscriptionId, Box>> kept_a, kept_b;
  std::thread ta([&] {
    Rng rng(seed_a);
    for (int i = 0; i < 400; ++i) {
      Box b = testutil::RandomBox(rng, kNd, 0.5f);
      kept_a.emplace_back(engine.SubscribeBox(b), b);
    }
  });
  // Thread B: subscribes 400, then unsubscribes its own even-indexed half.
  std::thread tb([&] {
    Rng rng(seed_b);
    std::vector<std::pair<SubscriptionId, Box>> mine;
    for (int i = 0; i < 400; ++i) {
      Box b = testutil::RandomBox(rng, kNd, 0.5f);
      mine.emplace_back(engine.SubscribeBox(b), b);
    }
    for (size_t i = 0; i < mine.size(); ++i) {
      if (i % 2 == 0) {
        EXPECT_TRUE(engine.Unsubscribe(mine[i].first));
      } else {
        kept_b.push_back(mine[i]);
      }
    }
  });
  // Threads C/D: match batches and single events while the writers run.
  std::thread tc([&] {
    Rng rng(seed_m);
    for (int i = 0; i < 30; ++i) {
      std::vector<Event> evs;
      for (int e = 0; e < 8; ++e) {
        evs.push_back(Event::Range(testutil::RandomBox(rng, kNd)));
      }
      MatchBatchResult res;
      engine.MatchBatch(Span<const Event>(evs.data(), evs.size()), &res);
    }
  });
  std::thread td([&] {
    Rng rng(seed_m ^ 1);
    for (int i = 0; i < 60; ++i) {
      std::vector<float> pt(kNd);
      for (auto& x : pt) x = rng.NextFloat();
      std::vector<SubscriptionId> out;
      engine.Match(Event::Point(std::move(pt)), &out);
    }
  });
  ta.join();
  tb.join();
  tc.join();
  td.join();

  ASSERT_EQ(engine.subscription_count(), 400u + 200u);
  const auto infos = engine.GetShardInfos();
  size_t total = 0;
  for (const auto& info : infos) total += info.subscriptions;
  EXPECT_EQ(total, 600u);

  // Oracle check: a quiesced MatchBatch must agree exactly with brute force
  // over the surviving (id, box) pairs.
  std::vector<std::pair<SubscriptionId, Box>> survivors = kept_a;
  survivors.insert(survivors.end(), kept_b.begin(), kept_b.end());
  Rng rng(123);
  std::vector<Event> probes;
  for (int e = 0; e < 16; ++e) {
    probes.push_back(Event::Range(testutil::RandomBox(rng, kNd)));
  }
  MatchBatchResult res;
  engine.MatchBatch(Span<const Event>(probes.data(), probes.size()), &res);
  for (size_t e = 0; e < probes.size(); ++e) {
    Query q(probes[e].box, Relation::kIntersects);
    std::vector<ObjectId> expect;
    for (const auto& [id, box] : survivors) {
      if (q.Matches(box.view())) expect.push_back(id);
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(res.matches[e], expect) << "probe " << e;
  }
}

}  // namespace
}  // namespace accl
