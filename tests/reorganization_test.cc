#include <gtest/gtest.h>

#include "core/adaptive_index.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/query_gen.h"

namespace accl {
namespace {

using testutil::Load;
using testutil::RandomBox;

AdaptiveConfig ReorgConfig(Dim nd) {
  AdaptiveConfig cfg;
  cfg.nd = nd;
  cfg.reorg_period = 100;  // the paper's setting
  cfg.min_observation = 32;
  cfg.stats_halving_period = 0;
  return cfg;
}

// Runs `n` selective queries through the index.
void Drive(AdaptiveIndex& idx, Dim nd, int n, uint64_t seed,
           double extent = 0.05) {
  auto qs = GenerateQueriesWithExtent(nd, Relation::kIntersects,
                                      static_cast<size_t>(n), extent, seed);
  std::vector<ObjectId> out;
  for (const Query& q : qs) {
    out.clear();
    idx.Execute(q, &out);
  }
}

TEST(Reorganization, SelectiveQueriesTriggerSplits) {
  AdaptiveIndex idx(ReorgConfig(4));
  UniformSpec spec;
  spec.nd = 4;
  spec.count = 20000;
  spec.seed = 3;
  Load(idx, GenerateUniform(spec));

  Drive(idx, 4, 1000, 7);
  EXPECT_GT(idx.cluster_count(), 1u);
  EXPECT_GT(idx.reorg_stats().splits, 0u);
  idx.CheckInvariants();
}

TEST(Reorganization, ObjectCountPreservedAcrossReorganizations) {
  AdaptiveIndex idx(ReorgConfig(4));
  UniformSpec spec;
  spec.nd = 4;
  spec.count = 10000;
  spec.seed = 5;
  Load(idx, GenerateUniform(spec));
  Drive(idx, 4, 800, 11);
  EXPECT_EQ(idx.size(), 10000u);
  auto all = testutil::RunQuery(idx, Query::Intersection(Box::FullDomain(4)));
  EXPECT_EQ(all.size(), 10000u);
}

TEST(Reorganization, ConvergesWithinTenPassesOnStableWorkload) {
  // Paper §7.1: "the clustering process reaches a stable state (in less
  // than 10 reorganization steps)" when the query distribution is fixed.
  AdaptiveIndex idx(ReorgConfig(8));
  UniformSpec spec;
  spec.nd = 8;
  spec.count = 20000;
  spec.seed = 7;
  Load(idx, GenerateUniform(spec));

  uint64_t stable_pass = 0;
  auto qs = GenerateQueriesWithExtent(8, Relation::kIntersects, 3000, 0.1, 9);
  std::vector<ObjectId> out;
  size_t qi = 0;
  for (int pass = 1; pass <= 30; ++pass) {
    for (uint32_t i = 0; i < idx.config().reorg_period; ++i) {
      out.clear();
      idx.Execute(qs[qi++ % qs.size()], &out);
    }
    const auto& rs = idx.reorg_stats();
    // Stable: structural churn below 1% of the clusters. (Isolated single
    // splits keep trickling in as the statistics windows grow, but the
    // structure — hundreds of clusters — no longer changes materially.)
    const uint64_t churn = rs.last_pass_splits + rs.last_pass_merges;
    if (churn * 100 <= idx.cluster_count()) {
      stable_pass = rs.passes;
      break;
    }
  }
  EXPECT_GT(stable_pass, 0u) << "never reached a stable state";
  EXPECT_LE(stable_pass, 10u);
  idx.CheckInvariants();
}

TEST(Reorganization, ExpectedCostNeverWorseThanSingleCluster) {
  // The cost model only materializes candidates with positive benefit, so
  // the modeled average query time must not exceed the Sequential-Scan
  // equivalent (one cluster holding everything, p=1).
  AdaptiveIndex idx(ReorgConfig(4));
  UniformSpec spec;
  spec.nd = 4;
  spec.count = 20000;
  spec.seed = 13;
  Load(idx, GenerateUniform(spec));

  const CostModel& m = idx.cost_model();
  const double scan_cost = m.ClusterTime(1.0, 20000.0);
  Drive(idx, 4, 2000, 15);
  EXPECT_LE(idx.ExpectedQueryTimeMs(), scan_cost * 1.05);
}

TEST(Reorganization, DiskScenarioFormsFewerClusters) {
  // Paper Fig. 7 discussion: the 15 ms random-access cost makes small
  // clusters unprofitable, so far fewer clusters materialize on disk.
  UniformSpec spec;
  spec.nd = 4;
  spec.count = 30000;
  spec.seed = 17;
  Dataset ds = GenerateUniform(spec);

  AdaptiveConfig mem_cfg = ReorgConfig(4);
  AdaptiveConfig dsk_cfg = ReorgConfig(4);
  dsk_cfg.scenario = StorageScenario::kDisk;
  AdaptiveIndex mem(mem_cfg), dsk(dsk_cfg);
  Load(mem, ds);
  Load(dsk, ds);
  Drive(mem, 4, 1500, 19);
  Drive(dsk, 4, 1500, 19);
  EXPECT_LE(dsk.cluster_count(), mem.cluster_count());
}

TEST(Reorganization, MergesFollowQueryDistributionShift) {
  // Clusters built for one query pattern are merged back once the pattern
  // changes and their access probability approaches the parent's.
  AdaptiveConfig cfg = ReorgConfig(2);
  cfg.stats_halving_period = 500;  // sliding window so p estimates adapt
  AdaptiveIndex idx(cfg);
  UniformSpec spec;
  spec.nd = 2;
  spec.count = 20000;
  spec.seed = 23;
  Load(idx, GenerateUniform(spec));

  // Phase 1: very selective queries => many clusters.
  Drive(idx, 2, 2000, 29, 0.02);
  const size_t clusters_phase1 = idx.cluster_count();
  EXPECT_GT(clusters_phase1, 1u);

  // Phase 2: full-domain queries explore everything; separate clusters now
  // only add exploration overhead, so merges must shrink the structure.
  std::vector<ObjectId> out;
  Query all = Query::Intersection(Box::FullDomain(2));
  for (int i = 0; i < 4000; ++i) {
    out.clear();
    idx.Execute(all, &out);
  }
  EXPECT_LT(idx.cluster_count(), clusters_phase1);
  EXPECT_GT(idx.reorg_stats().merges, 0u);
  idx.CheckInvariants();
}

TEST(Reorganization, EmptyClustersAreMergedAway) {
  AdaptiveConfig cfg = ReorgConfig(2);
  AdaptiveIndex idx(cfg);
  UniformSpec spec;
  spec.nd = 2;
  spec.count = 5000;
  spec.seed = 31;
  Load(idx, GenerateUniform(spec));
  Drive(idx, 2, 1000, 37, 0.05);
  // Delete everything; subsequent reorganizations must clean up emptied
  // clusters.
  for (ObjectId i = 0; i < 5000; ++i) EXPECT_TRUE(idx.Erase(i));
  Drive(idx, 2, 400, 41, 0.05);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.cluster_count(), 1u);
  idx.CheckInvariants();
}

TEST(Reorganization, ManualReorganizeWhenPeriodZero) {
  AdaptiveConfig cfg = ReorgConfig(2);
  cfg.reorg_period = 0;
  AdaptiveIndex idx(cfg);
  UniformSpec spec;
  spec.nd = 2;
  spec.count = 10000;
  spec.seed = 43;
  Load(idx, GenerateUniform(spec));
  Drive(idx, 2, 500, 47);
  EXPECT_EQ(idx.cluster_count(), 1u);  // nothing happened automatically
  idx.Reorganize();
  EXPECT_GT(idx.cluster_count(), 1u);
  idx.CheckInvariants();
}

TEST(Reorganization, InsertPrefersLowestAccessProbabilityCluster) {
  AdaptiveConfig cfg = ReorgConfig(2);
  AdaptiveIndex idx(cfg);
  UniformSpec spec;
  spec.nd = 2;
  spec.count = 10000;
  spec.seed = 53;
  Load(idx, GenerateUniform(spec));
  Drive(idx, 2, 1500, 59, 0.03);
  ASSERT_GT(idx.cluster_count(), 1u);

  // Fresh objects must land in the matching cluster with the LOWEST access
  // probability (paper Fig. 4): in particular never in a strictly
  // higher-probability cluster when a lower one accepts them. The root
  // accepts everything, so p(host) <= p(root) must always hold, and for
  // objects that fit an existing child it should usually be strict.
  Rng rng2(61);
  int strictly_lower = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const ObjectId oid = 900000 + static_cast<ObjectId>(trial);
    Box b = RandomBox(rng2, 2, 0.05f);
    idx.Insert(oid, b.view());
    const ClusterId host = idx.OwnerOf(oid);
    ASSERT_NE(host, kNoCluster);
    double host_p = -1.0, root_p = -1.0;
    for (const auto& ci : idx.GetClusterInfos()) {
      if (ci.id == host) host_p = ci.access_prob;
      if (ci.parent == kNoCluster) root_p = ci.access_prob;
    }
    ASSERT_GE(host_p, 0.0);
    EXPECT_LE(host_p, root_p + 1e-12) << "trial " << trial;
    if (host_p < root_p) ++strictly_lower;
  }
  EXPECT_GT(strictly_lower, 25);  // most objects find a cheaper host
  idx.CheckInvariants();
}

}  // namespace
}  // namespace accl
