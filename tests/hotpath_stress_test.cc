// Stress test for the flattened query hot path: under sustained insert /
// erase / query churn (with reorganizations firing), the adaptive index must
// keep CheckInvariants() green and return exactly the Sequential Scan /
// brute-force result set for every relation — i.e. the SoA admit filter,
// the batched verification kernel and the slot-tracked ownership map are
// observationally identical to the scalar implementation they replaced.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "core/adaptive_index.h"
#include "seqscan/seq_scan.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace accl {
namespace {

TEST(HotPathStress, ChurnKeepsInvariantsAndExactResults) {
  const Dim nd = 8;
  AdaptiveConfig cfg;
  cfg.nd = nd;
  cfg.reorg_period = 40;  // reorganize often to exercise merges/splits
  cfg.min_observation = 8.0;
  AdaptiveIndex ac(cfg);
  SeqScan ss(nd);

  Rng rng(99);
  ObjectId next_id = 0;
  std::vector<ObjectId> live;

  const Relation rels[] = {Relation::kIntersects, Relation::kContainedBy,
                           Relation::kEncloses};
  for (int round = 0; round < 60; ++round) {
    // Insert a batch.
    for (int i = 0; i < 50; ++i) {
      const Box b = testutil::RandomBox(rng, nd, 0.3f);
      ac.Insert(next_id, b.view());
      ss.Insert(next_id, b.view());
      live.push_back(next_id);
      ++next_id;
    }
    // Erase a few random live objects.
    for (int i = 0; i < 12 && !live.empty(); ++i) {
      const size_t k = static_cast<size_t>(rng.NextBelow(live.size()));
      const ObjectId victim = live[k];
      live[k] = live.back();
      live.pop_back();
      EXPECT_TRUE(ac.Erase(victim));
      EXPECT_TRUE(ss.Erase(victim));
      EXPECT_FALSE(ac.Erase(victim));  // double-erase reports absence
    }
    ASSERT_EQ(ac.size(), live.size());

    // Queries across all relations; results must match SS exactly.
    for (Relation rel : rels) {
      const Query q(testutil::RandomBox(rng, nd, 0.6f), rel);
      // groups_total snapshots the structure at query start; the query
      // itself may trigger a reorganization, so capture the count first.
      const size_t clusters_before = ac.cluster_count();
      QueryMetrics m_ac;
      const auto got = testutil::RunQuery(ac, q, &m_ac);
      const auto want = testutil::RunQuery(ss, q);
      ASSERT_EQ(got, want) << "round " << round << " rel "
                           << RelationName(rel);
      EXPECT_EQ(m_ac.result_count, got.size());
      EXPECT_EQ(m_ac.groups_total, clusters_before);
    }
    if (round % 5 == 0) ac.CheckInvariants();
  }
  ac.CheckInvariants();

  // The ownership map survives the churn: every live object resolves to a
  // cluster, every erased id to kNoCluster.
  for (ObjectId id : live) EXPECT_NE(ac.OwnerOf(id), kNoCluster);
  EXPECT_EQ(ac.OwnerOf(next_id + 1), kNoCluster);

  // Drain everything; structure must collapse cleanly.
  for (ObjectId id : live) EXPECT_TRUE(ac.Erase(id));
  EXPECT_EQ(ac.size(), 0u);
  ac.CheckInvariants();
}

TEST(HotPathStress, OutOfDomainQueriesUseTheFallbackFilter) {
  // Query boxes reaching outside [0,1] exercise the admit filter's dense
  // fallback (the refined-dims fast path assumes in-domain coordinates).
  const Dim nd = 6;
  AdaptiveConfig cfg;
  cfg.nd = nd;
  cfg.reorg_period = 30;
  cfg.min_observation = 8.0;
  AdaptiveIndex ac(cfg);
  SeqScan ss(nd);
  Rng rng(3);
  for (ObjectId id = 0; id < 1500; ++id) {
    const Box b = testutil::RandomBox(rng, nd, 0.4f);
    ac.Insert(id, b.view());
    ss.Insert(id, b.view());
  }
  // Converge on in-domain queries so clusters materialize.
  std::vector<ObjectId> tmp;
  for (int i = 0; i < 200; ++i) {
    tmp.clear();
    ac.Execute(Query::Intersection(testutil::RandomBox(rng, nd, 0.3f)), &tmp);
  }
  ASSERT_GT(ac.cluster_count(), 1u);
  for (int t = 0; t < 40; ++t) {
    Box q(nd);
    for (Dim d = 0; d < nd; ++d) {
      const float lo = rng.NextFloat() * 2.0f - 1.0f;  // in [-1, 1)
      q.set(d, lo, lo + rng.NextFloat());
    }
    for (Relation rel :
         {Relation::kIntersects, Relation::kContainedBy,
          Relation::kEncloses}) {
      const Query query(q, rel);
      ASSERT_EQ(testutil::RunQuery(ac, query), testutil::RunQuery(ss, query))
          << t << " " << RelationName(rel);
    }
  }
  ac.CheckInvariants();
}

TEST(HotPathStress, PointQueriesDuringChurn) {
  const Dim nd = 16;
  AdaptiveConfig cfg;
  cfg.nd = nd;
  cfg.reorg_period = 50;
  AdaptiveIndex ac(cfg);
  SeqScan ss(nd);

  Rng rng(7);
  for (ObjectId id = 0; id < 2000; ++id) {
    const Box b = testutil::RandomBox(rng, nd, 0.5f);
    ac.Insert(id, b.view());
    ss.Insert(id, b.view());
  }
  for (int t = 0; t < 120; ++t) {
    std::vector<float> pt(nd);
    for (Dim d = 0; d < nd; ++d) pt[d] = rng.NextFloat();
    const Query q = Query::PointEnclosing(pt);
    ASSERT_EQ(testutil::RunQuery(ac, q), testutil::RunQuery(ss, q)) << t;
  }
  ac.CheckInvariants();
}

}  // namespace
}  // namespace accl
