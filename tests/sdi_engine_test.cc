#include <gtest/gtest.h>

#include "sdi/subscription_engine.h"
#include "util/rng.h"

namespace accl {
namespace {

AttributeSchema AdsSchema() {
  AttributeSchema s;
  s.AddAttribute("price", 0, 3000);
  s.AddAttribute("rooms", 0, 10);
  s.AddAttribute("baths", 0, 5);
  s.AddAttribute("distance", 0, 100);
  return s;
}

SubscriptionEngine MakeEngine() {
  EngineOptions opts;
  opts.index.reorg_period = 50;
  opts.index.min_observation = 16;
  return SubscriptionEngine(AdsSchema(), opts);
}

TEST(SdiEngine, PaperIntroductionScenario) {
  // "Notify me of all new apartments within 30 miles from Newark, with a
  // rent price between 400$ and 700$, having between 3 and 5 rooms, and 2
  // baths."
  SubscriptionEngine engine = MakeEngine();
  const SubscriptionId sub = engine.Subscribe({{"price", 400, 700},
                                               {"rooms", 3, 5},
                                               {"baths", 2, 2},
                                               {"distance", 0, 30}});
  ASSERT_NE(sub, kInvalidObject);

  // A matching offer (a point event).
  Event offer;
  ASSERT_TRUE(engine.MakePointEvent({{"price", 650},
                                     {"rooms", 4},
                                     {"baths", 2},
                                     {"distance", 12}},
                                    &offer));
  std::vector<SubscriptionId> notified;
  engine.Match(offer, &notified);
  ASSERT_EQ(notified.size(), 1u);
  EXPECT_EQ(notified[0], sub);

  // Too expensive: no notification.
  Event expensive;
  ASSERT_TRUE(engine.MakePointEvent({{"price", 800},
                                     {"rooms", 4},
                                     {"baths", 2},
                                     {"distance", 12}},
                                    &expensive));
  notified.clear();
  engine.Match(expensive, &notified);
  EXPECT_TRUE(notified.empty());
}

TEST(SdiEngine, RangeEventPolicies) {
  // Paper: "Apartments for rent in Newark: 3 to 5 rooms, 1 or 2 baths,
  // 600$-900$" — a range event.
  SubscriptionEngine engine = MakeEngine();
  const SubscriptionId overlapping = engine.Subscribe(
      {{"price", 400, 700}, {"rooms", 3, 5}});  // overlaps 600-900
  const SubscriptionId covering = engine.Subscribe(
      {{"price", 500, 1000}, {"rooms", 2, 6}});  // covers the whole event
  ASSERT_NE(overlapping, kInvalidObject);
  ASSERT_NE(covering, kInvalidObject);

  Event ad;
  ASSERT_TRUE(engine.MakeRangeEvent(
      {{"price", 600, 900}, {"rooms", 3, 5}, {"baths", 1, 2}}, &ad));

  std::vector<SubscriptionId> loose, strict;
  engine.Match(ad, MatchPolicy::kIntersecting, &loose);
  engine.Match(ad, MatchPolicy::kCovering, &strict);
  std::sort(loose.begin(), loose.end());
  EXPECT_EQ(loose, (std::vector<SubscriptionId>{overlapping, covering}));
  EXPECT_EQ(strict, std::vector<SubscriptionId>{covering});
}

TEST(SdiEngine, UnsubscribeStopsNotifications) {
  SubscriptionEngine engine = MakeEngine();
  const SubscriptionId sub = engine.Subscribe({{"rooms", 2, 8}});
  Event ev;
  ASSERT_TRUE(engine.MakePointEvent(
      {{"price", 100}, {"rooms", 5}, {"baths", 1}, {"distance", 3}}, &ev));
  std::vector<SubscriptionId> out;
  engine.Match(ev, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(engine.Unsubscribe(sub));
  EXPECT_FALSE(engine.Unsubscribe(sub));
  out.clear();
  engine.Match(ev, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(engine.subscription_count(), 0u);
}

TEST(SdiEngine, MalformedSubscriptionRejected) {
  SubscriptionEngine engine = MakeEngine();
  EXPECT_EQ(engine.Subscribe({{"pool", 0, 1}}), kInvalidObject);
  EXPECT_EQ(engine.Subscribe({{"price", 700, 400}}), kInvalidObject);
  EXPECT_EQ(engine.subscription_count(), 0u);
}

TEST(SdiEngine, StatsAccumulate) {
  SubscriptionEngine engine = MakeEngine();
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    engine.Subscribe({{"price", rng.Uniform(0, 1500),
                       rng.Uniform(1500, 3000)}});
  }
  Event ev;
  ASSERT_TRUE(engine.MakePointEvent(
      {{"price", 1500}, {"rooms", 5}, {"baths", 1}, {"distance", 50}}, &ev));
  std::vector<SubscriptionId> out;
  for (int i = 0; i < 10; ++i) {
    out.clear();
    engine.Match(ev, &out);
  }
  EXPECT_EQ(engine.stats().events_processed, 10u);
  EXPECT_EQ(engine.stats().matches_per_event.count(), 10u);
  EXPECT_GT(engine.stats().matches_per_event.mean(), 0.0);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().events_processed, 0u);
}

TEST(SdiEngine, HighVolumeStreamAdapts) {
  // Sustained event stream: the engine's index must cluster and the
  // verified fraction must drop well below 100%.
  SubscriptionEngine engine = MakeEngine();
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double p0 = rng.Uniform(0, 2800);
    const double r0 = rng.Uniform(0, 8);
    const double d0 = rng.Uniform(0, 90);
    engine.Subscribe({{"price", p0, p0 + 200},
                      {"rooms", r0, r0 + 2},
                      {"distance", d0, d0 + 10}});
  }
  std::vector<SubscriptionId> out;
  for (int i = 0; i < 2000; ++i) {
    Event ev;
    ASSERT_TRUE(engine.MakePointEvent({{"price", rng.Uniform(0, 3000)},
                                       {"rooms", rng.Uniform(0, 10)},
                                       {"baths", rng.Uniform(0, 5)},
                                       {"distance", rng.Uniform(0, 100)}},
                                      &ev));
    out.clear();
    engine.Match(ev, &out);
  }
  EXPECT_GT(engine.index().cluster_count(), 1u);
  const double verified_frac =
      engine.stats().verified_per_event.mean() /
      static_cast<double>(engine.subscription_count());
  EXPECT_LT(verified_frac, 0.6);
}

}  // namespace
}  // namespace accl
